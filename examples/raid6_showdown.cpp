// RAID-6 showdown: the shifted mirror method with parity vs EVENODD /
// RDP, end-to-end on the simulator — storage efficiency, double-failure
// rebuild throughput, and content-verified recovery, echoing the
// paper's Section II/VI comparison.
//
//   $ ./raid6_showdown [n]
#include <cstdio>
#include <cstdlib>

#include "ec/evenodd.hpp"
#include "ec/rdp.hpp"
#include "recon/analytic.hpp"
#include "recon/executor.hpp"
#include "recon/failure.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace sma;

  int n = 5;
  if (argc > 1) n = std::atoi(argv[1]);
  if (n < 2 || n > 10) {
    std::fprintf(stderr, "usage: %s [n 2..10]\n", argv[0]);
    return 1;
  }

  // Codec self-tests first: both RAID-6 codes must round-trip every
  // single/double erasure byte-for-byte.
  ec::EvenOddCodec evenodd(n);
  ec::RdpCodec rdp(n);
  for (const ec::Codec* codec :
       {static_cast<const ec::Codec*>(&evenodd),
        static_cast<const ec::Codec*>(&rdp)}) {
    const auto st = codec->self_test(4242);
    std::printf("%-18s self-test: %s\n", codec->name().c_str(),
                st.to_string().c_str());
    if (!st.is_ok()) return 1;
  }
  std::printf("\n");

  Table table("Fault-tolerance-2 architectures, n = " + std::to_string(n));
  table.set_header({"architecture", "disks", "storage eff", "avg read accesses",
                    "avg rebuild MB/s (double failures)"});

  const layout::Architecture archs[] = {
      layout::Architecture::mirror_with_parity(n, false),
      layout::Architecture::mirror_with_parity(n, true),
      layout::Architecture::raid6(n),
  };
  for (const auto& arch : archs) {
    const auto cases = recon::enumerate_double_failure_cases(arch);
    RunningStat mbps;
    for (const auto& failed : recon::enumerate_double_failures(arch)) {
      array::ArrayConfig cfg;
      cfg.arch = arch;
      cfg.stripes = arch.total_disks();
      cfg.content_bytes = 128;
      cfg.logical_element_bytes = 4ull * 1000 * 1000;
      array::DiskArray arr(cfg);
      arr.initialize();
      for (const int d : failed) arr.fail_physical(d);
      auto report = recon::reconstruct(arr);
      if (!report.is_ok()) {
        std::fprintf(stderr, "%s rebuild of {%d,%d} failed: %s\n",
                     arch.name().c_str(), failed[0], failed[1],
                     report.status().to_string().c_str());
        return 1;
      }
      if (report.value().logical_bytes_read > 0)
        mbps.add(report.value().read_throughput_mbps());
    }
    table.add_row({arch.name(), Table::num(arch.total_disks()),
                   Table::num(arch.storage_efficiency(), 3),
                   Table::num(cases.average_read_accesses, 3),
                   Table::num(mbps.mean(), 1)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nEvery rebuild above recovered byte-identical contents (verified).\n"
      "The mirror methods trade ~%d%% storage efficiency for far fewer\n"
      "read accesses during reconstruction; the shifted arrangement then\n"
      "parallelizes those reads across all disks.\n",
      static_cast<int>(100 * (archs[2].storage_efficiency() -
                              archs[0].storage_efficiency())));
  return 0;
}
