// On-line rebuild demo: user reads arrive while a failed disk is being
// reconstructed. Compares user-visible latency between the traditional
// and shifted arrangements under identical workloads — the data
// availability story of the paper, seen from the application side.
//
//   $ ./online_rebuild [n] [user_read_rate_hz]
#include <cstdio>
#include <cstdlib>

#include "recon/online.hpp"

int main(int argc, char** argv) {
  using namespace sma;

  int n = 5;
  double rate = 30.0;
  if (argc > 1) n = std::atoi(argv[1]);
  if (argc > 2) rate = std::atof(argv[2]);
  if (n < 2 || n > 16 || rate <= 0) {
    std::fprintf(stderr, "usage: %s [n 2..16] [rate_hz > 0]\n", argv[0]);
    return 1;
  }

  std::printf("On-line reconstruction, n=%d, user reads at %.0f req/s, "
              "disk 0 failed.\n\n", n, rate);
  for (const bool shifted : {false, true}) {
    array::ArrayConfig cfg;
    cfg.arch = layout::Architecture::mirror(n, shifted);
    cfg.stripes = 4 * cfg.arch.total_disks();
    cfg.content_bytes = 64;
    cfg.logical_element_bytes = 4ull * 1000 * 1000;
    array::DiskArray arr(cfg);
    arr.initialize();
    arr.fail_physical(0);

    recon::OnlineConfig ocfg;
    ocfg.arrival.rate_hz = rate;
    ocfg.arrival.max_requests = 800;
    ocfg.arrival.seed = 99;
    auto report = recon::run_online_reconstruction(arr, ocfg);
    if (!report.is_ok()) {
      std::fprintf(stderr, "online recon failed: %s\n",
                   report.status().to_string().c_str());
      return 1;
    }
    const auto& r = report.value();
    std::printf("%s arrangement:\n", shifted ? "SHIFTED" : "TRADITIONAL");
    std::printf("  rebuild finished at %8.2f s\n", r.rebuild_done_s);
    std::printf("  user reads served  %8zu (%zu degraded)\n", r.user_reads,
                r.degraded_reads);
    std::printf("  latency mean/p50/p95/p99/max: "
                "%.1f / %.1f / %.1f / %.1f / %.1f ms\n\n",
                r.mean_latency_s * 1e3, r.p50_latency_s * 1e3,
                r.p95_latency_s * 1e3, r.p99_latency_s * 1e3,
                r.max_latency_s * 1e3);
  }
  std::printf("Under the traditional layout every rebuild read lands on the\n"
              "single partner disk, so user reads queuing there see long\n"
              "tails; the shifted layout spreads rebuild I/O over all disks.\n");
  return 0;
}
