// Rebuild timeline: traces every disk operation during a rebuild and
// renders an ASCII Gantt chart — making the paper's core argument
// visible at a glance. Under the traditional arrangement one partner
// disk streams alone while the rest idle; under the shifted
// arrangement every disk works one (seek + read) slice in parallel.
//
//   $ ./rebuild_timeline [n]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "recon/executor.hpp"

namespace {

using namespace sma;

void render_timeline(array::DiskArray& arr, double horizon_s) {
  const int kWidth = 72;
  std::printf("      0s %*s %.2fs\n", kWidth - 8, "", horizon_s);
  for (int d = 0; d < arr.total_disks(); ++d) {
    std::string lane(kWidth, '.');
    for (const auto& op : arr.physical(d).trace()) {
      const int from = static_cast<int>(op.start_s / horizon_s * kWidth);
      int to = static_cast<int>(op.end_s / horizon_s * kWidth);
      to = std::min(to, kWidth - 1);
      const char glyph = op.kind == disk::IoKind::kRead
                             ? (op.sequential ? '=' : 'r')
                             : (op.sequential ? '#' : 'w');
      for (int x = std::max(0, from); x <= to; ++x) lane[static_cast<std::size_t>(x)] = glyph;
    }
    const auto role = arr.arch().role_of(d);
    const char* role_name = role == layout::DiskRole::kData ? "data  "
                            : role == layout::DiskRole::kMirror ? "mirror"
                                                                : "parity";
    std::printf("%s %2d |%s|\n", role_name, arr.arch().role_index(d),
                lane.c_str());
  }
  std::printf("      ('r' seeking read, '=' sequential read, "
              "'w'/'#' writes, '.' idle)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sma;
  int n = 4;
  if (argc > 1) n = std::atoi(argv[1]);
  if (n < 2 || n > 8) {
    std::fprintf(stderr, "usage: %s [n 2..8]\n", argv[0]);
    return 1;
  }

  double horizon = 0;
  for (const bool shifted : {false, true}) {
    array::ArrayConfig cfg;
    cfg.arch = layout::Architecture::mirror(n, shifted);
    cfg.stripes = cfg.arch.total_disks();
    cfg.rotate = false;  // fixed roles make the picture legible
    cfg.content_bytes = 64;
    array::DiskArray arr(cfg);
    arr.initialize();
    for (int d = 0; d < arr.total_disks(); ++d)
      arr.physical(d).enable_trace();
    arr.fail_physical(0);

    auto report = recon::reconstruct(arr);
    if (!report.is_ok()) {
      std::fprintf(stderr, "rebuild failed: %s\n",
                   report.status().to_string().c_str());
      return 1;
    }
    if (horizon == 0) horizon = report.value().total_makespan_s;

    std::printf("== %s: rebuild of data disk 0 "
                "(reads %.2fs, total %.2fs, %.1f MB/s) ==\n",
                cfg.arch.name().c_str(), report.value().read_makespan_s,
                report.value().total_makespan_s,
                report.value().read_throughput_mbps());
    render_timeline(arr, horizon);
  }
  return 0;
}
