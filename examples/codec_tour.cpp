// Codec tour: the erasure-coding substrate on its own — every codec
// encoding one stripe, surviving every tolerated erasure pattern, and
// reporting its small-write update penalty. A ten-minute read of what
// the paper's Section II comparisons are made of.
//
//   $ ./codec_tour
#include <cstdio>
#include <memory>
#include <vector>

#include "ec/evenodd.hpp"
#include "ec/raid5.hpp"
#include "ec/rdp.hpp"
#include "ec/rs.hpp"
#include "ec/update_penalty.hpp"
#include "ec/xcode.hpp"

int main() {
  using namespace sma;

  std::vector<ec::CodecPtr> codecs;
  codecs.push_back(std::make_unique<ec::Raid5Codec>(5, 4));
  codecs.push_back(std::make_unique<ec::EvenOddCodec>(5));
  codecs.push_back(std::make_unique<ec::RdpCodec>(5));
  codecs.push_back(std::make_unique<ec::CauchyRsCodec>(5, 3, 4));
  codecs.push_back(std::make_unique<ec::XCodec>(7));

  std::printf("%-20s %7s %7s %6s %10s %18s\n", "codec", "data", "parity",
              "rows", "tolerance", "updates/write");
  std::printf("%s\n", std::string(74, '-').c_str());

  for (const auto& codec : codecs) {
    // 1. Round-trip every erasure pattern up to the tolerance.
    const auto self = codec->self_test(0xC0FFEE);
    if (!self.is_ok()) {
      std::fprintf(stderr, "%s self-test FAILED: %s\n",
                   codec->name().c_str(), self.to_string().c_str());
      return 1;
    }
    // 2. Update penalty (min/avg/max parity cells touched per write).
    auto penalty = ec::measure_update_penalty(*codec);
    if (!penalty.is_ok()) {
      std::fprintf(stderr, "%s penalty measurement failed\n",
                   codec->name().c_str());
      return 1;
    }
    std::printf("%-20s %7d %7d %6d %10d %6d/%.2f/%d\n",
                codec->name().c_str(), codec->data_columns(),
                codec->parity_columns(), codec->rows(),
                codec->fault_tolerance(), penalty.value().min,
                penalty.value().average, penalty.value().max);
  }

  std::printf(
      "\nEvery codec above decoded every single/double erasure byte-exact.\n"
      "Note the update column: the horizontal RAID-6 codes (evenodd, rdp)\n"
      "exceed their optimum of 2; the vertical x-code and the row codes\n"
      "sit exactly at it — the paper's Section II updating-efficiency\n"
      "argument, reproduced.\n");
  return 0;
}
