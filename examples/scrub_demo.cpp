// Scrub demo: latent sector errors accumulate silently; a periodic
// scrub detects them by cross-checking replicas and repairs them by
// parity arbitration — before a disk failure turns a silent corruption
// into real data loss (the paper's Section I motivation).
//
//   $ ./scrub_demo [n] [errors]
#include <cstdio>
#include <algorithm>
#include <cstdlib>
#include <set>
#include <utility>
#include <vector>

#include "recon/executor.hpp"
#include "recon/scrub.hpp"

int main(int argc, char** argv) {
  using namespace sma;

  int n = 5;
  int errors = 12;
  if (argc > 1) n = std::atoi(argv[1]);
  if (argc > 2) errors = std::atoi(argv[2]);
  if (n < 2 || n > 16 || errors < 0) {
    std::fprintf(stderr, "usage: %s [n 2..16] [errors >= 0]\n", argv[0]);
    return 1;
  }

  array::ArrayConfig cfg;
  cfg.arch = layout::Architecture::mirror_with_parity(n, true);
  cfg.stripes = cfg.arch.total_disks();
  cfg.content_bytes = 4096;
  array::DiskArray arr(cfg);
  arr.initialize();
  std::printf("volume: %s, %d disks, %d stripes\n\n",
              cfg.arch.name().c_str(), arr.total_disks(), arr.stripes());

  // Step 1: silent corruption strikes — at most one bad copy per
  // parity row, the regime scrub arbitration fully repairs. (Use
  // recon::inject_latent_errors for unconstrained random injection,
  // where colliding rows become "undecidable".)
  Rng rng(2026);
  errors = std::min<long>(errors, static_cast<long>(arr.stripes()) * n);
  std::set<std::pair<int, int>> rows_used;
  std::vector<recon::InjectedError> injected;
  while (static_cast<int>(injected.size()) < errors) {
    const int s = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(arr.stripes())));
    const int j = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    if (!rows_used.insert({s, j}).second) continue;
    const int i = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    if (rng.next_bool()) {
      const layout::Pos rp = arr.arch().replica_of(i, j);
      arr.content(rp.disk, s, rp.row)[0] ^= 0x5A;
      injected.push_back({rp.disk, s, rp.row});
    } else {
      arr.content(arr.arch().data_disk(i), s, j)[0] ^= 0x5A;
      injected.push_back({i, s, j});
    }
  }
  std::printf("injected %zu latent element corruptions (silent so far):\n",
              injected.size());
  for (const auto& e : injected)
    std::printf("  disk %2d, stripe %2d, row %d\n", e.logical_disk, e.stripe,
                e.row);
  std::printf("array verification now reports: %s\n\n",
              arr.verify_all().to_string().c_str());

  // Step 2: scrub.
  auto report = recon::scrub(arr);
  if (!report.is_ok()) {
    std::fprintf(stderr, "scrub failed: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }
  const auto& r = report.value();
  std::printf("scrub: scanned %llu elements in %.2f simulated seconds\n",
              static_cast<unsigned long long>(r.elements_scanned),
              r.makespan_s);
  std::printf("  mismatching replica pairs : %llu\n",
              static_cast<unsigned long long>(r.mismatches));
  std::printf("  repaired data / mirror / parity: %llu / %llu / %llu\n",
              static_cast<unsigned long long>(r.repaired_data),
              static_cast<unsigned long long>(r.repaired_mirror),
              static_cast<unsigned long long>(r.repaired_parity));
  std::printf("  undecidable (multi-corrupt rows): %llu\n\n",
              static_cast<unsigned long long>(r.undecidable));

  if (r.undecidable == 0) {
    std::printf("array verification after scrub:  %s\n",
                arr.verify_all().to_string().c_str());
  } else {
    std::printf("some rows held more than one corruption; a second pass\n"
                "after re-replication would be required.\n");
  }

  // Step 3: the scrub mattered — a disk failure right now rebuilds
  // from clean redundancy.
  arr.fail_physical(1);
  auto rebuild = recon::reconstruct(arr);
  std::printf("subsequent disk-1 failure rebuild: %s (%.1f MB/s)\n",
              rebuild.is_ok() ? "verified OK"
                              : rebuild.status().to_string().c_str(),
              rebuild.is_ok() ? rebuild.value().read_throughput_mbps() : 0.0);
  // Undecidable rows (two corruptions sharing a parity equation) are an
  // expected outcome of random injection, not a demo failure.
  return rebuild.is_ok() ? 0 : 1;
}
