// Quickstart: create a shifted mirror volume, serve reads and writes,
// lose a disk, keep serving (degraded), rebuild, and verify — the whole
// public API in one sitting.
//
//   $ ./quickstart
#include <cstdio>
#include <vector>

#include "core/volume.hpp"

int main() {
  using namespace sma;

  // A 5+5 disk mirror array with the paper's shifted element
  // arrangement, one full stack of stripes, 4 MB (logical) elements on
  // simulated Savvio 10K.3 disks.
  core::VolumeConfig cfg;
  cfg.n = 5;
  cfg.shifted = true;
  cfg.with_parity = false;
  cfg.content_bytes = 4096;
  auto created = core::MirroredVolume::create(cfg);
  if (!created.is_ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 created.status().to_string().c_str());
    return 1;
  }
  auto vol = std::move(created).take();
  std::printf("volume: %s, %d disks, %d stripes, storage efficiency %.0f%%\n",
              vol.arch().name().c_str(), vol.arch().total_disks(),
              vol.stripes(), 100 * vol.arch().storage_efficiency());

  // Write an element and read it back.
  std::vector<std::uint8_t> payload(cfg.content_bytes, 0x42);
  if (!vol.write_element(/*data_disk=*/2, /*stripe=*/1, /*row=*/3, payload)) {
    std::fprintf(stderr, "write failed\n");
    return 1;
  }
  std::vector<std::uint8_t> got(cfg.content_bytes);
  if (!vol.read_element(2, 1, 3, got) || got != payload) {
    std::fprintf(stderr, "read-back mismatch\n");
    return 1;
  }
  std::printf("write + read-back: ok\n");

  // Lose a disk. Reads keep working (served from replicas).
  vol.fail_disk(2);
  std::printf("failed physical disk 2; degraded read... ");
  if (!vol.read_element(2, 1, 3, got) || got != payload) {
    std::fprintf(stderr, "degraded read failed\n");
    return 1;
  }
  std::printf("ok\n");

  // Rebuild. Under the shifted arrangement the replicas of the failed
  // disk's elements live on ALL other disks, so the rebuild reads run
  // in parallel — the paper's headline effect.
  auto report = vol.rebuild();
  if (!report.is_ok()) {
    std::fprintf(stderr, "rebuild failed: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }
  std::printf("rebuilt %.0f MB in %.2f s of simulated time "
              "(read throughput %.1f MB/s, %d read access(es)/stripe)\n",
              report.value().logical_bytes_recovered / 1e6,
              report.value().total_makespan_s,
              report.value().read_throughput_mbps(),
              report.value().read_accesses_per_stripe);

  if (!vol.verify()) {
    std::fprintf(stderr, "post-rebuild verification failed\n");
    return 1;
  }
  std::printf("post-rebuild verification: ok\n");
  return 0;
}
