// Layout explorer: prints the element arrangements behind the paper's
// Figs. 1, 3 and 8 for any n, and evaluates Properties 1-3 for the
// iterated transformation family.
//
//   $ ./layout_explorer [n]          (default n = 3, the paper's figure)
#include <cstdio>
#include <cstdlib>

#include "layout/properties.hpp"

int main(int argc, char** argv) {
  using namespace sma::layout;

  int n = 3;
  if (argc > 1) {
    n = std::atoi(argv[1]);
    if (n < 1 || n > 12) {
      std::fprintf(stderr, "usage: %s [n between 1 and 12]\n", argv[0]);
      return 1;
    }
  }

  std::printf("== Traditional mirror (paper Fig. 1) ==\n");
  TraditionalArrangement traditional(n);
  std::printf("%s\n", render_arrays(traditional).c_str());
  std::printf("properties: %s\n\n",
              evaluate_properties(traditional).to_string().c_str());

  std::printf("== Shifted mirror (paper Fig. 3) ==\n");
  ShiftedArrangement shifted(n);
  std::printf("%s\n", render_arrays(shifted).c_str());
  std::printf("properties: %s\n", evaluate_properties(shifted).to_string().c_str());
  std::printf("formula check: replica of a(i,j) sits at b(<i+j>%%%d, i)\n\n",
              n);

  std::printf("== Iterated transformation family (paper Fig. 8) ==\n");
  for (int k = 1; k <= 6; ++k) {
    auto arr = make_iterated(n, k);
    const auto report = evaluate_properties(*arr);
    std::printf("after %d transformation(s): %s%s\n", k,
                report.to_string().c_str(),
                report.all() ? "   <- usable shifted-mirror layout" : "");
  }
  std::printf("\nArrangements after 1, 3, 5 transformations:\n");
  for (int k = 1; k <= 5; k += 2) {
    auto arr = make_iterated(n, k);
    std::printf("%s\n", render_arrays(*arr).c_str());
  }
  return 0;
}
