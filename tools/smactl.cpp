// smactl — command-line driver for the shifted-mirror-arrangement
// library: inspect layouts, plan and execute reconstructions, run the
// on-line rebuild and scrub simulations, and regenerate the analytic
// tables, all without writing code.
//
// Every subcommand consumes one shared option table (common_from /
// arch_from / array_cfg_from below) instead of re-parsing flags ad
// hoc, so the layout spelling, seed, and observer flags mean the same
// thing everywhere:
//
//   --n=<disks>            array order
//   --parity               add the dedicated parity disk
//   --arrangement=<spec>   layout registry spec: "shifted",
//                          "traditional", "iterated:3", "lrc:groups=2",
//                          "pyramid:groups=2", "zigzag", ... — see
//                          `smactl layouts`. Deprecated aliases, kept
//                          one release: --kind=<spec>, --traditional.
//   --seed=<s>             RNG seed (per-command default)
//   --stacks=<k>           stripes = stacks * total disks
//   --jsonl=<f> --chrome=<f> --timeline-csv=<f> --interval=<s>
//                          observer sinks (online / qos / trace)
//
//   smactl layouts
//   smactl layout    --n=3 [--arrangement=shifted] [--iterations=K]
//   smactl plan      --n=3 [--parity] --fail=0,6
//   smactl rebuild   --n=5 [--parity] --fail=2 [--stacks=2]
//   smactl online    --n=5 [--rate=30] [--reads=500]
//   smactl qos       --n=5 [--policy=adaptive] [--p99-ms=120]
//                    [--arrival=poisson|closed_loop|bursty|trace]
//                    [--budget=B] [--trace-file=F] [--export-trace=F]
//   smactl trace     --n=5 [--jsonl=F] [--chrome=F]
//                    [--timeline-csv=F] [--interval=0.5]
//   smactl scrub     --n=5 [--parity] [--errors=10] [--seed=1]
//   smactl crash     --n=5 [--parity] [--requests=40]
//                    [--crash-after=K] [--region-stripes=2] [--quiesce=10]
//                    [--full-resync] [--fail=d] [--soak=N] [--seed=1]
//   smactl write     --n=5 [--parity] [--requests=1000]
//   smactl table1    [--n-min=3] [--n-max=7]
//   smactl fig7      [--n-max=50]
//   smactl three-mirror --n=5 [--replicas=2] --fail=0,8
//   smactl degraded  --n=5 [--reads=2000] [--fail=0]
//   smactl reliability --n=5 [--parity] [--mttr-h=1]
//   smactl repair    --n=5 [--parity] [--fail=0] [--policy=dedicated]
//                    [--spares=1] [--interrupt-after=K] [--second-fail=1]
//                    | --mc-trials=T [--mttf-h=400] [--mttr-h=1]
//                    [--enclosure-size=E] [--replenish-h=H]
//   smactl update-penalty [--n=5]
//   smactl chaos     [--scenario=<spec>] [--seed=<u64>] [--hedge]
//                    [--soak=N] [--threads=K]
//                    [--sabotage=none|skip-resync|leak-corruption]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>

#include "chaos/engine.hpp"
#include "chaos/scenario.hpp"
#include "core/trace.hpp"
#include "core/volume.hpp"
#include "fleet/fleet.hpp"
#include "integrity/crash_workload.hpp"
#include "integrity/resync.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace_sink.hpp"
#include "layout/properties.hpp"
#include "layout/registry.hpp"
#include "multimirror/multi_array.hpp"
#include "recon/analytic.hpp"
#include "ec/evenodd.hpp"
#include "ec/rdp.hpp"
#include "ec/update_penalty.hpp"
#include "recon/online.hpp"
#include "recon/plan.hpp"
#include "recon/reliability.hpp"
#include "recon/scrub.hpp"
#include "repair/orchestrator.hpp"
#include "sim/multi_kernel.hpp"
#include "sim/simulation.hpp"
#include "workload/arrival.hpp"
#include "workload/degraded_read.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workload/write_executor.hpp"

namespace {

using namespace sma;

int usage_stream(std::FILE* out, const char* error) {
  if (error) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(out, "%s",
               "usage: smactl <command> [flags]\n"
               "  layouts       list the registered layout algorithms\n"
               "  layout        render an arrangement and its properties\n"
               "  plan          reconstruction read plan for failed disks\n"
               "  rebuild       execute + verify a rebuild, report throughput\n"
               "  online        on-line rebuild with user reads\n"
               "  qos           online rebuild under a QoS policy: arrival\n"
               "                processes (--arrival=poisson|closed_loop|\n"
               "                bursty|trace --trace-file=<f>), rebuild\n"
               "                throttling (--policy=strict|fixed|adaptive\n"
               "                --budget=<B> --p99-ms=<t> --interval=<s>),\n"
               "                arrival-trace export (--export-trace=<f>)\n"
               "  trace         online rebuild with tracing: event stream\n"
               "                (--jsonl=<f>), Perfetto (--chrome=<f>),\n"
               "                per-disk timelines (--timeline-csv=<f>,\n"
               "                --interval=<s>)\n"
               "  scrub         inject latent errors, scrub, report repairs\n"
               "  crash         power-loss injection: crash a write\n"
               "                workload, power-cycle, dirty-region resync,\n"
               "                rebuild + verifying scrub (--crash-after=<w>\n"
               "                --region-stripes=<g> --full-resync --fail=<d>\n"
               "                --soak=<runs>)\n"
               "  write         run the Fig. 10 write workload\n"
               "  table1        regenerate Table I\n"
               "  fig7          regenerate Fig. 7 ratios\n"
               "  three-mirror  rebuild in the R=2 multi-mirror extension\n"
               "  degraded      user reads against a degraded array\n"
               "  faults        rebuild under injected disk faults\n"
               "                (--latent=<rate> --transient=<p> --slow=<x>\n"
               "                 --retries=<k> --fault-seed=<s>)\n"
               "  reliability   fatal failure sets + MTTDL estimate\n"
               "  repair        orchestrated rebuild through the lifecycle\n"
               "                state machine (--policy=none|dedicated|\n"
               "                distributed --spares=<k>\n"
               "                --interrupt-after=<s>\n"
               "                --second-fail=<d>), or Monte-Carlo lifetimes\n"
               "                (--mc-trials=<t> --mttf-h --mttr-h\n"
               "                 --enclosure-size=<e> --enclosure-factor=<x>\n"
               "                 --spares=<k> --replenish-h=<h>)\n"
               "  update-penalty  parity updates per data write, by code\n"
               "  simbench      simulation-kernel throughput: timed online\n"
               "                rebuild under a queue backend\n"
               "                (--kernel=calendar|heap|legacy, default from\n"
               "                 SMA_SIM_QUEUE; --batch=0|1 --threads=<k>\n"
               "                 --cases=<c> --reps=<r> --stacks --rate\n"
               "                 --requests --json)\n"
               "  fleet         many arrays behind a volume placement tier\n"
               "                serving one aggregate stream (--arrays=<a>\n"
               "                 --layout=<spec[,spec]> cycled per array\n"
               "                 --placement=round_robin|random|declustered\n"
               "                 --volumes --segments --spread --failed=<f>\n"
               "                 --requests --rate --threads --horizon-h\n"
               "                 --mttf-h; --mix=shifted|traditional|\n"
               "                 alternating is a deprecated alias)\n"
               "  chaos         compound fault scenario through the chaos\n"
               "                engine + invariant oracle: --scenario=<spec>\n"
               "                replays a spec (pair with the --seed=<u64> a\n"
               "                violation names), --seed alone composes one,\n"
               "                neither runs the reference compound\n"
               "                (--hedge --soak=<N> --threads=<k>\n"
               "                 --sabotage=none|skip-resync|leak-corruption)\n"
               "common flags: --n=<disks> --parity --arrangement=<spec>\n"
               "              (see 'smactl layouts'; --kind=<spec> and\n"
               "              --traditional are deprecated aliases)\n"
               "              --seed=<s> --stacks=<k>\n"
               "observer flags (online/qos/trace): --jsonl=<f> --chrome=<f>\n"
               "              --timeline-csv=<f> --interval=<s>\n"
               "exit codes: 0 success, 1 runtime failure, 2 usage error;\n"
               "`smactl <command> --help` prints this text\n");
  return 2;
}

int usage(const char* error = nullptr) { return usage_stream(stderr, error); }

// ---------------------------------------------------------------------------
// Shared option table. One parse for the flags every subcommand keeps
// re-reading: the array shape, the layout spelling, and the seed.
// ---------------------------------------------------------------------------

struct CommonDefaults {
  int n = 3;
  int seed = 1;
  int stacks = 1;
};

struct CommonOptions {
  int n = 3;
  bool parity = false;
  /// Layout registry spec, resolved through AlgorithmRegistry::global().
  std::string arrangement = "shifted";
  std::uint64_t seed = 1;
  int stacks = 1;
};

CommonOptions common_from(const Flags& flags, const CommonDefaults& d = {}) {
  CommonOptions c;
  c.n = flags.get_int("n", d.n);
  c.parity = flags.get_bool("parity", false);
  if (flags.has("arrangement")) {
    c.arrangement = flags.get("arrangement", "shifted");
  } else if (flags.has("kind")) {
    // Deprecated alias spelling, kept one release.
    c.arrangement = flags.get("kind", "shifted");
  } else if (flags.get_bool("traditional", false)) {
    // Deprecated boolean spelling, kept one release.
    c.arrangement = "traditional";
  }
  c.seed = static_cast<std::uint64_t>(flags.get_int("seed", d.seed));
  c.stacks = flags.get_int("stacks", d.stacks);
  return c;
}

Result<layout::Architecture> arch_from(const CommonOptions& c) {
  return c.parity
             ? layout::Architecture::mirror_with_parity_named(c.n,
                                                              c.arrangement)
             : layout::Architecture::mirror_named(c.n, c.arrangement);
}

Result<array::ArrayConfig> array_cfg_from(const Flags& flags,
                                          const CommonDefaults& d = {}) {
  const CommonOptions c = common_from(flags, d);
  auto arch = arch_from(c);
  if (!arch.is_ok()) return arch.status();
  array::ArrayConfig cfg;
  cfg.arch = std::move(arch).take();
  cfg.stripes = c.stacks * cfg.arch.total_disks();
  cfg.content_bytes =
      static_cast<std::size_t>(flags.get_int("content-bytes", 256));
  cfg.logical_element_bytes = static_cast<std::uint64_t>(
      flags.get_double("element-mb", 4.0) * 1'000'000);
  cfg.seed = c.seed;
  return cfg;
}

// Shared observer option table: --jsonl=<f> --chrome=<f>
// --timeline-csv=<f> [--interval=<s>] attach trace/metrics sinks to
// any simulating subcommand the same way; finish() writes the files.
class ObserverScope {
 public:
  ObserverScope(const Flags& flags, bool force_trace, bool force_metrics,
                double default_interval)
      : jsonl_(flags.get("jsonl", "")),
        chrome_(flags.get("chrome", "")),
        timeline_csv_(flags.get("timeline-csv", "")) {
    metrics_.set_sample_interval(
        flags.get_double("interval", default_interval));
    if (force_trace || !jsonl_.empty() || !chrome_.empty())
      ob_.trace = &trace_;
    if (force_metrics || !timeline_csv_.empty()) ob_.metrics = &metrics_;
  }

  obs::Observer* attach() {
    return (ob_.trace || ob_.metrics) ? &ob_ : nullptr;
  }
  obs::TraceSink& trace() { return trace_; }
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Write whichever sink files were requested; 0 on success, 1 (with
  /// the failure on stderr) otherwise.
  int finish(const char* cmd) {
    for (const auto& [path, chrome] :
         {std::pair<std::string, bool>{jsonl_, false}, {chrome_, true}}) {
      if (path.empty()) continue;
      const Status st = chrome ? trace_.write_chrome_trace_file(path)
                               : trace_.write_jsonl_file(path);
      if (!st.is_ok()) {
        std::fprintf(stderr, "%s: %s\n", cmd, st.to_string().c_str());
        return 1;
      }
      std::printf("wrote %s\n", path.c_str());
    }
    if (!timeline_csv_.empty()) {
      if (!metrics_.write_timeline_csv(timeline_csv_)) {
        std::fprintf(stderr, "%s: failed to write %s\n", cmd,
                     timeline_csv_.c_str());
        return 1;
      }
      std::printf("wrote %s\n", timeline_csv_.c_str());
    }
    return 0;
  }

 private:
  std::string jsonl_;
  std::string chrome_;
  std::string timeline_csv_;
  obs::TraceSink trace_;
  obs::MetricsRegistry metrics_;
  obs::Observer ob_;
};

int cmd_layouts(const Flags&) {
  const auto& reg = layout::AlgorithmRegistry::global();
  std::printf("%-12s %-12s %s\n", "name", "2nd-failure", "summary");
  for (const auto& name : reg.names()) {
    auto desc = reg.find(name);
    if (!desc.is_ok()) continue;
    std::printf("%-12s %-12s %s\n", name.c_str(),
                desc.value()->supports_second_failure ? "yes" : "no",
                desc.value()->summary.c_str());
  }
  return 0;
}

int cmd_layout(const Flags& flags) {
  const CommonOptions c = common_from(flags);
  if (c.n < 1 || c.n > 12) return usage("--n must be in 1..12 for layout");
  std::string spec = c.arrangement;
  // --iterations=K without an explicit layout spelling means the
  // iterated family (the historical spelling of --arrangement=iterated:K).
  if (flags.has("iterations") && !flags.has("arrangement") &&
      !flags.has("kind"))
    spec = "iterated:" + std::to_string(flags.get_int("iterations", 1));
  auto made = layout::make_arrangement(spec, c.n);
  if (!made.is_ok()) return usage(made.status().to_string().c_str());
  const layout::ArrangementPtr arr = std::move(made).take();
  std::printf("%s\n", layout::render_arrays(*arr).c_str());
  std::printf("properties: %s\n",
              layout::evaluate_properties(*arr).to_string().c_str());
  return 0;
}

int cmd_plan(const Flags& flags) {
  auto archr = arch_from(common_from(flags));
  if (!archr.is_ok()) return usage(archr.status().to_string().c_str());
  const auto arch = std::move(archr).take();
  const auto failed = flags.get_int_list("fail");
  if (failed.empty()) return usage("plan needs --fail=<disk,[disk]>");
  auto plan = recon::plan_reconstruction(arch, failed);
  if (!plan.is_ok()) {
    std::fprintf(stderr, "plan: %s\n", plan.status().to_string().c_str());
    return 1;
  }
  std::printf("%s, failed {", arch.name().c_str());
  for (const int d : failed) std::printf(" %d", d);
  std::printf(" }\n");
  std::printf("read accesses (availability metric): %d\n",
              plan.value().read_accesses(arch));
  std::printf("availability reads (%zu):",
              plan.value().availability_reads.size());
  for (const auto& read : plan.value().availability_reads)
    std::printf(" d%d/r%d", read.logical_disk, read.row);
  std::printf("\nparity-rebuild reads: %zu\n",
              plan.value().parity_rebuild_reads.size());
  return 0;
}

int cmd_rebuild(const Flags& flags) {
  auto cfgr = array_cfg_from(flags);
  if (!cfgr.is_ok()) return usage(cfgr.status().to_string().c_str());
  auto cfg = std::move(cfgr).take();
  const auto failed = flags.get_int_list("fail");
  if (failed.empty()) return usage("rebuild needs --fail=<disk,[disk]>");
  array::DiskArray arr(cfg);
  arr.initialize();
  for (const int d : failed) {
    if (d < 0 || d >= arr.total_disks()) return usage("--fail out of range");
    arr.fail_physical(d);
  }
  auto report = recon::reconstruct(arr);
  if (!report.is_ok()) {
    std::fprintf(stderr, "rebuild: %s\n", report.status().to_string().c_str());
    return 1;
  }
  const auto& r = report.value();
  std::printf("%s: rebuilt %.0f MB, read %.0f MB in %.2f s "
              "(%.1f MB/s read throughput, %d access(es)/stripe); "
              "verification OK\n",
              cfg.arch.name().c_str(), r.logical_bytes_recovered / 1e6,
              r.logical_bytes_read / 1e6, r.read_makespan_s,
              r.read_throughput_mbps(), r.read_accesses_per_stripe);
  return 0;
}

int cmd_faults(const Flags& flags) {
  auto cfgr = array_cfg_from(flags);
  if (!cfgr.is_ok()) return usage(cfgr.status().to_string().c_str());
  auto cfg = std::move(cfgr).take();
  cfg.fault.latent_error_rate = flags.get_double("latent", 0.01);
  cfg.fault.transient_read_error_p = flags.get_double("transient", 0.0);
  cfg.fault.transient_write_error_p = cfg.fault.transient_read_error_p;
  cfg.fault.slow_factor = flags.get_double("slow", 1.0);
  cfg.fault.seed = static_cast<std::uint64_t>(flags.get_int("fault-seed", 1));
  cfg.io_max_retries = flags.get_int("retries", 2);
  array::DiskArray arr(cfg);
  arr.initialize();
  auto failed = flags.get_int_list("fail");
  if (failed.empty()) failed.push_back(0);
  for (const int d : failed) {
    if (d < 0 || d >= arr.total_disks()) return usage("--fail out of range");
    arr.fail_physical(d);
  }
  auto report = recon::reconstruct(arr);
  if (!report.is_ok()) {
    std::fprintf(stderr, "faults: %s\n", report.status().to_string().c_str());
    return 1;
  }
  const auto& r = report.value();
  std::printf(
      "%s: rebuilt under faults in %.2f s (%.1f MB/s read); latent hits "
      "%llu; fallbacks mirror/parity/codec = %llu/%llu/%llu; retries %llu; "
      "hard errors %llu; unrecoverable elements %llu%s\n",
      cfg.arch.name().c_str(), r.total_makespan_s, r.read_throughput_mbps(),
      static_cast<unsigned long long>(r.latent_sectors_hit),
      static_cast<unsigned long long>(r.fallback_to_mirror),
      static_cast<unsigned long long>(r.fallback_to_parity),
      static_cast<unsigned long long>(r.fallback_to_codec),
      static_cast<unsigned long long>(r.retried_ops),
      static_cast<unsigned long long>(r.hard_errors),
      static_cast<unsigned long long>(r.unrecoverable_elements),
      r.degraded() ? " [DEGRADED]" : "; verification OK");
  return 0;
}

int cmd_online(const Flags& flags) {
  auto cfgr = array_cfg_from(flags, {/*n=*/3, /*seed=*/7, /*stacks=*/4});
  if (!cfgr.is_ok()) return usage(cfgr.status().to_string().c_str());
  auto cfg = std::move(cfgr).take();
  array::DiskArray arr(cfg);
  arr.initialize();
  arr.fail_physical(flags.get_int("fail", 0));
  ObserverScope scope(flags, /*force_trace=*/false, /*force_metrics=*/false,
                      /*default_interval=*/0.5);
  recon::OnlineConfig ocfg;
  ocfg.arrival.rate_hz = flags.get_double("rate", 30.0);
  ocfg.arrival.max_requests = flags.get_int("reads", 500);
  ocfg.arrival.seed = cfg.seed;
  ocfg.observer = scope.attach();
  auto report = recon::run_online_reconstruction(arr, ocfg);
  if (!report.is_ok()) {
    std::fprintf(stderr, "online: %s\n", report.status().to_string().c_str());
    return 1;
  }
  const auto& r = report.value();
  std::printf("%s: rebuild done at %.2f s; %zu user reads "
              "(%zu degraded); latency mean/p50/p95/p99 = "
              "%.1f/%.1f/%.1f/%.1f ms\n",
              cfg.arch.name().c_str(), r.rebuild_done_s, r.user_reads,
              r.degraded_reads, r.mean_latency_s * 1e3, r.p50_latency_s * 1e3,
              r.p95_latency_s * 1e3, r.p99_latency_s * 1e3);
  return scope.finish("online");
}

int cmd_qos(const Flags& flags) {
  auto cfgr = array_cfg_from(flags, {/*n=*/3, /*seed=*/7, /*stacks=*/4});
  if (!cfgr.is_ok()) return usage(cfgr.status().to_string().c_str());
  auto cfg = std::move(cfgr).take();
  array::DiskArray arr(cfg);
  arr.initialize();
  arr.fail_physical(flags.get_int("fail", 0));

  recon::OnlineConfig ocfg;
  auto kind = workload::arrival_kind_from(flags.get("arrival", "poisson"));
  if (!kind.is_ok()) return usage(kind.status().to_string().c_str());
  ocfg.arrival.kind = kind.value();
  ocfg.arrival.rate_hz = flags.get_double("rate", 40.0);
  ocfg.arrival.max_requests = flags.get_int("reads", 500);
  ocfg.arrival.seed = cfg.seed;
  ocfg.arrival.clients = flags.get_int("clients", 4);
  ocfg.arrival.burst_rate_hz = flags.get_double("burst-rate", 200.0);
  if (kind.value() == workload::ArrivalKind::kTrace) {
    const std::string path = flags.get("trace-file", "");
    if (path.empty()) return usage("--arrival=trace needs --trace-file=<csv>");
    auto points = workload::load_arrival_trace_csv(path);
    if (!points.is_ok()) {
      std::fprintf(stderr, "qos: %s\n", points.status().to_string().c_str());
      return 1;
    }
    ocfg.arrival.trace = std::move(points).take();
  }
  ocfg.mix.write_fraction = flags.get_double("writes", 0.0);
  auto policy = workload::rebuild_policy_from(flags.get("policy", "adaptive"));
  if (!policy.is_ok()) return usage(policy.status().to_string().c_str());
  ocfg.qos.policy = policy.value();
  ocfg.qos.rebuild_budget = flags.get_int("budget", 0);
  ocfg.qos.p99_target_s = flags.get_double("p99-ms", 120.0) / 1e3;
  ocfg.qos.control_interval_s = flags.get_double("interval", 0.25);

  ObserverScope scope(flags, /*force_trace=*/true, /*force_metrics=*/false,
                      /*default_interval=*/0.25);
  ocfg.observer = scope.attach();
  auto report = recon::run_online_reconstruction(arr, ocfg);
  if (!report.is_ok()) {
    std::fprintf(stderr, "qos: %s\n", report.status().to_string().c_str());
    return 1;
  }
  const auto& r = report.value();
  std::printf(
      "%s [%s/%s]: rebuild done at %.2f s; %zu/%zu requests completed "
      "(%zu degraded); read latency p50/p95/p99/p99.9 = "
      "%.1f/%.1f/%.1f/%.1f ms\n",
      cfg.arch.name().c_str(), workload::to_string(ocfg.arrival.kind),
      workload::to_string(ocfg.qos.policy), r.rebuild_done_s,
      r.requests_completed, r.requests_issued, r.degraded_reads,
      r.p50_latency_s * 1e3, r.p95_latency_s * 1e3, r.p99_latency_s * 1e3,
      r.p999_latency_s * 1e3);
  if (ocfg.qos.p99_target_s > 0)
    std::printf("SLO %.1f ms: %zu violations (%.2f%%); final budget %d, "
                "%d throttle adjustments, %zu control decisions\n",
                ocfg.qos.p99_target_s * 1e3, r.slo_violations,
                r.slo_violation_pct, r.final_rebuild_budget,
                r.throttle_adjustments,
                scope.trace().count(obs::EventKind::kThrottle));
  const std::string out = flags.get("export-trace", "");
  if (!out.empty()) {
    const auto points =
        workload::arrival_trace_from_events(scope.trace().events());
    const Status st = workload::write_arrival_trace_csv(out, points);
    if (!st.is_ok()) {
      std::fprintf(stderr, "qos: %s\n", st.to_string().c_str());
      return 1;
    }
    std::printf("wrote %zu arrival points to %s\n", points.size(),
                out.c_str());
  }
  return scope.finish("qos");
}

int cmd_trace(const Flags& flags) {
  auto cfgr = array_cfg_from(flags, {/*n=*/3, /*seed=*/7, /*stacks=*/4});
  if (!cfgr.is_ok()) return usage(cfgr.status().to_string().c_str());
  auto cfg = std::move(cfgr).take();
  array::DiskArray arr(cfg);
  arr.initialize();
  arr.fail_physical(flags.get_int("fail", 0));

  ObserverScope scope(flags, /*force_trace=*/true, /*force_metrics=*/true,
                      /*default_interval=*/0.5);
  recon::OnlineConfig ocfg;
  ocfg.arrival.rate_hz = flags.get_double("rate", 30.0);
  ocfg.arrival.max_requests = flags.get_int("reads", 500);
  ocfg.arrival.seed = cfg.seed;
  ocfg.observer = scope.attach();
  auto report = recon::run_online_reconstruction(arr, ocfg);
  if (!report.is_ok()) {
    std::fprintf(stderr, "trace: %s\n", report.status().to_string().c_str());
    return 1;
  }

  std::printf("%s: rebuild done at %.2f s; %zu events "
              "(%zu service spans, %zu queue enters, %zu rebuild I/Os), "
              "%zu timeline samples x %zu columns\n",
              cfg.arch.name().c_str(), report.value().rebuild_done_s,
              scope.trace().size(),
              scope.trace().count(obs::EventKind::kServiceStart),
              scope.trace().count(obs::EventKind::kQueueEnter),
              scope.trace().count(obs::EventKind::kRebuildIssue),
              scope.metrics().timeline().size(),
              scope.metrics().columns().size());
  return scope.finish("trace");
}

int cmd_scrub(const Flags& flags) {
  auto cfgr = array_cfg_from(flags);
  if (!cfgr.is_ok()) return usage(cfgr.status().to_string().c_str());
  auto cfg = std::move(cfgr).take();
  array::DiskArray arr(cfg);
  arr.initialize();
  Rng rng(cfg.seed);
  const int errors = flags.get_int("errors", 10);
  recon::inject_latent_errors(arr, rng, errors);
  auto report = recon::scrub(arr);
  if (!report.is_ok()) {
    std::fprintf(stderr, "scrub: %s\n", report.status().to_string().c_str());
    return 1;
  }
  const auto& r = report.value();
  std::printf("%s: injected %d; scanned %llu elements in %.2f s; "
              "%llu mismatches, repaired %llu data / %llu mirror / "
              "%llu parity, %llu undecidable\n",
              cfg.arch.name().c_str(), errors,
              static_cast<unsigned long long>(r.elements_scanned),
              r.makespan_s,
              static_cast<unsigned long long>(r.mismatches),
              static_cast<unsigned long long>(r.repaired_data),
              static_cast<unsigned long long>(r.repaired_mirror),
              static_cast<unsigned long long>(r.repaired_parity),
              static_cast<unsigned long long>(r.undecidable));
  return 0;
}

// One crash/recover cycle: seeded write workload into the armed crash
// point, power-cycle, dirty-region (or full) resync through the repair
// lifecycle, rebuild if a disk was also failed, then a verifying scrub
// and a full consistency + checksum audit. Returns 0 when the array
// ends healthy (verified) or in data-loss; 1 when it wedges anywhere
// in between.
int crash_cycle(const Flags& flags, std::uint64_t seed,
                std::int64_t crash_after, int fail_disk, bool full_resync,
                bool verbose) {
  auto cfgr = array_cfg_from(flags, {/*n=*/3, /*seed=*/1, /*stacks=*/2});
  if (!cfgr.is_ok()) return usage(cfgr.status().to_string().c_str());
  auto cfg = std::move(cfgr).take();
  cfg.content_bytes = 64;
  cfg.seed = seed;
  cfg.drl_region_stripes = flags.get_int("region-stripes", 2);
  cfg.checksums = true;
  cfg.fault.crash_after_writes = crash_after;
  cfg.fault.seed = seed;
  array::DiskArray arr(cfg);
  arr.initialize();
  repair::RepairConfig rc;
  // A crash on a degraded array can tear a write whose replica died:
  // the rebuild then propagates the surviving (torn) copy, which is
  // pair-consistent but fails the parity check. The executor's inline
  // verify would wedge there, so the audit is deferred to the
  // verifying scrub + explicit checks at the end of the cycle.
  rc.recon.verify = false;
  repair::RepairOrchestrator orch(arr, rc);

  auto fail_run = [&](const char* stage, const Status& st) {
    std::fprintf(stderr, "crash[seed=%llu]: %s: %s\n",
                 static_cast<unsigned long long>(seed), stage,
                 st.to_string().c_str());
    return 1;
  };

  if (fail_disk >= 0) {
    if (fail_disk >= arr.total_disks())
      return usage("--fail disk out of range");
    arr.fail_physical(fail_disk);
    if (Status st = orch.admit_failures(0.0); !st.is_ok())
      return fail_run("admit_failures", st);
  }

  integrity::CrashWorkloadConfig wcfg;
  wcfg.requests = flags.get_int("requests", 40);
  wcfg.seed = seed;
  wcfg.quiesce_every = flags.get_int("quiesce", 10);
  auto wl = integrity::run_crash_workload(arr, wcfg);
  if (!wl.is_ok()) return fail_run("workload", wl.status());
  double t = wl.value().makespan_s;

  integrity::ResyncReport rs;
  const bool crashed = arr.crashed();
  if (crashed) {
    if (Status st = orch.admit_crash(t); !st.is_ok())
      return fail_run("admit_crash", st);
    auto r = orch.resync(t, full_resync);
    if (!r.is_ok()) return fail_run("resync", r.status());
    rs = r.value();
    t += rs.makespan_s;
  }
  if (!arr.failed_physical().empty()) {
    auto rep = orch.run(t);
    if (!rep.is_ok()) return fail_run("rebuild", rep.status());
  }

  const repair::ArrayState state = orch.lifecycle().state();
  std::uint64_t scrub_repairs = 0;
  if (state == repair::ArrayState::kHealthy) {
    // A crash on a degraded array can tear a write whose partner died:
    // the resync cannot arbitrate those, so a verifying scrub absorbs
    // whatever survived before the final audit.
    auto sc = recon::scrub(arr);
    if (!sc.is_ok()) return fail_run("scrub", sc.status());
    scrub_repairs = sc.value().repaired_by_checksum +
                    sc.value().repaired_data + sc.value().repaired_mirror +
                    sc.value().repaired_parity;
    if (Status st = arr.verify_consistency(nullptr); !st.is_ok())
      return fail_run("post-recovery consistency", st);
    if (Status st = arr.verify_checksums(); !st.is_ok())
      return fail_run("post-recovery checksums", st);
  } else if (state != repair::ArrayState::kDataLoss) {
    std::fprintf(stderr, "crash[seed=%llu]: wedged in state %s\n",
                 static_cast<unsigned long long>(seed),
                 repair::to_string(state));
    return 1;
  }

  if (verbose) {
    std::printf("%s: ", cfg.arch.name().c_str());
    if (crashed)
      std::printf("crashed at write %lld (t=%.3f s); %d dirty region(s); "
                  "resync[%s] scanned %llu stripes, read %llu elements, "
                  "repaired %llu copies + %llu parity; ",
                  static_cast<long long>(crash_after),
                  wl.value().crash_t_s, wl.value().dirty_regions,
                  full_resync ? "full" : "drl",
                  static_cast<unsigned long long>(rs.stripes_scanned),
                  static_cast<unsigned long long>(rs.elements_read),
                  static_cast<unsigned long long>(rs.copies_rewritten),
                  static_cast<unsigned long long>(rs.parity_rewritten));
    else
      std::printf("workload completed without crashing; ");
    std::printf("final state: %s; scrub repairs: %llu; verification OK\n",
                repair::to_string(state),
                static_cast<unsigned long long>(scrub_repairs));
  } else {
    std::printf("seed %llu: crash@%lld, %d dirty, resync read %llu, "
                "state %s, scrub repairs %llu\n",
                static_cast<unsigned long long>(seed),
                static_cast<long long>(crash_after), wl.value().dirty_regions,
                static_cast<unsigned long long>(rs.elements_read),
                repair::to_string(state),
                static_cast<unsigned long long>(scrub_repairs));
  }
  return 0;
}

int cmd_crash(const Flags& flags) {
  auto archr = arch_from(common_from(flags));
  if (!archr.is_ok()) return usage(archr.status().to_string().c_str());
  const auto arch = std::move(archr).take();
  const int requests = flags.get_int("requests", 40);
  if (requests <= 0) return usage("--requests must be positive");
  const int writes_per_request = arch.has_parity() ? 3 : 2;
  const std::int64_t max_writes =
      static_cast<std::int64_t>(requests) * writes_per_request;
  const std::uint64_t seed0 =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));

  const int soak = flags.get_int("soak", 0);
  if (soak <= 0) {
    const std::int64_t crash_after =
        flags.get_int("crash-after", static_cast<int>(max_writes * 2 / 3));
    if (crash_after < 0) return usage("--crash-after must be >= 0");
    const int fail_disk = flags.has("fail") ? flags.get_int("fail", 0) : -1;
    return crash_cycle(flags, seed0, crash_after, fail_disk,
                       flags.get_bool("full-resync", false),
                       /*verbose=*/true);
  }

  // Soak: randomized crash points over a fixed seed range. Every run
  // must come out the far end healthy (verified) or in data-loss —
  // a wedge anywhere is a bug.
  int failures = 0;
  for (int i = 0; i < soak; ++i) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(i);
    std::uint64_t h = seed;
    const std::int64_t crash_after = 1 + static_cast<std::int64_t>(
        splitmix64(h) % static_cast<std::uint64_t>(max_writes));
    const int fail_disk =
        i % 3 == 0 ? static_cast<int>(
                         seed % static_cast<std::uint64_t>(arch.total_disks()))
                   : -1;
    failures += crash_cycle(flags, seed, crash_after, fail_disk,
                            /*full_resync=*/i % 5 == 0, /*verbose=*/false);
  }
  std::printf("soak: %d run(s), %d failure(s)\n", soak, failures);
  return failures == 0 ? 0 : 1;
}

int cmd_write(const Flags& flags) {
  auto cfgr = array_cfg_from(flags, {/*n=*/3, /*seed=*/777, /*stacks=*/4});
  if (!cfgr.is_ok()) return usage(cfgr.status().to_string().c_str());
  auto cfg = std::move(cfgr).take();
  array::DiskArray arr(cfg);
  arr.initialize();
  workload::WriteWorkloadConfig wcfg;
  wcfg.arrival.max_requests = flags.get_int("requests", 1000);
  wcfg.arrival.seed = cfg.seed;
  const auto reqs = workload::generate_large_writes(arr, wcfg);
  const auto report = workload::run_write_workload(arr, reqs);
  std::printf("%s: %d requests, %.0f MB payload in %.2f s -> %.1f MB/s "
              "(%llu rows, %llu write accesses, %.0f MB parity reads)\n",
              cfg.arch.name().c_str(), wcfg.arrival.max_requests,
              report.user_bytes / 1e6, report.makespan_s,
              report.write_throughput_mbps(),
              static_cast<unsigned long long>(report.rows_written),
              static_cast<unsigned long long>(report.write_accesses),
              report.bytes_read / 1e6);
  return 0;
}

int cmd_table1(const Flags& flags) {
  const int lo = flags.get_int("n-min", 3);
  const int hi = flags.get_int("n-max", 7);
  Table table("Table I");
  table.set_header(
      {"n", "class", "cases", "read accesses", "avg", "4n/(2n+1)"});
  for (int n = lo; n <= hi; ++n) {
    const auto cases = recon::enumerate_double_failure_cases(
        layout::Architecture::mirror_with_parity(n, true));
    for (const auto& row : cases.rows)
      table.add_row({Table::num(n), std::string(recon::to_string(row.cls)),
                     Table::num(static_cast<std::uint64_t>(row.num_cases)),
                     Table::num(row.num_read_accesses),
                     Table::num(cases.average_read_accesses, 4),
                     Table::num(recon::paper_avg_read_shifted_mirror_parity(n),
                                4)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_fig7(const Flags& flags) {
  const int hi = flags.get_int("n-max", 50);
  Table table("Fig. 7 ratios (%)");
  table.set_header({"n", "vs traditional", "vs raid6"});
  for (int n = 2; n <= hi; ++n) {
    const auto p = recon::fig7_point(n);
    table.add_row({Table::num(n), Table::num(p.ratio_vs_traditional_pct, 2),
                   Table::num(p.ratio_vs_raid6_pct, 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_three_mirror(const Flags& flags) {
  const CommonOptions c =
      common_from(flags, {/*n=*/5, /*seed=*/1, /*stacks=*/1});
  mm::MultiArrayConfig cfg;
  cfg.layout.n = c.n;
  cfg.layout.replica_arrays = flags.get_int("replicas", 2);
  cfg.layout.shifted = c.arrangement != "traditional";
  cfg.layout.arrangement = c.arrangement;
  cfg.content_bytes = 128;
  auto arrr = mm::MultiMirrorArray::create(cfg);
  if (!arrr.is_ok()) {
    std::fprintf(stderr, "three-mirror: %s\n",
                 arrr.status().to_string().c_str());
    return 1;
  }
  auto& arr = arrr.value();
  arr.initialize();
  const auto failed = flags.get_int_list("fail");
  if (failed.empty()) return usage("three-mirror needs --fail=<disk,[disk]>");
  for (const int d : failed) {
    if (d < 0 || d >= arr.total_disks()) return usage("--fail out of range");
    arr.fail_physical(d);
  }
  auto report = arr.reconstruct();
  if (!report.is_ok()) {
    std::fprintf(stderr, "three-mirror: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }
  std::printf("%s: rebuilt %.0f MB at %.1f MB/s, %d access(es)/stripe; "
              "verification OK\n",
              arr.layout().name().c_str(),
              report.value().logical_bytes_recovered / 1e6,
              report.value().read_throughput_mbps(),
              report.value().read_accesses_per_stripe);
  return 0;
}

int cmd_simbench(const Flags& flags) {
  // Backend: --kernel wins; otherwise whatever SMA_SIM_QUEUE resolved
  // to (default_queue_backend() reads the env on first use).
  sim::QueueBackend backend = sim::default_queue_backend();
  const std::string kernel = flags.get("kernel", "");
  if (kernel == "calendar") backend = sim::QueueBackend::kCalendar;
  else if (kernel == "heap") backend = sim::QueueBackend::kHeap;
  else if (kernel == "legacy") backend = sim::QueueBackend::kLegacy;
  else if (!kernel.empty())
    return usage("--kernel must be calendar|heap|legacy");
  sim::set_default_queue_backend(backend);
  const char* backend_name = "legacy";
  if (backend == sim::QueueBackend::kCalendar) backend_name = "calendar";
  if (backend == sim::QueueBackend::kHeap) backend_name = "heap";

  const bool batch = flags.get_bool("batch", true);
  const int reps = flags.get_int("reps", 3);
  const int threads = flags.get_int("threads", 1);
  const int cases = flags.get_int("cases", 1);
  const bool json = flags.get_bool("json", false);
  if (reps < 1 || threads < 0 || cases < 1)
    return usage("--reps/--cases must be >= 1, --threads >= 0");

  auto cfgr = array_cfg_from(flags, {/*n=*/3, /*seed=*/2012, /*stacks=*/64});
  if (!cfgr.is_ok()) return usage(cfgr.status().to_string().c_str());
  const auto base_cfg = std::move(cfgr).take();
  const int fail = flags.get_int("fail", 0);
  if (fail < 0 || fail >= base_cfg.arch.total_disks())
    return usage("--fail out of range");
  const double rate_hz = flags.get_double("rate", 30.0);
  const int requests = flags.get_int("requests", 600);
  const std::uint64_t seed = base_cfg.seed;

  struct CaseResult {
    bool ok = false;
    double rebuild_done_s = 0.0;
    double p99_s = 0.0;
    std::uint64_t ops = 0;       // disk reads + writes
    std::uint64_t events = 0;    // seed-kernel event count for this case
    std::uint64_t digest = 0;
    std::string error;
  };
  // Each case is a pure function of its index (own array, own seeds) —
  // the MultiKernel contract — so digests must agree across reps and
  // thread counts. Arrays are built uninitialized: simbench times the
  // kernel, not content generation.
  auto run_case = [&](std::size_t i) {
    array::ArrayConfig cfg = base_cfg;
    cfg.seed = base_cfg.seed + i;
    array::DiskArray arr(cfg);
    arr.fail_physical(fail);
    recon::OnlineConfig ocfg;
    ocfg.arrival.rate_hz = rate_hz;
    ocfg.arrival.max_requests = requests;
    ocfg.arrival.seed = seed + i;
    ocfg.batch_drains = batch;
    CaseResult r;
    auto report = recon::run_online_reconstruction(arr, ocfg);
    if (!report.is_ok()) {
      r.error = report.status().to_string();
      return r;
    }
    const auto& rep = report.value();
    for (int d = 0; d < arr.total_disks(); ++d) {
      const auto& c = arr.physical(d).counters();
      r.ops += c.reads + c.writes;
    }
    // One event per disk op + per arrival + rebuild kickoff + per-disk
    // dispatch kicks: what the seed kernel schedules for this workload,
    // so events/sec is comparable across backends and batch modes.
    r.events = r.ops + rep.requests_issued + 1 +
               static_cast<std::uint64_t>(arr.total_disks() - 1);
    r.rebuild_done_s = rep.rebuild_done_s;
    r.p99_s = rep.p99_latency_s;
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](const void* p, std::size_t len) {
      const auto* b = static_cast<const unsigned char*>(p);
      for (std::size_t j = 0; j < len; ++j)
        h = (h ^ b[j]) * 1099511628211ull;
    };
    mix(&rep.rebuild_done_s, sizeof rep.rebuild_done_s);
    mix(&rep.mean_latency_s, sizeof rep.mean_latency_s);
    mix(&rep.p99_latency_s, sizeof rep.p99_latency_s);
    mix(&rep.degraded_reads, sizeof rep.degraded_reads);
    mix(&r.ops, sizeof r.ops);
    r.digest = h;
    r.ok = true;
    return r;
  };

  std::vector<CaseResult> best;
  double best_wall = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    sim::MultiKernel mk({static_cast<std::size_t>(threads)});
    const auto start = std::chrono::steady_clock::now();
    auto results = mk.map(static_cast<std::size_t>(cases), run_case);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok) {
        std::fprintf(stderr, "simbench: case %zu: %s\n", i,
                     results[i].error.c_str());
        return 1;
      }
      if (rep > 0 && results[i].digest != best[i].digest) {
        std::fprintf(stderr,
                     "simbench: case %zu diverged across reps "
                     "(%016llx vs %016llx)\n",
                     i, static_cast<unsigned long long>(results[i].digest),
                     static_cast<unsigned long long>(best[i].digest));
        return 1;
      }
    }
    if (rep == 0 || wall < best_wall) best_wall = wall;
    if (rep == 0) best = std::move(results);
  }

  std::uint64_t events = 0;
  double sim_s = 0.0;
  std::uint64_t digest = 1469598103934665603ull;
  for (const auto& r : best) {
    events += r.events;
    sim_s += r.rebuild_done_s;
    digest = (digest ^ r.digest) * 1099511628211ull;
  }
  const double events_per_s = static_cast<double>(events) / best_wall;
  const double sim_hours_per_s = sim_s / 3600.0 / best_wall;

  if (json) {
    std::printf(
        "{\"kernel\": \"%s\", \"batch_drains\": %s, \"threads\": %d, "
        "\"cases\": %d, \"reps\": %d, \"events\": %llu, \"wall_s\": %.6f, "
        "\"events_per_s\": %.0f, \"sim_hours_per_s\": %.3f, "
        "\"rebuild_done_s\": %.6f, \"p99_ms\": %.3f, "
        "\"digest\": \"%016llx\", \"deterministic\": true}\n",
        backend_name, batch ? "true" : "false", threads, cases, reps,
        static_cast<unsigned long long>(events), best_wall, events_per_s,
        sim_hours_per_s, best[0].rebuild_done_s, best[0].p99_s * 1e3,
        static_cast<unsigned long long>(digest));
  } else {
    std::printf(
        "simbench[%s%s]: %d case(s) x %d rep(s), threads=%d\n"
        "  %llu events in %.2f ms best wall: %.2fM events/s, "
        "%.1f sim-hours/s\n"
        "  case 0: rebuild done at %.2f s, p99 %.1f ms; "
        "digest %016llx; deterministic across reps\n",
        backend_name, batch ? "+batch" : "", cases, reps, threads,
        static_cast<unsigned long long>(events), best_wall * 1e3,
        events_per_s / 1e6, sim_hours_per_s, best[0].rebuild_done_s,
        best[0].p99_s * 1e3, static_cast<unsigned long long>(digest));
  }
  return 0;
}

int cmd_replay(const Flags& flags) {
  const std::string path = flags.get("file", "");
  if (path.empty()) return usage("replay needs --file=<trace>");
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "replay: cannot open %s\n", path.c_str());
    return 1;
  }
  auto ops = core::parse_trace(in);
  if (!ops.is_ok()) {
    std::fprintf(stderr, "replay: %s\n", ops.status().to_string().c_str());
    return 1;
  }
  const CommonOptions c = common_from(flags);
  core::VolumeConfig vcfg;
  vcfg.n = c.n;
  vcfg.with_parity = c.parity;
  vcfg.shifted = c.arrangement != "traditional";
  vcfg.arrangement = c.arrangement;
  vcfg.stacks = c.stacks;
  vcfg.content_bytes =
      static_cast<std::size_t>(flags.get_int("content-bytes", 4096));
  auto volume = core::MirroredVolume::create(vcfg);
  if (!volume.is_ok()) {
    std::fprintf(stderr, "replay: %s\n",
                 volume.status().to_string().c_str());
    return 1;
  }
  auto vol = std::move(volume).take();
  auto report = core::replay_trace(vol, ops.value());
  if (!report.is_ok()) {
    std::fprintf(stderr, "replay: %s\n", report.status().to_string().c_str());
    return 1;
  }
  std::printf("%s: replayed %zu ops (%zu reads, %zu writes; %.1f MB in, "
              "%.1f MB out); consistency %s\n",
              vol.arch().name().c_str(),
              report.value().reads + report.value().writes,
              report.value().reads, report.value().writes,
              report.value().bytes_read / 1e6,
              report.value().bytes_written / 1e6,
              vol.verify().to_string().c_str());
  return vol.verify().is_ok() ? 0 : 1;
}

int cmd_degraded(const Flags& flags) {
  auto cfgr = array_cfg_from(flags, {/*n=*/3, /*seed=*/13, /*stacks=*/2});
  if (!cfgr.is_ok()) return usage(cfgr.status().to_string().c_str());
  auto cfg = std::move(cfgr).take();
  array::DiskArray arr(cfg);
  arr.initialize();
  arr.fail_physical(flags.get_int("fail", 0));
  workload::DegradedReadConfig dcfg;
  dcfg.arrival.max_requests = flags.get_int("reads", 2000);
  dcfg.arrival.seed = cfg.seed;
  auto report = workload::run_degraded_reads(arr, dcfg);
  if (!report.is_ok()) {
    std::fprintf(stderr, "degraded: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }
  const auto& r = report.value();
  std::printf("%s: %d reads at %.1f MB/s; %zu degraded; hottest disk %d "
              "ops (imbalance %.2f)\n",
              cfg.arch.name().c_str(), dcfg.arrival.max_requests,
              r.throughput_mbps(),
              r.degraded_reads, r.hottest_disk_ops, r.load_imbalance);
  return 0;
}

int cmd_reliability(const Flags& flags) {
  auto archr = arch_from(common_from(flags));
  if (!archr.is_ok()) return usage(archr.status().to_string().c_str());
  const auto arch = std::move(archr).take();
  recon::MttdlParams params;
  params.disk_mttf_hours = flags.get_double("mttf-h", 1.0e6);
  params.mttr_hours = flags.get_double("mttr-h", 1.0);
  const auto report = recon::estimate_mttdl(arch, params);
  std::printf("%s: avg fatal 2nd = %.2f, avg fatal 3rd = %.2f, "
              "MTTR %.3f h -> MTTDL %.3e years\n",
              arch.name().c_str(), report.fatal.avg_fatal_second,
              report.fatal.avg_fatal_third, params.mttr_hours,
              report.mttdl_years());
  return 0;
}

int cmd_repair(const Flags& flags) {
  const CommonOptions c = common_from(flags);
  auto archr = arch_from(c);
  if (!archr.is_ok()) return usage(archr.status().to_string().c_str());
  const auto arch = std::move(archr).take();

  // Monte-Carlo lifetime mode: replay whole failure/repair lifetimes
  // through the lifecycle state machine and print the estimate beside
  // the closed form it cross-checks.
  const int mc_trials = flags.get_int("mc-trials", 0);
  if (mc_trials > 0) {
    recon::MonteCarloParams params;
    params.disk_mttf_hours = flags.get_double("mttf-h", 1.0e6);
    params.mttr_hours = flags.get_double("mttr-h", 10.0);
    params.trials = mc_trials;
    params.seed = c.seed;
    params.spare_replenish_hours = flags.get_double("replenish-h", 0.0);
    const int spares = flags.get_int("spares", 0);
    if (spares > 0) {
      const std::string policy = flags.get("policy", "dedicated");
      if (policy == "dedicated") {
        params.spare = {repair::SparePolicy::kDedicated, spares};
      } else if (policy == "distributed") {
        params.spare = {repair::SparePolicy::kDistributed, spares};
      } else {
        return usage("--policy must be dedicated|distributed with --spares");
      }
    }
    const int enclosure = flags.get_int("enclosure-size", 0);
    if (enclosure > 0) {
      params.enclosure_of.resize(static_cast<std::size_t>(arch.total_disks()));
      for (int d = 0; d < arch.total_disks(); ++d)
        params.enclosure_of[static_cast<std::size_t>(d)] = d / enclosure;
      params.enclosure_hazard_factor =
          flags.get_double("enclosure-factor", 10.0);
    }

    auto mc = recon::simulate_mttdl(arch, params);
    if (!mc.is_ok()) {
      std::fprintf(stderr, "repair: %s\n", mc.status().to_string().c_str());
      return 1;
    }
    recon::MttdlParams cp;
    cp.disk_mttf_hours = params.disk_mttf_hours;
    cp.mttr_hours = params.mttr_hours;
    const auto closed = recon::estimate_mttdl(arch, cp);
    const auto& r = mc.value();
    std::printf("%s: MC MTTDL %.1f h (stderr %.1f, %d trials), "
                "closed form %.1f h\n",
                arch.name().c_str(), r.mttdl_hours, r.stderr_hours, r.trials,
                closed.mttdl_hours);
    std::printf("mean failures to loss %.2f, spare waits %llu, "
                "lifecycle transitions %llu\n",
                r.mean_failures_to_loss,
                static_cast<unsigned long long>(r.spare_waits),
                static_cast<unsigned long long>(r.transitions));
    return 0;
  }

  // Orchestrated-rebuild mode: fail disks, drive the orchestrator to a
  // terminal state, print the lifecycle the array walked through.
  auto cfgr = array_cfg_from(flags);
  if (!cfgr.is_ok()) return usage(cfgr.status().to_string().c_str());
  auto cfg = std::move(cfgr).take();
  repair::RepairConfig rc;
  const std::string policy = flags.get("policy", "none");
  const int spares = flags.get_int("spares", 1);
  if (policy == "dedicated") {
    rc.spare = {repair::SparePolicy::kDedicated, spares};
    cfg.spare_disks = spares;
  } else if (policy == "distributed") {
    rc.spare = {repair::SparePolicy::kDistributed, spares};
  } else if (policy != "none") {
    return usage("--policy must be none|dedicated|distributed");
  }
  const int budget = flags.get_int("interrupt-after", -1);
  if (budget == 0) return usage("--interrupt-after must be positive");
  if (budget > 0) {
    rc.checkpointing = true;
    rc.stripes_per_round = budget;
  }

  array::DiskArray arr(cfg);
  arr.initialize();
  auto fails = flags.get_int_list("fail");
  if (fails.empty()) fails = {0};
  for (const int f : fails) {
    if (f < 0 || f >= arr.total_disks())
      return usage("--fail disk out of range");
    arr.fail_physical(f);
  }

  repair::RepairOrchestrator orch(arr, rc);
  const int second = flags.get_int("second-fail", -1);
  if (second >= 0) {
    if (second >= arr.total_disks())
      return usage("--second-fail disk out of range");
    if (budget <= 0)
      return usage("--second-fail needs --interrupt-after=<stripes>");
    auto first = orch.run(0.0, 1);  // one bounded round, then the blow
    if (!first.is_ok()) {
      std::fprintf(stderr, "repair: %s\n",
                   first.status().to_string().c_str());
      return 1;
    }
    arr.fail_physical(second);
  }
  auto report = orch.run();
  if (!report.is_ok()) {
    std::fprintf(stderr, "repair: %s\n", report.status().to_string().c_str());
    return 1;
  }
  const auto& r = report.value();
  std::printf("%s: %d round(s), %llu elements read, %llu written, "
              "read makespan %.3f s, total %.3f s, %d spare(s) used (%s)\n",
              arch.name().c_str(), r.rounds,
              static_cast<unsigned long long>(r.elements_read),
              static_cast<unsigned long long>(r.elements_written),
              r.read_makespan_s, r.total_makespan_s, r.spares_used,
              to_string(r.policy));
  for (const auto& t : r.transitions)
    std::printf("  t=%9.3f  %-15s -> %-15s (%s)\n", t.t_s, to_string(t.from),
                to_string(t.to), t.reason.c_str());
  std::printf("final state: %s\n", to_string(r.final_state));
  return r.final_state == repair::ArrayState::kHealthy ? 0 : 1;
}

int cmd_update_penalty(const Flags& flags) {
  const int n = flags.get_int("n", 5);
  const ec::EvenOddCodec evenodd(n);
  const ec::RdpCodec rdp(n);
  const ec::Codec* codecs[] = {&evenodd, &rdp};
  for (const auto* codec : codecs) {
    auto penalty = ec::measure_update_penalty(*codec);
    if (!penalty.is_ok()) {
      std::fprintf(stderr, "update-penalty: %s\n",
                   penalty.status().to_string().c_str());
      return 1;
    }
    std::printf("%-20s parity updates per data write: min %d avg %.2f "
                "max %d (optimal %d)\n",
                codec->name().c_str(), penalty.value().min,
                penalty.value().average, penalty.value().max,
                ec::optimal_parity_updates(codec->fault_tolerance()));
  }
  std::printf("mirror methods: 1 replica write (+1 parity element with the "
              "parity disk) — optimal by construction\n");
  return 0;
}

int cmd_fleet(const Flags& flags) {
  const CommonOptions c =
      common_from(flags, {/*n=*/4, /*seed=*/2012, /*stacks=*/16});
  fleet::FleetConfig cfg;
  cfg.arrays = flags.get_int("arrays", 64);
  cfg.n = c.n;
  cfg.parity = c.parity;
  cfg.stacks = c.stacks;
  // Layout resolution, newest spelling first: --layout=<spec[,spec]>
  // (registry specs cycled across arrays), --arrangement=<spec> (one
  // registry spec fleet-wide), then the deprecated enum spellings
  // --mix=shifted|traditional|alternating / --traditional.
  if (flags.has("layout")) {
    cfg.layout = flags.get("layout", "");
  } else if (flags.has("arrangement")) {
    cfg.layout = c.arrangement;
  } else {
    const std::string mix =
        flags.get("mix", flags.get_bool("traditional", false) ? "traditional"
                                                              : "shifted");
    auto arrangement = fleet::arrangement_mix_from(mix);
    if (!arrangement.is_ok())
      return usage("--mix must be shifted|traditional|alternating");
    cfg.arrangement = arrangement.value();
  }
  auto policy =
      fleet::placement_policy_from(flags.get("placement", "declustered"));
  if (!policy.is_ok())
    return usage("--placement must be round_robin|random|declustered");
  cfg.placement.policy = policy.value();
  cfg.placement.volumes = flags.get_int("volumes", 4 * cfg.arrays);
  cfg.placement.segments_per_volume = flags.get_int("segments", 8);
  cfg.placement.spread = flags.get_int("spread", 4);
  cfg.arrival.rate_hz = flags.get_double("rate", 20.0 * cfg.arrays);
  cfg.arrival.max_requests = flags.get_int("requests", 50000);
  cfg.failed_arrays = flags.get_int("failed", cfg.arrays / 16 + 1);
  cfg.seed = c.seed;
  cfg.threads = static_cast<std::size_t>(flags.get_int("threads", 4));
  cfg.timeline.horizon_hours = flags.get_double("horizon-h", 24.0 * 365.0);
  cfg.timeline.disk_mttf_hours = flags.get_double("mttf-h", 5.0e4);
  const auto res = fleet::run_fleet(cfg);
  if (!res.is_ok()) return usage(res.status().to_string().c_str());
  const fleet::FleetReport& r = res.value();

  const std::string layout_desc =
      !cfg.layout.empty()
          ? cfg.layout
          : (cfg.parity ? layout::Architecture::mirror_with_parity(
                              cfg.n, cfg.arrangement !=
                                         fleet::ArrangementMix::kTraditional)
                        : layout::Architecture::mirror(
                              cfg.n, cfg.arrangement !=
                                         fleet::ArrangementMix::kTraditional))
                .name();
  std::printf("fleet: %d arrays of %s, %s placement (%d volumes x %d "
              "segments, spread %d)\n",
              r.arrays, layout_desc.c_str(),
              fleet::to_string(cfg.placement.policy), cfg.placement.volumes,
              cfg.placement.segments_per_volume, cfg.placement.spread);
  std::printf("serving: %llu requests routed, %llu completed, %llu degraded "
              "reads across %d rebuilding arrays\n",
              static_cast<unsigned long long>(r.requests_routed),
              static_cast<unsigned long long>(r.requests_completed),
              static_cast<unsigned long long>(r.degraded_reads),
              r.failed_arrays);
  std::printf("latency: mean %.4f s  p99 %.4f s  p99.9 %.4f s  max %.4f s\n",
              r.mean_latency_s, r.p99_latency_s, r.p999_latency_s,
              r.max_latency_s);
  std::printf("volumes: %.1f%% degraded; worst volume p99 %.4f s (vol %d); "
              "worst degraded p99 %.4f s (vol %d)\n",
              100.0 * r.degraded_volume_fraction, r.worst_volume_p99_s,
              r.worst_volume, r.worst_degraded_volume_p99_s,
              r.worst_degraded_volume);
  std::printf("rebuild: mean %.2f s  max %.2f s -> timeline repair %.2f h\n",
              r.mean_rebuild_s, r.max_rebuild_s,
              r.mean_rebuild_s * cfg.repair_capacity_scale / 3600.0);
  std::printf("timeline (%.0f h): %d failures, %d repairs, %d data losses; "
              "mean %.3f concurrent rebuilds (max %d), >=2 rebuilding "
              "%.2f%% of the time\n",
              r.timeline.horizon_hours, r.timeline.failures,
              r.timeline.repairs_completed, r.timeline.data_loss_events,
              r.timeline.mean_concurrent_rebuilds,
              r.timeline.max_concurrent_rebuilds,
              100.0 * r.timeline.frac_time_ge2);
  std::printf("fleet MTTDL %.0f h (%.2f years); digest %016llx\n",
              r.fleet_mttdl_hours, r.fleet_mttdl_hours / (24 * 365.25),
              static_cast<unsigned long long>(r.digest));
  return 0;
}

int cmd_chaos(const Flags& flags) {
  const CommonOptions c = common_from(flags, {/*n=*/4, /*seed=*/1});
  // Replay seeds come from oracle violation messages and use the full
  // 64-bit range; the shared int-typed --seed would truncate them.
  std::uint64_t seed = 20120901;
  bool seeded = false;
  if (flags.has("seed")) {
    const std::string raw = flags.get("seed", "");
    char* end = nullptr;
    seed = std::strtoull(raw.c_str(), &end, 10);
    if (end == raw.c_str() || *end != '\0')
      return usage("--seed must be an unsigned integer");
    seeded = true;
  }

  chaos::ChaosConfig cfg;
  cfg.n = c.n;
  cfg.parity = flags.get_bool("parity", true);
  cfg.shifted = c.arrangement != "traditional";
  cfg.hedge.enabled = flags.get_bool("hedge", false);
  const std::string sabotage = flags.get("sabotage", "none");
  if (sabotage == "skip-resync")
    cfg.sabotage = chaos::ChaosConfig::Sabotage::kSkipResync;
  else if (sabotage == "leak-corruption")
    cfg.sabotage = chaos::ChaosConfig::Sabotage::kLeakCorruption;
  else if (sabotage != "none")
    return usage("--sabotage must be none|skip-resync|leak-corruption");

  // Soak mode: a seeded batch of composed scenarios, every violation
  // printed with its replay pair.
  const int soak_runs = flags.get_int("soak", 0);
  if (soak_runs > 0) {
    chaos::SoakConfig scfg;
    scfg.scenarios = soak_runs;
    scfg.base_seed = seed;
    scfg.n = c.n;
    scfg.threads = static_cast<std::size_t>(flags.get_int("threads", 1));
    const auto r = chaos::run_soak(scfg);
    if (!r.is_ok()) {
      std::fprintf(stderr, "chaos: %s\n", r.status().to_string().c_str());
      return 1;
    }
    std::printf("soak: %d scenario(s), %d violation(s), digest %016llx\n",
                r.value().scenarios_run, r.value().violations,
                static_cast<unsigned long long>(r.value().digest));
    for (const std::string& m : r.value().violation_messages)
      std::fprintf(stderr, "chaos: %s\n", m.c_str());
    return r.value().violations == 0 ? 0 : 1;
  }

  // Single scenario: --scenario replays a spec verbatim (pair it with
  // the --seed a violation names), --seed alone composes one, neither
  // runs the drift-gated reference compound.
  const int disks =
      (cfg.parity ? layout::Architecture::mirror_with_parity(c.n, cfg.shifted)
                  : layout::Architecture::mirror(c.n, cfg.shifted))
          .total_disks();
  if (flags.has("scenario")) {
    auto parsed = chaos::parse_scenario(flags.get("scenario", ""), seed);
    if (!parsed.is_ok()) return usage(parsed.status().to_string().c_str());
    cfg.scenario = std::move(parsed).take();
  } else if (seeded) {
    cfg.scenario = chaos::compose_scenario(seed, disks);
  } else {
    cfg.scenario = chaos::reference_scenario(disks);
  }

  std::printf("scenario: %s (seed %llu, %s, n=%d%s%s)\n",
              cfg.scenario.spec().c_str(),
              static_cast<unsigned long long>(cfg.scenario.seed),
              cfg.shifted ? "shifted" : "traditional", cfg.n,
              cfg.parity ? ", parity" : "",
              cfg.hedge.enabled ? ", hedged" : "");
  const auto r = chaos::run_scenario(cfg);
  if (!r.is_ok()) {
    std::fprintf(stderr, "chaos: %s\n", r.status().to_string().c_str());
    return 1;
  }
  const chaos::ChaosReport& rep = r.value();
  std::printf("serving: %llu/%llu requests, degraded p99 %.4f s, "
              "%d fail-slow flag(s), %llu reroute(s), %llu hedge(s)\n",
              static_cast<unsigned long long>(rep.serving.requests_completed),
              static_cast<unsigned long long>(rep.serving.requests_issued),
              rep.degraded_p99_s, rep.serving.fail_slow_flagged,
              static_cast<unsigned long long>(rep.serving.affinity_reroutes),
              static_cast<unsigned long long>(rep.serving.hedged_reads));
  if (rep.crashed)
    std::printf("crash: resync scanned %d region(s), scrub repaired %llu\n",
                rep.resync.regions_scanned,
                static_cast<unsigned long long>(
                    rep.crash_scrub.repaired_by_checksum));
  if (rep.corruptions_injected > 0)
    std::printf("corruption: %d injected, scrub found %llu, repaired %llu\n",
                rep.corruptions_injected,
                static_cast<unsigned long long>(rep.scrub.checksum_mismatches),
                static_cast<unsigned long long>(
                    rep.scrub.repaired_by_checksum));
  if (rep.rebuilt)
    std::printf("rebuild: %d repair(s), %llu bytes recovered\n",
                rep.repairs_started,
                static_cast<unsigned long long>(
                    rep.rebuild.logical_bytes_recovered));
  std::printf("oracle: %d check(s) passed; final state: %s; digest %016llx\n",
              rep.oracle_checks, repair::to_string(rep.final_state),
              static_cast<unsigned long long>(rep.digest));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  // Uniform help: `smactl help`, `smactl --help`, and
  // `smactl <command> --help` all print the usage text and exit 0.
  if (flags.get_bool("help", false) ||
      (!flags.positional().empty() && flags.positional()[0] == "help")) {
    usage_stream(stdout, nullptr);
    return 0;
  }
  if (flags.positional().empty()) return usage();
  const std::string& cmd = flags.positional()[0];

  int rc;
  if (cmd == "layouts") rc = cmd_layouts(flags);
  else if (cmd == "layout") rc = cmd_layout(flags);
  else if (cmd == "plan") rc = cmd_plan(flags);
  else if (cmd == "rebuild") rc = cmd_rebuild(flags);
  else if (cmd == "online") rc = cmd_online(flags);
  else if (cmd == "qos") rc = cmd_qos(flags);
  else if (cmd == "trace") rc = cmd_trace(flags);
  else if (cmd == "scrub") rc = cmd_scrub(flags);
  else if (cmd == "crash") rc = cmd_crash(flags);
  else if (cmd == "write") rc = cmd_write(flags);
  else if (cmd == "table1") rc = cmd_table1(flags);
  else if (cmd == "fig7") rc = cmd_fig7(flags);
  else if (cmd == "three-mirror") rc = cmd_three_mirror(flags);
  else if (cmd == "degraded") rc = cmd_degraded(flags);
  else if (cmd == "faults") rc = cmd_faults(flags);
  else if (cmd == "reliability") rc = cmd_reliability(flags);
  else if (cmd == "repair") rc = cmd_repair(flags);
  else if (cmd == "update-penalty") rc = cmd_update_penalty(flags);
  else if (cmd == "replay") rc = cmd_replay(flags);
  else if (cmd == "simbench") rc = cmd_simbench(flags);
  else if (cmd == "fleet") rc = cmd_fleet(flags);
  else if (cmd == "chaos") rc = cmd_chaos(flags);
  else return usage(("unknown command: " + cmd).c_str());

  // Typed getters record malformed values as they are consumed; a typo
  // silently falling back to a default ran the wrong experiment, so it
  // is fatal, not advisory.
  if (!flags.errors().empty()) {
    for (const auto& e : flags.errors())
      std::fprintf(stderr, "error: %s\n", e.c_str());
    return 2;
  }
  return rc;
}
