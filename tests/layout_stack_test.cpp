#include "layout/stack.hpp"

#include <gtest/gtest.h>

#include <set>

namespace sma::layout {
namespace {

TEST(Stack, RoundTripMapping) {
  StackMapper m(7);
  for (int stripe = 0; stripe < m.stripes_per_stack(); ++stripe)
    for (int logical = 0; logical < 7; ++logical) {
      const int phys = m.physical_of(logical, stripe);
      EXPECT_GE(phys, 0);
      EXPECT_LT(phys, 7);
      EXPECT_EQ(m.logical_of(phys, stripe), logical);
    }
}

TEST(Stack, StripeZeroIsIdentity) {
  StackMapper m(5);
  for (int d = 0; d < 5; ++d) EXPECT_EQ(m.physical_of(d, 0), d);
}

TEST(Stack, RotationIsCyclic) {
  StackMapper m(4);
  EXPECT_EQ(m.physical_of(0, 1), 1);
  EXPECT_EQ(m.physical_of(3, 1), 0);
  EXPECT_EQ(m.physical_of(2, 3), 1);
}

TEST(Stack, OnePhysicalFailureCoversEveryLogicalDisk) {
  // The defining property of a stack: a single failed physical disk
  // plays every logical role exactly once across the stack's stripes.
  StackMapper m(9);
  const auto per_stripe = m.failed_logical_per_stripe({4});
  ASSERT_EQ(per_stripe.size(), 9u);
  std::set<int> seen;
  for (const auto& stripe_failures : per_stripe) {
    ASSERT_EQ(stripe_failures.size(), 1u);
    seen.insert(stripe_failures[0]);
  }
  EXPECT_EQ(seen.size(), 9u);  // all logical disks covered
}

TEST(Stack, TwoPhysicalFailuresCoverAllGapClasses) {
  // Two failed physical disks at distance d hit every logical pair with
  // the same cyclic distance, once per stripe.
  StackMapper m(6);
  const auto per_stripe = m.failed_logical_per_stripe({1, 4});
  std::set<std::pair<int, int>> pairs;
  for (const auto& f : per_stripe) {
    ASSERT_EQ(f.size(), 2u);
    pairs.emplace(std::min(f[0], f[1]), std::max(f[0], f[1]));
  }
  // distance 3 in a 6-cycle: pairs {0,3},{1,4},{2,5}, each seen twice.
  EXPECT_EQ(pairs.size(), 3u);
  EXPECT_TRUE(pairs.count({1, 4}));
  EXPECT_TRUE(pairs.count({0, 3}));
  EXPECT_TRUE(pairs.count({2, 5}));
}

TEST(Stack, SingleDiskDegenerate) {
  StackMapper m(1);
  EXPECT_EQ(m.physical_of(0, 0), 0);
  EXPECT_EQ(m.logical_of(0, 0), 0);
}

}  // namespace
}  // namespace sma::layout
