#include "layout/enumeration.hpp"

#include <gtest/gtest.h>

#include "layout/properties.hpp"

namespace sma::layout {
namespace {

TEST(LatinCount, KnownValues) {
  EXPECT_EQ(count_latin_squares(1), 1u);
  EXPECT_EQ(count_latin_squares(2), 2u);
  EXPECT_EQ(count_latin_squares(3), 12u);
  EXPECT_EQ(count_latin_squares(4), 576u);
  EXPECT_EQ(count_latin_squares(5), 161280u);
}

TEST(LatinEnumeration, VisitsEverySquareOnce) {
  std::set<std::vector<int>> seen;
  for_each_latin_square(3, [&](const std::vector<int>& sq) {
    EXPECT_TRUE(seen.insert(sq).second);
    return true;
  });
  EXPECT_EQ(seen.size(), 12u);
}

TEST(LatinEnumeration, EarlyStopHonored) {
  int visits = 0;
  for_each_latin_square(4, [&](const std::vector<int>&) {
    return ++visits < 5;
  });
  EXPECT_EQ(visits, 5);
}

TEST(LatinEnumeration, EverySquareIsActuallyLatin) {
  for_each_latin_square(4, [&](const std::vector<int>& sq) {
    for (int r = 0; r < 4; ++r) {
      std::set<int> row;
      std::set<int> col;
      for (int c = 0; c < 4; ++c) {
        row.insert(sq[static_cast<std::size_t>(r) * 4 + c]);
        col.insert(sq[static_cast<std::size_t>(c) * 4 + r]);
      }
      EXPECT_EQ(row.size(), 4u);
      EXPECT_EQ(col.size(), 4u);
    }
    return true;
  });
}

TEST(ValidArrangementCount, ClosedForm) {
  // L(n) * (n!)^n
  EXPECT_EQ(count_valid_arrangements(1), 1u);
  EXPECT_EQ(count_valid_arrangements(2), 2u * 2 * 2);          // 2 * (2!)^2
  EXPECT_EQ(count_valid_arrangements(3), 12u * 6 * 6 * 6);     // 12 * (3!)^3
  EXPECT_EQ(count_valid_arrangements(4), 576u * 24 * 24 * 24 * 24);
}

TEST(Census, StructureTheoremExhaustiveN2) {
  const auto census = census_all_arrangements(2);
  EXPECT_EQ(census.total, 24u);  // 4!
  // P1 implies P2 — no counterexample may exist.
  EXPECT_EQ(census.p1_and_not_p2, 0u);
  // All-three count equals the closed form L(2)*(2!)^2 = 8.
  EXPECT_EQ(census.p1_p3, count_valid_arrangements(2));
}

TEST(Census, StructureTheoremExhaustiveN3) {
  // 9! = 362880 bijections — exhaustive check of the Section VI-E
  // structure: P1 => P2, and |P1 ∧ P3| = L(3) * (3!)^3 = 2592.
  const auto census = census_all_arrangements(3);
  EXPECT_EQ(census.total, 362880u);
  EXPECT_EQ(census.p1_and_not_p2, 0u);
  EXPECT_EQ(census.p1_p3, count_valid_arrangements(3));
  // P1 alone: disk assignment with bijective rows (n x n "row-Latin"
  // rectangles: (n!)^n ... times row placements (n!)^n / — verified
  // against the census rather than asserted in closed form here.
  EXPECT_GT(census.p1, census.p1_p3);
}

TEST(LatinDerived, ProducesAllThreeProperties) {
  for_each_latin_square(4, [&](const std::vector<int>& sq) {
    static int budget = 40;  // spot-check a prefix of the enumeration
    auto arr = arrangement_from_latin_square(sq, 4);
    EXPECT_TRUE(evaluate_properties(*arr).all());
    return --budget > 0;
  });
}

TEST(LatinDerived, ShiftedArrangementIsLatinDerived) {
  // The paper's arrangement corresponds to the cyclic Latin square
  // d(i, j) = (i + j) mod n.
  const int n = 5;
  std::vector<int> square(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      square[static_cast<std::size_t>(i) * n + j] = (i + j) % n;
  auto arr = arrangement_from_latin_square(square, n);
  EXPECT_TRUE(evaluate_properties(*arr).all());
  // Same disk assignment as ShiftedArrangement (rows may differ — the
  // canonical representative assigns rows in scan order).
  ShiftedArrangement shifted(n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      EXPECT_EQ(arr->mirror_of(i, j).disk, shifted.mirror_of(i, j).disk);
}

}  // namespace
}  // namespace sma::layout
