#include "workload/hedge.hpp"

#include <gtest/gtest.h>

#include "array/disk_array.hpp"
#include "recon/online.hpp"

namespace sma::workload {
namespace {

HedgeConfig enabled_cfg() {
  HedgeConfig cfg;
  cfg.enabled = true;
  cfg.warmup_samples = 4;
  return cfg;
}

TEST(HedgeDetector, StaysQuietDuringWarmupAndWithTooFewPeers) {
  FailSlowDetector det(enabled_cfg(), 3);
  // Disk 0 is wildly slow, but no peer has warmed up yet.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(det.observe(0, 1.0), 0);
  EXPECT_FALSE(det.slow(0));
  // One warmed-up peer is not enough for a median (needs >= 2).
  for (int i = 0; i < 10; ++i) det.observe(1, 0.01);
  EXPECT_EQ(det.observe(0, 1.0), 0);
  EXPECT_FALSE(det.slow(0));
}

TEST(HedgeDetector, FlagsOutlierAndClearsWithHysteresis) {
  HedgeConfig cfg = enabled_cfg();
  cfg.flag_factor = 2.5;
  cfg.clear_factor = 1.5;
  FailSlowDetector det(cfg, 4);
  for (int i = 0; i < 8; ++i) {
    det.observe(1, 0.010);
    det.observe(2, 0.010);
    det.observe(3, 0.011);
  }
  // Disk 0 at ~10x the peer median: flagged exactly once.
  int flips = 0;
  for (int i = 0; i < 8; ++i) flips += det.observe(0, 0.100) > 0 ? 1 : 0;
  EXPECT_EQ(flips, 1);
  EXPECT_TRUE(det.slow(0));
  EXPECT_EQ(det.flag_events(), 1);
  // Recovery: EWMA decays below clear_factor x median; exactly one -1.
  int clears = 0;
  for (int i = 0; i < 64; ++i) clears += det.observe(0, 0.010) < 0 ? 1 : 0;
  EXPECT_EQ(clears, 1);
  EXPECT_FALSE(det.slow(0));
}

TEST(HedgeDetector, ValidationRejectsBadKnobsOnlyWhenEnabled) {
  HedgeConfig cfg;  // disabled: anything goes
  cfg.ewma_alpha = -1.0;
  EXPECT_TRUE(validate_hedge(cfg).is_ok());
  cfg = enabled_cfg();
  cfg.ewma_alpha = 0.0;
  EXPECT_EQ(validate_hedge(cfg).code(), ErrorCode::kInvalidArgument);
  cfg = enabled_cfg();
  cfg.flag_factor = 1.0;
  EXPECT_EQ(validate_hedge(cfg).code(), ErrorCode::kInvalidArgument);
  cfg = enabled_cfg();
  cfg.clear_factor = cfg.flag_factor + 1.0;
  EXPECT_EQ(validate_hedge(cfg).code(), ErrorCode::kInvalidArgument);
  cfg = enabled_cfg();
  cfg.hedge_deadline_factor = 0.0;
  EXPECT_EQ(validate_hedge(cfg).code(), ErrorCode::kInvalidArgument);
}

/// A rebuilding array with one fail-slow peer, served under load.
recon::OnlineConfig slow_disk_config(bool hedging) {
  recon::OnlineConfig cfg;
  cfg.arrival.rate_hz = 150.0;
  cfg.arrival.max_requests = 1500;
  cfg.arrival.seed = 11;
  cfg.hedge.enabled = hedging;
  cfg.hedge.warmup_samples = 8;
  return cfg;
}

array::ArrayConfig slow_array_config() {
  array::ArrayConfig acfg;
  acfg.arch = layout::Architecture::mirror(4, true);
  acfg.stripes = 4 * acfg.arch.total_disks();
  acfg.content_bytes = 64;
  acfg.fault_overrides[2].slow_factor = 8.0;  // a live data disk limps
  return acfg;
}

TEST(HedgeOnline, DetectorFlagsAndReroutesAroundTheSlowDisk) {
  array::DiskArray arr(slow_array_config());
  arr.fail_physical(0);
  const auto r = recon::run_online_reconstruction(arr, slow_disk_config(true));
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_GE(r.value().fail_slow_flagged, 1);
  EXPECT_GT(r.value().affinity_reroutes, 0u);
  EXPECT_GE(r.value().hedged_reads, r.value().hedge_wins);
}

TEST(HedgeOnline, DisabledHedgingKeepsEveryCounterAtZero) {
  array::DiskArray arr(slow_array_config());
  arr.fail_physical(0);
  const auto r = recon::run_online_reconstruction(arr, slow_disk_config(false));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().fail_slow_flagged, 0);
  EXPECT_EQ(r.value().affinity_reroutes, 0u);
  EXPECT_EQ(r.value().hedged_reads, 0u);
  EXPECT_EQ(r.value().hedge_wins, 0u);
  EXPECT_EQ(r.value().hedge_wasted, 0u);
}

TEST(HedgeOnline, HedgingImprovesTheFailSlowTail) {
  array::DiskArray plain(slow_array_config());
  plain.fail_physical(0);
  const auto off =
      recon::run_online_reconstruction(plain, slow_disk_config(false));
  ASSERT_TRUE(off.is_ok());

  array::DiskArray hedged(slow_array_config());
  hedged.fail_physical(0);
  const auto on =
      recon::run_online_reconstruction(hedged, slow_disk_config(true));
  ASSERT_TRUE(on.is_ok());

  // Routing away from the limping disk (plus deadline hedges for pieces
  // already queued to it) must improve the foreground tail.
  EXPECT_LT(on.value().p99_latency_s, off.value().p99_latency_s);
}

TEST(HedgeOnline, HedgedRunsReplayBitIdentically) {
  array::DiskArray a(slow_array_config());
  a.fail_physical(0);
  const auto first = recon::run_online_reconstruction(a, slow_disk_config(true));
  ASSERT_TRUE(first.is_ok());
  array::DiskArray b(slow_array_config());
  b.fail_physical(0);
  const auto second =
      recon::run_online_reconstruction(b, slow_disk_config(true));
  ASSERT_TRUE(second.is_ok());
  EXPECT_DOUBLE_EQ(first.value().p99_latency_s, second.value().p99_latency_s);
  EXPECT_EQ(first.value().hedged_reads, second.value().hedged_reads);
  EXPECT_EQ(first.value().hedge_wins, second.value().hedge_wins);
  EXPECT_EQ(first.value().affinity_reroutes, second.value().affinity_reroutes);
  EXPECT_EQ(first.value().fail_slow_flagged, second.value().fail_slow_flagged);
}

}  // namespace
}  // namespace sma::workload
