#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace sma {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextIntCoversInclusiveRange) {
  Rng rng(99);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit in 2000 draws
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(17);
  double sum = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum += rng.next_exponential(2.5);
  const double mean = sum / kDraws;
  EXPECT_NEAR(mean, 2.5, 0.1);
}

TEST(Rng, BoolRespectsProbability) {
  Rng rng(21);
  int trues = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i)
    if (rng.next_bool(0.25)) ++trues;
  EXPECT_NEAR(static_cast<double>(trues) / kDraws, 0.25, 0.02);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(3);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto original = v;
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(55);
  Rng child = a.fork();
  // Child stream should not replay the parent stream.
  Rng b(55);
  b.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (child.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 64);  // not in lockstep with the parent continuation
}

TEST(FillPattern, DeterministicAndSeedSensitive) {
  unsigned char a[37];
  unsigned char b[37];
  fill_pattern(42, a, sizeof(a));
  fill_pattern(42, b, sizeof(b));
  EXPECT_EQ(0, memcmp(a, b, sizeof(a)));
  fill_pattern(43, b, sizeof(b));
  EXPECT_NE(0, memcmp(a, b, sizeof(a)));
}

TEST(FillPattern, HandlesNonMultipleOfEightLengths) {
  for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 15u, 16u, 17u}) {
    std::vector<unsigned char> buf(len + 2, 0xAA);
    fill_pattern(9, buf.data(), len);
    // Guard bytes untouched.
    EXPECT_EQ(buf[len], 0xAA);
    EXPECT_EQ(buf[len + 1], 0xAA);
  }
}

TEST(Fingerprint, DistinguishesContent) {
  unsigned char a[16] = {0};
  unsigned char b[16] = {0};
  b[15] = 1;
  EXPECT_NE(fingerprint(a, 16), fingerprint(b, 16));
  EXPECT_EQ(fingerprint(a, 16), fingerprint(a, 16));
}

}  // namespace
}  // namespace sma
