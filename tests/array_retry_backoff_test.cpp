// Retry backoff x transient-error windows: the batch executor's bounded
// retries interact with FaultProfile's bounded interference episode.
// Whether a retry succeeds depends on *when* it re-submits — immediate
// retries can re-enter the episode and exhaust the budget, while a
// backoff long enough to outlast the episode turns the same fault into
// one retried op.
#include <gtest/gtest.h>

#include <vector>

#include "array/disk_array.hpp"

namespace sma::array {
namespace {

ArrayConfig base_cfg() {
  ArrayConfig cfg;
  cfg.arch = layout::Architecture::mirror(3, true);
  cfg.stripes = cfg.arch.total_disks();
  cfg.content_bytes = 64;
  cfg.logical_element_bytes = 4'000'000;
  cfg.seed = 7;
  return cfg;
}

/// Service time of one cold read of element (0, 0, 0) on this model.
double cold_read_service_s() {
  DiskArray arr(base_cfg());
  arr.initialize();
  const Op read{0, 0, 0, disk::IoKind::kRead};
  return arr.execute({&read, 1}, 0.0).end_s;
}

TEST(RetryBackoff, TransientWindowInTheFutureIsInert) {
  auto cfg = base_cfg();
  cfg.fault.transient_read_error_p = 1.0;  // certain error...
  cfg.fault.transient_from_s = 1e9;        // ...but the episode is later
  cfg.fault.seed = 3;
  DiskArray arr(cfg);
  arr.initialize();
  const Op read{0, 0, 0, disk::IoKind::kRead};
  const auto stats = arr.execute({&read, 1}, 0.0);
  EXPECT_EQ(stats.retried_ops, 0u);
  EXPECT_EQ(stats.failed_ops, 0u);
  EXPECT_EQ(stats.max_retry_depth, 0);
  EXPECT_DOUBLE_EQ(stats.end_s, cold_read_service_s());
}

TEST(RetryBackoff, ImmediateRetriesReenterTheEpisodeAndExhaust) {
  const double service = cold_read_service_s();
  auto cfg = base_cfg();
  cfg.fault.transient_read_error_p = 1.0;
  cfg.fault.transient_from_s = 0.0;
  cfg.fault.transient_until_s = 2.5 * service;  // covers all 3 attempts
  cfg.fault.seed = 3;
  ASSERT_EQ(cfg.io_max_retries, 2);  // the default budget this test counts
  DiskArray arr(cfg);
  arr.initialize();
  const Op read{0, 0, 0, disk::IoKind::kRead};
  const auto stats = arr.execute({&read, 1}, 0.0);
  // Attempt 1 starts at 0, retries re-submit as soon as the disk drains
  // — all inside the episode, so the budget burns out and the op fails.
  EXPECT_EQ(stats.retried_ops, 2u);
  EXPECT_EQ(stats.max_retry_depth, 2);
  EXPECT_EQ(stats.failed_ops, 1u);
  EXPECT_EQ(stats.unreadable_ops, 0u);
}

TEST(RetryBackoff, BackoffPushesTheRetryPastTheEpisode) {
  const double service = cold_read_service_s();
  auto cfg = base_cfg();
  cfg.fault.transient_read_error_p = 1.0;
  cfg.fault.transient_from_s = 0.0;
  cfg.fault.transient_until_s = 2.5 * service;
  cfg.fault.seed = 3;
  cfg.retry_backoff_s = 2.5 * service;  // first retry waits out the episode
  DiskArray arr(cfg);
  arr.initialize();
  const Op read{0, 0, 0, disk::IoKind::kRead};
  const auto stats = arr.execute({&read, 1}, 0.0);
  // Same fault, same budget — but the delayed retry starts after the
  // episode ends and succeeds on the second attempt.
  EXPECT_EQ(stats.retried_ops, 1u);
  EXPECT_EQ(stats.max_retry_depth, 1);
  EXPECT_EQ(stats.failed_ops, 0u);
  // The retry could not have started before backing off past the drain.
  EXPECT_GE(stats.end_s, 2.5 * service);
}

// --- capped exponential backoff with seeded jitter -----------------------
// One always-transient disk, a 3-retry budget, and a write op pin the
// exact delay schedule: attempt k waits min(base * 2^(k-1), cap),
// shrunk by the deterministic jitter factor when configured.

BatchStats run_backoff(double base, double cap, double jitter,
                       double alias = 0.0, std::uint64_t seed = 7) {
  auto cfg = base_cfg();
  cfg.seed = seed;
  cfg.fault_overrides[0].transient_write_error_p = 1.0;
  cfg.io_max_retries = 3;
  cfg.retry_backoff_base_s = base;
  cfg.retry_backoff_s = alias;
  cfg.retry_backoff_cap_s = cap;
  cfg.retry_backoff_jitter = jitter;
  DiskArray arr(cfg);
  std::vector<Op> ops{{0, 0, 0, disk::IoKind::kWrite}};
  return arr.execute(ops, 0.0);
}

TEST(RetryBackoff, ExponentialDelaysDoubleEachAttempt) {
  const auto immediate = run_backoff(0.0, 0.0, 0.0);
  const auto delayed = run_backoff(0.5, 0.0, 0.0);
  EXPECT_EQ(delayed.retried_ops, 3u);
  EXPECT_EQ(delayed.failed_ops, 1u);
  // Attempts wait 1x, 2x, 4x the base — exponential, not linear.
  EXPECT_NEAR(delayed.end_s, immediate.end_s + 0.5 * (1 + 2 + 4), 1e-9);
}

TEST(RetryBackoff, CapBoundsEveryDelay) {
  const auto immediate = run_backoff(0.0, 0.0, 0.0);
  const auto capped = run_backoff(0.5, 0.75, 0.0);
  // 0.5, then min(1.0, 0.75), then min(2.0, 0.75).
  EXPECT_NEAR(capped.end_s, immediate.end_s + (0.5 + 0.75 + 0.75), 1e-9);
}

TEST(RetryBackoff, JitterIsBoundedAndSeedDeterministic) {
  const auto immediate = run_backoff(0.0, 0.0, 0.0);
  const auto full = run_backoff(0.5, 0.0, 0.0);
  const auto jittered = run_backoff(0.5, 0.0, 0.5);
  // Jitter only shrinks delays, by at most the jitter fraction.
  EXPECT_LT(jittered.end_s, full.end_s);
  EXPECT_GE(jittered.end_s,
            immediate.end_s + 0.5 * (0.5 * (1 + 2 + 4)) - 1e-9);
  // Same ArrayConfig::seed, same delays — bit for bit.
  const auto replay = run_backoff(0.5, 0.0, 0.5);
  EXPECT_DOUBLE_EQ(jittered.end_s, replay.end_s);
  // A different seed draws a different jitter factor.
  const auto other = run_backoff(0.5, 0.0, 0.5, 0.0, 8);
  EXPECT_NE(jittered.end_s, other.end_s);
}

TEST(RetryBackoff, DeprecatedAliasSuppliesTheBase) {
  const auto via_base = run_backoff(0.5, 0.0, 0.0);
  const auto via_alias = run_backoff(0.0, 0.0, 0.0, 0.5);
  EXPECT_DOUBLE_EQ(via_alias.end_s, via_base.end_s);
  // When both are set the new field wins.
  const auto both = run_backoff(0.5, 0.0, 0.0, 123.0);
  EXPECT_DOUBLE_EQ(both.end_s, via_base.end_s);
}

TEST(RetryBackoff, MaxRetryDepthReportsTheWorstOpInTheBatch) {
  const double service = cold_read_service_s();
  auto cfg = base_cfg();
  // Only the physical disk serving (0, 0, 0) carries the episode; the
  // other ops in the batch are clean.
  disk::FaultProfile flaky;
  flaky.transient_read_error_p = 1.0;
  flaky.transient_from_s = 0.0;
  flaky.transient_until_s = 2.5 * service;
  flaky.seed = 3;
  DiskArray probe(base_cfg());
  cfg.fault_overrides[probe.physical_disk(0, 0)] = flaky;
  DiskArray arr(cfg);
  arr.initialize();
  // Same stripe => the logical->physical mapping is a permutation, so
  // the three ops land on three distinct disks.
  std::vector<Op> ops{{0, 0, 0, disk::IoKind::kRead},
                      {1, 0, 0, disk::IoKind::kRead},
                      {2, 0, 0, disk::IoKind::kRead}};
  const auto stats = arr.execute(ops, 0.0);
  // The flaky op exhausts its budget; the clean ops never retry. The
  // batch reports the deepest chain, not the sum.
  EXPECT_EQ(stats.retried_ops, 2u);
  EXPECT_EQ(stats.max_retry_depth, 2);
  EXPECT_EQ(stats.failed_ops, 1u);
}

}  // namespace
}  // namespace sma::array
