// Retry backoff x transient-error windows: the batch executor's bounded
// retries interact with FaultProfile's bounded interference episode.
// Whether a retry succeeds depends on *when* it re-submits — immediate
// retries can re-enter the episode and exhaust the budget, while a
// backoff long enough to outlast the episode turns the same fault into
// one retried op.
#include <gtest/gtest.h>

#include <vector>

#include "array/disk_array.hpp"

namespace sma::array {
namespace {

ArrayConfig base_cfg() {
  ArrayConfig cfg;
  cfg.arch = layout::Architecture::mirror(3, true);
  cfg.stripes = cfg.arch.total_disks();
  cfg.content_bytes = 64;
  cfg.logical_element_bytes = 4'000'000;
  cfg.seed = 7;
  return cfg;
}

/// Service time of one cold read of element (0, 0, 0) on this model.
double cold_read_service_s() {
  DiskArray arr(base_cfg());
  arr.initialize();
  const Op read{0, 0, 0, disk::IoKind::kRead};
  return arr.execute({&read, 1}, 0.0).end_s;
}

TEST(RetryBackoff, TransientWindowInTheFutureIsInert) {
  auto cfg = base_cfg();
  cfg.fault.transient_read_error_p = 1.0;  // certain error...
  cfg.fault.transient_from_s = 1e9;        // ...but the episode is later
  cfg.fault.seed = 3;
  DiskArray arr(cfg);
  arr.initialize();
  const Op read{0, 0, 0, disk::IoKind::kRead};
  const auto stats = arr.execute({&read, 1}, 0.0);
  EXPECT_EQ(stats.retried_ops, 0u);
  EXPECT_EQ(stats.failed_ops, 0u);
  EXPECT_EQ(stats.max_retry_depth, 0);
  EXPECT_DOUBLE_EQ(stats.end_s, cold_read_service_s());
}

TEST(RetryBackoff, ImmediateRetriesReenterTheEpisodeAndExhaust) {
  const double service = cold_read_service_s();
  auto cfg = base_cfg();
  cfg.fault.transient_read_error_p = 1.0;
  cfg.fault.transient_from_s = 0.0;
  cfg.fault.transient_until_s = 2.5 * service;  // covers all 3 attempts
  cfg.fault.seed = 3;
  ASSERT_EQ(cfg.io_max_retries, 2);  // the default budget this test counts
  DiskArray arr(cfg);
  arr.initialize();
  const Op read{0, 0, 0, disk::IoKind::kRead};
  const auto stats = arr.execute({&read, 1}, 0.0);
  // Attempt 1 starts at 0, retries re-submit as soon as the disk drains
  // — all inside the episode, so the budget burns out and the op fails.
  EXPECT_EQ(stats.retried_ops, 2u);
  EXPECT_EQ(stats.max_retry_depth, 2);
  EXPECT_EQ(stats.failed_ops, 1u);
  EXPECT_EQ(stats.unreadable_ops, 0u);
}

TEST(RetryBackoff, BackoffPushesTheRetryPastTheEpisode) {
  const double service = cold_read_service_s();
  auto cfg = base_cfg();
  cfg.fault.transient_read_error_p = 1.0;
  cfg.fault.transient_from_s = 0.0;
  cfg.fault.transient_until_s = 2.5 * service;
  cfg.fault.seed = 3;
  cfg.retry_backoff_s = 2.5 * service;  // first retry waits out the episode
  DiskArray arr(cfg);
  arr.initialize();
  const Op read{0, 0, 0, disk::IoKind::kRead};
  const auto stats = arr.execute({&read, 1}, 0.0);
  // Same fault, same budget — but the delayed retry starts after the
  // episode ends and succeeds on the second attempt.
  EXPECT_EQ(stats.retried_ops, 1u);
  EXPECT_EQ(stats.max_retry_depth, 1);
  EXPECT_EQ(stats.failed_ops, 0u);
  // The retry could not have started before backing off past the drain.
  EXPECT_GE(stats.end_s, 2.5 * service);
}

TEST(RetryBackoff, MaxRetryDepthReportsTheWorstOpInTheBatch) {
  const double service = cold_read_service_s();
  auto cfg = base_cfg();
  // Only the physical disk serving (0, 0, 0) carries the episode; the
  // other ops in the batch are clean.
  disk::FaultProfile flaky;
  flaky.transient_read_error_p = 1.0;
  flaky.transient_from_s = 0.0;
  flaky.transient_until_s = 2.5 * service;
  flaky.seed = 3;
  DiskArray probe(base_cfg());
  cfg.fault_overrides[probe.physical_disk(0, 0)] = flaky;
  DiskArray arr(cfg);
  arr.initialize();
  // Same stripe => the logical->physical mapping is a permutation, so
  // the three ops land on three distinct disks.
  std::vector<Op> ops{{0, 0, 0, disk::IoKind::kRead},
                      {1, 0, 0, disk::IoKind::kRead},
                      {2, 0, 0, disk::IoKind::kRead}};
  const auto stats = arr.execute(ops, 0.0);
  // The flaky op exhausts its budget; the clean ops never retry. The
  // batch reports the deepest chain, not the sum.
  EXPECT_EQ(stats.retried_ops, 2u);
  EXPECT_EQ(stats.max_retry_depth, 2);
  EXPECT_EQ(stats.failed_ops, 1u);
}

}  // namespace
}  // namespace sma::array
