#include "sim/multi_kernel.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "array/disk_array.hpp"
#include "layout/architecture.hpp"
#include "recon/online.hpp"

// Suite named MultiKernel.* so the CI TSan job's gtest filter picks the
// whole file up: these tests are exactly the data-race surface the
// parallel driver must keep clean.

namespace sma {
namespace {

/// The bench harnesses' array shape (bench::experiment_config), reduced
/// to test scale: the serial-vs-parallel comparisons below must cover
/// the same code paths the drift-gated CSVs exercise.
array::ArrayConfig test_config(const layout::Architecture& arch, int stacks) {
  array::ArrayConfig cfg;
  cfg.arch = arch;
  cfg.stripes = stacks * arch.total_disks();
  cfg.rotate = true;
  cfg.spec = disk::DiskSpec::savvio_10k3();
  cfg.content_bytes = 256;
  cfg.logical_element_bytes = 4ull * 1000 * 1000;
  cfg.seed = 20120901;
  return cfg;
}

/// One bench_online_recon-shaped case: mirror(n), disk 0 failed, Poisson
/// user reads during the rebuild. Everything the bench reports.
recon::OnlineReport online_case(int n, bool shifted) {
  array::DiskArray arr(
      test_config(layout::Architecture::mirror(n, shifted), /*stacks=*/2));
  arr.initialize();
  arr.fail_physical(0);
  recon::OnlineConfig cfg;
  cfg.arrival.rate_hz = 30.0;
  cfg.arrival.max_requests = 200;
  cfg.arrival.seed = 2012;
  auto report = recon::run_online_reconstruction(arr, cfg);
  EXPECT_TRUE(report.is_ok()) << report.status().to_string();
  return report.is_ok() ? report.value() : recon::OnlineReport{};
}

/// One bench_qos_throttle-shaped case: adaptive throttle against a p99
/// target while the rebuild drains.
recon::OnlineReport qos_case(double arrival_hz) {
  array::DiskArray arr(
      test_config(layout::Architecture::mirror(5, true), /*stacks=*/2));
  arr.initialize();
  arr.fail_physical(0);
  recon::OnlineConfig cfg;
  cfg.arrival.rate_hz = arrival_hz;
  cfg.arrival.max_requests = 200;
  cfg.arrival.seed = 2012;
  cfg.qos.policy = workload::RebuildPolicy::kAdaptive;
  cfg.qos.p99_target_s = 0.120;
  auto report = recon::run_online_reconstruction(arr, cfg);
  EXPECT_TRUE(report.is_ok()) << report.status().to_string();
  return report.is_ok() ? report.value() : recon::OnlineReport{};
}

void expect_reports_identical(const recon::OnlineReport& a,
                              const recon::OnlineReport& b) {
  // EXPECT_EQ on doubles deliberately: the contract is bit-identical,
  // not approximately equal.
  EXPECT_EQ(a.rebuild_done_s, b.rebuild_done_s);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.degraded_reads, b.degraded_reads);
  EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_EQ(a.p50_latency_s, b.p50_latency_s);
  EXPECT_EQ(a.p95_latency_s, b.p95_latency_s);
  EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
  EXPECT_EQ(a.slo_violations, b.slo_violations);
  EXPECT_EQ(a.final_rebuild_budget, b.final_rebuild_budget);
  EXPECT_EQ(a.throttle_adjustments, b.throttle_adjustments);
}

TEST(MultiKernel, OnlineReconSerialAndParallelBitIdentical) {
  struct Case {
    int n;
    bool shifted;
  };
  const std::vector<Case> cases = {{3, false}, {3, true}, {5, false},
                                   {5, true}};
  auto run_all = [&](std::size_t threads) {
    sim::MultiKernel kernel({threads});
    return kernel.map(cases.size(), [&](std::size_t i) {
      return online_case(cases[i].n, cases[i].shifted);
    });
  };
  const auto serial = run_all(1);
  const auto parallel = run_all(4);
  ASSERT_EQ(serial.size(), cases.size());
  ASSERT_EQ(parallel.size(), cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i)
    expect_reports_identical(serial[i], parallel[i]);
  // Sanity: the cases are genuinely different workloads.
  EXPECT_NE(serial[0].rebuild_done_s, serial[3].rebuild_done_s);
}

TEST(MultiKernel, QosThrottleSerialAndParallelBitIdentical) {
  const std::vector<double> arrivals = {20.0, 60.0, 120.0};
  auto run_all = [&](std::size_t threads) {
    sim::MultiKernel kernel({threads});
    return kernel.map(arrivals.size(),
                      [&](std::size_t i) { return qos_case(arrivals[i]); });
  };
  const auto serial = run_all(1);
  const auto parallel = run_all(4);
  for (std::size_t i = 0; i < arrivals.size(); ++i)
    expect_reports_identical(serial[i], parallel[i]);
}

TEST(MultiKernel, MapCollectsResultsByIndex) {
  sim::MultiKernel kernel({4});
  const auto out =
      kernel.map(64, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(MultiKernel, RunStatusSurfacesFirstFailureByIndex) {
  sim::MultiKernel kernel({4});
  // Several cases fail; the reported status must be the lowest-index
  // failure regardless of which worker finished first.
  const Status st = kernel.run_status(32, [](std::size_t i) {
    if (i == 7 || i == 21) return internal_error("case " + std::to_string(i));
    return Status::ok();
  });
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.to_string().find("case 7"), std::string::npos);

  EXPECT_TRUE(kernel.run_status(8, [](std::size_t) { return Status::ok(); })
                  .is_ok());
}

TEST(MultiKernel, StatsAccumulateAcrossRuns) {
  sim::MultiKernel kernel({2});
  kernel.map(5, [](std::size_t i) { return i; });
  kernel.map(3, [](std::size_t i) { return i; });
  EXPECT_EQ(kernel.stats().cases, 8u);
  EXPECT_GE(kernel.stats().wall_s, 0.0);
  EXPECT_EQ(kernel.options().threads, 2u);
}

TEST(MultiKernel, SingleThreadRunsInOrderOnCallerThread) {
  sim::MultiKernel kernel({1});
  std::vector<std::size_t> order;
  kernel.map(16, [&](std::size_t i) {
    order.push_back(i);  // safe: threads==1 runs on the caller, in order
    return 0;
  });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

}  // namespace
}  // namespace sma
