#include "gf/gf256.hpp"

#include <gtest/gtest.h>

namespace sma::gf {
namespace {

TEST(Gf256, AddIsXor) {
  EXPECT_EQ(add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(sub(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(add(7, 7), 0);
}

TEST(Gf256, MulIdentityAndZero) {
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(mul(1, static_cast<std::uint8_t>(a)), a);
    EXPECT_EQ(mul(static_cast<std::uint8_t>(a), 0), 0);
    EXPECT_EQ(mul(0, static_cast<std::uint8_t>(a)), 0);
  }
}

TEST(Gf256, TableMulMatchesBitwiseMulExhaustively) {
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = 0; b < 256; ++b)
      ASSERT_EQ(mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                mul_slow(static_cast<std::uint8_t>(a),
                         static_cast<std::uint8_t>(b)))
          << "a=" << a << " b=" << b;
}

TEST(Gf256, MulCommutativeAssociative) {
  // Spot-check algebraic laws on a grid (exhaustive is covered above
  // via the reference multiply).
  for (unsigned a = 1; a < 256; a += 7) {
    for (unsigned b = 1; b < 256; b += 11) {
      const auto ua = static_cast<std::uint8_t>(a);
      const auto ub = static_cast<std::uint8_t>(b);
      EXPECT_EQ(mul(ua, ub), mul(ub, ua));
      for (unsigned c = 1; c < 256; c += 63) {
        const auto uc = static_cast<std::uint8_t>(c);
        EXPECT_EQ(mul(mul(ua, ub), uc), mul(ua, mul(ub, uc)));
        // Distributivity over XOR.
        EXPECT_EQ(mul(ua, add(ub, uc)), add(mul(ua, ub), mul(ua, uc)));
      }
    }
  }
}

TEST(Gf256, EveryNonzeroHasInverse) {
  for (unsigned a = 1; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(mul(ua, inv(ua)), 1) << "a=" << a;
  }
}

TEST(Gf256, DivisionInvertsMultiplication) {
  for (unsigned a = 0; a < 256; a += 5) {
    for (unsigned b = 1; b < 256; b += 3) {
      const auto ua = static_cast<std::uint8_t>(a);
      const auto ub = static_cast<std::uint8_t>(b);
      EXPECT_EQ(div(mul(ua, ub), ub), ua);
    }
  }
}

TEST(Gf256, PowMatchesRepeatedMul) {
  for (unsigned a = 0; a < 256; a += 17) {
    const auto ua = static_cast<std::uint8_t>(a);
    std::uint8_t acc = 1;
    for (unsigned k = 0; k < 10; ++k) {
      EXPECT_EQ(pow(ua, k), acc) << "a=" << a << " k=" << k;
      acc = mul(acc, ua);
    }
  }
}

TEST(Gf256, PowZeroExponentIsOne) {
  EXPECT_EQ(pow(0, 0), 1);
  EXPECT_EQ(pow(123, 0), 1);
}

TEST(Gf256, GeneratorHasFullOrder) {
  // 2 is primitive for 0x11d: its powers must cycle through all 255
  // nonzero elements.
  std::uint8_t x = 1;
  int period = 0;
  do {
    x = mul(x, 2);
    ++period;
  } while (x != 1 && period < 300);
  EXPECT_EQ(period, 255);
}

}  // namespace
}  // namespace sma::gf
