#include "array/disk_array.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace sma::array {
namespace {

ArrayConfig small_config(layout::Architecture arch, int stripes = 0,
                         bool rotate = true) {
  ArrayConfig cfg;
  cfg.arch = arch;
  cfg.stripes = stripes > 0 ? stripes : arch.total_disks();
  cfg.rotate = rotate;
  cfg.content_bytes = 64;
  cfg.logical_element_bytes = 4'000'000;
  cfg.seed = 2024;
  return cfg;
}

TEST(DiskArray, InitializeAndVerifyMirrorShifted) {
  DiskArray arr(small_config(layout::Architecture::mirror(4, true)));
  arr.initialize();
  EXPECT_TRUE(arr.verify_all().is_ok());
  EXPECT_TRUE(arr.verify_consistency().is_ok());
}

TEST(DiskArray, InitializeAndVerifyMirrorParityTraditional) {
  DiskArray arr(
      small_config(layout::Architecture::mirror_with_parity(3, false)));
  arr.initialize();
  EXPECT_TRUE(arr.verify_all().is_ok());
}

TEST(DiskArray, InitializeAndVerifyRaid5) {
  DiskArray arr(small_config(layout::Architecture::raid5(4)));
  arr.initialize();
  ASSERT_NE(arr.raid_codec(), nullptr);
  EXPECT_TRUE(arr.verify_all().is_ok());
  EXPECT_TRUE(arr.verify_consistency().is_ok());
}

TEST(DiskArray, InitializeAndVerifyRaid6) {
  DiskArray arr(small_config(layout::Architecture::raid6(5)));
  arr.initialize();
  EXPECT_TRUE(arr.verify_all().is_ok());
}

TEST(DiskArray, VerifyDetectsCorruption) {
  DiskArray arr(small_config(layout::Architecture::mirror(3, true)));
  arr.initialize();
  auto elem = arr.content(1, 0, 2);
  elem[0] ^= 0xFF;
  const Status st = arr.verify_all();
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), ErrorCode::kCorruption);
  EXPECT_FALSE(arr.verify_consistency().is_ok());
}

TEST(DiskArray, MirrorCellsMatchArrangement) {
  const auto arch = layout::Architecture::mirror(5, true);
  DiskArray arr(small_config(arch));
  arr.initialize();
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      const layout::Pos replica = arch.replica_of(i, j);
      auto data = arr.content(arch.data_disk(i), 2, j);
      auto mirror = arr.content(replica.disk, 2, replica.row);
      EXPECT_TRUE(std::equal(data.begin(), data.end(), mirror.begin()))
          << i << "," << j;
    }
  }
}

TEST(DiskArray, RotationMapsLogicalToDifferentPhysicalPerStripe) {
  DiskArray arr(small_config(layout::Architecture::mirror(3, true)));
  std::set<int> hosts;
  for (int s = 0; s < arr.stripes(); ++s) hosts.insert(arr.physical_disk(0, s));
  EXPECT_EQ(hosts.size(), static_cast<std::size_t>(arr.total_disks()));
}

TEST(DiskArray, NoRotationKeepsIdentity) {
  DiskArray arr(small_config(layout::Architecture::mirror(3, true), 6,
                             /*rotate=*/false));
  for (int s = 0; s < arr.stripes(); ++s) {
    EXPECT_EQ(arr.physical_disk(2, s), 2);
    EXPECT_EQ(arr.logical_disk(5, s), 5);
  }
}

TEST(DiskArray, RotatedContentsStillVerify) {
  // verify_all resolves content through the rotation, so a rotated
  // array must verify as cleanly as an unrotated one.
  DiskArray arr(small_config(layout::Architecture::mirror_with_parity(4, true)));
  arr.initialize();
  EXPECT_TRUE(arr.verify_all().is_ok());
}

TEST(DiskArray, FailPhysicalTracksFailedSet) {
  DiskArray arr(small_config(layout::Architecture::mirror(3, true)));
  arr.initialize();
  EXPECT_TRUE(arr.failed_physical().empty());
  arr.fail_physical(4);
  arr.fail_physical(1);
  EXPECT_EQ(arr.failed_physical(), (std::vector<int>{1, 4}));
}

TEST(DiskArray, VerifySkipsFailedDisks) {
  DiskArray arr(small_config(layout::Architecture::mirror(3, true)));
  arr.initialize();
  arr.fail_physical(2);  // scrambles its contents
  EXPECT_TRUE(arr.verify_all().is_ok());  // failed disk excluded
}

TEST(DiskArray, VerifyLogicalDiskChecksOneColumn) {
  DiskArray arr(small_config(layout::Architecture::mirror_with_parity(3, true)));
  arr.initialize();
  for (int l = 0; l < arr.total_disks(); ++l)
    EXPECT_TRUE(arr.verify_logical_disk(l).is_ok()) << l;
  // Corrupt one element of logical disk 4 (a mirror disk).
  arr.content(4, 1, 0)[3] ^= 1;
  EXPECT_FALSE(arr.verify_logical_disk(4).is_ok());
  EXPECT_TRUE(arr.verify_logical_disk(0).is_ok());
}

TEST(DiskArray, ExecuteParallelismAcrossDisks) {
  DiskArray arr(small_config(layout::Architecture::mirror(4, true)));
  arr.initialize();
  // One read on each of 4 distinct data disks: parallel, so the batch
  // takes one service time, not four.
  std::vector<Op> ops;
  for (int i = 0; i < 4; ++i) ops.push_back({i, 0, 0, disk::IoKind::kRead});
  const auto stats = arr.execute(ops, 0.0);
  EXPECT_EQ(stats.max_ops_per_disk, 1);
  const double one_read =
      arr.physical(0).spec().positioning_s() +
      arr.physical(0).spec().read_transfer_s(4'000'000);
  EXPECT_NEAR(stats.elapsed_s(), one_read, 1e-9);
  EXPECT_EQ(stats.logical_bytes_read, 4u * 4'000'000);
}

TEST(DiskArray, ExecuteSerializesOnOneDisk) {
  DiskArray arr(small_config(layout::Architecture::mirror(4, true)));
  arr.initialize();
  std::vector<Op> ops;
  for (int r = 0; r < 4; ++r) ops.push_back({2, 0, r, disk::IoKind::kRead});
  const auto stats = arr.execute(ops, 0.0);
  EXPECT_EQ(stats.max_ops_per_disk, 4);
  const auto& spec = arr.physical(0).spec();
  // First read seeks, the rest stream sequentially.
  const double expect =
      spec.positioning_s() + 4 * spec.read_transfer_s(4'000'000);
  EXPECT_NEAR(stats.elapsed_s(), expect, 1e-9);
}

TEST(DiskArray, ResetTimelinesClearsBusy) {
  DiskArray arr(small_config(layout::Architecture::mirror(3, true)));
  arr.initialize();
  std::vector<Op> ops{{0, 0, 0, disk::IoKind::kRead}};
  arr.execute(ops, 0.0);
  EXPECT_GT(arr.physical(0).busy_until(), 0.0);
  arr.reset_timelines();
  EXPECT_DOUBLE_EQ(arr.physical(0).busy_until(), 0.0);
}

TEST(DiskArray, SlotLayoutIsStripeMajor) {
  DiskArray arr(small_config(layout::Architecture::mirror(3, true)));
  EXPECT_EQ(arr.slot(0, 0), 0);
  EXPECT_EQ(arr.slot(0, 2), 2);
  EXPECT_EQ(arr.slot(1, 0), 3);
  EXPECT_EQ(arr.slot(2, 1), 7);
}

}  // namespace
}  // namespace sma::array
