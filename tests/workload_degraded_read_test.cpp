#include "workload/degraded_read.hpp"

#include <gtest/gtest.h>

namespace sma::workload {
namespace {

array::ArrayConfig cfg_for(layout::Architecture arch) {
  array::ArrayConfig cfg;
  cfg.arch = arch;
  cfg.stripes = 2 * arch.total_disks();
  cfg.content_bytes = 64;
  cfg.logical_element_bytes = 4'000'000;
  cfg.seed = 8;
  return cfg;
}

TEST(DegradedRead, HealthyArrayHasNoDegradedReads) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror(4, true)));
  arr.initialize();
  DegradedReadConfig cfg;
  cfg.arrival.max_requests = 300;
  auto report = run_degraded_reads(arr, cfg);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().degraded_reads, 0u);
  EXPECT_GT(report.value().throughput_mbps(), 0.0);
}

TEST(DegradedRead, RejectsRaidAndMultiFailure) {
  array::DiskArray raid(cfg_for(layout::Architecture::raid5(3)));
  raid.initialize();
  EXPECT_FALSE(run_degraded_reads(raid, {}).is_ok());

  array::DiskArray arr(cfg_for(layout::Architecture::mirror_with_parity(3, true)));
  arr.initialize();
  arr.fail_physical(0);
  arr.fail_physical(1);
  EXPECT_FALSE(run_degraded_reads(arr, {}).is_ok());
}

TEST(DegradedRead, RedirectedShareRoughlyOneOverTotalDisks) {
  // Reads target data disks uniformly; one failed data disk redirects
  // about (stripes hosting it as data)/total of the traffic.
  array::DiskArray arr(cfg_for(layout::Architecture::mirror(4, true)));
  arr.initialize();
  arr.fail_physical(2);
  DegradedReadConfig cfg;
  cfg.arrival.max_requests = 4000;
  auto report = run_degraded_reads(arr, cfg);
  ASSERT_TRUE(report.is_ok());
  // With rotation, physical disk 2 hosts a data role in half the
  // stripes (data disks occupy n of 2n logical slots), so expected
  // degraded share is 1/(2n) x ... measured empirically ~ 1/8 of 4000.
  EXPECT_NEAR(static_cast<double>(report.value().degraded_reads), 4000.0 / 8,
              4000.0 / 8 * 0.35);
}

TEST(DegradedRead, TraditionalConcentratesShiftedSpreads) {
  const int n = 5;
  double imbalance[2];
  double mbps[2];
  for (const bool shifted : {false, true}) {
    // Rotation on: the stack spreads data/mirror roles across physical
    // disks so the imbalance isolates the degraded-redirect hotspot.
    array::DiskArray arr(cfg_for(layout::Architecture::mirror(n, shifted)));
    arr.initialize();
    arr.fail_physical(0);
    DegradedReadConfig cfg;
    cfg.arrival.max_requests = 3000;
    cfg.arrival.seed = 99;
    auto report = run_degraded_reads(arr, cfg);
    ASSERT_TRUE(report.is_ok());
    imbalance[shifted ? 1 : 0] = report.value().load_imbalance;
    mbps[shifted ? 1 : 0] = report.value().throughput_mbps();
  }
  // Traditional: the partner of the failed disk serves ~2x the mean.
  EXPECT_GT(imbalance[0], 1.5);
  // Shifted: redirected load spreads; imbalance stays near 1.
  EXPECT_LT(imbalance[1], 1.3);
  EXPECT_GE(mbps[1], mbps[0]);
}

TEST(DegradedRead, DeterministicBySeed) {
  auto run = [] {
    array::DiskArray arr(cfg_for(layout::Architecture::mirror(3, true)));
    arr.initialize();
    arr.fail_physical(1);
    DegradedReadConfig cfg;
    cfg.arrival.max_requests = 500;
    cfg.arrival.seed = 77;
    return run_degraded_reads(arr, cfg);
  };
  auto a = run();
  auto b = run();
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_DOUBLE_EQ(a.value().makespan_s, b.value().makespan_s);
  EXPECT_EQ(a.value().degraded_reads, b.value().degraded_reads);
}

TEST(DegradedRead, ZeroReadsIsTrivial) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror(3, true)));
  arr.initialize();
  DegradedReadConfig cfg;
  cfg.arrival.max_requests = 0;
  auto report = run_degraded_reads(arr, cfg);
  ASSERT_TRUE(report.is_ok());
  EXPECT_DOUBLE_EQ(report.value().makespan_s, 0.0);
}

}  // namespace
}  // namespace sma::workload
