// Death tests: the library's checked invariants must actually fire.
// These only run when asserts are active, which the build keeps on in
// every configuration (see the top-level CMakeLists).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "array/disk_array.hpp"
#include "disk/sim_disk.hpp"
#include "ec/buffer.hpp"
#include "layout/architecture.hpp"

namespace sma {
namespace {

#ifndef NDEBUG

// I/O to a failed disk and out-of-range slots are *not* invariant
// violations anymore: submit() reports them through IoResult so fault
// injection works in release builds too (see disk_sim_disk_test.cpp).

TEST(InvariantDeath, OutOfRangeContentAborts) {
  disk::SimDisk d(0, disk::DiskSpec::savvio_10k3(), 4, 16, 1000);
  EXPECT_DEATH(d.content(-1), "slot");
}

// heal() misuse is no longer a process abort either: it returns
// kFailedPrecondition so the repair orchestrator can treat a bad heal
// as a recoverable error (see disk_sim_disk_test.cpp,
// SimDisk.HealMisuseReturnsStatus).

TEST(InvariantDeath, RestoreContentOnHealthyDiskAborts) {
  disk::SimDisk d(0, disk::DiskSpec::savvio_10k3(), 2, 16, 1000);
  const std::vector<std::uint8_t> bytes(16, 0x5A);
  EXPECT_DEATH(d.restore_content(0, bytes), "failed disk");
}

TEST(InvariantDeath, ColumnSetOutOfRangeAborts) {
  ec::ColumnSet cs(2, 2, 8);
  EXPECT_DEATH(cs.element(2, 0), "col");
  EXPECT_DEATH(cs.element(0, 2), "row");
}

TEST(InvariantDeath, MirrorAccessorsOnRaidAbort) {
  const auto raid = layout::Architecture::raid5(3);
  EXPECT_DEATH(raid.mirror_disk(0), "is_mirror");
  EXPECT_DEATH(raid.replica_of(0, 0), "is_mirror");
}

TEST(InvariantDeath, ParityAccessorWithoutParityAborts) {
  const auto mirror = layout::Architecture::mirror(3, true);
  EXPECT_DEATH(mirror.parity_disk(), "has_parity");
}

#else
TEST(InvariantDeath, SkippedWithoutAsserts) { GTEST_SKIP(); }
#endif

}  // namespace
}  // namespace sma
