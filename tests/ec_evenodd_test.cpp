#include "ec/evenodd.hpp"

#include <gtest/gtest.h>

#include "ec/prime.hpp"
#include "gf/region.hpp"

namespace sma::ec {
namespace {

class EvenOddParam : public ::testing::TestWithParam<int> {};

TEST_P(EvenOddParam, SelfTestAllSingleAndDoubleErasures) {
  const int k = GetParam();
  EvenOddCodec codec(k);
  EXPECT_EQ(codec.data_columns(), k);
  EXPECT_EQ(codec.parity_columns(), 2);
  EXPECT_EQ(codec.fault_tolerance(), 2);
  EXPECT_GE(codec.prime(), k);
  EXPECT_TRUE(is_prime(codec.prime()));
  EXPECT_EQ(codec.rows(), codec.prime() - 1);
  EXPECT_TRUE(codec.self_test(0xE0E0 + static_cast<unsigned>(k)).is_ok())
      << codec.name();
}

// k = prime and shortened (non-prime) shapes, including k=1..2
// degenerate cases and the paper's range 3..7.
INSTANTIATE_TEST_SUITE_P(Widths, EvenOddParam,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 10, 11, 13));

TEST(EvenOdd, PrimeSelection) {
  EXPECT_EQ(EvenOddCodec(1).prime(), 3);
  EXPECT_EQ(EvenOddCodec(3).prime(), 3);
  EXPECT_EQ(EvenOddCodec(4).prime(), 5);
  EXPECT_EQ(EvenOddCodec(5).prime(), 5);
  EXPECT_EQ(EvenOddCodec(6).prime(), 7);
  EXPECT_EQ(EvenOddCodec(8).prime(), 11);
}

TEST(EvenOdd, RowParityColumnIsRowXor) {
  EvenOddCodec codec(5);
  ColumnSet cs = codec.make_stripe(16);
  cs.fill_pattern(44);
  ASSERT_TRUE(codec.encode(cs).is_ok());
  for (int r = 0; r < codec.rows(); ++r) {
    std::vector<std::uint8_t> expect(16, 0);
    for (int c = 0; c < 5; ++c) gf::region_xor(cs.element(c, r), expect);
    auto p = cs.element(5, r);
    EXPECT_TRUE(std::equal(p.begin(), p.end(), expect.begin())) << "row " << r;
  }
}

TEST(EvenOdd, RejectsTripleErasure) {
  EvenOddCodec codec(5);
  ColumnSet cs = codec.make_stripe(8);
  EXPECT_EQ(codec.decode(cs, {0, 1, 2}).code(), ErrorCode::kUnrecoverable);
}

TEST(EvenOdd, RejectsDuplicateErasure) {
  EvenOddCodec codec(5);
  ColumnSet cs = codec.make_stripe(8);
  EXPECT_EQ(codec.decode(cs, {1, 1}).code(), ErrorCode::kInvalidArgument);
}

TEST(EvenOdd, DecodeRestoresExactBytesAfterTwoDataLoss) {
  EvenOddCodec codec(7);
  ColumnSet ref = codec.make_stripe(64);
  ref.fill_pattern(123);
  ASSERT_TRUE(codec.encode(ref).is_ok());
  for (int a = 0; a < 7; ++a) {
    for (int b = a + 1; b < 7; ++b) {
      ColumnSet damaged = ref;
      damaged.zero_column(a);
      damaged.zero_column(b);
      ASSERT_TRUE(codec.decode(damaged, {a, b}).is_ok()) << a << "," << b;
      for (int c = 0; c < damaged.columns(); ++c)
        EXPECT_TRUE(damaged.column_equals(c, ref, c)) << a << "," << b;
    }
  }
}

TEST(EvenOdd, ShortenedCodeIgnoresVirtualColumns) {
  // A shortened code (k=4 over p=5) must decode data+P loss, the case
  // that exercises the S-recovery via diagonals.
  EvenOddCodec codec(4);
  ColumnSet ref = codec.make_stripe(32);
  ref.fill_pattern(321);
  ASSERT_TRUE(codec.encode(ref).is_ok());
  for (int r = 0; r < 4; ++r) {
    ColumnSet damaged = ref;
    damaged.zero_column(r);
    damaged.zero_column(4);  // P
    ASSERT_TRUE(codec.decode(damaged, {r, 4}).is_ok()) << "data " << r;
    for (int c = 0; c < damaged.columns(); ++c)
      EXPECT_TRUE(damaged.column_equals(c, ref, c));
  }
}

TEST(EvenOdd, EncodeIsDeterministic) {
  EvenOddCodec codec(5);
  ColumnSet a = codec.make_stripe(16);
  a.fill_pattern(7);
  ColumnSet b = a;
  ASSERT_TRUE(codec.encode(a).is_ok());
  ASSERT_TRUE(codec.encode(b).is_ok());
  for (int c = 0; c < a.columns(); ++c) EXPECT_TRUE(a.column_equals(c, b, c));
}

}  // namespace
}  // namespace sma::ec
