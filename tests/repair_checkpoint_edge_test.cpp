// RebuildCheckpoint edge cases: the watermark at the very first and the
// very last stripe, the degenerate zero-stripe budget, and a watermark
// whose already-rebuilt progress is wiped because the rebuilt disk
// itself fails again before the rebuild finishes.
#include <gtest/gtest.h>

#include "recon/executor.hpp"
#include "repair/checkpoint.hpp"

namespace sma::repair {
namespace {

array::ArrayConfig cfg_for(layout::Architecture arch) {
  array::ArrayConfig cfg;
  cfg.arch = arch;
  cfg.stripes = arch.total_disks();  // one full stack
  cfg.content_bytes = 64;
  cfg.logical_element_bytes = 4'000'000;
  cfg.seed = 47;
  return cfg;
}

TEST(CheckpointEdge, ZeroStripeBudgetIsRejectedNotRecorded) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror_with_parity(4, true)));
  arr.initialize();
  arr.fail_physical(0);
  RebuildCheckpoint ck;
  recon::ReconOptions opts;
  opts.checkpoint = &ck;
  opts.max_stripes = 0;
  // A zero budget cannot make progress: reject instead of looping or
  // writing a watermark at stripe 0 (stripes_done == 0 means "no
  // checkpoint", so recording it would be indistinguishable from none).
  EXPECT_EQ(recon::reconstruct(arr, opts).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_FALSE(ck.valid());
  // Budgets also require a checkpoint to record where they stopped.
  recon::ReconOptions no_ck;
  no_ck.max_stripes = 1;
  EXPECT_EQ(recon::reconstruct(arr, no_ck).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(CheckpointEdge, WatermarkAfterTheFirstStripeResumes) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror_with_parity(4, true)));
  arr.initialize();
  arr.fail_physical(0);
  RebuildCheckpoint ck;
  recon::ReconOptions opts;
  opts.checkpoint = &ck;
  opts.max_stripes = 1;
  auto first = recon::reconstruct(arr, opts);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  EXPECT_FALSE(first.value().completed);
  EXPECT_EQ(first.value().stripes_processed, 1);
  EXPECT_TRUE(ck.valid());
  EXPECT_EQ(ck.stripes_done, 1);

  opts.max_stripes = -1;
  auto rest = recon::reconstruct(arr, opts);
  ASSERT_TRUE(rest.is_ok()) << rest.status().to_string();
  EXPECT_TRUE(rest.value().completed);
  EXPECT_EQ(rest.value().stripes_skipped, 1);
  EXPECT_EQ(rest.value().stripes_processed, arr.stripes() - 1);
  EXPECT_TRUE(arr.failed_physical().empty());
  EXPECT_TRUE(arr.verify_all().is_ok());
}

TEST(CheckpointEdge, WatermarkAtTheFinalStripeResumesForOneStripe) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror_with_parity(4, true)));
  arr.initialize();
  arr.fail_physical(0);
  RebuildCheckpoint ck;
  recon::ReconOptions opts;
  opts.checkpoint = &ck;
  opts.max_stripes = arr.stripes() - 1;
  auto first = recon::reconstruct(arr, opts);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  EXPECT_FALSE(first.value().completed);
  EXPECT_EQ(ck.stripes_done, arr.stripes() - 1);
  // The budget interrupted the rebuild: the disk is still failed even
  // though only one stripe of work remains.
  EXPECT_FALSE(arr.failed_physical().empty());

  opts.max_stripes = -1;
  auto rest = recon::reconstruct(arr, opts);
  ASSERT_TRUE(rest.is_ok()) << rest.status().to_string();
  EXPECT_TRUE(rest.value().completed);
  EXPECT_EQ(rest.value().stripes_skipped, arr.stripes() - 1);
  EXPECT_EQ(rest.value().stripes_processed, 1);
  EXPECT_TRUE(arr.failed_physical().empty());
  EXPECT_TRUE(arr.verify_all().is_ok());
}

TEST(CheckpointEdge, RefailedWatermarkDiskForcesCoveredStripesToRebuild) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror_with_parity(4, true)));
  arr.initialize();
  arr.fail_physical(0);
  RebuildCheckpoint ck;
  recon::ReconOptions opts;
  opts.checkpoint = &ck;
  opts.max_stripes = 4;
  auto first = recon::reconstruct(arr, opts);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  ASSERT_FALSE(first.value().completed);
  ASSERT_EQ(ck.stripes_done, 4);

  // The disk being rebuilt in place fails again (replacement drive dies
  // mid-rebuild): SimDisk::fail() wipes the restored-slot progress, so
  // the stripes the watermark claims covered no longer hold rebuilt
  // data. The resume must notice and re-rebuild them instead of
  // trusting the watermark.
  arr.fail_physical(0);
  opts.max_stripes = -1;
  auto rest = recon::reconstruct(arr, opts);
  ASSERT_TRUE(rest.is_ok()) << rest.status().to_string();
  EXPECT_TRUE(rest.value().completed);
  EXPECT_EQ(rest.value().stripes_skipped, 0);
  EXPECT_EQ(rest.value().stripes_processed, arr.stripes());
  EXPECT_TRUE(arr.failed_physical().empty());
  EXPECT_TRUE(arr.verify_all().is_ok());
}

}  // namespace
}  // namespace sma::repair
