#include "layout/arrangement.hpp"

#include <gtest/gtest.h>

namespace sma::layout {
namespace {

TEST(Traditional, IsIdentity) {
  TraditionalArrangement arr(4);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(arr.mirror_of(i, j), (Pos{i, j}));
      EXPECT_EQ(arr.data_of(i, j), (Pos{i, j}));
    }
  EXPECT_TRUE(arr.is_bijection());
}

TEST(Shifted, MatchesPaperFormula) {
  // a(i, j) = b(<i+j>_n, i)  (paper Section IV-A)
  for (int n : {1, 2, 3, 5, 8}) {
    ShiftedArrangement arr(n);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        EXPECT_EQ(arr.mirror_of(i, j), (Pos{(i + j) % n, i}))
            << "n=" << n << " i=" << i << " j=" << j;
  }
}

TEST(Shifted, InverseMatchesPaperFormula) {
  // b(i, j) = a(j, <i-j>_n)
  for (int n : {2, 3, 5, 7}) {
    ShiftedArrangement arr(n);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        EXPECT_EQ(arr.data_of(i, j), (Pos{j, ((i - j) % n + n) % n}));
  }
}

TEST(Shifted, MirrorAndDataAreInverse) {
  ShiftedArrangement arr(6);
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 6; ++j) {
      const Pos p = arr.mirror_of(i, j);
      EXPECT_EQ(arr.data_of(p.disk, p.row), (Pos{i, j}));
    }
}

TEST(Shifted, IsBijection) {
  for (int n = 1; n <= 10; ++n)
    EXPECT_TRUE(ShiftedArrangement(n).is_bijection()) << n;
}

TEST(Shifted, Figure3Example) {
  // Paper Fig. 3 with n = 3, elements labeled 1..9 row-major: data disk
  // 0 holds {1, 4, 7}. Their replicas land on mirror disks 0, 1, 2
  // respectively, all in mirror row 0.
  ShiftedArrangement arr(3);
  EXPECT_EQ(arr.mirror_of(0, 0), (Pos{0, 0}));  // element 1
  EXPECT_EQ(arr.mirror_of(0, 1), (Pos{1, 0}));  // element 4
  EXPECT_EQ(arr.mirror_of(0, 2), (Pos{2, 0}));  // element 7
  // Data disk 1 = {2, 5, 8} -> mirror disks 1, 2, 0, mirror row 1.
  EXPECT_EQ(arr.mirror_of(1, 0), (Pos{1, 1}));
  EXPECT_EQ(arr.mirror_of(1, 1), (Pos{2, 1}));
  EXPECT_EQ(arr.mirror_of(1, 2), (Pos{0, 1}));
}

TEST(Shifted, FirstRowOnMainDiagonal) {
  // Paper Fig. 5: the first element of each data disk (row 0) lands on
  // the main diagonal of the mirror array: b(i, i) = a(i, 0).
  for (int n : {3, 4, 7}) {
    ShiftedArrangement arr(n);
    for (int i = 0; i < n; ++i) EXPECT_EQ(arr.mirror_of(i, 0), (Pos{i, i}));
  }
}

TEST(TableArrangement, RoundTripsExplicitTable) {
  // Hand-build the shifted table for n=3 and check equivalence.
  ShiftedArrangement shifted(3);
  std::vector<std::vector<Pos>> table(3, std::vector<Pos>(3));
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) table[i][j] = shifted.mirror_of(i, j);
  TableArrangement arr("custom", std::move(table));
  EXPECT_EQ(arr.n(), 3);
  EXPECT_EQ(arr.name(), "custom");
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(arr.mirror_of(i, j), shifted.mirror_of(i, j));
      EXPECT_EQ(arr.data_of(i, j), shifted.data_of(i, j));
    }
}

TEST(ShiftTransform, OnceFromIdentityGivesShifted) {
  for (int n : {2, 3, 5}) {
    TraditionalArrangement identity(n);
    auto once = apply_shift_transform(identity);
    ShiftedArrangement shifted(n);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        EXPECT_EQ(once->mirror_of(i, j), shifted.mirror_of(i, j))
            << "n=" << n;
  }
}

TEST(Iterated, ZeroIterationsIsIdentity) {
  auto arr = make_iterated(4, 0);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) EXPECT_EQ(arr->mirror_of(i, j), (Pos{i, j}));
}

TEST(Iterated, AlwaysBijective) {
  for (int n : {2, 3, 4, 5}) {
    for (int k = 0; k <= 6; ++k) {
      auto arr = make_iterated(n, k);
      EXPECT_TRUE(arr->is_bijection()) << "n=" << n << " k=" << k;
    }
  }
}

TEST(Iterated, TransformEventuallyCycles) {
  // The transform is a permutation of a finite set of arrangements, so
  // iterating must return to a previously seen arrangement; for small n
  // the cycle is short. Verify a cycle exists within 64 steps for n=3.
  const int n = 3;
  auto key = [&](const MirrorArrangement& a) {
    std::string k;
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) {
        const Pos p = a.mirror_of(i, j);
        k += static_cast<char>('0' + p.disk);
        k += static_cast<char>('0' + p.row);
      }
    return k;
  };
  std::vector<std::string> seen;
  bool cycled = false;
  for (int k = 0; k <= 64 && !cycled; ++k) {
    auto arr = make_iterated(n, k);
    const std::string sig = key(*arr);
    for (const auto& s : seen)
      if (s == sig) cycled = true;
    seen.push_back(sig);
  }
  EXPECT_TRUE(cycled);
}

TEST(Factory, MakesKnownKinds) {
  auto trad = make_arrangement("traditional", 4);
  ASSERT_TRUE(trad.is_ok());
  EXPECT_EQ(trad.value()->name(), "traditional");
  auto shifted = make_arrangement("shifted", 4);
  ASSERT_TRUE(shifted.is_ok());
  EXPECT_EQ(shifted.value()->name(), "shifted");
}

TEST(Factory, RejectsUnknownKindAndBadN) {
  EXPECT_FALSE(make_arrangement("bogus", 3).is_ok());
  EXPECT_FALSE(make_arrangement("shifted", 0).is_ok());
}

TEST(Render, ShowsBothArrays) {
  ShiftedArrangement arr(3);
  const std::string out = render_arrays(arr);
  EXPECT_NE(out.find("data disk array"), std::string::npos);
  EXPECT_NE(out.find("mirror disk array (shifted)"), std::string::npos);
  // 3 data rows below the header.
  EXPECT_GE(std::count(out.begin(), out.end(), '\n'), 4);
}

}  // namespace
}  // namespace sma::layout
