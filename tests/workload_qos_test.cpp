// QoS serving engine: arrival processes, rebuild throttling policies,
// trace replay, and the config-surface migration (deprecated aliases,
// issued/completed accounting).
#include "workload/qos.hpp"

#include <gtest/gtest.h>

#include "array/disk_array.hpp"
#include "obs/observer.hpp"
#include "obs/trace_sink.hpp"
#include "recon/online.hpp"
#include "workload/arrival.hpp"

namespace sma::workload {
namespace {

array::ArrayConfig array_cfg(layout::Architecture arch, int stacks = 2) {
  array::ArrayConfig cfg;
  cfg.arch = arch;
  cfg.stripes = stacks * arch.total_disks();
  cfg.content_bytes = 64;
  cfg.logical_element_bytes = 4'000'000;
  cfg.seed = 5;
  return cfg;
}

Result<recon::OnlineReport> run_online(const recon::OnlineConfig& cfg,
                                       bool shifted = true) {
  array::DiskArray arr(array_cfg(layout::Architecture::mirror(5, shifted)));
  arr.initialize();
  arr.fail_physical(0);
  return recon::run_online_reconstruction(arr, cfg);
}

void expect_reports_equal(const recon::OnlineReport& a,
                          const recon::OnlineReport& b) {
  EXPECT_DOUBLE_EQ(a.rebuild_done_s, b.rebuild_done_s);
  EXPECT_DOUBLE_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_DOUBLE_EQ(a.p50_latency_s, b.p50_latency_s);
  EXPECT_DOUBLE_EQ(a.p99_latency_s, b.p99_latency_s);
  EXPECT_DOUBLE_EQ(a.p999_latency_s, b.p999_latency_s);
  EXPECT_DOUBLE_EQ(a.max_latency_s, b.max_latency_s);
  EXPECT_EQ(a.user_reads, b.user_reads);
  EXPECT_EQ(a.requests_issued, b.requests_issued);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.degraded_reads, b.degraded_reads);
  EXPECT_EQ(a.slo_violations, b.slo_violations);
  EXPECT_EQ(a.final_rebuild_budget, b.final_rebuild_budget);
  EXPECT_EQ(a.throttle_adjustments, b.throttle_adjustments);
}

// --- arrival process determinism --------------------------------------

TEST(ArrivalProcess, EachKindIsDeterministicBySeed) {
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kClosedLoop,
        ArrivalKind::kBursty}) {
    auto run = [&] {
      recon::OnlineConfig cfg;
      cfg.arrival.kind = kind;
      cfg.arrival.max_requests = 120;
      cfg.arrival.seed = 99;
      cfg.arrival.clients = 6;
      cfg.arrival.rate_hz = 25.0;
      return run_online(cfg);
    };
    auto a = run();
    auto b = run();
    ASSERT_TRUE(a.is_ok()) << to_string(kind);
    ASSERT_TRUE(b.is_ok()) << to_string(kind);
    expect_reports_equal(a.value(), b.value());
    EXPECT_EQ(a.value().requests_issued, 120u) << to_string(kind);
  }
}

TEST(ArrivalProcess, KindNamesRoundTrip) {
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kClosedLoop, ArrivalKind::kBursty,
        ArrivalKind::kTrace}) {
    auto parsed = arrival_kind_from(to_string(kind));
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(arrival_kind_from("uniform").is_ok());
}

TEST(ArrivalProcess, RejectsBadConfigs) {
  ArrivalConfig cfg;
  cfg.rate_hz = 0.0;
  EXPECT_FALSE(make_arrival_process(cfg).is_ok());
  cfg = {};
  cfg.kind = ArrivalKind::kClosedLoop;
  cfg.clients = 0;
  EXPECT_FALSE(make_arrival_process(cfg).is_ok());
  cfg = {};
  cfg.kind = ArrivalKind::kTrace;  // empty trace
  EXPECT_FALSE(make_arrival_process(cfg).is_ok());
  cfg.trace = {{1.0, false}, {0.5, false}};  // decreasing instants
  EXPECT_FALSE(make_arrival_process(cfg).is_ok());
}

// --- rebuild throttle unit behavior -----------------------------------

TEST(RebuildThrottle, StrictPriorityIsDisabled) {
  QosConfig qos;
  RebuildThrottle t(qos, 8);
  EXPECT_FALSE(t.enabled());
  EXPECT_FALSE(t.adaptive());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(t.allow());
    t.on_issue();
  }
}

TEST(RebuildThrottle, FixedBudgetCapsInflight) {
  QosConfig qos;
  qos.policy = RebuildPolicy::kFixedBudget;
  qos.rebuild_budget = 3;
  RebuildThrottle t(qos, 8);
  EXPECT_TRUE(t.enabled());
  int issued = 0;
  while (t.allow()) {
    t.on_issue();
    ++issued;
  }
  EXPECT_EQ(issued, 3);
  t.on_complete();
  EXPECT_TRUE(t.allow());
}

TEST(RebuildThrottle, FixedBudgetZeroIsInert) {
  QosConfig qos;
  qos.policy = RebuildPolicy::kFixedBudget;
  qos.rebuild_budget = 0;  // documented: unlimited == strict behavior
  RebuildThrottle t(qos, 8);
  EXPECT_FALSE(t.enabled());
  EXPECT_TRUE(t.allow());
}

TEST(RebuildThrottle, AdaptiveAimdRaisesAndHalves) {
  QosConfig qos;
  qos.policy = RebuildPolicy::kAdaptive;
  qos.p99_target_s = 0.1;
  qos.min_budget = 1;
  RebuildThrottle t(qos, 8);
  EXPECT_TRUE(t.adaptive());
  EXPECT_EQ(t.budget(), 8);  // starts at the structural ceiling
  // Violation: multiplicative decrease toward the floor.
  EXPECT_EQ(t.control(0.2), -4);
  EXPECT_EQ(t.budget(), 4);
  EXPECT_EQ(t.control(0.2), -2);
  EXPECT_EQ(t.control(0.2), -1);
  EXPECT_EQ(t.budget(), 1);
  EXPECT_EQ(t.control(0.2), 0);  // floored at min_budget
  // Under raise_headroom * target: additive increase.
  EXPECT_EQ(t.control(0.05), 1);
  EXPECT_EQ(t.budget(), 2);
  // In the dead band (between headroom and target): hold.
  EXPECT_EQ(t.control(0.095), 0);
  // Empty window (no reads completed) also raises.
  EXPECT_EQ(t.control(-1.0), 1);
  EXPECT_EQ(t.budget(), 3);
  // Ceiling: never exceeds the disk count.
  for (int i = 0; i < 20; ++i) t.control(-1.0);
  EXPECT_EQ(t.budget(), 8);
}

TEST(RebuildThrottle, PolicyNamesRoundTrip) {
  for (const RebuildPolicy p :
       {RebuildPolicy::kStrictPriority, RebuildPolicy::kFixedBudget,
        RebuildPolicy::kAdaptive}) {
    auto parsed = rebuild_policy_from(to_string(p));
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed.value(), p);
  }
  EXPECT_FALSE(rebuild_policy_from("greedy").is_ok());
}

// --- adaptive throttle end to end -------------------------------------

TEST(AdaptiveThrottle, ConvergesTowardTarget) {
  // Contended strict baseline vs. adaptive at a target between the
  // un-contended service latency and the strict p99.
  recon::OnlineConfig strict;
  strict.arrival.rate_hz = 25.0;
  strict.arrival.max_requests = 400;
  strict.arrival.seed = 2012;
  auto base = run_online(strict, /*shifted=*/false);
  ASSERT_TRUE(base.is_ok());

  obs::TraceSink sink;
  obs::Observer ob;
  ob.trace = &sink;
  recon::OnlineConfig cfg = strict;
  cfg.qos.policy = RebuildPolicy::kAdaptive;
  cfg.qos.p99_target_s = 0.120;
  cfg.observer = &ob;
  auto adaptive = run_online(cfg, /*shifted=*/false);
  ASSERT_TRUE(adaptive.is_ok());

  // The throttle actually acted and improved the foreground tail.
  EXPECT_GT(adaptive.value().throttle_adjustments, 0);
  EXPECT_LT(adaptive.value().p99_latency_s, base.value().p99_latency_s);
  EXPECT_LE(adaptive.value().slo_violations, adaptive.value().user_reads);
  EXPECT_GE(adaptive.value().final_rebuild_budget, cfg.qos.min_budget);

  // Controller telemetry: every decision was recorded, budgets stay in
  // [min_budget, disk count], and the controller reacts to violations —
  // any window p99 above target is followed by a budget at or below the
  // previous one (AIMD decrease, or already at the floor).
  std::vector<obs::TraceEvent> ticks;
  for (const auto& ev : sink.events())
    if (ev.kind == obs::EventKind::kThrottle) ticks.push_back(ev);
  ASSERT_GT(ticks.size(), 4u);
  int prev_budget = -1;
  for (const auto& ev : ticks) {
    const int budget = static_cast<int>(ev.slot);
    EXPECT_GE(budget, cfg.qos.min_budget);
    EXPECT_LE(budget, 10);  // n = 5 mirror: 10 physical disks
    if (prev_budget >= 0 && ev.dur_s > cfg.qos.p99_target_s) {
      EXPECT_LE(budget, prev_budget);
    }
    prev_budget = budget;
  }
}

TEST(AdaptiveThrottle, ShiftedRebuildsFasterAtSameTarget) {
  // The headline claim: at one p99 target and arrival rate, the shifted
  // arrangement sustains a larger rebuild budget, so its rebuild
  // finishes well ahead of the traditional arrangement's.
  recon::OnlineConfig cfg;
  cfg.arrival.rate_hz = 20.0;
  cfg.arrival.max_requests = 400;
  cfg.arrival.seed = 2012;
  cfg.qos.policy = RebuildPolicy::kAdaptive;
  cfg.qos.p99_target_s = 0.120;
  auto trad = run_online(cfg, /*shifted=*/false);
  auto shift = run_online(cfg, /*shifted=*/true);
  ASSERT_TRUE(trad.is_ok());
  ASSERT_TRUE(shift.is_ok());
  EXPECT_LT(shift.value().rebuild_done_s, trad.value().rebuild_done_s);
}

TEST(AdaptiveThrottle, ValidatesControllerParameters) {
  recon::OnlineConfig cfg;
  cfg.qos.policy = RebuildPolicy::kAdaptive;
  cfg.qos.p99_target_s = 0.0;  // adaptive needs a setpoint
  EXPECT_FALSE(run_online(cfg).is_ok());
  cfg.qos.p99_target_s = 0.1;
  cfg.qos.control_interval_s = 0.0;
  EXPECT_FALSE(run_online(cfg).is_ok());
  cfg.qos.control_interval_s = 0.25;
  cfg.qos.raise_headroom = 1.5;
  EXPECT_FALSE(run_online(cfg).is_ok());
  cfg.qos.raise_headroom = 0.9;
  cfg.qos.rebuild_budget = -1;
  EXPECT_FALSE(run_online(cfg).is_ok());
}

// --- inert defaults: the QoS surface must not perturb the baseline ----

TEST(QosDefaults, StrictAndUnlimitedFixedMatchDefaultRun) {
  recon::OnlineConfig base;
  base.arrival.max_requests = 150;
  auto plain = run_online(base);
  ASSERT_TRUE(plain.is_ok());

  recon::OnlineConfig strict = base;
  strict.qos.policy = RebuildPolicy::kStrictPriority;
  auto s = run_online(strict);
  ASSERT_TRUE(s.is_ok());
  expect_reports_equal(plain.value(), s.value());

  recon::OnlineConfig fixed = base;
  fixed.qos.policy = RebuildPolicy::kFixedBudget;
  fixed.qos.rebuild_budget = 0;  // unlimited — documented inert setting
  auto f = run_online(fixed);
  ASSERT_TRUE(f.is_ok());
  expect_reports_equal(plain.value(), f.value());
  EXPECT_EQ(f.value().final_rebuild_budget, -1);
}

// --- composed config surface ------------------------------------------

// The PR 4 deprecated aliases (user_read_rate_hz, max_user_reads, ...)
// are gone; the composed arrival/mix fields are the only spelling and
// drive the run directly.
TEST(ConfigSurface, ComposedArrivalFieldsDriveTheRun) {
  recon::OnlineConfig cfg;
  cfg.arrival.rate_hz = 33.0;
  cfg.arrival.max_requests = 90;
  cfg.arrival.seed = 17;
  cfg.mix.write_fraction = 0.0;

  auto a = run_online(cfg);
  ASSERT_TRUE(a.is_ok());
  EXPECT_EQ(a.value().requests_issued, 90u);

  auto b = run_online(cfg);
  ASSERT_TRUE(b.is_ok());
  expect_reports_equal(a.value(), b.value());
}

// --- issued vs completed accounting -----------------------------------

TEST(Accounting, IssuedEqualsCompletedWhenAllReadsServable) {
  recon::OnlineConfig cfg;
  cfg.arrival.max_requests = 130;
  auto r = run_online(cfg);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().requests_issued, 130u);
  EXPECT_EQ(r.value().requests_completed, 130u);
  EXPECT_EQ(r.value().user_reads, r.value().requests_issued);
}

// --- arrival-trace export / replay round trip -------------------------

TEST(ArrivalTraceReplay, RoundTripsThroughCsv) {
  // Record a Poisson run's arrivals...
  obs::TraceSink sink;
  obs::Observer ob;
  ob.trace = &sink;
  recon::OnlineConfig cfg;
  cfg.arrival.max_requests = 80;
  cfg.arrival.seed = 31;
  cfg.observer = &ob;
  auto recorded = run_online(cfg);
  ASSERT_TRUE(recorded.is_ok());

  const auto points = arrival_trace_from_events(sink.events());
  ASSERT_EQ(points.size(), 80u);
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_GE(points[i].t_s, points[i - 1].t_s);

  // ...through the CSV schema losslessly...
  const std::string path = testing::TempDir() + "sma_arrival_trace_test.csv";
  ASSERT_TRUE(write_arrival_trace_csv(path, points).ok());
  auto loaded = load_arrival_trace_csv(path);
  ASSERT_TRUE(loaded.is_ok());
  ASSERT_EQ(loaded.value().size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.value()[i].t_s, points[i].t_s);
    EXPECT_EQ(loaded.value()[i].write, points[i].write);
  }

  // ...and back into the simulator: the replay injects the same stream.
  recon::OnlineConfig replay;
  replay.arrival.kind = ArrivalKind::kTrace;
  replay.arrival.trace = std::move(loaded).take();
  replay.arrival.max_requests = 80;
  auto replayed = run_online(replay);
  ASSERT_TRUE(replayed.is_ok());
  EXPECT_EQ(replayed.value().requests_issued, 80u);
  EXPECT_EQ(replayed.value().requests_completed, 80u);
}

}  // namespace
}  // namespace sma::workload
