#include "chaos/engine.hpp"

#include <gtest/gtest.h>

#include "chaos/oracle.hpp"
#include "chaos/scenario.hpp"

namespace sma::chaos {
namespace {

constexpr int kDisks = 9;  // mirror_with_parity(4)

TEST(ChaosScenario, ComposedSpecsRoundTripThroughTheParser) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const Scenario sc = compose_scenario(seed, kDisks);
    ASSERT_FALSE(sc.steps.empty());
    EXPECT_EQ(sc.steps[0].action, ChaosAction::kFailStop);
    const auto parsed = parse_scenario(sc.spec(), seed);
    ASSERT_TRUE(parsed.is_ok()) << sc.spec() << ": "
                                << parsed.status().to_string();
    EXPECT_EQ(parsed.value().spec(), sc.spec());
    EXPECT_EQ(parsed.value().steps.size(), sc.steps.size());
  }
  const Scenario ref = reference_scenario(kDisks);
  const auto parsed = parse_scenario(ref.spec(), ref.seed);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().spec(), ref.spec());
}

TEST(ChaosScenario, ComposeIsAPureFunctionOfTheSeed) {
  EXPECT_EQ(compose_scenario(42, kDisks).spec(),
            compose_scenario(42, kDisks).spec());
  bool any_differ = false;
  for (std::uint64_t seed = 1; seed <= 8 && !any_differ; ++seed)
    any_differ = compose_scenario(seed, kDisks).spec() !=
                 compose_scenario(seed + 100, kDisks).spec();
  EXPECT_TRUE(any_differ);
}

TEST(ChaosScenario, MalformedSpecsAreRejectedWithTheTokenNamed) {
  EXPECT_EQ(parse_scenario("fail:d0").status().code(),
            ErrorCode::kInvalidArgument);  // missing @<t>
  EXPECT_EQ(parse_scenario("explode@1:d0").status().code(),
            ErrorCode::kInvalidArgument);  // unknown step
  EXPECT_EQ(parse_scenario("fail@1").status().code(),
            ErrorCode::kInvalidArgument);  // missing disk
  EXPECT_EQ(parse_scenario("failslow@0:d1:x0.5").status().code(),
            ErrorCode::kInvalidArgument);  // factor must exceed 1
  EXPECT_EQ(parse_scenario("transient@0:d1:p1.5").status().code(),
            ErrorCode::kInvalidArgument);  // probability out of range
  EXPECT_EQ(parse_scenario("corrupt@0:n0:bitrot").status().code(),
            ErrorCode::kInvalidArgument);  // zero corruptions
  const auto err = parse_scenario("fail@1:q9");
  ASSERT_FALSE(err.is_ok());
  EXPECT_NE(err.status().to_string().find("q9"), std::string::npos);
}

TEST(ChaosEngine, ReferenceScenarioRunsAllPhasesCleanly) {
  ChaosConfig cfg;
  cfg.scenario = reference_scenario(kDisks);
  const auto r = run_scenario(cfg);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const ChaosReport& rep = r.value();
  EXPECT_GT(rep.serving.requests_completed, 0u);
  EXPECT_TRUE(rep.serving.second_failure_injected);
  EXPECT_TRUE(rep.crashed);
  EXPECT_GT(rep.resync.regions_scanned, 0);
  EXPECT_TRUE(rep.rebuilt);
  EXPECT_EQ(rep.repairs_started, 2);  // primary + second failure
  EXPECT_EQ(rep.rebuild.unrecoverable_elements, 0u);
  EXPECT_EQ(rep.final_state, repair::ArrayState::kHealthy);
  EXPECT_GT(rep.oracle_checks, 6);
}

TEST(ChaosEngine, RejectsStepsTargetingDisksBeyondTheArray) {
  ChaosConfig cfg;
  auto parsed = parse_scenario("fail@0:d99");
  ASSERT_TRUE(parsed.is_ok());
  cfg.scenario = std::move(parsed).take();
  EXPECT_EQ(run_scenario(cfg).status().code(), ErrorCode::kInvalidArgument);
}

TEST(ChaosOracle, CatchesAnInjectorThatSkipsTheResync) {
  ChaosConfig cfg;
  cfg.scenario = reference_scenario(kDisks);
  cfg.sabotage = ChaosConfig::Sabotage::kSkipResync;
  const auto r = run_scenario(cfg);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInternal);
  const std::string msg = r.status().to_string();
  EXPECT_NE(msg.find("dirty region"), std::string::npos) << msg;
  // The violation names the replay pair.
  EXPECT_NE(msg.find("--seed="), std::string::npos) << msg;
  EXPECT_NE(msg.find("--scenario="), std::string::npos) << msg;
}

TEST(ChaosOracle, CatchesAnInjectorThatLeaksSilentCorruption) {
  ChaosConfig cfg;
  auto parsed = parse_scenario("corrupt@0:n3:bitrot", 77);
  ASSERT_TRUE(parsed.is_ok());
  cfg.scenario = std::move(parsed).take();
  cfg.sabotage = ChaosConfig::Sabotage::kLeakCorruption;
  const auto r = run_scenario(cfg);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInternal);
  EXPECT_NE(r.status().to_string().find("checksum"), std::string::npos)
      << r.status().to_string();
}

TEST(ChaosDeterminism, ScenarioReplaysBitIdentically) {
  ChaosConfig cfg;
  cfg.scenario = compose_scenario(7, kDisks);
  cfg.hedge.enabled = true;
  const auto a = run_scenario(cfg);
  const auto b = run_scenario(cfg);
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value().digest, b.value().digest);
}

TEST(ChaosDeterminism, SoakSerialMatchesParallelAndRepeats) {
  SoakConfig cfg;
  cfg.scenarios = 24;
  cfg.threads = 1;
  const auto serial = run_soak(cfg);
  ASSERT_TRUE(serial.is_ok()) << serial.status().to_string();
  EXPECT_EQ(serial.value().violations, 0)
      << serial.value().violation_messages.front();

  cfg.threads = 4;
  const auto parallel = run_soak(cfg);
  ASSERT_TRUE(parallel.is_ok());
  EXPECT_EQ(parallel.value().digest, serial.value().digest);

  cfg.threads = 1;
  const auto again = run_soak(cfg);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value().digest, serial.value().digest);
}

TEST(ChaosSoak, TwoHundredSeededScenariosProduceZeroViolations) {
  SoakConfig cfg;
  cfg.scenarios = 200;
  cfg.threads = 4;
  const auto r = run_soak(cfg);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r.value().scenarios_run, 200);
  EXPECT_EQ(r.value().violations, 0)
      << r.value().violation_messages.front();
}

TEST(ChaosFleet, DomainScenarioIsConsistentAndDeterministic) {
  FleetScenarioConfig cfg;
  cfg.seed = 99;
  const auto r = run_fleet_scenario(cfg);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_GT(r.value().failures, 0);
  const auto again = run_fleet_scenario(cfg);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value().digest, r.value().digest);
}

}  // namespace
}  // namespace sma::chaos
