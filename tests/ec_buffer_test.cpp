#include "ec/buffer.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace sma::ec {
namespace {

TEST(ColumnSet, ShapeAccessors) {
  ColumnSet cs(4, 3, 64);
  EXPECT_EQ(cs.columns(), 4);
  EXPECT_EQ(cs.rows(), 3);
  EXPECT_EQ(cs.element_bytes(), 64u);
  EXPECT_EQ(cs.column_bytes(), 192u);
}

TEST(ColumnSet, ElementsAreDisjoint) {
  ColumnSet cs(3, 3, 16);
  cs.zero_all();
  auto e = cs.element(1, 2);
  std::fill(e.begin(), e.end(), 0xAB);
  for (int c = 0; c < 3; ++c) {
    for (int r = 0; r < 3; ++r) {
      auto other = cs.element(c, r);
      const bool expected_set = (c == 1 && r == 2);
      EXPECT_EQ(other[0] == 0xAB, expected_set) << c << "," << r;
    }
  }
}

TEST(ColumnSet, ColumnSpansRowsContiguously) {
  ColumnSet cs(2, 4, 8);
  cs.zero_all();
  for (int r = 0; r < 4; ++r) {
    auto e = cs.element(1, r);
    std::fill(e.begin(), e.end(), static_cast<std::uint8_t>(r + 1));
  }
  auto col = cs.column(1);
  ASSERT_EQ(col.size(), 32u);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(col[static_cast<std::size_t>(r) * 8], r + 1);
}

TEST(ColumnSet, FillPatternDeterministicPerElement) {
  ColumnSet a(3, 3, 32);
  ColumnSet b(3, 3, 32);
  a.fill_pattern(99);
  b.fill_pattern(99);
  for (int c = 0; c < 3; ++c)
    EXPECT_TRUE(a.column_equals(c, b, c));
  b.fill_pattern(100);
  bool any_diff = false;
  for (int c = 0; c < 3; ++c)
    if (!a.column_equals(c, b, c)) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(ColumnSet, FillPatternElementsDiffer) {
  ColumnSet cs(2, 2, 64);
  cs.fill_pattern(7);
  // No two elements should be byte-identical.
  auto same = [&](int c1, int r1, int c2, int r2) {
    auto a = cs.element(c1, r1);
    auto b = cs.element(c2, r2);
    return std::equal(a.begin(), a.end(), b.begin());
  };
  EXPECT_FALSE(same(0, 0, 0, 1));
  EXPECT_FALSE(same(0, 0, 1, 0));
  EXPECT_FALSE(same(1, 0, 1, 1));
}

TEST(ColumnSet, ZeroColumnOnlyTouchesThatColumn) {
  ColumnSet cs(3, 2, 16);
  cs.fill_pattern(1);
  ColumnSet ref = cs;
  cs.zero_column(1);
  EXPECT_TRUE(cs.column_equals(0, ref, 0));
  EXPECT_FALSE(cs.column_equals(1, ref, 1));
  EXPECT_TRUE(cs.column_equals(2, ref, 2));
  auto col = cs.column(1);
  EXPECT_TRUE(std::all_of(col.begin(), col.end(),
                          [](std::uint8_t b) { return b == 0; }));
}

TEST(ColumnSet, SameShape) {
  ColumnSet a(2, 3, 8);
  ColumnSet b(2, 3, 8);
  ColumnSet c(3, 3, 8);
  ColumnSet d(2, 3, 16);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
  EXPECT_FALSE(a.same_shape(d));
}

TEST(ColumnSet, CopySemantics) {
  ColumnSet a(2, 2, 8);
  a.fill_pattern(5);
  ColumnSet b = a;  // deep copy
  b.zero_column(0);
  EXPECT_FALSE(a.column_equals(0, b, 0));
  EXPECT_TRUE(a.column_equals(1, b, 1));
}

}  // namespace
}  // namespace sma::ec
