#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace sma {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i)
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsGracefully) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) pool.submit([&count] { ++count; });
    pool.wait_idle();
  }  // destructor joins
  EXPECT_EQ(count.load(), 10);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoOp) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SerialFallbackForTinyRanges) {
  std::vector<int> hits(2, 0);
  parallel_for(2, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(hits[0], 1);
  EXPECT_EQ(hits[1], 1);
}

TEST(ParallelFor, ExplicitThreadCount) {
  std::atomic<std::size_t> sum{0};
  parallel_for(100, [&](std::size_t i) { sum += i; }, 3);
  EXPECT_EQ(sum.load(), 4950u);
}

}  // namespace
}  // namespace sma
