// Degenerate-size and boundary-condition checks across modules: the
// places where off-by-ones live.
#include <gtest/gtest.h>

#include "core/volume.hpp"
#include "layout/properties.hpp"
#include "recon/analytic.hpp"
#include "recon/executor.hpp"
#include "recon/failure.hpp"
#include "recon/plan.hpp"
#include "workload/write_executor.hpp"

namespace sma {
namespace {

TEST(Edge, NEqualsOneMirror) {
  // A 1-disk "array" mirrored: 2 disks, 1 row. Everything still works.
  const auto arch = layout::Architecture::mirror(1, true);
  EXPECT_EQ(arch.total_disks(), 2);
  EXPECT_TRUE(layout::evaluate_properties(*arch.arrangement()).all());
  auto plan = recon::plan_reconstruction(arch, {0});
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan.value().read_accesses(arch), 1);

  array::ArrayConfig cfg;
  cfg.arch = arch;
  cfg.stripes = 2;
  cfg.content_bytes = 32;
  array::DiskArray arr(cfg);
  arr.initialize();
  arr.fail_physical(1);
  auto report = recon::reconstruct(arr);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(arr.verify_all().is_ok());
}

TEST(Edge, NEqualsOneMirrorWithParity) {
  const auto arch = layout::Architecture::mirror_with_parity(1, true);
  EXPECT_EQ(arch.total_disks(), 3);
  const auto table = recon::enumerate_double_failure_cases(arch);
  // n=1: F2 has zero cases; only F1 (2 cases) and F3 (1 case) exist.
  long total = 0;
  for (const auto& row : table.rows) total += row.num_cases;
  EXPECT_EQ(total, 3);
  // The paper's closed form 4n/(2n+1) implicitly assumes n >= 2: at
  // n = 1 the F3 parity path degenerates to reading the lone parity
  // element (1 access, not 2), so every case needs exactly 1 access.
  EXPECT_NEAR(table.average_read_accesses, 1.0, 1e-12);
  EXPECT_GT(recon::paper_avg_read_shifted_mirror_parity(1),
            table.average_read_accesses);
}

TEST(Edge, NEqualsTwoShiftedIsSwapColumns) {
  // n=2: the shifted arrangement maps a(i,j) -> b(<i+j>_2, i); still
  // all three properties, and the rebuild is 2x parallel.
  layout::ShiftedArrangement arr(2);
  EXPECT_TRUE(layout::evaluate_properties(arr).all());
  EXPECT_EQ(arr.mirror_of(0, 1), (layout::Pos{1, 0}));
  EXPECT_EQ(arr.mirror_of(1, 1), (layout::Pos{0, 1}));
}

TEST(Edge, SingleStripeNoRotation) {
  array::ArrayConfig cfg;
  cfg.arch = layout::Architecture::mirror_with_parity(3, true);
  cfg.stripes = 1;
  cfg.rotate = false;
  cfg.content_bytes = 32;
  array::DiskArray arr(cfg);
  arr.initialize();
  EXPECT_TRUE(arr.verify_all().is_ok());
  arr.fail_physical(0);
  arr.fail_physical(4);
  auto report = recon::reconstruct(arr);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(arr.verify_all().is_ok());
}

TEST(Edge, TimingUsesLogicalNotStoredBytes) {
  // The content store is tiny; the timing model must charge the 4 MB
  // logical size regardless.
  array::ArrayConfig cfg;
  cfg.arch = layout::Architecture::mirror(3, true);
  cfg.stripes = 6;
  cfg.content_bytes = 16;  // 16 stored bytes
  cfg.logical_element_bytes = 4'000'000;
  array::DiskArray arr(cfg);
  arr.initialize();
  arr.fail_physical(0);
  auto report = recon::reconstruct(arr);
  ASSERT_TRUE(report.is_ok());
  // 6 stripes x 3 rows... the failed disk holds 6 x 3 = 18 elements?
  // No: rows == n == 3, so 18 elements of 4 MB each were recovered.
  EXPECT_EQ(report.value().logical_bytes_recovered, 18u * 4'000'000);
  // Reads took longer than 18 stored-bytes would ever take.
  EXPECT_GT(report.value().read_makespan_s, 0.05);
}

TEST(Edge, VolumeWithMultipleStacks) {
  core::VolumeConfig cfg;
  cfg.n = 3;
  cfg.with_parity = true;
  cfg.stacks = 3;
  cfg.content_bytes = 32;
  auto vol = core::MirroredVolume::create(cfg);
  ASSERT_TRUE(vol.is_ok());
  EXPECT_EQ(vol.value().stripes(), 21);  // 3 stacks x 7 disks
  EXPECT_TRUE(vol.value().verify().is_ok());
}

TEST(Edge, WriteWorkloadOnSingleStripeVolume) {
  array::ArrayConfig cfg;
  cfg.arch = layout::Architecture::mirror(2, true);
  cfg.stripes = 1;
  cfg.content_bytes = 32;
  array::DiskArray arr(cfg);
  arr.initialize();
  workload::WriteWorkloadConfig wcfg;
  wcfg.arrival.max_requests = 20;
  const auto reqs = workload::generate_large_writes(arr, wcfg);
  for (const auto& r : reqs) {
    EXPECT_GE(r.start, 0);
    EXPECT_LE(r.start + r.length, 4);  // 2x2 elements total
  }
  const auto report = workload::run_write_workload(arr, reqs);
  EXPECT_GT(report.write_throughput_mbps(), 0.0);
}

TEST(Edge, Fig7PointAtMinimumN) {
  const auto p = recon::fig7_point(2);
  EXPECT_GT(p.shifted_avg, 1.0);
  EXPECT_LT(p.shifted_avg, 2.0);
  EXPECT_DOUBLE_EQ(p.traditional_avg, 2.0);
  EXPECT_GT(p.ratio_vs_traditional_pct, 0.0);
}

TEST(Edge, ZeroLengthBatchExecute) {
  array::ArrayConfig cfg;
  cfg.arch = layout::Architecture::mirror(2, true);
  cfg.stripes = 1;
  cfg.content_bytes = 32;
  array::DiskArray arr(cfg);
  arr.initialize();
  const auto stats = arr.execute({}, 5.0);
  EXPECT_DOUBLE_EQ(stats.start_s, 5.0);
  EXPECT_DOUBLE_EQ(stats.end_s, 5.0);
  EXPECT_EQ(stats.max_ops_per_disk, 0);
}

}  // namespace
}  // namespace sma
