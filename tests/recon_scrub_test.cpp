#include "recon/scrub.hpp"

#include <gtest/gtest.h>

namespace sma::recon {
namespace {

array::ArrayConfig cfg_for(layout::Architecture arch) {
  array::ArrayConfig cfg;
  cfg.arch = arch;
  cfg.stripes = arch.total_disks();
  cfg.content_bytes = 64;
  cfg.logical_element_bytes = 4'000'000;
  cfg.seed = 55;
  return cfg;
}

TEST(Scrub, CleanArrayReportsClean) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror_with_parity(4, true)));
  arr.initialize();
  auto report = scrub(arr);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report.value().clean());
  EXPECT_EQ(report.value().mismatches, 0u);
  EXPECT_EQ(report.value().elements_scanned,
            static_cast<std::uint64_t>(4 * 4 * arr.stripes()));
  EXPECT_GT(report.value().makespan_s, 0.0);
}

TEST(Scrub, RejectsRaidAndDegradedArrays) {
  array::DiskArray raid(cfg_for(layout::Architecture::raid5(3)));
  raid.initialize();
  EXPECT_EQ(scrub(raid).status().code(), ErrorCode::kInvalidArgument);

  array::DiskArray degraded(cfg_for(layout::Architecture::mirror(3, true)));
  degraded.initialize();
  degraded.fail_physical(0);
  EXPECT_EQ(scrub(degraded).status().code(), ErrorCode::kFailedPrecondition);
}

TEST(Scrub, RepairsCorruptDataCopyViaParity) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror_with_parity(4, true)));
  arr.initialize();
  arr.content(arr.arch().data_disk(1), 2, 3)[5] ^= 0xFF;
  auto report = scrub(arr);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().mismatches, 1u);
  EXPECT_EQ(report.value().repaired_data, 1u);
  EXPECT_EQ(report.value().repaired_mirror, 0u);
  EXPECT_EQ(report.value().undecidable, 0u);
  EXPECT_TRUE(arr.verify_all().is_ok());
}

TEST(Scrub, RepairsCorruptMirrorCopyViaParity) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror_with_parity(4, true)));
  arr.initialize();
  const layout::Pos rp = arr.arch().replica_of(2, 1);
  arr.content(rp.disk, 3, rp.row)[0] ^= 0x10;
  auto report = scrub(arr);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().repaired_mirror, 1u);
  EXPECT_TRUE(arr.verify_all().is_ok());
}

TEST(Scrub, RepairsCorruptParityElement) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror_with_parity(3, true)));
  arr.initialize();
  arr.content(arr.arch().parity_disk(), 1, 2)[7] ^= 0x80;
  auto report = scrub(arr);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().mismatches, 0u);
  EXPECT_EQ(report.value().repaired_parity, 1u);
  EXPECT_TRUE(arr.verify_all().is_ok());
}

TEST(Scrub, MirrorWithoutParityDetectsButCannotAttribute) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror(3, true)));
  arr.initialize();
  arr.content(0, 0, 0)[0] ^= 0x01;
  auto report = scrub(arr);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().mismatches, 1u);
  EXPECT_EQ(report.value().undecidable, 1u);
  EXPECT_EQ(report.value().repaired_data, 0u);
}

TEST(Scrub, TwoCorruptionsInOneRowAreUndecidable) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror_with_parity(4, true)));
  arr.initialize();
  // Corrupt two *data* elements of the same row: parity arbitration of
  // either one is polluted by the other.
  arr.content(arr.arch().data_disk(0), 0, 1)[0] ^= 0x01;
  arr.content(arr.arch().data_disk(2), 0, 1)[0] ^= 0x02;
  auto report = scrub(arr);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().mismatches, 2u);
  EXPECT_EQ(report.value().undecidable, 2u);
}

class ScrubSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScrubSweep, InjectedErrorsInDistinctRowsAllRepaired) {
  // Property: any number of latent errors, at most one per parity row,
  // is fully repaired and the array verifies byte-exact afterwards.
  const int errors = GetParam();
  array::DiskArray arr(cfg_for(layout::Architecture::mirror_with_parity(5, true)));
  arr.initialize();
  Rng rng(static_cast<std::uint64_t>(errors) * 31 + 7);

  // Inject by hand into distinct (stripe, row) combinations so no two
  // errors share an arbitration row.
  // Key the uniqueness on the *arbitration row* (stripe, data row), so
  // no two corruptions pollute the same parity equation. Half corrupt
  // the data copy, half the replica.
  std::set<std::pair<int, int>> rows_used;
  int placed = 0;
  while (placed < errors) {
    const int s = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(arr.stripes())));
    const int j = static_cast<int>(rng.next_below(5));
    if (!rows_used.insert({s, j}).second) continue;
    const int i = static_cast<int>(rng.next_below(5));
    if (rng.next_bool()) {
      const layout::Pos rp = arr.arch().replica_of(i, j);
      arr.content(rp.disk, s, rp.row)[0] ^= 0x5A;
    } else {
      arr.content(arr.arch().data_disk(i), s, j)[0] ^= 0x5A;
    }
    ++placed;
  }
  auto report = scrub(arr);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().undecidable, 0u);
  EXPECT_TRUE(arr.verify_all().is_ok());
}

INSTANTIATE_TEST_SUITE_P(ErrorCounts, ScrubSweep,
                         ::testing::Values(1, 3, 8, 20));

TEST(Inject, ProducesRequestedDistinctCorruptions) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror_with_parity(4, true)));
  arr.initialize();
  Rng rng(11);
  const auto injected = inject_latent_errors(arr, rng, 12);
  EXPECT_EQ(injected.size(), 12u);
  // Every injection must actually corrupt (verify_all fails now).
  EXPECT_FALSE(arr.verify_all().is_ok());
  std::set<std::tuple<int, int, int>> distinct;
  for (const auto& e : injected)
    distinct.insert({e.logical_disk, e.stripe, e.row});
  EXPECT_EQ(distinct.size(), 12u);
}

TEST(Scrub, InjectThenScrubThenVerifyEndToEnd) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror_with_parity(5, true)));
  arr.initialize();
  Rng rng(3);
  inject_latent_errors(arr, rng, 5);
  auto report = scrub(arr);
  ASSERT_TRUE(report.is_ok());
  // Some injections may share a row (undecidable); re-scrub after a
  // second pass must at least not regress, and decidable ones are
  // repaired.
  EXPECT_GE(report.value().mismatches + report.value().repaired_parity, 1u);
  if (report.value().undecidable == 0) {
    EXPECT_TRUE(arr.verify_all().is_ok());
  }
}

}  // namespace
}  // namespace sma::recon
