#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace sma {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat all;
  RunningStat a;
  RunningStat b;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 5;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmptyIsNoOp) {
  RunningStat a;
  a.add(1);
  a.add(3);
  RunningStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(SampleSet, PercentilesOnKnownData) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-12);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-12);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.mean(), 50.5, 1e-12);
}

TEST(SampleSet, SingleSample) {
  SampleSet s;
  s.add(3.14);
  EXPECT_DOUBLE_EQ(s.percentile(0), 3.14);
  EXPECT_DOUBLE_EQ(s.percentile(50), 3.14);
  EXPECT_DOUBLE_EQ(s.percentile(100), 3.14);
}

TEST(SampleSet, AddAfterQueryStillSorts) {
  SampleSet s;
  s.add(5);
  s.add(1);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.5);
  EXPECT_DOUBLE_EQ(s.min(), 0.5);  // re-sorts after mutation
}

TEST(SampleSet, SamplesAreAscendingRegardlessOfInsertionOrder) {
  SampleSet s;
  for (const double x : {3.0, 1.0, 2.0, 2.0, 0.5}) s.add(x);
  const auto& v = s.samples();
  ASSERT_EQ(v.size(), 5u);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_DOUBLE_EQ(v.front(), 0.5);
  EXPECT_DOUBLE_EQ(v.back(), 3.0);
}

// Regression: percentile()/min()/max() used to sort lazily under a
// `mutable` member, so two threads reading a shared (no longer
// mutated) set raced on the hidden sort. Accessors are now genuinely
// const; this test documents the contract and trips TSan if the
// mutation ever comes back.
TEST(SampleSet, ConcurrentConstReadsAreSafe) {
  SampleSet s;
  Rng rng(17);
  for (int i = 0; i < 1000; ++i)
    s.add(rng.next_double());

  const auto& shared = s;
  std::vector<std::thread> readers;
  std::vector<double> results(4, 0.0);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&shared, &results, t] {
      double acc = 0.0;
      for (int i = 0; i < 100; ++i) {
        acc += shared.percentile(25.0 + t);
        acc += shared.min() + shared.max() + shared.median();
      }
      results[static_cast<std::size_t>(t)] = acc;
    });
  }
  for (auto& th : readers) th.join();
  // Same inputs, deterministic outputs: readers at the same percentile
  // would agree; here just require everything finished sane.
  for (const double r : results) EXPECT_GT(r, 0.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 1.0, 4);  // [0,1) [1,2) [2,3) [3,4)
  h.add(-1);                 // underflow
  h.add(0.5);
  h.add(1.0);
  h.add(1.999);
  h.add(3.5);
  h.add(100);  // overflow
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_DOUBLE_EQ(h.bucket_low(2), 2.0);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 10.0, 2);
  h.add(5);
  h.add(5);
  h.add(15);
  const std::string r = h.render();
  EXPECT_NE(r.find("[0, 10)"), std::string::npos);
  EXPECT_NE(r.find("2"), std::string::npos);
}

}  // namespace
}  // namespace sma
