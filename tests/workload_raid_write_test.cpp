#include "workload/raid_write.hpp"

#include <gtest/gtest.h>

#include "ec/evenodd.hpp"
#include "ec/raid5.hpp"
#include "ec/rdp.hpp"

namespace sma::workload {
namespace {

array::ArrayConfig cfg_for(layout::Architecture arch) {
  array::ArrayConfig cfg;
  cfg.arch = arch;
  cfg.stripes = arch.total_disks();
  cfg.content_bytes = 64;
  cfg.logical_element_bytes = 4'000'000;
  cfg.seed = 5;
  return cfg;
}

TEST(RaidUpdateMap, Raid5EveryElementTouchesOneParityCell) {
  ec::Raid5Codec codec(4, 4);
  auto map = RaidUpdateMap::build(codec);
  ASSERT_TRUE(map.is_ok());
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) {
      const auto& cells = map.value().parity_cells(i, j);
      ASSERT_EQ(cells.size(), 1u) << i << "," << j;
      EXPECT_EQ(cells[0], (layout::Pos{4, j}));  // parity of the same row
    }
}

TEST(RaidUpdateMap, RdpElementsTouchTwoOrThreeCells) {
  ec::RdpCodec codec(4);  // p = 5
  auto map = RaidUpdateMap::build(codec);
  ASSERT_TRUE(map.is_ok());
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < codec.rows(); ++j) {
      const auto size = map.value().parity_cells(i, j).size();
      EXPECT_GE(size, 2u);
      EXPECT_LE(size, 3u);
    }
}

TEST(RaidUpdateMap, EvenOddSDiagonalTouchesEveryQCell) {
  const int p = 5;
  ec::EvenOddCodec codec(p);
  auto map = RaidUpdateMap::build(codec);
  ASSERT_TRUE(map.is_ok());
  // Element (i, j) with (i + j) % p == p-1 changes S, hence all Q.
  const auto& cells = map.value().parity_cells(1, p - 2);  // 1 + 3 = 4
  EXPECT_EQ(cells.size(), static_cast<std::size_t>(1 + (p - 1)));
}

TEST(RaidWrite, RejectsMirrorArrays) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror(3, true)));
  arr.initialize();
  auto report = run_raid_write_workload(arr, {});
  EXPECT_EQ(report.status().code(), ErrorCode::kInvalidArgument);
}

TEST(RaidWrite, SingleElementRaid5IsClassicRmw) {
  array::DiskArray arr(cfg_for(layout::Architecture::raid5(4)));
  arr.initialize();
  auto report = run_raid_write_workload(arr, {{0, 1}});
  ASSERT_TRUE(report.is_ok());
  // RMW: read old data + old parity; write data + parity.
  EXPECT_EQ(report.value().bytes_read, 2u * 4'000'000);
  EXPECT_EQ(report.value().bytes_written, 2u * 4'000'000);
  EXPECT_EQ(report.value().user_bytes, 1u * 4'000'000);
}

TEST(RaidWrite, Raid6WritesMoreParityThanRaid5) {
  const std::vector<WriteRequest> reqs{{0, 1}, {7, 2}, {3, 1}};
  std::uint64_t written[2];
  {
    array::DiskArray arr(cfg_for(layout::Architecture::raid5(4)));
    arr.initialize();
    auto r = run_raid_write_workload(arr, reqs);
    ASSERT_TRUE(r.is_ok());
    written[0] = r.value().bytes_written;
  }
  {
    array::DiskArray arr(cfg_for(layout::Architecture::raid6(4)));
    arr.initialize();
    auto r = run_raid_write_workload(arr, reqs);
    ASSERT_TRUE(r.is_ok());
    written[1] = r.value().bytes_written;
  }
  EXPECT_GT(written[1], written[0]);
}

TEST(RaidWrite, ParityCellsDedupedAcrossRequestRows) {
  // Two elements of the same RDP diagonal within one request share a Q
  // cell; it must be read/written once, not twice.
  array::DiskArray arr(cfg_for(layout::Architecture::raid6(4)));  // RDP p=5
  arr.initialize();
  // Whole first stripe write: every parity cell of the stripe touched
  // exactly once.
  const int stripe_elems = arr.arch().rows() * arr.arch().n();
  auto report = run_raid_write_workload(arr, {{0, stripe_elems}});
  ASSERT_TRUE(report.is_ok());
  const std::uint64_t parity_cells =
      static_cast<std::uint64_t>(2) * arr.arch().rows();  // P + Q columns
  EXPECT_EQ(report.value().bytes_written,
            (static_cast<std::uint64_t>(stripe_elems) + parity_cells) *
                4'000'000);
}

TEST(RaidWrite, MirrorParityBeatsRaid6SmallWriteThroughput) {
  // The paper's argument end-to-end: identical small-write workload,
  // mirror+parity (optimal updates) vs shortened RAID-6.
  std::vector<WriteRequest> reqs;
  for (int k = 0; k < 60; ++k) reqs.push_back({k * 3 % 40, 1});

  array::DiskArray mirror(
      cfg_for(layout::Architecture::mirror_with_parity(4, true)));
  mirror.initialize();
  const auto m = run_write_workload(mirror, reqs);

  array::DiskArray raid6(cfg_for(layout::Architecture::raid6(4)));
  raid6.initialize();
  auto r = run_raid_write_workload(raid6, reqs);
  ASSERT_TRUE(r.is_ok());

  EXPECT_GT(m.write_throughput_mbps(), r.value().write_throughput_mbps());
}

}  // namespace
}  // namespace sma::workload
