#include "recon/reliability.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "recon/plan.hpp"

namespace sma::recon {
namespace {

TEST(Recoverable, EmptySetAlwaysRecoverable) {
  EXPECT_TRUE(is_recoverable(layout::Architecture::mirror(3, true), {}));
}

TEST(Recoverable, TraditionalMirrorPairsOnlyPartnerIsFatal) {
  const auto arch = layout::Architecture::mirror(4, false);
  for (int x = 0; x < 4; ++x) {
    for (int b = 0; b < 8; ++b) {
      if (b == x) continue;
      const bool fatal = (b == arch.mirror_disk(x));
      EXPECT_EQ(is_recoverable(arch, {x, b}), !fatal) << x << "," << b;
    }
  }
}

TEST(Recoverable, ShiftedMirrorAnyCrossArrayPairIsFatal) {
  // Every mirror disk holds exactly one replica of every data disk, so
  // any (data, mirror) pair loses one element; same-array pairs are
  // fine.
  const auto arch = layout::Architecture::mirror(4, true);
  for (int x = 0; x < 4; ++x)
    for (int y = 0; y < 4; ++y)
      EXPECT_FALSE(is_recoverable(arch, {x, arch.mirror_disk(y)}))
          << x << "," << y;
  EXPECT_TRUE(is_recoverable(arch, {0, 1}));
  EXPECT_TRUE(is_recoverable(arch, {arch.mirror_disk(0), arch.mirror_disk(2)}));
}

TEST(Recoverable, MirrorParityAllDoublesSurvivable) {
  for (const bool shifted : {false, true}) {
    const auto arch = layout::Architecture::mirror_with_parity(4, shifted);
    for (int a = 0; a < arch.total_disks(); ++a)
      for (int b = a + 1; b < arch.total_disks(); ++b)
        EXPECT_TRUE(is_recoverable(arch, {a, b})) << a << "," << b;
  }
}

TEST(Recoverable, MirrorParityTripleCases) {
  const auto arch = layout::Architecture::mirror_with_parity(3, true);
  // Both copies of one element plus the parity: data 0's replica of
  // row 1 sits on mirror disk <0+1> = 1 (global 4).
  EXPECT_FALSE(is_recoverable(arch, {0, 4, arch.parity_disk()}));
  // Two data disks and the parity disk: every replica is intact.
  EXPECT_TRUE(is_recoverable(arch, {0, 1, arch.parity_disk()}));
  // Three disks of the same array: other array intact.
  EXPECT_TRUE(is_recoverable(arch, {0, 1, 2}));
  // Data disk + two mirror disks: the two elements that lost both
  // copies sit in different rows, each repairable via parity.
  EXPECT_TRUE(is_recoverable(arch, {0, 3, 4}));
}

TEST(Recoverable, ParityClosureCascades) {
  // All data disks lost but the whole mirror array + parity intact:
  // every element available via its replica.
  const auto arch = layout::Architecture::mirror_with_parity(3, true);
  EXPECT_TRUE(is_recoverable(arch, {0, 1, 2}));
  // Whole mirror array lost too -> data intact? data disks all fine.
  EXPECT_TRUE(is_recoverable(arch, {3, 4, 5}));
}

TEST(Recoverable, ConsistentWithPlannerWithinTolerance) {
  // The planner succeeds on every in-tolerance set; the oracle must
  // agree there (it may additionally accept lucky over-tolerance sets).
  const layout::Architecture archs[] = {
      layout::Architecture::mirror(4, false),
      layout::Architecture::mirror(4, true),
      layout::Architecture::mirror_with_parity(4, false),
      layout::Architecture::mirror_with_parity(4, true),
  };
  for (const auto& arch : archs) {
    for (int a = 0; a < arch.total_disks(); ++a) {
      EXPECT_TRUE(is_recoverable(arch, {a})) << arch.name();
      if (arch.fault_tolerance() >= 2) {
        for (int b = a + 1; b < arch.total_disks(); ++b) {
          EXPECT_TRUE(is_recoverable(arch, {a, b}))
              << arch.name() << " " << a << "," << b;
        }
      }
    }
  }
}

TEST(FatalCounts, MirrorPairCounts) {
  // Traditional: 1 fatal partner; shifted: the n disks of the other
  // array.
  for (int n : {3, 5, 7}) {
    const auto trad = count_fatal_sets(layout::Architecture::mirror(n, false));
    EXPECT_DOUBLE_EQ(trad.avg_fatal_second, 1.0) << n;
    const auto shift = count_fatal_sets(layout::Architecture::mirror(n, true));
    EXPECT_DOUBLE_EQ(shift.avg_fatal_second, static_cast<double>(n)) << n;
  }
}

TEST(FatalCounts, MirrorParityNoFatalPairs) {
  for (const bool shifted : {false, true}) {
    const auto counts = count_fatal_sets(
        layout::Architecture::mirror_with_parity(4, shifted));
    EXPECT_DOUBLE_EQ(counts.avg_fatal_second, 0.0);
    EXPECT_GT(counts.avg_fatal_third, 0.0);
  }
}

TEST(Mttdl, Tolerance1ClosedForm) {
  const auto arch = layout::Architecture::mirror(4, false);
  MttdlParams p;
  p.disk_mttf_hours = 1.0e6;
  p.mttr_hours = 10.0;
  const auto report = estimate_mttdl(arch, p);
  // MTTF^2 / (N * k2 * MTTR) with N=8, k2=1.
  EXPECT_NEAR(report.mttdl_hours, 1e12 / (8 * 1 * 10), 1e-3);
  EXPECT_GT(report.mttdl_years(), 0.0);
}

TEST(Mttdl, ShiftedMirrorTradesFatalSetForWindow) {
  // Same MTTR: shifted has n x more fatal seconds -> n x lower MTTDL.
  // Its n x faster rebuild (n x smaller MTTR) exactly cancels that.
  const int n = 5;
  MttdlParams same;
  same.mttr_hours = 10.0;
  const auto trad =
      estimate_mttdl(layout::Architecture::mirror(n, false), same);
  const auto shift_same =
      estimate_mttdl(layout::Architecture::mirror(n, true), same);
  EXPECT_NEAR(trad.mttdl_hours / shift_same.mttdl_hours, n, 1e-9);

  MttdlParams faster = same;
  faster.mttr_hours = same.mttr_hours / n;
  const auto shift_fast =
      estimate_mttdl(layout::Architecture::mirror(n, true), faster);
  EXPECT_NEAR(shift_fast.mttdl_hours, trad.mttdl_hours, 1e-3);
}

TEST(Mttdl, ParityVariantVastlyMoreReliable) {
  MttdlParams p;
  p.mttr_hours = 10.0;
  const auto mirror = estimate_mttdl(layout::Architecture::mirror(4, true), p);
  const auto parity =
      estimate_mttdl(layout::Architecture::mirror_with_parity(4, true), p);
  EXPECT_GT(parity.mttdl_hours, 1e3 * mirror.mttdl_hours);
}

TEST(Mttdl, InfiniteWhenNoFatalSets) {
  // A 1-disk "array" mirrored with parity: no triple exists that loses
  // data... n=1: disks = {data, mirror, parity}: losing all three IS
  // fatal, so instead verify the finite path stays finite.
  const auto report = estimate_mttdl(
      layout::Architecture::mirror_with_parity(1, true), MttdlParams{});
  EXPECT_TRUE(std::isfinite(report.mttdl_hours));
}

}  // namespace
}  // namespace sma::recon
