#include "layout/registry.hpp"

#include <gtest/gtest.h>

#include "layout/architecture.hpp"

namespace sma::layout {
namespace {

LayoutDescriptor minimal_descriptor(std::string name) {
  LayoutDescriptor d;
  d.name = std::move(name);
  d.summary = "test layout";
  d.map = [](const LayoutConfig&, Pos p) { return p; };
  return d;
}

TEST(LayoutRegistrySpec, ParsesNameOnly) {
  auto spec = parse_layout_spec("shifted");
  ASSERT_TRUE(spec.is_ok());
  EXPECT_EQ(spec.value().name, "shifted");
  EXPECT_TRUE(spec.value().params.empty());
}

TEST(LayoutRegistrySpec, ParsesKeyValueList) {
  auto spec = parse_layout_spec("lrc:groups=2,extra=7");
  ASSERT_TRUE(spec.is_ok());
  EXPECT_EQ(spec.value().name, "lrc");
  ASSERT_EQ(spec.value().params.size(), 2u);
  EXPECT_EQ(spec.value().params.at("groups"), "2");
  EXPECT_EQ(spec.value().params.at("extra"), "7");
}

TEST(LayoutRegistrySpec, BareValueUsesEmptyKeyMarker) {
  auto spec = parse_layout_spec("iterated:3");
  ASSERT_TRUE(spec.is_ok());
  ASSERT_EQ(spec.value().params.size(), 1u);
  EXPECT_EQ(spec.value().params.at(""), "3");
}

TEST(LayoutRegistrySpec, RejectsMalformedSpecs) {
  for (const char* bad : {"", ":3", "name:", "name:,", "name:=3",
                          "name:a=1,a=2", "name:3,4"}) {
    auto spec = parse_layout_spec(bad);
    EXPECT_FALSE(spec.is_ok()) << "spec '" << bad << "' should not parse";
    if (!spec.is_ok()) {
      EXPECT_EQ(spec.status().code(), ErrorCode::kInvalidArgument) << bad;
    }
  }
}

TEST(LayoutRegistry, DuplicateNameRejected) {
  AlgorithmRegistry reg;
  ASSERT_TRUE(reg.add(minimal_descriptor("dup")).is_ok());
  Status again = reg.add(minimal_descriptor("dup"));
  EXPECT_EQ(again.code(), ErrorCode::kAlreadyExists);
  // Aliases share the namespace in both directions.
  ASSERT_TRUE(reg.add_alias("other", "dup").is_ok());
  EXPECT_EQ(reg.add(minimal_descriptor("other")).code(),
            ErrorCode::kAlreadyExists);
  EXPECT_EQ(reg.add_alias("dup", "dup").code(), ErrorCode::kAlreadyExists);
}

TEST(LayoutRegistry, MalformedDescriptorRejected) {
  AlgorithmRegistry reg;
  EXPECT_EQ(reg.add(minimal_descriptor("")).code(),
            ErrorCode::kInvalidArgument);
  LayoutDescriptor no_map = minimal_descriptor("no-map");
  no_map.map = nullptr;
  EXPECT_EQ(reg.add(no_map).code(), ErrorCode::kInvalidArgument);
}

TEST(LayoutRegistry, UnknownNameIsNotFound) {
  const auto& reg = AlgorithmRegistry::global();
  auto found = reg.find("bogus");
  ASSERT_FALSE(found.is_ok());
  EXPECT_EQ(found.status().code(), ErrorCode::kNotFound);
  // The error names the registered layouts so the CLI message is usable.
  EXPECT_NE(found.status().to_string().find("shifted"), std::string::npos);
  EXPECT_EQ(reg.make("bogus", 4).status().code(), ErrorCode::kNotFound);
  AlgorithmRegistry fresh;
  EXPECT_EQ(fresh.add_alias("alias", "bogus").code(), ErrorCode::kNotFound);
}

TEST(LayoutRegistry, AliasesResolveToCanonicalNames) {
  const auto& reg = AlgorithmRegistry::global();
  for (const auto& [alias, target] :
       {std::pair<const char*, const char*>{"mirror-traditional",
                                            "traditional"},
        {"mirror-shifted", "shifted"},
        {"identity", "traditional"}}) {
    auto canon = reg.canonical(alias);
    ASSERT_TRUE(canon.is_ok()) << alias;
    EXPECT_EQ(canon.value(), target);
    auto direct = reg.find(alias);
    ASSERT_TRUE(direct.is_ok());
    EXPECT_EQ(direct.value()->name, target);
  }
  // names() lists canonical names only, in registration order.
  const auto names = reg.names();
  ASSERT_GE(names.size(), 6u);
  EXPECT_EQ(names.front(), "traditional");
  for (const auto& n : names) EXPECT_NE(n, "mirror-shifted");
}

TEST(LayoutRegistry, ConfigureValidation) {
  const auto& reg = AlgorithmRegistry::global();
  // groups must divide n.
  EXPECT_EQ(reg.make("lrc:groups=5", 6).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(reg.make("pyramid:groups=4", 6).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(reg.make("lrc:groups=0", 6).status().code(),
            ErrorCode::kInvalidArgument);
  // Non-integer and unknown parameters are rejected.
  EXPECT_EQ(reg.make("lrc:groups=two", 6).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(reg.make("lrc:color=red", 6).status().code(),
            ErrorCode::kInvalidArgument);
  // Layouts without a configure hook take no parameters at all.
  EXPECT_EQ(reg.make("traditional:x=1", 4).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(reg.make("zigzag:2", 4).status().code(),
            ErrorCode::kInvalidArgument);
  // A bare value must not collide with its expanded spelling.
  EXPECT_EQ(reg.make("iterated:3,iterations=3", 5).status().code(),
            ErrorCode::kInvalidArgument);
  // min_n is enforced before configure runs.
  EXPECT_EQ(reg.make("lrc", 1).status().code(), ErrorCode::kInvalidArgument);
}

TEST(LayoutRegistry, EveryBuiltinIsABijectionWithConsistentInverse) {
  const auto& reg = AlgorithmRegistry::global();
  for (const std::string& name : reg.names()) {
    const int min_n = reg.find(name).value()->min_n;
    for (int n : {2, 3, 5, 6, 8}) {
      if (n < min_n) continue;
      auto arr = reg.make(name, n);
      if (!arr.is_ok()) {
        // The grouped layouts default to groups = 2; at odd n that
        // fails configure validation and one flat group must work.
        EXPECT_EQ(arr.status().code(), ErrorCode::kInvalidArgument)
            << name << " n=" << n;
        arr = reg.make(name + ":groups=1", n);
      }
      ASSERT_TRUE(arr.is_ok()) << name << " n=" << n;
      const MirrorArrangement& a = *arr.value();
      EXPECT_TRUE(a.is_bijection()) << name << " n=" << n;
      for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j) {
          const Pos m = a.mirror_of(i, j);
          EXPECT_EQ(a.data_of(m.disk, m.row), (Pos{i, j}))
              << name << " n=" << n << " i=" << i << " j=" << j;
          const auto partner = a.partner_of(m.disk, m.row);
          ASSERT_TRUE(partner.has_value());
          EXPECT_EQ(*partner, (Pos{i, j}));
        }
    }
  }
}

TEST(LayoutRegistry, MatchesPreRegistryArrangementsBitForBit) {
  const auto& reg = AlgorithmRegistry::global();
  for (int n : {3, 5, 6}) {
    const TraditionalArrangement trad(n);
    const ShiftedArrangement shift(n);
    const ArrangementPtr iter = make_iterated(n, 3);
    const struct {
      const char* spec;
      const MirrorArrangement* classic;
    } cases[] = {{"traditional", &trad}, {"shifted", &shift},
                 {"iterated:3", iter.get()}};
    for (const auto& c : cases) {
      auto arr = reg.make(c.spec, n);
      ASSERT_TRUE(arr.is_ok()) << c.spec;
      for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j) {
          EXPECT_EQ(arr.value()->mirror_of(i, j), c.classic->mirror_of(i, j))
              << c.spec << " n=" << n;
          EXPECT_EQ(arr.value()->data_of(i, j), c.classic->data_of(i, j))
              << c.spec << " n=" << n;
        }
    }
    // The iterated family keeps the table-backed family's display name.
    EXPECT_EQ(reg.make("iterated:3", n).value()->name(), iter->name());
  }
}

TEST(LayoutRegistry, RebuildReadAccessesMatchTheLayoutsStory) {
  const auto& reg = AlgorithmRegistry::global();
  const struct {
    const char* spec;
    int expected;  // max per-disk element reads rebuilding data disk 0
  } cases[] = {{"traditional", 6}, {"shifted", 1}, {"zigzag", 1},
               {"lrc:groups=2", 2}, {"pyramid:groups=2", 1}};
  for (const auto& c : cases) {
    auto arr = reg.make(c.spec, 6);
    ASSERT_TRUE(arr.is_ok()) << c.spec;
    auto* regarr = dynamic_cast<const RegistryArrangement*>(arr.value().get());
    ASSERT_NE(regarr, nullptr) << c.spec;
    EXPECT_EQ(rebuild_read_accesses(*regarr, 0), c.expected) << c.spec;
    EXPECT_EQ(rebuild_reads(*regarr, 0).size(), 6u) << c.spec;
  }
}

TEST(LayoutRegistry, LrcRebuildReadSetStaysInsideTheGroup) {
  const auto& reg = AlgorithmRegistry::global();
  auto arr = reg.make("lrc:groups=2", 6);
  ASSERT_TRUE(arr.is_ok());
  const auto* regarr =
      dynamic_cast<const RegistryArrangement*>(arr.value().get());
  ASSERT_NE(regarr, nullptr);
  ASSERT_TRUE(regarr->descriptor().rebuild_read_set != nullptr);
  // Failed data disk 1 lives in group 0 (disks 0..2): every read must
  // come from that group's mirror columns.
  for (const Pos& read : rebuild_reads(*regarr, 1)) {
    EXPECT_GE(read.disk, 0);
    EXPECT_LT(read.disk, 3);
  }
}

TEST(LayoutRegistry, PartnerOfReportsMalformedMaps) {
  // A deliberately non-bijective arrangement: every data element lands
  // on mirror cell (0, 0). partner_of must report the uncovered cells
  // instead of fabricating a data position.
  class Collapsing final : public MirrorArrangement {
   public:
    std::string name() const override { return "collapsing"; }
    int n() const override { return 3; }
    Pos mirror_of(int, int) const override { return {0, 0}; }
  };
  const Collapsing bad;
  EXPECT_FALSE(bad.is_bijection());
  EXPECT_FALSE(bad.partner_of(1, 1).has_value());
  EXPECT_FALSE(bad.partner_of(2, 0).has_value());
  // The one covered cell reports the first data element that maps there.
  const auto hit = bad.partner_of(0, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (Pos{0, 0}));
}

TEST(LayoutRegistry, MakeRejectsNonBijectiveDescriptors) {
  AlgorithmRegistry reg;
  LayoutDescriptor d = minimal_descriptor("collapse");
  d.map = [](const LayoutConfig&, Pos) { return Pos{0, 0}; };
  ASSERT_TRUE(reg.add(std::move(d)).is_ok());
  auto arr = reg.make("collapse", 3);
  ASSERT_FALSE(arr.is_ok());
  EXPECT_EQ(arr.status().code(), ErrorCode::kFailedPrecondition);
}

TEST(LayoutRegistry, CapabilityFlagsGateTheParityWrapper) {
  // All built-ins are safe under the double-failure machinery.
  const auto& reg = AlgorithmRegistry::global();
  for (const std::string& name : reg.names())
    EXPECT_TRUE(reg.find(name).value()->supports_second_failure) << name;

  // A layout that clears the flag builds as a plain mirror but the
  // parity wrapper refuses it.
  LayoutDescriptor d = minimal_descriptor("test-frail");
  d.supports_second_failure = false;
  Status added = AlgorithmRegistry::global().add(std::move(d));
  if (added.is_ok()) {  // another test in this process may have added it
    auto plain = Architecture::mirror_named(4, "test-frail");
    ASSERT_TRUE(plain.is_ok());
    EXPECT_EQ(plain.value().kind(), ArchKind::kMirrorCustom);
    auto parity = Architecture::mirror_with_parity_named(4, "test-frail");
    ASSERT_FALSE(parity.is_ok());
    EXPECT_EQ(parity.status().code(), ErrorCode::kFailedPrecondition);
  }
}

TEST(LayoutRegistry, MirrorNamedCollapsesClassicSpellings) {
  // Param-less traditional/shifted specs (and their aliases) collapse
  // to the classic architecture kinds so every downstream name, CSV
  // column and drift-gated result stays bit-identical.
  for (const char* spec : {"traditional", "mirror-traditional", "identity"}) {
    auto arch = Architecture::mirror_named(5, spec);
    ASSERT_TRUE(arch.is_ok()) << spec;
    EXPECT_EQ(arch.value().kind(), ArchKind::kMirrorTraditional) << spec;
    EXPECT_EQ(arch.value().name(), "mirror-traditional") << spec;
  }
  auto shifted = Architecture::mirror_named(5, "shifted");
  ASSERT_TRUE(shifted.is_ok());
  EXPECT_EQ(shifted.value().kind(), ArchKind::kMirrorShifted);
  EXPECT_EQ(shifted.value().name(), "mirror-shifted");

  auto zig = Architecture::mirror_named(5, "zigzag");
  ASSERT_TRUE(zig.is_ok());
  EXPECT_EQ(zig.value().kind(), ArchKind::kMirrorCustom);
  EXPECT_EQ(zig.value().name(), "mirror-zigzag");

  auto parity = Architecture::mirror_with_parity_named(6, "lrc");
  ASSERT_TRUE(parity.is_ok());
  EXPECT_EQ(parity.value().kind(), ArchKind::kMirrorParityCustom);
  EXPECT_EQ(parity.value().name(), "mirror-parity-lrc(groups=2)");
  EXPECT_EQ(parity.value().fault_tolerance(), 2);
}

}  // namespace
}  // namespace sma::layout
