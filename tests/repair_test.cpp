// Repair orchestration: the array lifecycle state machine, spare pools
// and placement, the checkpoint-driven orchestrator loop, and the
// Monte-Carlo lifetime simulator cross-checked against the closed-form
// MTTDL in the limit both model.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "obs/observer.hpp"
#include "obs/trace_sink.hpp"
#include "recon/reliability.hpp"
#include "repair/orchestrator.hpp"

namespace sma::repair {
namespace {

array::ArrayConfig cfg_for(layout::Architecture arch, int spares = 0) {
  array::ArrayConfig cfg;
  cfg.arch = arch;
  cfg.stripes = arch.total_disks();  // one full stack
  cfg.content_bytes = 64;
  cfg.logical_element_bytes = 4'000'000;
  cfg.seed = 31;
  cfg.spare_disks = spares;
  return cfg;
}

/// Some disk whose failure together with `failed` loses data.
int fatal_partner(const layout::Architecture& arch,
                  const std::vector<int>& failed) {
  for (int d = 0; d < arch.total_disks(); ++d) {
    if (std::find(failed.begin(), failed.end(), d) != failed.end()) continue;
    std::vector<int> next = failed;
    next.push_back(d);
    if (!recon::is_recoverable(arch, next)) return d;
  }
  return -1;
}

// --- lifecycle state machine ---------------------------------------------

TEST(Lifecycle, ToleranceTwoWalksTheFullCycle) {
  const auto arch = layout::Architecture::mirror_with_parity(4, true);
  Lifecycle lc(arch);
  EXPECT_EQ(lc.state(), ArrayState::kHealthy);

  ASSERT_TRUE(lc.on_failure(1.0, 0).is_ok());
  EXPECT_EQ(lc.state(), ArrayState::kDegraded);
  ASSERT_TRUE(lc.on_repair_start(1.5, 0).is_ok());
  EXPECT_EQ(lc.state(), ArrayState::kRebuilding);
  ASSERT_TRUE(lc.on_repair_complete(3.0, 0).is_ok());
  EXPECT_EQ(lc.state(), ArrayState::kHealthy);

  ASSERT_EQ(lc.history().size(), 3u);
  EXPECT_EQ(lc.history()[0].to, ArrayState::kDegraded);
  EXPECT_EQ(lc.history()[1].to, ArrayState::kRebuilding);
  EXPECT_EQ(lc.history()[2].to, ArrayState::kHealthy);
  EXPECT_EQ(lc.history()[2].t_s, 3.0);
}

TEST(Lifecycle, CriticalDoubleFailureRecoversThroughTheCycle) {
  // Find a surviving double failure with a fatal third disk — that pair
  // is "critical": one more failure loses data. (Not every pair
  // qualifies; the shifted parity mirror tolerates many triples.)
  const auto arch = layout::Architecture::mirror_with_parity(4, false);
  int a = -1;
  int b = -1;
  for (int i = 0; i < arch.total_disks() && a < 0; ++i) {
    for (int j = i + 1; j < arch.total_disks() && a < 0; ++j) {
      if (!recon::is_recoverable(arch, {i, j})) continue;
      if (fatal_partner(arch, {i, j}) >= 0) {
        a = i;
        b = j;
      }
    }
  }
  ASSERT_GE(a, 0) << "no critical pair in this architecture";

  Lifecycle lc(arch);
  ASSERT_TRUE(lc.on_failure(1.0, a).is_ok());
  ASSERT_TRUE(lc.on_failure(1.2, b).is_ok());
  EXPECT_EQ(lc.state(), ArrayState::kCritical);
  // Repairs still start and finish from critical; severity wins until
  // the fatal exposure is gone.
  ASSERT_TRUE(lc.on_repair_start(1.3, a).is_ok());
  ASSERT_TRUE(lc.on_repair_start(1.3, b).is_ok());
  EXPECT_EQ(lc.state(), ArrayState::kCritical);
  ASSERT_TRUE(lc.on_repair_complete(2.0, a).is_ok());
  EXPECT_EQ(lc.state(), ArrayState::kRebuilding);
  ASSERT_TRUE(lc.on_repair_complete(2.5, b).is_ok());
  EXPECT_EQ(lc.state(), ArrayState::kHealthy);
}

TEST(Lifecycle, PlainMirrorFirstFailureIsAlreadyCritical) {
  // The paper's point: in a plain mirror one more (partner) failure
  // loses data, so the very first failure lands in critical.
  Lifecycle lc(layout::Architecture::mirror(4, false));
  ASSERT_TRUE(lc.on_failure(1.0, 0).is_ok());
  EXPECT_EQ(lc.state(), ArrayState::kCritical);
}

TEST(Lifecycle, DataLossIsTerminalAndRejectsFurtherEvents) {
  const auto arch = layout::Architecture::mirror(4, false);
  Lifecycle lc(arch);
  ASSERT_TRUE(lc.on_failure(1.0, 0).is_ok());
  const int partner = fatal_partner(arch, {0});
  ASSERT_GE(partner, 0);
  ASSERT_TRUE(lc.on_failure(2.0, partner).is_ok());  // fatal, but valid
  EXPECT_EQ(lc.state(), ArrayState::kDataLoss);
  EXPECT_TRUE(lc.terminal());
  // Nothing happens after data loss.
  EXPECT_EQ(lc.on_failure(3.0, 1).code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(lc.on_repair_start(3.0, 0).code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(lc.on_spare_exhausted(3.0).code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(lc.state(), ArrayState::kDataLoss);
}

TEST(Lifecycle, MalformedEventSequencesReturnStatus) {
  const auto arch = layout::Architecture::mirror_with_parity(4, true);
  Lifecycle lc(arch);
  EXPECT_EQ(lc.on_failure(0.0, -1).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(lc.on_failure(0.0, arch.total_disks()).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(lc.on_repair_complete(0.0, 0).code(),
            ErrorCode::kFailedPrecondition);  // never started
  ASSERT_TRUE(lc.on_failure(1.0, 0).is_ok());
  EXPECT_EQ(lc.on_failure(1.1, 0).code(),
            ErrorCode::kFailedPrecondition);  // failed twice
  EXPECT_EQ(lc.on_repair_start(1.2, 1).code(),
            ErrorCode::kFailedPrecondition);  // repairing a live disk
  ASSERT_TRUE(lc.on_repair_start(1.3, 0).is_ok());
  EXPECT_EQ(lc.on_repair_start(1.4, 0).code(),
            ErrorCode::kFailedPrecondition);  // started twice
  EXPECT_EQ(lc.state(), ArrayState::kRebuilding);  // machine uncorrupted
}

TEST(Lifecycle, SpareExhaustionIsItsOwnState) {
  Lifecycle lc(layout::Architecture::mirror_with_parity(4, true));
  ASSERT_TRUE(lc.on_failure(1.0, 0).is_ok());
  ASSERT_TRUE(lc.on_spare_exhausted(1.1).is_ok());
  EXPECT_EQ(lc.state(), ArrayState::kSpareExhausted);
  ASSERT_TRUE(lc.on_spare_available(2.0).is_ok());
  EXPECT_EQ(lc.state(), ArrayState::kDegraded);
  // A repair start clears starvation by itself too.
  ASSERT_TRUE(lc.on_spare_exhausted(2.1).is_ok());
  ASSERT_TRUE(lc.on_repair_start(2.2, 0).is_ok());
  EXPECT_EQ(lc.state(), ArrayState::kRebuilding);
}

TEST(Lifecycle, TransitionsEmitTypedStateChangeEvents) {
  obs::TraceSink sink;
  obs::Observer ob;
  ob.trace = &sink;
  Lifecycle lc(layout::Architecture::mirror_with_parity(4, true), &ob);
  ASSERT_TRUE(lc.on_failure(1.0, 0).is_ok());
  ASSERT_TRUE(lc.on_repair_start(1.5, 0).is_ok());
  ASSERT_TRUE(lc.on_repair_complete(3.0, 0).is_ok());

  std::vector<obs::TraceEvent> changes;
  for (const auto& e : sink.events())
    if (e.kind == obs::EventKind::kStateChange) changes.push_back(e);
  ASSERT_EQ(changes.size(), lc.history().size());
  for (std::size_t i = 0; i < changes.size(); ++i) {
    EXPECT_EQ(changes[i].state_from,
              static_cast<int>(lc.history()[i].from));
    EXPECT_EQ(changes[i].state_to, static_cast<int>(lc.history()[i].to));
    EXPECT_EQ(changes[i].t_s, lc.history()[i].t_s);
  }
  EXPECT_EQ(changes.back().state_to, static_cast<int>(ArrayState::kHealthy));
}

TEST(Lifecycle, StateNamesAreStable) {
  EXPECT_STREQ(to_string(ArrayState::kHealthy), "healthy");
  EXPECT_STREQ(to_string(ArrayState::kDegraded), "degraded");
  EXPECT_STREQ(to_string(ArrayState::kRebuilding), "rebuilding");
  EXPECT_STREQ(to_string(ArrayState::kCritical), "critical");
  EXPECT_STREQ(to_string(ArrayState::kSpareExhausted), "spare_exhausted");
  EXPECT_STREQ(to_string(ArrayState::kDataLoss), "data_loss");
}

// --- spare pool and placement --------------------------------------------

TEST(SparePool, DedicatedHandsOutHotSpareIdsUntilEmpty) {
  SparePool pool({SparePolicy::kDedicated, 2}, /*first_spare_phys=*/10);
  EXPECT_EQ(pool.available(), 2);
  auto a = pool.allocate();
  ASSERT_TRUE(a.is_ok());
  EXPECT_EQ(a.value(), 10);
  auto b = pool.allocate();
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(b.value(), 11);
  EXPECT_TRUE(pool.exhausted());
  EXPECT_EQ(pool.allocate().status().code(),
            ErrorCode::kFailedPrecondition);
  pool.replenish();
  EXPECT_FALSE(pool.exhausted());
  ASSERT_TRUE(pool.allocate().is_ok());
  EXPECT_EQ(pool.consumed_total(), 3);  // history never decrements
}

TEST(SparePool, NonePolicyHasNothingToAllocate) {
  SparePool pool;  // default: kNone
  EXPECT_FALSE(pool.exhausted());  // inert, not starved
  EXPECT_EQ(pool.allocate().status().code(),
            ErrorCode::kFailedPrecondition);
}

TEST(SparePool, DistributedAllocationsLiveOnTheSurvivors) {
  SparePool pool({SparePolicy::kDistributed, 1}, /*first_spare_phys=*/8);
  auto unit = pool.allocate();
  ASSERT_TRUE(unit.is_ok());
  EXPECT_EQ(unit.value(), -1);  // no single disk: capacity on survivors
  EXPECT_TRUE(pool.exhausted());
}

TEST(SparePlacement, DedicatedIsConstantDistributedSpreads) {
  SparePlacement dedicated;
  dedicated.policy = SparePolicy::kDedicated;
  dedicated.spare_of[0] = 8;
  for (int s = 0; s < 6; ++s) EXPECT_EQ(dedicated.target_for(0, s), 8);
  EXPECT_EQ(dedicated.target_for(1, 0), -1);  // uncovered disk

  SparePlacement distributed;
  distributed.policy = SparePolicy::kDistributed;
  distributed.survivors = {1, 2, 3};
  std::set<int> targets;
  for (int s = 0; s < 6; ++s) {
    const int t = distributed.target_for(0, s);
    EXPECT_NE(t, 0);  // never back onto the failed disk
    targets.insert(t);
  }
  EXPECT_EQ(targets, (std::set<int>{1, 2, 3}));  // every survivor absorbs

  SparePlacement none;
  EXPECT_FALSE(none.active());
  EXPECT_EQ(none.target_for(0, 0), -1);
}

// --- orchestrator ---------------------------------------------------------

TEST(Orchestrator, DedicatedSpareEndToEnd) {
  const auto arch = layout::Architecture::mirror_with_parity(5, true);
  array::DiskArray arr(cfg_for(arch, /*spares=*/1));
  arr.initialize();
  arr.fail_physical(0);

  RepairConfig rc;
  rc.spare = {SparePolicy::kDedicated, 1};
  RepairOrchestrator orch(arr, rc);
  ASSERT_TRUE(orch.admit_failures(0.0).is_ok());
  EXPECT_EQ(orch.lifecycle().state(), ArrayState::kDegraded);
  EXPECT_FALSE(orch.done());

  auto report = orch.run();
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().final_state, ArrayState::kHealthy);
  EXPECT_EQ(report.value().rounds, 1);
  EXPECT_EQ(report.value().spares_used, 1);
  EXPECT_EQ(report.value().policy, SparePolicy::kDedicated);
  EXPECT_GT(report.value().elements_read, 0u);
  EXPECT_GT(report.value().elements_written, 0u);
  EXPECT_GT(report.value().total_makespan_s, 0.0);
  EXPECT_TRUE(orch.done());
  EXPECT_TRUE(arr.verify_all().is_ok());
  EXPECT_TRUE(arr.failed_physical().empty());

  // degraded -> rebuilding -> healthy, in order.
  std::vector<ArrayState> states;
  for (const auto& t : report.value().transitions) states.push_back(t.to);
  EXPECT_EQ(states, (std::vector<ArrayState>{ArrayState::kDegraded,
                                             ArrayState::kRebuilding,
                                             ArrayState::kHealthy}));
}

TEST(Orchestrator, DistributedSparingBeatsTheDedicatedBottleneck) {
  // The hot spare serializes every replacement write; distributed
  // sparing spreads them across the survivors, the same way the shifted
  // arrangement spreads the rebuild reads.
  const auto arch = layout::Architecture::mirror_with_parity(5, true);
  auto run = [&](SparePolicy policy) {
    array::DiskArray arr(cfg_for(arch, policy == SparePolicy::kDedicated));
    arr.initialize();
    arr.fail_physical(0);
    RepairConfig rc;
    rc.spare = {policy, 1};
    RepairOrchestrator orch(arr, rc);
    auto report = orch.run();
    EXPECT_TRUE(report.is_ok()) << report.status().to_string();
    EXPECT_EQ(report.value().final_state, ArrayState::kHealthy);
    EXPECT_TRUE(arr.verify_all().is_ok());
    return report.value();
  };
  const auto dedicated = run(SparePolicy::kDedicated);
  const auto distributed = run(SparePolicy::kDistributed);
  // Same rebuild reads either way; the write phase is where they part.
  EXPECT_EQ(dedicated.elements_written, distributed.elements_written);
  EXPECT_LT(distributed.total_makespan_s, dedicated.total_makespan_s);
}

TEST(Orchestrator, BoundedRoundsResumeFromTheCheckpoint) {
  // Tolerance-2 architecture so a single failure sits in "rebuilding",
  // not "critical" (9 disks -> 9 stripes, three rounds of three).
  const auto arch = layout::Architecture::mirror_with_parity(4, true);
  array::DiskArray arr(cfg_for(arch));
  arr.initialize();
  arr.fail_physical(1);

  RepairConfig rc;
  rc.checkpointing = true;
  rc.stripes_per_round = 3;
  RepairOrchestrator orch(arr, rc);
  auto first = orch.run(0.0, /*max_rounds=*/1);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  EXPECT_EQ(first.value().rounds, 1);
  EXPECT_EQ(first.value().final_state, ArrayState::kRebuilding);
  EXPECT_EQ(orch.checkpoint().stripes_done, 3);
  EXPECT_TRUE(orch.checkpoint().valid());
  EXPECT_FALSE(orch.done());
  EXPECT_FALSE(arr.failed_physical().empty());

  auto rest = orch.run();
  ASSERT_TRUE(rest.is_ok()) << rest.status().to_string();
  EXPECT_EQ(rest.value().rounds, 3);  // 3 + 3 + 3 stripes, cumulative
  EXPECT_EQ(rest.value().final_state, ArrayState::kHealthy);
  EXPECT_FALSE(orch.checkpoint().valid());  // reset on completion
  EXPECT_TRUE(orch.done());
  EXPECT_TRUE(arr.verify_all().is_ok());
}

TEST(Orchestrator, SpareExhaustionIsReportedAndRebuildsInPlace) {
  const auto arch = layout::Architecture::mirror_with_parity(4, true);
  array::DiskArray arr(cfg_for(arch, /*spares=*/1));
  arr.initialize();

  RepairConfig rc;
  rc.spare = {SparePolicy::kDedicated, 1};
  RepairOrchestrator orch(arr, rc);

  arr.fail_physical(0);  // consumes the only spare
  auto first = orch.run(0.0);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  EXPECT_EQ(first.value().final_state, ArrayState::kHealthy);
  EXPECT_TRUE(orch.pool().exhausted());

  arr.fail_physical(2);  // pool is empty now
  auto second = orch.run(10.0);
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();
  EXPECT_EQ(second.value().final_state, ArrayState::kHealthy);
  EXPECT_EQ(second.value().spares_used, 1);  // nothing left to consume
  EXPECT_TRUE(arr.verify_all().is_ok());
  bool visited_exhausted = false;
  for (const auto& t : second.value().transitions)
    visited_exhausted |= t.to == ArrayState::kSpareExhausted;
  EXPECT_TRUE(visited_exhausted);
}

TEST(Orchestrator, RejectsMisconfiguration) {
  const auto arch = layout::Architecture::mirror(3, true);
  array::DiskArray arr(cfg_for(arch));
  arr.initialize();
  arr.fail_physical(0);
  {
    RepairConfig rc;
    rc.stripes_per_round = 2;  // bounded budget without checkpointing
    RepairOrchestrator orch(arr, rc);
    EXPECT_EQ(orch.run().status().code(), ErrorCode::kFailedPrecondition);
  }
  {
    RepairConfig rc;
    rc.stripes_per_round = 0;
    RepairOrchestrator orch(arr, rc);
    EXPECT_EQ(orch.run().status().code(), ErrorCode::kInvalidArgument);
  }
  {
    RepairConfig rc;
    rc.spare = {SparePolicy::kDedicated, 1};  // no hot spare provisioned
    RepairOrchestrator orch(arr, rc);
    EXPECT_EQ(orch.run().status().code(), ErrorCode::kFailedPrecondition);
  }
}

// --- Monte-Carlo lifetime simulation --------------------------------------

// Short-lifetime parameters keep the trials cheap: MTTF/MTTR = 400, so
// a traditional mirror trial sees a few hundred failures before the
// fatal partner lands inside a repair window.
recon::MonteCarloParams mc_params() {
  recon::MonteCarloParams p;
  p.disk_mttf_hours = 400.0;
  p.mttr_hours = 1.0;
  p.trials = 1200;
  p.seed = 9;
  return p;
}

TEST(MonteCarlo, MatchesClosedFormInTheIndependentLimit) {
  // kNone sparing = always-available spare + independent exponential
  // failures: exactly the closed forms' world, so the two estimators
  // must agree within statistical error (stderr/mean ~ 3% here).
  const auto params = mc_params();
  recon::MttdlParams cp;
  cp.disk_mttf_hours = params.disk_mttf_hours;
  cp.mttr_hours = params.mttr_hours;
  for (const bool shifted : {false, true}) {
    const auto arch = layout::Architecture::mirror(4, shifted);
    const auto closed = recon::estimate_mttdl(arch, cp);
    auto mc = recon::simulate_mttdl(arch, params);
    ASSERT_TRUE(mc.is_ok()) << mc.status().to_string();
    EXPECT_NEAR(mc.value().mttdl_hours, closed.mttdl_hours,
                0.15 * closed.mttdl_hours)
        << (shifted ? "shifted" : "traditional")
        << " stderr=" << mc.value().stderr_hours;
    EXPECT_GT(mc.value().stderr_hours, 0.0);
    EXPECT_GT(mc.value().mean_failures_to_loss, 1.0);
    EXPECT_GT(mc.value().transitions, 0u);
    EXPECT_EQ(mc.value().spare_waits, 0u);
  }
}

TEST(MonteCarlo, ShiftedTradesFatalCandidatesForWindowLength) {
  // With MTTR held fixed the shifted arrangement has n fatal partners
  // where the traditional mirror has one — the reliability cost the
  // paper's availability gain pays for (its repayment is the n-times
  // shorter window, which this comparison deliberately freezes).
  const auto params = mc_params();
  auto trad =
      recon::simulate_mttdl(layout::Architecture::mirror(4, false), params);
  auto shifted =
      recon::simulate_mttdl(layout::Architecture::mirror(4, true), params);
  ASSERT_TRUE(trad.is_ok());
  ASSERT_TRUE(shifted.is_ok());
  EXPECT_LT(shifted.value().mttdl_hours, trad.value().mttdl_hours);
}

TEST(MonteCarlo, CorrelatedEnclosureFailuresShortenTheLifetime) {
  auto params = mc_params();
  params.trials = 600;
  const auto arch = layout::Architecture::mirror(4, false);
  auto independent = recon::simulate_mttdl(arch, params);
  ASSERT_TRUE(independent.is_ok());
  // One shared enclosure: any failure multiplies every survivor's
  // hazard — the correlation the closed forms cannot express.
  params.enclosure_of.assign(static_cast<std::size_t>(arch.total_disks()), 0);
  params.enclosure_hazard_factor = 20.0;
  auto correlated = recon::simulate_mttdl(arch, params);
  ASSERT_TRUE(correlated.is_ok());
  EXPECT_LT(correlated.value().mttdl_hours,
            0.5 * independent.value().mttdl_hours);
}

TEST(MonteCarlo, SpareDepletionStallsRepairsAndCostsLifetime) {
  auto params = mc_params();
  params.trials = 400;
  const auto arch = layout::Architecture::mirror(4, false);
  auto unlimited = recon::simulate_mttdl(arch, params);
  ASSERT_TRUE(unlimited.is_ok());
  // One spare, never replaced: after it is consumed every further
  // failure waits forever, and failures accumulate until a fatal set.
  params.spare = {SparePolicy::kDedicated, 1};
  params.spare_replenish_hours = 0.0;
  auto depleted = recon::simulate_mttdl(arch, params);
  ASSERT_TRUE(depleted.is_ok());
  EXPECT_GT(depleted.value().spare_waits, 0u);
  EXPECT_LT(depleted.value().mttdl_hours,
            0.5 * unlimited.value().mttdl_hours);
  // Replenishment restores most of it.
  params.spare_replenish_hours = 0.5;
  auto replenished = recon::simulate_mttdl(arch, params);
  ASSERT_TRUE(replenished.is_ok());
  EXPECT_GT(replenished.value().mttdl_hours,
            depleted.value().mttdl_hours);
}

TEST(MonteCarlo, RejectsMeaninglessParameters) {
  const auto arch = layout::Architecture::mirror(3, true);
  auto params = mc_params();
  params.trials = 0;
  EXPECT_EQ(recon::simulate_mttdl(arch, params).status().code(),
            ErrorCode::kInvalidArgument);
  params = mc_params();
  params.disk_mttf_hours = -1.0;
  EXPECT_EQ(recon::simulate_mttdl(arch, params).status().code(),
            ErrorCode::kInvalidArgument);
  params = mc_params();
  params.enclosure_hazard_factor = 0.5;
  EXPECT_EQ(recon::simulate_mttdl(arch, params).status().code(),
            ErrorCode::kInvalidArgument);
  params = mc_params();
  params.enclosure_of = {0, 1};  // wrong length
  EXPECT_EQ(recon::simulate_mttdl(arch, params).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(MonteCarlo, DeterministicUnderFixedSeed) {
  auto params = mc_params();
  params.trials = 50;
  const auto arch = layout::Architecture::mirror(3, false);
  auto a = recon::simulate_mttdl(arch, params);
  auto b = recon::simulate_mttdl(arch, params);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value().mttdl_hours, b.value().mttdl_hours);
  EXPECT_EQ(a.value().mean_failures_to_loss,
            b.value().mean_failures_to_loss);
  EXPECT_EQ(a.value().transitions, b.value().transitions);
}

}  // namespace
}  // namespace sma::repair
