#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sma::sim {
namespace {

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_DOUBLE_EQ(sim.run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(Simulation, SameTimeEventsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, ClockAdvancesDuringHandlers) {
  Simulation sim;
  double seen = -1;
  sim.schedule_at(2.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
}

TEST(Simulation, HandlersCanScheduleMoreEvents) {
  Simulation sim;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 10) sim.schedule_in(1.0, tick);
  };
  sim.schedule_at(0.0, tick);
  EXPECT_DOUBLE_EQ(sim.run(), 9.0);
  EXPECT_EQ(ticks, 10);
}

TEST(Simulation, ScheduleInIsRelative) {
  Simulation sim;
  double when = -1;
  sim.schedule_at(5.0, [&] {
    sim.schedule_in(2.0, [&] { when = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(when, 7.0);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(5.0, [&] { ++fired; });
  EXPECT_DOUBLE_EQ(sim.run_until(3.0), 3.0);
  EXPECT_EQ(fired, 1);
  // Remaining event still fires on full run.
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, RunOnEmptyQueueReturnsCurrentTime) {
  Simulation sim;
  EXPECT_DOUBLE_EQ(sim.run(), 0.0);
}

}  // namespace
}  // namespace sma::sim
