#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "obs/observer.hpp"

namespace sma::sim {
namespace {

constexpr std::array<QueueBackend, 3> kAllBackends = {
    QueueBackend::kCalendar, QueueBackend::kHeap, QueueBackend::kLegacy};

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_DOUBLE_EQ(sim.run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(Simulation, SameTimeEventsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, ClockAdvancesDuringHandlers) {
  Simulation sim;
  double seen = -1;
  sim.schedule_at(2.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
}

TEST(Simulation, HandlersCanScheduleMoreEvents) {
  Simulation sim;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 10) sim.schedule_in(1.0, tick);
  };
  sim.schedule_at(0.0, tick);
  EXPECT_DOUBLE_EQ(sim.run(), 9.0);
  EXPECT_EQ(ticks, 10);
}

TEST(Simulation, ScheduleInIsRelative) {
  Simulation sim;
  double when = -1;
  sim.schedule_at(5.0, [&] {
    sim.schedule_in(2.0, [&] { when = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(when, 7.0);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(5.0, [&] { ++fired; });
  EXPECT_DOUBLE_EQ(sim.run_until(3.0), 3.0);
  EXPECT_EQ(fired, 1);
  // Remaining event still fires on full run.
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, RunOnEmptyQueueReturnsCurrentTime) {
  Simulation sim;
  EXPECT_DOUBLE_EQ(sim.run(), 0.0);
}

TEST(Simulation, AllBackendsProduceIdenticalRuns) {
  // Same workload on every backend: self-rescheduling ticker plus
  // same-instant ties. Order, clocks, and counters must match exactly.
  auto drive = [](QueueBackend backend) {
    Simulation sim(backend);
    std::vector<std::pair<int, double>> trace;
    std::function<void()> tick = [&] {
      trace.emplace_back(-1, sim.now());
      if (trace.size() < 20) sim.schedule_in(0.75, tick);
    };
    sim.schedule_at(0.0, tick);
    for (int i = 0; i < 4; ++i)
      sim.schedule_at(3.0, [&trace, i, &sim] { trace.emplace_back(i, sim.now()); });
    const double end = sim.run();
    trace.emplace_back(-2, end);
    return trace;
  };
  const auto reference = drive(QueueBackend::kCalendar);
  for (const QueueBackend backend : {QueueBackend::kHeap, QueueBackend::kLegacy})
    EXPECT_EQ(drive(backend), reference);
}

TEST(Simulation, PendingEventsTracksEveryBackend) {
  for (const QueueBackend backend : kAllBackends) {
    Simulation sim(backend);
    for (int i = 0; i < 3; ++i) sim.schedule_at(1.0 + i, [] {});
    EXPECT_EQ(sim.pending_events(), 3u);
    sim.run_until(1.5);
    EXPECT_EQ(sim.pending_events(), 2u);
    sim.run();
    EXPECT_EQ(sim.pending_events(), 0u);
  }
}

// Regression for the end-of-run observer contract: when run_until stops
// at the deadline with events still pending, the observer's sampling
// clock is advanced to the deadline itself — metrics keep their cadence
// through quiet tails instead of freezing at the last event.
TEST(Simulation, RunUntilAdvancesObserverToDeadline) {
  for (const QueueBackend backend : kAllBackends) {
    obs::MetricsRegistry reg;
    reg.set_sample_interval(1.0);
    std::vector<double> samples;
    reg.add_probe("t", [&samples](double now, double) {
      samples.push_back(now);
      return now;
    });
    obs::Observer ob;
    ob.metrics = &reg;
    Simulation sim(backend);
    sim.set_observer(&ob);
    sim.schedule_at(2.5, [] {});
    sim.schedule_at(7.5, [] {});
    EXPECT_DOUBLE_EQ(sim.run_until(5.0), 5.0);
    // advance_time(2.5) before the event samples t = 0, 1, 2; the
    // deadline epilogue samples t = 3, 4, 5.
    EXPECT_EQ(samples, (std::vector<double>{0, 1, 2, 3, 4, 5}));
    reg.clear_probes();
  }
}

TEST(Simulation, RunUntilDrainedEarlyDoesNotAdvanceToDeadline) {
  // The complementary case: the queue drains before the deadline, so
  // run_until returns the drain time and must NOT sample past it.
  for (const QueueBackend backend : kAllBackends) {
    obs::MetricsRegistry reg;
    reg.set_sample_interval(1.0);
    std::vector<double> samples;
    reg.add_probe("t", [&samples](double now, double) {
      samples.push_back(now);
      return now;
    });
    obs::Observer ob;
    ob.metrics = &reg;
    Simulation sim(backend);
    sim.set_observer(&ob);
    sim.schedule_at(2.5, [] {});
    EXPECT_DOUBLE_EQ(sim.run_until(5.0), 2.5);
    EXPECT_EQ(samples, (std::vector<double>{0, 1, 2}));
    reg.clear_probes();
  }
}

}  // namespace
}  // namespace sma::sim
