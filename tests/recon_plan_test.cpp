#include "recon/plan.hpp"

#include <gtest/gtest.h>

#include "recon/failure.hpp"

namespace sma::recon {
namespace {

class PlanN : public ::testing::TestWithParam<int> {};

TEST_P(PlanN, ShiftedMirrorSingleFailureIsOneReadAccess) {
  // Paper Section IV-B: replicas of any single disk spread across all
  // disks of the other array -> one parallel read access.
  const int n = GetParam();
  const auto arch = layout::Architecture::mirror(n, true);
  for (const auto& failed : enumerate_single_failures(arch)) {
    auto plan = plan_reconstruction(arch, failed);
    ASSERT_TRUE(plan.is_ok());
    EXPECT_EQ(plan.value().read_accesses(arch), 1) << "disk " << failed[0];
    EXPECT_EQ(plan.value().availability_reads.size(),
              static_cast<std::size_t>(n));
  }
}

TEST_P(PlanN, TraditionalMirrorSingleFailureIsNReadAccesses) {
  const int n = GetParam();
  const auto arch = layout::Architecture::mirror(n, false);
  for (const auto& failed : enumerate_single_failures(arch)) {
    auto plan = plan_reconstruction(arch, failed);
    ASSERT_TRUE(plan.is_ok());
    EXPECT_EQ(plan.value().read_accesses(arch), n);
  }
}

TEST_P(PlanN, ShiftedMirrorParityMatchesTable1PerClass) {
  // Table I: F1 -> 1, F2 -> 2, F3 -> 2 read accesses.
  const int n = GetParam();
  const auto arch = layout::Architecture::mirror_with_parity(n, true);
  for (const auto& failed : enumerate_double_failures(arch)) {
    auto plan = plan_reconstruction(arch, failed);
    ASSERT_TRUE(plan.is_ok());
    const int accesses = plan.value().read_accesses(arch);
    switch (classify(arch, failed)) {
      case FailureClass::kF1:
        EXPECT_EQ(accesses, 1) << failed[0] << "," << failed[1];
        break;
      case FailureClass::kF2:
      case FailureClass::kF3:
        EXPECT_EQ(accesses, 2) << failed[0] << "," << failed[1];
        break;
      default:
        FAIL();
    }
  }
}

TEST_P(PlanN, TraditionalMirrorParityAlwaysNReadAccesses) {
  const int n = GetParam();
  const auto arch = layout::Architecture::mirror_with_parity(n, false);
  for (const auto& failed : enumerate_double_failures(arch)) {
    auto plan = plan_reconstruction(arch, failed);
    ASSERT_TRUE(plan.is_ok());
    EXPECT_EQ(plan.value().read_accesses(arch), n)
        << failed[0] << "," << failed[1];
  }
}

INSTANTIATE_TEST_SUITE_P(N, PlanN, ::testing::Values(2, 3, 4, 5, 6, 7));

TEST(Plan, ParityOnlyFailureNeedsNoAvailabilityReads) {
  const auto arch = layout::Architecture::mirror_with_parity(4, true);
  auto plan = plan_reconstruction(arch, {arch.parity_disk()});
  ASSERT_TRUE(plan.is_ok());
  EXPECT_TRUE(plan.value().availability_reads.empty());
  // Rebuilding the parity itself reads the full data array.
  EXPECT_EQ(plan.value().parity_rebuild_reads.size(),
            static_cast<std::size_t>(4 * 4));
  EXPECT_EQ(plan.value().total_read_accesses(arch), 4);
}

TEST(Plan, F1ParityRebuildReadsExcludeAvailabilityReads) {
  // Shifted, failed = {data 0, parity}: availability reads the n
  // replicas; parity rebuild reads everything else of the data array.
  const int n = 4;
  const auto arch = layout::Architecture::mirror_with_parity(n, true);
  auto plan = plan_reconstruction(arch, {0, arch.parity_disk()});
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan.value().read_accesses(arch), 1);
  // Intact data disks: (n-1) columns x n rows, none overlapping the
  // mirror-side availability reads.
  EXPECT_EQ(plan.value().parity_rebuild_reads.size(),
            static_cast<std::size_t>((n - 1) * n));
  for (const auto& read : plan.value().parity_rebuild_reads)
    EXPECT_EQ(arch.role_of(read.logical_disk), layout::DiskRole::kData);
}

TEST(Plan, F3ReadsExactlyThePaperSets) {
  // n=3 shifted with parity, failed = {data x=0, mirror y=1 (global 4)}.
  // Overlap element is a(0, <y-x>=1) = b(1, 0). Expect:
  //  - replicas of data 0's other elements from mirror disks != 1
  //  - sources of mirror 1's other elements from data disks != 0
  //  - row 1 of the data array (disks 1,2) plus parity element 1.
  const auto arch = layout::Architecture::mirror_with_parity(3, true);
  auto plan = plan_reconstruction(arch, {0, 4});
  ASSERT_TRUE(plan.is_ok());
  const auto& reads = plan.value().availability_reads;
  auto has = [&](int disk, int row) {
    return std::find(reads.begin(), reads.end(), ElementRead{disk, row}) !=
           reads.end();
  };
  // Replicas of a(0,0) at b(0,0) and a(0,2) at b(2,0): mirror globals 3, 5.
  EXPECT_TRUE(has(3, 0));
  EXPECT_TRUE(has(5, 0));
  // Sources of mirror 1: b(1,j) = a(j, <1-j>): j=1 -> a(1,0); j=2 -> a(2,2).
  EXPECT_TRUE(has(1, 0));
  EXPECT_TRUE(has(2, 2));
  // Parity path for a(0,1): a(1,1), a(2,1), c_1.
  EXPECT_TRUE(has(1, 1));
  EXPECT_TRUE(has(2, 1));
  EXPECT_TRUE(has(arch.parity_disk(), 1));
  EXPECT_EQ(reads.size(), 7u);
  EXPECT_EQ(plan.value().read_accesses(arch), 2);
}

TEST(Plan, MirrorPairLossWithoutParityIsUnrecoverable) {
  // Mirror (no parity): losing a disk and (in the traditional layout)
  // its exact partner exceeds tolerance 1 -> planner refuses by size.
  const auto arch = layout::Architecture::mirror(3, false);
  auto plan = plan_reconstruction(arch, {0, 3});
  EXPECT_FALSE(plan.is_ok());
  EXPECT_EQ(plan.status().code(), ErrorCode::kUnrecoverable);
}

TEST(Plan, RejectsMalformedInput) {
  const auto arch = layout::Architecture::mirror(3, true);
  EXPECT_EQ(plan_reconstruction(arch, {-1}).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(plan_reconstruction(arch, {9}).status().code(),
            ErrorCode::kInvalidArgument);
  const auto archp = layout::Architecture::mirror_with_parity(3, true);
  EXPECT_EQ(plan_reconstruction(archp, {2, 2}).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(Plan, EmptyFailureSetYieldsEmptyPlan) {
  const auto arch = layout::Architecture::mirror(3, true);
  auto plan = plan_reconstruction(arch, {});
  ASSERT_TRUE(plan.is_ok());
  EXPECT_TRUE(plan.value().availability_reads.empty());
  EXPECT_EQ(plan.value().read_accesses(arch), 0);
}

TEST(Plan, Raid5SingleFailureReadsAllIntactColumns) {
  const auto arch = layout::Architecture::raid5(4);
  auto plan = plan_reconstruction(arch, {2});
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan.value().availability_reads.size(),
            static_cast<std::size_t>(4 * 4));  // 4 intact cols x 4 rows
  EXPECT_EQ(plan.value().read_accesses(arch), 4);
}

TEST(Plan, Raid6DoubleFailureReadsAllIntactColumns) {
  const auto arch = layout::Architecture::raid6(5);  // rows = 6
  auto plan = plan_reconstruction(arch, {0, 3});
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan.value().read_accesses(arch), 6);
}

TEST(Plan, Raid6ParityOnlyLossNeedsNoAvailabilityReads) {
  const auto arch = layout::Architecture::raid6(5);
  auto plan = plan_reconstruction(arch, {5, 6});
  ASSERT_TRUE(plan.is_ok());
  EXPECT_TRUE(plan.value().availability_reads.empty());
  EXPECT_GT(plan.value().parity_rebuild_reads.size(), 0u);
}

TEST(Plan, ReadsNeverTargetFailedDisks) {
  // Safety invariant across every architecture and tolerated failure:
  // no read (availability or parity rebuild) addresses a failed disk.
  const layout::Architecture archs[] = {
      layout::Architecture::mirror(4, false),
      layout::Architecture::mirror(4, true),
      layout::Architecture::mirror_with_parity(4, false),
      layout::Architecture::mirror_with_parity(4, true),
      layout::Architecture::raid5(4),
      layout::Architecture::raid6(4),
  };
  for (const auto& arch : archs) {
    std::vector<std::vector<int>> scenarios =
        enumerate_single_failures(arch);
    if (arch.fault_tolerance() >= 2)
      for (auto& d : enumerate_double_failures(arch))
        scenarios.push_back(d);
    for (const auto& failed : scenarios) {
      auto plan = plan_reconstruction(arch, failed);
      ASSERT_TRUE(plan.is_ok()) << arch.name();
      auto check = [&](const std::vector<ElementRead>& reads) {
        for (const auto& read : reads) {
          EXPECT_EQ(std::count(failed.begin(), failed.end(),
                               read.logical_disk),
                    0)
              << arch.name() << " reads failed disk " << read.logical_disk;
          EXPECT_GE(read.row, 0);
          EXPECT_LT(read.row, arch.rows());
        }
      };
      check(plan.value().availability_reads);
      check(plan.value().parity_rebuild_reads);
    }
  }
}

TEST(Plan, ReadsAreDeduplicated) {
  // No (disk, row) appears twice within a plan's availability reads.
  for (const bool shifted : {false, true}) {
    const auto arch = layout::Architecture::mirror_with_parity(5, shifted);
    for (const auto& failed : enumerate_double_failures(arch)) {
      auto plan = plan_reconstruction(arch, failed);
      ASSERT_TRUE(plan.is_ok());
      auto reads = plan.value().availability_reads;
      std::sort(reads.begin(), reads.end());
      EXPECT_TRUE(std::adjacent_find(reads.begin(), reads.end()) ==
                  reads.end())
          << "duplicate read, failed " << failed[0] << "," << failed[1];
    }
  }
}

TEST(Plan, ShiftedLoadIsBalanced) {
  // The defining claim: under the shifted arrangement no disk serves
  // more than 2 reads for any tolerated failure (1 without parity).
  for (int n : {3, 5, 7}) {
    const auto arch = layout::Architecture::mirror_with_parity(n, true);
    for (const auto& failed : enumerate_double_failures(arch)) {
      auto plan = plan_reconstruction(arch, failed);
      ASSERT_TRUE(plan.is_ok());
      EXPECT_LE(plan.value().read_accesses(arch), 2);
    }
  }
}

}  // namespace
}  // namespace sma::recon
