#include "ec/xcode.hpp"

#include <gtest/gtest.h>

#include "ec/update_penalty.hpp"
#include "gf/region.hpp"

namespace sma::ec {
namespace {

class XCodeParam : public ::testing::TestWithParam<int> {};

TEST_P(XCodeParam, SelfTestAllSingleAndDoubleColumnErasures) {
  const int p = GetParam();
  XCodec codec(p);
  EXPECT_EQ(codec.data_columns(), p);
  EXPECT_EQ(codec.parity_columns(), 0);
  EXPECT_EQ(codec.rows(), p);
  EXPECT_EQ(codec.data_rows(), p - 2);
  EXPECT_EQ(codec.fault_tolerance(), 2);
  EXPECT_TRUE(codec.self_test(0xC0DE + static_cast<unsigned>(p)).is_ok())
      << codec.name();
}

INSTANTIATE_TEST_SUITE_P(Primes, XCodeParam,
                         ::testing::Values(3, 5, 7, 11, 13));

TEST(XCode, ParityRowsMatchDiagonalDefinition) {
  const int p = 5;
  XCodec codec(p);
  ColumnSet cs = codec.make_stripe(16);
  cs.fill_pattern(31);
  ASSERT_TRUE(codec.encode(cs).is_ok());
  for (int i = 0; i < p; ++i) {
    std::vector<std::uint8_t> up(16, 0);
    std::vector<std::uint8_t> down(16, 0);
    for (int k = 0; k <= p - 3; ++k) {
      gf::region_xor(cs.element((i + k + 2) % p, k), up);
      gf::region_xor(cs.element(((i - k - 2) % p + p) % p, k), down);
    }
    auto pu = cs.element(i, p - 2);
    auto pd = cs.element(i, p - 1);
    EXPECT_TRUE(std::equal(pu.begin(), pu.end(), up.begin())) << i;
    EXPECT_TRUE(std::equal(pd.begin(), pd.end(), down.begin())) << i;
  }
}

TEST(XCode, UpdateOptimal) {
  // X-code's defining feature: every data element sits on exactly one
  // slope-1 and one slope-(-1) diagonal -> exactly 2 parity updates,
  // the optimum for fault tolerance 2.
  for (int p : {5, 7, 11}) {
    XCodec codec(p);
    auto penalty = measure_update_penalty(codec);
    ASSERT_TRUE(penalty.is_ok()) << p;
    EXPECT_EQ(penalty.value().min, 2) << p;
    EXPECT_EQ(penalty.value().max, 2) << p;
    EXPECT_DOUBLE_EQ(penalty.value().average, 2.0) << p;
  }
}

TEST(XCode, RejectsTripleErasure) {
  XCodec codec(5);
  ColumnSet cs = codec.make_stripe(8);
  EXPECT_EQ(codec.decode(cs, {0, 1, 2}).code(), ErrorCode::kUnrecoverable);
}

TEST(XCode, DoubleErasureRestoresExactBytes) {
  const int p = 7;
  XCodec codec(p);
  ColumnSet ref = codec.make_stripe(64);
  ref.fill_pattern(99);
  ASSERT_TRUE(codec.encode(ref).is_ok());
  for (int a = 0; a < p; ++a) {
    for (int b = a + 1; b < p; ++b) {
      ColumnSet damaged = ref;
      damaged.zero_column(a);
      damaged.zero_column(b);
      ASSERT_TRUE(codec.decode(damaged, {a, b}).is_ok()) << a << "," << b;
      for (int c = 0; c < p; ++c)
        EXPECT_TRUE(damaged.column_equals(c, ref, c)) << a << "," << b;
    }
  }
}

TEST(XCode, StorageEfficiencyIsPMinus2OverP) {
  // Vertical parity: p-2 of p rows are data on every disk.
  XCodec codec(7);
  EXPECT_DOUBLE_EQ(
      static_cast<double>(codec.data_rows()) / codec.rows(), 5.0 / 7.0);
}

}  // namespace
}  // namespace sma::ec
