// Fault-injection subsystem: error-aware reconstruction with redundancy
// fallback, bounded retry in the batch executor, and scrub arbitration
// of unreadable sectors.
#include <gtest/gtest.h>

#include <vector>

#include "array/disk_array.hpp"
#include "recon/executor.hpp"
#include "recon/scrub.hpp"

namespace sma::recon {
namespace {

array::ArrayConfig base_cfg(layout::Architecture arch, int stacks = 1) {
  array::ArrayConfig cfg;
  cfg.arch = arch;
  cfg.stripes = stacks * arch.total_disks();
  cfg.rotate = false;  // logical == physical: targeted fault placement
  cfg.content_bytes = 64;
  cfg.logical_element_bytes = 4'000'000;
  cfg.seed = 11;
  return cfg;
}

disk::FaultProfile all_latent(std::uint64_t seed = 1) {
  disk::FaultProfile p;
  p.latent_error_rate = 1.0;  // every slot unreadable
  p.seed = seed;
  return p;
}

TEST(ReconFaults, InertProfileReportsNoFaultActivity) {
  array::DiskArray arr(base_cfg(layout::Architecture::mirror_with_parity(3, true)));
  EXPECT_FALSE(arr.faults_active());
  arr.initialize();
  arr.fail_physical(0);
  auto report = reconstruct(arr);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().retried_ops, 0u);
  EXPECT_EQ(report.value().hard_errors, 0u);
  EXPECT_EQ(report.value().latent_sectors_hit, 0u);
  EXPECT_EQ(report.value().fallback_to_mirror, 0u);
  EXPECT_EQ(report.value().fallback_to_parity, 0u);
  EXPECT_EQ(report.value().unrecoverable_elements, 0u);
  EXPECT_FALSE(report.value().degraded());
  EXPECT_TRUE(arr.verify_all().is_ok());
}

TEST(ReconFaults, LatentReplicaFallsBackToParity) {
  auto cfg = base_cfg(layout::Architecture::mirror_with_parity(3, true));
  // Every mirror disk entirely unreadable: rebuilding a data disk must
  // take the parity-XOR path for every element.
  for (int m = 0; m < 3; ++m)
    cfg.fault_overrides[cfg.arch.mirror_disk(m)] = all_latent();
  array::DiskArray arr(cfg);
  EXPECT_TRUE(arr.faults_active());
  arr.initialize();
  arr.fail_physical(0);  // a data disk
  auto report = reconstruct(arr);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  const auto expected = static_cast<std::uint64_t>(cfg.arch.rows()) *
                        static_cast<std::uint64_t>(cfg.stripes);
  EXPECT_EQ(report.value().fallback_to_parity, expected);
  EXPECT_GT(report.value().latent_sectors_hit, 0u);
  EXPECT_EQ(report.value().unrecoverable_elements, 0u);
  // Every recovered byte matched a surviving redundancy path.
  EXPECT_TRUE(arr.verify_all().is_ok());
}

TEST(ReconFaults, LatentDataColumnFallsBackToMirrorDuringParityRebuild) {
  auto cfg = base_cfg(layout::Architecture::mirror_with_parity(3, true));
  cfg.fault_overrides[0] = all_latent();  // data disk 0 unreadable
  array::DiskArray arr(cfg);
  arr.initialize();
  arr.fail_physical(cfg.arch.parity_disk());
  auto report = reconstruct(arr);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  // Rebuilding the parity column needs every data value; disk 0's come
  // from its mirror copies.
  const auto expected = static_cast<std::uint64_t>(cfg.arch.rows()) *
                        static_cast<std::uint64_t>(cfg.stripes);
  EXPECT_EQ(report.value().fallback_to_mirror, expected);
  EXPECT_EQ(report.value().unrecoverable_elements, 0u);
  EXPECT_TRUE(arr.verify_all().is_ok());
}

TEST(ReconFaults, NoSurvivingPathCountsUnrecoverableInsteadOfAborting) {
  auto cfg = base_cfg(layout::Architecture::mirror(2, true));
  cfg.fault = all_latent();  // plain mirror, everything latent
  array::DiskArray arr(cfg);
  arr.initialize();
  arr.fail_physical(0);
  auto report = reconstruct(arr);
  // No parity and every replica unreadable: the rebuild completes
  // degraded, zero-filling and counting the lost elements.
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  const auto expected = static_cast<std::uint64_t>(cfg.arch.rows()) *
                        static_cast<std::uint64_t>(cfg.stripes);
  EXPECT_EQ(report.value().unrecoverable_elements, expected);
  EXPECT_TRUE(report.value().degraded());
  EXPECT_FALSE(arr.physical(0).failed());  // healed regardless
}

TEST(ReconFaults, RaidLatentColumnBecomesExtraErasure) {
  auto cfg = base_cfg(layout::Architecture::raid6(4));  // tolerance 2
  cfg.fault_overrides[2] = all_latent();  // live data column unreadable
  array::DiskArray arr(cfg);
  arr.initialize();
  arr.fail_physical(0);
  auto report = reconstruct(arr);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().fallback_to_codec,
            static_cast<std::uint64_t>(cfg.stripes));
  EXPECT_EQ(report.value().unrecoverable_elements, 0u);
  EXPECT_TRUE(arr.verify_all().is_ok());
}

TEST(ReconFaults, RaidLatentBeyondToleranceIsDegradedNotFatal) {
  auto cfg = base_cfg(layout::Architecture::raid5(3));  // tolerance 1
  cfg.fault_overrides[1] = all_latent();
  array::DiskArray arr(cfg);
  arr.initialize();
  arr.fail_physical(0);
  auto report = reconstruct(arr);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  const auto expected = static_cast<std::uint64_t>(cfg.arch.rows()) *
                        static_cast<std::uint64_t>(cfg.stripes);
  EXPECT_EQ(report.value().unrecoverable_elements, expected);
  EXPECT_TRUE(report.value().degraded());
}

TEST(ReconFaults, TransientErrorsAreRetriedDuringTiming) {
  auto cfg = base_cfg(layout::Architecture::mirror_with_parity(3, true), 2);
  cfg.fault.transient_read_error_p = 0.05;
  cfg.fault.transient_write_error_p = 0.05;
  cfg.fault.seed = 3;
  cfg.io_max_retries = 4;
  array::DiskArray arr(cfg);
  arr.initialize();
  arr.fail_physical(1);
  auto report = reconstruct(arr);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_GT(report.value().retried_ops, 0u);
  EXPECT_EQ(report.value().unrecoverable_elements, 0u);
  // Transient errors cost time, never correctness.
  EXPECT_TRUE(arr.verify_all().is_ok());
}

TEST(ReconFaults, FaultyRebuildIsDeterministicUnderFixedSeed) {
  auto run = [] {
    auto cfg = base_cfg(layout::Architecture::mirror_with_parity(3, true));
    cfg.fault.latent_error_rate = 0.15;
    cfg.fault.transient_read_error_p = 0.05;
    cfg.fault.seed = 42;
    array::DiskArray arr(cfg);
    arr.initialize();
    arr.fail_physical(0);
    auto report = reconstruct(arr);
    EXPECT_TRUE(report.is_ok()) << report.status().to_string();
    return report.value();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.read_makespan_s, b.read_makespan_s);
  EXPECT_EQ(a.total_makespan_s, b.total_makespan_s);
  EXPECT_EQ(a.retried_ops, b.retried_ops);
  EXPECT_EQ(a.latent_sectors_hit, b.latent_sectors_hit);
  EXPECT_EQ(a.fallback_to_parity, b.fallback_to_parity);
  EXPECT_EQ(a.unrecoverable_elements, b.unrecoverable_elements);
}

// --- batch-executor retry policy -----------------------------------------

TEST(ReconFaults, ExecuteBoundsTransientRetries) {
  auto cfg = base_cfg(layout::Architecture::mirror(2, true));
  cfg.fault_overrides[0].transient_write_error_p = 1.0;  // never succeeds
  cfg.io_max_retries = 2;
  array::DiskArray arr(cfg);
  std::vector<array::Op> ops{{0, 0, 0, disk::IoKind::kWrite}};
  const auto stats = arr.execute(ops, 0.0);
  EXPECT_EQ(stats.retried_ops, 2u);  // exactly io_max_retries attempts more
  EXPECT_EQ(stats.failed_ops, 1u);
  // Every attempt occupied the disk.
  EXPECT_EQ(arr.physical(0).counters().writes, 3u);
  EXPECT_GT(stats.end_s, 0.0);
}

TEST(ReconFaults, ExecuteCountsUnreadableSectorsWithoutRetry) {
  auto cfg = base_cfg(layout::Architecture::mirror(2, true));
  cfg.fault_overrides[0] = all_latent();
  array::DiskArray arr(cfg);
  std::vector<array::Op> ops{{0, 0, 0, disk::IoKind::kRead}};
  const auto stats = arr.execute(ops, 0.0);
  EXPECT_EQ(stats.retried_ops, 0u);  // hard error: no retry
  EXPECT_EQ(stats.failed_ops, 1u);
  EXPECT_EQ(stats.unreadable_ops, 1u);
  EXPECT_EQ(stats.max_retry_depth, 0);
}

TEST(ReconFaults, ExecuteReportsTheDeepestRetryChain) {
  auto cfg = base_cfg(layout::Architecture::mirror(2, true));
  cfg.fault_overrides[0].transient_write_error_p = 1.0;
  cfg.io_max_retries = 3;
  array::DiskArray arr(cfg);
  // Disk 0's op burns the whole budget — the *final* retry attempt
  // still draws a transient error and the op fails; disk 1's op is
  // clean and contributes depth 0.
  std::vector<array::Op> ops{{0, 0, 0, disk::IoKind::kWrite},
                             {1, 0, 0, disk::IoKind::kWrite}};
  const auto stats = arr.execute(ops, 0.0);
  EXPECT_EQ(stats.max_retry_depth, 3);
  EXPECT_EQ(stats.retried_ops, 3u);
  EXPECT_EQ(stats.failed_ops, 1u);
  EXPECT_EQ(arr.physical(0).counters().writes, 4u);  // 1 + 3 attempts

  std::vector<array::Op> clean{{1, 1, 0, disk::IoKind::kWrite}};
  EXPECT_EQ(arr.execute(clean, 100.0).max_retry_depth, 0);
}

TEST(ReconFaults, RetryBackoffDelaysResubmissionLinearly) {
  // The first two attempts of the exponential schedule wait backoff * 1
  // and backoff * 2 after the failed attempt drains — identical to the
  // historical linear schedule this deprecated alias configured — so an
  // op that exhausts two retries finishes exactly backoff * (1 + 2)
  // later than with the default immediate retry.
  auto run = [](double backoff) {
    auto cfg = base_cfg(layout::Architecture::mirror(2, true));
    cfg.fault_overrides[0].transient_write_error_p = 1.0;
    cfg.io_max_retries = 2;
    cfg.retry_backoff_s = backoff;
    array::DiskArray arr(cfg);
    std::vector<array::Op> ops{{0, 0, 0, disk::IoKind::kWrite}};
    return arr.execute(ops, 0.0);
  };
  const auto immediate = run(0.0);
  const auto delayed = run(0.5);
  EXPECT_EQ(immediate.retried_ops, delayed.retried_ops);
  EXPECT_EQ(immediate.max_retry_depth, delayed.max_retry_depth);
  EXPECT_NEAR(delayed.end_s, immediate.end_s + 0.5 * (1 + 2), 1e-9);
}

TEST(ReconFaults, TwoDisksFailStoppingAtTheSameInstant) {
  // Both fail-stops arm at t=0: the first access to either disk kills
  // it, the batch reports both ops failed, and the double failure is
  // still recoverable on a tolerance-2 architecture.
  auto cfg = base_cfg(layout::Architecture::mirror_with_parity(3, true));
  cfg.fault_overrides[0].fail_at_s = 0.0;
  cfg.fault_overrides[1].fail_at_s = 0.0;
  array::DiskArray arr(cfg);
  arr.initialize();

  std::vector<array::Op> ops{{0, 0, 0, disk::IoKind::kRead},
                             {1, 0, 0, disk::IoKind::kRead}};
  const auto stats = arr.execute(ops, 0.0);
  EXPECT_EQ(stats.failed_ops, 2u);
  EXPECT_EQ(stats.retried_ops, 0u);  // fail-stop is hard, not transient
  EXPECT_EQ(arr.failed_physical(), (std::vector<int>{0, 1}));

  auto report = reconstruct(arr);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_TRUE(arr.failed_physical().empty());
  EXPECT_TRUE(arr.verify_all().is_ok());
}

// --- scrub: unreadable sectors as arbitration input ----------------------

TEST(ScrubFaults, UnreadableCopyRemappedFromReadablePartner) {
  auto cfg = base_cfg(layout::Architecture::mirror(2, true));
  const int m0 = cfg.arch.mirror_disk(0);
  cfg.fault_overrides[m0] = all_latent();
  array::DiskArray arr(cfg);
  arr.initialize();
  auto report = scrub(arr);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  const auto disk_elems = static_cast<std::uint64_t>(cfg.arch.rows()) *
                          static_cast<std::uint64_t>(cfg.stripes);
  EXPECT_EQ(report.value().unreadable_sectors, disk_elems);
  EXPECT_EQ(report.value().remapped, disk_elems);
  EXPECT_EQ(report.value().undecidable, 0u);
  // The latent sectors were rewritten in place (remapped).
  EXPECT_EQ(arr.physical(m0).latent_slot_count(), 0);
  EXPECT_TRUE(arr.verify_all().is_ok());
}

TEST(ScrubFaults, BothCopiesUnreadableRebuiltFromParityRow) {
  auto cfg = base_cfg(layout::Architecture::mirror_with_parity(3, true));
  cfg.fault_overrides[0] = all_latent(2);  // data disk 0
  for (int m = 0; m < 3; ++m)  // and every mirror disk
    cfg.fault_overrides[cfg.arch.mirror_disk(m)] = all_latent(3 + m);
  array::DiskArray arr(cfg);
  arr.initialize();
  auto report = scrub(arr);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  // Pairs with data 0: both copies unreadable -> parity row rebuilds
  // both. Other pairs: the readable data copy is authoritative.
  EXPECT_EQ(report.value().undecidable, 0u);
  EXPECT_GT(report.value().remapped, 0u);
  for (int d = 0; d < arr.total_disks(); ++d)
    EXPECT_EQ(arr.physical(d).latent_slot_count(), 0) << "disk " << d;
  EXPECT_TRUE(arr.verify_all().is_ok());
}

TEST(ScrubFaults, UnreadableParityElementRecomputed) {
  auto cfg = base_cfg(layout::Architecture::mirror_with_parity(2, true));
  cfg.fault_overrides[cfg.arch.parity_disk()] = all_latent();
  array::DiskArray arr(cfg);
  arr.initialize();
  auto report = scrub(arr);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  const auto parity_elems = static_cast<std::uint64_t>(cfg.arch.rows()) *
                            static_cast<std::uint64_t>(cfg.stripes);
  EXPECT_EQ(report.value().unreadable_sectors, parity_elems);
  EXPECT_EQ(report.value().remapped, parity_elems);
  EXPECT_EQ(arr.physical(cfg.arch.parity_disk()).latent_slot_count(), 0);
  EXPECT_TRUE(arr.verify_all().is_ok());
}

TEST(ScrubFaults, BothCopiesUnreadableWithoutParityIsUndecidable) {
  auto cfg = base_cfg(layout::Architecture::mirror(2, true));
  cfg.fault = all_latent();  // everything unreadable, no parity
  array::DiskArray arr(cfg);
  arr.initialize();
  auto report = scrub(arr);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  const auto pairs = static_cast<std::uint64_t>(cfg.arch.n()) *
                     static_cast<std::uint64_t>(cfg.arch.rows()) *
                     static_cast<std::uint64_t>(cfg.stripes);
  EXPECT_EQ(report.value().undecidable, pairs);
  EXPECT_EQ(report.value().remapped, 0u);
}

}  // namespace
}  // namespace sma::recon
