#include "recon/analytic.hpp"

#include <gtest/gtest.h>

namespace sma::recon {
namespace {

class AnalyticN : public ::testing::TestWithParam<int> {};

TEST_P(AnalyticN, Table1Reproduced) {
  const int n = GetParam();
  const auto arch = layout::Architecture::mirror_with_parity(n, true);
  const CaseTable table = enumerate_double_failure_cases(arch);
  EXPECT_TRUE(table.uniform);
  ASSERT_EQ(table.rows.size(), 3u);
  for (const auto& row : table.rows) {
    switch (row.cls) {
      case FailureClass::kF1:
        EXPECT_EQ(row.num_cases, 2 * n);
        EXPECT_EQ(row.num_read_accesses, 1);
        break;
      case FailureClass::kF2:
        EXPECT_EQ(row.num_cases, static_cast<long>(n) * (n - 1));
        EXPECT_EQ(row.num_read_accesses, 2);
        break;
      case FailureClass::kF3:
        EXPECT_EQ(row.num_cases, static_cast<long>(n) * n);
        EXPECT_EQ(row.num_read_accesses, 2);
        break;
      default:
        FAIL();
    }
  }
}

TEST_P(AnalyticN, AverageMatchesClosedForm4nOver2nPlus1) {
  const int n = GetParam();
  const auto arch = layout::Architecture::mirror_with_parity(n, true);
  const CaseTable table = enumerate_double_failure_cases(arch);
  EXPECT_NEAR(table.average_read_accesses,
              paper_avg_read_shifted_mirror_parity(n), 1e-12)
      << "n=" << n;
}

TEST_P(AnalyticN, TraditionalAverageIsN) {
  const int n = GetParam();
  const auto arch = layout::Architecture::mirror_with_parity(n, false);
  const CaseTable table = enumerate_double_failure_cases(arch);
  EXPECT_NEAR(table.average_read_accesses,
              paper_avg_read_traditional_mirror_parity(n), 1e-12);
}

TEST_P(AnalyticN, SingleFailureAverages) {
  const int n = GetParam();
  // Mirror without parity: shifted = 1, traditional = n, for every
  // single failure (hence also on average).
  EXPECT_NEAR(average_single_failure_read_accesses(
                  layout::Architecture::mirror(n, true)),
              1.0, 1e-12);
  EXPECT_NEAR(average_single_failure_read_accesses(
                  layout::Architecture::mirror(n, false)),
              static_cast<double>(n), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(N, AnalyticN, ::testing::Values(2, 3, 4, 5, 6, 7, 10));

TEST(Analytic, TheoreticalImprovementFactorIs2nPlus1Over4) {
  // Paper abstract: availability improves by (2n+1)/4 with parity.
  for (int n : {3, 5, 7, 20}) {
    const double shifted = paper_avg_read_shifted_mirror_parity(n);
    const double traditional = paper_avg_read_traditional_mirror_parity(n);
    EXPECT_NEAR(traditional / shifted, (2.0 * n + 1) / 4.0, 1e-12);
  }
}

TEST(Analytic, Fig7RatiosDecreaseWithN) {
  const Fig7Point p3 = fig7_point(3);
  const Fig7Point p10 = fig7_point(10);
  const Fig7Point p20 = fig7_point(20);
  EXPECT_GT(p3.ratio_vs_traditional_pct, p10.ratio_vs_traditional_pct);
  EXPECT_GT(p10.ratio_vs_traditional_pct, p20.ratio_vs_traditional_pct);
  EXPECT_GT(p3.ratio_vs_raid6_pct, p20.ratio_vs_raid6_pct);
}

TEST(Analytic, Fig7ReachesPaperFivePercentRegime) {
  // Paper Section VI-A: ratios achieve "as low as 5 percent" within the
  // plotted range (n up to 50).
  const Fig7Point p = fig7_point(50);
  EXPECT_LT(p.ratio_vs_traditional_pct, 5.0);
  EXPECT_LT(p.ratio_vs_raid6_pct, 5.0);
}

TEST(Analytic, Fig7ExactRatioVsTraditional) {
  // ratio = (4n/(2n+1)) / n = 4/(2n+1).
  for (int n : {3, 7, 25}) {
    const Fig7Point p = fig7_point(n);
    EXPECT_NEAR(p.ratio_vs_traditional_pct, 100.0 * 4 / (2.0 * n + 1), 1e-9);
  }
}

TEST(Analytic, Raid6ThroughputSlightlyBelowTraditionalMirrorParity) {
  // Paper Fig. 7 note: shortened RAID-6 needs slightly *more* reads
  // than the traditional mirror method with parity. In our model this
  // holds whenever the shortened stripe depth p-1 exceeds n (true for
  // every n where n+1 is composite); when n+1 is itself prime the two
  // are within one access of each other.
  for (int n : {3, 5, 7, 8, 9}) {  // n+1 composite -> p-1 > n
    const Fig7Point p = fig7_point(n);
    EXPECT_GT(p.raid6_avg, p.traditional_avg) << "n=" << n;
    EXPECT_LT(p.ratio_vs_raid6_pct, p.ratio_vs_traditional_pct);
  }
  for (int n : {4, 6, 10}) {  // n+1 prime -> rows == n, near tie
    const Fig7Point p = fig7_point(n);
    EXPECT_NEAR(p.raid6_avg, p.traditional_avg, 1.0) << "n=" << n;
  }
}

TEST(Analytic, Raid6AverageTracksShortenedRows) {
  // Nearly every double failure of RAID-6 reads full surviving columns
  // of p-1 rows; only the P+Q case needs no availability reads.
  const auto arch = layout::Architecture::raid6(5);  // rows = 6
  const CaseTable table = enumerate_double_failure_cases(arch);
  const long total = 7 * 6 / 2;
  const double expect =
      (static_cast<double>(total - 1) * 6 + 0) / static_cast<double>(total);
  EXPECT_NEAR(table.average_read_accesses, expect, 1e-12);
}

}  // namespace
}  // namespace sma::recon
