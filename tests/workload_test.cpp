#include "workload/write_executor.hpp"
#include "workload/write_workload.hpp"

#include <gtest/gtest.h>

namespace sma::workload {
namespace {

array::ArrayConfig cfg_for(layout::Architecture arch, int stacks = 1) {
  array::ArrayConfig cfg;
  cfg.arch = arch;
  cfg.stripes = stacks * arch.total_disks();
  cfg.content_bytes = 64;
  cfg.logical_element_bytes = 4'000'000;
  cfg.seed = 77;
  return cfg;
}

TEST(WriteWorkload, CountsAndBounds) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror(4, true)));
  WriteWorkloadConfig cfg;
  cfg.arrival.max_requests = 500;
  const auto reqs = generate_large_writes(arr, cfg);
  EXPECT_EQ(reqs.size(), 500u);
  const std::int64_t total = data_element_count(arr);
  const int stripe_elems = 16;
  for (const auto& r : reqs) {
    EXPECT_GE(r.length, 1);
    EXPECT_LE(r.length, stripe_elems);
    EXPECT_GE(r.start, 0);
    EXPECT_LE(r.start + r.length, total);
  }
}

TEST(WriteWorkload, DeterministicBySeed) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror(3, true)));
  WriteWorkloadConfig cfg;
  cfg.arrival.max_requests = 50;
  cfg.arrival.seed = 42;
  const auto a = generate_large_writes(arr, cfg);
  const auto b = generate_large_writes(arr, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].length, b[i].length);
  }
}

TEST(WriteWorkload, DataElementCount) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror(3, true)));
  // stripes = 6 (one stack), rows = 3, n = 3.
  EXPECT_EQ(data_element_count(arr), 6 * 3 * 3);
}

TEST(WriteExecutor, FullRowWriteIsOneAccessNoReads) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror(3, true)));
  arr.initialize();
  // One full row: start at element 0, length n.
  const std::vector<WriteRequest> reqs{{0, 3}};
  const auto report = run_write_workload(arr, reqs);
  EXPECT_EQ(report.bytes_read, 0u);
  EXPECT_EQ(report.rows_written, 1u);
  EXPECT_EQ(report.write_accesses, 1u);  // Property 3 at work
  EXPECT_EQ(report.user_bytes, 3u * 4'000'000);
  // data + mirror copies.
  EXPECT_EQ(report.bytes_written, 6u * 4'000'000);
}

TEST(WriteExecutor, FullRowWithParityAddsParityWriteOnly) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror_with_parity(3, true)));
  arr.initialize();
  const std::vector<WriteRequest> reqs{{0, 3}};
  const auto report = run_write_workload(arr, reqs);
  EXPECT_EQ(report.bytes_read, 0u);  // reconstruct-write on a full row
  EXPECT_EQ(report.bytes_written, 7u * 4'000'000);  // 3 data + 3 mirror + parity
}

TEST(WriteExecutor, SmallWritePartialRowReadsForParity) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror_with_parity(5, true)));
  arr.initialize();
  // Single element: RMW (2 reads: old data + old parity) beats
  // reconstruct (4 reads).
  const std::vector<WriteRequest> reqs{{0, 1}};
  const auto report = run_write_workload(arr, reqs);
  EXPECT_EQ(report.bytes_read, 2u * 4'000'000);
  EXPECT_EQ(report.bytes_written, 3u * 4'000'000);  // data + mirror + parity
}

TEST(WriteExecutor, NearFullRowUsesReconstructWrite) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror_with_parity(5, true)));
  arr.initialize();
  // 4 of 5 elements: reconstruct (1 read) beats RMW (5 reads).
  const std::vector<WriteRequest> reqs{{0, 4}};
  const auto report = run_write_workload(arr, reqs);
  EXPECT_EQ(report.bytes_read, 1u * 4'000'000);
}

TEST(WriteExecutor, MultiRowRequestSpansRows) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror(3, true)));
  arr.initialize();
  // 7 elements starting at 1: rows (0:1..2), (1:0..2), (2:0..1).
  const std::vector<WriteRequest> reqs{{1, 7}};
  const auto report = run_write_workload(arr, reqs);
  EXPECT_EQ(report.rows_written, 3u);
  EXPECT_EQ(report.user_bytes, 7u * 4'000'000);
}

TEST(WriteExecutor, RequestCrossingStripeBoundary) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror(3, true)));
  arr.initialize();
  // Start in stripe 0's last row, extend into stripe 1.
  const std::vector<WriteRequest> reqs{{8, 2}};  // element 8 = (s0, row2, d2)
  const auto report = run_write_workload(arr, reqs);
  EXPECT_EQ(report.rows_written, 2u);
  EXPECT_EQ(report.user_bytes, 2u * 4'000'000);
}

TEST(WriteExecutor, ShiftedAndTraditionalWriteNearIdenticalAccessCounts) {
  // Paper Section VI-C: the shifted arrangement preserves optimal write
  // access counts. Exactly equal on full-row writes (Property 3); for
  // partial multi-row requests two rows' partial segments can land two
  // replicas on one mirror disk, so allow a small (<5%) difference.
  WriteWorkloadConfig wcfg;
  wcfg.arrival.max_requests = 200;
  std::uint64_t accesses[2];
  for (const bool shifted : {false, true}) {
    array::DiskArray arr(
        cfg_for(layout::Architecture::mirror_with_parity(4, shifted)));
    arr.initialize();
    const auto reqs = generate_large_writes(arr, wcfg);
    const auto report = run_write_workload(arr, reqs);
    accesses[shifted ? 1 : 0] = report.write_accesses;
  }
  const double ratio =
      static_cast<double>(accesses[1]) / static_cast<double>(accesses[0]);
  EXPECT_GE(ratio, 0.95);
  EXPECT_LE(ratio, 1.05);
}

TEST(WriteExecutor, FullRowWritesIdenticalAccessCountsBothArrangements) {
  // Pure row-aligned large writes: exact equality (each row is one
  // parallel write access under both arrangements).
  for (const bool shifted : {false, true}) {
    array::DiskArray arr(
        cfg_for(layout::Architecture::mirror_with_parity(4, shifted)));
    arr.initialize();
    std::vector<WriteRequest> reqs;
    for (int r = 0; r < 12; ++r) reqs.push_back({r * 4, 4});  // full rows
    const auto report = run_write_workload(arr, reqs);
    EXPECT_EQ(report.write_accesses, 12u) << "shifted=" << shifted;
    EXPECT_EQ(report.bytes_read, 0u);
  }
}

TEST(WriteExecutor, ThroughputComparableBetweenArrangements) {
  WriteWorkloadConfig wcfg;
  wcfg.arrival.max_requests = 300;
  double mbps[2];
  for (const bool shifted : {false, true}) {
    array::DiskArray arr(cfg_for(layout::Architecture::mirror(5, shifted)));
    arr.initialize();
    const auto reqs = generate_large_writes(arr, wcfg);
    mbps[shifted ? 1 : 0] = run_write_workload(arr, reqs).write_throughput_mbps();
  }
  // "compatible write efficiency": within 25% of each other.
  EXPECT_NEAR(mbps[1] / mbps[0], 1.0, 0.25);
}

TEST(WriteExecutor, EmptyWorkloadZeroReport) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror(3, true)));
  arr.initialize();
  const auto report = run_write_workload(arr, {});
  EXPECT_DOUBLE_EQ(report.makespan_s, 0.0);
  EXPECT_EQ(report.user_bytes, 0u);
  EXPECT_DOUBLE_EQ(report.write_throughput_mbps(), 0.0);
}

}  // namespace
}  // namespace sma::workload
