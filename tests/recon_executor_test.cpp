#include "recon/executor.hpp"

#include <gtest/gtest.h>

#include "recon/failure.hpp"

namespace sma::recon {
namespace {

array::ArrayConfig cfg_for(layout::Architecture arch) {
  array::ArrayConfig cfg;
  cfg.arch = arch;
  cfg.stripes = arch.total_disks();  // one full stack
  cfg.content_bytes = 64;
  cfg.logical_element_bytes = 4'000'000;
  cfg.seed = 31;
  return cfg;
}

class ExecutorSingle
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(ExecutorSingle, EverysingleDiskRebuildVerifies) {
  const auto [n, shifted] = GetParam();
  const auto arch = layout::Architecture::mirror(n, shifted);
  for (int d = 0; d < arch.total_disks(); ++d) {
    array::DiskArray arr(cfg_for(arch));
    arr.initialize();
    arr.fail_physical(d);
    auto report = reconstruct(arr);
    ASSERT_TRUE(report.is_ok()) << "disk " << d << ": "
                                << report.status().to_string();
    EXPECT_TRUE(arr.verify_all().is_ok()) << "disk " << d;
    EXPECT_TRUE(arr.failed_physical().empty());
    EXPECT_EQ(report.value().read_accesses_per_stripe, shifted ? 1 : n);
    EXPECT_GT(report.value().read_throughput_mbps(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mirrors, ExecutorSingle,
    ::testing::Combine(::testing::Values(2, 3, 5), ::testing::Bool()));

class ExecutorDouble
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(ExecutorDouble, EveryDoubleFailureRebuildVerifies) {
  const auto [n, shifted] = GetParam();
  const auto arch = layout::Architecture::mirror_with_parity(n, shifted);
  for (const auto& failed : enumerate_double_failures(arch)) {
    array::DiskArray arr(cfg_for(arch));
    arr.initialize();
    for (const int d : failed) arr.fail_physical(d);
    auto report = reconstruct(arr);
    ASSERT_TRUE(report.is_ok())
        << failed[0] << "," << failed[1] << ": "
        << report.status().to_string();
    EXPECT_TRUE(arr.verify_all().is_ok()) << failed[0] << "," << failed[1];
  }
}

INSTANTIATE_TEST_SUITE_P(
    MirrorsWithParity, ExecutorDouble,
    ::testing::Combine(::testing::Values(3, 4), ::testing::Bool()));

TEST(Executor, ShiftedBeatsTraditionalThroughputSingleFailure) {
  // The paper's headline effect (Fig. 9a): with everything else equal,
  // the shifted arrangement's rebuild reads are parallel.
  const int n = 5;
  double trad = 0;
  double shifted = 0;
  for (const bool s : {false, true}) {
    const auto arch = layout::Architecture::mirror(n, s);
    array::DiskArray arr(cfg_for(arch));
    arr.initialize();
    arr.fail_physical(0);
    auto report = reconstruct(arr);
    ASSERT_TRUE(report.is_ok());
    (s ? shifted : trad) = report.value().read_throughput_mbps();
  }
  EXPECT_GT(shifted, 1.5 * trad);
}

TEST(Executor, NoFailureIsTrivial) {
  const auto arch = layout::Architecture::mirror(3, true);
  array::DiskArray arr(cfg_for(arch));
  arr.initialize();
  auto report = reconstruct(arr);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().logical_bytes_read, 0u);
  EXPECT_DOUBLE_EQ(report.value().read_makespan_s, 0.0);
}

TEST(Executor, TripleFailureIsUnrecoverable) {
  const auto arch = layout::Architecture::mirror_with_parity(3, true);
  array::DiskArray arr(cfg_for(arch));
  arr.initialize();
  arr.fail_physical(0);
  arr.fail_physical(1);
  arr.fail_physical(2);
  auto report = reconstruct(arr);
  EXPECT_FALSE(report.is_ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kUnrecoverable);
}

TEST(Executor, ParityRebuildOptionAddsReads) {
  // Rotation off so the failed physical disk is the parity disk in
  // *every* stripe; with rotation it would play data/mirror roles in
  // other stripes and legitimately incur availability reads.
  const auto arch = layout::Architecture::mirror_with_parity(4, true);
  auto cfg_no_rotate = cfg_for(arch);
  cfg_no_rotate.rotate = false;

  array::DiskArray a(cfg_no_rotate);
  a.initialize();
  a.fail_physical(a.arch().parity_disk());
  auto without = reconstruct(a);
  ASSERT_TRUE(without.is_ok());

  array::DiskArray b(cfg_no_rotate);
  b.initialize();
  b.fail_physical(b.arch().parity_disk());
  ReconOptions opts;
  opts.include_parity_rebuild = true;
  auto with = reconstruct(b, opts);
  ASSERT_TRUE(with.is_ok());

  EXPECT_EQ(without.value().logical_bytes_read, 0u);
  EXPECT_GT(with.value().logical_bytes_read, 0u);
  // Both still leave a fully verified array.
  EXPECT_TRUE(a.verify_all().is_ok());
  EXPECT_TRUE(b.verify_all().is_ok());
}

TEST(Executor, Raid5RebuildVerifies) {
  const auto arch = layout::Architecture::raid5(4);
  for (int d = 0; d < arch.total_disks(); ++d) {
    array::DiskArray arr(cfg_for(arch));
    arr.initialize();
    arr.fail_physical(d);
    auto report = reconstruct(arr);
    ASSERT_TRUE(report.is_ok()) << d;
    EXPECT_TRUE(arr.verify_all().is_ok()) << d;
  }
}

TEST(Executor, Raid6DoubleRebuildVerifies) {
  const auto arch = layout::Architecture::raid6(4);
  for (const auto& failed : enumerate_double_failures(arch)) {
    array::DiskArray arr(cfg_for(arch));
    arr.initialize();
    for (const int d : failed) arr.fail_physical(d);
    auto report = reconstruct(arr);
    ASSERT_TRUE(report.is_ok()) << failed[0] << "," << failed[1];
    EXPECT_TRUE(arr.verify_all().is_ok()) << failed[0] << "," << failed[1];
  }
}

TEST(Executor, PipelinedRebuildIsFasterAndStillVerifies) {
  for (const bool shifted : {false, true}) {
    const auto arch = layout::Architecture::mirror(4, shifted);
    double totals[2];
    for (const bool pipelined : {false, true}) {
      array::DiskArray arr(cfg_for(arch));
      arr.initialize();
      arr.fail_physical(1);
      ReconOptions opts;
      opts.pipelined = pipelined;
      auto report = reconstruct(arr, opts);
      ASSERT_TRUE(report.is_ok());
      EXPECT_TRUE(arr.verify_all().is_ok());
      totals[pipelined ? 1 : 0] = report.value().total_makespan_s;
      EXPECT_GE(report.value().total_makespan_s,
                report.value().read_makespan_s);
    }
    EXPECT_LT(totals[1], totals[0]) << "shifted=" << shifted;
  }
}

TEST(Executor, PipelinedMatchesBarrierOnBytesAndAccesses) {
  const auto arch = layout::Architecture::mirror_with_parity(4, true);
  ReconOptions barrier;
  ReconOptions pipe;
  pipe.pipelined = true;
  ReconReport reports[2];
  for (int mode = 0; mode < 2; ++mode) {
    array::DiskArray arr(cfg_for(arch));
    arr.initialize();
    arr.fail_physical(0);
    arr.fail_physical(5);
    auto r = reconstruct(arr, mode == 0 ? barrier : pipe);
    ASSERT_TRUE(r.is_ok());
    reports[mode] = r.value();
  }
  EXPECT_EQ(reports[0].logical_bytes_read, reports[1].logical_bytes_read);
  EXPECT_EQ(reports[0].logical_bytes_recovered,
            reports[1].logical_bytes_recovered);
  EXPECT_EQ(reports[0].read_accesses_per_stripe,
            reports[1].read_accesses_per_stripe);
}

TEST(Executor, StragglerSlowsShiftedRebuild) {
  // One slow mirror disk gates the shifted fan-out but not the
  // traditional partner read (rotation off; partner is disk n+0, the
  // straggler n+1).
  const int n = 4;
  double mbps[2];
  for (const bool slow : {false, true}) {
    auto cfg = cfg_for(layout::Architecture::mirror(n, true));
    cfg.rotate = false;
    if (slow) {
      disk::DiskSpec s = cfg.spec;
      s.read_mbps /= 4;
      cfg.spec_overrides[n + 1] = s;
    }
    array::DiskArray arr(cfg);
    arr.initialize();
    arr.fail_physical(0);
    auto report = reconstruct(arr);
    ASSERT_TRUE(report.is_ok());
    mbps[slow ? 1 : 0] = report.value().read_throughput_mbps();
  }
  EXPECT_LT(mbps[1], 0.75 * mbps[0]);

  // Traditional is untouched when the straggler is not the partner.
  double trad[2];
  for (const bool slow : {false, true}) {
    auto cfg = cfg_for(layout::Architecture::mirror(n, false));
    cfg.rotate = false;
    if (slow) {
      disk::DiskSpec s = cfg.spec;
      s.read_mbps /= 4;
      cfg.spec_overrides[n + 1] = s;
    }
    array::DiskArray arr(cfg);
    arr.initialize();
    arr.fail_physical(0);  // partner is n + 0, not the straggler
    auto report = reconstruct(arr);
    ASSERT_TRUE(report.is_ok());
    trad[slow ? 1 : 0] = report.value().read_throughput_mbps();
  }
  EXPECT_DOUBLE_EQ(trad[0], trad[1]);
}

TEST(Executor, BytesRecoveredEqualsFailedDiskCapacity) {
  const auto arch = layout::Architecture::mirror(3, true);
  array::DiskArray arr(cfg_for(arch));
  arr.initialize();
  arr.fail_physical(1);
  auto report = reconstruct(arr);
  ASSERT_TRUE(report.is_ok());
  const std::uint64_t capacity =
      static_cast<std::uint64_t>(arr.stripes()) * arch.rows() * 4'000'000;
  EXPECT_EQ(report.value().logical_bytes_recovered, capacity);
}

// --- checkpointed / resumable rebuilds ------------------------------------

TEST(Executor, CheckpointInterruptAndResume) {
  const auto arch = layout::Architecture::mirror(4, true);  // 8 stripes
  array::DiskArray arr(cfg_for(arch));
  arr.initialize();
  arr.fail_physical(2);

  repair::RebuildCheckpoint ck;
  ReconOptions opts;
  opts.checkpoint = &ck;
  opts.max_stripes = 3;
  auto first = reconstruct(arr, opts);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  EXPECT_FALSE(first.value().completed);
  EXPECT_EQ(first.value().stripes_processed, 3);
  EXPECT_EQ(first.value().stripes_skipped, 0);
  EXPECT_EQ(ck.stripes_done, 3);
  EXPECT_TRUE(ck.valid());
  EXPECT_EQ(ck.failed, std::vector<int>{2});
  // Interrupted: the disk is still failed, verification deferred.
  EXPECT_EQ(arr.failed_physical(), std::vector<int>{2});

  opts.max_stripes = -1;
  auto second = reconstruct(arr, opts);
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();
  EXPECT_TRUE(second.value().completed);
  EXPECT_EQ(second.value().stripes_skipped, 3);  // covered stripes are free
  EXPECT_EQ(second.value().stripes_processed, arr.stripes() - 3);
  EXPECT_FALSE(ck.valid());  // reset once the rebuild lands
  EXPECT_TRUE(arr.failed_physical().empty());
  EXPECT_TRUE(arr.verify_all().is_ok());
  // Both rounds together did exactly one full rebuild's I/O.
  array::DiskArray fresh(cfg_for(arch));
  fresh.initialize();
  fresh.fail_physical(2);
  auto whole = reconstruct(fresh);
  ASSERT_TRUE(whole.is_ok());
  EXPECT_EQ(first.value().elements_read + second.value().elements_read,
            whole.value().elements_read);
  EXPECT_EQ(first.value().elements_written + second.value().elements_written,
            whole.value().elements_written);
}

TEST(Executor, StaleCheckpointForADifferentFailureRestarts) {
  const auto arch = layout::Architecture::mirror(4, true);
  array::DiskArray arr(cfg_for(arch));
  arr.initialize();
  arr.fail_physical(2);
  repair::RebuildCheckpoint ck;
  ck.failed = {5};  // watermark from some other episode
  ck.stripes_done = 4;
  ReconOptions opts;
  opts.checkpoint = &ck;
  auto report = reconstruct(arr, opts);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().stripes_skipped, 0);  // nothing trustworthy
  EXPECT_EQ(report.value().stripes_processed, arr.stripes());
  EXPECT_TRUE(arr.verify_all().is_ok());
}

TEST(Executor, SecondFailureResumeReadsFewerElementsThanRestart) {
  // The acceptance scenario: a second disk dies mid-rebuild. Resuming
  // from the checkpoint re-reads strictly less than restarting, because
  // the first disk's already-restored stripes only need the new disk
  // rebuilt (the restored elements even serve as live sources).
  const auto arch = layout::Architecture::mirror_with_parity(4, true);

  std::uint64_t resumed_reads = 0;
  {
    array::DiskArray arr(cfg_for(arch));
    arr.initialize();
    arr.fail_physical(0);
    repair::RebuildCheckpoint ck;
    ReconOptions opts;
    opts.checkpoint = &ck;
    opts.max_stripes = 4;
    auto first = reconstruct(arr, opts);
    ASSERT_TRUE(first.is_ok()) << first.status().to_string();
    ASSERT_FALSE(first.value().completed);
    arr.fail_physical(1);  // second failure mid-rebuild
    opts.max_stripes = -1;
    auto rest = reconstruct(arr, opts);
    ASSERT_TRUE(rest.is_ok()) << rest.status().to_string();
    EXPECT_TRUE(rest.value().completed);
    // Covered stripes are *partial* (the new disk still needs them), so
    // none skip outright — the saving shows up in elements_read below.
    EXPECT_EQ(rest.value().stripes_skipped, 0);
    EXPECT_EQ(rest.value().stripes_processed, arr.stripes());
    resumed_reads = first.value().elements_read + rest.value().elements_read;
    EXPECT_TRUE(arr.failed_physical().empty());
    EXPECT_TRUE(arr.verify_all().is_ok());
  }

  std::uint64_t restart_reads = 0;
  {
    array::DiskArray arr(cfg_for(arch));
    arr.initialize();
    arr.fail_physical(0);
    repair::RebuildCheckpoint ck;
    ReconOptions opts;
    opts.checkpoint = &ck;
    opts.max_stripes = 4;
    auto first = reconstruct(arr, opts);
    ASSERT_TRUE(first.is_ok()) << first.status().to_string();
    arr.fail_physical(1);
    // No checkpoint on the second call: rebuild both from scratch.
    auto rest = reconstruct(arr);
    ASSERT_TRUE(rest.is_ok()) << rest.status().to_string();
    restart_reads = first.value().elements_read + rest.value().elements_read;
    EXPECT_TRUE(arr.verify_all().is_ok());
  }

  EXPECT_LT(resumed_reads, restart_reads);
}

TEST(Executor, StripeBudgetRequiresACheckpoint) {
  const auto arch = layout::Architecture::mirror(3, true);
  array::DiskArray arr(cfg_for(arch));
  arr.initialize();
  arr.fail_physical(0);
  ReconOptions opts;
  opts.max_stripes = 2;  // no checkpoint to record the watermark
  EXPECT_EQ(reconstruct(arr, opts).status().code(),
            ErrorCode::kInvalidArgument);
  repair::RebuildCheckpoint ck;
  opts.checkpoint = &ck;
  opts.max_stripes = 0;
  EXPECT_EQ(reconstruct(arr, opts).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(Executor, ReportMakespansAreOrdered) {
  const auto arch = layout::Architecture::mirror(4, false);
  array::DiskArray arr(cfg_for(arch));
  arr.initialize();
  arr.fail_physical(2);
  auto report = reconstruct(arr);
  ASSERT_TRUE(report.is_ok());
  EXPECT_GT(report.value().read_makespan_s, 0.0);
  EXPECT_GT(report.value().total_makespan_s, report.value().read_makespan_s);
}

}  // namespace
}  // namespace sma::recon
