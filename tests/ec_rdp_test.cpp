#include "ec/rdp.hpp"

#include <gtest/gtest.h>

#include "ec/prime.hpp"
#include "gf/region.hpp"

namespace sma::ec {
namespace {

class RdpParam : public ::testing::TestWithParam<int> {};

TEST_P(RdpParam, SelfTestAllSingleAndDoubleErasures) {
  const int k = GetParam();
  RdpCodec codec(k);
  EXPECT_EQ(codec.data_columns(), k);
  EXPECT_EQ(codec.parity_columns(), 2);
  EXPECT_EQ(codec.fault_tolerance(), 2);
  EXPECT_GE(codec.prime(), k + 1);
  EXPECT_TRUE(is_prime(codec.prime()));
  EXPECT_EQ(codec.rows(), codec.prime() - 1);
  EXPECT_TRUE(codec.self_test(0x4D4 + static_cast<unsigned>(k)).is_ok())
      << codec.name();
}

INSTANTIATE_TEST_SUITE_P(Widths, RdpParam,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 10, 12));

TEST(Rdp, PrimeSelection) {
  EXPECT_EQ(RdpCodec(1).prime(), 3);   // needs p >= 2, min odd prime 3
  EXPECT_EQ(RdpCodec(2).prime(), 3);
  EXPECT_EQ(RdpCodec(3).prime(), 5);
  EXPECT_EQ(RdpCodec(4).prime(), 5);
  EXPECT_EQ(RdpCodec(5).prime(), 7);
  EXPECT_EQ(RdpCodec(6).prime(), 7);
  EXPECT_EQ(RdpCodec(7).prime(), 11);
}

TEST(Rdp, RowParityIsRowXor) {
  RdpCodec codec(4);
  ColumnSet cs = codec.make_stripe(16);
  cs.fill_pattern(17);
  ASSERT_TRUE(codec.encode(cs).is_ok());
  for (int r = 0; r < codec.rows(); ++r) {
    std::vector<std::uint8_t> expect(16, 0);
    for (int c = 0; c < 4; ++c) gf::region_xor(cs.element(c, r), expect);
    auto p = cs.element(4, r);
    EXPECT_TRUE(std::equal(p.begin(), p.end(), expect.begin()));
  }
}

TEST(Rdp, DiagonalParityCoversP) {
  // RDP's distinguishing feature: Q's diagonals include the P column.
  // Losing a data column and P together must decode using Q alone.
  RdpCodec codec(6);
  ColumnSet ref = codec.make_stripe(32);
  ref.fill_pattern(55);
  ASSERT_TRUE(codec.encode(ref).is_ok());
  for (int r = 0; r < 6; ++r) {
    ColumnSet damaged = ref;
    damaged.zero_column(r);
    damaged.zero_column(6);  // P column
    ASSERT_TRUE(codec.decode(damaged, {r, 6}).is_ok()) << "data " << r;
    for (int c = 0; c < damaged.columns(); ++c)
      EXPECT_TRUE(damaged.column_equals(c, ref, c));
  }
}

TEST(Rdp, DoubleDataLossAllPairs) {
  RdpCodec codec(6);
  ColumnSet ref = codec.make_stripe(32);
  ref.fill_pattern(66);
  ASSERT_TRUE(codec.encode(ref).is_ok());
  for (int a = 0; a < 6; ++a) {
    for (int b = a + 1; b < 6; ++b) {
      ColumnSet damaged = ref;
      damaged.zero_column(a);
      damaged.zero_column(b);
      ASSERT_TRUE(codec.decode(damaged, {a, b}).is_ok()) << a << "," << b;
      for (int c = 0; c < damaged.columns(); ++c)
        EXPECT_TRUE(damaged.column_equals(c, ref, c)) << a << "," << b;
    }
  }
}

TEST(Rdp, RejectsTripleErasure) {
  RdpCodec codec(4);
  ColumnSet cs = codec.make_stripe(8);
  EXPECT_EQ(codec.decode(cs, {0, 1, 2}).code(), ErrorCode::kUnrecoverable);
}

TEST(Rdp, RejectsWrongShape) {
  RdpCodec codec(4);
  ColumnSet wrong(6, 3, 8);  // rows should be p-1 = 4
  EXPECT_EQ(codec.encode(wrong).code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace sma::ec
