#include "util/status.hpp"

#include <gtest/gtest.h>

namespace sma {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = invalid_argument("bad n");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad n");
  EXPECT_EQ(s.to_string(), "InvalidArgument: bad n");
}

TEST(Status, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(out_of_range("x").code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(failed_precondition("x").code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(unrecoverable("x").code(), ErrorCode::kUnrecoverable);
  EXPECT_EQ(corruption("x").code(), ErrorCode::kCorruption);
  EXPECT_EQ(internal_error("x").code(), ErrorCode::kInternal);
}

TEST(Status, CodeNames) {
  EXPECT_EQ(to_string(ErrorCode::kOk), "OK");
  EXPECT_EQ(to_string(ErrorCode::kUnrecoverable), "Unrecoverable");
  EXPECT_EQ(to_string(ErrorCode::kCorruption), "Corruption");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> r(out_of_range("too big"));
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, TakeMovesValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).take();
  EXPECT_EQ(s, "payload");
}

TEST(Result, ValueOrReturnsValueWhenOk) {
  Result<int> r(7);
  EXPECT_EQ(r.value_or(-1), 7);
}

Status fails() { return corruption("boom"); }
Status propagates() {
  SMA_RETURN_IF_ERROR(fails());
  return Status::ok();
}

TEST(Status, ReturnIfErrorMacroPropagates) {
  Status s = propagates();
  EXPECT_EQ(s.code(), ErrorCode::kCorruption);
  EXPECT_EQ(s.message(), "boom");
}

}  // namespace
}  // namespace sma
