// Scalar/SIMD equivalence fuzz for the region kernel tiers.
//
// Every tier reachable on this host (available_tiers()) is driven
// through every region primitive and compared byte-for-byte against a
// reference computed with the single-byte gf::mul. Lengths sweep
// 0..257 — crossing every vector-width boundary (8, 16, 32, 64, 128
// bytes) plus its +-1 neighbors — and a multi-KiB set that exercises
// the unrolled main loops; source and destination pointers are also
// offset 1..15 bytes from their allocation so misaligned loads/stores
// are on the tested path. The codec round-trip tests in ec_*_test.cpp
// double as end-to-end coverage: CI runs them once dispatched and once
// under SMA_GF_FORCE_SCALAR=1.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gf/gf256.hpp"
#include "gf/region.hpp"
#include "util/rng.hpp"

namespace sma::gf {
namespace {

constexpr std::size_t kBigLengths[] = {1023, 1024, 1025, 4096, 65536, 100000};
constexpr std::uint8_t kConstants[] = {0, 1, 2, 0x53, 0x8E, 0xFF};

// Allocates with 16 bytes of slack and returns a view starting at
// `offset`, so kernels see pointers off the allocator's alignment.
struct OffsetBuf {
  std::vector<std::uint8_t> storage;
  std::span<std::uint8_t> view;

  OffsetBuf(std::size_t len, std::size_t offset, std::uint64_t seed)
      : storage(len + 16) {
    fill_pattern(seed, storage.data(), storage.size());
    view = std::span<std::uint8_t>(storage.data() + offset, len);
  }
};

class TierEquiv : public ::testing::TestWithParam<KernelTier> {};

TEST_P(TierEquiv, XorAllLengthsAndOffsets) {
  const KernelTier tier = GetParam();
  for (std::size_t len = 0; len <= 257; ++len) {
    for (const std::size_t off : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}, std::size_t{15}}) {
      OffsetBuf src(len, off, 1000 + len);
      OffsetBuf dst(len, off, 2000 + len);
      std::vector<std::uint8_t> expect(dst.view.begin(), dst.view.end());
      for (std::size_t i = 0; i < len; ++i) expect[i] ^= src.view[i];
      region_xor(tier, src.view, dst.view);
      ASSERT_TRUE(std::equal(dst.view.begin(), dst.view.end(),
                             expect.begin()))
          << "len=" << len << " off=" << off;
    }
  }
}

TEST_P(TierEquiv, MulAllLengthsAndConstants) {
  const KernelTier tier = GetParam();
  for (const std::uint8_t c : kConstants) {
    for (std::size_t len = 0; len <= 257; ++len) {
      const std::size_t off = len % 16;
      OffsetBuf src(len, off, 3000 + len);
      OffsetBuf dst(len, off, 4000 + len);
      region_mul(tier, c, src.view, dst.view);
      for (std::size_t i = 0; i < len; ++i)
        ASSERT_EQ(dst.view[i], mul(c, src.view[i]))
            << "c=" << int(c) << " len=" << len << " i=" << i;
    }
  }
}

TEST_P(TierEquiv, MulXorAllLengthsAndConstants) {
  const KernelTier tier = GetParam();
  for (const std::uint8_t c : kConstants) {
    for (std::size_t len = 0; len <= 257; ++len) {
      const std::size_t off = (len * 5) % 16;
      OffsetBuf src(len, off, 5000 + len);
      OffsetBuf dst(len, off, 6000 + len);
      std::vector<std::uint8_t> expect(dst.view.begin(), dst.view.end());
      for (std::size_t i = 0; i < len; ++i) expect[i] ^= mul(c, src.view[i]);
      region_mul_xor(tier, c, src.view, dst.view);
      ASSERT_TRUE(std::equal(dst.view.begin(), dst.view.end(),
                             expect.begin()))
          << "c=" << int(c) << " len=" << len;
    }
  }
}

TEST_P(TierEquiv, MulAndMulXorBigBuffers) {
  const KernelTier tier = GetParam();
  for (const std::size_t len : kBigLengths) {
    for (const std::size_t off : {std::size_t{0}, std::size_t{3}}) {
      OffsetBuf src(len, off, 7000 + len);
      OffsetBuf dst(len, off, 8000 + len);
      std::vector<std::uint8_t> expect(dst.view.begin(), dst.view.end());
      const std::uint8_t c = static_cast<std::uint8_t>(2 + len % 250);
      for (std::size_t i = 0; i < len; ++i) expect[i] ^= mul(c, src.view[i]);
      region_mul_xor(tier, c, src.view, dst.view);
      ASSERT_TRUE(std::equal(dst.view.begin(), dst.view.end(),
                             expect.begin()))
          << "len=" << len << " off=" << off;
      region_mul(tier, c, src.view, dst.view);
      for (std::size_t i = 0; i < len; ++i)
        ASSERT_EQ(dst.view[i], mul(c, src.view[i])) << "len=" << len;
    }
  }
}

TEST_P(TierEquiv, MultiXorSourceCounts) {
  const KernelTier tier = GetParam();
  const std::size_t lengths[] = {0,   1,   15,  16,  17,   31,   32,  33,
                                 63,  64,  65,  127, 128,  129,  255, 256,
                                 257, 1023, 4096, 65536};
  for (std::size_t nsrc = 1; nsrc <= 8; ++nsrc) {
    for (const std::size_t len : lengths) {
      const std::size_t off = (nsrc + len) % 16;
      std::vector<OffsetBuf> bufs;
      std::vector<std::span<const std::uint8_t>> srcs;
      for (std::size_t j = 0; j < nsrc; ++j) {
        bufs.emplace_back(len, off, 9000 + 100 * j + len);
        srcs.push_back(bufs.back().view);
      }
      OffsetBuf dst(len, off, 9900 + len);
      std::vector<std::uint8_t> expect(dst.view.begin(), dst.view.end());
      for (std::size_t i = 0; i < len; ++i)
        for (std::size_t j = 0; j < nsrc; ++j) expect[i] ^= srcs[j][i];
      region_multi_xor(tier, srcs, dst.view);
      ASSERT_TRUE(std::equal(dst.view.begin(), dst.view.end(),
                             expect.begin()))
          << "nsrc=" << nsrc << " len=" << len;
    }
  }
}

TEST_P(TierEquiv, EncodeDotCoefficientMix) {
  const KernelTier tier = GetParam();
  Rng rng(42);
  const std::size_t lengths[] = {0,  1,   16,  17,   33,  64,
                                 65, 129, 257, 1025, 4096, 65536};
  for (std::size_t nsrc = 1; nsrc <= 8; ++nsrc) {
    for (const std::size_t len : lengths) {
      for (const bool accumulate : {false, true}) {
        const std::size_t off = (3 * nsrc + len) % 16;
        std::vector<OffsetBuf> bufs;
        std::vector<std::span<const std::uint8_t>> srcs;
        std::vector<std::uint8_t> coeffs(nsrc);
        for (std::size_t j = 0; j < nsrc; ++j) {
          bufs.emplace_back(len, off, 11000 + 100 * j + len);
          srcs.push_back(bufs.back().view);
          coeffs[j] = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
        }
        // Force the special-cased coefficients onto the tested path.
        coeffs[0] = 0;
        if (nsrc > 1) coeffs[1] = 1;
        OffsetBuf dst(len, off, 12000 + len);
        std::vector<std::uint8_t> expect(len, 0);
        if (accumulate)
          expect.assign(dst.view.begin(), dst.view.end());
        for (std::size_t i = 0; i < len; ++i)
          for (std::size_t j = 0; j < nsrc; ++j)
            expect[i] ^= mul(coeffs[j], srcs[j][i]);
        encode_dot(tier, coeffs, srcs, dst.view, accumulate);
        ASSERT_TRUE(std::equal(dst.view.begin(), dst.view.end(),
                               expect.begin()))
            << "nsrc=" << nsrc << " len=" << len << " acc=" << accumulate;
      }
    }
  }
}

TEST_P(TierEquiv, EncodeDotAllZeroCoefficients) {
  const KernelTier tier = GetParam();
  const std::size_t len = 100;
  OffsetBuf src(len, 5, 13000);
  const std::span<const std::uint8_t> srcs[] = {src.view};
  const std::uint8_t coeffs[] = {0};
  OffsetBuf dst(len, 5, 13001);
  std::vector<std::uint8_t> before(dst.view.begin(), dst.view.end());
  encode_dot(tier, coeffs, srcs, dst.view, /*accumulate=*/true);
  EXPECT_TRUE(std::equal(dst.view.begin(), dst.view.end(), before.begin()));
  encode_dot(tier, coeffs, srcs, dst.view, /*accumulate=*/false);
  EXPECT_TRUE(region_is_zero(tier, dst.view));
}

TEST_P(TierEquiv, IsZeroSingleNonzeroByte) {
  const KernelTier tier = GetParam();
  for (std::size_t len = 0; len <= 257; ++len) {
    std::vector<std::uint8_t> buf(len + 16, 0);
    const std::size_t off = len % 16;
    const std::span<const std::uint8_t> view(buf.data() + off, len);
    EXPECT_TRUE(region_is_zero(tier, view)) << "len=" << len;
    // A single nonzero byte at every position must be caught.
    for (std::size_t pos = 0; pos < len; ++pos) {
      buf[off + pos] = 0xA5;
      ASSERT_FALSE(region_is_zero(tier, view))
          << "len=" << len << " pos=" << pos;
      buf[off + pos] = 0;
    }
  }
  for (const std::size_t len : kBigLengths) {
    std::vector<std::uint8_t> buf(len, 0);
    EXPECT_TRUE(region_is_zero(tier, buf));
    for (const std::size_t pos :
         {std::size_t{0}, len / 2, len - 1}) {
      buf[pos] = 1;
      ASSERT_FALSE(region_is_zero(tier, buf)) << "len=" << len
                                              << " pos=" << pos;
      buf[pos] = 0;
    }
  }
}

std::string tier_name(const ::testing::TestParamInfo<KernelTier>& info) {
  return std::string(to_string(info.param));
}

INSTANTIATE_TEST_SUITE_P(AllTiers, TierEquiv,
                         ::testing::ValuesIn(available_tiers()), tier_name);

// Cross-tier agreement on identical inputs: whatever available tiers
// exist must produce byte-identical dot products, since codecs promise
// results independent of dispatch.
TEST(TierCross, AllTiersAgreeOnEncodeDot) {
  const auto tiers = available_tiers();
  const std::size_t len = 65536 + 13;
  constexpr std::size_t kSrcs = 5;
  std::vector<std::vector<std::uint8_t>> bufs(kSrcs);
  std::vector<std::span<const std::uint8_t>> srcs(kSrcs);
  std::vector<std::uint8_t> coeffs(kSrcs);
  for (std::size_t j = 0; j < kSrcs; ++j) {
    bufs[j].resize(len);
    fill_pattern(500 + j, bufs[j].data(), len);
    srcs[j] = bufs[j];
    coeffs[j] = static_cast<std::uint8_t>(3 + 31 * j);
  }
  std::vector<std::uint8_t> reference(len);
  encode_dot(tiers.front(), coeffs, srcs, reference);
  for (const KernelTier tier : tiers) {
    std::vector<std::uint8_t> out(len, 0xCC);
    encode_dot(tier, coeffs, srcs, out);
    EXPECT_EQ(out, reference) << "tier=" << to_string(tier);
  }
}

}  // namespace
}  // namespace sma::gf
