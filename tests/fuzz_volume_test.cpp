// Model-based randomized testing of MirroredVolume: a long random
// sequence of range writes, range reads, element writes, disk failures
// (within tolerance), rebuilds, and scrubs is executed against the
// volume AND against a flat byte-vector shadow model. Every read must
// match the shadow; every rebuild/verify must succeed. Seeds are fixed
// so failures reproduce.
#include <gtest/gtest.h>

#include <vector>

#include "core/volume.hpp"
#include "recon/scrub.hpp"
#include "util/rng.hpp"

namespace sma::core {
namespace {

struct FuzzParams {
  int n;
  bool parity;
  bool shifted;
  std::uint64_t seed;
};

class VolumeFuzz : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(VolumeFuzz, RandomOpsMatchShadowModel) {
  const FuzzParams p = GetParam();
  VolumeConfig cfg;
  cfg.n = p.n;
  cfg.with_parity = p.parity;
  cfg.shifted = p.shifted;
  cfg.content_bytes = 32;
  cfg.seed = p.seed;
  auto volr = MirroredVolume::create(cfg);
  ASSERT_TRUE(volr.is_ok());
  auto vol = std::move(volr).take();

  // Shadow model: the linear data address space.
  const std::uint64_t cap = vol.capacity_bytes();
  std::vector<std::uint8_t> shadow(cap);
  {
    // Initial contents are the deterministic pattern; capture them via
    // a full read (exercises read_range at scale too).
    ASSERT_TRUE(vol.read_range(0, shadow).is_ok());
  }

  Rng rng(p.seed * 7919 + 17);
  const int tolerance = vol.arch().fault_tolerance();
  int failed_now = 0;

  for (int step = 0; step < 400; ++step) {
    const auto op = rng.next_below(100);
    if (op < 40) {
      // Random range write.
      const std::uint64_t len = 1 + rng.next_below(96);
      const std::uint64_t off = rng.next_below(cap - len);
      std::vector<std::uint8_t> payload(len);
      fill_pattern(rng.next_u64(), payload.data(), payload.size());
      ASSERT_TRUE(vol.write_range(off, payload).is_ok()) << "step " << step;
      std::copy(payload.begin(), payload.end(),
                shadow.begin() + static_cast<std::ptrdiff_t>(off));
    } else if (op < 80) {
      // Random range read, checked against the shadow.
      const std::uint64_t len = 1 + rng.next_below(96);
      const std::uint64_t off = rng.next_below(cap - len);
      std::vector<std::uint8_t> got(len);
      ASSERT_TRUE(vol.read_range(off, got).is_ok()) << "step " << step;
      ASSERT_TRUE(std::equal(got.begin(), got.end(),
                             shadow.begin() + static_cast<std::ptrdiff_t>(off)))
          << "step " << step << " offset " << off;
    } else if (op < 90) {
      // Fail a random healthy disk if tolerance allows.
      if (failed_now < tolerance) {
        const int disk = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(vol.arch().total_disks())));
        bool already = false;
        for (const int d : vol.failed_disks()) already |= (d == disk);
        if (!already) {
          vol.fail_disk(disk);
          ++failed_now;
        }
      }
    } else {
      // Rebuild everything that has failed.
      if (failed_now > 0) {
        auto report = vol.rebuild();
        ASSERT_TRUE(report.is_ok())
            << "step " << step << ": " << report.status().to_string();
        failed_now = 0;
      }
    }
  }

  // Drain: rebuild any remaining failures and do a full final audit.
  if (failed_now > 0) {
    ASSERT_TRUE(vol.rebuild().is_ok());
  }
  std::vector<std::uint8_t> final_read(cap);
  ASSERT_TRUE(vol.read_range(0, final_read).is_ok());
  EXPECT_EQ(final_read, shadow);
  EXPECT_TRUE(vol.verify().is_ok());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, VolumeFuzz,
    ::testing::Values(FuzzParams{3, false, true, 1},
                      FuzzParams{3, false, false, 2},
                      FuzzParams{4, true, true, 3},
                      FuzzParams{4, true, false, 4},
                      FuzzParams{5, true, true, 5},
                      FuzzParams{2, true, true, 6},
                      FuzzParams{7, false, true, 7},
                      FuzzParams{5, true, true, 99}),
    [](const ::testing::TestParamInfo<FuzzParams>& info) {
      const auto& p = info.param;
      return "n" + std::to_string(p.n) + (p.parity ? "_parity" : "_plain") +
             (p.shifted ? "_shifted" : "_trad") + "_seed" +
             std::to_string(p.seed);
    });

// The degraded-state variant: run reads/writes WHILE disks are failed,
// then rebuild and audit.
class DegradedFuzz : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(DegradedFuzz, DegradedOpsThenRebuildMatchShadow) {
  const FuzzParams p = GetParam();
  VolumeConfig cfg;
  cfg.n = p.n;
  cfg.with_parity = p.parity;
  cfg.shifted = p.shifted;
  cfg.content_bytes = 32;
  cfg.seed = p.seed;
  auto vol = MirroredVolume::create(cfg).take();
  const std::uint64_t cap = vol.capacity_bytes();
  std::vector<std::uint8_t> shadow(cap);
  ASSERT_TRUE(vol.read_range(0, shadow).is_ok());

  Rng rng(p.seed + 5);
  // Fail up to tolerance disks immediately.
  for (int f = 0; f < vol.arch().fault_tolerance(); ++f)
    vol.fail_disk(static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(vol.arch().total_disks()))));

  for (int step = 0; step < 150; ++step) {
    const std::uint64_t len = 1 + rng.next_below(64);
    const std::uint64_t off = rng.next_below(cap - len);
    if (rng.next_bool()) {
      std::vector<std::uint8_t> payload(len);
      fill_pattern(rng.next_u64(), payload.data(), payload.size());
      ASSERT_TRUE(vol.write_range(off, payload).is_ok()) << "step " << step;
      std::copy(payload.begin(), payload.end(),
                shadow.begin() + static_cast<std::ptrdiff_t>(off));
    } else {
      std::vector<std::uint8_t> got(len);
      ASSERT_TRUE(vol.read_range(off, got).is_ok()) << "step " << step;
      ASSERT_TRUE(std::equal(got.begin(), got.end(),
                             shadow.begin() + static_cast<std::ptrdiff_t>(off)))
          << "step " << step;
    }
  }

  ASSERT_TRUE(vol.rebuild().is_ok());
  std::vector<std::uint8_t> final_read(cap);
  ASSERT_TRUE(vol.read_range(0, final_read).is_ok());
  EXPECT_EQ(final_read, shadow);
  EXPECT_TRUE(vol.verify().is_ok());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DegradedFuzz,
    ::testing::Values(FuzzParams{3, false, true, 11},
                      FuzzParams{4, true, true, 12},
                      FuzzParams{4, true, false, 13},
                      FuzzParams{6, true, true, 14}),
    [](const ::testing::TestParamInfo<FuzzParams>& info) {
      const auto& p = info.param;
      return "n" + std::to_string(p.n) + (p.parity ? "_parity" : "_plain") +
             (p.shifted ? "_shifted" : "_trad") + "_seed" +
             std::to_string(p.seed);
    });

}  // namespace
}  // namespace sma::core
