#include "ec/update_penalty.hpp"

#include <gtest/gtest.h>

#include "ec/evenodd.hpp"
#include "ec/raid5.hpp"
#include "ec/rdp.hpp"
#include "ec/rs.hpp"

namespace sma::ec {
namespace {

TEST(UpdatePenalty, Raid5IsOptimal) {
  // RAID-5: exactly one parity element changes for any data change —
  // the theoretical optimum for single-fault tolerance.
  Raid5Codec codec(5, 4);
  auto penalty = measure_update_penalty(codec);
  ASSERT_TRUE(penalty.is_ok());
  EXPECT_EQ(penalty.value().min, 1);
  EXPECT_EQ(penalty.value().max, 1);
  EXPECT_DOUBLE_EQ(penalty.value().average, 1.0);
  EXPECT_EQ(optimal_parity_updates(codec.fault_tolerance()), 1);
}

TEST(UpdatePenalty, CauchyRsRowCodesAreOptimal) {
  // Each row is encoded independently: m parity elements change.
  CauchyRsCodec codec(4, 2, 3);
  auto penalty = measure_update_penalty(codec);
  ASSERT_TRUE(penalty.is_ok());
  EXPECT_EQ(penalty.value().min, 2);
  EXPECT_EQ(penalty.value().max, 2);
}

TEST(UpdatePenalty, EvenOddExceedsOptimal) {
  // The paper's Section II claim: EVENODD's second parity is not
  // update-optimal. Elements on the S diagonal perturb S and therefore
  // EVERY Q element: max = 1 (P) + (p-1) (all of Q).
  EvenOddCodec codec(5);  // p = 5
  auto penalty = measure_update_penalty(codec);
  ASSERT_TRUE(penalty.is_ok());
  EXPECT_EQ(penalty.value().max, 1 + (5 - 1));
  // Off-diagonal elements are optimal (P row + one Q diagonal).
  EXPECT_EQ(penalty.value().min, 2);
  EXPECT_GT(penalty.value().average,
            optimal_parity_updates(codec.fault_tolerance()));
}

TEST(UpdatePenalty, EvenOddDiagonalElementsAreExactlyTheSDiagonal) {
  // The penalized elements must be exactly those with i + j == p - 1
  // (the diagonal defining S), j being the row, i the column.
  const int p = 5;
  EvenOddCodec codec(p);
  auto penalty = measure_update_penalty(codec);
  ASSERT_TRUE(penalty.is_ok());
  for (int i = 0; i < p; ++i) {
    for (int j = 0; j < p - 1; ++j) {
      const int changed = penalty.value().changed[static_cast<std::size_t>(i)]
                                                 [static_cast<std::size_t>(j)];
      if ((i + j) % p == p - 1)
        EXPECT_EQ(changed, p) << i << "," << j;  // P + all Q
      else
        EXPECT_EQ(changed, 2) << i << "," << j;  // P + one Q
    }
  }
}

TEST(UpdatePenalty, RdpIsBetterThanEvenOddButNotOptimal) {
  // RDP's diagonals include P, so changing a data element changes P,
  // which sits on another diagonal: typically 3 updates (P, own Q
  // diagonal, P's Q diagonal); elements whose diagonals hit the
  // missing diagonal save one.
  RdpCodec codec(4);  // p = 5
  auto penalty = measure_update_penalty(codec);
  ASSERT_TRUE(penalty.is_ok());
  EXPECT_GE(penalty.value().min, 2);
  EXPECT_LE(penalty.value().max, 3);
  EXPECT_GT(penalty.value().average, 2.0);
  // RDP's worst case (3) is strictly better than EVENODD's (1 + p-1):
  // no S constant means no element can touch every Q cell.
  EvenOddCodec evenodd(4);
  auto eo = measure_update_penalty(evenodd);
  ASSERT_TRUE(eo.is_ok());
  EXPECT_LT(penalty.value().max, eo.value().max);
}

TEST(UpdatePenalty, DeterministicAcrossSeeds) {
  // The penalty is structural: the seed (content) must not matter.
  RdpCodec codec(5);
  auto a = measure_update_penalty(codec, 16, 1);
  auto b = measure_update_penalty(codec, 16, 999);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value().changed, b.value().changed);
}

}  // namespace
}  // namespace sma::ec
