// Serial-vs-parallel determinism of the experiment sweeps.
//
// The benches promise their CSVs are bit-identical whatever the thread
// count (ISSUE: parallel sweeps must not perturb published numbers).
// Each sweep here runs once with threads=1 (the serial reference) and
// once with threads=4, at a reduced element size so the whole file
// stays inside a unit-test budget, and the rendered tables — the exact
// bytes bench::emit writes — are compared as strings.
#include "recon/sweeps.hpp"

#include <gtest/gtest.h>

#include <string>

namespace sma::recon {
namespace {

SweepOptions small(std::size_t threads) {
  SweepOptions opt;
  opt.threads = threads;
  opt.element_bytes = 40'000;  // 100x smaller than the bench default
  opt.content_bytes = 64;
  return opt;
}

TEST(SweepDeterminism, ReliabilityParallelMatchesSerial) {
  auto serial = reliability_sweep({3, 5}, 17.0, small(1));
  auto parallel = reliability_sweep({3, 5}, 17.0, small(4));
  ASSERT_TRUE(serial.is_ok()) << serial.status().to_string();
  ASSERT_TRUE(parallel.is_ok()) << parallel.status().to_string();
  EXPECT_EQ(serial.value().render(), parallel.value().render());
  EXPECT_EQ(serial.value().row_count(), 8u);  // 4 architectures x 2 sizes
}

TEST(SweepDeterminism, Table1ParallelMatchesSerial) {
  auto serial = table1_sweep(3, 6, small(1));
  auto parallel = table1_sweep(3, 6, small(4));
  ASSERT_TRUE(serial.is_ok()) << serial.status().to_string();
  ASSERT_TRUE(parallel.is_ok()) << parallel.status().to_string();
  EXPECT_EQ(serial.value().table.render(), parallel.value().table.render());
  EXPECT_EQ(serial.value().avg.render(), parallel.value().avg.render());
}

TEST(SweepDeterminism, RebuildFaultsParallelMatchesSerial) {
  auto serial = rebuild_faults_sweep({0.0, 0.01}, 5, 1, small(1));
  auto parallel = rebuild_faults_sweep({0.0, 0.01}, 5, 1, small(4));
  ASSERT_TRUE(serial.is_ok()) << serial.status().to_string();
  ASSERT_TRUE(parallel.is_ok()) << parallel.status().to_string();
  EXPECT_EQ(serial.value().render(), parallel.value().render());
  EXPECT_EQ(serial.value().row_count(), 4u);  // 2 rates x 2 arrangements
}

TEST(SweepDeterminism, ScrubParallelMatchesSerial) {
  auto serial = scrub_sweep(5, {0, 5}, small(1));
  auto parallel = scrub_sweep(5, {0, 5}, small(4));
  ASSERT_TRUE(serial.is_ok()) << serial.status().to_string();
  ASSERT_TRUE(parallel.is_ok()) << parallel.status().to_string();
  EXPECT_EQ(serial.value().render(), parallel.value().render());
}

// Running the same sweep twice at the same thread count must also be
// stable — per-case seeding may not leak any cross-run state.
TEST(SweepDeterminism, RepeatedParallelRunsAreStable) {
  auto first = scrub_sweep(5, {0, 5}, small(4));
  auto second = scrub_sweep(5, {0, 5}, small(4));
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(first.value().render(), second.value().render());
}

}  // namespace
}  // namespace sma::recon
