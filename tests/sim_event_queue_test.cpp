#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "sim/task.hpp"
#include "util/rng.hpp"

namespace sma::sim {
namespace {

Event make_event(double when, std::uint64_t seq) {
  return Event{when, seq, Task([] {})};
}

// --- Task / TaskArena -------------------------------------------------

TEST(Task, SmallCallablesStayInline) {
  int hits = 0;
  Task t([&hits] { ++hits; });
  EXPECT_TRUE(t.inline_stored());
  t();
  t();
  EXPECT_EQ(hits, 2);
}

TEST(Task, RepresentativeSimulatorCaptureUsesArenaFreeList) {
  // The online simulators' completion lambdas capture a by-value job
  // struct plus ~10 references — far past kInlineBytes, so they take
  // the arena path. What matters is that the path is malloc-free in
  // steady state: blocks recycle through the free list (one slab, no
  // oversize round-trips), where std::function would heap-allocate per
  // event.
  struct Job {
    std::int64_t slot;
    int kind, request_id, stripe, data_disk, row, attempts;
  };
  Job job{1, 2, 3, 4, 5, 6, 7};
  void* refs[9] = {};
  TaskArena arena;
  int hits = 0;
  for (int i = 0; i < 100; ++i) {
    Task t([job, refs, &hits] {
      ++hits;
      (void)job;
      (void)refs;
    },
           &arena);
    EXPECT_FALSE(t.inline_stored());
    t();
  }
  EXPECT_EQ(hits, 100);
  EXPECT_EQ(arena.slab_count(), 1u);
  EXPECT_EQ(arena.oversize_allocs(), 0u);
}

TEST(Task, OversizedCallableUsesArena) {
  TaskArena arena;
  char big[256] = {1};
  int hits = 0;
  Task t([big, &hits] { hits += big[0]; }, &arena);
  EXPECT_FALSE(t.inline_stored());
  t();
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(arena.slab_count(), 1u);
  EXPECT_EQ(arena.oversize_allocs(), 0u);
}

TEST(Task, MoveTransfersTheCallable) {
  int hits = 0;
  Task a([&hits] { ++hits; });
  Task b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(TaskArena, RecyclesReleasedBlocks) {
  TaskArena arena;
  void* p = arena.allocate(200);
  arena.release(p, 200);
  // Same size class comes back off the free list: no new slab.
  void* q = arena.allocate(200);
  EXPECT_EQ(p, q);
  EXPECT_EQ(arena.slab_count(), 1u);
  arena.release(q, 200);
}

// --- ordering property: calendar vs reference heap --------------------

/// Drives both queues through an identical schedule and asserts every
/// extraction matches. Mixes the adversarial shapes the simulators
/// produce: same-instant FIFO ties, near ties, short horizons, far
/// horizons, and schedule-during-dispatch (pushes at or just after the
/// time that was just popped).
void fuzz_against_reference(std::uint64_t seed, int steps) {
  Rng rng(seed);
  CalendarQueue cal;
  BinaryHeapQueue heap;
  std::uint64_t seq = 0;
  double now = 0.0;
  auto push_both = [&](double when) {
    cal.push(make_event(when, seq));
    heap.push(make_event(when, seq));
    ++seq;
  };
  auto pop_both = [&]() {
    ASSERT_FALSE(cal.empty());
    ASSERT_FALSE(heap.empty());
    const Event a = cal.pop_min();
    const Event b = heap.pop_min();
    ASSERT_EQ(a.when, b.when) << "seed " << seed;
    ASSERT_EQ(a.seq, b.seq) << "seed " << seed;
    ASSERT_GE(a.when, now);
    now = a.when;
  };
  for (int i = 0; i < steps; ++i) {
    if (cal.empty() || rng.next_double() < 0.55) {
      const double u = rng.next_double();
      double when;
      if (u < 0.2)
        when = now;  // same-instant tie
      else if (u < 0.3)
        when = now + 1e-9;  // near tie
      else if (u < 0.7)
        when = now + rng.next_double() * 10.0;  // typical horizon
      else
        when = now + rng.next_double() * 1e6;  // far future
      push_both(when);
    } else {
      pop_both();
      // Schedule-during-dispatch: a handler enqueueing follow-up work
      // at (or immediately after) its own fire time.
      if (rng.next_double() < 0.4) push_both(now + rng.next_double() * 2.0);
      if (rng.next_double() < 0.1) push_both(now);
    }
  }
  while (!cal.empty()) pop_both();
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(cal.size(), 0u);
}

TEST(EventQueue, CalendarMatchesReferenceHeapOnRandomSchedules) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed)
    fuzz_against_reference(seed, 4000);
}

TEST(EventQueue, SameTimeEventsPopInFifoOrder) {
  CalendarQueue cal;
  for (std::uint64_t s = 0; s < 100; ++s) cal.push(make_event(7.0, s));
  for (std::uint64_t s = 0; s < 100; ++s) {
    const Event ev = cal.pop_min();
    EXPECT_EQ(ev.seq, s);
    EXPECT_EQ(ev.when, 7.0);
  }
  EXPECT_TRUE(cal.empty());
}

TEST(EventQueue, GrowShrinkCyclesPreserveOrder) {
  // Push far past the resize threshold, drain halfway (forcing
  // shrinks), refill, then drain fully — extraction order must stay
  // globally sorted throughout.
  Rng rng(99);
  CalendarQueue cal;
  std::uint64_t seq = 0;
  for (int i = 0; i < 3000; ++i)
    cal.push(make_event(rng.next_double() * 1e4, seq++));
  EXPECT_GT(cal.resizes(), 0u);
  double last = -1.0;
  for (int i = 0; i < 1500; ++i) {
    const Event ev = cal.pop_min();
    EXPECT_GE(ev.when, last);
    last = ev.when;
  }
  for (int i = 0; i < 3000; ++i)
    cal.push(make_event(last + rng.next_double() * 1e4, seq++));
  while (!cal.empty()) {
    const Event ev = cal.pop_min();
    EXPECT_GE(ev.when, last);
    last = ev.when;
  }
}

TEST(EventQueue, SparseFarFutureEventsStillExtractInOrder) {
  // Events spread over wildly different magnitudes force the
  // year-scan's direct-search fallback.
  CalendarQueue cal;
  cal.push(make_event(1e12, 0));
  cal.push(make_event(3.0, 1));
  cal.push(make_event(1e7, 2));
  cal.push(make_event(3.0, 3));
  EXPECT_EQ(cal.pop_min().seq, 1u);
  EXPECT_EQ(cal.pop_min().seq, 3u);
  EXPECT_EQ(cal.pop_min().seq, 2u);
  EXPECT_EQ(cal.pop_min().seq, 0u);
  EXPECT_TRUE(cal.empty());
}

}  // namespace
}  // namespace sma::sim
