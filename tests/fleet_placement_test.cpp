#include "fleet/placement.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace sma::fleet {
namespace {

PlacementConfig config(PlacementPolicy policy) {
  PlacementConfig cfg;
  cfg.policy = policy;
  cfg.arrays = 8;
  cfg.volumes = 32;
  cfg.segments_per_volume = 8;
  cfg.spread = 4;
  return cfg;
}

TEST(FleetPlacement, PolicyNamesRoundTrip) {
  for (const auto p :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kRandom,
        PlacementPolicy::kDeclustered}) {
    const auto back = placement_policy_from(to_string(p));
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value(), p);
  }
  EXPECT_FALSE(placement_policy_from("zoned").is_ok());
}

TEST(FleetPlacement, RoundRobinPlacesWholeVolumes) {
  const auto p = build_placement(config(PlacementPolicy::kRoundRobin));
  ASSERT_TRUE(p.is_ok());
  const Placement& pl = p.value();
  for (int v = 0; v < 32; ++v) {
    ASSERT_EQ(pl.arrays_of(v).size(), 1u) << "volume " << v;
    EXPECT_EQ(pl.arrays_of(v)[0], v % 8);
    for (int s = 0; s < 8; ++s) EXPECT_EQ(pl.array_of(v, s), v % 8);
  }
}

TEST(FleetPlacement, DeclusteredSpreadsOverRotatedGroup) {
  const auto p = build_placement(config(PlacementPolicy::kDeclustered));
  ASSERT_TRUE(p.is_ok());
  const Placement& pl = p.value();
  for (int v = 0; v < 32; ++v) {
    // Volume v occupies exactly the k consecutive arrays starting at
    // v mod A (the rotated diagonal group).
    std::set<int> expect;
    for (int j = 0; j < 4; ++j) expect.insert((v + j) % 8);
    const auto& got = pl.arrays_of(v);
    EXPECT_EQ(std::set<int>(got.begin(), got.end()), expect) << "volume " << v;
    // ... and each array holds exactly segments/spread of its segments,
    // so one rebuilding array degrades exactly 1/spread of the volume.
    for (const int a : got) {
      int on_a = 0;
      for (int s = 0; s < 8; ++s)
        if (pl.array_of(v, s) == a) ++on_a;
      EXPECT_EQ(on_a, 8 / 4);
    }
  }
}

TEST(FleetPlacement, DeclusteredLossSpreadsAcrossPeers) {
  const auto p = build_placement(config(PlacementPolicy::kDeclustered));
  ASSERT_TRUE(p.is_ok());
  const Placement& pl = p.value();
  for (int a = 0; a < 8; ++a) {
    // Every volume hosted by a rebuilding array keeps segments on
    // spread-1 distinct peer arrays, and collectively the hosted
    // volumes' survivors span the 2*(spread-1) arrays around it —
    // the rotated-diagonal analogue of the paper's P1 spreading.
    std::set<int> peers;
    for (const int v : pl.volumes_on(a)) {
      std::set<int> others(pl.arrays_of(v).begin(), pl.arrays_of(v).end());
      others.erase(a);
      EXPECT_EQ(others.size(), 3u) << "volume " << v << " array " << a;
      peers.insert(others.begin(), others.end());
    }
    EXPECT_EQ(peers.size(), 6u) << "array " << a;
  }
}

TEST(FleetPlacement, BalancedWhenShapesDivide) {
  for (const auto policy :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kDeclustered}) {
    const auto p = build_placement(config(policy));
    ASSERT_TRUE(p.is_ok());
    // 32 volumes x 8 segments over 8 arrays: every array holds exactly
    // 32 segments under both deterministic policies.
    for (int a = 0; a < 8; ++a)
      EXPECT_EQ(p.value().segments_on(a), 32) << to_string(policy);
  }
}

TEST(FleetPlacement, RandomIsSeedDeterministic) {
  PlacementConfig cfg = config(PlacementPolicy::kRandom);
  const auto a = build_placement(cfg);
  const auto b = build_placement(cfg);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  int diff_same_seed = 0;
  for (int v = 0; v < 32; ++v)
    for (int s = 0; s < 8; ++s)
      if (a.value().array_of(v, s) != b.value().array_of(v, s))
        ++diff_same_seed;
  EXPECT_EQ(diff_same_seed, 0);

  cfg.seed = 777;
  const auto c = build_placement(cfg);
  ASSERT_TRUE(c.is_ok());
  int diff_other_seed = 0;
  for (int v = 0; v < 32; ++v)
    for (int s = 0; s < 8; ++s)
      if (a.value().array_of(v, s) != c.value().array_of(v, s))
        ++diff_other_seed;
  EXPECT_GT(diff_other_seed, 0);
}

TEST(FleetPlacement, RejectsBadShapes) {
  PlacementConfig cfg = config(PlacementPolicy::kDeclustered);
  cfg.arrays = 0;
  EXPECT_EQ(build_placement(cfg).status().code(),
            ErrorCode::kInvalidArgument);
  cfg = config(PlacementPolicy::kDeclustered);
  cfg.volumes = -1;
  EXPECT_EQ(build_placement(cfg).status().code(),
            ErrorCode::kInvalidArgument);
  cfg = config(PlacementPolicy::kDeclustered);
  cfg.spread = 9;  // > arrays
  EXPECT_EQ(build_placement(cfg).status().code(),
            ErrorCode::kInvalidArgument);
  cfg = config(PlacementPolicy::kRoundRobin);
  cfg.spread = 9;  // spread is a declustered-only knob: ignored here
  EXPECT_TRUE(build_placement(cfg).is_ok());
}

}  // namespace
}  // namespace sma::fleet
