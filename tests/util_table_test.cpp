#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace sma {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t("demo");
  t.set_header({"n", "value"});
  t.add_row({"3", "1.54"});
  t.add_row({"70", "4.55"});
  const std::string out = t.render();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("n"), std::string::npos);
  EXPECT_NE(out.find("4.55"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, NumFormatsFixedPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(1.0, 0), "1");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::num(-7), "-7");
}

TEST(Table, CsvRoundTrip) {
  Table t;
  t.set_header({"a", "b"});
  t.add_row({"1", "x,y"});
  t.add_row({"2", "with \"quotes\""});
  const std::string path = testing::TempDir() + "sma_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));

  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string csv = ss.str();
  EXPECT_NE(csv.find("a,b"), std::string::npos);
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"with \"\"quotes\"\"\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Table, CsvFailsOnBadPath) {
  Table t;
  t.add_row({"1"});
  EXPECT_FALSE(t.write_csv("/nonexistent-dir-zzz/out.csv"));
}

TEST(Table, RowCountTracksRows) {
  Table t;
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"only"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.rows()[0][0], "only");
}

}  // namespace
}  // namespace sma
