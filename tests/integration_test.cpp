// Cross-module integration tests: the paper's end-to-end claims
// exercised through the full stack (layout -> array -> recon ->
// workload) rather than module by module.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/volume.hpp"
#include "util/rng.hpp"
#include "recon/analytic.hpp"
#include "recon/executor.hpp"
#include "recon/failure.hpp"
#include "util/thread_pool.hpp"
#include "workload/write_executor.hpp"

namespace sma {
namespace {

array::ArrayConfig cfg_for(layout::Architecture arch) {
  array::ArrayConfig cfg;
  cfg.arch = arch;
  cfg.stripes = arch.total_disks();
  cfg.content_bytes = 64;
  cfg.logical_element_bytes = 4'000'000;
  cfg.seed = 1234;
  return cfg;
}

// The measured per-stripe read accesses of the executor must equal the
// analytic planner's counts — the simulation and the theory are the
// same model.
TEST(Integration, ExecutorAccessCountsMatchAnalyticTable) {
  for (int n : {3, 5}) {
    const auto arch = layout::Architecture::mirror_with_parity(n, true);
    for (const auto& failed : recon::enumerate_double_failures(arch)) {
      // Rotation off: with it, the same physical pair plays a different
      // failure class per stripe and the executor reports the max.
      auto cfg = cfg_for(arch);
      cfg.rotate = false;
      array::DiskArray arr(cfg);
      arr.initialize();
      for (const int d : failed) arr.fail_physical(d);
      auto report = recon::reconstruct(arr);
      ASSERT_TRUE(report.is_ok());
      const int expected =
          recon::classify(arch, failed) == recon::FailureClass::kF1 ? 1 : 2;
      EXPECT_EQ(report.value().read_accesses_per_stripe, expected)
          << "n=" << n << " failed " << failed[0] << "," << failed[1];
    }
  }
}

// Measured throughput ratio grows with n for the mirror method, as in
// Fig. 9(a): the shifted curve rises while the traditional stays flat.
TEST(Integration, ThroughputGapGrowsWithN) {
  auto measured = [](int n, bool shifted) {
    const auto arch = layout::Architecture::mirror(n, shifted);
    array::DiskArray arr(cfg_for(arch));
    arr.initialize();
    arr.fail_physical(0);
    auto report = recon::reconstruct(arr);
    EXPECT_TRUE(report.is_ok());
    return report.value().read_throughput_mbps();
  };
  const double t3 = measured(3, false);
  const double t7 = measured(7, false);
  const double s3 = measured(3, true);
  const double s7 = measured(7, true);
  // Traditional is pinned near the disk's streaming read rate.
  EXPECT_NEAR(t3, t7, 5.0);
  EXPECT_NEAR(t3, 54.8, 8.0);
  // Shifted scales roughly with n.
  EXPECT_GT(s7 / s3, 1.8);
  EXPECT_GT(s3 / t3, 1.5);
  EXPECT_GT(s7 / t7, 3.0);
}

// Rebuild correctness survives user writes made before the failure:
// consistency-level verification through the volume facade.
TEST(Integration, WriteThenFailThenRebuild) {
  core::VolumeConfig vc;
  vc.n = 4;
  vc.with_parity = true;
  vc.shifted = true;
  vc.content_bytes = 64;
  auto volr = core::MirroredVolume::create(vc);
  ASSERT_TRUE(volr.is_ok());
  auto& vol = volr.value();

  std::vector<std::uint8_t> payload(64);
  for (int k = 0; k < 20; ++k) {
    fill_pattern(1000 + static_cast<unsigned>(k), payload.data(),
                 payload.size());
    const int d = k % 4;
    const int s = k % vol.stripes();
    const int r = (k * 7) % 4;
    ASSERT_TRUE(vol.write_element(d, s, r, payload).is_ok());
  }
  ASSERT_TRUE(vol.verify().is_ok());

  vol.fail_disk(1);
  vol.fail_disk(6);
  auto report = vol.rebuild();
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  // The rebuild recovers the *current* contents (user writes included);
  // mirror/parity consistency must hold exactly afterwards.
  EXPECT_TRUE(vol.verify().is_ok());
}

// Stack rotation: failing the same physical disk exercises every
// logical role, so per-stripe plans differ but all rebuild cleanly.
TEST(Integration, StackRotationCoversAllLogicalRoles) {
  const auto arch = layout::Architecture::mirror_with_parity(3, true);
  array::DiskArray arr(cfg_for(arch));
  arr.initialize();
  std::set<int> roles_seen;
  for (int s = 0; s < arr.stripes(); ++s)
    roles_seen.insert(arr.logical_disk(4, s));
  EXPECT_EQ(roles_seen.size(), static_cast<std::size_t>(arch.total_disks()));
  arr.fail_physical(4);
  auto report = recon::reconstruct(arr);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(arr.verify_all().is_ok());
}

// Determinism: identical configuration gives bit-identical simulation
// results even when scenarios are dispatched across threads.
TEST(Integration, ParallelScenarioSweepIsDeterministic) {
  const auto arch = layout::Architecture::mirror_with_parity(3, true);
  const auto failures = recon::enumerate_double_failures(arch);
  std::vector<double> a(failures.size());
  std::vector<double> b(failures.size());
  auto sweep = [&](std::vector<double>& out) {
    parallel_for(failures.size(), [&](std::size_t i) {
      array::DiskArray arr(cfg_for(arch));
      arr.initialize();
      for (const int d : failures[i]) arr.fail_physical(d);
      auto report = recon::reconstruct(arr);
      ASSERT_TRUE(report.is_ok());
      out[i] = report.value().read_throughput_mbps();
    });
  };
  sweep(a);
  sweep(b);
  EXPECT_EQ(a, b);
}

// Writes and reconstruction do not interfere: running the write
// workload (timing-only) then failing and rebuilding verifies clean.
TEST(Integration, WriteWorkloadThenRebuild) {
  const auto arch = layout::Architecture::mirror_with_parity(4, true);
  array::DiskArray arr(cfg_for(arch));
  arr.initialize();
  workload::WriteWorkloadConfig wcfg;
  wcfg.arrival.max_requests = 100;
  const auto reqs = workload::generate_large_writes(arr, wcfg);
  const auto wreport = workload::run_write_workload(arr, reqs);
  EXPECT_GT(wreport.write_throughput_mbps(), 0.0);
  arr.fail_physical(0);
  auto report = recon::reconstruct(arr);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(arr.verify_all().is_ok());
}

// The paper's improvement-band sanity: measured double-failure average
// accesses equal the closed forms feeding Fig. 7.
TEST(Integration, MeasuredAveragesMatchClosedForms) {
  for (int n : {3, 4, 5, 6, 7}) {
    const auto shifted = recon::enumerate_double_failure_cases(
        layout::Architecture::mirror_with_parity(n, true));
    EXPECT_NEAR(shifted.average_read_accesses, 4.0 * n / (2 * n + 1), 1e-12);
    const auto traditional = recon::enumerate_double_failure_cases(
        layout::Architecture::mirror_with_parity(n, false));
    EXPECT_NEAR(traditional.average_read_accesses, n, 1e-12);
  }
}

}  // namespace
}  // namespace sma
