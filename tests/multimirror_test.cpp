#include "multimirror/multi_array.hpp"
#include "multimirror/multi_mirror.hpp"
#include "multimirror/multi_online.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace sma::mm {
namespace {

MultiMirror make(int n, int replicas, bool shifted) {
  MultiMirrorConfig cfg;
  cfg.n = n;
  cfg.replica_arrays = replicas;
  cfg.shifted = shifted;
  auto m = MultiMirror::create(cfg);
  EXPECT_TRUE(m.is_ok()) << m.status().to_string();
  return std::move(m).take();
}

TEST(MultiMirror, CreateValidates) {
  MultiMirrorConfig cfg;
  cfg.n = 0;
  EXPECT_FALSE(MultiMirror::create(cfg).is_ok());
  cfg.n = 3;
  cfg.replica_arrays = 0;
  EXPECT_FALSE(MultiMirror::create(cfg).is_ok());
  // n = 4 has units {1, 3}: at most 2 orthogonal shifted arrays.
  cfg.n = 4;
  cfg.replica_arrays = 3;
  cfg.shifted = true;
  EXPECT_FALSE(MultiMirror::create(cfg).is_ok());
  cfg.replica_arrays = 2;
  EXPECT_TRUE(MultiMirror::create(cfg).is_ok());
  // Traditional mode has no multiplier constraint.
  cfg.replica_arrays = 3;
  cfg.shifted = false;
  EXPECT_TRUE(MultiMirror::create(cfg).is_ok());
}

TEST(MultiMirror, ShapeAndNames) {
  const auto m = make(5, 2, true);
  EXPECT_EQ(m.total_disks(), 15);
  EXPECT_EQ(m.fault_tolerance(), 2);
  EXPECT_DOUBLE_EQ(m.storage_efficiency(), 1.0 / 3.0);
  EXPECT_EQ(m.name(), "shifted-3-mirror(n=5)");
  EXPECT_EQ(make(3, 1, false).name(), "traditional-2-mirror(n=3)");
}

TEST(MultiMirror, ReplicaArrayOneMatchesPaperShiftedArrangement) {
  // c_1 = 1: array 1 must reproduce the paper's shifted arrangement.
  const auto m = make(4, 2, true);
  layout::ShiftedArrangement paper(4);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) {
      const layout::Pos mp = m.replica_of(1, i, j);
      const layout::Pos pp = paper.mirror_of(i, j);
      EXPECT_EQ(mp.disk - 4, pp.disk);  // array 1 global offset = n
      EXPECT_EQ(mp.row, pp.row);
    }
}

TEST(MultiMirror, SourceOfInvertsReplicaOf) {
  for (const bool shifted : {false, true}) {
    const auto m = make(5, 2, shifted);
    for (int r = 1; r <= 2; ++r)
      for (int i = 0; i < 5; ++i)
        for (int j = 0; j < 5; ++j) {
          const layout::Pos p = m.replica_of(r, i, j);
          const layout::Pos src = m.source_of(r, m.local_index(p.disk), p.row);
          EXPECT_EQ(src, (layout::Pos{i, j}));
        }
  }
}

TEST(MultiMirror, EveryReplicaArrayIsBijective) {
  const auto m = make(5, 2, true);
  for (int r = 1; r <= 2; ++r) {
    std::set<std::pair<int, int>> cells;
    for (int i = 0; i < 5; ++i)
      for (int j = 0; j < 5; ++j) {
        const layout::Pos p = m.replica_of(r, i, j);
        EXPECT_TRUE(cells.insert({p.disk, p.row}).second);
      }
    EXPECT_EQ(cells.size(), 25u);
  }
}

TEST(MultiMirror, AffineArraysSatisfyP1Analogue) {
  // Replicas of one data disk land on all n disks of each replica array.
  const auto m = make(7, 2, true);
  for (int r = 1; r <= 2; ++r) {
    for (int i = 0; i < 7; ++i) {
      std::set<int> disks;
      for (int j = 0; j < 7; ++j) disks.insert(m.replica_of(r, i, j).disk);
      EXPECT_EQ(disks.size(), 7u) << "array " << r << " data disk " << i;
    }
  }
}

TEST(MultiMirror, OrthogonalityOneOverlapPerDiskPair) {
  // A data disk x and a replica disk y in array r share exactly one
  // element per stripe; two replica disks in different arrays share
  // exactly one source element.
  const auto m = make(5, 2, true);
  for (int x = 0; x < 5; ++x) {
    for (int r = 1; r <= 2; ++r) {
      for (int local = 0; local < 5; ++local) {
        int overlap = 0;
        for (int j = 0; j < 5; ++j)
          if (m.replica_of(r, x, j).disk == m.replica_disk(r, local))
            ++overlap;
        EXPECT_EQ(overlap, 1);
      }
    }
  }
  // Cross-array: disks y1 (array 1) and y2 (array 2).
  for (int y1 = 0; y1 < 5; ++y1) {
    for (int y2 = 0; y2 < 5; ++y2) {
      int shared_sources = 0;
      for (int row1 = 0; row1 < 5; ++row1) {
        const layout::Pos s1 = m.source_of(1, y1, row1);
        for (int row2 = 0; row2 < 5; ++row2)
          if (m.source_of(2, y2, row2) == s1) ++shared_sources;
      }
      EXPECT_EQ(shared_sources, 1) << y1 << "," << y2;
    }
  }
}

class MultiPlanN : public ::testing::TestWithParam<int> {};

TEST_P(MultiPlanN, ShiftedSingleFailureIsOneAccess) {
  const int n = GetParam();
  const auto m = make(n, 2, true);
  for (int d = 0; d < m.total_disks(); ++d) {
    auto plan = m.plan({d});
    ASSERT_TRUE(plan.is_ok()) << d;
    EXPECT_EQ(plan.value().read_accesses, 1) << "disk " << d;
  }
}

TEST_P(MultiPlanN, ShiftedDoubleFailureAtMostTwoAccesses) {
  const int n = GetParam();
  const auto m = make(n, 2, true);
  for (int a = 0; a < m.total_disks(); ++a)
    for (int b = a + 1; b < m.total_disks(); ++b) {
      auto plan = m.plan({a, b});
      ASSERT_TRUE(plan.is_ok()) << a << "," << b;
      EXPECT_LE(plan.value().read_accesses, 2) << a << "," << b;
    }
}

TEST_P(MultiPlanN, TraditionalSingleFailureNeedsCeilNOverRAccesses) {
  // The greedy planner splits the lost column across the R identical
  // copies, so ceil(n / R) reads land on the busiest disk — still far
  // worse than the shifted arrangement's 1.
  const int n = GetParam();
  const auto m = make(n, 2, false);
  auto plan = m.plan({0});
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan.value().read_accesses, (n + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(N, MultiPlanN, ::testing::Values(3, 4, 5, 7));

TEST(MultiPlan, TripleFailureBeyondToleranceRejected) {
  const auto m = make(5, 2, true);
  auto plan = m.plan({0, 1, 2});
  EXPECT_FALSE(plan.is_ok());
  EXPECT_EQ(plan.status().code(), ErrorCode::kUnrecoverable);
}

TEST(MultiPlan, SharedReadsAreDeduplicated) {
  // Traditional: failing data disk 0 and its copy in array 1 leaves the
  // copy in array 2; every lost element of both disks is fed by ONE
  // read of the surviving copy.
  const auto m = make(4, 2, false);
  auto plan = m.plan({0, m.replica_disk(1, 0)});
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan.value().unique_reads.size(), 4u);
  EXPECT_EQ(plan.value().recoveries.size(), 8u);  // 2 disks x 4 rows
  EXPECT_EQ(plan.value().read_accesses, 4);       // all on one disk
}

TEST(MultiPlan, MalformedInputRejected) {
  const auto m = make(3, 2, true);
  EXPECT_EQ(m.plan({-1}).status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(m.plan({99}).status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(m.plan({1, 1}).status().code(), ErrorCode::kInvalidArgument);
}

TEST(MultiPlan, DoubleFailureCaseTable) {
  const auto shifted = make(5, 2, true);
  long total_cases = 0;
  for (const auto& row : shifted.enumerate_double_failure_cases()) {
    total_cases += row.cases;
    EXPECT_LE(row.max_accesses, 2) << row.label;
    EXPECT_GE(row.min_accesses, 1) << row.label;
  }
  EXPECT_EQ(total_cases, 15 * 14 / 2);

  const auto trad = make(5, 2, false);
  int worst = 0;
  for (const auto& row : trad.enumerate_double_failure_cases())
    worst = std::max(worst, row.max_accesses);
  // Losing a data disk together with one of its copies forces the
  // whole column onto the single remaining copy: n accesses.
  EXPECT_EQ(worst, 5);
}

TEST(MultiPlan, CaseTableClassCounts) {
  const auto m = make(4, 2, true);  // 12 disks
  std::map<std::string, long> counts;
  for (const auto& row : m.enumerate_double_failure_cases())
    counts[row.label] = row.cases;
  EXPECT_EQ(counts["both data"], 6);                // C(4,2)
  EXPECT_EQ(counts["data + replica array"], 32);    // 4 * 8
  EXPECT_EQ(counts["same replica array"], 12);      // 2 * C(4,2)
  EXPECT_EQ(counts["two replica arrays"], 16);      // 4 * 4
}

MultiArrayConfig array_cfg(int n, int replicas, bool shifted) {
  MultiArrayConfig cfg;
  cfg.layout.n = n;
  cfg.layout.replica_arrays = replicas;
  cfg.layout.shifted = shifted;
  cfg.content_bytes = 64;
  return cfg;
}

TEST(MultiArray, InitializeAndVerify) {
  auto arr = MultiMirrorArray::create(array_cfg(4, 2, true));
  ASSERT_TRUE(arr.is_ok());
  arr.value().initialize();
  EXPECT_TRUE(arr.value().verify_all().is_ok());
}

TEST(MultiArray, VerifyCatchesCorruption) {
  auto arrr = MultiMirrorArray::create(array_cfg(3, 2, true));
  ASSERT_TRUE(arrr.is_ok());
  auto& arr = arrr.value();
  arr.initialize();
  arr.content(4, 1, 1)[0] ^= 0x01;
  EXPECT_EQ(arr.verify_all().code(), ErrorCode::kCorruption);
}

class MultiArrayRebuild
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(MultiArrayRebuild, EveryDoubleFailureRebuildsAndVerifies) {
  const auto [n, shifted] = GetParam();
  auto proto = array_cfg(n, 2, shifted);
  const int total = (2 + 1) * n;
  for (int a = 0; a < total; ++a) {
    for (int b = a + 1; b < total; ++b) {
      auto arrr = MultiMirrorArray::create(proto);
      ASSERT_TRUE(arrr.is_ok());
      auto& arr = arrr.value();
      arr.initialize();
      arr.fail_physical(a);
      arr.fail_physical(b);
      auto report = arr.reconstruct();
      ASSERT_TRUE(report.is_ok())
          << a << "," << b << ": " << report.status().to_string();
      EXPECT_TRUE(arr.failed_physical().empty());
      EXPECT_GT(report.value().read_throughput_mbps(), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MultiArrayRebuild,
    ::testing::Combine(::testing::Values(3, 4), ::testing::Bool()));

TEST(MultiArray, ShiftedRebuildsFasterThanTraditional) {
  double mbps[2];
  for (const bool shifted : {false, true}) {
    auto arrr = MultiMirrorArray::create(array_cfg(5, 2, shifted));
    ASSERT_TRUE(arrr.is_ok());
    auto& arr = arrr.value();
    arr.initialize();
    arr.fail_physical(0);
    auto report = arr.reconstruct();
    ASSERT_TRUE(report.is_ok());
    mbps[shifted ? 1 : 0] = report.value().read_throughput_mbps();
  }
  EXPECT_GT(mbps[1], 1.3 * mbps[0]);
}

TEST(MultiArray, DegradedReadsCompleteWithTwoFailures) {
  auto arrr = MultiMirrorArray::create(array_cfg(5, 2, true));
  ASSERT_TRUE(arrr.is_ok());
  auto& arr = arrr.value();
  arr.initialize();
  arr.fail_physical(0);
  arr.fail_physical(7);
  auto report = arr.run_degraded_reads(1000, 3);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_GT(report.value().degraded_reads, 0u);
  EXPECT_GT(report.value().throughput_mbps(), 0.0);
  EXPECT_GE(report.value().load_imbalance, 1.0);
}

TEST(MultiArray, DegradedReadsHealthyArrayNoRedirects) {
  auto arrr = MultiMirrorArray::create(array_cfg(4, 2, true));
  ASSERT_TRUE(arrr.is_ok());
  arrr.value().initialize();
  auto report = arrr.value().run_degraded_reads(200, 9);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().degraded_reads, 0u);
}

TEST(MultiArray, DegradedReadsRejectOverTolerance) {
  auto arrr = MultiMirrorArray::create(array_cfg(3, 2, true));
  ASSERT_TRUE(arrr.is_ok());
  auto& arr = arrr.value();
  arr.initialize();
  arr.fail_physical(0);
  arr.fail_physical(1);
  arr.fail_physical(2);
  EXPECT_FALSE(arr.run_degraded_reads(10, 1).is_ok());
}

TEST(MultiArray, TraditionalThreeMirrorSplitsDegradedLoadAcrossCopies) {
  // With two identical replica arrays, redirected reads can alternate
  // between them — the three-mirror layout softens the RAID-1 hotspot
  // even without the shifted arrangement.
  auto cfg = array_cfg(4, 2, false);
  cfg.rotate = false;
  auto arrr = MultiMirrorArray::create(cfg);
  ASSERT_TRUE(arrr.is_ok());
  auto& arr = arrr.value();
  arr.initialize();
  arr.fail_physical(0);  // data disk 0 in every stripe
  auto report = arr.run_degraded_reads(2000, 5);
  ASSERT_TRUE(report.is_ok());
  // Redirected load (~500 reads) splits over the local-0 disks of both
  // replica arrays instead of hammering one partner.
  EXPECT_GT(report.value().degraded_reads, 400u);
  const auto copy1 = arr.physical(arr.layout().replica_disk(1, 0))
                         .counters().reads;
  const auto copy2 = arr.physical(arr.layout().replica_disk(2, 0))
                         .counters().reads;
  EXPECT_EQ(copy1 + copy2, report.value().degraded_reads);
  EXPECT_LT(copy1, 0.65 * static_cast<double>(report.value().degraded_reads));
  EXPECT_LT(copy2, 0.65 * static_cast<double>(report.value().degraded_reads));
}

TEST(MultiOnline, CompletesAndCollectsLatencies) {
  auto arrr = MultiMirrorArray::create(array_cfg(4, 2, true));
  ASSERT_TRUE(arrr.is_ok());
  auto& arr = arrr.value();
  arr.initialize();
  arr.fail_physical(0);
  MmOnlineConfig cfg;
  cfg.arrival.max_requests = 150;
  auto report = run_online_reconstruction(arr, cfg);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_GT(report.value().rebuild_done_s, 0.0);
  EXPECT_EQ(report.value().user_reads, 150u);
  EXPECT_GT(report.value().mean_latency_s, 0.0);
  EXPECT_GE(report.value().p99_latency_s, report.value().p50_latency_s);
}

TEST(MultiOnline, HandlesDoubleFailure) {
  auto arrr = MultiMirrorArray::create(array_cfg(4, 2, true));
  ASSERT_TRUE(arrr.is_ok());
  auto& arr = arrr.value();
  arr.initialize();
  arr.fail_physical(1);
  arr.fail_physical(6);
  MmOnlineConfig cfg;
  cfg.arrival.max_requests = 100;
  auto report = run_online_reconstruction(arr, cfg);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_GT(report.value().degraded_reads, 0u);
}

TEST(MultiOnline, RejectsNoFailureAndOverTolerance) {
  auto arrr = MultiMirrorArray::create(array_cfg(3, 2, true));
  ASSERT_TRUE(arrr.is_ok());
  auto& arr = arrr.value();
  arr.initialize();
  EXPECT_FALSE(run_online_reconstruction(arr).is_ok());
  arr.fail_physical(0);
  arr.fail_physical(1);
  arr.fail_physical(2);
  EXPECT_FALSE(run_online_reconstruction(arr).is_ok());
}

TEST(MultiOnline, ShiftedRebuildCompletesSoonerThanTraditional) {
  double done[2];
  for (const bool shifted : {false, true}) {
    auto arrr = MultiMirrorArray::create(array_cfg(5, 2, shifted));
    ASSERT_TRUE(arrr.is_ok());
    auto& arr = arrr.value();
    arr.initialize();
    arr.fail_physical(0);
    MmOnlineConfig cfg;
    cfg.arrival.max_requests = 200;
    cfg.arrival.seed = 77;
    auto report = run_online_reconstruction(arr, cfg);
    ASSERT_TRUE(report.is_ok());
    done[shifted ? 1 : 0] = report.value().rebuild_done_s;
  }
  EXPECT_LT(done[1], done[0]);
}

TEST(MultiArray, NoFailureTrivialReport) {
  auto arrr = MultiMirrorArray::create(array_cfg(3, 2, true));
  ASSERT_TRUE(arrr.is_ok());
  arrr.value().initialize();
  auto report = arrr.value().reconstruct();
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().logical_bytes_read, 0u);
}

}  // namespace
}  // namespace sma::mm
