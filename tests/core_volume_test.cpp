#include "core/volume.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sma::core {
namespace {

VolumeConfig small(int n, bool parity, bool shifted) {
  VolumeConfig cfg;
  cfg.n = n;
  cfg.with_parity = parity;
  cfg.shifted = shifted;
  cfg.content_bytes = 64;
  cfg.seed = 9;
  return cfg;
}

TEST(Volume, CreateValidatesConfig) {
  EXPECT_FALSE(MirroredVolume::create(small(0, false, true)).is_ok());
  VolumeConfig bad = small(3, false, true);
  bad.stacks = 0;
  EXPECT_FALSE(MirroredVolume::create(bad).is_ok());
  bad = small(3, false, true);
  bad.content_bytes = 0;
  EXPECT_FALSE(MirroredVolume::create(bad).is_ok());
}

TEST(Volume, CreateInitializesConsistentArray) {
  auto vol = MirroredVolume::create(small(4, true, true));
  ASSERT_TRUE(vol.is_ok());
  EXPECT_TRUE(vol.value().verify().is_ok());
  EXPECT_EQ(vol.value().arch().n(), 4);
  EXPECT_EQ(vol.value().stripes(), 9);  // one stack of 2n+1 disks
}

TEST(Volume, ReadElementReturnsWrittenData) {
  auto volr = MirroredVolume::create(small(3, true, true));
  ASSERT_TRUE(volr.is_ok());
  auto& vol = volr.value();
  std::vector<std::uint8_t> payload(64, 0x5C);
  ASSERT_TRUE(vol.write_element(1, 2, 0, payload).is_ok());
  std::vector<std::uint8_t> got(64);
  ASSERT_TRUE(vol.read_element(1, 2, 0, got).is_ok());
  EXPECT_EQ(got, payload);
  EXPECT_TRUE(vol.verify().is_ok());  // mirror + parity updated
}

TEST(Volume, ReadRejectsBadCoordinatesAndSizes) {
  auto volr = MirroredVolume::create(small(3, false, true));
  ASSERT_TRUE(volr.is_ok());
  auto& vol = volr.value();
  std::vector<std::uint8_t> buf(64);
  EXPECT_EQ(vol.read_element(-1, 0, 0, buf).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(vol.read_element(0, 99, 0, buf).code(), ErrorCode::kOutOfRange);
  std::vector<std::uint8_t> wrong(63);
  EXPECT_EQ(vol.read_element(0, 0, 0, wrong).code(),
            ErrorCode::kInvalidArgument);
}

TEST(Volume, DegradedReadFromReplica) {
  auto volr = MirroredVolume::create(small(3, false, true));
  ASSERT_TRUE(volr.is_ok());
  auto& vol = volr.value();
  std::vector<std::uint8_t> before(64);
  ASSERT_TRUE(vol.read_element(0, 0, 1, before).is_ok());
  // Fail the physical disk hosting data disk 0 in stripe 0.
  vol.fail_disk(0);
  std::vector<std::uint8_t> after(64);
  ASSERT_TRUE(vol.read_element(0, 0, 1, after).is_ok());
  EXPECT_EQ(after, before);
}

TEST(Volume, DegradedReadViaParityPath) {
  // Fail both copies of an element (possible only with parity): data
  // disk and the specific mirror disk holding its replica.
  auto volr = MirroredVolume::create(small(3, true, true));
  ASSERT_TRUE(volr.is_ok());
  auto& vol = volr.value();
  std::vector<std::uint8_t> before(64);
  ASSERT_TRUE(vol.read_element(0, 0, 1, before).is_ok());
  const layout::Pos replica = vol.arch().replica_of(0, 1);
  // Stripe 0 is unrotated: logical == physical.
  vol.fail_disk(0);
  vol.fail_disk(replica.disk);
  std::vector<std::uint8_t> after(64);
  ASSERT_TRUE(vol.read_element(0, 0, 1, after).is_ok());
  EXPECT_EQ(after, before);
}

TEST(Volume, ReadFailsWhenNoPathSurvives) {
  auto volr = MirroredVolume::create(small(3, false, true));  // no parity
  ASSERT_TRUE(volr.is_ok());
  auto& vol = volr.value();
  const layout::Pos replica = vol.arch().replica_of(0, 1);
  vol.fail_disk(0);
  vol.fail_disk(replica.disk);
  std::vector<std::uint8_t> buf(64);
  EXPECT_EQ(vol.read_element(0, 0, 1, buf).code(), ErrorCode::kUnrecoverable);
}

TEST(Volume, WriteKeepsParityConsistentViaDelta) {
  auto volr = MirroredVolume::create(small(4, true, false));
  ASSERT_TRUE(volr.is_ok());
  auto& vol = volr.value();
  std::vector<std::uint8_t> payload(64);
  for (int i = 0; i < 64; ++i) payload[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(i * 3);
  for (int d = 0; d < 4; ++d)
    ASSERT_TRUE(vol.write_element(d, 1, 2, payload).is_ok());
  EXPECT_TRUE(vol.verify().is_ok());
}

TEST(Volume, DegradedWriteUpdatesSurvivingCopy) {
  auto volr = MirroredVolume::create(small(3, true, true));
  ASSERT_TRUE(volr.is_ok());
  auto& vol = volr.value();
  vol.fail_disk(1);  // stripe 0: data disk 1 down
  std::vector<std::uint8_t> payload(64, 0x77);
  ASSERT_TRUE(vol.write_element(1, 0, 0, payload).is_ok());
  std::vector<std::uint8_t> got(64);
  ASSERT_TRUE(vol.read_element(1, 0, 0, got).is_ok());  // replica serves it
  EXPECT_EQ(got, payload);
}

TEST(Volume, RebuildAfterFailureRestoresEverything) {
  auto volr = MirroredVolume::create(small(4, true, true));
  ASSERT_TRUE(volr.is_ok());
  auto& vol = volr.value();
  vol.fail_disk(3);
  vol.fail_disk(7);
  ASSERT_EQ(vol.failed_disks().size(), 2u);
  auto report = vol.rebuild();
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_TRUE(vol.failed_disks().empty());
  EXPECT_TRUE(vol.array().verify_all().is_ok());
  EXPECT_GT(report.value().read_throughput_mbps(), 0.0);
}

TEST(Volume, ShiftedRebuildFasterThanTraditional) {
  double mbps[2];
  for (const bool shifted : {false, true}) {
    auto volr = MirroredVolume::create(small(5, false, shifted));
    ASSERT_TRUE(volr.is_ok());
    auto& vol = volr.value();
    vol.fail_disk(2);
    auto report = vol.rebuild();
    ASSERT_TRUE(report.is_ok());
    mbps[shifted ? 1 : 0] = report.value().read_throughput_mbps();
  }
  EXPECT_GT(mbps[1], mbps[0]);
}

}  // namespace
}  // namespace sma::core
