#include "ec/raid5.hpp"

#include <gtest/gtest.h>

#include "gf/region.hpp"

namespace sma::ec {
namespace {

class Raid5Param : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Raid5Param, SelfTestAllErasurePatterns) {
  const auto [k, rows] = GetParam();
  Raid5Codec codec(k, rows);
  EXPECT_EQ(codec.data_columns(), k);
  EXPECT_EQ(codec.parity_columns(), 1);
  EXPECT_EQ(codec.rows(), rows);
  EXPECT_EQ(codec.fault_tolerance(), 1);
  EXPECT_TRUE(codec.self_test(1234).is_ok()) << codec.name();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Raid5Param,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 7, 12),
                       ::testing::Values(1, 3, 7)));

TEST(Raid5, ParityIsRowXor) {
  Raid5Codec codec(3, 2);
  ColumnSet cs = codec.make_stripe(8);
  cs.fill_pattern(9);
  ASSERT_TRUE(codec.encode(cs).is_ok());
  for (int r = 0; r < 2; ++r) {
    std::vector<std::uint8_t> expect(8, 0);
    for (int c = 0; c < 3; ++c) gf::region_xor(cs.element(c, r), expect);
    auto p = cs.element(3, r);
    EXPECT_TRUE(std::equal(p.begin(), p.end(), expect.begin()));
  }
}

TEST(Raid5, DecodeEmptyErasureListIsNoOp) {
  Raid5Codec codec(3, 3);
  ColumnSet cs = codec.make_stripe(16);
  cs.fill_pattern(5);
  ASSERT_TRUE(codec.encode(cs).is_ok());
  ColumnSet copy = cs;
  ASSERT_TRUE(codec.decode(cs, {}).is_ok());
  for (int c = 0; c < cs.columns(); ++c)
    EXPECT_TRUE(cs.column_equals(c, copy, c));
}

TEST(Raid5, RejectsTwoErasures) {
  Raid5Codec codec(4, 2);
  ColumnSet cs = codec.make_stripe(8);
  const Status st = codec.decode(cs, {0, 1});
  EXPECT_EQ(st.code(), ErrorCode::kUnrecoverable);
}

TEST(Raid5, RejectsOutOfRangeErasure) {
  Raid5Codec codec(4, 2);
  ColumnSet cs = codec.make_stripe(8);
  EXPECT_EQ(codec.decode(cs, {5}).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(codec.decode(cs, {-1}).code(), ErrorCode::kInvalidArgument);
}

TEST(Raid5, RejectsWrongStripeShape) {
  Raid5Codec codec(4, 2);
  ColumnSet wrong(4, 2, 8);  // 4 columns but codec needs 5
  EXPECT_EQ(codec.encode(wrong).code(), ErrorCode::kInvalidArgument);
}

TEST(Raid5, SingleDataColumnDegenerateCase) {
  // k=1: parity equals the single data column (pure mirror).
  Raid5Codec codec(1, 4);
  ColumnSet cs = codec.make_stripe(32);
  cs.fill_pattern(3);
  ASSERT_TRUE(codec.encode(cs).is_ok());
  EXPECT_TRUE(cs.column_equals(0, cs, 1));
}

}  // namespace
}  // namespace sma::ec
