#include "recon/failure.hpp"

#include <gtest/gtest.h>

namespace sma::recon {
namespace {

TEST(Classify, SingleAndNone) {
  const auto arch = layout::Architecture::mirror_with_parity(3, true);
  EXPECT_EQ(classify(arch, {}), FailureClass::kNone);
  EXPECT_EQ(classify(arch, {0}), FailureClass::kSingle);
  EXPECT_EQ(classify(arch, {6}), FailureClass::kSingle);  // parity disk
}

TEST(Classify, F1IncludesParity) {
  const auto arch = layout::Architecture::mirror_with_parity(3, true);
  EXPECT_EQ(classify(arch, {0, 6}), FailureClass::kF1);
  EXPECT_EQ(classify(arch, {6, 5}), FailureClass::kF1);
}

TEST(Classify, F2SameArray) {
  const auto arch = layout::Architecture::mirror_with_parity(3, true);
  EXPECT_EQ(classify(arch, {0, 2}), FailureClass::kF2);  // both data
  EXPECT_EQ(classify(arch, {3, 5}), FailureClass::kF2);  // both mirror
}

TEST(Classify, F3OnePerArray) {
  const auto arch = layout::Architecture::mirror_with_parity(3, true);
  EXPECT_EQ(classify(arch, {0, 3}), FailureClass::kF3);
  EXPECT_EQ(classify(arch, {2, 4}), FailureClass::kF3);
}

TEST(Classify, RaidDouble) {
  const auto arch = layout::Architecture::raid6(4);
  EXPECT_EQ(classify(arch, {0, 1}), FailureClass::kRaidDouble);
  EXPECT_EQ(classify(arch, {4, 5}), FailureClass::kRaidDouble);
}

TEST(Enumerate, SingleFailuresCoverEveryDisk) {
  const auto arch = layout::Architecture::mirror(4, true);
  const auto singles = enumerate_single_failures(arch);
  EXPECT_EQ(singles.size(), 8u);
  for (int d = 0; d < 8; ++d) EXPECT_EQ(singles[static_cast<std::size_t>(d)],
                                        std::vector<int>{d});
}

TEST(Enumerate, DoubleFailureCountMatchesBinomial) {
  for (int n : {3, 5, 7}) {
    const auto arch = layout::Architecture::mirror_with_parity(n, true);
    const int t = 2 * n + 1;
    EXPECT_EQ(enumerate_double_failures(arch).size(),
              static_cast<std::size_t>(t * (t - 1) / 2));
  }
  // Paper Section VII-A: "as many as 105 cases for 7 data disks, 7
  // mirror disks, and 1 parity disk".
  EXPECT_EQ(enumerate_double_failures(
                layout::Architecture::mirror_with_parity(7, true))
                .size(),
            105u);
}

TEST(Enumerate, ClassCountsMatchTable1) {
  // Table I: F1 = 2n, F2 = n(n-1), F3 = n^2.
  for (int n : {3, 4, 5, 6, 7}) {
    const auto arch = layout::Architecture::mirror_with_parity(n, true);
    long f1 = 0;
    long f2 = 0;
    long f3 = 0;
    for (const auto& failed : enumerate_double_failures(arch)) {
      switch (classify(arch, failed)) {
        case FailureClass::kF1: ++f1; break;
        case FailureClass::kF2: ++f2; break;
        case FailureClass::kF3: ++f3; break;
        default: FAIL();
      }
    }
    EXPECT_EQ(f1, 2 * n) << n;
    EXPECT_EQ(f2, n * (n - 1)) << n;
    EXPECT_EQ(f3, n * n) << n;
  }
}

TEST(ToString, Readable) {
  EXPECT_EQ(to_string(FailureClass::kF1), "F1(parity+array)");
  EXPECT_EQ(to_string(FailureClass::kSingle), "single");
}

}  // namespace
}  // namespace sma::recon
