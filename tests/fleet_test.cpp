#include "fleet/fleet.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "array/disk_array.hpp"
#include "fleet/timeline.hpp"
#include "recon/online.hpp"

namespace sma::fleet {
namespace {

/// A small fleet that still exercises every moving part: mixed load
/// across 8 arrays, one rebuilding, declustered placement.
FleetConfig small_fleet() {
  FleetConfig cfg;
  cfg.arrays = 8;
  cfg.n = 3;
  cfg.stacks = 4;
  cfg.placement.policy = PlacementPolicy::kDeclustered;
  cfg.placement.volumes = 32;
  cfg.placement.segments_per_volume = 8;
  cfg.placement.spread = 4;
  cfg.arrival.rate_hz = 120.0;
  cfg.arrival.max_requests = 2000;
  cfg.failed_arrays = 1;
  cfg.timeline.horizon_hours = 24.0 * 90.0;
  return cfg;
}

TEST(FleetDeterminism, SerialMatchesParallel) {
  FleetConfig cfg = small_fleet();
  cfg.threads = 1;
  const auto serial = run_fleet(cfg);
  ASSERT_TRUE(serial.is_ok()) << serial.status().to_string();
  cfg.threads = 4;
  const auto parallel = run_fleet(cfg);
  ASSERT_TRUE(parallel.is_ok()) << parallel.status().to_string();

  // The digest folds every deterministic report field plus each
  // per-array report, so one comparison is the whole contract...
  EXPECT_EQ(serial.value().digest, parallel.value().digest);
  // ... but compare headline fields directly too, for diagnosability.
  EXPECT_EQ(serial.value().requests_completed,
            parallel.value().requests_completed);
  EXPECT_EQ(serial.value().degraded_reads, parallel.value().degraded_reads);
  EXPECT_EQ(serial.value().p99_latency_s, parallel.value().p99_latency_s);
  EXPECT_EQ(serial.value().worst_degraded_volume_p99_s,
            parallel.value().worst_degraded_volume_p99_s);
  EXPECT_EQ(serial.value().mean_rebuild_s, parallel.value().mean_rebuild_s);
  EXPECT_EQ(serial.value().timeline.digest, parallel.value().timeline.digest);
}

TEST(FleetDeterminism, RepeatRunsAreBitIdentical) {
  const auto a = run_fleet(small_fleet());
  const auto b = run_fleet(small_fleet());
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value().digest, b.value().digest);
}

TEST(FleetReport, PinsMetricSemantics) {
  const auto r = run_fleet(small_fleet());
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const FleetReport& rep = r.value();

  EXPECT_EQ(rep.arrays, 8);
  EXPECT_EQ(rep.volumes, 32);
  EXPECT_EQ(rep.failed_arrays, 1);
  // Open-loop injection runs to the cutoff; nothing dies in a
  // single-failure mirror fleet, so routed == completed.
  EXPECT_EQ(rep.requests_routed, 2000u);
  EXPECT_EQ(rep.requests_completed, 2000u);

  // Volume summaries partition the completed requests.
  std::uint64_t summed = 0;
  int degraded = 0;
  for (const auto& vs : rep.volume_summaries) {
    summed += vs.requests;
    if (vs.degraded) ++degraded;
    EXPECT_LE(vs.p99_latency_s, rep.max_latency_s);
  }
  ASSERT_EQ(rep.volume_summaries.size(), 32u);
  EXPECT_EQ(summed, rep.requests_completed);

  // Declustered spread=4 over 8 arrays: one rebuilding array touches
  // exactly spread * volumes / arrays = 16 of the 32 volumes.
  EXPECT_EQ(degraded, 16);
  EXPECT_DOUBLE_EQ(rep.degraded_volume_fraction, 0.5);
  EXPECT_GE(rep.worst_volume_p99_s, rep.worst_degraded_volume_p99_s);
  EXPECT_GT(rep.worst_degraded_volume_p99_s, 0.0);

  // One rebuilding array -> rebuild stats are that one rebuild.
  EXPECT_GT(rep.mean_rebuild_s, 0.0);
  EXPECT_DOUBLE_EQ(rep.mean_rebuild_s, rep.max_rebuild_s);
  EXPECT_GT(rep.degraded_reads, 0u);
  EXPECT_GT(rep.fleet_mttdl_hours, 0.0);
  EXPECT_GT(rep.timeline.failures, 0);
}

TEST(FleetReport, HealthyFleetHasNoDegradedExposure) {
  FleetConfig cfg = small_fleet();
  cfg.failed_arrays = 0;
  cfg.run_timeline = false;
  const auto r = run_fleet(cfg);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r.value().degraded_reads, 0u);
  EXPECT_DOUBLE_EQ(r.value().degraded_volume_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.value().mean_rebuild_s, 0.0);
  EXPECT_EQ(r.value().worst_degraded_volume_p99_s, 0.0);
  EXPECT_EQ(r.value().requests_completed, 2000u);
  EXPECT_EQ(r.value().timeline.arrays, 0);  // timeline skipped
}

TEST(FleetReport, RejectsBadConfigs) {
  FleetConfig cfg = small_fleet();
  cfg.arrival.kind = workload::ArrivalKind::kClosedLoop;
  EXPECT_EQ(run_fleet(cfg).status().code(), ErrorCode::kInvalidArgument);
  cfg = small_fleet();
  cfg.failed_arrays = 9;
  EXPECT_EQ(run_fleet(cfg).status().code(), ErrorCode::kInvalidArgument);
  cfg = small_fleet();
  cfg.n = 1;
  EXPECT_EQ(run_fleet(cfg).status().code(), ErrorCode::kInvalidArgument);
  cfg = small_fleet();
  cfg.arrays = 0;
  EXPECT_EQ(run_fleet(cfg).status().code(), ErrorCode::kInvalidArgument);
}

TEST(FleetReport, ArrangementMixNamesRoundTrip) {
  for (const auto m :
       {ArrangementMix::kShifted, ArrangementMix::kTraditional,
        ArrangementMix::kAlternating}) {
    const auto back = arrangement_mix_from(to_string(m));
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value(), m);
  }
  EXPECT_FALSE(arrangement_mix_from("striped").is_ok());
}

// The fleet layer leans on two online-simulator behaviors added for it:
// healthy (zero-failure) runs, and per-request latency recording that
// leaves the rest of the report bit-identical.

TEST(FleetOnline, HealthyArrayServesWithoutRebuild) {
  array::ArrayConfig acfg;
  acfg.arch = layout::Architecture::mirror(3, true);
  acfg.stripes = acfg.arch.total_disks();
  recon::OnlineConfig ocfg;
  ocfg.arrival.max_requests = 200;
  array::DiskArray arr(acfg);
  const auto r = recon::run_online_reconstruction(arr, ocfg);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_DOUBLE_EQ(r.value().rebuild_done_s, 0.0);
  EXPECT_EQ(r.value().requests_completed, 200u);
  EXPECT_EQ(r.value().degraded_reads, 0u);
  EXPECT_EQ(r.value().final_state, repair::ArrayState::kHealthy);
}

TEST(FleetOnline, RecordLatenciesIsPureBookkeeping) {
  const auto run = [](bool record) {
    array::ArrayConfig acfg;
    acfg.arch = layout::Architecture::mirror(3, true);
    acfg.stripes = 4 * acfg.arch.total_disks();
    array::DiskArray arr(acfg);
    arr.fail_physical(0);
    recon::OnlineConfig ocfg;
    ocfg.arrival.max_requests = 300;
    ocfg.record_latencies = record;
    const auto r = recon::run_online_reconstruction(arr, ocfg);
    EXPECT_TRUE(r.is_ok());
    return r.value();
  };
  const auto with = run(true);
  const auto without = run(false);
  EXPECT_EQ(without.latencies.size(), 0u);
  ASSERT_EQ(with.latencies.size(), with.requests_issued);
  // Same simulation either way.
  EXPECT_EQ(with.rebuild_done_s, without.rebuild_done_s);
  EXPECT_EQ(with.mean_latency_s, without.mean_latency_s);
  EXPECT_EQ(with.p99_latency_s, without.p99_latency_s);
  EXPECT_EQ(with.requests_completed, without.requests_completed);
  // Every request completed, so every recorded latency is real, and
  // the max matches the report's.
  double max_lat = 0.0;
  for (const double lat : with.latencies) {
    EXPECT_GE(lat, 0.0);
    if (lat > max_lat) max_lat = lat;
  }
  EXPECT_DOUBLE_EQ(max_lat, with.max_latency_s);
}

TEST(FleetTimeline, DeterministicAndInternallyConsistent) {
  TimelineConfig cfg;
  cfg.arrays = 64;
  cfg.horizon_hours = 24.0 * 365.0;
  cfg.disk_mttf_hours = 5.0e4;
  cfg.repair_hours = 48.0;
  const auto arch = layout::Architecture::mirror(3, true);
  const auto a = run_failure_timeline(arch, cfg);
  const auto b = run_failure_timeline(arch, cfg);
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value().digest, b.value().digest);

  const TimelineReport& r = a.value();
  EXPECT_GT(r.failures, 0);
  EXPECT_LE(r.repairs_completed + r.data_loss_events, r.failures);
  EXPECT_GE(r.frac_time_rebuilding, r.frac_time_ge2);
  EXPECT_LE(r.frac_time_rebuilding, 1.0);
  EXPECT_GE(r.mean_concurrent_rebuilds, 0.0);
  EXPECT_LE(r.mean_concurrent_rebuilds,
            static_cast<double>(r.max_concurrent_rebuilds));
  EXPECT_GT(r.transitions, 0u);
}

TEST(FleetTimeline, RejectsBadConfigs) {
  TimelineConfig cfg;
  cfg.arrays = 0;
  const auto arch = layout::Architecture::mirror(3, true);
  EXPECT_EQ(run_failure_timeline(arch, cfg).status().code(),
            ErrorCode::kInvalidArgument);
  cfg.arrays = 4;
  cfg.repair_hours = 0.0;
  EXPECT_EQ(run_failure_timeline(arch, cfg).status().code(),
            ErrorCode::kInvalidArgument);
  cfg.repair_hours = 8.0;
  cfg.domain_size = -1;
  EXPECT_EQ(run_failure_timeline(arch, cfg).status().code(),
            ErrorCode::kInvalidArgument);
  cfg.domain_size = 2;
  cfg.domain_hazard_factor = 0.5;
  EXPECT_EQ(run_failure_timeline(arch, cfg).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(FleetTimeline, InertDomainConfigsMatchIndependentArrays) {
  TimelineConfig base;
  base.arrays = 32;
  base.horizon_hours = 24.0 * 180.0;
  base.repair_hours = 48.0;
  const auto arch = layout::Architecture::mirror(3, true);
  const auto independent = run_failure_timeline(arch, base);
  ASSERT_TRUE(independent.is_ok());

  // domain_size without a hazard boost, and a boost without domains,
  // are both the independent process bit-identically.
  TimelineConfig sized = base;
  sized.domain_size = 8;
  sized.domain_hazard_factor = 1.0;
  const auto a = run_failure_timeline(arch, sized);
  ASSERT_TRUE(a.is_ok());
  EXPECT_EQ(a.value().digest, independent.value().digest);

  TimelineConfig boosted = base;
  boosted.domain_hazard_factor = 8.0;  // domain_size stays 0
  const auto b = run_failure_timeline(arch, boosted);
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(b.value().digest, independent.value().digest);
}

TEST(FleetTimeline, CorrelatedDomainsRaiseConcurrentExposure) {
  TimelineConfig base;
  base.arrays = 32;
  base.horizon_hours = 24.0 * 365.0 * 2.0;
  base.disk_mttf_hours = 2.0e4;
  base.repair_hours = 96.0;
  const auto arch = layout::Architecture::mirror(3, true);
  const auto independent = run_failure_timeline(arch, base);
  ASSERT_TRUE(independent.is_ok());

  TimelineConfig corr = base;
  corr.domain_size = 8;
  corr.domain_hazard_factor = 16.0;
  const auto correlated = run_failure_timeline(arch, corr);
  ASSERT_TRUE(correlated.is_ok()) << correlated.status().to_string();

  // A strong hazard boost inside each enclosure makes failures cluster:
  // more failures land overall and more repairs overlap in time.
  EXPECT_GT(correlated.value().failures, independent.value().failures);
  EXPECT_GE(correlated.value().frac_time_ge2,
            independent.value().frac_time_ge2);
  // Determinism holds with the redraw machinery active.
  const auto replay = run_failure_timeline(arch, corr);
  ASSERT_TRUE(replay.is_ok());
  EXPECT_EQ(replay.value().digest, correlated.value().digest);
}

TEST(FleetEdge, SpreadWiderThanTheFleetIsRejected) {
  FleetConfig cfg = small_fleet();
  cfg.placement.spread = cfg.arrays + 1;
  EXPECT_EQ(run_fleet(cfg).status().code(), ErrorCode::kInvalidArgument);
}

TEST(FleetEdge, AllArraysFailedAtTimeZero) {
  FleetConfig cfg = small_fleet();
  cfg.failed_arrays = cfg.arrays;
  const auto r = run_fleet(cfg);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r.value().failed_arrays, cfg.arrays);
  EXPECT_GT(r.value().mean_rebuild_s, 0.0);
  // Every volume touches a rebuilding array, so the exposure is total.
  EXPECT_DOUBLE_EQ(r.value().degraded_volume_fraction, 1.0);
}

TEST(FleetEdge, ZeroRoutedRequestsStillRebuilds) {
  FleetConfig cfg = small_fleet();
  cfg.arrival.max_requests = 0;
  const auto r = run_fleet(cfg);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r.value().requests_routed, 0u);
  EXPECT_EQ(r.value().requests_completed, 0u);
  EXPECT_DOUBLE_EQ(r.value().mean_latency_s, 0.0);
  EXPECT_GT(r.value().mean_rebuild_s, 0.0);  // the rebuild still drains
}

}  // namespace
}  // namespace sma::fleet
