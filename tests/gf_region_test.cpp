#include "gf/region.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "gf/gf256.hpp"
#include "util/rng.hpp"

namespace sma::gf {
namespace {

std::vector<std::uint8_t> random_buffer(std::size_t len, std::uint64_t seed) {
  std::vector<std::uint8_t> buf(len);
  fill_pattern(seed, buf.data(), len);
  return buf;
}

class RegionSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RegionSizes, XorMatchesBytewise) {
  const std::size_t len = GetParam();
  auto src = random_buffer(len, 1);
  auto dst = random_buffer(len, 2);
  auto expect = dst;
  for (std::size_t i = 0; i < len; ++i) expect[i] ^= src[i];
  region_xor(src, dst);
  EXPECT_EQ(dst, expect);
}

TEST_P(RegionSizes, MulMatchesScalar) {
  const std::size_t len = GetParam();
  auto src = random_buffer(len, 3);
  std::vector<std::uint8_t> dst(len);
  const std::uint8_t c = 0x8E;
  region_mul(c, src, dst);
  for (std::size_t i = 0; i < len; ++i) EXPECT_EQ(dst[i], mul(c, src[i]));
}

TEST_P(RegionSizes, MulXorMatchesScalar) {
  const std::size_t len = GetParam();
  auto src = random_buffer(len, 4);
  auto dst = random_buffer(len, 5);
  auto expect = dst;
  const std::uint8_t c = 0x2B;
  for (std::size_t i = 0; i < len; ++i) expect[i] ^= mul(c, src[i]);
  region_mul_xor(c, src, dst);
  EXPECT_EQ(dst, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RegionSizes,
                         ::testing::Values(0, 1, 7, 8, 9, 63, 64, 65, 4096));

TEST(Region, XorSelfZeroes) {
  auto buf = random_buffer(128, 6);
  region_xor(buf, buf);
  EXPECT_TRUE(region_is_zero(buf));
}

TEST(Region, MulByZeroZeroes) {
  auto src = random_buffer(64, 7);
  auto dst = random_buffer(64, 8);
  region_mul(0, src, dst);
  EXPECT_TRUE(region_is_zero(dst));
}

TEST(Region, MulByOneCopies) {
  auto src = random_buffer(64, 9);
  std::vector<std::uint8_t> dst(64, 0xFF);
  region_mul(1, src, dst);
  EXPECT_EQ(dst, src);
}

TEST(Region, MulXorByZeroIsNoOp) {
  auto src = random_buffer(64, 10);
  auto dst = random_buffer(64, 11);
  auto before = dst;
  region_mul_xor(0, src, dst);
  EXPECT_EQ(dst, before);
}

TEST(Region, MulByOneInPlaceIsNoOp) {
  auto buf = random_buffer(64, 12);
  auto before = buf;
  region_mul(1, buf, buf);
  EXPECT_EQ(buf, before);
}

TEST(Region, ZeroAndIsZero) {
  auto buf = random_buffer(33, 13);
  EXPECT_FALSE(region_is_zero(buf));
  region_zero(buf);
  EXPECT_TRUE(region_is_zero(buf));
  EXPECT_TRUE(region_is_zero(std::span<const std::uint8_t>{}));
}

TEST(Region, XorIsAssociativeOverBuffers) {
  auto a = random_buffer(256, 14);
  auto b = random_buffer(256, 15);
  auto c = random_buffer(256, 16);
  auto left = a;
  region_xor(b, left);
  region_xor(c, left);
  auto right = b;
  region_xor(c, right);
  region_xor(a, right);
  EXPECT_EQ(left, right);
}

}  // namespace
}  // namespace sma::gf
