#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace sma {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<std::string> v;
  for (const char* a : args) v.emplace_back(a);
  return Flags(v);
}

TEST(Flags, EqualsForm) {
  const auto f = make({"--n=5", "--name=shifted"});
  EXPECT_EQ(f.get_int("n", 0), 5);
  EXPECT_EQ(f.get("name", ""), "shifted");
}

TEST(Flags, SpaceSeparatedForm) {
  const auto f = make({"--n", "7", "--rate", "2.5"});
  EXPECT_EQ(f.get_int("n", 0), 7);
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0), 2.5);
}

TEST(Flags, BareBooleanAndExplicitFalse) {
  const auto f = make({"--shifted", "--parity=false", "--verbose=1"});
  EXPECT_TRUE(f.get_bool("shifted", false));
  EXPECT_FALSE(f.get_bool("parity", true));
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_TRUE(f.get_bool("absent", true));
  EXPECT_FALSE(f.get_bool("absent2", false));
}

TEST(Flags, BareFlagFollowedByFlagIsBoolean) {
  const auto f = make({"--a", "--b=2"});
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_EQ(f.get_int("b", 0), 2);
}

TEST(Flags, PositionalArguments) {
  const auto f = make({"rebuild", "--n=3", "extra"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "rebuild");
  EXPECT_EQ(f.positional()[1], "extra");
}

TEST(Flags, IntList) {
  const auto f = make({"--fail=0,6,12"});
  EXPECT_EQ(f.get_int_list("fail"), (std::vector<int>{0, 6, 12}));
  EXPECT_TRUE(f.get_int_list("absent").empty());
}

TEST(Flags, MalformedValuesRecorded) {
  const auto f = make({"--n=abc", "--rate=x", "--flag=maybe", "--list=1,zz"});
  EXPECT_EQ(f.get_int("n", 9), 9);
  EXPECT_DOUBLE_EQ(f.get_double("rate", 1.5), 1.5);
  EXPECT_TRUE(f.get_bool("flag", true));
  f.get_int_list("list");
  EXPECT_EQ(f.errors().size(), 4u);
}

TEST(Flags, UnknownDetection) {
  const auto f = make({"--n=3", "--bogus=1"});
  const auto unknown = f.unknown({"n", "parity"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "bogus");
}

TEST(Flags, ArgcArgvConstructor) {
  const char* argv[] = {"prog", "cmd", "--n=4"};
  Flags f(3, argv);
  EXPECT_EQ(f.program(), "prog");
  EXPECT_EQ(f.positional()[0], "cmd");
  EXPECT_EQ(f.get_int("n", 0), 4);
}

TEST(Flags, LastOccurrenceWins) {
  const auto f = make({"--n=3", "--n=8"});
  EXPECT_EQ(f.get_int("n", 0), 8);
}

}  // namespace
}  // namespace sma
