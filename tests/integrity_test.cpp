// Crash-consistency subsystem: the dirty-region log, op-indexed crash
// injection and power cycling, DRL-driven post-crash resync (partial vs
// full), crash-mid-rebuild resume through the repair orchestrator, and
// the verifying scrub against the three silent-corruption modes.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "integrity/crash_workload.hpp"
#include "integrity/dirty_region_log.hpp"
#include "integrity/resync.hpp"
#include "obs/observer.hpp"
#include "obs/trace_sink.hpp"
#include "recon/executor.hpp"
#include "recon/scrub.hpp"
#include "repair/orchestrator.hpp"

namespace sma::integrity {
namespace {

/// The bench_crash_resync configuration at test scale: parity mirror,
/// two stacks, DRL + checksums on, crash armed at an op index that
/// tears a request between its data and mirror copy (the write hole).
array::ArrayConfig crash_cfg(bool shifted, int region_stripes) {
  array::ArrayConfig cfg;
  cfg.arch = layout::Architecture::mirror_with_parity(5, shifted);
  cfg.stripes = 2 * cfg.arch.total_disks();
  cfg.content_bytes = 64;
  cfg.logical_element_bytes = 4'000'000;
  cfg.seed = 20120901;
  cfg.drl_region_stripes = region_stripes;
  cfg.checksums = true;
  cfg.fault.crash_after_writes = 103;
  cfg.fault.seed = 20120901;
  return cfg;
}

CrashWorkloadConfig workload_cfg() {
  CrashWorkloadConfig wcfg;
  wcfg.requests = 40;
  wcfg.seed = 20120901;
  wcfg.quiesce_every = 10;
  return wcfg;
}

/// Drive the seeded workload into the armed crash point.
CrashWorkloadReport run_to_crash(array::DiskArray& arr) {
  auto wl = run_crash_workload(arr, workload_cfg());
  EXPECT_TRUE(wl.is_ok()) << wl.status().to_string();
  EXPECT_TRUE(wl.value().crashed);
  EXPECT_TRUE(arr.crashed());
  return wl.value();
}

// --- dirty-region log ------------------------------------------------------

TEST(DirtyRegionLog, RegionMappingMarksAndClears) {
  DirtyRegionLog drl(10, 4);  // regions: [0,4) [4,8) [8,10)
  ASSERT_TRUE(drl.enabled());
  EXPECT_EQ(drl.regions(), 3);
  EXPECT_EQ(drl.region_of(0), 0);
  EXPECT_EQ(drl.region_of(3), 0);
  EXPECT_EQ(drl.region_of(4), 1);
  EXPECT_EQ(drl.region_of(9), 2);
  EXPECT_EQ(drl.region_begin(2), 8);
  EXPECT_EQ(drl.region_end(2), 10);  // trailing region is shorter

  drl.mark(5);
  EXPECT_TRUE(drl.dirty(1));
  EXPECT_TRUE(drl.stripe_dirty(4));
  EXPECT_TRUE(drl.stripe_dirty(7));
  EXPECT_FALSE(drl.stripe_dirty(3));
  EXPECT_EQ(drl.dirty_count(), 1);
  EXPECT_EQ(drl.dirty_regions(), std::vector<int>{1});

  drl.mark(5);  // idempotent bit, but counted as bitmap traffic
  EXPECT_EQ(drl.dirty_count(), 1);
  EXPECT_EQ(drl.marks(), 2u);

  drl.clear(1);
  EXPECT_EQ(drl.dirty_count(), 0);
  drl.mark_all();
  EXPECT_EQ(drl.dirty_count(), 3);
  drl.clear_all();
  EXPECT_EQ(drl.dirty_count(), 0);
}

TEST(DirtyRegionLog, DisabledLogIsInert) {
  for (DirtyRegionLog drl : {DirtyRegionLog{}, DirtyRegionLog{10, 0},
                             DirtyRegionLog{10, -3}}) {
    EXPECT_FALSE(drl.enabled());
    EXPECT_EQ(drl.regions(), 0);
    drl.mark(0);  // no-op, not even counted
    EXPECT_EQ(drl.marks(), 0u);
    EXPECT_EQ(drl.dirty_count(), 0);
    EXPECT_FALSE(drl.stripe_dirty(0));
    EXPECT_TRUE(drl.dirty_regions().empty());
  }
}

// --- crash injection -------------------------------------------------------

TEST(CrashInjection, OpIndexedCrashLosesTheBatchTailButKeepsItsIntent) {
  array::ArrayConfig cfg;
  cfg.arch = layout::Architecture::mirror(3, true);
  cfg.stripes = cfg.arch.total_disks();
  cfg.content_bytes = 64;
  cfg.logical_element_bytes = 4'000'000;
  cfg.drl_region_stripes = 1;
  cfg.fault.crash_after_writes = 2;  // third write is the victim
  cfg.fault.seed = 9;
  array::DiskArray arr(cfg);
  arr.initialize();

  std::vector<array::Op> ops;
  for (int s = 0; s < 5; ++s)
    ops.push_back({cfg.arch.data_disk(s % 3), s, 0, disk::IoKind::kWrite});
  const auto stats = arr.execute(ops, 0.0);
  EXPECT_TRUE(stats.crashed);
  EXPECT_TRUE(arr.crashed());
  // Victim write plus the two powered-off tail writes never hit media.
  EXPECT_EQ(stats.lost_writes, 3u);
  EXPECT_EQ(stats.failed_ops, 3u);
  // Intent was logged at batch admission, so even the tail writes'
  // regions are dirty — exactly the set a resync must re-examine.
  for (int s = 0; s < 5; ++s)
    EXPECT_TRUE(arr.dirty_log().stripe_dirty(s)) << "stripe " << s;

  // Powered off: every op fails, every write's bytes are lost.
  const array::Op read{0, 0, 0, disk::IoKind::kRead};
  const auto off = arr.execute({&read, 1}, stats.end_s);
  EXPECT_TRUE(off.crashed);
  EXPECT_EQ(off.failed_ops, 1u);

  ASSERT_TRUE(arr.power_cycle().is_ok());
  EXPECT_FALSE(arr.crashed());
  // The crash point is consumed; power cycling twice is a misuse.
  EXPECT_EQ(arr.power_cycle().code(), ErrorCode::kFailedPrecondition);
  const auto on = arr.execute({&read, 1}, 0.0);
  EXPECT_EQ(on.failed_ops, 0u);
  EXPECT_FALSE(on.crashed);
}

// --- post-crash resync -----------------------------------------------------

TEST(CrashResync, WriteHoleRepairedByDrlResyncOnBothArrangements) {
  for (const bool shifted : {true, false}) {
    SCOPED_TRACE(shifted ? "shifted" : "traditional");
    array::DiskArray arr(crash_cfg(shifted, 2));
    arr.initialize();
    obs::TraceSink sink;
    obs::Observer ob;
    ob.trace = &sink;
    arr.set_observer(&ob);

    const auto wl = run_to_crash(arr);
    EXPECT_GT(wl.dirty_regions, 0);
    // The crash left a write hole: the array is NOT internally
    // consistent until the resync reconciles the copies.
    EXPECT_FALSE(arr.verify_consistency(nullptr).is_ok());
    const auto crashes =
        std::count_if(sink.events().begin(), sink.events().end(),
                      [](const obs::TraceEvent& e) {
                        return e.kind == obs::EventKind::kCrash;
                      });
    EXPECT_EQ(crashes, 1);

    ASSERT_TRUE(arr.power_cycle().is_ok());
    ResyncOptions opts;
    opts.observer = &ob;
    auto rs = resync(arr, opts);
    ASSERT_TRUE(rs.is_ok()) << rs.status().to_string();
    const auto& r = rs.value();
    EXPECT_GE(r.diverged, 1u);  // the write hole was found...
    EXPECT_EQ(r.copies_rewritten, r.diverged);  // ...and closed
    EXPECT_LT(r.regions_scanned, r.regions_total);  // partial scan
    EXPECT_TRUE(arr.verify_consistency(nullptr).is_ok());
    EXPECT_TRUE(arr.verify_checksums().is_ok());
    EXPECT_GE(std::count_if(sink.events().begin(), sink.events().end(),
                            [](const obs::TraceEvent& e) {
                              return e.kind == obs::EventKind::kResync;
                            }),
              1);

    // Reconciled regions were cleared: a second resync scans nothing.
    EXPECT_EQ(arr.dirty_log().dirty_count(), 0);
    auto again = resync(arr);
    ASSERT_TRUE(again.is_ok());
    EXPECT_EQ(again.value().regions_scanned, 0);
    EXPECT_EQ(again.value().elements_read, 0u);
    arr.set_observer(nullptr);
  }
}

TEST(CrashResync, DrlResyncReadsStrictlyFewerElementsThanFull) {
  for (const bool shifted : {true, false}) {
    SCOPED_TRACE(shifted ? "shifted" : "traditional");
    array::DiskArray partial(crash_cfg(shifted, 2));
    partial.initialize();
    run_to_crash(partial);
    ASSERT_TRUE(partial.power_cycle().is_ok());
    auto drl = resync(partial);
    ASSERT_TRUE(drl.is_ok());

    array::DiskArray whole(crash_cfg(shifted, 2));
    whole.initialize();
    run_to_crash(whole);
    ASSERT_TRUE(whole.power_cycle().is_ok());
    ResyncOptions opts;
    opts.full = true;
    auto full = resync(whole, opts);
    ASSERT_TRUE(full.is_ok());

    // The acceptance claim: for a partial-dirty workload the log pays
    // for itself on both arrangements.
    EXPECT_LT(drl.value().elements_read, full.value().elements_read);
    EXPECT_EQ(full.value().regions_scanned, full.value().regions_total);
    // Both paths end fully consistent regardless of cost.
    EXPECT_TRUE(partial.verify_consistency(nullptr).is_ok());
    EXPECT_TRUE(whole.verify_consistency(nullptr).is_ok());
    EXPECT_TRUE(partial.verify_checksums().is_ok());
    EXPECT_TRUE(whole.verify_checksums().is_ok());
  }
}

TEST(CrashResync, GuardsRejectMisuse) {
  array::DiskArray arr(crash_cfg(true, 2));
  arr.initialize();
  run_to_crash(arr);
  // Powered off: nothing runs until power_cycle().
  EXPECT_EQ(resync(arr).status().code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(recon::reconstruct(arr).status().code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(recon::scrub(arr).status().code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(run_crash_workload(arr, workload_cfg()).status().code(),
            ErrorCode::kFailedPrecondition);

  // Resync is a mirror-consistency operation.
  array::ArrayConfig rcfg;
  rcfg.arch = layout::Architecture::raid5(4);
  rcfg.stripes = rcfg.arch.total_disks();
  rcfg.content_bytes = 64;
  array::DiskArray raid(rcfg);
  raid.initialize();
  EXPECT_EQ(resync(raid).status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(run_crash_workload(raid, workload_cfg()).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(CrashResync, CrashMidRebuildResumesFromTheCheckpointAfterResync) {
  array::ArrayConfig cfg;
  cfg.arch = layout::Architecture::mirror_with_parity(4, true);
  cfg.stripes = cfg.arch.total_disks();  // 9 stripes, 4 writes each
  cfg.content_bytes = 64;
  cfg.logical_element_bytes = 4'000'000;
  cfg.drl_region_stripes = 2;
  cfg.checksums = true;
  cfg.fault.crash_after_writes = 15;  // inside stripe 3 of the rebuild
  cfg.fault.seed = 5;
  array::DiskArray arr(cfg);
  arr.initialize();
  arr.fail_physical(0);

  repair::RepairConfig rc;
  rc.checkpointing = true;
  repair::RepairOrchestrator orch(arr, rc);
  ASSERT_TRUE(orch.admit_failures(0.0).is_ok());

  // Round 1: the rebuild's own replacement writes trip the crash point.
  auto r1 = orch.run(0.0);
  ASSERT_TRUE(r1.is_ok()) << r1.status().to_string();
  EXPECT_TRUE(arr.crashed());
  EXPECT_NE(r1.value().final_state, repair::ArrayState::kHealthy);
  // The watermark survived the crash, somewhere mid-array.
  EXPECT_GT(orch.checkpoint().stripes_done, 0);
  EXPECT_LT(orch.checkpoint().stripes_done, arr.stripes());

  // Power-cycle + resync through the lifecycle, then resume the rebuild.
  ASSERT_TRUE(orch.admit_crash(1.0).is_ok());
  EXPECT_EQ(orch.lifecycle().state(), repair::ArrayState::kInconsistent);
  auto rs = orch.resync(1.0);
  ASSERT_TRUE(rs.is_ok()) << rs.status().to_string();
  // One side of every disk-0 pair is dead; the rebuild owns those.
  EXPECT_GT(rs.value().pairs_skipped, 0u);

  auto r2 = orch.run(2.0);
  ASSERT_TRUE(r2.is_ok()) << r2.status().to_string();
  EXPECT_EQ(r2.value().final_state, repair::ArrayState::kHealthy);
  EXPECT_TRUE(arr.failed_physical().empty());
  EXPECT_TRUE(arr.verify_all().is_ok());
  EXPECT_TRUE(arr.verify_checksums().is_ok());
}

// --- verifying scrub -------------------------------------------------------

TEST(VerifyingScrub, DetectsAndRepairsEverySilentCorruptionKind) {
  for (const auto kind :
       {SilentCorruption::kBitRot, SilentCorruption::kLostWrite,
        SilentCorruption::kMisdirectedWrite}) {
    SCOPED_TRACE(static_cast<int>(kind));
    array::ArrayConfig cfg;
    cfg.arch = layout::Architecture::mirror_with_parity(4, true);
    cfg.stripes = cfg.arch.total_disks();
    cfg.content_bytes = 64;
    cfg.logical_element_bytes = 4'000'000;
    cfg.checksums = true;
    array::DiskArray arr(cfg);
    arr.initialize();

    Rng rng(123 + static_cast<std::uint64_t>(kind));
    auto injected = inject_silent_corruption(arr, rng, 3, kind);
    ASSERT_TRUE(injected.is_ok()) << injected.status().to_string();
    const auto expected =
        static_cast<std::uint64_t>(injected.value().size());
    ASSERT_GE(expected, 3u);
    EXPECT_FALSE(arr.verify_checksums().is_ok());

    obs::TraceSink sink;
    obs::Observer ob;
    ob.trace = &sink;
    recon::ScrubOptions opts;
    opts.observer = &ob;
    auto report = recon::scrub(arr, opts);
    ASSERT_TRUE(report.is_ok()) << report.status().to_string();
    // 100% of the injections detected and repaired, none undecidable.
    EXPECT_EQ(report.value().checksum_mismatches, expected);
    EXPECT_EQ(report.value().repaired_by_checksum, expected);
    EXPECT_EQ(report.value().undecidable, 0u);
    EXPECT_EQ(std::count_if(sink.events().begin(), sink.events().end(),
                            [](const obs::TraceEvent& e) {
                              return e.kind == obs::EventKind::kCorruption;
                            }),
              static_cast<std::ptrdiff_t>(expected));

    EXPECT_TRUE(arr.verify_checksums().is_ok());
    EXPECT_TRUE(arr.verify_consistency(nullptr).is_ok());
    auto again = recon::scrub(arr);
    ASSERT_TRUE(again.is_ok());
    EXPECT_TRUE(again.value().clean());
  }
}

TEST(VerifyingScrub, ChecksumDependentInjectionsRequireChecksums) {
  array::ArrayConfig cfg;
  cfg.arch = layout::Architecture::mirror_with_parity(3, true);
  cfg.stripes = cfg.arch.total_disks();
  cfg.content_bytes = 64;
  array::DiskArray arr(cfg);  // checksums off
  arr.initialize();
  Rng rng(7);
  // Lost/misdirected writes ARE checksum-vs-content divergences.
  EXPECT_EQ(inject_silent_corruption(arr, rng, 1,
                                     SilentCorruption::kLostWrite)
                .status()
                .code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(inject_silent_corruption(arr, rng, 1,
                                     SilentCorruption::kMisdirectedWrite)
                .status()
                .code(),
            ErrorCode::kFailedPrecondition);
  // Bit rot needs no checksum store: the plain scrub attributes it
  // through the parity row.
  auto injected =
      inject_silent_corruption(arr, rng, 2, SilentCorruption::kBitRot);
  ASSERT_TRUE(injected.is_ok());
  auto report = recon::scrub(arr);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().checksum_mismatches, 0u);  // no store to check
  EXPECT_TRUE(arr.verify_consistency(nullptr).is_ok());
}

}  // namespace
}  // namespace sma::integrity
