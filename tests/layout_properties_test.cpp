#include "layout/properties.hpp"

#include <gtest/gtest.h>

namespace sma::layout {
namespace {

class ShiftedProps : public ::testing::TestWithParam<int> {};

TEST_P(ShiftedProps, ShiftedSatisfiesAllThreeProperties) {
  const int n = GetParam();
  ShiftedArrangement arr(n);
  EXPECT_TRUE(check_property1(arr).is_ok()) << "n=" << n;
  EXPECT_TRUE(check_property2(arr).is_ok()) << "n=" << n;
  EXPECT_TRUE(check_property3(arr).is_ok()) << "n=" << n;
  EXPECT_TRUE(evaluate_properties(arr).all());
}

INSTANTIATE_TEST_SUITE_P(N, ShiftedProps,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 10, 16));

TEST(Traditional, ViolatesP1P2ButSatisfiesP3) {
  // The identity arrangement keeps a data disk's replicas on one mirror
  // disk (breaking P1/P2 for n > 1) but each row is spread (P3 holds).
  TraditionalArrangement arr(4);
  EXPECT_FALSE(check_property1(arr).is_ok());
  EXPECT_FALSE(check_property2(arr).is_ok());
  EXPECT_TRUE(check_property3(arr).is_ok());
  const auto report = evaluate_properties(arr);
  EXPECT_TRUE(report.bijective);
  EXPECT_FALSE(report.p1);
  EXPECT_FALSE(report.p2);
  EXPECT_TRUE(report.p3);
  EXPECT_FALSE(report.all());
}

TEST(Traditional, TrivialForNEqualsOne) {
  TraditionalArrangement arr(1);
  EXPECT_TRUE(evaluate_properties(arr).all());
}

TEST(PropertyViolation, MessagesNameTheDisk) {
  TraditionalArrangement arr(3);
  const Status p1 = check_property1(arr);
  ASSERT_FALSE(p1.is_ok());
  EXPECT_NE(p1.message().find("P1 violated"), std::string::npos);
  const Status p2 = check_property2(arr);
  ASSERT_FALSE(p2.is_ok());
  EXPECT_NE(p2.message().find("P2 violated"), std::string::npos);
}

TEST(PropertyReport, ToStringReflectsFlags) {
  ShiftedArrangement shifted(3);
  EXPECT_EQ(evaluate_properties(shifted).to_string(), "bijective P1 P2 P3");
  TraditionalArrangement trad(3);
  EXPECT_EQ(evaluate_properties(trad).to_string(), "bijective !P1 !P2 P3");
}

TEST(IteratedFamily, P1P2FollowTheFibonacciLaw) {
  // Refinement of the paper's Section VI-E claim: the k-th iterate maps
  // a(i,j) to (F(k+1)i + F(k)j, F(k)i + F(k-1)j) mod n, so P1/P2 hold
  // iff gcd(F(k), n) == 1 — not for every odd k (k=3 has F(3)=2, which
  // breaks every even n). Cross-check the closed form against the
  // brute-force property checkers.
  for (int n = 2; n <= 8; ++n) {
    for (int k = 0; k <= 8; ++k) {
      auto arr = make_iterated(n, k);
      const bool expect = iterate_satisfies_p1p2(n, k);
      EXPECT_EQ(check_property1(*arr).is_ok(), expect)
          << "n=" << n << " k=" << k;
      EXPECT_EQ(check_property2(*arr).is_ok(), expect)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(IteratedFamily, PaperClaimHoldsWhenFibCoprimeToN) {
  // For the paper's own example (n = 3) all odd iterates do satisfy
  // P1/P2, because F(1)=1, F(3)=2, F(5)=5 are all coprime to 3.
  for (int k : {1, 3, 5}) {
    auto arr = make_iterated(3, k);
    EXPECT_TRUE(check_property1(*arr).is_ok()) << "k=" << k;
    EXPECT_TRUE(check_property2(*arr).is_ok()) << "k=" << k;
  }
  // ...but k=3 with even n is a counterexample to the blanket claim.
  auto arr = make_iterated(4, 3);
  EXPECT_FALSE(check_property1(*arr).is_ok());
}

TEST(IteratedFamily, NotAllOddIteratesSatisfyP3) {
  // Paper Fig. 8 (n = 3): the first and fifth arrangements satisfy P3
  // while the third does not.
  const int n = 3;
  EXPECT_TRUE(check_property3(*make_iterated(n, 1)).is_ok());
  EXPECT_FALSE(check_property3(*make_iterated(n, 3)).is_ok());
  EXPECT_TRUE(check_property3(*make_iterated(n, 5)).is_ok());
}

TEST(IteratedFamily, P3FollowsTheFibonacciLaw) {
  // P3 holds iff gcd(F(k+1), n) == 1. Notably k=2 (F(2)=1) satisfies
  // P1/P2 despite being even — the loop shifts break the naive
  // columns-back-to-columns intuition.
  for (int n = 2; n <= 8; ++n) {
    for (int k = 0; k <= 8; ++k) {
      auto arr = make_iterated(n, k);
      EXPECT_EQ(check_property3(*arr).is_ok(), iterate_satisfies_p3(n, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(CustomArrangement, RowSwapViolatesP3Detected) {
  // An arrangement that maps entire data rows onto single mirror disks:
  // b(j, i) = a(i, j) (pure transpose). P1/P2 hold (columns spread) but
  // P3 fails (a row's replicas all land on one mirror disk).
  const int n = 4;
  std::vector<std::vector<Pos>> table(n, std::vector<Pos>(n));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) table[i][j] = Pos{j, i};
  TableArrangement arr("transpose", std::move(table));
  EXPECT_TRUE(check_property1(arr).is_ok());
  EXPECT_TRUE(check_property2(arr).is_ok());
  EXPECT_FALSE(check_property3(arr).is_ok());
}

}  // namespace
}  // namespace sma::layout
