#include "disk/sim_disk.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace sma::disk {
namespace {

DiskSpec flat_spec() {
  // Simple numbers for hand-checkable math: 1 MB/s read & write,
  // positioning exactly 10 ms.
  DiskSpec s;
  s.read_mbps = 1.0;
  s.write_mbps = 1.0;
  s.avg_seek_s = 9e-3;
  s.rpm = 0;
  s.command_overhead_s = 1e-3;
  return s;
}

TEST(SimDisk, FirstAccessPaysPositioning) {
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  // transfer = 1 s; positioning = 10 ms.
  const double done = d.submit(IoKind::kRead, 0, 0.0);
  EXPECT_NEAR(done, 1.010, 1e-9);
  EXPECT_EQ(d.counters().reads, 1u);
  EXPECT_EQ(d.counters().sequential, 0u);
}

TEST(SimDisk, SequentialContinuationSkipsPositioning) {
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  d.submit(IoKind::kRead, 3, 0.0);
  const double done = d.submit(IoKind::kRead, 4, 0.0);
  EXPECT_NEAR(done, 1.010 + 1.0, 1e-9);
  EXPECT_EQ(d.counters().sequential, 1u);
}

TEST(SimDisk, NonAdjacentSlotSeeksAgain) {
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  d.submit(IoKind::kRead, 3, 0.0);
  const double done = d.submit(IoKind::kRead, 7, 0.0);
  EXPECT_NEAR(done, 2 * 1.010, 1e-9);
  // Backward movement seeks too.
  const double done2 = d.submit(IoKind::kRead, 6, 0.0);
  EXPECT_NEAR(done2, 3 * 1.010, 1e-9);
}

TEST(SimDisk, EarliestStartDelaysService) {
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  const double done = d.submit(IoKind::kRead, 0, 5.0);
  EXPECT_NEAR(done, 6.010, 1e-9);
}

TEST(SimDisk, QueueingBehindPriorIo) {
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  d.submit(IoKind::kRead, 0, 0.0);  // done at 1.010
  // Requested at t=0 but must wait; continues sequentially.
  const double done = d.submit(IoKind::kRead, 1, 0.0);
  EXPECT_NEAR(done, 2.010, 1e-9);
}

TEST(SimDisk, WriteUsesWriteRate) {
  DiskSpec s = flat_spec();
  s.write_mbps = 2.0;  // writes twice as fast
  SimDisk d(0, s, 10, 16, 1'000'000);
  const double done = d.submit(IoKind::kWrite, 0, 0.0);
  EXPECT_NEAR(done, 0.510, 1e-9);
  EXPECT_EQ(d.counters().writes, 1u);
  EXPECT_EQ(d.counters().logical_bytes_written, 1'000'000u);
}

TEST(SimDisk, PeekDoesNotMutate) {
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  const double est = d.peek_service_s(IoKind::kRead, 5);
  EXPECT_NEAR(est, 1.010, 1e-9);
  EXPECT_EQ(d.counters().reads, 0u);
  EXPECT_DOUBLE_EQ(d.busy_until(), 0.0);
}

TEST(SimDisk, ResetTimelineForgetsHeadPosition) {
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  d.submit(IoKind::kRead, 4, 0.0);
  d.reset_timeline();
  EXPECT_DOUBLE_EQ(d.busy_until(), 0.0);
  // Slot 5 would have been sequential; after reset it seeks.
  const double done = d.submit(IoKind::kRead, 5, 0.0);
  EXPECT_NEAR(done, 1.010, 1e-9);
}

TEST(SimDisk, ResetCountersZeroesStats) {
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  d.submit(IoKind::kRead, 0, 0.0);
  d.reset_counters();
  EXPECT_EQ(d.counters().reads, 0u);
  EXPECT_DOUBLE_EQ(d.counters().busy_s, 0.0);
}

TEST(SimDisk, ContentIsPerSlotAndPersistent) {
  SimDisk d(0, flat_spec(), 4, 8, 1'000'000);
  auto s0 = d.content(0);
  auto s3 = d.content(3);
  std::fill(s0.begin(), s0.end(), 0x11);
  std::fill(s3.begin(), s3.end(), 0x33);
  EXPECT_EQ(d.content(0)[7], 0x11);
  EXPECT_EQ(d.content(3)[0], 0x33);
  EXPECT_EQ(d.content(1)[0], 0x00);  // untouched slots zero-initialized
}

TEST(SimDisk, FailScramblesContentAndHealRestoresService) {
  SimDisk d(0, flat_spec(), 2, 8, 1'000'000);
  auto s = d.content(0);
  std::fill(s.begin(), s.end(), 0x42);
  d.fail();
  EXPECT_TRUE(d.failed());
  EXPECT_NE(d.content(0)[0], 0x42);  // data gone
  d.heal();
  EXPECT_FALSE(d.failed());
  d.submit(IoKind::kWrite, 0, 0.0);  // usable again
  EXPECT_EQ(d.counters().writes, 1u);
}

TEST(SimDisk, TraceDisabledByDefault) {
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  d.submit(IoKind::kRead, 0, 0.0);
  EXPECT_FALSE(d.tracing());
  EXPECT_TRUE(d.trace().empty());
}

TEST(SimDisk, TraceRecordsOpsInOrder) {
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  d.enable_trace();
  d.submit(IoKind::kRead, 3, 0.0);
  d.submit(IoKind::kRead, 4, 0.0);
  d.submit(IoKind::kWrite, 0, 0.0);
  ASSERT_EQ(d.trace().size(), 3u);
  const auto& t = d.trace();
  EXPECT_EQ(t[0].slot, 3);
  EXPECT_FALSE(t[0].sequential);
  EXPECT_NEAR(t[0].start_s, 0.0, 1e-12);
  EXPECT_NEAR(t[0].end_s, 1.010, 1e-9);
  EXPECT_EQ(t[1].slot, 4);
  EXPECT_TRUE(t[1].sequential);
  EXPECT_EQ(t[2].kind, IoKind::kWrite);
  // Ops on one disk never overlap in time.
  EXPECT_GE(t[1].start_s, t[0].end_s - 1e-12);
  EXPECT_GE(t[2].start_s, t[1].end_s - 1e-12);
}

TEST(SimDisk, ClearTraceKeepsRecording) {
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  d.enable_trace();
  d.submit(IoKind::kRead, 0, 0.0);
  d.clear_trace();
  EXPECT_TRUE(d.trace().empty());
  d.submit(IoKind::kRead, 5, 0.0);
  EXPECT_EQ(d.trace().size(), 1u);
}

TEST(SimDisk, BusyTimeAccumulates) {
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  d.submit(IoKind::kRead, 0, 0.0);
  d.submit(IoKind::kRead, 1, 0.0);
  EXPECT_NEAR(d.counters().busy_s, 1.010 + 1.0, 1e-9);
}

}  // namespace
}  // namespace sma::disk
