#include "disk/sim_disk.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace sma::disk {
namespace {

DiskSpec flat_spec() {
  // Simple numbers for hand-checkable math: 1 MB/s read & write,
  // positioning exactly 10 ms.
  DiskSpec s;
  s.read_mbps = 1.0;
  s.write_mbps = 1.0;
  s.avg_seek_s = 9e-3;
  s.rpm = 0;
  s.command_overhead_s = 1e-3;
  return s;
}

TEST(SimDisk, FirstAccessPaysPositioning) {
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  // transfer = 1 s; positioning = 10 ms.
  const double done = d.submit_ok(IoKind::kRead, 0, 0.0);
  EXPECT_NEAR(done, 1.010, 1e-9);
  EXPECT_EQ(d.counters().reads, 1u);
  EXPECT_EQ(d.counters().sequential, 0u);
}

TEST(SimDisk, SequentialContinuationSkipsPositioning) {
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  d.submit_ok(IoKind::kRead, 3, 0.0);
  const double done = d.submit_ok(IoKind::kRead, 4, 0.0);
  EXPECT_NEAR(done, 1.010 + 1.0, 1e-9);
  EXPECT_EQ(d.counters().sequential, 1u);
}

TEST(SimDisk, NonAdjacentSlotSeeksAgain) {
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  d.submit_ok(IoKind::kRead, 3, 0.0);
  const double done = d.submit_ok(IoKind::kRead, 7, 0.0);
  EXPECT_NEAR(done, 2 * 1.010, 1e-9);
  // Backward movement seeks too.
  const double done2 = d.submit_ok(IoKind::kRead, 6, 0.0);
  EXPECT_NEAR(done2, 3 * 1.010, 1e-9);
}

TEST(SimDisk, EarliestStartDelaysService) {
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  const double done = d.submit_ok(IoKind::kRead, 0, 5.0);
  EXPECT_NEAR(done, 6.010, 1e-9);
}

TEST(SimDisk, QueueingBehindPriorIo) {
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  d.submit_ok(IoKind::kRead, 0, 0.0);  // done at 1.010
  // Requested at t=0 but must wait; continues sequentially.
  const double done = d.submit_ok(IoKind::kRead, 1, 0.0);
  EXPECT_NEAR(done, 2.010, 1e-9);
}

TEST(SimDisk, WriteUsesWriteRate) {
  DiskSpec s = flat_spec();
  s.write_mbps = 2.0;  // writes twice as fast
  SimDisk d(0, s, 10, 16, 1'000'000);
  const double done = d.submit_ok(IoKind::kWrite, 0, 0.0);
  EXPECT_NEAR(done, 0.510, 1e-9);
  EXPECT_EQ(d.counters().writes, 1u);
  EXPECT_EQ(d.counters().logical_bytes_written, 1'000'000u);
}

TEST(SimDisk, PeekDoesNotMutate) {
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  const double est = d.peek_service_s(IoKind::kRead, 5);
  EXPECT_NEAR(est, 1.010, 1e-9);
  EXPECT_EQ(d.counters().reads, 0u);
  EXPECT_DOUBLE_EQ(d.busy_until(), 0.0);
}

TEST(SimDisk, ResetTimelineForgetsHeadPosition) {
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  d.submit_ok(IoKind::kRead, 4, 0.0);
  d.reset_timeline();
  EXPECT_DOUBLE_EQ(d.busy_until(), 0.0);
  // Slot 5 would have been sequential; after reset it seeks.
  const double done = d.submit_ok(IoKind::kRead, 5, 0.0);
  EXPECT_NEAR(done, 1.010, 1e-9);
}

TEST(SimDisk, ResetCountersZeroesStats) {
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  d.submit_ok(IoKind::kRead, 0, 0.0);
  d.reset_counters();
  EXPECT_EQ(d.counters().reads, 0u);
  EXPECT_DOUBLE_EQ(d.counters().busy_s, 0.0);
}

TEST(SimDisk, ContentIsPerSlotAndPersistent) {
  SimDisk d(0, flat_spec(), 4, 8, 1'000'000);
  auto s0 = d.content(0);
  auto s3 = d.content(3);
  std::fill(s0.begin(), s0.end(), 0x11);
  std::fill(s3.begin(), s3.end(), 0x33);
  EXPECT_EQ(d.content(0)[7], 0x11);
  EXPECT_EQ(d.content(3)[0], 0x33);
  EXPECT_EQ(d.content(1)[0], 0x00);  // untouched slots zero-initialized
}

TEST(SimDisk, FailScramblesContentAndHealRestoresService) {
  SimDisk d(0, flat_spec(), 2, 8, 1'000'000);
  auto s = d.content(0);
  std::fill(s.begin(), s.end(), 0x42);
  d.fail();
  EXPECT_TRUE(d.failed());
  EXPECT_NE(d.content(0)[0], 0x42);  // data gone
  // heal() requires every slot restored first.
  const std::vector<std::uint8_t> bytes(8, 0x42);
  d.restore_content(0, bytes);
  EXPECT_FALSE(d.fully_restored());
  d.restore_content(1, bytes);
  EXPECT_TRUE(d.fully_restored());
  ASSERT_TRUE(d.heal().is_ok());
  EXPECT_FALSE(d.failed());
  EXPECT_EQ(d.content(0)[0], 0x42);  // restored, not scramble pattern
  d.submit_ok(IoKind::kWrite, 0, 0.0);  // usable again
  EXPECT_EQ(d.counters().writes, 1u);
}

TEST(SimDisk, TraceDisabledByDefault) {
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  d.submit_ok(IoKind::kRead, 0, 0.0);
  EXPECT_FALSE(d.tracing());
  EXPECT_TRUE(d.trace().empty());
}

TEST(SimDisk, TraceRecordsOpsInOrder) {
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  d.enable_trace();
  d.submit_ok(IoKind::kRead, 3, 0.0);
  d.submit_ok(IoKind::kRead, 4, 0.0);
  d.submit_ok(IoKind::kWrite, 0, 0.0);
  ASSERT_EQ(d.trace().size(), 3u);
  const auto& t = d.trace();
  EXPECT_EQ(t[0].slot, 3);
  EXPECT_FALSE(t[0].sequential);
  EXPECT_NEAR(t[0].start_s, 0.0, 1e-12);
  EXPECT_NEAR(t[0].end_s, 1.010, 1e-9);
  EXPECT_EQ(t[1].slot, 4);
  EXPECT_TRUE(t[1].sequential);
  EXPECT_EQ(t[2].kind, IoKind::kWrite);
  // Ops on one disk never overlap in time.
  EXPECT_GE(t[1].start_s, t[0].end_s - 1e-12);
  EXPECT_GE(t[2].start_s, t[1].end_s - 1e-12);
}

TEST(SimDisk, ClearTraceKeepsRecording) {
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  d.enable_trace();
  d.submit_ok(IoKind::kRead, 0, 0.0);
  d.clear_trace();
  EXPECT_TRUE(d.trace().empty());
  d.submit_ok(IoKind::kRead, 5, 0.0);
  EXPECT_EQ(d.trace().size(), 1u);
}

TEST(SimDisk, BusyTimeAccumulates) {
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  d.submit_ok(IoKind::kRead, 0, 0.0);
  d.submit_ok(IoKind::kRead, 1, 0.0);
  EXPECT_NEAR(d.counters().busy_s, 1.010 + 1.0, 1e-9);
}

// --- fault injection -----------------------------------------------------

TEST(SimDiskFaults, SubmitToFailedDiskReturnsStatusNotAbort) {
  SimDisk d(0, flat_spec(), 4, 16, 1000);
  d.fail();
  const IoResult res = d.submit(IoKind::kRead, 0, 0.0);
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), ErrorCode::kIoError);
}

TEST(SimDiskFaults, OutOfRangeSlotReturnsStatusNotAbort) {
  SimDisk d(0, flat_spec(), 4, 16, 1000);
  const IoResult low = d.submit(IoKind::kRead, -1, 0.0);
  ASSERT_FALSE(low.is_ok());
  EXPECT_EQ(low.status().code(), ErrorCode::kOutOfRange);
  const IoResult high = d.submit(IoKind::kRead, 4, 0.0);
  ASSERT_FALSE(high.is_ok());
  EXPECT_EQ(high.status().code(), ErrorCode::kOutOfRange);
  // Rejected ops never touch the timeline or counters.
  EXPECT_DOUBLE_EQ(d.busy_until(), 0.0);
  EXPECT_EQ(d.counters().reads, 0u);
}

TEST(SimDiskFaults, InertProfileChangesNothing) {
  SimDisk plain(0, flat_spec(), 10, 16, 1'000'000);
  SimDisk faulted(0, flat_spec(), 10, 16, 1'000'000);
  faulted.set_fault_profile(FaultProfile{});  // inert
  EXPECT_EQ(faulted.latent_slot_count(), 0);
  for (int i = 0; i < 6; ++i) {
    const double a = plain.submit_ok(IoKind::kRead, i, 0.0);
    const double b = faulted.submit_ok(IoKind::kRead, i, 0.0);
    EXPECT_EQ(a, b);  // bit-identical timing
  }
}

TEST(SimDiskFaults, LatentSlotsAreDeterministicAndUnreadable) {
  FaultProfile p;
  p.latent_error_rate = 0.3;
  p.seed = 17;
  SimDisk d(3, flat_spec(), 100, 16, 1000);
  d.set_fault_profile(p);
  SimDisk d2(3, flat_spec(), 100, 16, 1000);
  d2.set_fault_profile(p);
  ASSERT_GT(d.latent_slot_count(), 0);
  EXPECT_EQ(d.latent_slot_count(), d2.latent_slot_count());
  for (std::int64_t s = 0; s < 100; ++s)
    EXPECT_EQ(d.slot_unreadable(s), d2.slot_unreadable(s));

  std::int64_t latent = -1;
  for (std::int64_t s = 0; s < 100; ++s)
    if (d.slot_unreadable(s)) { latent = s; break; }
  ASSERT_GE(latent, 0);
  const IoResult res = d.submit(IoKind::kRead, latent, 0.0);
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), ErrorCode::kUnreadableSector);
  // The failed attempt still occupied the disk.
  EXPECT_GT(d.busy_until(), 0.0);
  EXPECT_EQ(d.counters().unreadable_errors, 1u);
  // A successful write remaps the sector; the slot reads fine after.
  d.submit_ok(IoKind::kWrite, latent, 0.0);
  EXPECT_FALSE(d.slot_unreadable(latent));
  EXPECT_TRUE(d.submit(IoKind::kRead, latent, 0.0).is_ok());
}

TEST(SimDiskFaults, TransientErrorsRetrySucceedEventually) {
  FaultProfile p;
  p.transient_read_error_p = 0.5;
  p.seed = 5;
  SimDisk d(0, flat_spec(), 10, 16, 1000);
  d.set_fault_profile(p);
  int errors = 0;
  int successes = 0;
  for (int i = 0; i < 200; ++i) {
    const IoResult res = d.submit(IoKind::kRead, i % 10, 0.0);
    if (res.is_ok()) {
      ++successes;
    } else {
      ++errors;
      EXPECT_EQ(res.status().code(), ErrorCode::kIoError);
    }
  }
  EXPECT_GT(errors, 0);
  EXPECT_GT(successes, 0);
  EXPECT_EQ(d.counters().transient_errors, static_cast<std::uint64_t>(errors));
}

TEST(SimDiskFaults, SlowFactorStretchesService) {
  FaultProfile p;
  p.slow_factor = 2.0;
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  d.set_fault_profile(p);
  const double done = d.submit_ok(IoKind::kRead, 0, 0.0);
  EXPECT_NEAR(done, 2 * 1.010, 1e-9);
  EXPECT_NEAR(d.peek_service_s(IoKind::kRead, 5), 2 * 1.010, 1e-9);
}

TEST(SimDiskFaults, ScheduledFailStopKillsOnFirstAccessAtOrAfter) {
  FaultProfile p;
  p.fail_at_s = 1.5;
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  d.set_fault_profile(p);
  // Starts at t=0 < 1.5: served normally (completes past the deadline).
  EXPECT_TRUE(d.submit(IoKind::kRead, 0, 0.0).is_ok());
  // Next op starts at busy_until() = 1.010 < 1.5: still served.
  EXPECT_TRUE(d.submit(IoKind::kRead, 1, 0.0).is_ok());
  // Now busy_until() = 2.010 >= 1.5: the fail-stop manifests.
  const IoResult res = d.submit(IoKind::kRead, 2, 0.0);
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), ErrorCode::kIoError);
  EXPECT_TRUE(d.failed());
}

TEST(SimDiskFaults, HealDiscardsLatentSetAndConsumedFailStop) {
  FaultProfile p;
  p.latent_error_rate = 0.5;
  p.fail_at_s = 100.0;
  p.seed = 9;
  SimDisk d(0, flat_spec(), 20, 8, 1000);
  d.set_fault_profile(p);
  ASSERT_GT(d.latent_slot_count(), 0);
  d.fail();
  const std::vector<std::uint8_t> bytes(8, 0xAA);
  for (std::int64_t s = 0; s < 20; ++s) d.restore_content(s, bytes);
  ASSERT_TRUE(d.heal().is_ok());
  // Replacement hardware: no latent sectors, no pending fail-stop.
  EXPECT_EQ(d.latent_slot_count(), 0);
  EXPECT_TRUE(d.submit(IoKind::kRead, 0, 200.0).is_ok());
}

TEST(SimDisk, HealMisuseReturnsStatus) {
  SimDisk d(0, flat_spec(), 2, 8, 1'000'000);
  // Healing a disk that never failed is a recoverable error, not an
  // abort: the repair orchestrator reports it up as a Status.
  Status never_failed = d.heal();
  ASSERT_FALSE(never_failed.is_ok());
  EXPECT_EQ(never_failed.code(), ErrorCode::kFailedPrecondition);
  d.fail();
  const std::vector<std::uint8_t> bytes(8, 0x5A);
  d.restore_content(0, bytes);  // slot 1 never restored
  Status partial = d.heal();
  ASSERT_FALSE(partial.is_ok());
  EXPECT_EQ(partial.code(), ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(d.failed());  // the failed state is untouched by the misuse
  d.restore_content(1, bytes);
  EXPECT_TRUE(d.heal().is_ok());
  EXPECT_FALSE(d.failed());
}

TEST(SimDisk, RestoredSlotsServeOnFailedDisk) {
  SimDisk d(0, flat_spec(), 2, 8, 1'000'000);
  d.fail();
  const std::vector<std::uint8_t> bytes(8, 0x5A);
  d.restore_content(0, bytes);
  EXPECT_TRUE(d.slot_restored(0));
  // The replacement serves rebuilt slots mid-rebuild — reads for a
  // resumed rebuild and the replacement writes themselves.
  EXPECT_TRUE(d.submit(IoKind::kRead, 0, 0.0).is_ok());
  EXPECT_TRUE(d.submit(IoKind::kWrite, 0, 0.0).is_ok());
  // Everything not yet restored is still dead.
  const IoResult unrestored = d.submit(IoKind::kRead, 1, 0.0);
  ASSERT_FALSE(unrestored.is_ok());
  EXPECT_EQ(unrestored.status().code(), ErrorCode::kIoError);
}

TEST(SimDiskFaults, FailStopAtTimeZeroKillsFirstAccess) {
  FaultProfile p;
  p.fail_at_s = 0.0;
  SimDisk d(0, flat_spec(), 10, 16, 1'000'000);
  d.set_fault_profile(p);
  // Every access starts at t >= 0: the very first one fail-stops.
  const IoResult res = d.submit(IoKind::kRead, 0, 0.0);
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), ErrorCode::kIoError);
  EXPECT_TRUE(d.failed());
  EXPECT_EQ(d.counters().reads, 0u);  // died before serving anything
}

}  // namespace
}  // namespace sma::disk
