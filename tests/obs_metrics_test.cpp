#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include "obs/observer.hpp"
#include "obs/trace_sink.hpp"

namespace sma::obs {
namespace {

TEST(Metrics, ScalarsCreatedOnFirstUse) {
  MetricsRegistry m;
  m.counter("a") += 3;
  m.counter("a") += 2;
  m.gauge("g") = 1.5;
  m.stat("s").add(2.0);
  m.stat("s").add(4.0);
  EXPECT_EQ(m.counters().at("a"), 5u);
  EXPECT_DOUBLE_EQ(m.gauges().at("g"), 1.5);
  EXPECT_DOUBLE_EQ(m.stats().at("s").mean(), 3.0);
}

TEST(Metrics, HistogramShapeFixedOnFirstCall) {
  MetricsRegistry m;
  auto& h = m.histogram("lat", 0.0, 0.1, 10);
  h.add(0.05);
  // Later calls return the same histogram; shape args are ignored.
  auto& again = m.histogram("lat", 99.0, 99.0, 1);
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.total(), 1u);
}

TEST(Metrics, CadenceSamplesEveryInterval) {
  MetricsRegistry m;
  m.set_sample_interval(1.0);
  int calls = 0;
  m.add_probe("x", [&calls](double, double) {
    ++calls;
    return static_cast<double>(calls);
  });
  m.advance_to(3.5);  // boundaries 0, 1, 2, 3
  ASSERT_EQ(m.timeline().size(), 4u);
  EXPECT_EQ(calls, 4);
  EXPECT_DOUBLE_EQ(m.timeline()[0].t_s, 0.0);
  EXPECT_DOUBLE_EQ(m.timeline()[3].t_s, 3.0);
  m.advance_to(3.9);  // no boundary crossed
  EXPECT_EQ(m.timeline().size(), 4u);
  m.advance_to(4.0);
  EXPECT_EQ(m.timeline().size(), 5u);
}

TEST(Metrics, ProbeDtIsWindowSinceLastSample) {
  MetricsRegistry m;
  m.set_sample_interval(0.5);
  std::vector<double> dts;
  m.add_probe("dt", [&dts](double, double dt) {
    dts.push_back(dt);
    return dt;
  });
  m.advance_to(1.0);
  ASSERT_EQ(dts.size(), 3u);  // t = 0, 0.5, 1.0
  EXPECT_DOUBLE_EQ(dts[0], 0.0);  // first tick: no prior window
  EXPECT_DOUBLE_EQ(dts[1], 0.5);
  EXPECT_DOUBLE_EQ(dts[2], 0.5);
}

TEST(Metrics, DisabledByDefault) {
  MetricsRegistry m;
  int calls = 0;
  m.add_probe("x", [&calls](double, double) {
    ++calls;
    return 0.0;
  });
  m.advance_to(100.0);  // interval is 0: sampling off
  EXPECT_TRUE(m.timeline().empty());
  EXPECT_EQ(calls, 0);
}

TEST(Metrics, NoProbesMeansNoRows) {
  MetricsRegistry m;
  m.set_sample_interval(1.0);
  m.advance_to(10.0);
  EXPECT_TRUE(m.timeline().empty());
}

TEST(Metrics, ColumnsSurviveClearProbes) {
  MetricsRegistry m;
  m.set_sample_interval(1.0);
  m.add_probe("a", [](double, double) { return 1.0; });
  m.add_probe("b", [](double, double) { return 2.0; });
  m.advance_to(0.0);
  m.clear_probes();  // what an experiment does before returning
  EXPECT_EQ(m.probe_count(), 0u);
  ASSERT_EQ(m.timeline().size(), 1u);
  ASSERT_EQ(m.columns().size(), 2u);  // still describes the rows
  EXPECT_EQ(m.columns()[0], "a");
  EXPECT_EQ(m.columns()[1], "b");
  EXPECT_DOUBLE_EQ(m.timeline()[0].values[1], 2.0);
}

TEST(Metrics, SampleNowTakesOffCadenceRow) {
  MetricsRegistry m;
  m.add_probe("x", [](double now, double) { return now; });
  m.sample_now(2.25);  // works even with sampling disabled
  ASSERT_EQ(m.timeline().size(), 1u);
  EXPECT_DOUBLE_EQ(m.timeline()[0].t_s, 2.25);
  EXPECT_DOUBLE_EQ(m.timeline()[0].values[0], 2.25);
}

TEST(Observer, InactiveWithoutSinks) {
  Observer ob;
  EXPECT_FALSE(ob.active());
  // All hooks are safe no-ops on an inactive observer.
  TraceEvent ev;
  ob.emit(ev);
  ob.count("x");
  ob.advance_time(1.0);
}

TEST(Observer, RoutesToAttachedSinks) {
  TraceSink trace;
  MetricsRegistry metrics;
  metrics.set_sample_interval(1.0);
  metrics.add_probe("p", [](double, double) { return 1.0; });

  Observer ob;
  ob.trace = &trace;
  EXPECT_TRUE(ob.active());
  ob.metrics = &metrics;

  TraceEvent ev;
  ev.kind = EventKind::kRetry;
  ob.emit(ev);
  ob.count("c", 2);
  ob.count("c");
  ob.advance_time(2.0);

  EXPECT_EQ(trace.count(EventKind::kRetry), 1u);
  EXPECT_EQ(metrics.counters().at("c"), 3u);
  EXPECT_EQ(metrics.timeline().size(), 3u);  // t = 0, 1, 2
}

}  // namespace
}  // namespace sma::obs
