#include "disk/disk_model.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace sma::disk {
namespace {

TEST(DiskSpec, SavvioMatchesPaperNumbers) {
  const DiskSpec s = DiskSpec::savvio_10k3();
  EXPECT_DOUBLE_EQ(s.read_mbps, 54.8);
  EXPECT_DOUBLE_EQ(s.write_mbps, 130.0);
  EXPECT_DOUBLE_EQ(s.rpm, 10000.0);
}

TEST(DiskSpec, RotationalLatencyIsHalfRevolution) {
  DiskSpec s;
  s.rpm = 10000;
  // Half a revolution at 10 krpm = 3 ms.
  EXPECT_NEAR(s.avg_rotational_latency_s(), 3e-3, 1e-9);
  s.rpm = 7200;
  EXPECT_NEAR(s.avg_rotational_latency_s(), 60.0 / 7200 / 2, 1e-12);
  s.rpm = 0;  // SSD: no spindle
  EXPECT_DOUBLE_EQ(s.avg_rotational_latency_s(), 0.0);
}

TEST(DiskSpec, TransferTimesMatchRates) {
  const DiskSpec s = DiskSpec::savvio_10k3();
  const std::uint64_t four_mb = 4'000'000;
  EXPECT_NEAR(s.read_transfer_s(four_mb), 4.0 / 54.8, 1e-9);
  EXPECT_NEAR(s.write_transfer_s(four_mb), 4.0 / 130.0, 1e-9);
  // Reads slower than writes on this disk, as the paper notes.
  EXPECT_GT(s.read_transfer_s(four_mb), s.write_transfer_s(four_mb));
}

TEST(DiskSpec, PositioningComposesSeekRotationOverhead) {
  DiskSpec s;
  s.avg_seek_s = 4e-3;
  s.rpm = 10000;
  s.command_overhead_s = 1e-3;
  s.seek_scale = 1.0;
  EXPECT_NEAR(s.positioning_s(), 4e-3 + 3e-3 + 1e-3, 1e-12);
}

TEST(DiskSpec, SeekScaleScalesMechanicalPartOnly) {
  DiskSpec s;
  s.avg_seek_s = 4e-3;
  s.rpm = 10000;
  s.command_overhead_s = 1e-3;
  s.seek_scale = 0.0;
  EXPECT_NEAR(s.positioning_s(), 1e-3, 1e-12);
  s.seek_scale = 2.0;
  EXPECT_NEAR(s.positioning_s(), 2 * 7e-3 + 1e-3, 1e-12);
}

TEST(DiskSpec, SsdLikeHasNegligiblePositioning) {
  const DiskSpec ssd = DiskSpec::ssd_like();
  EXPECT_LT(ssd.positioning_s(), 1e-4);
  EXPECT_GT(ssd.read_mbps, 100.0);
}

TEST(Units, ThroughputHelper) {
  EXPECT_DOUBLE_EQ(throughput_mbps(54.8e6, 1.0), 54.8);
  EXPECT_DOUBLE_EQ(throughput_mbps(1e6, 0.0), 0.0);  // guard
  EXPECT_DOUBLE_EQ(mbps_to_bytes_per_sec(1.0), 1e6);
}

}  // namespace
}  // namespace sma::disk
