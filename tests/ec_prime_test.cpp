#include "ec/prime.hpp"

#include <gtest/gtest.h>

namespace sma::ec {
namespace {

TEST(Prime, SmallValues) {
  EXPECT_FALSE(is_prime(-3));
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(5));
  EXPECT_FALSE(is_prime(9));
  EXPECT_TRUE(is_prime(97));
  EXPECT_FALSE(is_prime(91));  // 7*13
  EXPECT_FALSE(is_prime(100));
}

TEST(Prime, MatchesSieveUpTo1000) {
  // Reference sieve.
  std::vector<bool> composite(1001, false);
  for (int i = 2; i <= 1000; ++i)
    if (!composite[static_cast<std::size_t>(i)])
      for (int j = 2 * i; j <= 1000; j += i)
        composite[static_cast<std::size_t>(j)] = true;
  for (int i = 2; i <= 1000; ++i)
    EXPECT_EQ(is_prime(i), !composite[static_cast<std::size_t>(i)]) << i;
}

TEST(Prime, NextPrimeAtLeast) {
  EXPECT_EQ(next_prime_at_least(-5), 2);
  EXPECT_EQ(next_prime_at_least(0), 2);
  EXPECT_EQ(next_prime_at_least(2), 2);
  EXPECT_EQ(next_prime_at_least(3), 3);
  EXPECT_EQ(next_prime_at_least(4), 5);
  EXPECT_EQ(next_prime_at_least(8), 11);
  EXPECT_EQ(next_prime_at_least(11), 11);
  EXPECT_EQ(next_prime_at_least(12), 13);
  EXPECT_EQ(next_prime_at_least(24), 29);
  EXPECT_EQ(next_prime_at_least(90), 97);
}

TEST(Prime, NextPrimeIsAlwaysPrimeAndMinimal) {
  for (int n = 2; n <= 200; ++n) {
    const int p = next_prime_at_least(n);
    EXPECT_TRUE(is_prime(p));
    EXPECT_GE(p, n);
    for (int q = n; q < p; ++q) EXPECT_FALSE(is_prime(q));
  }
}

}  // namespace
}  // namespace sma::ec
