#include "ec/solver.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace sma::ec {
namespace {

std::vector<std::uint8_t> buf(std::initializer_list<int> bytes) {
  std::vector<std::uint8_t> out;
  for (int b : bytes) out.push_back(static_cast<std::uint8_t>(b));
  return out;
}

TEST(PeelingSolver, SingleUnknownDirect) {
  PeelingSolver s(2);
  const int x = s.add_unknown();
  s.add_relation({x}, buf({0xAB, 0xCD}));
  ASSERT_TRUE(s.solve().is_ok());
  EXPECT_EQ(s.value(x), buf({0xAB, 0xCD}));
}

TEST(PeelingSolver, ChainOfSubstitutions) {
  // x = 1; x ^ y = 3 => y = 2; y ^ z = 6 => z = 4.
  PeelingSolver s(1);
  const int x = s.add_unknown();
  const int y = s.add_unknown();
  const int z = s.add_unknown();
  s.add_relation({y, z}, buf({6}));
  s.add_relation({x, y}, buf({3}));
  s.add_relation({x}, buf({1}));
  ASSERT_TRUE(s.solve().is_ok());
  EXPECT_EQ(s.value(x), buf({1}));
  EXPECT_EQ(s.value(y), buf({2}));
  EXPECT_EQ(s.value(z), buf({4}));
}

TEST(PeelingSolver, StuckSystemReportsUnrecoverable) {
  // x ^ y = c twice: never a single-unknown relation.
  PeelingSolver s(1);
  const int x = s.add_unknown();
  const int y = s.add_unknown();
  s.add_relation({x, y}, buf({5}));
  s.add_relation({x, y}, buf({5}));
  const Status st = s.solve();
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), ErrorCode::kUnrecoverable);
}

TEST(PeelingSolver, RedundantConsistentRelationsAreFine) {
  PeelingSolver s(1);
  const int x = s.add_unknown();
  const int y = s.add_unknown();
  s.add_relation({x}, buf({7}));
  s.add_relation({x, y}, buf({7 ^ 9}));
  s.add_relation({y}, buf({9}));  // redundant but consistent
  ASSERT_TRUE(s.solve().is_ok());
  EXPECT_EQ(s.value(x), buf({7}));
  EXPECT_EQ(s.value(y), buf({9}));
}

TEST(PeelingSolver, EmptyRelationIsIgnored) {
  PeelingSolver s(1);
  const int x = s.add_unknown();
  s.add_relation({}, buf({0}));
  s.add_relation({x}, buf({3}));
  ASSERT_TRUE(s.solve().is_ok());
  EXPECT_EQ(s.value(x), buf({3}));
}

TEST(PeelingSolver, NoUnknownsSolvesTrivially) {
  PeelingSolver s(4);
  EXPECT_TRUE(s.solve().is_ok());
}

TEST(PeelingSolver, LargeRandomTriangularSystem) {
  // Build a random lower-triangular XOR system: relation i covers
  // unknowns {0..i} so peeling resolves them in reverse insert order.
  const int n = 50;
  const std::size_t eb = 16;
  Rng rng(77);
  std::vector<std::vector<std::uint8_t>> truth;
  for (int i = 0; i < n; ++i) {
    std::vector<std::uint8_t> v(eb);
    fill_pattern(rng.next_u64(), v.data(), eb);
    truth.push_back(std::move(v));
  }
  PeelingSolver s(eb);
  std::vector<int> ids;
  for (int i = 0; i < n; ++i) ids.push_back(s.add_unknown());
  for (int i = 0; i < n; ++i) {
    std::vector<int> in;
    std::vector<std::uint8_t> rhs(eb, 0);
    for (int j = 0; j <= i; ++j) {
      in.push_back(ids[static_cast<std::size_t>(j)]);
      for (std::size_t b = 0; b < eb; ++b)
        rhs[b] ^= truth[static_cast<std::size_t>(j)][b];
    }
    s.add_relation(std::move(in), std::move(rhs));
  }
  ASSERT_TRUE(s.solve().is_ok());
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(s.value(ids[static_cast<std::size_t>(i)]),
              truth[static_cast<std::size_t>(i)]);
}

}  // namespace
}  // namespace sma::ec
