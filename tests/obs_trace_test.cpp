#include "obs/trace_sink.hpp"

#include <sstream>

#include <gtest/gtest.h>

namespace sma::obs {
namespace {

TraceEvent make_event(EventKind kind, double t) {
  TraceEvent ev;
  ev.kind = kind;
  ev.t_s = t;
  return ev;
}

TEST(TraceSink, StartsEmpty) {
  TraceSink sink;
  EXPECT_TRUE(sink.empty());
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.count(EventKind::kRetry), 0u);
}

TEST(TraceSink, PreservesAppendOrder) {
  TraceSink sink;
  sink.record(make_event(EventKind::kRequestArrive, 3.0));
  sink.record(make_event(EventKind::kQueueEnter, 1.0));
  sink.record(make_event(EventKind::kServiceStart, 2.0));
  ASSERT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.events()[0].kind, EventKind::kRequestArrive);
  EXPECT_EQ(sink.events()[1].kind, EventKind::kQueueEnter);
  EXPECT_EQ(sink.events()[2].kind, EventKind::kServiceStart);
  EXPECT_DOUBLE_EQ(sink.events()[0].t_s, 3.0);
}

TEST(TraceSink, CountsByKind) {
  TraceSink sink;
  for (int i = 0; i < 3; ++i)
    sink.record(make_event(EventKind::kServiceStart, i));
  sink.record(make_event(EventKind::kFailure, 9.0));
  EXPECT_EQ(sink.count(EventKind::kServiceStart), 3u);
  EXPECT_EQ(sink.count(EventKind::kFailure), 1u);
  EXPECT_EQ(sink.count(EventKind::kHeal), 0u);
}

TEST(TraceSink, EventKindNamesRoundTrip) {
  for (const auto kind :
       {EventKind::kRequestArrive, EventKind::kQueueEnter,
        EventKind::kQueueLeave, EventKind::kServiceStart,
        EventKind::kServiceEnd, EventKind::kRebuildIssue,
        EventKind::kRebuildComplete, EventKind::kFailure, EventKind::kHeal,
        EventKind::kRetry}) {
    auto parsed = event_kind_from(to_string(kind));
    ASSERT_TRUE(parsed.is_ok()) << to_string(kind);
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(event_kind_from("no_such_event").is_ok());
}

TEST(TraceSink, JsonlRoundTripsExactly) {
  TraceSink sink;
  TraceEvent ev;
  ev.kind = EventKind::kServiceStart;
  ev.t_s = 0.123456789012345678;  // exercises %.17g fidelity
  ev.dur_s = 1.0 / 3.0;
  ev.disk = 4;
  ev.stripe = 7;
  ev.request_id = 42;
  ev.slot = 1234567890123LL;
  ev.rebuild = true;
  ev.write = true;
  sink.record(ev);
  sink.record(make_event(EventKind::kHeal, 2.5));  // all defaults

  std::ostringstream out;
  ASSERT_TRUE(sink.write_jsonl(out).is_ok());
  std::istringstream in(out.str());
  auto parsed = TraceSink::parse_jsonl(in);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const auto& events = parsed.value().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kServiceStart);
  EXPECT_EQ(events[0].t_s, ev.t_s);  // bit-exact, not just approximate
  EXPECT_EQ(events[0].dur_s, ev.dur_s);
  EXPECT_EQ(events[0].disk, 4);
  EXPECT_EQ(events[0].stripe, 7);
  EXPECT_EQ(events[0].request_id, 42);
  EXPECT_EQ(events[0].slot, 1234567890123LL);
  EXPECT_TRUE(events[0].rebuild);
  EXPECT_TRUE(events[0].write);
  EXPECT_EQ(events[1].kind, EventKind::kHeal);
  EXPECT_EQ(events[1].disk, -1);
  EXPECT_FALSE(events[1].rebuild);
}

TEST(TraceSink, JsonlOmitsDefaultFields) {
  TraceSink sink;
  sink.record(make_event(EventKind::kFailure, 1.0));
  std::ostringstream out;
  ASSERT_TRUE(sink.write_jsonl(out).is_ok());
  EXPECT_EQ(out.str(), "{\"ev\":\"failure\",\"t\":1}\n");
}

TEST(TraceSink, ParseRejectsGarbage) {
  std::istringstream in("{\"ev\":\"not_a_kind\",\"t\":1}\n");
  EXPECT_FALSE(TraceSink::parse_jsonl(in).is_ok());
  std::istringstream in2("not json at all\n");
  EXPECT_FALSE(TraceSink::parse_jsonl(in2).is_ok());
}

TEST(TraceSink, ChromeTraceEmitsSlicesForServiceIntervals) {
  TraceSink sink;
  TraceEvent ev;
  ev.kind = EventKind::kServiceStart;
  ev.t_s = 1.5;
  ev.dur_s = 0.25;
  ev.disk = 2;
  ev.slot = 9;
  sink.record(ev);
  ev.kind = EventKind::kServiceEnd;
  ev.t_s = 1.75;
  ev.dur_s = 0.0;
  sink.record(ev);
  sink.record(make_event(EventKind::kFailure, 0.5));

  std::ostringstream out;
  ASSERT_TRUE(sink.write_chrome_trace(out).is_ok());
  const std::string json = out.str();
  // One complete slice ("X") for the service interval, µs timestamps.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1500000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":250000"), std::string::npos);
  // tid is disk + 1 so non-disk events get track 0.
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  // kServiceEnd is folded into the slice, not emitted separately.
  EXPECT_EQ(json.find("service_end"), std::string::npos);
  // The failure becomes an instant event.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"failure\""), std::string::npos);
}

TEST(TraceSink, ClearResets) {
  TraceSink sink;
  sink.record(make_event(EventKind::kRetry, 1.0));
  sink.clear();
  EXPECT_TRUE(sink.empty());
  EXPECT_EQ(sink.count(EventKind::kRetry), 0u);
}

}  // namespace
}  // namespace sma::obs
