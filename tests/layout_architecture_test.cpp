#include "layout/architecture.hpp"

#include <gtest/gtest.h>

namespace sma::layout {
namespace {

TEST(Architecture, MirrorShape) {
  const auto a = Architecture::mirror(5, /*shifted=*/true);
  EXPECT_EQ(a.kind(), ArchKind::kMirrorShifted);
  EXPECT_EQ(a.n(), 5);
  EXPECT_EQ(a.rows(), 5);
  EXPECT_EQ(a.total_disks(), 10);
  EXPECT_EQ(a.fault_tolerance(), 1);
  EXPECT_EQ(a.parity_disks(), 0);
  EXPECT_TRUE(a.is_mirror());
  EXPECT_TRUE(a.is_shifted());
  EXPECT_FALSE(a.has_parity());
  EXPECT_DOUBLE_EQ(a.storage_efficiency(), 0.5);
  ASSERT_NE(a.arrangement(), nullptr);
  EXPECT_EQ(a.arrangement()->name(), "shifted");
}

TEST(Architecture, MirrorTraditionalUsesIdentityArrangement) {
  const auto a = Architecture::mirror(3, /*shifted=*/false);
  EXPECT_EQ(a.kind(), ArchKind::kMirrorTraditional);
  EXPECT_FALSE(a.is_shifted());
  EXPECT_EQ(a.arrangement()->name(), "traditional");
  EXPECT_EQ(a.replica_of(1, 2), (Pos{a.mirror_disk(1), 2}));
}

TEST(Architecture, MirrorWithParityShape) {
  const auto a = Architecture::mirror_with_parity(4, true);
  EXPECT_EQ(a.kind(), ArchKind::kMirrorParityShifted);
  EXPECT_EQ(a.total_disks(), 9);
  EXPECT_EQ(a.fault_tolerance(), 2);
  EXPECT_EQ(a.parity_disks(), 1);
  EXPECT_TRUE(a.has_parity());
  EXPECT_EQ(a.parity_disk(), 8);
  EXPECT_DOUBLE_EQ(a.storage_efficiency(), 4.0 / 9.0);
  EXPECT_EQ(a.name(), "mirror-parity-shifted");
}

TEST(Architecture, StorageEfficiencyMatchesPaperFormulas) {
  // Paper Section VI-D: n/2n for mirror, n/(2n+1) with parity, n/(n+2)
  // for RAID-6.
  for (int n = 1; n <= 10; ++n) {
    EXPECT_DOUBLE_EQ(Architecture::mirror(n, true).storage_efficiency(),
                     n / (2.0 * n));
    EXPECT_DOUBLE_EQ(
        Architecture::mirror_with_parity(n, true).storage_efficiency(),
        n / (2.0 * n + 1));
    EXPECT_DOUBLE_EQ(Architecture::raid6(n).storage_efficiency(),
                     static_cast<double>(n) / (n + 2));
  }
}

TEST(Architecture, Raid5Shape) {
  const auto a = Architecture::raid5(4);
  EXPECT_EQ(a.total_disks(), 5);
  EXPECT_EQ(a.rows(), 4);
  EXPECT_EQ(a.fault_tolerance(), 1);
  EXPECT_FALSE(a.is_mirror());
  EXPECT_EQ(a.parity_disk(), 4);
  EXPECT_EQ(a.role_of(4), DiskRole::kParity);
}

TEST(Architecture, Raid6ShortenedRows) {
  // rows = p - 1 with p the smallest prime >= n + 1.
  EXPECT_EQ(Architecture::raid6(3).rows(), 4);   // p=5
  EXPECT_EQ(Architecture::raid6(4).rows(), 4);   // p=5
  EXPECT_EQ(Architecture::raid6(5).rows(), 6);   // p=7
  EXPECT_EQ(Architecture::raid6(6).rows(), 6);   // p=7
  EXPECT_EQ(Architecture::raid6(7).rows(), 10);  // p=11
  EXPECT_EQ(Architecture::raid6(5).parity_disks(), 2);
  EXPECT_EQ(Architecture::raid6(5).parity_disk(1), 6);
}

TEST(Architecture, RoleMapping) {
  const auto a = Architecture::mirror_with_parity(3, true);
  EXPECT_EQ(a.role_of(0), DiskRole::kData);
  EXPECT_EQ(a.role_of(2), DiskRole::kData);
  EXPECT_EQ(a.role_of(3), DiskRole::kMirror);
  EXPECT_EQ(a.role_of(5), DiskRole::kMirror);
  EXPECT_EQ(a.role_of(6), DiskRole::kParity);
  EXPECT_EQ(a.role_index(0), 0);
  EXPECT_EQ(a.role_index(4), 1);
  EXPECT_EQ(a.role_index(6), 0);
  EXPECT_EQ(a.mirror_disk(2), 5);
  EXPECT_EQ(a.data_disk(1), 1);
}

TEST(Architecture, ReplicaMappingShifted) {
  const auto a = Architecture::mirror(3, true);
  // a(0,1) -> mirror local (1, 0) -> global disk 4.
  EXPECT_EQ(a.replica_of(0, 1), (Pos{4, 0}));
  // Inverse: mirror disk index 1, row 0 replicates a(0, 1).
  EXPECT_EQ(a.replicated_by(1, 0), (Pos{0, 1}));
}

TEST(Architecture, ReplicaAndReplicatedByAreInverse) {
  const auto a = Architecture::mirror_with_parity(5, true);
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 5; ++j) {
      const Pos replica = a.replica_of(i, j);
      const int mirror_index = a.role_index(replica.disk);
      EXPECT_EQ(a.replicated_by(mirror_index, replica.row), (Pos{i, j}));
    }
}

TEST(Architecture, Names) {
  EXPECT_EQ(Architecture::mirror(3, false).name(), "mirror-traditional");
  EXPECT_EQ(Architecture::mirror(3, true).name(), "mirror-shifted");
  EXPECT_EQ(Architecture::mirror_with_parity(3, false).name(),
            "mirror-parity-traditional");
  EXPECT_EQ(Architecture::raid5(3).name(), "raid5");
  EXPECT_EQ(Architecture::raid6(3).name(), "raid6-shortened");
}

}  // namespace
}  // namespace sma::layout
