// Property/fuzz test for the repair lifecycle state machine: seeded
// random event sequences — valid and malformed alike — are thrown at a
// Lifecycle while a shadow model tracks what each event *should* do.
// Invariants: a call is accepted exactly when its documented
// precondition holds, a rejected call never mutates the machine, the
// state always equals classify() over the shadow model, malformed
// sequences return a Status (never abort), and the recorded history is
// time-monotonic with its tail equal to the current state.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "repair/lifecycle.hpp"
#include "util/rng.hpp"

namespace sma::repair {
namespace {

/// The documented precondition/transition rules, restated independently
/// so the test fails if Lifecycle drifts from its contract.
struct ShadowModel {
  explicit ShadowModel(layout::Architecture a) : arch(std::move(a)) {}

  layout::Architecture arch;
  std::vector<int> failed;
  std::vector<int> repairing;
  bool spare_starved = false;
  bool inconsistent = false;
  bool resyncing = false;

  bool contains(const std::vector<int>& v, int x) const {
    for (const int e : v)
      if (e == x) return true;
    return false;
  }
  ArrayState state() const {
    return classify(arch, failed, !repairing.empty(), spare_starved,
                    inconsistent, resyncing);
  }
  bool terminal() const { return state() == ArrayState::kDataLoss; }
};

enum class Ev {
  kFailure,
  kRepairStart,
  kRepairComplete,
  kSpareExhausted,
  kSpareAvailable,
  kCrash,
  kResyncStart,
  kResyncComplete,
};

/// Whether the event is valid in the shadow state, per the contract.
bool expect_valid(const ShadowModel& m, Ev ev, int disk) {
  if (m.terminal()) return false;
  switch (ev) {
    case Ev::kFailure:
      return disk >= 0 && disk < m.arch.total_disks() &&
             !m.contains(m.failed, disk);
    case Ev::kRepairStart:
      return m.contains(m.failed, disk) && !m.contains(m.repairing, disk);
    case Ev::kRepairComplete:
      return m.contains(m.repairing, disk);
    case Ev::kSpareExhausted:
    case Ev::kSpareAvailable:
    case Ev::kCrash:
      return true;
    case Ev::kResyncStart:
      return m.inconsistent && !m.resyncing;
    case Ev::kResyncComplete:
      return m.resyncing;
  }
  return false;
}

/// Apply an accepted event to the shadow state.
void apply(ShadowModel& m, Ev ev, int disk) {
  switch (ev) {
    case Ev::kFailure:
      m.failed.push_back(disk);
      break;
    case Ev::kRepairStart:
      m.repairing.push_back(disk);
      m.spare_starved = false;
      break;
    case Ev::kRepairComplete:
      for (auto& v : {&m.failed, &m.repairing})
        v->erase(std::remove(v->begin(), v->end(), disk), v->end());
      break;
    case Ev::kSpareExhausted:
      m.spare_starved = true;
      break;
    case Ev::kSpareAvailable:
      m.spare_starved = false;
      break;
    case Ev::kCrash:
      m.inconsistent = true;
      m.resyncing = false;  // a crash mid-resync cancels that resync
      break;
    case Ev::kResyncStart:
      m.resyncing = true;
      break;
    case Ev::kResyncComplete:
      m.resyncing = false;
      m.inconsistent = false;
      break;
  }
}

Status fire(Lifecycle& lc, Ev ev, double t, int disk) {
  switch (ev) {
    case Ev::kFailure: return lc.on_failure(t, disk);
    case Ev::kRepairStart: return lc.on_repair_start(t, disk);
    case Ev::kRepairComplete: return lc.on_repair_complete(t, disk);
    case Ev::kSpareExhausted: return lc.on_spare_exhausted(t);
    case Ev::kSpareAvailable: return lc.on_spare_available(t);
    case Ev::kCrash: return lc.on_crash(t);
    case Ev::kResyncStart: return lc.on_resync_start(t);
    case Ev::kResyncComplete: return lc.on_resync_complete(t);
  }
  return internal_error("unknown event");
}

TEST(LifecycleFuzz, RandomSequencesMatchTheShadowModel) {
  const auto arch = layout::Architecture::mirror_with_parity(3, true);
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed * 977);
    Lifecycle lc(arch);
    ShadowModel shadow(arch);
    double t = 0.0;
    for (int step = 0; step < 80; ++step) {
      t += 0.5;
      const Ev ev = static_cast<Ev>(rng.next_below(8));
      // Mostly in-range disks (to reach deep states), occasionally a
      // nonsense id to probe the validation path.
      const int disk = rng.next_bool(0.9)
                           ? static_cast<int>(rng.next_below(
                                 static_cast<std::uint64_t>(
                                     arch.total_disks())))
                           : arch.total_disks() + 3;
      const bool want_ok = expect_valid(shadow, ev, disk);
      const Status st = fire(lc, ev, t, disk);
      ASSERT_EQ(st.is_ok(), want_ok)
          << "seed " << seed << " step " << step << " ev "
          << static_cast<int>(ev) << " disk " << disk << ": "
          << st.to_string();
      if (want_ok) apply(shadow, ev, disk);
      // A rejected event must not have mutated anything, an accepted
      // one must land exactly where the contract says.
      ASSERT_EQ(lc.state(), shadow.state())
          << "seed " << seed << " step " << step;
      ASSERT_EQ(lc.terminal(), shadow.terminal());
      ASSERT_EQ(lc.failed().size(), shadow.failed.size());
      ASSERT_EQ(lc.repairing().size(), shadow.repairing.size());
      // The state integer stays inside the enum's range.
      const int s = static_cast<int>(lc.state());
      ASSERT_GE(s, 0);
      ASSERT_LE(s, static_cast<int>(ArrayState::kResyncing));
    }
    // History invariants: time-monotonic, contiguous from->to chain
    // starting at healthy and ending at the current state.
    const auto& h = lc.history();
    ArrayState prev = ArrayState::kHealthy;
    double prev_t = 0.0;
    for (const Transition& tr : h) {
      EXPECT_GE(tr.t_s, prev_t);
      EXPECT_EQ(tr.from, prev);
      EXPECT_NE(tr.from, tr.to);  // only real changes are recorded
      EXPECT_FALSE(tr.reason.empty());
      prev = tr.to;
      prev_t = tr.t_s;
    }
    EXPECT_EQ(prev, lc.state());
  }
}

TEST(LifecycleFuzz, MalformedSequencesReturnStatusNeverAbort) {
  const auto arch = layout::Architecture::mirror_with_parity(3, true);
  Lifecycle lc(arch);
  // Every precondition violation is a Status, and none of them moves
  // the machine off healthy.
  EXPECT_EQ(lc.on_repair_start(1.0, 0).code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(lc.on_repair_complete(1.0, 0).code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(lc.on_resync_start(1.0).code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(lc.on_resync_complete(1.0).code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(lc.on_failure(1.0, -1).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(lc.on_failure(1.0, arch.total_disks()).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(lc.state(), ArrayState::kHealthy);
  EXPECT_TRUE(lc.history().empty());

  // Double-failure of one disk without an intervening repair.
  ASSERT_TRUE(lc.on_failure(2.0, 1).is_ok());
  EXPECT_EQ(lc.on_failure(2.5, 1).code(), ErrorCode::kFailedPrecondition);
  // Double-start of one repair.
  ASSERT_TRUE(lc.on_repair_start(3.0, 1).is_ok());
  EXPECT_EQ(lc.on_repair_start(3.5, 1).code(),
            ErrorCode::kFailedPrecondition);
  // Crash cancels an in-flight resync; completing it afterward is stale.
  ASSERT_TRUE(lc.on_crash(4.0).is_ok());
  ASSERT_TRUE(lc.on_resync_start(4.5).is_ok());
  ASSERT_TRUE(lc.on_crash(5.0).is_ok());
  EXPECT_EQ(lc.on_resync_complete(5.5).code(),
            ErrorCode::kFailedPrecondition);
}

}  // namespace
}  // namespace sma::repair
