#include "ec/rs.hpp"

#include <gtest/gtest.h>

#include "gf/region.hpp"

namespace sma::ec {
namespace {

class RsParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RsParam, SelfTestUpToDoubleErasures) {
  const auto [k, m] = GetParam();
  CauchyRsCodec codec(k, m, 3);
  EXPECT_EQ(codec.data_columns(), k);
  EXPECT_EQ(codec.parity_columns(), m);
  EXPECT_EQ(codec.fault_tolerance(), m);
  // self_test enumerates patterns up to size 2.
  EXPECT_TRUE(codec.self_test(0x55AA).is_ok()) << codec.name();
}

INSTANTIATE_TEST_SUITE_P(Shapes, RsParam,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 9),
                                            ::testing::Values(1, 2, 3)));

TEST(CauchyRs, TripleErasureWithThreeParity) {
  CauchyRsCodec codec(4, 3, 2);
  ColumnSet ref = codec.make_stripe(64);
  ref.fill_pattern(31);
  ASSERT_TRUE(codec.encode(ref).is_ok());
  // Lose 3 columns spanning data and parity.
  const std::vector<int> erased{0, 2, 5};
  ColumnSet damaged = ref;
  for (const int c : erased) damaged.zero_column(c);
  ASSERT_TRUE(codec.decode(damaged, erased).is_ok());
  for (int c = 0; c < damaged.columns(); ++c)
    EXPECT_TRUE(damaged.column_equals(c, ref, c));
}

TEST(CauchyRs, AllDataLostWithEnoughParity) {
  CauchyRsCodec codec(3, 3, 2);
  ColumnSet ref = codec.make_stripe(32);
  ref.fill_pattern(8);
  ASSERT_TRUE(codec.encode(ref).is_ok());
  ColumnSet damaged = ref;
  damaged.zero_column(0);
  damaged.zero_column(1);
  damaged.zero_column(2);
  ASSERT_TRUE(codec.decode(damaged, {0, 1, 2}).is_ok());
  for (int c = 0; c < damaged.columns(); ++c)
    EXPECT_TRUE(damaged.column_equals(c, ref, c));
}

TEST(CauchyRs, RejectsBeyondTolerance) {
  CauchyRsCodec codec(4, 2, 1);
  ColumnSet cs = codec.make_stripe(8);
  EXPECT_EQ(codec.decode(cs, {0, 1, 2}).code(), ErrorCode::kUnrecoverable);
}

TEST(CauchyRs, ParityOnlyLossRecomputesWithoutMatrixInverse) {
  CauchyRsCodec codec(5, 2, 2);
  ColumnSet ref = codec.make_stripe(16);
  ref.fill_pattern(77);
  ASSERT_TRUE(codec.encode(ref).is_ok());
  ColumnSet damaged = ref;
  damaged.zero_column(5);
  damaged.zero_column(6);
  ASSERT_TRUE(codec.decode(damaged, {5, 6}).is_ok());
  for (int c = 0; c < damaged.columns(); ++c)
    EXPECT_TRUE(damaged.column_equals(c, ref, c));
}

TEST(CauchyRs, SingleParityEqualsRaid5Semantics) {
  // With m=1 the Cauchy row is a constant-multiple of each column, not
  // necessarily plain XOR — but decode must still round-trip.
  CauchyRsCodec codec(4, 1, 2);
  EXPECT_TRUE(codec.self_test(99).is_ok());
}

TEST(CauchyRs, MirrorAsRsDegenerate) {
  // k=1, m=1: two copies related by a constant factor. Losing either
  // column must round-trip.
  CauchyRsCodec codec(1, 1, 3);
  EXPECT_TRUE(codec.self_test(1).is_ok());
}

}  // namespace
}  // namespace sma::ec
