#include "core/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.hpp"

namespace sma::core {
namespace {

core::MirroredVolume make_volume() {
  core::VolumeConfig cfg;
  cfg.n = 3;
  cfg.with_parity = true;
  cfg.shifted = true;
  cfg.content_bytes = 64;
  auto vol = core::MirroredVolume::create(cfg);
  EXPECT_TRUE(vol.is_ok());
  return std::move(vol).take();
}

TEST(TraceParse, BasicOpsCommentsAndBlanks) {
  std::istringstream in(
      "# header comment\n"
      "R 0 128\n"
      "\n"
      "W 64 32   # inline comment\n"
      "r 10 1\n"
      "w 0 5\n");
  auto ops = parse_trace(in);
  ASSERT_TRUE(ops.is_ok()) << ops.status().to_string();
  ASSERT_EQ(ops.value().size(), 4u);
  EXPECT_FALSE(ops.value()[0].is_write);
  EXPECT_EQ(ops.value()[0].offset, 0u);
  EXPECT_EQ(ops.value()[0].length, 128u);
  EXPECT_TRUE(ops.value()[1].is_write);
  EXPECT_EQ(ops.value()[1].offset, 64u);
  EXPECT_FALSE(ops.value()[2].is_write);
  EXPECT_TRUE(ops.value()[3].is_write);
}

TEST(TraceParse, RejectsBadLines) {
  {
    std::istringstream in("X 0 10\n");
    EXPECT_EQ(parse_trace(in).status().code(), ErrorCode::kInvalidArgument);
  }
  {
    std::istringstream in("R 0\n");  // missing length
    EXPECT_EQ(parse_trace(in).status().code(), ErrorCode::kInvalidArgument);
  }
  {
    std::istringstream in("R 0 0\n");  // zero length
    EXPECT_EQ(parse_trace(in).status().code(), ErrorCode::kInvalidArgument);
  }
  {
    std::istringstream in("R -5 10\n");
    EXPECT_EQ(parse_trace(in).status().code(), ErrorCode::kInvalidArgument);
  }
  {
    std::istringstream in("R 0 10 junk\n");
    EXPECT_EQ(parse_trace(in).status().code(), ErrorCode::kInvalidArgument);
  }
}

TEST(TraceParse, ErrorNamesTheLine) {
  std::istringstream in("R 0 10\nW 5 5\nBOGUS 1 2\n");
  const auto status = parse_trace(in).status();
  EXPECT_NE(status.message().find("line 3"), std::string::npos);
}

TEST(TraceReplay, CountsAndConsistency) {
  auto vol = make_volume();
  std::istringstream in(
      "W 0 100\n"
      "R 0 100\n"
      "W 250 64\n"
      "R 200 164\n");
  auto ops = parse_trace(in);
  ASSERT_TRUE(ops.is_ok());
  auto report = replay_trace(vol, ops.value());
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().reads, 2u);
  EXPECT_EQ(report.value().writes, 2u);
  EXPECT_EQ(report.value().bytes_read, 264u);
  EXPECT_EQ(report.value().bytes_written, 164u);
  EXPECT_TRUE(vol.verify().is_ok());
}

TEST(TraceReplay, WriteThenReadReturnsWrittenBytes) {
  auto vol = make_volume();
  const std::vector<TraceOp> ops{{true, 10, 50}};
  ASSERT_TRUE(replay_trace(vol, ops, /*seed=*/7).is_ok());
  // Regenerate what the replayer wrote for op index 0.
  std::vector<std::uint8_t> expect(50);
  sma::fill_pattern(7 ^ 0x9e3779b97f4a7c15ULL, expect.data(), expect.size());
  std::vector<std::uint8_t> got(50);
  ASSERT_TRUE(vol.read_range(10, got).is_ok());
  EXPECT_EQ(got, expect);
}

TEST(TraceReplay, OutOfRangeOpFailsWithOpNumber) {
  auto vol = make_volume();
  const std::vector<TraceOp> ops{{false, 0, 10},
                                 {true, vol.capacity_bytes(), 1}};
  const auto status = replay_trace(vol, ops).status();
  EXPECT_EQ(status.code(), ErrorCode::kOutOfRange);
  EXPECT_NE(status.message().find("trace op 2"), std::string::npos);
}

TEST(TraceReplay, WorksDegraded) {
  auto vol = make_volume();
  vol.fail_disk(1);
  const std::vector<TraceOp> ops{{true, 0, 200}, {false, 0, 200}};
  auto report = replay_trace(vol, ops);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().reads, 1u);
}

TEST(TraceReplay, EmptyTraceTrivial) {
  auto vol = make_volume();
  auto report = replay_trace(vol, {});
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().reads + report.value().writes, 0u);
}

}  // namespace
}  // namespace sma::core
