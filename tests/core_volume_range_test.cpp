#include "core/volume.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace sma::core {
namespace {

MirroredVolume make_volume(int n, bool parity) {
  VolumeConfig cfg;
  cfg.n = n;
  cfg.with_parity = parity;
  cfg.shifted = true;
  cfg.content_bytes = 64;
  cfg.seed = 21;
  auto vol = MirroredVolume::create(cfg);
  EXPECT_TRUE(vol.is_ok());
  return std::move(vol).take();
}

TEST(VolumeRange, CapacityMatchesGeometry) {
  auto vol = make_volume(3, false);
  // stripes = 6 (one stack of 2n disks), rows = 3, n = 3, 64 B each.
  EXPECT_EQ(vol.capacity_bytes(), 6u * 3 * 3 * 64);
}

TEST(VolumeRange, RoundTripAlignedElement) {
  auto vol = make_volume(3, true);
  std::vector<std::uint8_t> payload(64);
  std::iota(payload.begin(), payload.end(), 0);
  ASSERT_TRUE(vol.write_range(64 * 5, payload).is_ok());
  std::vector<std::uint8_t> got(64);
  ASSERT_TRUE(vol.read_range(64 * 5, got).is_ok());
  EXPECT_EQ(got, payload);
  EXPECT_TRUE(vol.verify().is_ok());
}

TEST(VolumeRange, UnalignedSpanningWrite) {
  auto vol = make_volume(3, true);
  // 200 bytes starting mid-element: touches 4 elements partially/fully.
  std::vector<std::uint8_t> payload(200);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 7);
  const std::uint64_t offset = 64 * 2 + 17;
  ASSERT_TRUE(vol.write_range(offset, payload).is_ok());
  std::vector<std::uint8_t> got(200);
  ASSERT_TRUE(vol.read_range(offset, got).is_ok());
  EXPECT_EQ(got, payload);
  // Partial-element RMW must not disturb neighbours.
  std::vector<std::uint8_t> before(17);
  ASSERT_TRUE(vol.read_range(64 * 2, before).is_ok());
  std::vector<std::uint8_t> expect(17);
  // Bytes before the write keep the initial pattern; verify simply by
  // internal consistency (parity still valid).
  EXPECT_TRUE(vol.verify().is_ok());
}

TEST(VolumeRange, ZeroLengthIsNoOp) {
  auto vol = make_volume(3, false);
  std::vector<std::uint8_t> nothing;
  EXPECT_TRUE(vol.read_range(0, nothing).is_ok());
  EXPECT_TRUE(vol.write_range(vol.capacity_bytes(), nothing).is_ok());
}

TEST(VolumeRange, OutOfRangeRejected) {
  auto vol = make_volume(3, false);
  std::vector<std::uint8_t> buf(64);
  EXPECT_EQ(vol.read_range(vol.capacity_bytes() - 10, buf).code(),
            ErrorCode::kOutOfRange);
  EXPECT_EQ(vol.write_range(vol.capacity_bytes(), buf).code(),
            ErrorCode::kOutOfRange);
}

TEST(VolumeRange, WholeVolumeRoundTrip) {
  auto vol = make_volume(2, true);
  const std::uint64_t cap = vol.capacity_bytes();
  std::vector<std::uint8_t> payload(cap);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i ^ (i >> 8));
  ASSERT_TRUE(vol.write_range(0, payload).is_ok());
  std::vector<std::uint8_t> got(cap);
  ASSERT_TRUE(vol.read_range(0, got).is_ok());
  EXPECT_EQ(got, payload);
  EXPECT_TRUE(vol.verify().is_ok());
}

TEST(VolumeRange, DegradedRangeReadAfterDiskFailure) {
  auto vol = make_volume(4, false);
  std::vector<std::uint8_t> payload(300, 0xC3);
  ASSERT_TRUE(vol.write_range(100, payload).is_ok());
  vol.fail_disk(1);
  std::vector<std::uint8_t> got(300);
  ASSERT_TRUE(vol.read_range(100, got).is_ok());
  EXPECT_EQ(got, payload);
}

TEST(VolumeRange, RangeAddressingIsRowMajorAcrossDisks) {
  // offset 0..eb-1 -> element (disk 0, stripe 0, row 0); the next
  // element along the linear space is disk 1 of the same row.
  auto vol = make_volume(3, false);
  std::vector<std::uint8_t> payload(64, 0xEE);
  ASSERT_TRUE(vol.write_range(64, payload).is_ok());  // second element
  std::vector<std::uint8_t> got(64);
  ASSERT_TRUE(vol.read_element(1, 0, 0, got).is_ok());
  EXPECT_EQ(got, payload);
}

}  // namespace
}  // namespace sma::core
