#include "ec/matrix.hpp"

#include <gtest/gtest.h>

#include "gf/gf256.hpp"
#include "util/rng.hpp"

namespace sma::ec {
namespace {

TEST(GfMatrix, IdentityMultiplication) {
  GfMatrix id = GfMatrix::identity(4);
  GfMatrix m(4, 4);
  Rng rng(1);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c)
      m.set(r, c, static_cast<std::uint8_t>(rng.next_below(256)));
  EXPECT_EQ(id.multiply(m), m);
  EXPECT_EQ(m.multiply(id), m);
}

TEST(GfMatrix, MultiplyShapes) {
  GfMatrix a(2, 3);
  GfMatrix b(3, 4);
  a.set(0, 0, 1);
  a.set(1, 2, 2);
  b.set(0, 1, 3);
  b.set(2, 3, 4);
  const GfMatrix c = a.multiply(b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 4);
  EXPECT_EQ(c.at(0, 1), 3);
  EXPECT_EQ(c.at(1, 3), gf::mul(2, 4));
}

TEST(GfMatrix, InvertIdentity) {
  const GfMatrix id = GfMatrix::identity(5);
  auto inv = id.inverted();
  ASSERT_TRUE(inv.is_ok());
  EXPECT_EQ(inv.value(), id);
}

TEST(GfMatrix, InvertRandomNonsingular) {
  // Cauchy matrices are always nonsingular.
  for (int n : {1, 2, 3, 5, 8}) {
    GfMatrix c(n, n);
    for (int r = 0; r < n; ++r)
      for (int col = 0; col < n; ++col)
        c.set(r, col,
              gf::inv(gf::add(static_cast<std::uint8_t>(r),
                              static_cast<std::uint8_t>(n + col))));
    auto inv = c.inverted();
    ASSERT_TRUE(inv.is_ok()) << "n=" << n;
    EXPECT_EQ(c.multiply(inv.value()), GfMatrix::identity(n));
    EXPECT_EQ(inv.value().multiply(c), GfMatrix::identity(n));
  }
}

TEST(GfMatrix, InvertSingularFails) {
  GfMatrix m(2, 2);
  m.set(0, 0, 3);
  m.set(0, 1, 5);
  m.set(1, 0, 3);
  m.set(1, 1, 5);  // duplicate rows -> singular
  auto inv = m.inverted();
  EXPECT_FALSE(inv.is_ok());
  EXPECT_EQ(inv.status().code(), ErrorCode::kFailedPrecondition);
}

TEST(GfMatrix, InvertNonSquareFails) {
  GfMatrix m(2, 3);
  auto inv = m.inverted();
  EXPECT_FALSE(inv.is_ok());
  EXPECT_EQ(inv.status().code(), ErrorCode::kInvalidArgument);
}

TEST(GfMatrix, InvertZeroPivotNeedsRowSwap) {
  // [[0,1],[1,0]] has a zero pivot at (0,0) but is invertible.
  GfMatrix m(2, 2);
  m.set(0, 1, 1);
  m.set(1, 0, 1);
  auto inv = m.inverted();
  ASSERT_TRUE(inv.is_ok());
  EXPECT_EQ(m.multiply(inv.value()), GfMatrix::identity(2));
}

TEST(GfMatrix, SelectRows) {
  GfMatrix m(3, 2);
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 2; ++c)
      m.set(r, c, static_cast<std::uint8_t>(10 * r + c));
  const GfMatrix sel = m.select_rows({2, 0});
  EXPECT_EQ(sel.rows(), 2);
  EXPECT_EQ(sel.at(0, 1), 21);
  EXPECT_EQ(sel.at(1, 0), 0);
}

TEST(Cauchy, EntriesMatchDefinition) {
  const GfMatrix c = make_cauchy(3, 4);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 4; ++j)
      EXPECT_EQ(c.at(i, j),
                gf::inv(gf::add(static_cast<std::uint8_t>(i),
                                static_cast<std::uint8_t>(3 + j))));
}

TEST(Cauchy, EverySquareSubmatrixOfGeneratorInvertible) {
  // MDS sanity: [I; C] with C Cauchy — any k rows form an invertible
  // matrix. Exhaustive for k=3, m=2 (10 subsets).
  const int k = 3;
  const int m = 2;
  const GfMatrix c = make_cauchy(m, k);
  GfMatrix gen(k + m, k);
  for (int i = 0; i < k; ++i) gen.set(i, i, 1);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < k; ++j) gen.set(k + i, j, c.at(i, j));

  for (int a = 0; a < k + m; ++a)
    for (int b = a + 1; b < k + m; ++b)
      for (int d = b + 1; d < k + m; ++d) {
        auto sub = gen.select_rows({a, b, d});
        EXPECT_TRUE(sub.inverted().is_ok())
            << "rows " << a << "," << b << "," << d;
      }
}

}  // namespace
}  // namespace sma::ec
