#include "recon/online.hpp"

#include <map>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace_sink.hpp"
#include "recon/executor.hpp"

namespace sma::recon {
namespace {

array::ArrayConfig cfg_for(layout::Architecture arch, int stacks = 2) {
  array::ArrayConfig cfg;
  cfg.arch = arch;
  cfg.stripes = stacks * arch.total_disks();
  cfg.content_bytes = 64;
  cfg.logical_element_bytes = 4'000'000;
  cfg.seed = 5;
  return cfg;
}

TEST(Online, RequiresMirrorArchitecture) {
  array::DiskArray arr(cfg_for(layout::Architecture::raid5(3)));
  arr.initialize();
  arr.fail_physical(0);
  auto report = run_online_reconstruction(arr);
  EXPECT_FALSE(report.is_ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kInvalidArgument);
}

TEST(Online, AcceptsHealthyRejectsDoubleFailure) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror(3, true)));
  arr.initialize();
  // Zero failures is a valid healthy-array serve (no rebuild traffic):
  // the fleet layer runs non-failed arrays through the same engine.
  auto none = run_online_reconstruction(arr);
  ASSERT_TRUE(none.is_ok()) << none.status().to_string();
  EXPECT_EQ(none.value().rebuild_done_s, 0.0);
  arr.fail_physical(0);
  arr.fail_physical(1);
  // Two failures exceed the mirror method's tolerance anyway.
  auto two = run_online_reconstruction(arr);
  EXPECT_FALSE(two.is_ok());
}

TEST(Online, CompletesRebuildAndCollectsLatencies) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror(3, true)));
  arr.initialize();
  arr.fail_physical(0);
  OnlineConfig cfg;
  cfg.arrival.max_requests = 100;
  cfg.arrival.rate_hz = 20;
  auto report = run_online_reconstruction(arr, cfg);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_GT(report.value().rebuild_done_s, 0.0);
  EXPECT_EQ(report.value().user_reads, 100u);
  EXPECT_GT(report.value().mean_latency_s, 0.0);
  EXPECT_GE(report.value().p99_latency_s, report.value().p50_latency_s);
  EXPECT_GE(report.value().max_latency_s, report.value().p99_latency_s);
}

TEST(Online, DeterministicForFixedSeed) {
  auto run = [] {
    array::DiskArray arr(cfg_for(layout::Architecture::mirror(3, true)));
    arr.initialize();
    arr.fail_physical(2);
    OnlineConfig cfg;
    cfg.arrival.max_requests = 50;
    cfg.arrival.seed = 99;
    return run_online_reconstruction(arr, cfg);
  };
  auto a = run();
  auto b = run();
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_DOUBLE_EQ(a.value().mean_latency_s, b.value().mean_latency_s);
  EXPECT_DOUBLE_EQ(a.value().rebuild_done_s, b.value().rebuild_done_s);
  EXPECT_EQ(a.value().degraded_reads, b.value().degraded_reads);
}

TEST(Online, DegradedReadsServedFromReplica) {
  // Fail a data-array disk; roughly 1/n of user reads should target it
  // and be redirected, and all of them must complete.
  array::DiskArray arr(cfg_for(layout::Architecture::mirror(4, true)));
  arr.initialize();
  arr.fail_physical(1);
  OnlineConfig cfg;
  cfg.arrival.max_requests = 400;
  cfg.arrival.seed = 3;
  auto report = run_online_reconstruction(arr, cfg);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().user_reads, 400u);
  EXPECT_GT(report.value().degraded_reads, 0u);
  EXPECT_LT(report.value().degraded_reads, 200u);
  EXPECT_GT(report.value().mean_degraded_latency_s, 0.0);
}

TEST(Online, WriteMixProducesWriteLatencies) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror_with_parity(4, true)));
  arr.initialize();
  arr.fail_physical(0);
  OnlineConfig cfg;
  cfg.arrival.max_requests = 300;
  cfg.mix.write_fraction = 0.5;
  cfg.arrival.seed = 41;
  auto report = run_online_reconstruction(arr, cfg);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  const auto& r = report.value();
  EXPECT_EQ(r.user_reads + r.user_writes, 300u);
  EXPECT_GT(r.user_writes, 90u);  // ~150 expected
  EXPECT_LT(r.user_writes, 210u);
  EXPECT_GT(r.mean_write_latency_s, 0.0);
  EXPECT_GE(r.p99_write_latency_s, r.mean_write_latency_s);
}

TEST(Online, PureWriteWorkload) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror(3, true)));
  arr.initialize();
  arr.fail_physical(1);
  OnlineConfig cfg;
  cfg.arrival.max_requests = 100;
  cfg.mix.write_fraction = 1.0;
  auto report = run_online_reconstruction(arr, cfg);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().user_writes, 100u);
  EXPECT_EQ(report.value().user_reads, 0u);
  EXPECT_DOUBLE_EQ(report.value().mean_latency_s, 0.0);  // no reads
  EXPECT_GT(report.value().mean_write_latency_s, 0.0);
}

TEST(Online, WriteLatencyBoundedBelowByServiceTime) {
  // A write completes only when its slowest piece does; even unqueued
  // it cannot beat one positioning + one element transfer at the write
  // rate. (It CAN beat reads on this disk: writes stream at 130 MB/s
  // vs 54.8 MB/s reads — the paper's spec-sheet asymmetry.)
  array::DiskArray arr(cfg_for(layout::Architecture::mirror_with_parity(4, true)));
  arr.initialize();
  arr.fail_physical(2);
  OnlineConfig cfg;
  cfg.arrival.max_requests = 400;
  cfg.mix.write_fraction = 0.5;
  cfg.arrival.rate_hz = 10;  // light load isolates service times
  auto report = run_online_reconstruction(arr, cfg);
  ASSERT_TRUE(report.is_ok());
  const auto& spec = arr.physical(0).spec();
  const double min_service =
      spec.positioning_s() + spec.write_transfer_s(4'000'000);
  EXPECT_GE(report.value().mean_write_latency_s, min_service);
  // Reads are slower per element on this disk model.
  EXPECT_GT(report.value().mean_latency_s,
            report.value().mean_write_latency_s * 0.8);
}

TEST(Online, RejectsBadWriteFraction) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror(3, true)));
  arr.initialize();
  arr.fail_physical(0);
  OnlineConfig cfg;
  cfg.mix.write_fraction = 1.5;
  EXPECT_FALSE(run_online_reconstruction(arr, cfg).is_ok());
}

TEST(Online, SecondFailureMidRebuildAbsorbedWithParity) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror_with_parity(4, true)));
  arr.initialize();
  arr.fail_physical(0);
  OnlineConfig cfg;
  cfg.arrival.max_requests = 300;
  cfg.arrival.rate_hz = 40;
  cfg.second_failure_at_s = 1.0;
  cfg.second_failure_disk = 5;
  cfg.arrival.seed = 33;
  auto report = run_online_reconstruction(arr, cfg);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().second_failure_injected);
  EXPECT_GT(report.value().rebuild_done_s, 1.0);  // work continued past it
  EXPECT_EQ(report.value().user_reads + report.value().user_writes, 300u);
}

TEST(Online, SecondFailureCostsRebuildTime) {
  auto run = [](bool inject) {
    array::DiskArray arr(
        cfg_for(layout::Architecture::mirror_with_parity(4, true)));
    arr.initialize();
    arr.fail_physical(0);
    OnlineConfig cfg;
    cfg.arrival.max_requests = 100;
    cfg.arrival.seed = 12;
    if (inject) {
      cfg.second_failure_at_s = 0.5;
      cfg.second_failure_disk = 2;
    }
    auto r = run_online_reconstruction(arr, cfg);
    EXPECT_TRUE(r.is_ok()) << r.status().to_string();
    return r.value().rebuild_done_s;
  };
  EXPECT_GT(run(true), run(false));
}

TEST(Online, SecondFailureRejectedWithoutParity) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror(3, true)));
  arr.initialize();
  arr.fail_physical(0);
  OnlineConfig cfg;
  cfg.second_failure_at_s = 1.0;
  cfg.second_failure_disk = 1;
  auto report = run_online_reconstruction(arr, cfg);
  EXPECT_FALSE(report.is_ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kInvalidArgument);
}

TEST(Online, SecondFailureValidation) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror_with_parity(3, true)));
  arr.initialize();
  arr.fail_physical(0);
  OnlineConfig cfg;
  cfg.second_failure_at_s = 1.0;
  cfg.second_failure_disk = 0;  // same disk as the first failure
  EXPECT_FALSE(run_online_reconstruction(arr, cfg).is_ok());
  cfg.second_failure_disk = 99;
  EXPECT_FALSE(run_online_reconstruction(arr, cfg).is_ok());
}

TEST(Online, SecondFailureLateIsHarmless) {
  // Injection far after the rebuild drains: the dead disk's own rebuild
  // restarts and completes; everything stays consistent.
  array::DiskArray arr(cfg_for(layout::Architecture::mirror_with_parity(3, true)));
  arr.initialize();
  arr.fail_physical(0);
  OnlineConfig cfg;
  cfg.arrival.max_requests = 20;
  cfg.arrival.rate_hz = 200;  // arrivals finish early
  cfg.second_failure_at_s = 500.0;
  cfg.second_failure_disk = 4;
  auto report = run_online_reconstruction(arr, cfg);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_GE(report.value().rebuild_done_s, 500.0);
}

TEST(Online, ShiftedKeepsUserLatencyLowerUnderRebuildPressure) {
  // With rebuild traffic concentrated on one partner disk, traditional
  // user reads hitting that disk queue badly. Same seed & workload.
  auto run = [](bool shifted) {
    array::DiskArray arr(cfg_for(layout::Architecture::mirror(5, shifted), 4));
    arr.initialize();
    arr.fail_physical(0);
    OnlineConfig cfg;
    cfg.arrival.max_requests = 300;
    cfg.arrival.rate_hz = 30;
    cfg.arrival.seed = 17;
    auto r = run_online_reconstruction(arr, cfg);
    EXPECT_TRUE(r.is_ok());
    return r.value();
  };
  const auto trad = run(false);
  const auto shift = run(true);
  EXPECT_LT(shift.p99_latency_s, trad.p99_latency_s);
}

TEST(Online, SecondFailureThenOfflineRebuildVerifies) {
  // The replanned double-failure rebuild must leave the array in a
  // state the byte-level rebuild can complete and verify.
  array::DiskArray arr(
      cfg_for(layout::Architecture::mirror_with_parity(4, true)));
  arr.initialize();
  arr.fail_physical(0);
  OnlineConfig cfg;
  cfg.arrival.max_requests = 200;
  cfg.arrival.rate_hz = 40;
  cfg.second_failure_at_s = 1.0;
  cfg.second_failure_disk = 5;
  cfg.arrival.seed = 21;
  auto online = run_online_reconstruction(arr, cfg);
  ASSERT_TRUE(online.is_ok()) << online.status().to_string();
  ASSERT_TRUE(online.value().second_failure_injected);
  ASSERT_EQ(arr.failed_physical().size(), 2u);
  auto rebuild = reconstruct(arr);
  ASSERT_TRUE(rebuild.is_ok()) << rebuild.status().to_string();
  EXPECT_EQ(rebuild.value().unrecoverable_elements, 0u);
  EXPECT_TRUE(arr.verify_all().is_ok());
}

TEST(Online, ScheduledFailStopAbsorbedLikeSecondFailure) {
  auto acfg = cfg_for(layout::Architecture::mirror_with_parity(4, true));
  acfg.fault_overrides[5].fail_at_s = 1.0;  // dies when next addressed
  array::DiskArray arr(acfg);
  arr.initialize();
  arr.fail_physical(0);
  OnlineConfig cfg;
  cfg.arrival.max_requests = 300;
  cfg.arrival.rate_hz = 40;
  cfg.arrival.seed = 33;
  auto report = run_online_reconstruction(arr, cfg);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().fail_stops_absorbed, 1);
  EXPECT_TRUE(arr.physical(5).failed());
  EXPECT_GT(report.value().rebuild_done_s, 1.0);  // rebuild continued
  // The fail-stopped disk is a real second failure: the offline rebuild
  // recovers both disks through the parity architecture.
  auto rebuild = reconstruct(arr);
  ASSERT_TRUE(rebuild.is_ok()) << rebuild.status().to_string();
  EXPECT_TRUE(arr.verify_all().is_ok());
}

TEST(Online, ScheduledFailStopBeyondToleranceIsUnrecoverable) {
  auto acfg = cfg_for(layout::Architecture::mirror(3, true));  // tolerance 1
  acfg.fault_overrides[3].fail_at_s = 0.5;
  array::DiskArray arr(acfg);
  arr.initialize();
  arr.fail_physical(0);
  OnlineConfig cfg;
  cfg.arrival.max_requests = 200;
  cfg.arrival.rate_hz = 40;
  auto report = run_online_reconstruction(arr, cfg);
  ASSERT_FALSE(report.is_ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kUnrecoverable);
}

TEST(Online, TransientErrorsRetriedInPlace) {
  auto acfg = cfg_for(layout::Architecture::mirror(3, true));
  acfg.fault.transient_read_error_p = 0.05;
  acfg.fault.seed = 9;
  array::DiskArray arr(acfg);
  arr.initialize();
  arr.fail_physical(0);
  OnlineConfig cfg;
  cfg.arrival.max_requests = 200;
  cfg.arrival.rate_hz = 40;
  auto report = run_online_reconstruction(arr, cfg);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_GT(report.value().io_retries, 0u);
  EXPECT_EQ(report.value().user_reads + report.value().user_writes, 200u);
}

// The observability layer must be a pure observer: running the same
// simulation with full tracing + metrics attached has to produce a
// bit-identical OnlineReport to the null-observer run.
TEST(Online, TracingOnAndOffYieldIdenticalReports) {
  auto run = [](obs::Observer* observer) {
    auto acfg = cfg_for(layout::Architecture::mirror_with_parity(3, true));
    acfg.fault.transient_read_error_p = 0.02;  // exercise the retry path
    acfg.fault.seed = 11;
    array::DiskArray arr(acfg);
    arr.initialize();
    arr.fail_physical(0);
    OnlineConfig cfg;
    cfg.arrival.max_requests = 150;
    cfg.arrival.rate_hz = 30;
    cfg.mix.write_fraction = 0.2;
    cfg.second_failure_at_s = 1.0;
    cfg.second_failure_disk = 3;
    cfg.arrival.seed = 42;
    cfg.observer = observer;
    return run_online_reconstruction(arr, cfg);
  };

  obs::TraceSink trace;
  obs::MetricsRegistry metrics;
  metrics.set_sample_interval(0.25);
  obs::Observer ob;
  ob.trace = &trace;
  ob.metrics = &metrics;

  auto off = run(nullptr);
  auto on = run(&ob);
  ASSERT_TRUE(off.is_ok()) << off.status().to_string();
  ASSERT_TRUE(on.is_ok()) << on.status().to_string();

  const auto& a = off.value();
  const auto& b = on.value();
  EXPECT_EQ(a.rebuild_done_s, b.rebuild_done_s);  // bit-exact on purpose
  EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_EQ(a.p50_latency_s, b.p50_latency_s);
  EXPECT_EQ(a.p95_latency_s, b.p95_latency_s);
  EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
  EXPECT_EQ(a.max_latency_s, b.max_latency_s);
  EXPECT_EQ(a.mean_degraded_latency_s, b.mean_degraded_latency_s);
  EXPECT_EQ(a.mean_write_latency_s, b.mean_write_latency_s);
  EXPECT_EQ(a.p99_write_latency_s, b.p99_write_latency_s);
  EXPECT_EQ(a.user_reads, b.user_reads);
  EXPECT_EQ(a.user_writes, b.user_writes);
  EXPECT_EQ(a.degraded_reads, b.degraded_reads);
  EXPECT_EQ(a.io_retries, b.io_retries);
  EXPECT_EQ(a.io_failures, b.io_failures);
  EXPECT_EQ(a.second_failure_injected, b.second_failure_injected);

  // And the instrumented run actually observed the simulation.
  EXPECT_GT(trace.count(obs::EventKind::kRequestArrive), 0u);
  EXPECT_GT(trace.count(obs::EventKind::kServiceStart), 0u);
  EXPECT_GT(trace.count(obs::EventKind::kRebuildIssue), 0u);
  EXPECT_GT(trace.count(obs::EventKind::kRebuildComplete), 0u);
  EXPECT_EQ(trace.count(obs::EventKind::kFailure), 2u);  // initial + injected
  EXPECT_GT(trace.count(obs::EventKind::kRetry), 0u);
  EXPECT_FALSE(metrics.timeline().empty());
  EXPECT_EQ(metrics.probe_count(), 0u);  // probes cleared before returning
}

// Service spans recorded by the disks must tile each disk's busy time:
// per-disk spans are non-overlapping and ordered.
TEST(Online, ServiceSpansAreOrderedPerDisk) {
  array::DiskArray arr(cfg_for(layout::Architecture::mirror(3, true)));
  arr.initialize();
  arr.fail_physical(0);

  obs::TraceSink trace;
  obs::Observer ob;
  ob.trace = &trace;
  OnlineConfig cfg;
  cfg.arrival.max_requests = 80;
  cfg.observer = &ob;
  auto report = run_online_reconstruction(arr, cfg);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();

  std::map<int, double> last_end;
  std::size_t spans = 0;
  for (const auto& ev : trace.events()) {
    if (ev.kind != obs::EventKind::kServiceStart) continue;
    ++spans;
    ASSERT_GE(ev.disk, 0);
    EXPECT_GT(ev.dur_s, 0.0);
    auto [it, fresh] = last_end.try_emplace(ev.disk, 0.0);
    if (!fresh) EXPECT_GE(ev.t_s, it->second);
    it->second = ev.t_s + ev.dur_s;
  }
  EXPECT_GT(spans, 0u);
}

// The event-batched rebuild drain (OnlineConfig::batch_drains, default
// on) must reproduce the one-event-per-element schedule bit for bit:
// batching changes how many kernel events the drain costs, never what
// the simulated array does. Swept across arrangements, scales, and
// read/write mixes; every report field that is not a wall-clock
// artifact must be exactly equal.
TEST(Online, BatchedDrainsMatchPerEventSchedule) {
  struct Case {
    int n;
    bool shifted;
    int stacks;
    double rate_hz;
    int max_requests;
    double write_fraction;
    std::uint64_t seed;
  };
  const Case cases[] = {
      {5, true, 4, 40, 300, 0.0, 7},
      {5, false, 4, 40, 300, 0.0, 7},
      {3, true, 32, 400, 1500, 0.5, 99},
      {7, true, 64, 30, 200, 0.2, 2012},
  };
  for (const Case& c : cases) {
    auto run = [&](bool batch) {
      array::DiskArray arr(
          cfg_for(layout::Architecture::mirror(c.n, c.shifted), c.stacks));
      arr.fail_physical(1);
      OnlineConfig cfg;
      cfg.arrival.rate_hz = c.rate_hz;
      cfg.arrival.max_requests = c.max_requests;
      cfg.arrival.seed = c.seed;
      cfg.mix.write_fraction = c.write_fraction;
      cfg.batch_drains = batch;
      auto report = run_online_reconstruction(arr, cfg);
      EXPECT_TRUE(report.is_ok()) << report.status().to_string();
      return report.is_ok() ? report.value() : OnlineReport{};
    };
    const OnlineReport a = run(true);
    const OnlineReport b = run(false);
    EXPECT_EQ(a.rebuild_done_s, b.rebuild_done_s);  // bit-exact on purpose
    EXPECT_EQ(a.requests_issued, b.requests_issued);
    EXPECT_EQ(a.requests_completed, b.requests_completed);
    EXPECT_EQ(a.user_reads, b.user_reads);
    EXPECT_EQ(a.user_writes, b.user_writes);
    EXPECT_EQ(a.degraded_reads, b.degraded_reads);
    EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
    EXPECT_EQ(a.p50_latency_s, b.p50_latency_s);
    EXPECT_EQ(a.p95_latency_s, b.p95_latency_s);
    EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
    EXPECT_EQ(a.p999_latency_s, b.p999_latency_s);
    EXPECT_EQ(a.max_latency_s, b.max_latency_s);
    EXPECT_EQ(a.mean_degraded_latency_s, b.mean_degraded_latency_s);
    EXPECT_EQ(a.mean_write_latency_s, b.mean_write_latency_s);
    EXPECT_EQ(a.p99_write_latency_s, b.p99_write_latency_s);
    EXPECT_EQ(a.state_changes, b.state_changes);
    EXPECT_EQ(a.final_state, b.final_state);
  }
}

// Configurations outside the batch gate — a throttle policy, a second
// failure, fault profiles able to fire mid-run — must take the
// per-event path and still produce identical results with the flag on
// or off (the flag is then inert, not merely harmless).
TEST(Online, BatchGateDisablesUnderThrottleAndSecondFailure) {
  auto run = [&](bool batch) {
    auto acfg = cfg_for(layout::Architecture::mirror_with_parity(3, true), 8);
    array::DiskArray arr(acfg);
    arr.fail_physical(0);
    OnlineConfig cfg;
    cfg.arrival.max_requests = 200;
    cfg.arrival.rate_hz = 60;
    cfg.arrival.seed = 42;
    cfg.qos.policy = workload::RebuildPolicy::kFixedBudget;
    cfg.qos.rebuild_budget = 2;
    cfg.second_failure_at_s = 1.0;
    cfg.second_failure_disk = 3;
    cfg.batch_drains = batch;
    auto report = run_online_reconstruction(arr, cfg);
    EXPECT_TRUE(report.is_ok()) << report.status().to_string();
    return report.is_ok() ? report.value() : OnlineReport{};
  };
  const OnlineReport a = run(true);
  const OnlineReport b = run(false);
  EXPECT_TRUE(a.second_failure_injected);
  EXPECT_EQ(a.rebuild_done_s, b.rebuild_done_s);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
  EXPECT_EQ(a.final_rebuild_budget, b.final_rebuild_budget);
}

}  // namespace
}  // namespace sma::recon
