// Fleet-scale experiment: element arrangement (inside each array) and
// volume placement (across arrays) attack the same availability
// question at two scales, and this bench shows they compound.
//
// Four cells — {shifted, traditional} x {declustered, round_robin} —
// each a fleet of independent mirror arrays serving one aggregate
// request stream while a fixed subset of arrays rebuilds a failed
// disk. Per cell the bench reports the serving-side exposure (worst
// degraded volume p99, fraction of volumes degraded) and the
// fleet-hours exposure (concurrent-rebuild statistics from the failure
// timeline, whose repair time is the rebuild duration this same cell
// measured). Two claims are enforced in-bench, not just printed:
//
//  * shifted+declustered beats traditional+round_robin on worst
//    degraded-volume p99 — the paper's arrangement spreads rebuild
//    load inside the array while declustering bounds each volume's
//    blast radius to 1/spread of its segments;
//  * shifted+declustered beats traditional+round_robin on
//    concurrent-rebuild exposure — shorter rebuilds shrink the window,
//    so fewer rebuilds overlap over the same fleet-hours.
//
// Determinism: the per-array fan-out runs on sim::MultiKernel; the
// first cell is re-run serially (threads=1) and its digest must match
// the parallel run bit for bit, or the bench exits non-zero. The
// emitted sma_fleet.csv holds only deterministic values (counts,
// simulated times, digests), so the CI drift gate can require it
// bit-identical; wall-clock numbers go to stdout, or to JSON with
// --json (consumed by scripts/bench_fleet.py).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "fleet/fleet.hpp"
#include "util/flags.hpp"

namespace {

using namespace sma;

std::string hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

double now_wall() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Cell {
  const char* name;
  fleet::ArrangementMix arrangement;
  fleet::PlacementPolicy placement;
};

constexpr Cell kCells[] = {
    {"shifted+declustered", fleet::ArrangementMix::kShifted,
     fleet::PlacementPolicy::kDeclustered},
    {"shifted+round_robin", fleet::ArrangementMix::kShifted,
     fleet::PlacementPolicy::kRoundRobin},
    {"traditional+declustered", fleet::ArrangementMix::kTraditional,
     fleet::PlacementPolicy::kDeclustered},
    {"traditional+round_robin", fleet::ArrangementMix::kTraditional,
     fleet::PlacementPolicy::kRoundRobin},
};

struct CellResult {
  fleet::FleetReport report;
  double wall_s = 0.0;
};

fleet::FleetConfig cell_config(const Cell& cell, int arrays, int requests,
                               std::size_t threads) {
  fleet::FleetConfig cfg;
  cfg.arrays = arrays;
  cfg.n = 4;
  cfg.arrangement = cell.arrangement;
  cfg.stacks = 64;  // deep arrays: the rebuild spans the serving window
  cfg.placement.policy = cell.placement;
  cfg.placement.volumes = 4 * arrays;
  cfg.placement.segments_per_volume = 8;
  cfg.placement.spread = 4;
  // Aggregate open-loop stream: ~20 req/s per array, well inside array
  // capacity, so queueing is rebuild-induced rather than saturation.
  cfg.arrival.rate_hz = 19.5 * arrays;
  cfg.arrival.max_requests = requests;
  cfg.arrival.seed = 2012;
  cfg.failed_arrays = arrays / 32 > 0 ? arrays / 32 : 1;
  cfg.seed = 20120901;
  cfg.threads = threads;
  return cfg;
}

CellResult run_cell(const Cell& cell, int arrays, int requests,
                    std::size_t threads) {
  CellResult r;
  const double t0 = now_wall();
  auto res = fleet::run_fleet(cell_config(cell, arrays, requests, threads));
  r.wall_s = now_wall() - t0;
  if (!res.is_ok()) {
    std::fprintf(stderr, "fleet cell %s failed: %s\n", cell.name,
                 res.status().to_string().c_str());
    std::exit(1);
  }
  r.report = std::move(res).take();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool json = flags.get_bool("json", false);
  const int arrays = flags.get_int("arrays", 256);         // per cell
  const int requests = flags.get_int("requests", 250000);  // per cell
  const std::size_t threads =
      static_cast<std::size_t>(flags.get_int("threads", 4));
  const std::string csv = flags.get("out", "sma_fleet.csv");
  for (const auto& e : flags.errors())
    std::fprintf(stderr, "bench_fleet: bad flag value: %s\n", e.c_str());

  CellResult cells[4];
  for (int c = 0; c < 4; ++c)
    cells[c] = run_cell(kCells[c], arrays, requests, threads);

  // --- determinism: the parallel fan-out must equal a serial run ------
  const CellResult serial = run_cell(kCells[0], arrays, requests, 1);
  if (serial.report.digest != cells[0].report.digest) {
    std::fprintf(stderr,
                 "bench_fleet: serial run diverged from parallel "
                 "(threads=%zu): %s vs %s\n",
                 threads, hex(serial.report.digest).c_str(),
                 hex(cells[0].report.digest).c_str());
    return 1;
  }

  // --- the two enforced claims ----------------------------------------
  const fleet::FleetReport& sd = cells[0].report;  // shifted+declustered
  const fleet::FleetReport& tn = cells[3].report;  // traditional+round_robin
  if (!(sd.worst_degraded_volume_p99_s < tn.worst_degraded_volume_p99_s)) {
    std::fprintf(stderr,
                 "bench_fleet: shifted+declustered did not beat "
                 "traditional+round_robin on worst degraded-volume p99 "
                 "(%.6f vs %.6f s)\n",
                 sd.worst_degraded_volume_p99_s,
                 tn.worst_degraded_volume_p99_s);
    return 1;
  }
  if (!(sd.timeline.mean_concurrent_rebuilds <
        tn.timeline.mean_concurrent_rebuilds)) {
    std::fprintf(stderr,
                 "bench_fleet: shifted+declustered did not beat "
                 "traditional+round_robin on concurrent-rebuild exposure "
                 "(%.6f vs %.6f mean concurrent)\n",
                 sd.timeline.mean_concurrent_rebuilds,
                 tn.timeline.mean_concurrent_rebuilds);
    return 1;
  }

  // Deterministic table -> sma_fleet.csv (drift-gated at defaults).
  Table table("Fleet — arrangement x placement (" + std::to_string(arrays) +
              " arrays/cell, " + std::to_string(requests) + " requests/cell)");
  table.set_header({"cell", "arrays", "requests", "degraded reads",
                    "p99 (s)", "worst degr vol p99 (s)", "degr vol frac",
                    "mean rebuild (s)", "mean conc rebuilds", "frac >=2",
                    "fleet MTTDL (h)", "digest"});
  for (int c = 0; c < 4; ++c) {
    const fleet::FleetReport& r = cells[c].report;
    table.add_row({kCells[c].name, Table::num(r.arrays),
                   Table::num(static_cast<std::uint64_t>(r.requests_routed)),
                   Table::num(static_cast<std::uint64_t>(r.degraded_reads)),
                   Table::num(r.p99_latency_s, 6),
                   Table::num(r.worst_degraded_volume_p99_s, 6),
                   Table::num(r.degraded_volume_fraction, 4),
                   Table::num(r.mean_rebuild_s, 3),
                   Table::num(r.timeline.mean_concurrent_rebuilds, 4),
                   Table::num(r.timeline.frac_time_ge2, 4),
                   Table::num(r.fleet_mttdl_hours, 0), hex(r.digest)});
  }

  double wall = serial.wall_s;
  double serving_array_s = serial.report.sim_array_seconds;
  double timeline_array_h = static_cast<double>(serial.report.timeline.arrays) *
                            serial.report.timeline.horizon_hours;
  for (int c = 0; c < 4; ++c) {
    wall += cells[c].wall_s;
    serving_array_s += cells[c].report.sim_array_seconds;
    timeline_array_h += static_cast<double>(cells[c].report.timeline.arrays) *
                        cells[c].report.timeline.horizon_hours;
  }
  const double total_arrays = static_cast<double>(arrays) * 5.0;
  const double array_hours = serving_array_s / 3600.0 + timeline_array_h;

  if (json) {
    table.write_csv(csv);
    std::printf("{\n  \"arrays_per_cell\": %d,\n  \"requests_per_cell\": %d,\n",
                arrays, requests);
    std::printf("  \"threads\": %zu,\n  \"cells\": {\n", threads);
    for (int c = 0; c < 4; ++c) {
      const fleet::FleetReport& r = cells[c].report;
      std::printf("    \"%s\": {\"wall_s\": %.6f, \"p99_s\": %.6f, "
                  "\"worst_degraded_volume_p99_s\": %.6f, "
                  "\"degraded_volume_fraction\": %.4f, "
                  "\"mean_rebuild_s\": %.3f, "
                  "\"mean_concurrent_rebuilds\": %.4f, "
                  "\"digest\": \"%s\"}%s\n",
                  kCells[c].name, cells[c].wall_s, r.p99_latency_s,
                  r.worst_degraded_volume_p99_s, r.degraded_volume_fraction,
                  r.mean_rebuild_s, r.timeline.mean_concurrent_rebuilds,
                  hex(r.digest).c_str(), c + 1 < 4 ? "," : "");
    }
    std::printf("  },\n  \"serial_check\": {\"wall_s\": %.6f, "
                "\"bit_identical\": true},\n",
                serial.wall_s);
    std::printf("  \"total\": {\"wall_s\": %.6f, \"arrays\": %.0f, "
                "\"arrays_per_s\": %.2f, \"sim_array_hours\": %.0f, "
                "\"sim_array_hours_per_s\": %.0f}\n}\n",
                wall, total_arrays, total_arrays / wall, array_hours,
                array_hours / wall);
    return 0;
  }

  bench::emit(table, csv);

  Table timing("Fleet — wall clock");
  timing.set_header({"cell", "wall (s)", "arrays/s", "sim array-hours/s"});
  for (int c = 0; c < 4; ++c) {
    const fleet::FleetReport& r = cells[c].report;
    const double cell_hours =
        r.sim_array_seconds / 3600.0 +
        static_cast<double>(r.timeline.arrays) * r.timeline.horizon_hours;
    timing.add_row({kCells[c].name, Table::num(cells[c].wall_s, 3),
                    Table::num(static_cast<double>(arrays) / cells[c].wall_s, 1),
                    Table::num(cell_hours / cells[c].wall_s, 0)});
  }
  timing.add_row({"serial check (threads=1)", Table::num(serial.wall_s, 3),
                  Table::num(static_cast<double>(arrays) / serial.wall_s, 1),
                  "-"});
  std::fputs(timing.render().c_str(), stdout);
  std::printf("total: %.3f s wall, %.1f arrays/s, %.0f sim array-hours/s\n",
              wall, total_arrays / wall, array_hours / wall);
  return 0;
}
