// Ablation: heterogeneous disks ("straggler"). The shifted
// arrangement's rebuild is a fan-out across ALL disks of the other
// array, so its makespan tracks the slowest disk; the traditional
// rebuild touches exactly one partner, so it only suffers when that
// specific partner is the straggler. Reported: average single-failure
// rebuild throughput with one mirror-array disk slowed by the given
// factor.
#include "common.hpp"
#include "recon/executor.hpp"
#include "recon/failure.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace sma;
  const int n = 5;

  Table table("Ablation — one slow disk in the array (mirror, n=5)");
  table.set_header({"slowdown x", "traditional MB/s", "shifted MB/s",
                    "improvement factor"});

  for (const double slowdown : {1.0, 1.5, 2.0, 4.0, 8.0}) {
    double mbps[2] = {0, 0};
    for (const bool shifted : {false, true}) {
      const auto arch = layout::Architecture::mirror(n, shifted);
      const auto failures = recon::enumerate_single_failures(arch);
      std::vector<double> results(failures.size());
      parallel_for(failures.size(), [&](std::size_t i) {
        auto cfg = bench::experiment_config(arch, /*stacks=*/2);
        cfg.rotate = false;  // keep the straggler's role fixed
        disk::DiskSpec slow = cfg.spec;
        slow.read_mbps /= slowdown;
        slow.write_mbps /= slowdown;
        // Slow down one disk in the mirror array (physical n+1).
        cfg.spec_overrides[n + 1] = slow;
        array::DiskArray arr(cfg);
        arr.initialize();
        if (failures[i][0] == n + 1) {
          // Failing the straggler itself removes it from the read set;
          // keep the scenario (it contributes to the average like any
          // other failure).
        }
        for (const int d : failures[i]) arr.fail_physical(d);
        auto report = recon::reconstruct(arr);
        results[i] =
            report.is_ok() ? report.value().read_throughput_mbps() : 0.0;
      });
      RunningStat stat;
      for (const double r : results) stat.add(r);
      mbps[shifted ? 1 : 0] = stat.mean();
    }
    table.add_row({Table::num(slowdown, 1), Table::num(mbps[0], 1),
                   Table::num(mbps[1], 1), Table::num(mbps[1] / mbps[0], 2)});
  }
  bench::emit(table, "sma_ablate_straggler.csv");
  return 0;
}
