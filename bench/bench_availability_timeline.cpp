// Recovery-time CDF: how quickly does the failed disk's data become
// re-servable from recovered state, stripe by stripe, under the
// pipelined rebuild? This is "data availability during reconstruction"
// as a timeline rather than a throughput scalar: the shifted
// arrangement pulls the whole curve in by roughly the paper's
// improvement factor.
#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "recon/executor.hpp"

int main() {
  using namespace sma;

  Table table("Stripe recovery-time CDF, single data-disk failure (s)");
  table.set_header({"n", "arrangement", "p25", "p50", "p75", "p100 (last)"});

  for (int n = 3; n <= 7; n += 2) {
    for (const bool shifted : {false, true}) {
      const auto arch = layout::Architecture::mirror(n, shifted);
      array::DiskArray arr(bench::experiment_config(arch, /*stacks=*/4));
      arr.initialize();
      arr.fail_physical(0);
      recon::ReconOptions opts;
      opts.pipelined = true;
      auto report = recon::reconstruct(arr, opts);
      if (!report.is_ok()) {
        std::fprintf(stderr, "rebuild failed: %s\n",
                     report.status().to_string().c_str());
        return 1;
      }
      auto times = report.value().stripe_read_done_s;
      std::sort(times.begin(), times.end());
      auto pct = [&](double p) {
        const std::size_t idx = std::min(
            times.size() - 1,
            static_cast<std::size_t>(p * static_cast<double>(times.size())));
        return times[idx];
      };
      table.add_row({Table::num(n),
                     std::string(shifted ? "shifted" : "traditional"),
                     Table::num(pct(0.25), 2), Table::num(pct(0.50), 2),
                     Table::num(pct(0.75), 2), Table::num(times.back(), 2)});
    }
  }
  bench::emit(table, "sma_availability_timeline.csv");
  return 0;
}
