// Regenerates Fig. 7: theoretical read throughput during
// reconstruction — the ratio (percent) of the shifted mirror method
// with parity's average read accesses over (a) the traditional mirror
// method with parity and (b) shortened RAID-6, as the number of data
// disks grows to 50. Both ratios fall fast and reach the paper's
// "as low as 5 percent" regime.
#include "common.hpp"
#include "recon/analytic.hpp"

int main() {
  using namespace sma;

  Table table("Fig. 7 — read-access ratios vs number of data disks");
  table.set_header({"n", "shifted avg", "trad avg", "raid6 avg",
                    "ratio vs trad (%)", "ratio vs raid6 (%)"});
  for (int n = 2; n <= 50; ++n) {
    const auto p = recon::fig7_point(n);
    table.add_row({Table::num(n), Table::num(p.shifted_avg, 4),
                   Table::num(p.traditional_avg, 1),
                   Table::num(p.raid6_avg, 1),
                   Table::num(p.ratio_vs_traditional_pct, 2),
                   Table::num(p.ratio_vs_raid6_pct, 2)});
  }
  bench::emit(table, "sma_fig7.csv");
  return 0;
}
