// Regenerates Fig. 10(b): write throughput of the traditional vs
// shifted mirror method *with parity* under the same thousand random
// large writes. Parity updates use the cheaper of read-modify-write
// and reconstruct-write per affected row, so throughput sits below the
// parity-less mirror method (Fig. 10a), as in the paper.
#include "common.hpp"
#include "workload/write_executor.hpp"

int main() {
  using namespace sma;

  Table table("Fig. 10(b) — write throughput, mirror method with parity "
              "(MB/s)");
  table.set_header({"n", "traditional", "shifted", "shifted/traditional"});

  for (int n = 3; n <= 7; ++n) {
    double mbps[2] = {0, 0};
    for (const bool shifted : {false, true}) {
      const auto arch = layout::Architecture::mirror_with_parity(n, shifted);
      array::DiskArray arr(bench::experiment_config(arch, /*stacks=*/4));
      arr.initialize();
      workload::WriteWorkloadConfig wcfg;
      wcfg.arrival.max_requests = 1000;
      wcfg.arrival.seed = 777;
      const auto reqs = workload::generate_large_writes(arr, wcfg);
      mbps[shifted ? 1 : 0] =
          workload::run_write_workload(arr, reqs).write_throughput_mbps();
    }
    table.add_row({Table::num(n), Table::num(mbps[0], 1),
                   Table::num(mbps[1], 1), Table::num(mbps[1] / mbps[0], 3)});
  }
  bench::emit(table, "sma_fig10b.csv");
  return 0;
}
