// Google-benchmark microbenchmarks of the erasure-coding substrate:
// GF(256) region primitives and full-stripe encode/decode of the
// codecs backing the experiments. These are the "code computation
// complexity" half of the paper's Section III observation (the other
// half being read-access counts).
#include <benchmark/benchmark.h>

#include "ec/evenodd.hpp"
#include "ec/raid5.hpp"
#include "ec/rdp.hpp"
#include "ec/rs.hpp"
#include "gf/region.hpp"
#include "util/rng.hpp"

namespace {

using namespace sma;

void BM_RegionXor(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> src(len);
  std::vector<std::uint8_t> dst(len);
  fill_pattern(1, src.data(), len);
  fill_pattern(2, dst.data(), len);
  for (auto _ : state) {
    gf::region_xor(src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_RegionXor)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_RegionMulXor(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> src(len);
  std::vector<std::uint8_t> dst(len);
  fill_pattern(3, src.data(), len);
  fill_pattern(4, dst.data(), len);
  for (auto _ : state) {
    gf::region_mul_xor(0x57, src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_RegionMulXor)->Arg(4096)->Arg(65536)->Arg(1 << 20);

template <typename Codec>
void encode_bench(benchmark::State& state, const Codec& codec,
                  std::size_t element_bytes) {
  ec::ColumnSet stripe = codec.make_stripe(element_bytes);
  stripe.fill_pattern(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(stripe).is_ok());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(codec.data_columns()) * codec.rows() *
      static_cast<std::int64_t>(element_bytes));
}

void BM_EncodeRaid5(benchmark::State& state) {
  encode_bench(state, ec::Raid5Codec(5, 5), 65536);
}
BENCHMARK(BM_EncodeRaid5);

void BM_EncodeEvenOdd(benchmark::State& state) {
  encode_bench(state, ec::EvenOddCodec(5), 65536);
}
BENCHMARK(BM_EncodeEvenOdd);

void BM_EncodeRdp(benchmark::State& state) {
  encode_bench(state, ec::RdpCodec(5), 65536);
}
BENCHMARK(BM_EncodeRdp);

void BM_EncodeCauchyRs(benchmark::State& state) {
  encode_bench(state, ec::CauchyRsCodec(5, 2, 4), 65536);
}
BENCHMARK(BM_EncodeCauchyRs);

template <typename Codec>
void decode_two_bench(benchmark::State& state, const Codec& codec,
                      std::size_t element_bytes) {
  ec::ColumnSet reference = codec.make_stripe(element_bytes);
  reference.fill_pattern(9);
  if (!codec.encode(reference).is_ok()) {
    state.SkipWithError("encode failed");
    return;
  }
  for (auto _ : state) {
    ec::ColumnSet damaged = reference;
    damaged.zero_column(0);
    damaged.zero_column(1);
    benchmark::DoNotOptimize(codec.decode(damaged, {0, 1}).is_ok());
  }
}

void BM_DecodeTwoEvenOdd(benchmark::State& state) {
  decode_two_bench(state, ec::EvenOddCodec(5), 65536);
}
BENCHMARK(BM_DecodeTwoEvenOdd);

void BM_DecodeTwoRdp(benchmark::State& state) {
  decode_two_bench(state, ec::RdpCodec(5), 65536);
}
BENCHMARK(BM_DecodeTwoRdp);

void BM_DecodeTwoCauchyRs(benchmark::State& state) {
  decode_two_bench(state, ec::CauchyRsCodec(5, 2, 4), 65536);
}
BENCHMARK(BM_DecodeTwoCauchyRs);

}  // namespace

BENCHMARK_MAIN();
