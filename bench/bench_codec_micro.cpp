// Google-benchmark microbenchmarks of the erasure-coding substrate:
// GF(256) region primitives and full-stripe encode/decode of the
// codecs backing the experiments. These are the "code computation
// complexity" half of the paper's Section III observation (the other
// half being read-access counts).
//
// The region primitives are benchmarked once per kernel tier reachable
// on the host (scalar, ssse3, avx2, neon) so the scalar-vs-SIMD ratio
// is measured, not assumed; scripts/bench_gf_kernels.py turns the JSON
// output into BENCH_gf_kernels.json to track the perf trajectory.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "ec/evenodd.hpp"
#include "ec/raid5.hpp"
#include "ec/rdp.hpp"
#include "ec/rs.hpp"
#include "gf/region.hpp"
#include "util/rng.hpp"

namespace {

using namespace sma;

constexpr std::int64_t kRegionSizes[] = {4096, 65536, 1 << 20};
constexpr std::size_t kDotSources = 5;  // matches the k=5 codecs below

void BM_RegionXor(benchmark::State& state, gf::KernelTier tier) {
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> src(len);
  std::vector<std::uint8_t> dst(len);
  fill_pattern(1, src.data(), len);
  fill_pattern(2, dst.data(), len);
  for (auto _ : state) {
    gf::region_xor(tier, src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}

void BM_RegionMul(benchmark::State& state, gf::KernelTier tier) {
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> src(len);
  std::vector<std::uint8_t> dst(len);
  fill_pattern(3, src.data(), len);
  for (auto _ : state) {
    gf::region_mul(tier, 0x8E, src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}

void BM_RegionMulXor(benchmark::State& state, gf::KernelTier tier) {
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> src(len);
  std::vector<std::uint8_t> dst(len);
  fill_pattern(3, src.data(), len);
  fill_pattern(4, dst.data(), len);
  for (auto _ : state) {
    gf::region_mul_xor(tier, 0x57, src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}

void BM_RegionMultiXor(benchmark::State& state, gf::KernelTier tier) {
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<std::uint8_t>> bufs(kDotSources);
  std::vector<std::span<const std::uint8_t>> srcs(kDotSources);
  for (std::size_t j = 0; j < kDotSources; ++j) {
    bufs[j].resize(len);
    fill_pattern(10 + j, bufs[j].data(), len);
    srcs[j] = bufs[j];
  }
  std::vector<std::uint8_t> dst(len);
  fill_pattern(9, dst.data(), len);
  for (auto _ : state) {
    gf::region_multi_xor(tier, srcs, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  // Bytes processed counts every source stream read per iteration.
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len * kDotSources));
}

void BM_EncodeDot(benchmark::State& state, gf::KernelTier tier) {
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<std::uint8_t>> bufs(kDotSources);
  std::vector<std::span<const std::uint8_t>> srcs(kDotSources);
  std::vector<std::uint8_t> coeffs(kDotSources);
  for (std::size_t j = 0; j < kDotSources; ++j) {
    bufs[j].resize(len);
    fill_pattern(20 + j, bufs[j].data(), len);
    srcs[j] = bufs[j];
    coeffs[j] = static_cast<std::uint8_t>(0x53 + 7 * j);
  }
  std::vector<std::uint8_t> dst(len);
  for (auto _ : state) {
    gf::encode_dot(tier, coeffs, srcs, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len * kDotSources));
}

void BM_RegionIsZero(benchmark::State& state, gf::KernelTier tier) {
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> buf(len, 0);  // worst case: full scan
  for (auto _ : state) {
    benchmark::DoNotOptimize(gf::region_is_zero(tier, buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}

void register_region_benches() {
  using Fn = void (*)(benchmark::State&, gf::KernelTier);
  struct Entry {
    const char* name;
    Fn fn;
  };
  const Entry entries[] = {
      {"BM_RegionXor", BM_RegionXor},
      {"BM_RegionMul", BM_RegionMul},
      {"BM_RegionMulXor", BM_RegionMulXor},
      {"BM_RegionMultiXor", BM_RegionMultiXor},
      {"BM_EncodeDot", BM_EncodeDot},
      {"BM_RegionIsZero", BM_RegionIsZero},
  };
  for (const auto& e : entries) {
    for (const gf::KernelTier tier : gf::available_tiers()) {
      const std::string name =
          std::string(e.name) + "/" + std::string(gf::to_string(tier));
      auto* b = benchmark::RegisterBenchmark(
          name.c_str(), [fn = e.fn, tier](benchmark::State& s) { fn(s, tier); });
      for (const std::int64_t sz : kRegionSizes) b->Arg(sz);
    }
  }
}

template <typename Codec>
void encode_bench(benchmark::State& state, const Codec& codec,
                  std::size_t element_bytes) {
  ec::ColumnSet stripe = codec.make_stripe(element_bytes);
  stripe.fill_pattern(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(stripe).is_ok());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(codec.data_columns()) * codec.rows() *
      static_cast<std::int64_t>(element_bytes));
}

void BM_EncodeRaid5(benchmark::State& state) {
  encode_bench(state, ec::Raid5Codec(5, 5), 65536);
}
BENCHMARK(BM_EncodeRaid5);

void BM_EncodeEvenOdd(benchmark::State& state) {
  encode_bench(state, ec::EvenOddCodec(5), 65536);
}
BENCHMARK(BM_EncodeEvenOdd);

void BM_EncodeRdp(benchmark::State& state) {
  encode_bench(state, ec::RdpCodec(5), 65536);
}
BENCHMARK(BM_EncodeRdp);

void BM_EncodeCauchyRs(benchmark::State& state) {
  encode_bench(state, ec::CauchyRsCodec(5, 2, 4), 65536);
}
BENCHMARK(BM_EncodeCauchyRs);

template <typename Codec>
void decode_two_bench(benchmark::State& state, const Codec& codec,
                      std::size_t element_bytes) {
  ec::ColumnSet reference = codec.make_stripe(element_bytes);
  reference.fill_pattern(9);
  if (!codec.encode(reference).is_ok()) {
    state.SkipWithError("encode failed");
    return;
  }
  for (auto _ : state) {
    ec::ColumnSet damaged = reference;
    damaged.zero_column(0);
    damaged.zero_column(1);
    benchmark::DoNotOptimize(codec.decode(damaged, {0, 1}).is_ok());
  }
}

void BM_DecodeTwoEvenOdd(benchmark::State& state) {
  decode_two_bench(state, ec::EvenOddCodec(5), 65536);
}
BENCHMARK(BM_DecodeTwoEvenOdd);

void BM_DecodeTwoRdp(benchmark::State& state) {
  decode_two_bench(state, ec::RdpCodec(5), 65536);
}
BENCHMARK(BM_DecodeTwoRdp);

void BM_DecodeTwoCauchyRs(benchmark::State& state) {
  decode_two_bench(state, ec::CauchyRsCodec(5, 2, 4), 65536);
}
BENCHMARK(BM_DecodeTwoCauchyRs);

}  // namespace

int main(int argc, char** argv) {
  register_region_benches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
