// Degraded-mode user-read experiment: random element reads against an
// array with one failed disk, no rebuild running. The availability
// story from the application's side: traditional mirroring doubles the
// load on the failed disk's partner (load imbalance ~2x), the shifted
// arrangement spreads the redirected reads evenly (~1x).
#include <cstdio>

#include "common.hpp"
#include "workload/degraded_read.hpp"

int main() {
  using namespace sma;

  Table table("Degraded reads — one failed data disk, 2000 random reads");
  table.set_header({"n", "arrangement", "throughput MB/s", "degraded reads",
                    "hottest disk ops", "load imbalance"});

  for (int n = 3; n <= 7; ++n) {
    for (const bool shifted : {false, true}) {
      const auto arch = layout::Architecture::mirror(n, shifted);
      array::DiskArray arr(bench::experiment_config(arch, /*stacks=*/2));
      arr.initialize();
      arr.fail_physical(0);
      workload::DegradedReadConfig cfg;
      cfg.arrival.max_requests = 2000;
      cfg.arrival.seed = 4242;  // identical request stream for both arrangements
      auto report = workload::run_degraded_reads(arr, cfg);
      if (!report.is_ok()) {
        std::fprintf(stderr, "degraded reads failed: %s\n",
                     report.status().to_string().c_str());
        return 1;
      }
      const auto& r = report.value();
      table.add_row({Table::num(n),
                     std::string(shifted ? "shifted" : "traditional"),
                     Table::num(r.throughput_mbps(), 1),
                     Table::num(static_cast<std::uint64_t>(r.degraded_reads)),
                     Table::num(r.hottest_disk_ops),
                     Table::num(r.load_imbalance, 2)});
    }
  }
  bench::emit(table, "sma_degraded_reads.csv");
  return 0;
}
