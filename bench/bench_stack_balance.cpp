// Load-balance verification (paper Section VI-A: "all the disks are
// under load balance ... thus minimize the maximum number of read
// accesses from a single disk").
//
// Both rotation modes are shown, and they agree — which is itself the
// point: cyclic stack rotation shifts the failed disk's role and its
// traditional partner in lockstep, so the SAME physical partner serves
// every stripe's rebuild reads; rotation cannot fix the traditional
// mirror's rebuild hotspot. Only the arrangement itself (spreading
// replicas across all disks) removes it.
#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "recon/executor.hpp"

namespace {

using namespace sma;

void sweep(Table& table, bool rotate) {
  for (int n = 3; n <= 7; n += 2) {
    for (const bool shifted : {false, true}) {
      const auto arch = layout::Architecture::mirror(n, shifted);
      auto cfg = bench::experiment_config(arch, /*stacks=*/1);
      cfg.rotate = rotate;
      array::DiskArray arr(cfg);
      arr.initialize();
      arr.fail_physical(0);
      arr.reset_counters();
      auto report = recon::reconstruct(arr);
      if (!report.is_ok()) {
        std::fprintf(stderr, "rebuild failed: %s\n",
                     report.status().to_string().c_str());
        std::exit(1);
      }
      std::uint64_t min_reads = ~0ull;
      std::uint64_t max_reads = 0;
      std::uint64_t total = 0;
      int survivors = 0;
      for (int d = 1; d < arr.total_disks(); ++d) {  // disk 0 was rebuilt
        const auto reads = arr.physical(d).counters().reads;
        min_reads = std::min(min_reads, reads);
        max_reads = std::max(max_reads, reads);
        total += reads;
        ++survivors;
      }
      const double mean = static_cast<double>(total) / survivors;
      table.add_row({std::string(rotate ? "stack" : "stripe"), Table::num(n),
                     std::string(shifted ? "shifted" : "traditional"),
                     Table::num(min_reads), Table::num(max_reads),
                     Table::num(mean, 1),
                     Table::num(report.value().read_throughput_mbps(), 1)});
    }
  }
}

}  // namespace

int main() {
  using namespace sma;
  Table table("Per-disk rebuild read load after a single disk failure");
  table.set_header({"view", "n", "arrangement", "min reads", "max reads",
                    "mean reads", "throughput MB/s"});
  sweep(table, /*rotate=*/false);
  sweep(table, /*rotate=*/true);
  bench::emit(table, "sma_stack_balance.csv");
  std::printf(
      "Note the stripe and stack views coincide: cyclic rotation moves the\n"
      "failed disk's logical role and its traditional partner together, so\n"
      "the rebuild hotspot stays on one physical disk (max reads ~ n per\n"
      "stripe). The shifted arrangement removes the hotspot structurally\n"
      "(max reads = 1-2 per stripe), which is what the throughput shows.\n");
  return 0;
}
