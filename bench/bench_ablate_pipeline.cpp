// Ablation: pipelined vs barrier rebuild scheduling. With a global
// read barrier the replacement disk idles until every stripe's reads
// finish; pipelining starts each stripe's replacement writes as soon
// as its own reads complete, overlapping reads and writes across
// stripes. Reported: total rebuild makespan (reads + writes) per
// arrangement.
#include "common.hpp"
#include "recon/executor.hpp"

int main() {
  using namespace sma;

  Table table("Ablation — rebuild scheduling (single data-disk failure)");
  table.set_header({"n", "arrangement", "barrier total (s)",
                    "pipelined total (s)", "speedup"});

  for (int n = 3; n <= 7; n += 2) {
    for (const bool shifted : {false, true}) {
      const auto arch = layout::Architecture::mirror(n, shifted);
      double totals[2] = {0, 0};
      for (const bool pipelined : {false, true}) {
        array::DiskArray arr(bench::experiment_config(arch, /*stacks=*/2));
        arr.initialize();
        arr.fail_physical(0);
        recon::ReconOptions opts;
        opts.pipelined = pipelined;
        auto report = recon::reconstruct(arr, opts);
        if (!report.is_ok()) {
          std::fprintf(stderr, "rebuild failed: %s\n",
                       report.status().to_string().c_str());
          return 1;
        }
        totals[pipelined ? 1 : 0] = report.value().total_makespan_s;
      }
      table.add_row({Table::num(n),
                     std::string(shifted ? "shifted" : "traditional"),
                     Table::num(totals[0], 2), Table::num(totals[1], 2),
                     Table::num(totals[0] / totals[1], 2)});
    }
  }
  bench::emit(table, "sma_ablate_pipeline.csv");
  return 0;
}
