// Layout-registry head-to-head: every registered layout algorithm on
// the three metrics the paper's argument turns on — per-stripe rebuild
// element reads (the availability metric), the p99 a user read sees
// while the rebuild drains, and how fast a QoS-throttled rebuild can go
// when it must hold that p99 at a target. One row per registry entry at
// n = 6 (so the grouped layouts get groups = 2): the zigzag layout's
// one-access rebuild must beat the traditional arrangement's n reads —
// the bench exits nonzero if it ever stops doing so.
#include "common.hpp"
#include "layout/registry.hpp"
#include "recon/online.hpp"
#include "recon/plan.hpp"
#include "workload/qos.hpp"

namespace {

constexpr int kN = 6;
constexpr double kP99TargetS = 0.120;

}  // namespace

int main() {
  using namespace sma;

  Table table("Layout registry head-to-head (n = 6, fail disk 0)");
  table.set_header({"n", "layout", "rebuild reads/stripe", "rebuild done (s)",
                    "degraded p99 (ms)", "qos rebuild (s)", "qos p99 (ms)",
                    "SLO viol (%)"});

  int traditional_reads = 0;
  int zigzag_reads = -1;
  for (const std::string& name : layout::AlgorithmRegistry::global().names()) {
    // Defaults everywhere; the iterated family at its identity default
    // would just repeat the shifted row, so pin the k = 3 iterate.
    const std::string spec = name == "iterated" ? "iterated:3" : name;
    auto archr = layout::Architecture::mirror_named(kN, spec);
    if (!archr.is_ok()) {
      std::fprintf(stderr, "layout registry: %s: %s\n", spec.c_str(),
                   archr.status().to_string().c_str());
      return 1;
    }
    const auto arch = std::move(archr).take();

    auto plan = recon::plan_reconstruction(arch, {0});
    if (!plan.is_ok()) {
      std::fprintf(stderr, "layout registry: plan %s: %s\n", spec.c_str(),
                   plan.status().to_string().c_str());
      return 1;
    }
    const int reads = plan.value().read_accesses(arch);
    if (name == "traditional") traditional_reads = reads;
    if (name == "zigzag") zigzag_reads = reads;

    // Strict priority: the unthrottled rebuild and the latency user
    // reads see while it drains; adaptive: the rebuild held to the SLO.
    double rebuild_done_s = 0.0, degraded_p99_ms = 0.0;
    double qos_rebuild_s = 0.0, qos_p99_ms = 0.0, slo_viol_pct = 0.0;
    for (const bool adaptive : {false, true}) {
      array::DiskArray arr(bench::experiment_config(arch, /*stacks=*/4));
      arr.initialize();
      arr.fail_physical(0);
      recon::OnlineConfig cfg;
      cfg.arrival.rate_hz = 20.0;
      cfg.arrival.max_requests = 600;
      cfg.arrival.seed = 2012;
      cfg.qos.p99_target_s = kP99TargetS;
      if (adaptive) cfg.qos.policy = workload::RebuildPolicy::kAdaptive;
      auto report = recon::run_online_reconstruction(arr, cfg);
      if (!report.is_ok()) {
        std::fprintf(stderr, "layout registry: online %s: %s\n", spec.c_str(),
                     report.status().to_string().c_str());
        return 1;
      }
      const auto& r = report.value();
      if (adaptive) {
        qos_rebuild_s = r.rebuild_done_s;
        qos_p99_ms = r.p99_latency_s * 1e3;
        slo_viol_pct = r.slo_violation_pct;
      } else {
        rebuild_done_s = r.rebuild_done_s;
        degraded_p99_ms = r.p99_latency_s * 1e3;
      }
    }

    table.add_row({Table::num(kN), arch.name(), Table::num(reads),
                   Table::num(rebuild_done_s, 2),
                   Table::num(degraded_p99_ms, 1), Table::num(qos_rebuild_s, 2),
                   Table::num(qos_p99_ms, 1), Table::num(slo_viol_pct, 2)});
  }
  bench::emit(table, "sma_layout_registry.csv");

  // The bench's reason to exist: rebuild-optimal means strictly fewer
  // element reads than the traditional arrangement's n.
  if (zigzag_reads < 0 || zigzag_reads >= traditional_reads) {
    std::fprintf(stderr,
                 "layout registry: zigzag rebuild reads (%d) do not beat "
                 "traditional (%d)\n",
                 zigzag_reads, traditional_reads);
    return 1;
  }
  return 0;
}
