// Update-penalty comparison (paper Section II / VI-C): parity elements
// touched by a single data-element modification, measured black-box by
// differential re-encoding. The mirror methods sit at the theoretical
// optimum (1 replica write, +1 parity element with the parity disk);
// EVENODD pays up to p updates on its S diagonal; RDP pays 3 on most
// elements.
#include "common.hpp"
#include "ec/evenodd.hpp"
#include "ec/raid5.hpp"
#include "ec/rdp.hpp"
#include <algorithm>

#include "ec/prime.hpp"
#include "ec/rs.hpp"
#include "ec/update_penalty.hpp"
#include "ec/xcode.hpp"

int main() {
  using namespace sma;

  Table table("Parity elements updated per single data-element write");
  table.set_header({"code", "n", "tolerance", "min", "avg", "max",
                    "optimal"});

  for (int n = 3; n <= 7; ++n) {
    const ec::Raid5Codec raid5(n, n);
    const ec::EvenOddCodec evenodd(n);
    const ec::RdpCodec rdp(n);
    const ec::CauchyRsCodec rs(n, 2, n);
    // X-code exists only at prime widths (vertical codes do not
    // shorten); compare at the nearest prime >= n.
    const ec::XCodec xcode(ec::next_prime_at_least(std::max(3, n)));
    const ec::Codec* codecs[] = {&raid5, &evenodd, &rdp, &rs, &xcode};
    for (const auto* codec : codecs) {
      auto penalty = ec::measure_update_penalty(*codec);
      if (!penalty.is_ok()) {
        std::fprintf(stderr, "%s: %s\n", codec->name().c_str(),
                     penalty.status().to_string().c_str());
        return 1;
      }
      table.add_row({codec->name(), Table::num(n),
                     Table::num(codec->fault_tolerance()),
                     Table::num(penalty.value().min),
                     Table::num(penalty.value().average, 2),
                     Table::num(penalty.value().max),
                     Table::num(ec::optimal_parity_updates(
                         codec->fault_tolerance()))});
    }
  }
  std::printf("(The mirror methods update exactly 1 replica element, plus\n"
              " exactly 1 parity element in the with-parity variant — the\n"
              " row-code optimum, independent of n; see bench_write_access.)\n\n");
  bench::emit(table, "sma_update_penalty.csv");
  return 0;
}
