// Rebuild under injected disk faults: sweep the latent unreadable-
// sector rate and compare the traditional vs shifted arrangement of
// the mirror method with parity (n = 5), failing disk 0 and rebuilding.
//
// The paper motivates mirroring with the rising rate of latent sector
// errors; this harness quantifies what those errors cost a rebuild:
// how many recovery sources turn out unreadable, how often recovery
// falls back to the parity-XOR path, how much the read phase slows,
// and whether any element loses every redundancy path. Deterministic
// for a fixed fault seed; rate 0 reproduces the fault-free rebuild
// bit for bit.
#include <cstdio>

#include "common.hpp"
#include "recon/executor.hpp"

int main() {
  using namespace sma;

  const int n = 5;
  const double rates[] = {0.0, 0.002, 0.01, 0.05};

  Table table("Rebuild under latent sector errors — mirror+parity, n=5, "
              "disk 0 failed");
  table.set_header({"latent rate", "arrangement", "read MB/s",
                    "latent hits", "parity fallbacks", "mirror fallbacks",
                    "unrecoverable"});

  for (const double rate : rates) {
    for (const bool shifted : {false, true}) {
      const auto arch = layout::Architecture::mirror_with_parity(n, shifted);
      auto cfg = bench::experiment_config(arch, /*stacks=*/2);
      cfg.fault.latent_error_rate = rate;
      cfg.fault.seed = 20120901;
      array::DiskArray arr(cfg);
      arr.initialize();
      arr.fail_physical(0);
      auto report = recon::reconstruct(arr);
      if (!report.is_ok()) {
        std::fprintf(stderr, "rebuild failed: %s\n",
                     report.status().to_string().c_str());
        return 1;
      }
      const auto& r = report.value();
      table.add_row({Table::num(rate, 3),
                     shifted ? "shifted" : "traditional",
                     Table::num(r.read_throughput_mbps(), 1),
                     Table::num(static_cast<double>(r.latent_sectors_hit), 0),
                     Table::num(static_cast<double>(r.fallback_to_parity), 0),
                     Table::num(static_cast<double>(r.fallback_to_mirror), 0),
                     Table::num(static_cast<double>(r.unrecoverable_elements),
                                0)});
    }
  }
  bench::emit(table, "sma_rebuild_faults.csv");
  return 0;
}
