// Rebuild under injected disk faults: sweep the latent unreadable-
// sector rate and compare the traditional vs shifted arrangement of
// the mirror method with parity (n = 5), failing disk 0 and rebuilding.
//
// The paper motivates mirroring with the rising rate of latent sector
// errors; this harness quantifies what those errors cost a rebuild:
// how many recovery sources turn out unreadable, how often recovery
// falls back to the parity-XOR path, how much the read phase slows,
// and whether any element loses every redundancy path. Deterministic
// for a fixed fault seed; rate 0 reproduces the fault-free rebuild
// bit for bit. The 8 (rate, arrangement) cases run in parallel via
// recon::rebuild_faults_sweep with per-case seeding, so the CSV is
// bit-identical to a serial run.
#include <cstdio>

#include "common.hpp"
#include "recon/sweeps.hpp"

int main() {
  using namespace sma;

  auto table = recon::rebuild_faults_sweep({0.0, 0.002, 0.01, 0.05},
                                           /*n=*/5, /*stacks=*/2, {});
  if (!table.is_ok()) {
    std::fprintf(stderr, "rebuild failed: %s\n",
                 table.status().to_string().c_str());
    return 1;
  }
  bench::emit(table.value(), "sma_rebuild_faults.csv");
  return 0;
}
