// Ablation A2: positioning-cost sensitivity. Sweeping seek_scale from
// 0 (flash-like) upward shows how the empirical gain approaches the
// theoretical factor n as positioning costs vanish — and why the
// paper's measured 1.54-4.55x sits below its theoretical n / (2n+1)/4:
// random replica reads pay seeks that the traditional layout's
// sequential partner read does not.
#include "common.hpp"
#include "recon/executor.hpp"
#include "recon/failure.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace sma;
  const int n = 5;

  Table table("Ablation — seek scale vs reconstruction gain (mirror, n=5)");
  table.set_header({"seek scale", "positioning ms", "traditional MB/s",
                    "shifted MB/s", "improvement factor"});

  for (const double scale : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    double mbps[2] = {0, 0};
    double positioning_ms = 0;
    for (const bool shifted : {false, true}) {
      const auto arch = layout::Architecture::mirror(n, shifted);
      const auto failures = recon::enumerate_single_failures(arch);
      std::vector<double> results(failures.size());
      parallel_for(failures.size(), [&](std::size_t i) {
        auto cfg = bench::experiment_config(arch, /*stacks=*/2);
        cfg.spec.seek_scale = scale;
        array::DiskArray arr(cfg);
        arr.initialize();
        for (const int d : failures[i]) arr.fail_physical(d);
        auto report = recon::reconstruct(arr);
        results[i] = report.is_ok()
                         ? report.value().read_throughput_mbps()
                         : 0.0;
      });
      RunningStat stat;
      for (const double r : results) stat.add(r);
      mbps[shifted ? 1 : 0] = stat.mean();
      auto spec = disk::DiskSpec::savvio_10k3();
      spec.seek_scale = scale;
      positioning_ms = spec.positioning_s() * 1e3;
    }
    table.add_row({Table::num(scale, 2), Table::num(positioning_ms, 2),
                   Table::num(mbps[0], 1), Table::num(mbps[1], 1),
                   Table::num(mbps[1] / mbps[0], 2)});
  }
  bench::emit(table, "sma_ablate_seek.csv");
  return 0;
}
