// Regenerates Fig. 10(a): write throughput of the traditional vs
// shifted mirror method under one thousand random large writes of
// 1 element .. 1 stripe (paper Section VII-B). The claim: throughputs
// are "about the same to a large extent" — the shifted arrangement
// keeps the theoretically optimal write access counts, paying only
// extra seeks on the mirror side.
#include "common.hpp"
#include "workload/write_executor.hpp"

int main() {
  using namespace sma;

  Table table("Fig. 10(a) — write throughput, mirror method (MB/s)");
  table.set_header({"n", "traditional", "shifted", "shifted/traditional"});

  for (int n = 3; n <= 7; ++n) {
    double mbps[2] = {0, 0};
    for (const bool shifted : {false, true}) {
      const auto arch = layout::Architecture::mirror(n, shifted);
      array::DiskArray arr(bench::experiment_config(arch, /*stacks=*/4));
      arr.initialize();
      workload::WriteWorkloadConfig wcfg;
      wcfg.arrival.max_requests = 1000;
      wcfg.arrival.seed = 777;  // identical workload for both arrangements
      const auto reqs = workload::generate_large_writes(arr, wcfg);
      mbps[shifted ? 1 : 0] =
          workload::run_write_workload(arr, reqs).write_throughput_mbps();
    }
    table.add_row({Table::num(n), Table::num(mbps[0], 1),
                   Table::num(mbps[1], 1), Table::num(mbps[1] / mbps[0], 3)});
  }
  bench::emit(table, "sma_fig10a.csv");
  return 0;
}
