// Shared helpers for the experiment harnesses in bench/.
//
// Each bench binary regenerates one table or figure of the paper: it
// prints the same rows/series the paper reports and mirrors them to a
// CSV file next to the binary (sma_<name>.csv) for replotting.
#pragma once

#include <cstdio>
#include <string>

#include "array/disk_array.hpp"
#include "layout/architecture.hpp"
#include "util/table.hpp"

namespace sma::bench {

inline array::ArrayConfig experiment_config(layout::Architecture arch,
                                            int stacks = 1) {
  array::ArrayConfig cfg;
  cfg.arch = arch;
  cfg.stripes = stacks * arch.total_disks();
  cfg.rotate = true;
  cfg.spec = disk::DiskSpec::savvio_10k3();
  cfg.content_bytes = 256;  // contents only gate correctness checks
  cfg.logical_element_bytes = 4ull * 1000 * 1000;  // paper: 4 MB elements
  cfg.seed = 20120901;                             // ICPP 2012
  return cfg;
}

inline void emit(const Table& table, const std::string& csv_name) {
  std::fputs(table.render().c_str(), stdout);
  if (table.write_csv(csv_name))
    std::printf("[csv] %s\n\n", csv_name.c_str());
  else
    std::printf("[csv] failed to write %s\n\n", csv_name.c_str());
}

}  // namespace sma::bench
