// Repair orchestration: what the machinery around the rebuild is worth.
//
// Three experiments share one table (the `scenario` column):
//
//  * rebuild — a single-disk repair driven by the orchestrator under
//    each sparing policy. The dedicated hot spare serializes every
//    replacement write on one disk; distributed sparing spreads them
//    across the survivors, the same way the shifted arrangement spreads
//    the rebuild reads (compare total makespans).
//  * second_failure — a second disk dies halfway through the rebuild.
//    Resuming from the checkpoint re-reads strictly fewer elements than
//    restarting from scratch (compare the `elems read` column).
//  * mc_mttdl — Monte-Carlo lifetimes through the real lifecycle state
//    machine, cross-checked against the closed-form MTTDL in the
//    independent-failure / always-available-spare limit, then pushed
//    where the closed forms cannot go: correlated enclosure failures
//    and spare-pool depletion.
#include <string>

#include "common.hpp"
#include "recon/executor.hpp"
#include "recon/reliability.hpp"
#include "repair/orchestrator.hpp"

namespace {

constexpr const char* kNa = "-";

// Short-lifetime reliability parameters (MTTF/MTTR = 400) keep the
// Monte-Carlo trials cheap while staying in the rare-second-failure
// regime the closed forms assume.
sma::recon::MonteCarloParams mc_params() {
  sma::recon::MonteCarloParams p;
  p.disk_mttf_hours = 400.0;
  p.mttr_hours = 1.0;
  p.trials = 1500;
  p.seed = 2012;
  return p;
}

}  // namespace

int main() {
  using namespace sma;

  Table table("Repair orchestration — sparing, checkpoint resume, MTTDL");
  table.set_header({"scenario", "n", "arrangement", "policy", "rounds",
                    "elems read", "elems written", "read makespan (s)",
                    "total makespan (s)", "closed MTTDL (h)", "MC MTTDL (h)",
                    "MC stderr (h)"});

  // --- rebuild: sparing policies under the orchestrator ------------------
  const int n = 5;
  for (const bool shifted : {false, true}) {
    const auto arch = layout::Architecture::mirror_with_parity(n, shifted);
    for (const repair::SparePolicy policy :
         {repair::SparePolicy::kNone, repair::SparePolicy::kDedicated,
          repair::SparePolicy::kDistributed}) {
      auto cfg = bench::experiment_config(arch);
      if (policy == repair::SparePolicy::kDedicated) cfg.spare_disks = 1;
      array::DiskArray arr(cfg);
      arr.initialize();
      arr.fail_physical(0);

      repair::RepairConfig rc;
      if (policy != repair::SparePolicy::kNone) rc.spare = {policy, 1};
      repair::RepairOrchestrator orch(arr, rc);
      auto report = orch.run();
      if (!report.is_ok()) {
        std::fprintf(stderr, "rebuild failed: %s\n",
                     report.status().to_string().c_str());
        return 1;
      }
      const auto& r = report.value();
      table.add_row({"rebuild", Table::num(n),
                     std::string(shifted ? "shifted" : "traditional"),
                     to_string(policy), Table::num(r.rounds),
                     Table::num(r.elements_read),
                     Table::num(r.elements_written),
                     Table::num(r.read_makespan_s, 3),
                     Table::num(r.total_makespan_s, 3), kNa, kNa, kNa});
    }
  }

  // --- second failure mid-rebuild: checkpoint resume vs restart ----------
  for (const bool shifted : {false, true}) {
    const auto arch = layout::Architecture::mirror_with_parity(n, shifted);
    const int budget = arch.total_disks() / 2;
    for (const bool resume : {true, false}) {
      array::DiskArray arr(bench::experiment_config(arch));
      arr.initialize();
      arr.fail_physical(0);

      repair::RebuildCheckpoint ck;
      recon::ReconOptions opts;
      opts.checkpoint = &ck;
      opts.max_stripes = budget;  // interrupted here; disk 1 dies
      auto first = recon::reconstruct(arr, opts);
      if (!first.is_ok()) return 1;
      arr.fail_physical(1);

      recon::ReconOptions rest;
      if (resume) rest.checkpoint = &ck;  // else: from scratch
      auto second = recon::reconstruct(arr, rest);
      if (!second.is_ok()) return 1;

      table.add_row(
          {std::string(resume ? "second_failure(resume)"
                              : "second_failure(restart)"),
           Table::num(n), std::string(shifted ? "shifted" : "traditional"),
           "none", Table::num(2),
           Table::num(first.value().elements_read +
                      second.value().elements_read),
           Table::num(first.value().elements_written +
                      second.value().elements_written),
           Table::num(first.value().read_makespan_s +
                          second.value().read_makespan_s,
                      3),
           Table::num(first.value().total_makespan_s +
                          second.value().total_makespan_s,
                      3),
           kNa, kNa, kNa});
    }
  }

  // --- Monte-Carlo MTTDL vs the closed form ------------------------------
  for (const bool shifted : {false, true}) {
    const auto arch = layout::Architecture::mirror(4, shifted);
    recon::MttdlParams cp;
    cp.disk_mttf_hours = 400.0;
    cp.mttr_hours = 1.0;
    const auto closed = recon::estimate_mttdl(arch, cp);
    auto mc = recon::simulate_mttdl(arch, mc_params());
    if (!mc.is_ok()) {
      std::fprintf(stderr, "mc failed: %s\n",
                   mc.status().to_string().c_str());
      return 1;
    }
    table.add_row({"mc_mttdl", Table::num(4),
                   std::string(shifted ? "shifted" : "traditional"), "none",
                   kNa, kNa, kNa, kNa, kNa, Table::num(closed.mttdl_hours, 1),
                   Table::num(mc.value().mttdl_hours, 1),
                   Table::num(mc.value().stderr_hours, 1)});
  }
  {
    // Beyond the closed forms: one shared enclosure multiplying every
    // survivor's hazard, and a one-unit spare pool that never refills.
    const auto arch = layout::Architecture::mirror(4, false);
    auto corr = mc_params();
    corr.enclosure_of.assign(static_cast<std::size_t>(arch.total_disks()), 0);
    corr.enclosure_hazard_factor = 10.0;
    auto mc_corr = recon::simulate_mttdl(arch, corr);

    auto depleted = mc_params();
    depleted.trials = 800;
    depleted.spare = {repair::SparePolicy::kDedicated, 1};
    auto mc_depl = recon::simulate_mttdl(arch, depleted);
    if (!mc_corr.is_ok() || !mc_depl.is_ok()) return 1;

    table.add_row({"mc_mttdl(correlated x10)", Table::num(4), "traditional",
                   "none", kNa, kNa, kNa, kNa, kNa, kNa,
                   Table::num(mc_corr.value().mttdl_hours, 1),
                   Table::num(mc_corr.value().stderr_hours, 1)});
    table.add_row({"mc_mttdl(1 spare, no refill)", Table::num(4),
                   "traditional", "dedicated", kNa, kNa, kNa, kNa, kNa, kNa,
                   Table::num(mc_depl.value().mttdl_hours, 1),
                   Table::num(mc_depl.value().stderr_hours, 1)});
  }

  bench::emit(table, "sma_repair_orchestration.csv");
  return 0;
}
