// Scrub experiment: latent-sector-error detection and repair rates
// across architectures and injected-error counts. Shows (a) the
// parity-arbitrated mirror methods repair everything up to one bad
// copy per row, (b) the parity-less mirror can only detect, and (c)
// the full-scan scrub cost is flat across arrangements (every disk
// streams its whole column either way). The 9 (architecture, errors)
// cases run in parallel via recon::scrub_sweep, each seeding its RNG
// from its own error count, so the CSV is bit-identical to a serial
// run.
#include <cstdio>

#include "common.hpp"
#include "recon/sweeps.hpp"

int main() {
  using namespace sma;

  auto table = recon::scrub_sweep(/*n=*/5, {0, 5, 25}, {});
  if (!table.is_ok()) {
    std::fprintf(stderr, "scrub failed: %s\n",
                 table.status().to_string().c_str());
    return 1;
  }
  bench::emit(table.value(), "sma_scrub.csv");
  return 0;
}
