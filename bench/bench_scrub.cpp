// Scrub experiment: latent-sector-error detection and repair rates
// across architectures and injected-error counts. Shows (a) the
// parity-arbitrated mirror methods repair everything up to one bad
// copy per row, (b) the parity-less mirror can only detect, and (c)
// the full-scan scrub cost is flat across arrangements (every disk
// streams its whole column either way).
#include <cstdio>

#include "common.hpp"
#include "recon/scrub.hpp"

int main() {
  using namespace sma;

  Table table("Scrub — latent error injection and repair (n=5, one stack)");
  table.set_header({"architecture", "injected", "mismatches", "repaired",
                    "undecidable", "scan time (s)", "scan MB/s"});

  struct Case {
    layout::Architecture arch;
    const char* label;
  };
  const Case cases[] = {
      {layout::Architecture::mirror(5, true), "mirror-shifted"},
      {layout::Architecture::mirror_with_parity(5, false),
       "mirror-parity-traditional"},
      {layout::Architecture::mirror_with_parity(5, true),
       "mirror-parity-shifted"},
  };

  for (const auto& c : cases) {
    for (const int errors : {0, 5, 25}) {
      array::DiskArray arr(bench::experiment_config(c.arch));
      arr.initialize();
      Rng rng(static_cast<std::uint64_t>(errors) + 99);
      recon::inject_latent_errors(arr, rng, errors);
      auto report = recon::scrub(arr);
      if (!report.is_ok()) {
        std::fprintf(stderr, "scrub failed: %s\n",
                     report.status().to_string().c_str());
        return 1;
      }
      const auto& r = report.value();
      table.add_row(
          {c.label, Table::num(errors),
           Table::num(r.mismatches),
           Table::num(r.repaired_data + r.repaired_mirror +
                      r.repaired_parity),
           Table::num(r.undecidable), Table::num(r.makespan_s, 2),
           Table::num(static_cast<double>(r.logical_bytes_read) / 1e6 /
                          r.makespan_s,
                      1)});
    }
  }
  bench::emit(table, "sma_scrub.csv");
  return 0;
}
