// Extension experiment (paper Section VIII future work): the shifted
// element arrangement applied to the three-mirror method (2 replica
// arrays, as in GFS/Ceph). Replica array r uses the affine arrangement
// a(i,j) -> (<i + c_r j>_n, i) with distinct multipliers c_r coprime to
// n, preserving the paper's three properties per array and pairwise
// one-element overlap across arrays.
//
// Reported: average read accesses and rebuild read throughput over all
// single and double failures, traditional vs shifted, n = 3..7.
#include <cstdio>

#include "common.hpp"
#include "multimirror/multi_array.hpp"
#include "multimirror/multi_mirror.hpp"
#include "multimirror/multi_online.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace sma;

struct Cell {
  double accesses = 0;
  double mbps = 0;
};

Cell sweep(int n, bool shifted, int failures) {
  mm::MultiArrayConfig proto;
  proto.layout.n = n;
  proto.layout.replica_arrays = 2;
  proto.layout.shifted = shifted;
  proto.content_bytes = 128;

  // Enumerate failure sets.
  std::vector<std::vector<int>> sets;
  const int total = 3 * n;
  if (failures == 1) {
    for (int d = 0; d < total; ++d) sets.push_back({d});
  } else {
    for (int a = 0; a < total; ++a)
      for (int b = a + 1; b < total; ++b) sets.push_back({a, b});
  }

  std::vector<Cell> results(sets.size());
  parallel_for(sets.size(), [&](std::size_t i) {
    auto arrr = mm::MultiMirrorArray::create(proto);
    if (!arrr.is_ok()) return;
    auto& arr = arrr.value();
    arr.initialize();
    for (const int d : sets[i]) arr.fail_physical(d);
    auto report = arr.reconstruct();
    if (!report.is_ok()) {
      std::fprintf(stderr, "three-mirror rebuild failed: %s\n",
                   report.status().to_string().c_str());
      return;
    }
    results[i].accesses = report.value().read_accesses_per_stripe;
    results[i].mbps = report.value().read_throughput_mbps();
  });

  RunningStat acc;
  RunningStat mbps;
  for (const auto& r : results) {
    acc.add(r.accesses);
    mbps.add(r.mbps);
  }
  return {acc.mean(), mbps.mean()};
}

}  // namespace

int main() {
  using namespace sma;

  for (const int failures : {1, 2}) {
    Table table(std::string("Three-mirror method, all ") +
                (failures == 1 ? "single" : "double") + "-disk failures");
    table.set_header({"n", "trad accesses", "shift accesses", "trad MB/s",
                      "shift MB/s", "improvement factor"});
    for (int n = 3; n <= 7; ++n) {
      const Cell t = sweep(n, false, failures);
      const Cell s = sweep(n, true, failures);
      table.add_row({Table::num(n), Table::num(t.accesses, 2),
                     Table::num(s.accesses, 2), Table::num(t.mbps, 1),
                     Table::num(s.mbps, 1), Table::num(s.mbps / t.mbps, 2)});
    }
    bench::emit(table, failures == 1 ? "sma_three_mirror_single.csv"
                                     : "sma_three_mirror_double.csv");
  }

  // Table-I analogue for the three-mirror extension: double failures by
  // class (n = 5).
  for (const bool shifted : {false, true}) {
    mm::MultiMirrorConfig cfg;
    cfg.n = 5;
    cfg.replica_arrays = 2;
    cfg.shifted = shifted;
    auto m = mm::MultiMirror::create(cfg);
    if (!m.is_ok()) return 1;
    Table cases(std::string("Double-failure classes, ") +
                m.value().name());
    cases.set_header({"class", "cases", "min", "avg", "max"});
    for (const auto& row : m.value().enumerate_double_failure_cases())
      cases.add_row({row.label,
                     Table::num(static_cast<std::uint64_t>(row.cases)),
                     Table::num(row.min_accesses),
                     Table::num(row.avg_accesses, 2),
                     Table::num(row.max_accesses)});
    std::fputs(cases.render().c_str(), stdout);
    std::printf("\n");
  }

  // On-line rebuild with user reads, three-mirror.
  Table online("Three-mirror on-line rebuild (n=5, one failed disk)");
  online.set_header({"arrangement", "rebuild done (s)", "read mean (ms)",
                     "read p99 (ms)", "degraded reads"});
  for (const bool shifted : {false, true}) {
    mm::MultiArrayConfig cfg;
    cfg.layout.n = 5;
    cfg.layout.replica_arrays = 2;
    cfg.layout.shifted = shifted;
    cfg.stripes = 4 * 15;
    cfg.content_bytes = 64;
    auto arrr = mm::MultiMirrorArray::create(cfg);
    if (!arrr.is_ok()) return 1;
    auto& arr = arrr.value();
    arr.initialize();
    arr.fail_physical(0);
    mm::MmOnlineConfig ocfg;
    ocfg.arrival.rate_hz = 30;
    ocfg.arrival.max_requests = 500;
    ocfg.arrival.seed = 2012;
    auto report = mm::run_online_reconstruction(arr, ocfg);
    if (!report.is_ok()) {
      std::fprintf(stderr, "mm online failed: %s\n",
                   report.status().to_string().c_str());
      return 1;
    }
    const auto& r = report.value();
    online.add_row({std::string(shifted ? "shifted" : "traditional"),
                    Table::num(r.rebuild_done_s, 2),
                    Table::num(r.mean_latency_s * 1e3, 1),
                    Table::num(r.p99_latency_s * 1e3, 1),
                    Table::num(static_cast<std::uint64_t>(r.degraded_reads))});
  }
  bench::emit(online, "sma_three_mirror_online.csv");
  return 0;
}
