// Crash/resync experiment: the cost of recovering mirror consistency
// after a power-loss crash, with and without a dirty-region log.
//
// A seeded write workload runs against each arrangement until an
// injected crash point tears it mid-request (the write hole: one copy
// of a pair updated, the other not). Recovery then reconciles the
// copies three ways:
//
//   drl-g    resync only the regions the write-intent log (granularity
//            g stripes/region) left dirty — the md-bitmap strategy,
//   full     resync every stripe (no log, or the log was lost),
//   rebuild  the upper reference: a whole-disk reconstruction, what a
//            full mirror rebuild after an unclean shutdown would cost.
//
// The point of the table: DRL resync reads a small fraction of the
// elements a full resync scans (and the makespan shrinks with it),
// coarser regions trade log size for extra scan work, and the saving
// holds for the shifted arrangement exactly as for the traditional one
// — crash recovery is orthogonal to the shifting that speeds up
// *disk-failure* recovery. The bench enforces the claim: it exits
// nonzero unless DRL reads are strictly fewer than a full resync's for
// this partial-dirty workload, on both arrangements.
#include <cstdio>

#include "common.hpp"
#include "integrity/crash_workload.hpp"
#include "integrity/resync.hpp"
#include "recon/executor.hpp"

namespace {

using namespace sma;

struct CaseResult {
  integrity::CrashWorkloadReport wl;
  integrity::ResyncReport rs;
};

array::ArrayConfig crash_cfg(bool shifted, int region_stripes) {
  auto cfg = bench::experiment_config(
      layout::Architecture::mirror_with_parity(5, shifted), /*stacks=*/2);
  cfg.content_bytes = 64;
  cfg.drl_region_stripes = region_stripes;
  cfg.checksums = true;
  // Crash mid-request, a few requests past a quiesce point: the torn
  // request is the write hole, and the requests since the quiesce are
  // the dirty set a resync must re-examine.
  cfg.fault.crash_after_writes = 103;
  cfg.fault.seed = 20120901;
  return cfg;
}

Result<CaseResult> run_case(bool shifted, int region_stripes, bool full) {
  array::DiskArray arr(crash_cfg(shifted, region_stripes));
  arr.initialize();

  integrity::CrashWorkloadConfig wcfg;
  wcfg.requests = 40;
  wcfg.seed = 20120901;
  // Periodic quiesce points keep the dirty set partial: only the
  // regions written since the last quiesce are suspect at the crash.
  wcfg.quiesce_every = 10;
  auto wl = integrity::run_crash_workload(arr, wcfg);
  if (!wl.is_ok()) return wl.status();
  if (!wl.value().crashed)
    return internal_error("workload finished without reaching the crash");

  SMA_RETURN_IF_ERROR(arr.power_cycle());
  integrity::ResyncOptions opts;
  opts.full = full;
  auto rs = integrity::resync(arr, opts);
  if (!rs.is_ok()) return rs.status();

  // Either path must leave the array fully consistent, checksums
  // included — the experiment is void otherwise.
  SMA_RETURN_IF_ERROR(arr.verify_consistency(nullptr));
  SMA_RETURN_IF_ERROR(arr.verify_checksums());
  return CaseResult{wl.value(), rs.value()};
}

Result<recon::ReconReport> run_rebuild_reference(bool shifted) {
  auto cfg = crash_cfg(shifted, /*region_stripes=*/2);
  cfg.fault = disk::FaultProfile{};  // clean run: no crash
  array::DiskArray arr(cfg);
  arr.initialize();
  arr.fail_physical(0);
  return recon::reconstruct(arr);
}

}  // namespace

int main() {
  Table table("Crash recovery: DRL resync vs full resync vs rebuild");
  table.set_header({"arrangement", "mode", "region stripes", "dirty regions",
                    "stripes scanned", "elements read", "diverged",
                    "copies rewritten", "parity rewritten", "makespan s"});

  for (const bool shifted : {true, false}) {
    const char* name = shifted ? "shifted" : "traditional";
    std::uint64_t drl2_reads = 0;
    for (const int g : {1, 2, 4}) {
      auto res = run_case(shifted, g, /*full=*/false);
      if (!res.is_ok()) {
        std::fprintf(stderr, "crash_resync drl-%d (%s): %s\n", g, name,
                     res.status().to_string().c_str());
        return 1;
      }
      const auto& r = res.value();
      if (g == 2) drl2_reads = r.rs.elements_read;
      table.add_row({name, "drl-" + std::to_string(g), Table::num(g),
                     Table::num(static_cast<std::uint64_t>(r.wl.dirty_regions)),
                     Table::num(r.rs.stripes_scanned),
                     Table::num(r.rs.elements_read), Table::num(r.rs.diverged),
                     Table::num(r.rs.copies_rewritten),
                     Table::num(r.rs.parity_rewritten),
                     Table::num(r.rs.makespan_s, 4)});
    }
    auto full = run_case(shifted, /*region_stripes=*/2, /*full=*/true);
    if (!full.is_ok()) {
      std::fprintf(stderr, "crash_resync full (%s): %s\n", name,
                   full.status().to_string().c_str());
      return 1;
    }
    const auto& f = full.value();
    table.add_row({name, "full", Table::num(2),
                   Table::num(static_cast<std::uint64_t>(f.wl.dirty_regions)),
                   Table::num(f.rs.stripes_scanned),
                   Table::num(f.rs.elements_read), Table::num(f.rs.diverged),
                   Table::num(f.rs.copies_rewritten),
                   Table::num(f.rs.parity_rewritten),
                   Table::num(f.rs.makespan_s, 4)});

    auto rebuild = run_rebuild_reference(shifted);
    if (!rebuild.is_ok()) {
      std::fprintf(stderr, "crash_resync rebuild (%s): %s\n", name,
                   rebuild.status().to_string().c_str());
      return 1;
    }
    const auto& rb = rebuild.value();
    table.add_row({name, "rebuild", Table::num(0), Table::num(0),
                   Table::num(static_cast<std::uint64_t>(rb.stripes_processed)),
                   Table::num(rb.elements_read), Table::num(std::uint64_t{0}),
                   Table::num(rb.elements_written), Table::num(std::uint64_t{0}),
                   Table::num(rb.total_makespan_s, 4)});

    // The headline claim, enforced: the log must have paid for itself.
    if (drl2_reads >= f.rs.elements_read) {
      std::fprintf(stderr,
                   "crash_resync (%s): DRL resync read %llu elements, not "
                   "fewer than the full resync's %llu\n",
                   name, static_cast<unsigned long long>(drl2_reads),
                   static_cast<unsigned long long>(f.rs.elements_read));
      return 1;
    }
  }

  bench::emit(table, "sma_crash_resync.csv");
  return 0;
}
