// Regenerates Fig. 9(a): average read throughput during the
// reconstruction process of the traditional and shifted mirror method,
// n = 3..7. Every disk (data and mirror) is failed in turn, the rebuild
// is executed on the simulated Savvio 10K.3 array with 4 MB elements,
// the recovered contents are verified, and throughputs are averaged —
// the paper's Section VII-A methodology.
#include <cstdio>

#include "common.hpp"
#include "recon/executor.hpp"
#include "recon/failure.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace sma;

  Table table("Fig. 9(a) — avg read throughput during reconstruction, "
              "mirror method (MB/s)");
  table.set_header(
      {"n", "traditional", "shifted", "improvement factor"});

  for (int n = 3; n <= 7; ++n) {
    double mbps[2] = {0, 0};
    for (const bool shifted : {false, true}) {
      const auto arch = layout::Architecture::mirror(n, shifted);
      const auto failures = recon::enumerate_single_failures(arch);
      std::vector<double> results(failures.size());
      parallel_for(failures.size(), [&](std::size_t i) {
        array::DiskArray arr(bench::experiment_config(arch, /*stacks=*/2));
        arr.initialize();
        for (const int d : failures[i]) arr.fail_physical(d);
        auto report = recon::reconstruct(arr);
        if (!report.is_ok()) {
          std::fprintf(stderr, "rebuild failed: %s\n",
                       report.status().to_string().c_str());
          results[i] = 0;
          return;
        }
        results[i] = report.value().read_throughput_mbps();
      });
      RunningStat stat;
      for (const double r : results) stat.add(r);
      mbps[shifted ? 1 : 0] = stat.mean();
    }
    table.add_row({Table::num(n), Table::num(mbps[0], 1),
                   Table::num(mbps[1], 1), Table::num(mbps[1] / mbps[0], 2)});
  }
  bench::emit(table, "sma_fig9a.csv");
  return 0;
}
