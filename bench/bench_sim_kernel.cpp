// Simulation-kernel throughput: calendar queue + arena Tasks vs the
// seed std::priority_queue + std::function kernel (the "legacy"
// backend), plus deterministic parallel scaling via sim::MultiKernel.
//
// Three workloads:
//  * fleet   — an online-reconstruction-shaped event mix at kernel
//    scale: thousands of disk-service chains in one Simulation, with
//    Poisson-ish handoffs and same-instant ties. Per-event work is a
//    digest update, so the measurement isolates scheduler + event
//    storage cost. This is the events/sec number the speed overhaul is
//    judged by.
//  * e2e     — the real recon::run_online_reconstruction acceptance
//    workload: a rebuild-heavy online reconstruction timed under the
//    seed kernel (legacy backend, one event per disk op — what the
//    seed binary executed) and under the new kernel (calendar queue +
//    event-batched rebuild drains), whole-program cost included. Both
//    variants compute bit-identical reports; events/sec normalizes
//    both walls by the *seed* kernel's event count, so the ratio is
//    exactly the end-to-end speedup.
//  * scaling — sim::MultiKernel over independent online-recon cases at
//    1/2/4/8 threads, with the parallel reports checked bit-identical
//    to the serial ones.
//
// The emitted sma_sim_kernel.csv holds only deterministic values
// (event counts, simulated times, digests) so the CI drift gate can
// require it bit-identical; wall-clock numbers go to stdout, or to a
// JSON object with --json (consumed by scripts/bench_sim_kernel.py).
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "recon/online.hpp"
#include "sim/multi_kernel.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace {

using namespace sma;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t mix(std::uint64_t digest, std::uint64_t v) {
  return (digest ^ v) * kFnvPrime;
}

std::uint64_t mix(std::uint64_t digest, double v) {
  return mix(digest, std::bit_cast<std::uint64_t>(v));
}

std::string hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

double now_wall() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* backend_name(sim::QueueBackend b) {
  switch (b) {
    case sim::QueueBackend::kCalendar:
      return "calendar";
    case sim::QueueBackend::kHeap:
      return "heap";
    case sim::QueueBackend::kLegacy:
      return "legacy";
  }
  return "?";
}

constexpr sim::QueueBackend kBackends[] = {sim::QueueBackend::kCalendar,
                                           sim::QueueBackend::kHeap,
                                           sim::QueueBackend::kLegacy};

// --- fleet workload ---------------------------------------------------

struct FleetResult {
  std::uint64_t events = 0;
  double sim_end_s = 0.0;
  std::uint64_t digest = kFnvOffset;
  double wall_s = 0.0;
};

/// The by-value state a real completion closure carries (a Job struct
/// plus surrounding context, ~80 bytes): big enough that std::function
/// heap-allocates it per event while sim::Task stores it inline.
struct Payload {
  std::uint64_t v[8];
};

/// One Simulation hosting `disks` service chains. Every completion
/// digests its payload and the clock, then hands off to a random chain
/// after a service delay — or at the same instant (the tie-heavy
/// pattern the online simulators produce when a completion and a
/// dispatch coincide).
FleetResult run_fleet(sim::QueueBackend backend, int disks,
                      std::uint64_t total_events) {
  sim::Simulation sim(backend);
  Rng rng(2012);
  FleetResult r;
  std::uint64_t remaining = total_events;
  std::function<void(int, const Payload&)> complete = [&](int d,
                                                          const Payload& p) {
    r.digest =
        mix(r.digest, mix(p.v[0] + static_cast<std::uint64_t>(d), sim.now()));
    if (remaining == 0) return;
    --remaining;
    const double u = rng.next_double();
    const int next = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(disks)));
    Payload np;
    for (int j = 0; j < 8; ++j)
      np.v[j] = r.digest + static_cast<std::uint64_t>(j);
    if (u < 0.1)
      sim.schedule_at(sim.now(),
                      [&complete, next, np] { complete(next, np); });
    else
      sim.schedule_in(0.0005 + 0.02 * u,
                      [&complete, next, np] { complete(next, np); });
  };
  for (int d = 0; d < disks; ++d)
    sim.schedule_at(0.0, [&complete, d] { complete(d, Payload{}); });
  const double t0 = now_wall();
  sim.run();
  r.wall_s = now_wall() - t0;
  r.events = sim.executed_events();
  r.sim_end_s = sim.now();
  return r;
}

// --- end-to-end online reconstruction ---------------------------------

// The acceptance scenario: a wide array (mirror(5, shifted), 2048
// stacks -> 20480 stripes, ~102k rebuild reads) serving a short burst
// of user requests while the rebuild drains. Arrivals end ~20 s into a
// ~1700 s simulated rebuild, so the long tail is pure rebuild — the
// regime the seed kernel paid one heap event per element for and the
// new kernel drains in batched runs.
constexpr int kE2eStacks = 2048;
constexpr int kE2eDisks = 10;  // mirror(5): n data + n replica disks

struct E2eVariant {
  const char* name;
  sim::QueueBackend backend;
  bool batch_drains;
};

/// "seed" replicates the seed binary's kernel cost: the std::function
/// binary heap plus one completion event per disk op. "calendar"
/// isolates the queue swap; "batched" is the shipping configuration.
constexpr E2eVariant kE2eVariants[] = {
    {"seed", sim::QueueBackend::kLegacy, false},
    {"calendar", sim::QueueBackend::kCalendar, false},
    {"batched", sim::QueueBackend::kCalendar, true},
};

struct E2eResult {
  recon::OnlineReport report;
  std::uint64_t ops = 0;  // disk ops executed (identical across variants)
  std::uint64_t digest = kFnvOffset;
  double wall_s = 0.0;
};

E2eResult run_e2e(const E2eVariant& variant) {
  sim::set_default_queue_backend(variant.backend);
  E2eResult r;
  const auto arch = layout::Architecture::mirror(5, true);
  // Timing-only run; contents are never read, so skip initialize().
  array::DiskArray arr(bench::experiment_config(arch, kE2eStacks));
  arr.fail_physical(0);
  recon::OnlineConfig cfg;
  cfg.arrival.rate_hz = 30.0;
  cfg.arrival.max_requests = 600;
  cfg.arrival.seed = 2012;
  cfg.batch_drains = variant.batch_drains;
  const double t0 = now_wall();
  auto report = recon::run_online_reconstruction(arr, cfg);
  r.wall_s = now_wall() - t0;
  if (!report.is_ok()) {
    std::fprintf(stderr, "online recon failed: %s\n",
                 report.status().to_string().c_str());
    std::exit(1);
  }
  r.report = report.value();
  for (int d = 0; d < arr.total_disks(); ++d) {
    const auto& c = arr.physical(d).counters();
    r.ops += c.reads + c.writes;
  }
  r.digest = mix(r.digest, r.report.rebuild_done_s);
  r.digest = mix(r.digest, r.report.mean_latency_s);
  r.digest = mix(r.digest, r.report.p99_latency_s);
  r.digest = mix(r.digest, static_cast<std::uint64_t>(r.report.degraded_reads));
  r.digest = mix(r.digest, r.ops);
  return r;
}

/// Kernel events the *seed* executor processes for this scenario: one
/// completion per disk op, one arrival event per issued request (plus
/// the cutoff firing), and one kickoff per live disk. Both variants'
/// events/sec use this count, so their ratio equals the wall ratio.
std::uint64_t seed_events(const E2eResult& r, int ndisks) {
  return r.ops + r.report.requests_issued + 1 +
         static_cast<std::uint64_t>(ndisks - 1);
}

// --- MultiKernel scaling ----------------------------------------------

std::uint64_t report_digest(const std::vector<recon::OnlineReport>& reports) {
  std::uint64_t d = kFnvOffset;
  for (const auto& r : reports) {
    d = mix(d, r.rebuild_done_s);
    d = mix(d, r.mean_latency_s);
    d = mix(d, r.p99_latency_s);
    d = mix(d, static_cast<std::uint64_t>(r.requests_completed));
  }
  return d;
}

struct ScalingResult {
  std::size_t threads = 0;
  double wall_s = 0.0;
  std::uint64_t digest = 0;
};

ScalingResult run_scaling(std::size_t threads) {
  struct Case {
    int n;
    bool shifted;
  };
  std::vector<Case> cases;
  for (int rep = 0; rep < 2; ++rep)
    for (int n = 3; n <= 7; n += 2)
      for (const bool shifted : {false, true}) cases.push_back({n, shifted});

  sim::MultiKernel kernel({threads});
  const double t0 = now_wall();
  const auto reports = kernel.map(cases.size(), [&](std::size_t i) {
    const auto arch =
        layout::Architecture::mirror(cases[i].n, cases[i].shifted);
    array::DiskArray arr(bench::experiment_config(arch, /*stacks=*/4));
    arr.initialize();
    arr.fail_physical(0);
    recon::OnlineConfig cfg;
    // Heavier than the e2e case so each of the 12 cases carries enough
    // work for the thread-scaling measurement to mean something.
    cfg.arrival.rate_hz = 120.0;
    cfg.arrival.max_requests = 20000;
    cfg.arrival.seed = 2012;
    auto report = recon::run_online_reconstruction(arr, cfg);
    if (!report.is_ok()) {
      std::fprintf(stderr, "online recon failed: %s\n",
                   report.status().to_string().c_str());
      std::exit(1);
    }
    return report.value();
  });
  ScalingResult r;
  r.threads = threads;
  r.wall_s = now_wall() - t0;
  r.digest = report_digest(reports);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--json") json = true;

  constexpr int kFleetDisks = 4096;
  constexpr std::uint64_t kFleetEvents = 1500000;

  // Best-of-N wall times; the deterministic fields are identical
  // across repetitions (asserted below via the digest). The fleet and
  // e2e loops stay separate so the fleet's multi-megabyte event
  // population doesn't sit between two e2e variants being compared.
  FleetResult fleet[3];
  for (int b = 0; b < 3; ++b) {
    for (int rep = 0; rep < 3; ++rep) {
      FleetResult f = run_fleet(kBackends[b], kFleetDisks, kFleetEvents);
      if (rep == 0 || f.wall_s < fleet[b].wall_s) fleet[b] = f;
    }
  }
  E2eResult e2e[3];
  for (int rep = 0; rep < 5; ++rep) {
    for (int b = 0; b < 3; ++b) {
      E2eResult e = run_e2e(kE2eVariants[b]);
      if (rep == 0 || e.wall_s < e2e[b].wall_s) e2e[b] = e;
    }
  }
  sim::set_default_queue_backend(sim::QueueBackend::kCalendar);

  // All variants must agree exactly — the speedup is only meaningful
  // if the kernels compute the same simulation.
  for (int b = 1; b < 3; ++b) {
    if (fleet[b].digest != fleet[0].digest ||
        fleet[b].events != fleet[0].events ||
        fleet[b].sim_end_s != fleet[0].sim_end_s) {
      std::fprintf(stderr, "backend %s diverged from calendar\n",
                   backend_name(kBackends[b]));
      return 1;
    }
    if (e2e[b].digest != e2e[0].digest) {
      std::fprintf(stderr, "e2e variant %s diverged from %s\n",
                   kE2eVariants[b].name, kE2eVariants[0].name);
      return 1;
    }
  }

  const std::size_t thread_counts[] = {1, 2, 4, 8};
  ScalingResult scaling[4];
  for (int t = 0; t < 4; ++t) scaling[t] = run_scaling(thread_counts[t]);
  for (int t = 1; t < 4; ++t) {
    if (scaling[t].digest != scaling[0].digest) {
      std::fprintf(stderr, "parallel run (%zu threads) diverged from serial\n",
                   scaling[t].threads);
      return 1;
    }
  }

  // Deterministic table -> sma_sim_kernel.csv (drift-gated).
  Table table("Simulation kernel — deterministic cross-backend digests");
  table.set_header({"workload", "variant", "events", "sim time (s)",
                    "digest"});
  for (int b = 0; b < 3; ++b)
    table.add_row({"fleet", backend_name(kBackends[b]),
                   Table::num(fleet[b].events),
                   Table::num(fleet[b].sim_end_s, 6),
                   hex(fleet[b].digest)});
  for (int b = 0; b < 3; ++b)
    table.add_row({"online_recon_e2e", kE2eVariants[b].name,
                   Table::num(e2e[b].ops),
                   Table::num(e2e[b].report.rebuild_done_s, 6),
                   hex(e2e[b].digest)});
  for (int t = 0; t < 4; ++t)
    table.add_row({"multi_kernel",
                   "threads=" + std::to_string(scaling[t].threads),
                   Table::num(static_cast<std::uint64_t>(12)), "-",
                   hex(scaling[t].digest)});

  if (json) {
    table.write_csv("sma_sim_kernel.csv");
    std::printf("{\n  \"fleet\": {\n    \"disks\": %d,\n    \"events\": %llu",
                kFleetDisks,
                static_cast<unsigned long long>(fleet[0].events));
    for (int b = 0; b < 3; ++b)
      std::printf(",\n    \"%s\": {\"wall_s\": %.6f, \"events_per_s\": %.0f, "
                  "\"sim_hours_per_s\": %.2f}",
                  backend_name(kBackends[b]), fleet[b].wall_s,
                  static_cast<double>(fleet[b].events) / fleet[b].wall_s,
                  fleet[b].sim_end_s / 3600.0 / fleet[b].wall_s);
    std::printf(",\n    \"speedup_vs_legacy\": %.2f,\n"
                "    \"speedup_vs_heap\": %.2f\n  }",
                fleet[2].wall_s / fleet[0].wall_s,
                fleet[1].wall_s / fleet[0].wall_s);
    const std::uint64_t ev = seed_events(e2e[0], kE2eDisks);
    std::printf(",\n  \"online_recon_e2e\": {\n"
                "    \"stacks\": %d,\n    \"disk_ops\": %llu,\n"
                "    \"seed_kernel_events\": %llu,\n"
                "    \"rebuild_done_s\": %.6f",
                kE2eStacks, static_cast<unsigned long long>(e2e[0].ops),
                static_cast<unsigned long long>(ev),
                e2e[0].report.rebuild_done_s);
    for (int b = 0; b < 3; ++b)
      std::printf(",\n    \"%s\": {\"wall_s\": %.6f, \"events_per_s\": %.0f, "
                  "\"sim_hours_per_s\": %.2f}",
                  kE2eVariants[b].name, e2e[b].wall_s,
                  static_cast<double>(ev) / e2e[b].wall_s,
                  e2e[b].report.rebuild_done_s / 3600.0 / e2e[b].wall_s);
    std::printf(",\n    \"speedup_new_vs_seed\": %.2f\n  }",
                e2e[0].wall_s / e2e[2].wall_s);
    std::printf(",\n  \"multi_kernel\": {\n    \"cases\": 12,\n"
                "    \"bit_identical\": true,\n"
                "    \"hardware_concurrency\": %u",
                std::thread::hardware_concurrency());
    for (int t = 0; t < 4; ++t)
      std::printf(",\n    \"threads_%zu\": {\"wall_s\": %.6f, "
                  "\"speedup\": %.2f}",
                  scaling[t].threads, scaling[t].wall_s,
                  scaling[0].wall_s / scaling[t].wall_s);
    std::printf("\n  }\n}\n");
    return 0;
  }

  bench::emit(table, "sma_sim_kernel.csv");

  Table timing("Simulation kernel — throughput (wall clock, best of 3)");
  // "speedup" is vs the legacy backend for the fleet rows, vs the seed
  // variant for the e2e rows, and vs one thread for multi_kernel rows.
  timing.set_header({"workload", "variant", "wall (s)", "events/s",
                     "sim hours/s", "speedup"});
  for (int b = 0; b < 3; ++b)
    timing.add_row(
        {"fleet", backend_name(kBackends[b]), Table::num(fleet[b].wall_s, 4),
         Table::num(static_cast<double>(fleet[b].events) / fleet[b].wall_s, 0),
         Table::num(fleet[b].sim_end_s / 3600.0 / fleet[b].wall_s, 2),
         Table::num(fleet[2].wall_s / fleet[b].wall_s, 2)});
  for (int b = 0; b < 3; ++b)
    timing.add_row(
        {"online_recon_e2e", kE2eVariants[b].name, Table::num(e2e[b].wall_s, 4),
         Table::num(static_cast<double>(seed_events(e2e[0], kE2eDisks)) /
                        e2e[b].wall_s,
                    0),
         Table::num(e2e[b].report.rebuild_done_s / 3600.0 / e2e[b].wall_s, 2),
         Table::num(e2e[0].wall_s / e2e[b].wall_s, 2)});
  for (int t = 0; t < 4; ++t)
    timing.add_row({"multi_kernel",
                    "threads=" + std::to_string(scaling[t].threads),
                    Table::num(scaling[t].wall_s, 4), "-", "-",
                    Table::num(scaling[0].wall_s / scaling[t].wall_s, 2)});
  std::fputs(timing.render().c_str(), stdout);
  return 0;
}
