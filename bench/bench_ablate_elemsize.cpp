// Ablation A1: element-size sweep. The shifted arrangement's advantage
// comes from trading sequential streaming on one disk for parallel
// random reads on all disks; the smaller the element, the larger the
// relative positioning cost and the smaller the net gain. The paper
// fixes elements at 4 MB ("a typical choice"); this sweep shows where
// that choice sits on the curve.
#include "common.hpp"
#include "recon/executor.hpp"
#include "recon/failure.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace sma;
  const int n = 5;

  Table table("Ablation — element size vs reconstruction gain (mirror, n=5)");
  table.set_header({"element MB", "traditional MB/s", "shifted MB/s",
                    "improvement factor", "theoretical (n)"});

  for (const double mb : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    double mbps[2] = {0, 0};
    for (const bool shifted : {false, true}) {
      const auto arch = layout::Architecture::mirror(n, shifted);
      const auto failures = recon::enumerate_single_failures(arch);
      std::vector<double> results(failures.size());
      parallel_for(failures.size(), [&](std::size_t i) {
        auto cfg = bench::experiment_config(arch, /*stacks=*/2);
        cfg.logical_element_bytes =
            static_cast<std::uint64_t>(mb * 1'000'000);
        array::DiskArray arr(cfg);
        arr.initialize();
        for (const int d : failures[i]) arr.fail_physical(d);
        auto report = recon::reconstruct(arr);
        results[i] = report.is_ok()
                         ? report.value().read_throughput_mbps()
                         : 0.0;
      });
      RunningStat stat;
      for (const double r : results) stat.add(r);
      mbps[shifted ? 1 : 0] = stat.mean();
    }
    table.add_row({Table::num(mb, 2), Table::num(mbps[0], 1),
                   Table::num(mbps[1], 1), Table::num(mbps[1] / mbps[0], 2),
                   Table::num(n)});
  }
  bench::emit(table, "sma_ablate_elemsize.csv");
  return 0;
}
