// Write-path timing comparison across fault-tolerance-2 architectures
// (companion to Fig. 10 and to bench_update_penalty): the same random
// large-write workload against the shifted mirror method with parity,
// RAID-5 (tolerance-1 reference), and shortened RAID-6 (RDP geometry)
// with read-modify-write parity updates.
#include <cstdio>

#include "common.hpp"
#include "workload/raid_write.hpp"
#include "workload/write_executor.hpp"

int main() {
  using namespace sma;

  Table table("Write throughput under random large writes (MB/s)");
  table.set_header({"n", "mirror-parity-shifted", "raid5", "raid6-shortened",
                    "mirror/raid6"});

  for (int n = 3; n <= 7; ++n) {
    workload::WriteWorkloadConfig wcfg;
    wcfg.arrival.max_requests = 400;
    wcfg.arrival.seed = 20120901;

    double mirror_mbps = 0;
    {
      array::DiskArray arr(bench::experiment_config(
          layout::Architecture::mirror_with_parity(n, true), 2));
      arr.initialize();
      const auto reqs = workload::generate_large_writes(arr, wcfg);
      mirror_mbps =
          workload::run_write_workload(arr, reqs).write_throughput_mbps();
    }
    double raid5_mbps = 0;
    {
      array::DiskArray arr(
          bench::experiment_config(layout::Architecture::raid5(n), 2));
      arr.initialize();
      const auto reqs = workload::generate_large_writes(arr, wcfg);
      auto report = workload::run_raid_write_workload(arr, reqs);
      if (!report.is_ok()) {
        std::fprintf(stderr, "raid5: %s\n",
                     report.status().to_string().c_str());
        return 1;
      }
      raid5_mbps = report.value().write_throughput_mbps();
    }
    double raid6_mbps = 0;
    {
      array::DiskArray arr(
          bench::experiment_config(layout::Architecture::raid6(n), 2));
      arr.initialize();
      const auto reqs = workload::generate_large_writes(arr, wcfg);
      auto report = workload::run_raid_write_workload(arr, reqs);
      if (!report.is_ok()) {
        std::fprintf(stderr, "raid6: %s\n",
                     report.status().to_string().c_str());
        return 1;
      }
      raid6_mbps = report.value().write_throughput_mbps();
    }
    table.add_row({Table::num(n), Table::num(mirror_mbps, 1),
                   Table::num(raid5_mbps, 1), Table::num(raid6_mbps, 1),
                   Table::num(mirror_mbps / raid6_mbps, 2)});
  }
  bench::emit(table, "sma_write_raid6.csv");
  return 0;
}
