// Per-disk utilization timelines during the on-line rebuild, sampled on
// a fixed simulated-time cadence through the observability layer. The
// traditional arrangement shows one saturated partner disk carrying the
// whole rebuild while the rest idle; the shifted arrangement spreads
// the same work evenly, which is exactly the paper's availability
// argument made visible as a time series.
#include <cassert>
#include <cstdio>

#include "common.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace_sink.hpp"
#include "recon/online.hpp"

int main() {
  using namespace sma;

  constexpr int kN = 5;
  constexpr double kSampleS = 0.5;

  Table summary("On-line rebuild, per-disk utilization (n = 5, mirror)");
  summary.set_header({"arrangement", "rebuild done (s)", "trace events",
                      "service spans", "hottest util", "mean util",
                      "imbalance (max/mean)"});

  Table timeline("Per-disk timeline samples (long format)");
  timeline.set_header({"arrangement", "t (s)", "disk", "util", "qdepth",
                       "rebuild MB/s", "user MB/s", "retries"});

  for (const bool shifted : {false, true}) {
    const auto arch = layout::Architecture::mirror(kN, shifted);
    array::DiskArray arr(bench::experiment_config(arch, /*stacks=*/4));
    arr.initialize();
    arr.fail_physical(0);

    obs::TraceSink trace;
    obs::MetricsRegistry metrics;
    metrics.set_sample_interval(kSampleS);
    obs::Observer ob;
    ob.trace = &trace;
    ob.metrics = &metrics;

    recon::OnlineConfig cfg;
    cfg.arrival.rate_hz = 30.0;
    cfg.arrival.max_requests = 600;
    cfg.arrival.seed = 2012;
    cfg.observer = &ob;
    auto report = recon::run_online_reconstruction(arr, cfg);
    if (!report.is_ok()) {
      std::fprintf(stderr, "online recon failed: %s\n",
                   report.status().to_string().c_str());
      return 1;
    }
    const double rebuild_done = report.value().rebuild_done_s;
    const char* name = shifted ? "shifted" : "traditional";

    // Probes register per disk in a fixed order: util, qdepth,
    // rebuild_mbps, user_mbps, retries.
    constexpr int kPerDisk = 5;
    const int disks = arr.total_disks();
    assert(static_cast<int>(metrics.columns().size()) == disks * kPerDisk);

    // Mean utilization per disk over the rebuild window, surviving
    // disks only (disk 0 is the dead one).
    std::vector<double> util_sum(static_cast<std::size_t>(disks), 0.0);
    std::size_t rebuild_samples = 0;
    for (const auto& row : metrics.timeline()) {
      const bool in_rebuild = row.t_s <= rebuild_done;
      if (in_rebuild) ++rebuild_samples;
      for (int d = 0; d < disks; ++d) {
        const std::size_t base = static_cast<std::size_t>(d * kPerDisk);
        if (in_rebuild) util_sum[static_cast<std::size_t>(d)] += row.values[base];
        timeline.add_row({std::string(name), Table::num(row.t_s, 2),
                          Table::num(d), Table::num(row.values[base], 4),
                          Table::num(row.values[base + 1], 2),
                          Table::num(row.values[base + 2], 2),
                          Table::num(row.values[base + 3], 2),
                          Table::num(row.values[base + 4], 0)});
      }
    }
    double hottest = 0.0;
    double total = 0.0;
    int survivors = 0;
    for (int d = 1; d < disks; ++d) {
      const double mean_util =
          rebuild_samples > 0
              ? util_sum[static_cast<std::size_t>(d)] /
                    static_cast<double>(rebuild_samples)
              : 0.0;
      hottest = std::max(hottest, mean_util);
      total += mean_util;
      ++survivors;
    }
    const double mean = survivors > 0 ? total / survivors : 0.0;
    summary.add_row(
        {std::string(name), Table::num(rebuild_done, 2),
         Table::num(static_cast<std::uint64_t>(trace.size())),
         Table::num(trace.count(obs::EventKind::kServiceStart)),
         Table::num(hottest, 3), Table::num(mean, 3),
         Table::num(mean > 0 ? hottest / mean : 0.0, 2)});
  }

  std::fputs(summary.render().c_str(), stdout);
  if (timeline.write_csv("sma_disk_timeline.csv"))
    std::printf("[csv] sma_disk_timeline.csv (%zu samples)\n\n",
                timeline.row_count());
  else
    std::printf("[csv] failed to write sma_disk_timeline.csv\n\n");
  return 0;
}
