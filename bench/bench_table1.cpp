// Regenerates Table I: read accesses during reconstruction of the
// shifted mirror method with parity, by exhaustive enumeration of all
// C(2n+1, 2) double-disk failures, plus the closed-form average
// Avg = 4n / (2n + 1). The paper states the table symbolically; we
// print it for n = 3..7 (the experimental range) and check uniformity
// of every class.
#include <cstdio>

#include "common.hpp"
#include "recon/analytic.hpp"

int main() {
  using namespace sma;

  Table table("Table I — shifted mirror method with parity");
  table.set_header({"n", "failure situation", "num cases", "read accesses"});
  Table avg("Average read accesses (enumerated vs closed form 4n/(2n+1))");
  avg.set_header({"n", "enumerated", "closed form", "traditional (=n)",
                  "improvement factor (2n+1)/4"});

  for (int n = 3; n <= 7; ++n) {
    const auto arch = layout::Architecture::mirror_with_parity(n, true);
    const auto cases = recon::enumerate_double_failure_cases(arch);
    if (!cases.uniform)
      std::printf("WARNING: non-uniform class at n=%d\n", n);
    for (const auto& row : cases.rows)
      table.add_row({Table::num(n), std::string(recon::to_string(row.cls)),
                     Table::num(static_cast<std::uint64_t>(row.num_cases)),
                     Table::num(row.num_read_accesses)});
    const auto trad = recon::enumerate_double_failure_cases(
        layout::Architecture::mirror_with_parity(n, false));
    avg.add_row({Table::num(n), Table::num(cases.average_read_accesses, 4),
                 Table::num(recon::paper_avg_read_shifted_mirror_parity(n), 4),
                 Table::num(trad.average_read_accesses, 1),
                 Table::num(trad.average_read_accesses /
                                cases.average_read_accesses,
                            3)});
  }

  bench::emit(table, "sma_table1.csv");
  bench::emit(avg, "sma_table1_avg.csv");
  return 0;
}
