// Regenerates Table I: read accesses during reconstruction of the
// shifted mirror method with parity, by exhaustive enumeration of all
// C(2n+1, 2) double-disk failures, plus the closed-form average
// Avg = 4n / (2n + 1). The paper states the table symbolically; we
// print it for n = 3..7 (the experimental range) and check uniformity
// of every class. Each n enumerates on its own thread via
// recon::table1_sweep; output is bit-identical to a serial run.
#include <cstdio>

#include "common.hpp"
#include "recon/sweeps.hpp"

int main() {
  using namespace sma;

  auto result = recon::table1_sweep(3, 7, {});
  if (!result.is_ok()) {
    std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
    return 1;
  }
  bench::emit(result.value().table, "sma_table1.csv");
  bench::emit(result.value().avg, "sma_table1_avg.csv");
  return 0;
}
