// Ablation A3: on-line reconstruction. While the rebuild drains, user
// reads arrive Poisson and take priority on each disk queue. Under the
// traditional arrangement all rebuild reads hammer the one partner
// disk, so user reads landing there queue badly; the shifted
// arrangement spreads rebuild load across every disk. Reported: user
// read latency percentiles and rebuild completion time.
#include "common.hpp"
#include "recon/online.hpp"

int main() {
  using namespace sma;

  Table table("On-line reconstruction — user read latency during rebuild");
  table.set_header({"n", "arrangement", "rebuild done (s)", "mean lat (ms)",
                    "p50 (ms)", "p95 (ms)", "p99 (ms)",
                    "degraded mean (ms)"});

  for (int n = 3; n <= 7; n += 2) {
    for (const bool shifted : {false, true}) {
      const auto arch = layout::Architecture::mirror(n, shifted);
      array::DiskArray arr(bench::experiment_config(arch, /*stacks=*/4));
      arr.initialize();
      arr.fail_physical(0);
      recon::OnlineConfig cfg;
      cfg.arrival.rate_hz = 30.0;
      cfg.arrival.max_requests = 600;
      cfg.arrival.seed = 2012;
      auto report = recon::run_online_reconstruction(arr, cfg);
      if (!report.is_ok()) {
        std::fprintf(stderr, "online recon failed: %s\n",
                     report.status().to_string().c_str());
        return 1;
      }
      const auto& r = report.value();
      table.add_row({Table::num(n),
                     std::string(shifted ? "shifted" : "traditional"),
                     Table::num(r.rebuild_done_s, 2),
                     Table::num(r.mean_latency_s * 1e3, 1),
                     Table::num(r.p50_latency_s * 1e3, 1),
                     Table::num(r.p95_latency_s * 1e3, 1),
                     Table::num(r.p99_latency_s * 1e3, 1),
                     Table::num(r.mean_degraded_latency_s * 1e3, 1)});
    }
  }
  bench::emit(table, "sma_online_recon.csv");

  // Mixed read/write user workload during rebuild (30% writes): writes
  // fan out to every live copy, adding load to the same disks the
  // rebuild is draining.
  Table mixed("On-line reconstruction — 30% user writes");
  mixed.set_header({"n", "arrangement", "rebuild done (s)",
                    "read mean (ms)", "read p99 (ms)", "write mean (ms)",
                    "write p99 (ms)"});
  for (int n = 3; n <= 7; n += 2) {
    for (const bool shifted : {false, true}) {
      const auto arch = layout::Architecture::mirror_with_parity(n, shifted);
      array::DiskArray arr(bench::experiment_config(arch, /*stacks=*/4));
      arr.initialize();
      arr.fail_physical(0);
      recon::OnlineConfig cfg;
      cfg.arrival.rate_hz = 30.0;
      cfg.arrival.max_requests = 600;
      cfg.mix.write_fraction = 0.3;
      cfg.arrival.seed = 2012;
      auto report = recon::run_online_reconstruction(arr, cfg);
      if (!report.is_ok()) {
        std::fprintf(stderr, "online recon failed: %s\n",
                     report.status().to_string().c_str());
        return 1;
      }
      const auto& r = report.value();
      mixed.add_row({Table::num(n),
                     std::string(shifted ? "shifted" : "traditional"),
                     Table::num(r.rebuild_done_s, 2),
                     Table::num(r.mean_latency_s * 1e3, 1),
                     Table::num(r.p99_latency_s * 1e3, 1),
                     Table::num(r.mean_write_latency_s * 1e3, 1),
                     Table::num(r.p99_write_latency_s * 1e3, 1)});
    }
  }
  bench::emit(mixed, "sma_online_recon_writes.csv");

  // Second failure injected mid-rebuild (mirror with parity): the
  // rebuild replans for the double failure and keeps serving.
  Table second("On-line reconstruction — second disk dies mid-rebuild");
  second.set_header({"n", "arrangement", "rebuild done, 1 failure (s)",
                     "rebuild done, 2nd @1s (s)", "read p99 (ms)"});
  for (int n = 3; n <= 7; n += 2) {
    for (const bool shifted : {false, true}) {
      const auto arch = layout::Architecture::mirror_with_parity(n, shifted);
      double done[2] = {0, 0};
      double p99 = 0;
      for (const bool inject : {false, true}) {
        array::DiskArray arr(bench::experiment_config(arch, /*stacks=*/4));
        arr.initialize();
        arr.fail_physical(0);
        recon::OnlineConfig cfg;
        cfg.arrival.rate_hz = 30.0;
        cfg.arrival.max_requests = 400;
        cfg.arrival.seed = 2012;
        if (inject) {
          cfg.second_failure_at_s = 1.0;
          cfg.second_failure_disk = n;  // first mirror disk
        }
        auto report = recon::run_online_reconstruction(arr, cfg);
        if (!report.is_ok()) {
          std::fprintf(stderr, "online recon failed: %s\n",
                       report.status().to_string().c_str());
          return 1;
        }
        done[inject ? 1 : 0] = report.value().rebuild_done_s;
        if (inject) p99 = report.value().p99_latency_s;
      }
      second.add_row({Table::num(n),
                      std::string(shifted ? "shifted" : "traditional"),
                      Table::num(done[0], 2), Table::num(done[1], 2),
                      Table::num(p99 * 1e3, 1)});
    }
  }
  bench::emit(second, "sma_online_recon_second_failure.csv");
  return 0;
}
