// QoS-aware serving: rebuild scheduling policies under contending user
// load. For each arrangement the online rebuild runs under strict user
// priority (no cap — the paper's model), a fixed in-flight rebuild
// budget, and the adaptive feedback throttle that holds foreground read
// p99 at a target while rebuilding as fast as the SLO allows. The
// shifted arrangement spreads rebuild I/O across all disks, so at the
// same p99 target its controller can keep a much larger budget than the
// traditional arrangement — the rebuild finishes several times sooner
// at equal user-visible latency. Extra rows exercise the bursty (MMPP)
// and closed-loop arrival processes under the adaptive policy.
#include "common.hpp"
#include "recon/online.hpp"
#include "workload/arrival.hpp"
#include "workload/qos.hpp"

namespace {

// Foreground read p99 SLO. One 4 MB element read costs ~45 ms of disk
// time, so ~80 ms is the un-contended p50; 120 ms is reachable by
// throttling the rebuild but violated when rebuild I/O queues ahead of
// user reads — the regime where the controller has a real trade-off.
constexpr double kP99TargetS = 0.120;
constexpr int kFixedBudget = 2;

struct Cell {
  const char* arrival;
  const char* policy;
  double rate_hz;
};

}  // namespace

int main() {
  using namespace sma;

  Table table("QoS throttling — rebuild time vs foreground p99 (n = 5)");
  table.set_header({"n", "arrangement", "arrival", "rate (req/s)", "policy",
                    "rebuild done (s)", "read p50 (ms)", "read p99 (ms)",
                    "read p99.9 (ms)", "SLO viol (%)", "final budget",
                    "adjustments"});

  const Cell cells[] = {
      {"poisson", "strict", 20.0},   {"poisson", "fixed", 20.0},
      {"poisson", "adaptive", 20.0}, {"poisson", "strict", 40.0},
      {"poisson", "fixed", 40.0},    {"poisson", "adaptive", 40.0},
      {"bursty", "adaptive", 10.0},  {"closed_loop", "adaptive", 0.0},
  };

  const int n = 5;
  for (const Cell& cell : cells) {
    for (const bool shifted : {false, true}) {
      const auto arch = layout::Architecture::mirror(n, shifted);
      array::DiskArray arr(bench::experiment_config(arch, /*stacks=*/4));
      arr.initialize();
      arr.fail_physical(0);

      recon::OnlineConfig cfg;
      auto kind = workload::arrival_kind_from(cell.arrival);
      auto policy = workload::rebuild_policy_from(cell.policy);
      if (!kind.is_ok() || !policy.is_ok()) return 1;
      cfg.arrival.kind = kind.value();
      cfg.arrival.rate_hz = cell.rate_hz > 0 ? cell.rate_hz : 40.0;
      cfg.arrival.max_requests = 600;
      cfg.arrival.seed = 2012;
      cfg.arrival.clients = 8;
      cfg.arrival.think_time_s = 0.05;
      cfg.arrival.burst_rate_hz = 200.0;
      cfg.arrival.mean_burst_s = 0.5;
      cfg.arrival.mean_idle_s = 1.5;
      cfg.qos.policy = policy.value();
      cfg.qos.p99_target_s = kP99TargetS;
      if (policy.value() == workload::RebuildPolicy::kFixedBudget)
        cfg.qos.rebuild_budget = kFixedBudget;

      auto report = recon::run_online_reconstruction(arr, cfg);
      if (!report.is_ok()) {
        std::fprintf(stderr, "qos throttle failed: %s\n",
                     report.status().to_string().c_str());
        return 1;
      }
      const auto& r = report.value();
      table.add_row({Table::num(n),
                     std::string(shifted ? "shifted" : "traditional"),
                     std::string(cell.arrival), Table::num(cell.rate_hz, 0),
                     std::string(cell.policy), Table::num(r.rebuild_done_s, 2),
                     Table::num(r.p50_latency_s * 1e3, 1),
                     Table::num(r.p99_latency_s * 1e3, 1),
                     Table::num(r.p999_latency_s * 1e3, 1),
                     Table::num(r.slo_violation_pct, 2),
                     Table::num(r.final_rebuild_budget),
                     Table::num(r.throttle_adjustments)});
    }
  }
  bench::emit(table, "sma_qos_throttle.csv");
  return 0;
}
