// Chaos experiment: the reference compound scenario (fail-slow peer +
// crash mid-rebuild + second failure + silent corruption) driven
// through the four-phase chaos engine, across the paper's arrangement
// axis and the hedging axis.
//
// Four cells — {shifted, traditional} x {hedge off, hedge on} — each
// run chaos::reference_scenario end to end with the invariant oracle
// live. Two claims are enforced in-bench, not just printed:
//
//  * shifted beats traditional on the degraded serving p99 under the
//    compound scenario (hedging off on both sides): the arrangement's
//    spread rebuild keeps the tail down even while a peer limps and a
//    second disk dies mid-rebuild;
//  * hedging beats no hedging on the same arrangement: the fail-slow
//    detector's affinity reroutes plus deadline hedges cut the tail a
//    layout change alone cannot reach.
//
// A seeded multi-scenario soak then runs on sim::MultiKernel threads
// and must complete with zero oracle violations; its serial replay
// must match the parallel digest bit for bit, or the bench exits
// non-zero. The emitted sma_chaos.csv holds only deterministic values
// (counts, simulated times, digests), so the CI drift gate can require
// it bit-identical; wall-clock numbers go to stdout, or to JSON with
// --json.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "chaos/engine.hpp"
#include "chaos/scenario.hpp"
#include "common.hpp"
#include "util/flags.hpp"

namespace {

using namespace sma;

std::string hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

double now_wall() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Cell {
  const char* name;
  bool shifted;
  bool hedge;
};

constexpr Cell kCells[] = {
    {"shifted", true, false},
    {"shifted+hedge", true, true},
    {"traditional", false, false},
    {"traditional+hedge", false, true},
};

struct CellResult {
  chaos::ChaosReport report;
  double wall_s = 0.0;
};

chaos::ChaosConfig cell_config(const Cell& cell, int stacks, int requests,
                               double rate_hz) {
  chaos::ChaosConfig cfg;
  cfg.shifted = cell.shifted;
  cfg.stacks = stacks;
  cfg.requests = requests;
  cfg.arrival_rate_hz = rate_hz;
  cfg.hedge.enabled = cell.hedge;
  const int disks =
      layout::Architecture::mirror_with_parity(cfg.n, cfg.shifted)
          .total_disks();
  cfg.scenario = chaos::reference_scenario(disks);
  return cfg;
}

CellResult run_cell(const Cell& cell, int stacks, int requests,
                    double rate_hz) {
  CellResult r;
  const double t0 = now_wall();
  auto res = chaos::run_scenario(cell_config(cell, stacks, requests, rate_hz));
  r.wall_s = now_wall() - t0;
  if (!res.is_ok()) {
    std::fprintf(stderr, "chaos cell %s failed: %s\n", cell.name,
                 res.status().to_string().c_str());
    std::exit(1);
  }
  r.report = std::move(res).take();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool json = flags.get_bool("json", false);
  const int stacks = flags.get_int("stacks", 8);
  const int requests = flags.get_int("requests", 3000);
  // Open-loop arrival rate, chosen inside degraded capacity: the tail
  // must be rebuild- and fail-slow-induced, not saturation collapse.
  const double rate_hz = flags.get_double("rate", 20.0);
  const int scenarios = flags.get_int("scenarios", 48);
  const std::size_t threads =
      static_cast<std::size_t>(flags.get_int("threads", 4));
  const std::string csv = flags.get("out", "sma_chaos.csv");
  for (const auto& e : flags.errors())
    std::fprintf(stderr, "bench_chaos: bad flag value: %s\n", e.c_str());

  CellResult cells[4];
  for (int c = 0; c < 4; ++c)
    cells[c] = run_cell(kCells[c], stacks, requests, rate_hz);

  // --- determinism: every cell must replay bit-identically -------------
  for (int c = 0; c < 4; ++c) {
    const CellResult replay = run_cell(kCells[c], stacks, requests, rate_hz);
    if (replay.report.digest != cells[c].report.digest) {
      std::fprintf(stderr, "bench_chaos: cell %s diverged on replay: %s vs %s\n",
                   kCells[c].name, hex(replay.report.digest).c_str(),
                   hex(cells[c].report.digest).c_str());
      return 1;
    }
  }

  // --- seeded soak: zero violations, thread-count-invariant digest -----
  chaos::SoakConfig scfg;
  scfg.scenarios = scenarios;
  scfg.threads = threads;
  const double soak_t0 = now_wall();
  auto soak = chaos::run_soak(scfg);
  const double soak_wall = now_wall() - soak_t0;
  if (!soak.is_ok()) {
    std::fprintf(stderr, "bench_chaos: soak failed: %s\n",
                 soak.status().to_string().c_str());
    return 1;
  }
  if (soak.value().violations != 0) {
    std::fprintf(stderr, "bench_chaos: soak hit %d oracle violation(s):\n",
                 soak.value().violations);
    for (const std::string& m : soak.value().violation_messages)
      std::fprintf(stderr, "  %s\n", m.c_str());
    return 1;
  }
  scfg.threads = 1;
  const double serial_t0 = now_wall();
  auto serial = chaos::run_soak(scfg);
  const double serial_wall = now_wall() - serial_t0;
  if (!serial.is_ok() || serial.value().digest != soak.value().digest) {
    std::fprintf(stderr,
                 "bench_chaos: serial soak diverged from parallel "
                 "(threads=%zu)\n",
                 threads);
    return 1;
  }

  // Deterministic table -> sma_chaos.csv (drift-gated at defaults).
  const chaos::Scenario ref = chaos::reference_scenario(
      layout::Architecture::mirror_with_parity(4, true).total_disks());
  Table table("Chaos — reference scenario " + ref.spec() + " (" +
              std::to_string(requests) + " requests/cell, " +
              std::to_string(scenarios) + "-scenario soak)");
  table.set_header({"cell", "completed", "degr p99 (s)", "flagged", "hedged",
                    "wins", "reroutes", "resync regions", "scrub repairs",
                    "repairs", "digest"});
  for (int c = 0; c < 4; ++c) {
    const chaos::ChaosReport& r = cells[c].report;
    table.add_row(
        {kCells[c].name,
         Table::num(static_cast<std::uint64_t>(r.serving.requests_completed)),
         Table::num(r.degraded_p99_s, 6),
         Table::num(static_cast<std::uint64_t>(r.serving.fail_slow_flagged)),
         Table::num(static_cast<std::uint64_t>(r.serving.hedged_reads)),
         Table::num(static_cast<std::uint64_t>(r.serving.hedge_wins)),
         Table::num(static_cast<std::uint64_t>(r.serving.affinity_reroutes)),
         Table::num(static_cast<std::uint64_t>(r.resync.regions_scanned)),
         Table::num(r.crash_scrub.repaired_by_checksum +
                    r.scrub.repaired_by_checksum),
         Table::num(static_cast<std::uint64_t>(r.repairs_started)),
         hex(r.digest)});
  }
  table.add_row({"soak", Table::num(static_cast<std::uint64_t>(
                             soak.value().scenarios_run)),
                 "-", "-", "-", "-", "-", "-", "-",
                 Table::num(static_cast<std::uint64_t>(
                     soak.value().violations)),
                 hex(soak.value().digest)});

  // --- the two enforced claims (after the table: a failing claim still
  // leaves the full diagnostics on stdout) ------------------------------
  const chaos::ChaosReport& sh = cells[0].report;   // shifted, no hedge
  const chaos::ChaosReport& shh = cells[1].report;  // shifted + hedge
  const chaos::ChaosReport& tr = cells[2].report;   // traditional, no hedge
  auto enforce_claims = [&]() -> int {
    if (!(sh.degraded_p99_s < tr.degraded_p99_s)) {
      std::fprintf(stderr,
                   "bench_chaos: shifted did not beat traditional on degraded "
                   "p99 under the reference scenario (%.6f vs %.6f s)\n",
                   sh.degraded_p99_s, tr.degraded_p99_s);
      return 1;
    }
    if (!(shh.degraded_p99_s < sh.degraded_p99_s)) {
      std::fprintf(stderr,
                   "bench_chaos: hedging did not beat no-hedging on degraded "
                   "p99 under the fail-slow scenario (%.6f vs %.6f s)\n",
                   shh.degraded_p99_s, sh.degraded_p99_s);
      return 1;
    }
    return 0;
  };

  if (json) {
    table.write_csv(csv);
    std::printf("{\n");
    for (int c = 0; c < 4; ++c) {
      const chaos::ChaosReport& r = cells[c].report;
      std::printf("  \"%s\": {\"wall_s\": %.6f, \"degraded_p99_s\": %.6f, "
                  "\"hedged\": %llu, \"digest\": \"%s\"},\n",
                  kCells[c].name, cells[c].wall_s, r.degraded_p99_s,
                  static_cast<unsigned long long>(r.serving.hedged_reads),
                  hex(r.digest).c_str());
    }
    std::printf("  \"soak\": {\"scenarios\": %d, \"violations\": %d, "
                "\"wall_s\": %.6f, \"serial_wall_s\": %.6f, "
                "\"bit_identical\": true, \"digest\": \"%s\"}\n}\n",
                soak.value().scenarios_run, soak.value().violations,
                soak_wall, serial_wall, hex(soak.value().digest).c_str());
    return enforce_claims();
  }

  bench::emit(table, csv);

  double wall = soak_wall + serial_wall;
  for (int c = 0; c < 4; ++c) wall += 2.0 * cells[c].wall_s;
  std::printf("claims: shifted %.6f < traditional %.6f s degraded p99; "
              "hedge %.6f < %.6f s\n",
              sh.degraded_p99_s, tr.degraded_p99_s, shh.degraded_p99_s,
              sh.degraded_p99_s);
  std::printf("soak: %d scenarios, 0 violations, %.3f s parallel / %.3f s "
              "serial\ntotal: %.3f s wall\n",
              soak.value().scenarios_run, soak_wall, serial_wall, wall);
  return enforce_claims();
}
