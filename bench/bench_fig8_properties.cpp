// Regenerates Fig. 8's analysis (paper Section VI-E): apply the shift
// transformation iteratively and report which of Properties 1-3 each
// resultant arrangement satisfies. Odd iterates must satisfy P1/P2;
// only some satisfy P3 (for n=3, iterates 1 and 5 do, iterate 3 does
// not — exactly the paper's example).
#include "common.hpp"
#include "layout/properties.hpp"

int main() {
  using namespace sma;

  Table table("Fig. 8 — iterated transformation family properties");
  table.set_header({"n", "iterations", "bijective", "P1", "P2", "P3",
                    "usable as shifted-mirror layout"});
  auto yn = [](bool b) { return std::string(b ? "yes" : "no"); };

  for (int n = 3; n <= 6; ++n) {
    for (int k = 0; k <= 6; ++k) {
      const auto arr = layout::make_iterated(n, k);
      const auto report = layout::evaluate_properties(*arr);
      table.add_row({Table::num(n), Table::num(k), yn(report.bijective),
                     yn(report.p1), yn(report.p2), yn(report.p3),
                     yn(report.all())});
    }
  }
  bench::emit(table, "sma_fig8_properties.csv");

  // Show the n=3 family itself, echoing the figure.
  for (int k = 1; k <= 5; k += 2) {
    const auto arr = layout::make_iterated(3, k);
    std::printf("After %d transformation(s):\n%s\n", k,
                layout::render_arrays(*arr).c_str());
  }
  return 0;
}
