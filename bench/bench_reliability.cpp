// Reliability consequence of the shifted arrangement (extension beyond
// the paper): MTTDL from enumerated fatal failure sets plus the
// *measured* rebuild time of each arrangement on the simulated array.
//
// The tension: the shifted mirror has n fatal second-failure candidates
// where the traditional mirror has 1, but rebuilds ~n x faster. With
// the measured (sub-n) speedup the two roughly cancel for the plain
// mirror; with the parity disk the shifted variant's shorter double-
// degraded window wins outright.
//
// The sweep itself lives in recon::reliability_sweep and fans the
// 12 (n, architecture) cases across hardware threads; the emitted
// table is bit-identical to a serial run.
#include <cstdio>

#include "common.hpp"
#include "recon/sweeps.hpp"

int main() {
  using namespace sma;
  const double kDataGb = 17.0;  // the paper's per-disk data volume

  auto table = recon::reliability_sweep({3, 5, 7}, kDataGb, {});
  if (!table.is_ok()) {
    std::fprintf(stderr, "%s\n", table.status().to_string().c_str());
    return 1;
  }
  bench::emit(table.value(), "sma_reliability.csv");
  return 0;
}
