// Reliability consequence of the shifted arrangement (extension beyond
// the paper): MTTDL from enumerated fatal failure sets plus the
// *measured* rebuild time of each arrangement on the simulated array.
//
// The tension: the shifted mirror has n fatal second-failure candidates
// where the traditional mirror has 1, but rebuilds ~n x faster. With
// the measured (sub-n) speedup the two roughly cancel for the plain
// mirror; with the parity disk the shifted variant's shorter double-
// degraded window wins outright.
#include <cmath>

#include "common.hpp"
#include "recon/executor.hpp"
#include "recon/reliability.hpp"
#include "util/units.hpp"

namespace {

using namespace sma;

/// Measured MTTR: rebuild one failed disk carrying `data_gb` of data.
double measured_mttr_hours(const layout::Architecture& arch, double data_gb) {
  array::DiskArray arr(bench::experiment_config(arch));
  arr.initialize();
  arr.fail_physical(0);
  auto report = recon::reconstruct(arr);
  if (!report.is_ok()) return 0;
  // Scale the per-byte rebuild time to the target capacity (rebuild
  // time is linear in data volume).
  const double per_byte =
      report.value().total_makespan_s /
      static_cast<double>(report.value().logical_bytes_recovered);
  return per_byte * data_gb * 1e9 / 3600.0;
}

}  // namespace

int main() {
  using namespace sma;
  const double kDataGb = 17.0;  // the paper's per-disk data volume

  Table table("MTTDL with measured rebuild times (17 GB/disk, MTTF 1e6 h)");
  table.set_header({"architecture", "n", "fatal 2nd", "fatal 3rd",
                    "MTTR (h)", "MTTDL (years)"});

  for (int n = 3; n <= 7; n += 2) {
    const layout::Architecture archs[] = {
        layout::Architecture::mirror(n, false),
        layout::Architecture::mirror(n, true),
        layout::Architecture::mirror_with_parity(n, false),
        layout::Architecture::mirror_with_parity(n, true),
    };
    for (const auto& arch : archs) {
      recon::MttdlParams params;
      params.mttr_hours = measured_mttr_hours(arch, kDataGb);
      if (params.mttr_hours <= 0) {
        std::fprintf(stderr, "MTTR measurement failed for %s\n",
                     arch.name().c_str());
        return 1;
      }
      const auto report = recon::estimate_mttdl(arch, params);
      table.add_row({arch.name(), Table::num(n),
                     Table::num(report.fatal.avg_fatal_second, 2),
                     Table::num(report.fatal.avg_fatal_third, 2),
                     Table::num(params.mttr_hours, 4),
                     std::isfinite(report.mttdl_hours)
                         ? Table::num(report.mttdl_years(), 0)
                         : "inf"});
    }
  }
  bench::emit(table, "sma_reliability.csv");
  return 0;
}
