// Verifies the paper's write-efficiency claims (Section VI-C) as an
// executable table:
//   small write  — 2 element writes (mirror) / 3 (mirror with parity),
//                  the theoretical optimum for tolerance 1 / 2;
//   large write  — one full data row lands in ONE parallel write access
//                  under both arrangements (Property 3).
#include "common.hpp"
#include "workload/write_executor.hpp"

int main() {
  using namespace sma;

  Table table("Write-access optimality (per request)");
  table.set_header({"architecture", "request", "elements written",
                    "parity reads", "write accesses"});

  struct Case {
    layout::Architecture arch;
    const char* label;
  };
  const Case cases[] = {
      {layout::Architecture::mirror(5, false), "mirror-traditional"},
      {layout::Architecture::mirror(5, true), "mirror-shifted"},
      {layout::Architecture::mirror_with_parity(5, false),
       "mirror-parity-traditional"},
      {layout::Architecture::mirror_with_parity(5, true),
       "mirror-parity-shifted"},
  };

  for (const auto& c : cases) {
    // Small write: one element.
    {
      array::DiskArray arr(bench::experiment_config(c.arch));
      arr.initialize();
      const auto report =
          workload::run_write_workload(arr, {workload::WriteRequest{0, 1}});
      table.add_row({c.label, "small (1 element)",
                     Table::num(report.bytes_written / 4'000'000),
                     Table::num(report.bytes_read / 4'000'000),
                     Table::num(report.write_accesses)});
    }
    // Large write: one full row of n elements.
    {
      array::DiskArray arr(bench::experiment_config(c.arch));
      arr.initialize();
      const auto report =
          workload::run_write_workload(arr, {workload::WriteRequest{0, 5}});
      table.add_row({c.label, "large (1 row)",
                     Table::num(report.bytes_written / 4'000'000),
                     Table::num(report.bytes_read / 4'000'000),
                     Table::num(report.write_accesses)});
    }
  }
  bench::emit(table, "sma_write_access.csv");
  return 0;
}
