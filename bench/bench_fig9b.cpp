// Regenerates Fig. 9(b): average read throughput during the
// reconstruction process of the traditional and shifted mirror method
// *with parity*, n = 3..7, averaging over all C(2n+1, 2) double-disk
// failure combinations (105 cases at n = 7), with contents verified
// after every rebuild.
#include <cstdio>

#include "common.hpp"
#include "recon/executor.hpp"
#include "recon/failure.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace sma;

  Table table("Fig. 9(b) — avg read throughput during reconstruction, "
              "mirror method with parity (MB/s)");
  table.set_header(
      {"n", "cases", "traditional", "shifted", "improvement factor"});

  for (int n = 3; n <= 7; ++n) {
    double mbps[2] = {0, 0};
    std::size_t case_count = 0;
    for (const bool shifted : {false, true}) {
      const auto arch = layout::Architecture::mirror_with_parity(n, shifted);
      const auto failures = recon::enumerate_double_failures(arch);
      case_count = failures.size();
      std::vector<double> results(failures.size());
      parallel_for(failures.size(), [&](std::size_t i) {
        array::DiskArray arr(bench::experiment_config(arch, /*stacks=*/1));
        arr.initialize();
        for (const int d : failures[i]) arr.fail_physical(d);
        auto report = recon::reconstruct(arr);
        if (!report.is_ok()) {
          std::fprintf(stderr, "rebuild failed: %s\n",
                       report.status().to_string().c_str());
          results[i] = 0;
          return;
        }
        // A parity-only double failure recovers no user data and reads
        // nothing under the availability metric; the paper's averages
        // are over reconstructions that read data, so throughput 0
        // cases (none here: every double failure of 2 array disks
        // reads) are kept as-is.
        results[i] = report.value().read_throughput_mbps();
      });
      RunningStat stat;
      for (const double r : results)
        if (r > 0) stat.add(r);
      mbps[shifted ? 1 : 0] = stat.mean();
    }
    table.add_row({Table::num(n),
                   Table::num(static_cast<std::uint64_t>(case_count)),
                   Table::num(mbps[0], 1), Table::num(mbps[1], 1),
                   Table::num(mbps[1] / mbps[0], 2)});
  }
  bench::emit(table, "sma_fig9b.csv");
  return 0;
}
