// Per-disk fault-injection profile.
//
// The paper's argument is about what happens to a mirror array while it
// is degraded, and it motivates mirroring with the rising rate of
// latent sector errors. A FaultProfile lets experiments inject exactly
// those hazards into a SimDisk: a scheduled fail-stop, latent
// unreadable sectors (discovered only when the slot is read), transient
// per-I/O errors (retryable), and a slow-disk service-time multiplier.
//
// The default-constructed profile is *inert*: every probability is
// zero, no fail-stop is scheduled, and the latency multiplier is
// exactly 1.0, so the error-aware I/O path reproduces the calibrated
// timing model bit for bit.
#pragma once

#include <cstdint>

namespace sma::disk {

struct FaultProfile {
  /// Fail-stop the disk at this simulated time; < 0 disables. The disk
  /// fails when the first I/O that would *start* at or after this time
  /// is submitted (a queue-aware interpretation: the failure manifests
  /// when the disk is next addressed).
  double fail_at_s = -1.0;

  /// Per-slot probability that the slot carries a latent unreadable
  /// sector. Latent slots are sampled once, deterministically from
  /// `seed` and the disk id, when the profile is installed. A read of a
  /// latent slot spends its full service time and then fails with
  /// kUnreadableSector; a successful write remaps (clears) the slot.
  double latent_error_rate = 0.0;

  /// Per-read / per-write probability of a transient error: the access
  /// spends its service time, fails with kIoError, and succeeds when
  /// retried (fresh Bernoulli draw per attempt).
  double transient_read_error_p = 0.0;
  double transient_write_error_p = 0.0;

  /// Transient errors only fire while the access *starts* inside
  /// [transient_from_s, transient_until_s). The defaults (0, negative =
  /// unbounded) keep every access inside the window, reproducing the
  /// windowless behavior draw for draw. Models a bounded interference
  /// episode — a vibration burst, a controller brown-out — so tests can
  /// place a retry inside or outside the episode deterministically.
  double transient_from_s = 0.0;
  double transient_until_s = -1.0;

  /// True when `t` falls inside the transient-error window.
  bool transient_active(double t) const {
    return t >= transient_from_s &&
           (transient_until_s < 0.0 || t < transient_until_s);
  }

  /// Whole-array power loss at this simulated time; < 0 disables. Only
  /// the array-wide ArrayConfig::fault profile arms a crash (a per-disk
  /// override cannot power off the array); the crash manifests on the
  /// first *write* op DiskArray::execute would start at or after this
  /// time. The in-flight victim write is truncated per the outcome
  /// probabilities below and every later op in the batch fails with
  /// kIoError until power_cycle().
  double crash_at_s = -1.0;

  /// Op-indexed crash point: the k-th write op (0-based, counted across
  /// every execute() call since construction / the last power_cycle())
  /// becomes the crash victim; < 0 disables. Exact op indexing makes
  /// crash-mid-rebuild and crash-mid-checkpoint scenarios reproducible
  /// independent of timing-model changes.
  std::int64_t crash_after_writes = -1;

  /// Victim-write outcome mix at the crash point, drawn once from
  /// `seed`: torn (a prefix of the new bytes reached media, the rest is
  /// garbage), misdirected (the bytes landed on an adjacent slot,
  /// clobbering it, while the target kept stale data), else lost (the
  /// write never reached media at all). Remainder = lost.
  double torn_write_p = 0.5;
  double misdirected_write_p = 0.25;

  /// True when a crash point is armed.
  bool crash_armed() const {
    return crash_at_s >= 0.0 || crash_after_writes >= 0;
  }

  /// Multiplies every service time (positioning + transfer). 1.0 means
  /// nominal speed; > 1 models a degraded ("limping") disk.
  double slow_factor = 1.0;

  /// Seed for latent-slot placement and transient draws; mixed with the
  /// disk id so disks sharing one profile fault independently.
  std::uint64_t seed = 0;

  /// Failure-domain id for correlated-failure experiments: disks that
  /// share an enclosure (power / cooling / backplane) fail together
  /// more often than independently. Consumed by the Monte-Carlo
  /// lifetime simulator (recon::simulate_mttdl); purely descriptive for
  /// the I/O path, so it does not participate in inert().
  int enclosure = -1;

  /// True when the profile cannot change any observable behavior. The
  /// window bounds and outcome probabilities only modulate hazards that
  /// are themselves disabled by default, so they do not participate.
  bool inert() const {
    return fail_at_s < 0.0 && latent_error_rate <= 0.0 &&
           transient_read_error_p <= 0.0 && transient_write_error_p <= 0.0 &&
           slow_factor == 1.0 && !crash_armed();
  }
};

}  // namespace sma::disk
