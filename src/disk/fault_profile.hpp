// Per-disk fault-injection profile.
//
// The paper's argument is about what happens to a mirror array while it
// is degraded, and it motivates mirroring with the rising rate of
// latent sector errors. A FaultProfile lets experiments inject exactly
// those hazards into a SimDisk: a scheduled fail-stop, latent
// unreadable sectors (discovered only when the slot is read), transient
// per-I/O errors (retryable), and a slow-disk service-time multiplier.
//
// The default-constructed profile is *inert*: every probability is
// zero, no fail-stop is scheduled, and the latency multiplier is
// exactly 1.0, so the error-aware I/O path reproduces the calibrated
// timing model bit for bit.
#pragma once

#include <cstdint>

namespace sma::disk {

struct FaultProfile {
  /// Fail-stop the disk at this simulated time; < 0 disables. The disk
  /// fails when the first I/O that would *start* at or after this time
  /// is submitted (a queue-aware interpretation: the failure manifests
  /// when the disk is next addressed).
  double fail_at_s = -1.0;

  /// Per-slot probability that the slot carries a latent unreadable
  /// sector. Latent slots are sampled once, deterministically from
  /// `seed` and the disk id, when the profile is installed. A read of a
  /// latent slot spends its full service time and then fails with
  /// kUnreadableSector; a successful write remaps (clears) the slot.
  double latent_error_rate = 0.0;

  /// Per-read / per-write probability of a transient error: the access
  /// spends its service time, fails with kIoError, and succeeds when
  /// retried (fresh Bernoulli draw per attempt).
  double transient_read_error_p = 0.0;
  double transient_write_error_p = 0.0;

  /// Multiplies every service time (positioning + transfer). 1.0 means
  /// nominal speed; > 1 models a degraded ("limping") disk.
  double slow_factor = 1.0;

  /// Seed for latent-slot placement and transient draws; mixed with the
  /// disk id so disks sharing one profile fault independently.
  std::uint64_t seed = 0;

  /// Failure-domain id for correlated-failure experiments: disks that
  /// share an enclosure (power / cooling / backplane) fail together
  /// more often than independently. Consumed by the Monte-Carlo
  /// lifetime simulator (recon::simulate_mttdl); purely descriptive for
  /// the I/O path, so it does not participate in inert().
  int enclosure = -1;

  /// True when the profile cannot change any observable behavior.
  bool inert() const {
    return fail_at_s < 0.0 && latent_error_rate <= 0.0 &&
           transient_read_error_p <= 0.0 && transient_write_error_p <= 0.0 &&
           slow_factor == 1.0;
  }
};

}  // namespace sma::disk
