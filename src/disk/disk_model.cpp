#include "disk/disk_model.hpp"

namespace sma::disk {

DiskSpec DiskSpec::savvio_10k3() {
  return DiskSpec{};  // defaults are the Savvio 10K.3 figures
}

DiskSpec DiskSpec::ssd_like() {
  DiskSpec s;
  s.read_mbps = 500.0;
  s.write_mbps = 450.0;
  s.avg_seek_s = 0.0;
  s.rpm = 0.0;
  s.command_overhead_s = 0.05e-3;
  return s;
}

}  // namespace sma::disk
