// Disk service-time model.
//
// Calibrated against the paper's testbed disks (Seagate Savvio 10K.3,
// ST9300603SS): 10 krpm, 54.8 MB/s peak read, 130 MB/s peak write. The
// model charges positioning time (seek + half-rotation + controller
// overhead) on every non-sequential access and pure streaming transfer
// for sequential continuation — which is exactly the asymmetry the
// paper's argument rests on: sequential reconstruction reads from one
// disk avoid seeks but serialize, while the shifted arrangement's reads
// are parallel but each pays positioning.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace sma::disk {

struct DiskSpec {
  /// Streaming transfer rates, spec-sheet MB/s (10^6 bytes/s).
  double read_mbps = 54.8;
  double write_mbps = 130.0;
  /// Average seek time in seconds.
  double avg_seek_s = 3.9e-3;
  /// Spindle speed; average rotational latency is half a revolution.
  double rpm = 10000.0;
  /// Fixed per-request controller/command overhead in seconds.
  double command_overhead_s = 0.5e-3;
  /// Scales the whole positioning cost; the seek-sensitivity ablation
  /// sweeps this from ~0 (SSD-like) upward.
  double seek_scale = 1.0;

  /// The paper's testbed disk.
  static DiskSpec savvio_10k3();
  /// Near-zero positioning cost (flash-like) for ablations.
  static DiskSpec ssd_like();

  double avg_rotational_latency_s() const {
    return rpm > 0 ? 30.0 / rpm : 0.0;
  }
  /// Total cost charged when an access is not sequential with the
  /// previous one.
  double positioning_s() const {
    return seek_scale * (avg_seek_s + avg_rotational_latency_s()) +
           command_overhead_s;
  }
  double read_transfer_s(std::uint64_t bytes) const {
    return static_cast<double>(bytes) / mbps_to_bytes_per_sec(read_mbps);
  }
  double write_transfer_s(std::uint64_t bytes) const {
    return static_cast<double>(bytes) / mbps_to_bytes_per_sec(write_mbps);
  }
};

}  // namespace sma::disk
