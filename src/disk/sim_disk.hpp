// SimDisk — one simulated disk: a timeline of element-granular I/O
// plus byte-accurate element contents.
//
// Timing and content are deliberately decoupled: timing uses the
// *logical* element size (the paper's 4 MB) while contents are stored
// at a smaller configurable size so whole-stack experiments stay cheap
// in RAM. Correctness checks (parity math, rebuild verification) run on
// the stored bytes; throughput math runs on the logical size.
//
// Addressing: elements live at integer slots; slot order is physical
// LBA order, so an access to slot s+1 immediately after slot s is
// sequential (no positioning charge).
//
// Fault model: an optional FaultProfile injects fail-stops, latent
// unreadable sectors, transient errors, and slow service. submit()
// therefore returns IoResult (completion time or an error Status) —
// including in release builds, where an assert would vanish.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "disk/disk_model.hpp"
#include "disk/fault_profile.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace sma::obs {
struct Observer;
}  // namespace sma::obs

namespace sma::disk {

enum class IoKind { kRead, kWrite };

struct DiskCounters {
  std::uint64_t reads = 0;   // attempts, including errored ones
  std::uint64_t writes = 0;  // attempts, including errored ones
  std::uint64_t sequential = 0;  // ops that paid no positioning
  std::uint64_t logical_bytes_read = 0;     // successful ops only
  std::uint64_t logical_bytes_written = 0;  // successful ops only
  std::uint64_t transient_errors = 0;
  std::uint64_t unreadable_errors = 0;
  double busy_s = 0.0;
};

/// One recorded operation (tracing enabled via enable_trace()).
struct TraceEntry {
  IoKind kind = IoKind::kRead;
  std::int64_t slot = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  bool sequential = false;
};

/// Completion time of a submitted access, or why it failed:
/// kOutOfRange (bad slot), kIoError (failed disk, scheduled fail-stop,
/// transient error), kUnreadableSector (latent media error).
using IoResult = Result<double>;

/// One access of a batched run (submit_run()).
struct RunAccess {
  IoKind kind = IoKind::kRead;
  std::int64_t slot = 0;
};

class SimDisk {
 public:
  SimDisk(int id, DiskSpec spec, std::int64_t slot_count,
          std::size_t content_bytes, std::uint64_t logical_element_bytes);

  int id() const { return id_; }
  const DiskSpec& spec() const { return spec_; }
  std::int64_t slot_count() const { return slot_count_; }
  std::size_t content_bytes() const { return content_bytes_; }
  std::uint64_t logical_element_bytes() const { return logical_element_bytes_; }

  // --- timing ---------------------------------------------------------
  /// Enqueue one element access behind all prior traffic, starting no
  /// earlier than `earliest_start`. Returns the completion time, or an
  /// error Status; errored attempts (transient, unreadable) still
  /// occupy the disk for their service time — busy_until() reflects it.
  IoResult submit(IoKind kind, std::int64_t slot, double earliest_start);

  /// submit() for fault-free contexts (inert profile, caller already
  /// guards failed disks): asserts success and unwraps the time.
  double submit_ok(IoKind kind, std::int64_t slot, double earliest_start) {
    const IoResult r = submit(kind, slot, earliest_start);
    assert(r.is_ok() && "submit_ok used on a fallible path");
    return r.is_ok() ? r.value() : busy_until_;
  }

  /// True when a run of accesses can be timed in one batched pass
  /// (submit_run()) with results bit-identical to repeated submit():
  /// no fault machinery able to fire mid-run and no per-op
  /// instrumentation attached. Queried per run — installing a profile
  /// or attaching an observer flips consumers back to the per-op path.
  bool can_batch() const {
    return !failed_ && !fail_stop_armed_ && !tracing_ &&
           observer_ == nullptr && latent_count_ == 0 &&
           fault_.transient_read_error_p <= 0.0 &&
           fault_.transient_write_error_p <= 0.0;
  }

  /// True while a scheduled fail-stop has yet to manifest. Consumers
  /// whose batched fast paths assume the failure set cannot change
  /// mid-run (the disk's death replans work on *other* disks) check
  /// this across the whole array, not just the disk being batched.
  bool fail_stop_armed() const { return fail_stop_armed_; }

  /// Enqueue a run of accesses back to back, each starting no earlier
  /// than `earliest_start` — exactly equivalent to calling submit() for
  /// each access in order (every access succeeds under the can_batch()
  /// preconditions), but with the range checks, fault branches, and
  /// seek/transfer constants hoisted out of the loop. Returns the
  /// completion time of the last access. Precondition: can_batch().
  double submit_run(std::span<const RunAccess> run, double earliest_start);

  /// What submit_run_while committed: how many leading accesses of the
  /// run entered service and when the last of them completes.
  struct RunWhile {
    std::size_t submitted = 0;
    double end = 0.0;
  };
  /// Conditional-prefix variant of submit_run() for event-batched queue
  /// drains: submits accesses in order, but an access only enters
  /// service while the previous completion lands strictly before
  /// `stop_before` — the simulated moment something else (e.g. the next
  /// user arrival) could preempt the drain. With `force_first` the
  /// first access is submitted unconditionally (its dispatch is already
  /// committed in the one-event-per-op world; a future arrival cannot
  /// preempt an access that has entered service) — continuation chunks
  /// of a longer drain pass false. Timing, head movement, and counters
  /// are bit-identical to per-access submit() calls for the submitted
  /// prefix. Precondition: can_batch().
  RunWhile submit_run_while(std::span<const RunAccess> run,
                            double earliest_start, double stop_before,
                            bool force_first);

  /// Service time the next access to `slot` would incur (no state
  /// change); used by planners that want cost estimates.
  double peek_service_s(IoKind kind, std::int64_t slot) const;

  double busy_until() const { return busy_until_; }
  const DiskCounters& counters() const { return counters_; }

  /// Forget head position and timeline (new experiment), keep contents.
  void reset_timeline();
  /// Zero counters only.
  void reset_counters();

  /// Attach an observability sink: every submitted access emits a
  /// service_start/service_end event pair and a fail-stop that
  /// manifests in submit() emits a failure event. Null (the default)
  /// disables the hook — one branch per access, no other cost.
  void set_observer(obs::Observer* observer) { observer_ = observer; }
  obs::Observer* observer() const { return observer_; }

  /// Start recording every submitted op (off by default; recording a
  /// long experiment costs memory proportional to its op count).
  void enable_trace(bool on = true) { tracing_ = on; }
  bool tracing() const { return tracing_; }
  const std::vector<TraceEntry>& trace() const { return trace_; }
  void clear_trace() { trace_.clear(); }

  // --- content ----------------------------------------------------------
  std::span<std::uint8_t> content(std::int64_t slot);
  std::span<const std::uint8_t> content(std::int64_t slot) const;

  // --- fault injection --------------------------------------------------
  /// Install a fault profile: samples the latent-slot set (from
  /// profile.seed mixed with the disk id) and arms the scheduled
  /// fail-stop. Replaces any prior profile.
  void set_fault_profile(const FaultProfile& profile);
  const FaultProfile& fault_profile() const { return fault_; }

  /// True when `slot` currently carries a latent unreadable sector.
  bool slot_unreadable(std::int64_t slot) const {
    return latent_count_ > 0 && latent_[static_cast<std::size_t>(slot)];
  }
  /// Remap (clear) a latent sector — what a successful write does; also
  /// used by scrub when it rewrites an unreadable copy in place.
  void clear_latent(std::int64_t slot);
  std::int64_t latent_slot_count() const { return latent_count_; }

  // --- failure ----------------------------------------------------------
  bool failed() const { return failed_; }
  /// Marks the disk failed and scrambles its contents (a failed disk's
  /// data must never be readable by accident).
  void fail();
  /// Install recovered bytes for one slot of a failed disk. heal()
  /// requires every slot restored first — a healed disk must never
  /// serve the post-fail() scramble pattern.
  void restore_content(std::int64_t slot, std::span<const std::uint8_t> bytes);
  /// True once every slot has been restored since the last fail().
  bool fully_restored() const { return restored_count_ == slot_count_; }
  /// True when `slot` has been restored since the last fail(); the
  /// replacement disk serves restored slots even before heal().
  bool slot_restored(std::int64_t slot) const {
    return restored_count_ > 0 && restored_[static_cast<std::size_t>(slot)];
  }
  /// Un-restore one slot of a failed disk: a crash garbled a rebuild
  /// write that restore_content() had already accounted, so the slot
  /// must be rebuilt again before heal() can succeed.
  void clear_restored(std::int64_t slot);
  /// Returns the (fully restored) disk to service, modeling a
  /// replacement: the latent-slot set is discarded and the scheduled
  /// fail-stop is disarmed. kFailedPrecondition when the disk never
  /// failed or is only partially restored — a misuse the repair
  /// orchestrator treats as a recoverable bug, not a process abort.
  Status heal();

 private:
  int id_;
  DiskSpec spec_;
  std::int64_t slot_count_;
  std::size_t content_bytes_;
  std::uint64_t logical_element_bytes_;

  double busy_until_ = 0.0;
  std::int64_t head_slot_ = -2;  // -2: unknown position (first op seeks)
  bool failed_ = false;
  bool tracing_ = false;
  obs::Observer* observer_ = nullptr;
  DiskCounters counters_;
  std::vector<TraceEntry> trace_;
  std::vector<std::uint8_t> store_;

  // Fault state. All vectors stay empty (zero cost) until a non-inert
  // profile is installed / the disk first fails.
  FaultProfile fault_;
  Rng fault_rng_{0};
  bool fail_stop_armed_ = false;
  std::vector<bool> latent_;
  std::int64_t latent_count_ = 0;
  std::vector<bool> restored_;
  std::int64_t restored_count_ = 0;
};

}  // namespace sma::disk
