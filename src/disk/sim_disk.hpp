// SimDisk — one simulated disk: a timeline of element-granular I/O
// plus byte-accurate element contents.
//
// Timing and content are deliberately decoupled: timing uses the
// *logical* element size (the paper's 4 MB) while contents are stored
// at a smaller configurable size so whole-stack experiments stay cheap
// in RAM. Correctness checks (parity math, rebuild verification) run on
// the stored bytes; throughput math runs on the logical size.
//
// Addressing: elements live at integer slots; slot order is physical
// LBA order, so an access to slot s+1 immediately after slot s is
// sequential (no positioning charge).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "disk/disk_model.hpp"

namespace sma::disk {

enum class IoKind { kRead, kWrite };

struct DiskCounters {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t sequential = 0;  // ops that paid no positioning
  std::uint64_t logical_bytes_read = 0;
  std::uint64_t logical_bytes_written = 0;
  double busy_s = 0.0;
};

/// One recorded operation (tracing enabled via enable_trace()).
struct TraceEntry {
  IoKind kind = IoKind::kRead;
  std::int64_t slot = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  bool sequential = false;
};

class SimDisk {
 public:
  SimDisk(int id, DiskSpec spec, std::int64_t slot_count,
          std::size_t content_bytes, std::uint64_t logical_element_bytes);

  int id() const { return id_; }
  const DiskSpec& spec() const { return spec_; }
  std::int64_t slot_count() const { return slot_count_; }
  std::size_t content_bytes() const { return content_bytes_; }
  std::uint64_t logical_element_bytes() const { return logical_element_bytes_; }

  // --- timing ---------------------------------------------------------
  /// Enqueue one element access behind all prior traffic, starting no
  /// earlier than `earliest_start`. Returns the completion time.
  /// Fails loudly (assert) when the disk is failed; planners must not
  /// address failed disks.
  double submit(IoKind kind, std::int64_t slot, double earliest_start);

  /// Service time the next access to `slot` would incur (no state
  /// change); used by planners that want cost estimates.
  double peek_service_s(IoKind kind, std::int64_t slot) const;

  double busy_until() const { return busy_until_; }
  const DiskCounters& counters() const { return counters_; }

  /// Forget head position and timeline (new experiment), keep contents.
  void reset_timeline();
  /// Zero counters only.
  void reset_counters();

  /// Start recording every submitted op (off by default; recording a
  /// long experiment costs memory proportional to its op count).
  void enable_trace(bool on = true) { tracing_ = on; }
  bool tracing() const { return tracing_; }
  const std::vector<TraceEntry>& trace() const { return trace_; }
  void clear_trace() { trace_.clear(); }

  // --- content ----------------------------------------------------------
  std::span<std::uint8_t> content(std::int64_t slot);
  std::span<const std::uint8_t> content(std::int64_t slot) const;

  // --- failure ----------------------------------------------------------
  bool failed() const { return failed_; }
  /// Marks the disk failed and scrambles its contents (a failed disk's
  /// data must never be readable by accident).
  void fail();
  /// Returns the disk to service (after a rebuild wrote fresh contents).
  void heal() { failed_ = false; }

 private:
  int id_;
  DiskSpec spec_;
  std::int64_t slot_count_;
  std::size_t content_bytes_;
  std::uint64_t logical_element_bytes_;

  double busy_until_ = 0.0;
  std::int64_t head_slot_ = -2;  // -2: unknown position (first op seeks)
  bool failed_ = false;
  bool tracing_ = false;
  DiskCounters counters_;
  std::vector<TraceEntry> trace_;
  std::vector<std::uint8_t> store_;
};

}  // namespace sma::disk
