#include "disk/sim_disk.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <string>

#include "obs/observer.hpp"

namespace sma::disk {

SimDisk::SimDisk(int id, DiskSpec spec, std::int64_t slot_count,
                 std::size_t content_bytes,
                 std::uint64_t logical_element_bytes)
    : id_(id),
      spec_(spec),
      slot_count_(slot_count),
      content_bytes_(content_bytes),
      logical_element_bytes_(logical_element_bytes),
      store_(static_cast<std::size_t>(slot_count) * content_bytes) {
  assert(slot_count > 0);
  assert(content_bytes > 0);
  assert(logical_element_bytes > 0);
}

double SimDisk::peek_service_s(IoKind kind, std::int64_t slot) const {
  const bool sequential = slot == head_slot_ + 1;
  const double position = sequential ? 0.0 : spec_.positioning_s();
  const double transfer = kind == IoKind::kRead
                              ? spec_.read_transfer_s(logical_element_bytes_)
                              : spec_.write_transfer_s(logical_element_bytes_);
  // slow_factor is exactly 1.0 for the inert profile, so the default
  // timing model is reproduced bit for bit.
  return (position + transfer) * fault_.slow_factor;
}

IoResult SimDisk::submit(IoKind kind, std::int64_t slot,
                         double earliest_start) {
  if (slot < 0 || slot >= slot_count_)
    return out_of_range("slot " + std::to_string(slot) +
                        " out of range on disk " + std::to_string(id_));
  // A failed disk's replacement serves slots already rebuilt onto it:
  // mid-rebuild, restored slots are live data (reads for a resumed
  // rebuild, the replacement writes themselves). Everything else on a
  // failed disk is an error, as before.
  if (failed_ && !slot_restored(slot))
    return io_error("I/O submitted to failed disk " + std::to_string(id_));
  const double start = std::max(earliest_start, busy_until_);
  if (fail_stop_armed_ && !failed_ && start >= fault_.fail_at_s) {
    // The scheduled fail-stop manifests on the first access that would
    // start at or after it: the disk dies instead of serving.
    fail_stop_armed_ = false;
    fail();
    if (observer_ != nullptr) {
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kFailure;
      ev.t_s = fault_.fail_at_s;
      ev.disk = id_;
      observer_->emit(ev);
    }
    return io_error("disk " + std::to_string(id_) +
                    " fail-stopped at scheduled t=" +
                    std::to_string(fault_.fail_at_s));
  }
  const double service = peek_service_s(kind, slot);
  const bool sequential = slot == head_slot_ + 1;
  busy_until_ = start + service;
  head_slot_ = slot;

  if (kind == IoKind::kRead)
    ++counters_.reads;
  else
    ++counters_.writes;
  if (sequential) ++counters_.sequential;
  counters_.busy_s += service;
  if (tracing_) trace_.push_back({kind, slot, start, busy_until_, sequential});
  if (observer_ != nullptr) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kServiceStart;
    ev.t_s = start;
    ev.dur_s = service;
    ev.disk = id_;
    ev.slot = slot;
    ev.write = kind == IoKind::kWrite;
    observer_->emit(ev);
    ev.kind = obs::EventKind::kServiceEnd;
    ev.t_s = busy_until_;
    ev.dur_s = 0.0;
    observer_->emit(ev);
  }

  // Error checks charge the full service time (above) first: the disk
  // was occupied attempting the access either way.
  if (kind == IoKind::kRead) {
    if (slot_unreadable(slot)) {
      ++counters_.unreadable_errors;
      return unreadable_sector("latent sector at slot " +
                               std::to_string(slot) + " on disk " +
                               std::to_string(id_));
    }
    if (fault_.transient_read_error_p > 0.0 && fault_.transient_active(start) &&
        fault_rng_.next_bool(fault_.transient_read_error_p)) {
      ++counters_.transient_errors;
      return io_error("transient read error on disk " + std::to_string(id_));
    }
    counters_.logical_bytes_read += logical_element_bytes_;
  } else {
    if (fault_.transient_write_error_p > 0.0 &&
        fault_.transient_active(start) &&
        fault_rng_.next_bool(fault_.transient_write_error_p)) {
      ++counters_.transient_errors;
      return io_error("transient write error on disk " + std::to_string(id_));
    }
    counters_.logical_bytes_written += logical_element_bytes_;
    clear_latent(slot);  // a successful write remaps the sector
  }
  return busy_until_;
}

double SimDisk::submit_run(std::span<const RunAccess> run,
                           double earliest_start) {
  assert(can_batch() && "submit_run requires the batchable fast path");
  // Hoist the four possible service times: {read, write} x {positioned,
  // sequential}. Each entry is computed with the same expression
  // submit()'s peek_service_s uses — (position + transfer) *
  // slow_factor — so the per-access arithmetic below reproduces the
  // per-op path bit for bit (position is 0.0 for sequential accesses,
  // and 0.0 + x == x exactly).
  const double slow = fault_.slow_factor;
  const double pos = spec_.positioning_s();
  const double read_tr = spec_.read_transfer_s(logical_element_bytes_);
  const double write_tr = spec_.write_transfer_s(logical_element_bytes_);
  const double svc[2][2] = {
      {(pos + read_tr) * slow, read_tr * slow},
      {(pos + write_tr) * slow, write_tr * slow},
  };
  double busy = busy_until_;
  // busy_s must accumulate one service at a time in access order:
  // floating-point addition is not associative, and the drift gate
  // holds this path to bit-identical counters.
  double busy_s = counters_.busy_s;
  std::int64_t head = head_slot_;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t sequential_ops = 0;
  for (const RunAccess& a : run) {
    assert(a.slot >= 0 && a.slot < slot_count_);
    const bool sequential = a.slot == head + 1;
    const bool is_write = a.kind == IoKind::kWrite;
    const double service = svc[is_write][sequential];
    const double start = busy < earliest_start ? earliest_start : busy;
    busy = start + service;
    busy_s += service;
    head = a.slot;
    reads += !is_write;
    writes += is_write;
    sequential_ops += sequential;
  }
  busy_until_ = busy;
  head_slot_ = head;
  counters_.busy_s = busy_s;
  counters_.reads += reads;
  counters_.writes += writes;
  counters_.sequential += sequential_ops;
  counters_.logical_bytes_read += reads * logical_element_bytes_;
  counters_.logical_bytes_written += writes * logical_element_bytes_;
  return busy;
}

SimDisk::RunWhile SimDisk::submit_run_while(std::span<const RunAccess> run,
                                            double earliest_start,
                                            double stop_before,
                                            bool force_first) {
  assert(can_batch() && "submit_run_while requires the batchable fast path");
  // Same hoisted service table as submit_run() — see the bit-identity
  // note there.
  const double slow = fault_.slow_factor;
  const double pos = spec_.positioning_s();
  const double read_tr = spec_.read_transfer_s(logical_element_bytes_);
  const double write_tr = spec_.write_transfer_s(logical_element_bytes_);
  const double svc[2][2] = {
      {(pos + read_tr) * slow, read_tr * slow},
      {(pos + write_tr) * slow, write_tr * slow},
  };
  double busy = busy_until_;
  double busy_s = counters_.busy_s;
  std::int64_t head = head_slot_;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t sequential_ops = 0;
  std::size_t n = 0;
  for (const RunAccess& a : run) {
    // `busy` is the previous access's completion once n > 0 (and the
    // standing timeline before that): the next access enters service
    // only if the drain is still unpreempted at that moment.
    if (!(force_first && n == 0) && busy >= stop_before) break;
    assert(a.slot >= 0 && a.slot < slot_count_);
    const bool sequential = a.slot == head + 1;
    const bool is_write = a.kind == IoKind::kWrite;
    const double service = svc[is_write][sequential];
    const double start = busy < earliest_start ? earliest_start : busy;
    busy = start + service;
    busy_s += service;
    head = a.slot;
    reads += !is_write;
    writes += is_write;
    sequential_ops += sequential;
    ++n;
  }
  if (n == 0) return {0, busy_until_};
  busy_until_ = busy;
  head_slot_ = head;
  counters_.busy_s = busy_s;
  counters_.reads += reads;
  counters_.writes += writes;
  counters_.sequential += sequential_ops;
  counters_.logical_bytes_read += reads * logical_element_bytes_;
  counters_.logical_bytes_written += writes * logical_element_bytes_;
  return {n, busy};
}

void SimDisk::reset_timeline() {
  busy_until_ = 0.0;
  head_slot_ = -2;
}

void SimDisk::reset_counters() { counters_ = DiskCounters{}; }

std::span<std::uint8_t> SimDisk::content(std::int64_t slot) {
  assert(slot >= 0 && slot < slot_count_);
  return {store_.data() + static_cast<std::size_t>(slot) * content_bytes_,
          content_bytes_};
}

std::span<const std::uint8_t> SimDisk::content(std::int64_t slot) const {
  assert(slot >= 0 && slot < slot_count_);
  return {store_.data() + static_cast<std::size_t>(slot) * content_bytes_,
          content_bytes_};
}

void SimDisk::set_fault_profile(const FaultProfile& profile) {
  fault_ = profile;
  fail_stop_armed_ = profile.fail_at_s >= 0.0;
  // Independent stream per (seed, disk): one SplitMix64 mix, same idiom
  // as the per-element content seeding.
  std::uint64_t s = profile.seed ^
                    (0x9e3779b97f4a7c15ULL *
                     (static_cast<std::uint64_t>(static_cast<unsigned>(id_)) +
                      1));
  fault_rng_ = Rng(splitmix64(s));
  latent_.assign(static_cast<std::size_t>(slot_count_), false);
  latent_count_ = 0;
  if (profile.latent_error_rate > 0.0) {
    for (std::int64_t i = 0; i < slot_count_; ++i) {
      if (fault_rng_.next_bool(profile.latent_error_rate)) {
        latent_[static_cast<std::size_t>(i)] = true;
        ++latent_count_;
      }
    }
  }
}

void SimDisk::clear_latent(std::int64_t slot) {
  assert(slot >= 0 && slot < slot_count_);
  if (latent_count_ > 0 && latent_[static_cast<std::size_t>(slot)]) {
    latent_[static_cast<std::size_t>(slot)] = false;
    --latent_count_;
  }
}

void SimDisk::fail() {
  failed_ = true;
  // Scramble rather than zero: zeroed contents can masquerade as valid
  // parity, hiding reconstruction bugs.
  std::memset(store_.data(), 0xDB, store_.size());
  restored_.assign(static_cast<std::size_t>(slot_count_), false);
  restored_count_ = 0;
}

void SimDisk::clear_restored(std::int64_t slot) {
  assert(slot >= 0 && slot < slot_count_);
  if (restored_count_ > 0 && restored_[static_cast<std::size_t>(slot)]) {
    restored_[static_cast<std::size_t>(slot)] = false;
    --restored_count_;
  }
}

void SimDisk::restore_content(std::int64_t slot,
                              std::span<const std::uint8_t> bytes) {
  assert(failed_ && "restore_content targets a failed disk");
  assert(bytes.size() == content_bytes_);
  auto dst = content(slot);
  std::copy(bytes.begin(), bytes.end(), dst.begin());
  // The restored slot lives on replacement media: any latent sector the
  // old platters carried there is gone (heal() would discard the whole
  // set anyway; clearing per-slot keeps mid-rebuild service honest).
  clear_latent(slot);
  if (!restored_[static_cast<std::size_t>(slot)]) {
    restored_[static_cast<std::size_t>(slot)] = true;
    ++restored_count_;
  }
}

Status SimDisk::heal() {
  if (!failed_)
    return failed_precondition("heal() on disk " + std::to_string(id_) +
                               " that is not failed");
  if (!fully_restored())
    return failed_precondition(
        "heal() on disk " + std::to_string(id_) +
        " without full content restoration (" +
        std::to_string(restored_count_) + "/" + std::to_string(slot_count_) +
        " slots restored) would serve the fail() scramble pattern");
  failed_ = false;
  // Replacement hardware: the old platters' latent sectors are gone and
  // the consumed fail-stop does not re-arm.
  if (latent_count_ > 0) {
    latent_.assign(static_cast<std::size_t>(slot_count_), false);
    latent_count_ = 0;
  }
  fail_stop_armed_ = false;
  return Status::ok();
}

}  // namespace sma::disk
