#include "disk/sim_disk.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace sma::disk {

SimDisk::SimDisk(int id, DiskSpec spec, std::int64_t slot_count,
                 std::size_t content_bytes,
                 std::uint64_t logical_element_bytes)
    : id_(id),
      spec_(spec),
      slot_count_(slot_count),
      content_bytes_(content_bytes),
      logical_element_bytes_(logical_element_bytes),
      store_(static_cast<std::size_t>(slot_count) * content_bytes) {
  assert(slot_count > 0);
  assert(content_bytes > 0);
  assert(logical_element_bytes > 0);
}

double SimDisk::peek_service_s(IoKind kind, std::int64_t slot) const {
  const bool sequential = slot == head_slot_ + 1;
  const double position = sequential ? 0.0 : spec_.positioning_s();
  const double transfer = kind == IoKind::kRead
                              ? spec_.read_transfer_s(logical_element_bytes_)
                              : spec_.write_transfer_s(logical_element_bytes_);
  return position + transfer;
}

double SimDisk::submit(IoKind kind, std::int64_t slot, double earliest_start) {
  assert(!failed_ && "I/O submitted to a failed disk");
  assert(slot >= 0 && slot < slot_count_);
  const double service = peek_service_s(kind, slot);
  const bool sequential = slot == head_slot_ + 1;
  const double start = std::max(earliest_start, busy_until_);
  busy_until_ = start + service;
  head_slot_ = slot;

  if (kind == IoKind::kRead) {
    ++counters_.reads;
    counters_.logical_bytes_read += logical_element_bytes_;
  } else {
    ++counters_.writes;
    counters_.logical_bytes_written += logical_element_bytes_;
  }
  if (sequential) ++counters_.sequential;
  counters_.busy_s += service;
  if (tracing_) trace_.push_back({kind, slot, start, busy_until_, sequential});
  return busy_until_;
}

void SimDisk::reset_timeline() {
  busy_until_ = 0.0;
  head_slot_ = -2;
}

void SimDisk::reset_counters() { counters_ = DiskCounters{}; }

std::span<std::uint8_t> SimDisk::content(std::int64_t slot) {
  assert(slot >= 0 && slot < slot_count_);
  return {store_.data() + static_cast<std::size_t>(slot) * content_bytes_,
          content_bytes_};
}

std::span<const std::uint8_t> SimDisk::content(std::int64_t slot) const {
  assert(slot >= 0 && slot < slot_count_);
  return {store_.data() + static_cast<std::size_t>(slot) * content_bytes_,
          content_bytes_};
}

void SimDisk::fail() {
  failed_ = true;
  // Scramble rather than zero: zeroed contents can masquerade as valid
  // parity, hiding reconstruction bugs.
  std::memset(store_.data(), 0xDB, store_.size());
}

}  // namespace sma::disk
