// DiskArray — a populated, addressable simulated disk array instance of
// one Architecture: contents + timing + stack rotation.
//
// Logical vs physical disks: the reconstruction math is defined over
// *logical* disks within a stripe; in practice the logical-to-physical
// assignment rotates stripe by stripe ("stack", paper Section II-A) for
// load balance. DiskArray stores data physically rotated (when enabled)
// and translates addresses, so experiments can fail *physical* disks —
// as the paper's testbed does — and still reason per-stripe logically.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <tuple>
#include <vector>

#include "disk/fault_profile.hpp"
#include "disk/sim_disk.hpp"
#include "ec/codec.hpp"
#include "integrity/checksum.hpp"
#include "integrity/dirty_region_log.hpp"
#include "obs/observer.hpp"
#include "layout/architecture.hpp"
#include "layout/stack.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace sma::array {

struct ArrayConfig {
  layout::Architecture arch = layout::Architecture::mirror(3, true);
  /// Stripe count; a full stack needs arch.total_disks() stripes.
  int stripes = 1;
  /// Rotate logical->physical per stripe (stack rotation).
  bool rotate = true;
  disk::DiskSpec spec = disk::DiskSpec::savvio_10k3();
  /// Per-physical-disk spec overrides (heterogeneous arrays /
  /// straggler experiments); disks absent from the map use `spec`.
  std::map<int, disk::DiskSpec> spec_overrides;
  /// Stored bytes per element (content correctness checks).
  std::size_t content_bytes = 4096;
  /// Timed bytes per element (the paper uses 4 MB).
  std::uint64_t logical_element_bytes = 4ull * 1024 * 1024;
  std::uint64_t seed = 1;
  /// Fault-injection profile applied to every disk. The default is
  /// inert: no observable behavior change anywhere in the stack.
  disk::FaultProfile fault;
  /// Per-physical-disk profile overrides (targeted experiments).
  std::map<int, disk::FaultProfile> fault_overrides;
  /// Bounded-retry policy of the batch executor: how many times an op
  /// that hit a *transient* error is re-submitted (each retry pays full
  /// re-service time). Hard errors are never retried.
  int io_max_retries = 2;
  /// Base delay of the capped-exponential retry backoff: attempt k's
  /// re-submission waits min(base * 2^(k-1), retry_backoff_cap_s) after
  /// the failed attempt drains, optionally shrunk by a deterministic
  /// seeded jitter (below). The default 0 is inert: retries re-submit
  /// immediately, reproducing the original timing bit for bit.
  double retry_backoff_base_s = 0.0;
  /// Deprecated alias for retry_backoff_base_s, kept one release: when
  /// the base is 0 this field supplies it. The first two attempts of
  /// the exponential schedule (1x, 2x — the whole default
  /// io_max_retries budget) coincide with the historical linear
  /// schedule, so existing configs keep their timing.
  double retry_backoff_s = 0.0;
  /// Ceiling on a single retry delay (0 = uncapped).
  double retry_backoff_cap_s = 0.0;
  /// Jitter fraction in [0, 1): each delay is scaled by a factor drawn
  /// deterministically in [1 - jitter, 1] from a SplitMix64 stream
  /// seeded by ArrayConfig::seed, so equal seeds replay equal delays.
  double retry_backoff_jitter = 0.0;
  /// Hot-spare disks appended after the architecture's disks (physical
  /// ids total_disks()..total_disks()+spare_disks-1). They hold no
  /// addressable elements; the repair orchestrator redirects
  /// replacement writes onto them (repair::SparePolicy::kDedicated).
  /// The default 0 is inert.
  int spare_disks = 0;
  /// Dirty-region log granularity: stripes per region. execute() logs
  /// write intent per region before issuing writes, so post-crash
  /// resync re-reads only dirty regions (integrity::resync). The
  /// default 0 disables the log entirely (inert).
  int drl_region_stripes = 0;
  /// Keep per-element checksums out-of-band (integrity::ChecksumStore):
  /// initialize() and restore_element() maintain them; content writers
  /// call update_element_checksum(). Enables silent-corruption
  /// detection in the verifying scrub. The default false is inert.
  bool checksums = false;
};

/// One element access for the batch executor.
struct Op {
  int logical_disk = 0;  // architecture-global logical disk index
  int stripe = 0;
  int row = 0;
  disk::IoKind kind = disk::IoKind::kRead;
  /// When >= 0, the op is served by this physical disk instead of the
  /// stripe's logical->physical mapping: spare-pool placements redirect
  /// replacement writes (and resumed-rebuild reads) to the disk that
  /// actually holds the rebuilt copy. -1 (default) = no redirection.
  int redirect_phys = -1;
};

/// Timing outcome of a parallel batch.
struct BatchStats {
  double start_s = 0.0;
  double end_s = 0.0;
  /// Max per-disk op count in the batch — the paper's "number of read
  /// (write) accesses" under the parallel I/O model.
  int max_ops_per_disk = 0;
  std::uint64_t logical_bytes_read = 0;
  std::uint64_t logical_bytes_written = 0;
  /// Re-submissions after transient errors (bounded by io_max_retries).
  std::uint64_t retried_ops = 0;
  /// Ops that never completed: unreadable sector, dead disk, or retries
  /// exhausted. Their attempts still occupied the disks.
  std::uint64_t failed_ops = 0;
  /// Subset of failed_ops that hit a latent unreadable sector.
  std::uint64_t unreadable_ops = 0;
  /// Deepest retry chain any single op in the batch needed (0 = every
  /// op succeeded or failed hard on its first attempt).
  int max_retry_depth = 0;
  /// Writes whose bytes never (fully) reached media: the crash victim
  /// plus every write submitted while the array was powered off.
  std::uint64_t lost_writes = 0;
  /// The armed crash point fired during (or before) this batch.
  bool crashed = false;

  double elapsed_s() const { return end_s - start_s; }
};

/// Logical element coordinates excluded from a consistency check (e.g.
/// elements that lost every redundancy path during a faulty rebuild).
using ElementSet = std::set<std::tuple<int, int, int>>;  // (logical, stripe, row)

class DiskArray {
 public:
  explicit DiskArray(ArrayConfig cfg);

  const layout::Architecture& arch() const { return cfg_.arch; }
  const ArrayConfig& config() const { return cfg_; }
  int stripes() const { return cfg_.stripes; }
  int total_disks() const { return cfg_.arch.total_disks(); }
  /// Architecture disks plus configured hot spares; physical(d) accepts
  /// ids in [0, physical_count()).
  int physical_count() const { return total_disks() + cfg_.spare_disks; }

  // --- address translation ---------------------------------------------
  int physical_disk(int logical, int stripe) const;
  int logical_disk(int physical, int stripe) const;
  std::int64_t slot(int stripe, int row) const;

  disk::SimDisk& physical(int disk);
  const disk::SimDisk& physical(int disk) const;

  /// Content of the element at (logical disk, stripe, row).
  std::span<std::uint8_t> content(int logical, int stripe, int row);
  std::span<const std::uint8_t> content(int logical, int stripe, int row) const;

  // --- contents -----------------------------------------------------------
  /// Populate every element per the architecture: deterministic data
  /// patterns, arranged mirror copies, parity columns.
  void initialize();

  /// Expected bytes of the *data* element (data disk i, stripe, row).
  void expected_data(int data_disk, int stripe, int row,
                     std::span<std::uint8_t> out) const;

  /// Check every element on every non-failed disk against its
  /// definition. kCorruption with a precise location on mismatch.
  Status verify_all() const;

  /// Internal-consistency check against *current* contents: every
  /// mirror cell equals its data source and every parity element is the
  /// XOR of its data row (re-encode comparison for RAID kinds). Unlike
  /// verify_all() this stays valid after user writes. With `skip`,
  /// comparisons touching a listed element are omitted (elements that
  /// had no surviving redundancy path during a faulty rebuild).
  Status verify_consistency(const ElementSet* skip = nullptr) const;
  /// Check a single logical disk's elements across all stripes.
  Status verify_logical_disk(int logical) const;

  // --- failures ------------------------------------------------------------
  void fail_physical(int disk);
  std::vector<int> failed_physical() const;

  // --- fault layer ---------------------------------------------------------
  /// True when any disk carries a non-inert fault profile; consumers
  /// switch to the error-aware paths only then, keeping the fault-free
  /// timing model bit-identical.
  bool faults_active() const;
  /// Element (logical, stripe, row) cannot be read: its physical disk
  /// failed or the slot carries a latent unreadable sector.
  bool element_unreadable(int logical, int stripe, int row) const;
  /// The element's slot carries a latent unreadable sector (disk live).
  bool element_latent(int logical, int stripe, int row) const;
  /// Remap the element's latent sector after rewriting it in place.
  void clear_element_latent(int logical, int stripe, int row);
  /// Install recovered bytes for an element of a failed disk (tracked;
  /// SimDisk::heal() requires every slot restored). Maintains the
  /// element's checksum when checksums are enabled.
  void restore_element(int logical, int stripe, int row,
                       std::span<const std::uint8_t> bytes);

  // --- crash consistency ---------------------------------------------------
  /// The armed crash point (ArrayConfig::fault.crash_at_s /
  /// crash_after_writes) fired: the array is powered off. Every
  /// subsequent op fails with kIoError and every subsequent write's
  /// bytes are lost until power_cycle().
  bool crashed() const { return crashed_; }
  /// Simulated time at which the crash fired (meaningful when
  /// crashed() or after power_cycle()).
  double crash_time_s() const { return crash_time_; }
  /// Power the array back on after a crash: timelines reset (cold
  /// start), the crash point stays consumed, contents stay exactly as
  /// the crash left them — divergent copies and all. The caller is
  /// expected to resync before trusting redundancy again.
  /// kFailedPrecondition when the array is not crashed.
  Status power_cycle();

  /// Dirty-region log (enabled via ArrayConfig::drl_region_stripes;
  /// disabled object otherwise). execute() marks write intent; resync
  /// clears regions; workloads may clear_all() at quiesce points.
  integrity::DirtyRegionLog& dirty_log() { return drl_; }
  const integrity::DirtyRegionLog& dirty_log() const { return drl_; }

  // --- checksums -----------------------------------------------------------
  bool checksums_enabled() const { return sums_.enabled(); }
  const integrity::ChecksumStore& checksums() const { return sums_; }
  /// Record the checksum of the element's *current* content (content
  /// writers call this right after mutating the bytes).
  void update_element_checksum(int logical, int stripe, int row);
  /// Stored checksum of the element's media location.
  std::uint64_t element_checksum_stored(int logical, int stripe, int row) const;
  /// True when the stored checksum matches the current content.
  bool element_checksum_ok(int logical, int stripe, int row) const;
  /// Recompute every live element's fingerprint against the store.
  /// kCorruption with a precise location on the first mismatch;
  /// kFailedPrecondition when checksums are disabled.
  Status verify_checksums() const;

  // --- timing ---------------------------------------------------------------
  /// Execute ops concurrently across disks: per-disk FIFO order as
  /// listed, disks independent. Content is NOT touched (timing only).
  ///
  /// When no array-level instrumentation is attached (no observer, no
  /// crash/DRL hooks), ops are grouped per disk and each batchable
  /// disk's run is timed in one SimDisk::submit_run pass. Grouping is
  /// bit-identical to the interleaved per-op order because every
  /// mutable effect (busy window, head position, counters, fault RNG)
  /// is per-disk state touched in per-disk FIFO order, and the batch
  /// aggregates (max end time, byte/op sums) are order-independent.
  BatchStats execute(std::span<const Op> ops, double start_time);

  /// Forget all disk head positions / timelines (fresh experiment).
  void reset_timelines();
  void reset_counters();

  // --- observability ---------------------------------------------------
  /// Attach an observer to the array and every physical disk: disks
  /// emit service spans, execute() emits retry events and batch
  /// counters. Pass nullptr (the default state) to detach; the disabled
  /// path is a branch per access with no other cost.
  void set_observer(obs::Observer* observer);
  obs::Observer* observer() const { return observer_; }

  /// Codec backing RAID-5/6 kinds (nullptr for mirror kinds); used by
  /// the reconstruction executor to decode stripes.
  const ec::Codec* raid_codec() const { return raid_codec_.get(); }

 private:
  ArrayConfig cfg_;
  layout::StackMapper mapper_;
  std::vector<disk::SimDisk> disks_;
  obs::Observer* observer_ = nullptr;

  /// Codec used to materialize / verify parity for RAID-5/6 kinds.
  ec::CodecPtr raid_codec_;

  // Crash-consistency state. All of it stays inert (crash_armed_ false,
  // drl_/sums_ disabled) under the default config: execute() takes one
  // hoisted branch and nothing else changes.
  integrity::DirtyRegionLog drl_;
  integrity::ChecksumStore sums_;
  bool crash_armed_ = false;
  bool crashed_ = false;
  double crash_time_ = 0.0;
  std::int64_t writes_seen_ = 0;
  Rng crash_rng_{0};

  // Retry backoff: the resolved base (new field or deprecated alias)
  // and the jitter stream's state (advanced once per jittered delay).
  double backoff_base_ = 0.0;
  std::uint64_t retry_jitter_state_ = 0;

  /// Delay before attempt `attempt` (1-based retry number) re-submits:
  /// capped exponential in the attempt, jittered when configured.
  double retry_delay(int attempt);

  void init_mirror_stripe(int stripe);
  void init_raid_stripe(int stripe);
  Status verify_mirror_stripe(int stripe) const;
  Status verify_raid_stripe(int stripe) const;
  /// Fire the armed crash on the victim write op at simulated time `t`.
  void apply_crash(const Op& op, double t);
  /// Garble a write that never (fully) reached media while powered off.
  void lose_write(const Op& op);

  /// The grouped-per-disk executor behind execute()'s fast path.
  BatchStats execute_batched(std::span<const Op> ops, double start_time);

  // Scratch for execute_batched (capacity persists across calls, so
  // steady-state batches do not allocate). DiskArray is single-threaded
  // per simulation case.
  std::vector<int> batch_count_;
  std::vector<int> batch_offset_;
  std::vector<std::uint32_t> batch_order_;
  std::vector<disk::RunAccess> batch_run_;
};

}  // namespace sma::array
