#include "array/disk_array.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <string>

#include "ec/raid5.hpp"
#include "ec/rdp.hpp"
#include "gf/region.hpp"
#include "util/rng.hpp"

namespace sma::array {

namespace {
std::uint64_t element_seed(std::uint64_t volume_seed, int data_disk,
                           int stripe, int row) {
  // One SplitMix64 mix per coordinate gives independent streams for
  // every element.
  std::uint64_t s = volume_seed;
  s ^= 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(data_disk) + 1);
  s = splitmix64(s);
  s ^= 0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(stripe) + 1);
  s = splitmix64(s);
  s ^= 0x94d049bb133111ebULL * (static_cast<std::uint64_t>(row) + 1);
  return splitmix64(s);
}
}  // namespace

DiskArray::DiskArray(ArrayConfig cfg)
    : cfg_(std::move(cfg)), mapper_(cfg_.arch.total_disks()) {
  assert(cfg_.stripes >= 1);
  assert(cfg_.spare_disks >= 0);
  const std::int64_t slots =
      static_cast<std::int64_t>(cfg_.stripes) * cfg_.arch.rows();
  disks_.reserve(static_cast<std::size_t>(physical_count()));
  for (int d = 0; d < physical_count(); ++d) {
    const auto it = cfg_.spec_overrides.find(d);
    const disk::DiskSpec& spec =
        it == cfg_.spec_overrides.end() ? cfg_.spec : it->second;
    disks_.emplace_back(d, spec, slots, cfg_.content_bytes,
                        cfg_.logical_element_bytes);
    const auto fit = cfg_.fault_overrides.find(d);
    const disk::FaultProfile& profile =
        fit == cfg_.fault_overrides.end() ? cfg_.fault : fit->second;
    if (!profile.inert()) disks_.back().set_fault_profile(profile);
  }
  if (!cfg_.arch.is_mirror()) {
    const int n = cfg_.arch.n();
    if (cfg_.arch.kind() == layout::ArchKind::kRaid5)
      raid_codec_ = std::make_unique<ec::Raid5Codec>(n, n);
    else
      raid_codec_ = std::make_unique<ec::RdpCodec>(n);
    assert(raid_codec_->rows() == cfg_.arch.rows());
    assert(raid_codec_->total_columns() == cfg_.arch.total_disks());
  }
  if (cfg_.drl_region_stripes > 0)
    drl_ = integrity::DirtyRegionLog(cfg_.stripes, cfg_.drl_region_stripes);
  if (cfg_.checksums) sums_ = integrity::ChecksumStore(physical_count(), slots);
  backoff_base_ = cfg_.retry_backoff_base_s > 0.0 ? cfg_.retry_backoff_base_s
                                                  : cfg_.retry_backoff_s;
  retry_jitter_state_ = cfg_.seed ^ 0xa0761d6478bd642fULL;
  splitmix64(retry_jitter_state_);
  // Only the array-wide profile arms a crash: a power loss takes out the
  // whole array, so a per-disk override cannot model it.
  crash_armed_ = cfg_.fault.crash_armed();
  if (crash_armed_) {
    std::uint64_t s = cfg_.fault.seed ^ 0xc2b2ae3d27d4eb4fULL;
    crash_rng_ = Rng(splitmix64(s));
  }
}

int DiskArray::physical_disk(int logical, int stripe) const {
  return cfg_.rotate ? mapper_.physical_of(logical, stripe) : logical;
}

int DiskArray::logical_disk(int physical, int stripe) const {
  return cfg_.rotate ? mapper_.logical_of(physical, stripe) : physical;
}

std::int64_t DiskArray::slot(int stripe, int row) const {
  assert(stripe >= 0 && stripe < cfg_.stripes);
  assert(row >= 0 && row < cfg_.arch.rows());
  return static_cast<std::int64_t>(stripe) * cfg_.arch.rows() + row;
}

disk::SimDisk& DiskArray::physical(int d) {
  assert(d >= 0 && d < physical_count());
  return disks_[static_cast<std::size_t>(d)];
}

const disk::SimDisk& DiskArray::physical(int d) const {
  assert(d >= 0 && d < physical_count());
  return disks_[static_cast<std::size_t>(d)];
}

std::span<std::uint8_t> DiskArray::content(int logical, int stripe, int row) {
  return physical(physical_disk(logical, stripe)).content(slot(stripe, row));
}

std::span<const std::uint8_t> DiskArray::content(int logical, int stripe,
                                                 int row) const {
  return physical(physical_disk(logical, stripe)).content(slot(stripe, row));
}

void DiskArray::expected_data(int data_disk, int stripe, int row,
                              std::span<std::uint8_t> out) const {
  fill_pattern(element_seed(cfg_.seed, data_disk, stripe, row), out.data(),
               out.size());
}

void DiskArray::init_mirror_stripe(int stripe) {
  const auto& arch = cfg_.arch;
  const int n = arch.n();
  // Data disks.
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < arch.rows(); ++j)
      expected_data(i, stripe, j, content(arch.data_disk(i), stripe, j));
  // Mirror disks via the arrangement.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < arch.rows(); ++j) {
      const layout::Pos replica = arch.replica_of(i, j);
      auto dst = content(replica.disk, stripe, replica.row);
      auto src = content(arch.data_disk(i), stripe, j);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
  // Parity disk: c_j = XOR_i a(i, j).
  if (arch.has_parity()) {
    for (int j = 0; j < arch.rows(); ++j) {
      auto parity = content(arch.parity_disk(), stripe, j);
      gf::region_zero(parity);
      for (int i = 0; i < n; ++i)
        gf::region_xor(content(arch.data_disk(i), stripe, j), parity);
    }
  }
}

void DiskArray::init_raid_stripe(int stripe) {
  ec::ColumnSet cs = raid_codec_->make_stripe(cfg_.content_bytes);
  for (int i = 0; i < cfg_.arch.n(); ++i) {
    for (int j = 0; j < cfg_.arch.rows(); ++j) {
      auto dst = cs.element(i, j);
      expected_data(i, stripe, j, dst);
    }
  }
  const auto st = raid_codec_->encode(cs);
  assert(st.is_ok());
  (void)st;
  for (int col = 0; col < cs.columns(); ++col) {
    for (int j = 0; j < cfg_.arch.rows(); ++j) {
      auto dst = content(col, stripe, j);
      auto src = cs.element(col, j);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
}

void DiskArray::initialize() {
  for (int s = 0; s < cfg_.stripes; ++s) {
    if (cfg_.arch.is_mirror())
      init_mirror_stripe(s);
    else
      init_raid_stripe(s);
  }
  if (sums_.enabled()) {
    for (int d = 0; d < total_disks(); ++d) {
      const auto& disk = physical(d);
      for (std::int64_t sl = 0; sl < disk.slot_count(); ++sl)
        sums_.update(d, sl, disk.content(sl));
    }
  }
}

namespace {
Status mismatch(const char* what, int logical, int stripe, int row) {
  return corruption(std::string(what) + " mismatch at logical disk " +
                    std::to_string(logical) + ", stripe " +
                    std::to_string(stripe) + ", row " + std::to_string(row));
}
}  // namespace

Status DiskArray::verify_mirror_stripe(int stripe) const {
  const auto& arch = cfg_.arch;
  const int n = arch.n();
  std::vector<std::uint8_t> expect(cfg_.content_bytes);
  auto live = [&](int logical) {
    return !physical(physical_disk(logical, stripe)).failed();
  };

  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < arch.rows(); ++j) {
      expected_data(i, stripe, j, expect);
      if (live(arch.data_disk(i))) {
        auto got = content(arch.data_disk(i), stripe, j);
        if (!std::equal(got.begin(), got.end(), expect.begin()))
          return mismatch("data", arch.data_disk(i), stripe, j);
      }
      const layout::Pos replica = arch.replica_of(i, j);
      if (live(replica.disk)) {
        auto got = content(replica.disk, stripe, replica.row);
        if (!std::equal(got.begin(), got.end(), expect.begin()))
          return mismatch("mirror", replica.disk, stripe, replica.row);
      }
    }
  }
  if (arch.has_parity() && live(arch.parity_disk())) {
    std::vector<std::uint8_t> parity(cfg_.content_bytes);
    for (int j = 0; j < arch.rows(); ++j) {
      std::fill(parity.begin(), parity.end(), 0);
      for (int i = 0; i < n; ++i) {
        expected_data(i, stripe, j, expect);
        gf::region_xor(expect, parity);
      }
      auto got = content(arch.parity_disk(), stripe, j);
      if (!std::equal(got.begin(), got.end(), parity.begin()))
        return mismatch("parity", arch.parity_disk(), stripe, j);
    }
  }
  return Status::ok();
}

Status DiskArray::verify_raid_stripe(int stripe) const {
  ec::ColumnSet cs = raid_codec_->make_stripe(cfg_.content_bytes);
  for (int i = 0; i < cfg_.arch.n(); ++i)
    for (int j = 0; j < cfg_.arch.rows(); ++j) {
      auto dst = cs.element(i, j);
      expected_data(i, stripe, j, dst);
    }
  SMA_RETURN_IF_ERROR(raid_codec_->encode(cs));
  for (int col = 0; col < cs.columns(); ++col) {
    if (physical(physical_disk(col, stripe)).failed()) continue;
    for (int j = 0; j < cfg_.arch.rows(); ++j) {
      auto got = content(col, stripe, j);
      auto want = cs.element(col, j);
      if (!std::equal(got.begin(), got.end(), want.begin()))
        return mismatch("raid", col, stripe, j);
    }
  }
  return Status::ok();
}

Status DiskArray::verify_all() const {
  for (int s = 0; s < cfg_.stripes; ++s) {
    if (cfg_.arch.is_mirror()) {
      SMA_RETURN_IF_ERROR(verify_mirror_stripe(s));
    } else {
      SMA_RETURN_IF_ERROR(verify_raid_stripe(s));
    }
  }
  return Status::ok();
}

Status DiskArray::verify_consistency(const ElementSet* skip) const {
  std::vector<std::uint8_t> expect(cfg_.content_bytes);
  const auto skipped = [&](int logical, int s, int row) {
    return skip != nullptr && skip->count({logical, s, row}) > 0;
  };
  for (int s = 0; s < cfg_.stripes; ++s) {
    auto live = [&](int logical) {
      return !physical(physical_disk(logical, s)).failed();
    };
    if (cfg_.arch.is_mirror()) {
      const int n = cfg_.arch.n();
      for (int i = 0; i < n; ++i) {
        if (!live(cfg_.arch.data_disk(i))) continue;
        for (int j = 0; j < cfg_.arch.rows(); ++j) {
          const layout::Pos replica = cfg_.arch.replica_of(i, j);
          if (!live(replica.disk)) continue;
          if (skipped(cfg_.arch.data_disk(i), s, j) ||
              skipped(replica.disk, s, replica.row))
            continue;
          auto data = content(cfg_.arch.data_disk(i), s, j);
          auto mirror = content(replica.disk, s, replica.row);
          if (!std::equal(data.begin(), data.end(), mirror.begin()))
            return mismatch("mirror-consistency", replica.disk, s,
                            replica.row);
        }
      }
      if (cfg_.arch.has_parity() && live(cfg_.arch.parity_disk())) {
        bool all_data_live = true;
        for (int i = 0; i < n; ++i)
          if (!live(cfg_.arch.data_disk(i))) all_data_live = false;
        if (all_data_live) {
          for (int j = 0; j < cfg_.arch.rows(); ++j) {
            bool row_skipped = skipped(cfg_.arch.parity_disk(), s, j);
            for (int i = 0; i < n && !row_skipped; ++i)
              row_skipped = skipped(cfg_.arch.data_disk(i), s, j);
            if (row_skipped) continue;
            std::fill(expect.begin(), expect.end(), 0);
            for (int i = 0; i < n; ++i)
              gf::region_xor(content(cfg_.arch.data_disk(i), s, j), expect);
            auto got = content(cfg_.arch.parity_disk(), s, j);
            if (!std::equal(got.begin(), got.end(), expect.begin()))
              return mismatch("parity-consistency", cfg_.arch.parity_disk(),
                              s, j);
          }
        }
      }
    } else {
      bool all_data_live = true;
      for (int i = 0; i < cfg_.arch.n(); ++i)
        if (!live(i)) all_data_live = false;
      if (!all_data_live) continue;
      if (skip != nullptr) {
        bool stripe_skipped = false;
        for (int col = 0; col < cfg_.arch.total_disks() && !stripe_skipped;
             ++col)
          for (int j = 0; j < cfg_.arch.rows() && !stripe_skipped; ++j)
            stripe_skipped = skipped(col, s, j);
        if (stripe_skipped) continue;
      }
      ec::ColumnSet cs = raid_codec_->make_stripe(cfg_.content_bytes);
      for (int i = 0; i < cfg_.arch.n(); ++i)
        for (int j = 0; j < cfg_.arch.rows(); ++j) {
          auto src = content(i, s, j);
          auto dst = cs.element(i, j);
          std::copy(src.begin(), src.end(), dst.begin());
        }
      SMA_RETURN_IF_ERROR(raid_codec_->encode(cs));
      for (int col = cfg_.arch.n(); col < cs.columns(); ++col) {
        if (!live(col)) continue;
        for (int j = 0; j < cfg_.arch.rows(); ++j) {
          auto got = content(col, s, j);
          auto want = cs.element(col, j);
          if (!std::equal(got.begin(), got.end(), want.begin()))
            return mismatch("raid-consistency", col, s, j);
        }
      }
    }
  }
  return Status::ok();
}

Status DiskArray::verify_logical_disk(int logical) const {
  const auto& arch = cfg_.arch;
  std::vector<std::uint8_t> expect(cfg_.content_bytes);
  for (int s = 0; s < cfg_.stripes; ++s) {
    if (physical(physical_disk(logical, s)).failed())
      return failed_precondition("logical disk " + std::to_string(logical) +
                                 " is on a failed physical disk in stripe " +
                                 std::to_string(s));
    for (int j = 0; j < arch.rows(); ++j) {
      auto got = content(logical, s, j);
      switch (arch.role_of(logical)) {
        case layout::DiskRole::kData:
          expected_data(logical, s, j, expect);
          break;
        case layout::DiskRole::kMirror: {
          const layout::Pos src = arch.replicated_by(arch.role_index(logical), j);
          expected_data(src.disk, s, src.row, expect);
          break;
        }
        case layout::DiskRole::kParity: {
          std::fill(expect.begin(), expect.end(), 0);
          std::vector<std::uint8_t> tmp(cfg_.content_bytes);
          for (int i = 0; i < arch.n(); ++i) {
            expected_data(i, s, j, tmp);
            gf::region_xor(tmp, expect);
          }
          break;
        }
      }
      if (!std::equal(got.begin(), got.end(), expect.begin()))
        return mismatch("element", logical, s, j);
    }
  }
  return Status::ok();
}

void DiskArray::fail_physical(int d) { physical(d).fail(); }

bool DiskArray::faults_active() const {
  for (const auto& d : disks_)
    if (!d.fault_profile().inert()) return true;
  return false;
}

bool DiskArray::element_unreadable(int logical, int stripe, int row) const {
  const auto& d = physical(physical_disk(logical, stripe));
  return d.failed() || d.slot_unreadable(slot(stripe, row));
}

bool DiskArray::element_latent(int logical, int stripe, int row) const {
  const auto& d = physical(physical_disk(logical, stripe));
  return !d.failed() && d.slot_unreadable(slot(stripe, row));
}

void DiskArray::clear_element_latent(int logical, int stripe, int row) {
  physical(physical_disk(logical, stripe)).clear_latent(slot(stripe, row));
}

void DiskArray::restore_element(int logical, int stripe, int row,
                                std::span<const std::uint8_t> bytes) {
  const int phys = physical_disk(logical, stripe);
  const std::int64_t sl = slot(stripe, row);
  physical(phys).restore_content(sl, bytes);
  if (sums_.enabled()) sums_.update(phys, sl, bytes);
}

void DiskArray::update_element_checksum(int logical, int stripe, int row) {
  assert(sums_.enabled());
  const int phys = physical_disk(logical, stripe);
  const std::int64_t sl = slot(stripe, row);
  sums_.update(phys, sl, physical(phys).content(sl));
}

std::uint64_t DiskArray::element_checksum_stored(int logical, int stripe,
                                                 int row) const {
  assert(sums_.enabled());
  return sums_.get(physical_disk(logical, stripe), slot(stripe, row));
}

bool DiskArray::element_checksum_ok(int logical, int stripe, int row) const {
  assert(sums_.enabled());
  const int phys = physical_disk(logical, stripe);
  const std::int64_t sl = slot(stripe, row);
  return sums_.matches(phys, sl, physical(phys).content(sl));
}

Status DiskArray::verify_checksums() const {
  if (!sums_.enabled())
    return failed_precondition(
        "verify_checksums() on an array without checksums enabled");
  for (int s = 0; s < cfg_.stripes; ++s) {
    for (int logical = 0; logical < total_disks(); ++logical) {
      if (physical(physical_disk(logical, s)).failed()) continue;
      for (int j = 0; j < cfg_.arch.rows(); ++j) {
        if (!element_checksum_ok(logical, s, j))
          return corruption("checksum mismatch at logical disk " +
                            std::to_string(logical) + ", stripe " +
                            std::to_string(s) + ", row " + std::to_string(j));
      }
    }
  }
  return Status::ok();
}

Status DiskArray::power_cycle() {
  if (!crashed_)
    return failed_precondition(
        "power_cycle() on an array that is not powered off");
  crashed_ = false;  // the crash point stays consumed: crash_armed_ off
  reset_timelines();
  return Status::ok();
}

void DiskArray::apply_crash(const Op& op, double t) {
  crashed_ = true;
  crash_armed_ = false;
  crash_time_ = t;
  // Contents always live on the element's home disk (spare placements
  // redirect only the timed I/O), so the torn/lost/misdirected outcome
  // mutates the home slot even when the op was redirected.
  const int home = physical_disk(op.logical_disk, op.stripe);
  auto& hd = physical(home);
  const std::int64_t sl = slot(op.stripe, op.row);
  auto bytes = hd.content(sl);
  std::vector<std::uint8_t> garble(bytes.size());
  fill_pattern(crash_rng_.next_u64(), garble.data(), garble.size());
  const double u = crash_rng_.next_double();
  if (u < cfg_.fault.torn_write_p) {
    // Torn: a prefix of the new bytes reached media, the tail is junk.
    std::copy(garble.begin() + static_cast<std::ptrdiff_t>(garble.size() / 2),
              garble.end(),
              bytes.begin() + static_cast<std::ptrdiff_t>(bytes.size() / 2));
  } else if (u < cfg_.fault.torn_write_p + cfg_.fault.misdirected_write_p) {
    // Misdirected: the new bytes landed on an adjacent slot, clobbering
    // it; the intended target kept stale (unknown) data.
    const std::int64_t nsl = sl + 1 < hd.slot_count() ? sl + 1 : sl - 1;
    if (nsl >= 0) {
      auto neighbor = hd.content(nsl);
      std::copy(bytes.begin(), bytes.end(), neighbor.begin());
      if (hd.failed()) hd.clear_restored(nsl);
    }
    std::copy(garble.begin(), garble.end(), bytes.begin());
  } else {
    // Lost: nothing reached media; the slot holds stale (unknown) data.
    std::copy(garble.begin(), garble.end(), bytes.begin());
  }
  // If a rebuild had already accounted this slot as restored, the crash
  // un-restores it: heal() must wait for a re-rebuild.
  if (hd.failed()) hd.clear_restored(sl);
  if (observer_ != nullptr) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kCrash;
    ev.t_s = t;
    ev.disk = home;
    ev.slot = sl;
    ev.stripe = op.stripe;
    ev.write = true;
    observer_->emit(ev);
    observer_->count("array.crashes");
  }
}

void DiskArray::lose_write(const Op& op) {
  const int home = physical_disk(op.logical_disk, op.stripe);
  auto& hd = physical(home);
  const std::int64_t sl = slot(op.stripe, op.row);
  auto bytes = hd.content(sl);
  fill_pattern(crash_rng_.next_u64(), bytes.data(), bytes.size());
  if (hd.failed()) hd.clear_restored(sl);
}

double DiskArray::retry_delay(int attempt) {
  const int exp = std::min(attempt - 1, 62);
  double delay = backoff_base_ * static_cast<double>(1ULL << exp);
  if (cfg_.retry_backoff_cap_s > 0.0)
    delay = std::min(delay, cfg_.retry_backoff_cap_s);
  if (cfg_.retry_backoff_jitter > 0.0) {
    const double u =
        static_cast<double>(splitmix64(retry_jitter_state_) >> 11) * 0x1.0p-53;
    delay *= 1.0 - cfg_.retry_backoff_jitter * u;
  }
  return delay;
}

std::vector<int> DiskArray::failed_physical() const {
  std::vector<int> out;
  for (int d = 0; d < total_disks(); ++d)
    if (physical(d).failed()) out.push_back(d);
  return out;
}

BatchStats DiskArray::execute(std::span<const Op> ops, double start_time) {
  // One hoisted branch keeps the default (no crash, no DRL) path
  // bit-identical to the pre-integrity executor.
  const bool integrity_hooks = crash_armed_ || crashed_ || drl_.enabled();
  // No array-level instrumentation: take the grouped-per-disk fast
  // path. Per-disk fault machinery (fail-stops, latent sectors,
  // transient errors, failed disks) is handled inside execute_batched
  // by falling back to per-op submission for just those disks.
  if (!integrity_hooks && observer_ == nullptr)
    return execute_batched(ops, start_time);
  BatchStats stats;
  stats.start_s = start_time;
  stats.end_s = start_time;
  // Write intent is logged at batch admission, before any op is issued
  // (md writes the bitmap bit before the data): a crash anywhere inside
  // the batch leaves every incomplete write's region dirty for resync.
  if (integrity_hooks && !crashed_ && drl_.enabled()) {
    for (const Op& op : ops)
      if (op.kind == disk::IoKind::kWrite) drl_.mark(op.stripe);
  }
  std::vector<int> per_disk(static_cast<std::size_t>(physical_count()), 0);
  for (const Op& op : ops) {
    const int phys = op.redirect_phys >= 0
                         ? op.redirect_phys
                         : physical_disk(op.logical_disk, op.stripe);
    auto& d = physical(phys);
    const std::int64_t sl = slot(op.stripe, op.row);
    ++per_disk[static_cast<std::size_t>(phys)];
    if (integrity_hooks) {
      const bool is_write = op.kind == disk::IoKind::kWrite;
      if (crashed_) {
        // Powered off: nothing serves; a write's bytes are lost.
        stats.crashed = true;
        ++stats.failed_ops;
        if (is_write) {
          ++stats.lost_writes;
          lose_write(op);
        }
        continue;
      }
      if (is_write) {
        if (crash_armed_) {
          const double would_start = std::max(start_time, d.busy_until());
          const bool fire =
              (cfg_.fault.crash_after_writes >= 0 &&
               writes_seen_ == cfg_.fault.crash_after_writes) ||
              (cfg_.fault.crash_at_s >= 0.0 &&
               would_start >= cfg_.fault.crash_at_s);
          ++writes_seen_;
          if (fire) {
            apply_crash(op, would_start);
            stats.crashed = true;
            ++stats.failed_ops;
            ++stats.lost_writes;
            continue;
          }
        }
      }
    }
    int attempts = 0;
    double earliest = start_time;
    for (;;) {
      const disk::IoResult res = d.submit(op.kind, sl, earliest);
      if (res.is_ok()) {
        stats.end_s = std::max(stats.end_s, res.value());
        if (op.kind == disk::IoKind::kRead)
          stats.logical_bytes_read += d.logical_element_bytes();
        else
          stats.logical_bytes_written += d.logical_element_bytes();
        break;
      }
      // Errored attempts still occupied the disk for their service time.
      stats.end_s = std::max(stats.end_s, d.busy_until());
      const bool transient =
          res.status().code() == ErrorCode::kIoError && !d.failed();
      if (transient && attempts < cfg_.io_max_retries) {
        ++attempts;
        ++stats.retried_ops;
        // Model the retry delay when configured: the re-submission
        // backs off (capped exponential, seeded jitter) after the
        // failed attempt drains. The guard keeps the default (0) path
        // bit-identical.
        if (backoff_base_ > 0.0)
          earliest = d.busy_until() + retry_delay(attempts);
        if (observer_ != nullptr) {
          obs::TraceEvent ev;
          ev.kind = obs::EventKind::kRetry;
          ev.t_s = d.busy_until();
          ev.disk = phys;
          ev.slot = sl;
          ev.stripe = op.stripe;
          ev.write = op.kind == disk::IoKind::kWrite;
          observer_->emit(ev);
          observer_->count("array.retried_ops");
        }
        continue;
      }
      if (res.status().code() == ErrorCode::kUnreadableSector)
        ++stats.unreadable_ops;
      ++stats.failed_ops;
      if (observer_ != nullptr) observer_->count("array.failed_ops");
      break;
    }
    stats.max_retry_depth = std::max(stats.max_retry_depth, attempts);
  }
  stats.max_ops_per_disk = *std::max_element(per_disk.begin(), per_disk.end());
  return stats;
}

BatchStats DiskArray::execute_batched(std::span<const Op> ops,
                                      double start_time) {
  BatchStats stats;
  stats.start_s = start_time;
  stats.end_s = start_time;
  const std::size_t disk_count = static_cast<std::size_t>(physical_count());

  // Counting sort of op indices by physical disk — stable, so each
  // disk's slice of batch_order_ is its FIFO op order from `ops`.
  batch_count_.assign(disk_count, 0);
  for (const Op& op : ops) {
    const int phys = op.redirect_phys >= 0
                         ? op.redirect_phys
                         : physical_disk(op.logical_disk, op.stripe);
    ++batch_count_[static_cast<std::size_t>(phys)];
  }
  batch_offset_.resize(disk_count + 1);
  batch_offset_[0] = 0;
  for (std::size_t d = 0; d < disk_count; ++d) {
    batch_offset_[d + 1] = batch_offset_[d] + batch_count_[d];
    stats.max_ops_per_disk = std::max(stats.max_ops_per_disk, batch_count_[d]);
  }
  batch_order_.resize(ops.size());
  for (std::size_t d = 0; d < disk_count; ++d) batch_count_[d] = batch_offset_[d];
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    const int phys = op.redirect_phys >= 0
                         ? op.redirect_phys
                         : physical_disk(op.logical_disk, op.stripe);
    batch_order_[static_cast<std::size_t>(
        batch_count_[static_cast<std::size_t>(phys)]++)] =
        static_cast<std::uint32_t>(i);
  }

  for (std::size_t dd = 0; dd < disk_count; ++dd) {
    const int begin = batch_offset_[dd];
    const int end = batch_offset_[dd + 1];
    if (begin == end) continue;
    auto& d = disks_[dd];
    if (d.can_batch()) {
      batch_run_.clear();
      std::uint64_t read_ops = 0;
      for (int k = begin; k < end; ++k) {
        const Op& op = ops[batch_order_[static_cast<std::size_t>(k)]];
        batch_run_.push_back({op.kind, slot(op.stripe, op.row)});
        read_ops += op.kind == disk::IoKind::kRead;
      }
      const double run_end = d.submit_run(batch_run_, start_time);
      stats.end_s = std::max(stats.end_s, run_end);
      stats.logical_bytes_read += read_ops * d.logical_element_bytes();
      stats.logical_bytes_written +=
          (static_cast<std::uint64_t>(end - begin) - read_ops) *
          d.logical_element_bytes();
      continue;
    }
    // This disk carries live fault machinery (or is failed): replay the
    // general executor's per-op loop for its ops. Observer branches are
    // omitted — this path only runs with no observer attached.
    for (int k = begin; k < end; ++k) {
      const Op& op = ops[batch_order_[static_cast<std::size_t>(k)]];
      const std::int64_t sl = slot(op.stripe, op.row);
      int attempts = 0;
      double earliest = start_time;
      for (;;) {
        const disk::IoResult res = d.submit(op.kind, sl, earliest);
        if (res.is_ok()) {
          stats.end_s = std::max(stats.end_s, res.value());
          if (op.kind == disk::IoKind::kRead)
            stats.logical_bytes_read += d.logical_element_bytes();
          else
            stats.logical_bytes_written += d.logical_element_bytes();
          break;
        }
        stats.end_s = std::max(stats.end_s, d.busy_until());
        const bool transient =
            res.status().code() == ErrorCode::kIoError && !d.failed();
        if (transient && attempts < cfg_.io_max_retries) {
          ++attempts;
          ++stats.retried_ops;
          if (backoff_base_ > 0.0)
            earliest = d.busy_until() + retry_delay(attempts);
          continue;
        }
        if (res.status().code() == ErrorCode::kUnreadableSector)
          ++stats.unreadable_ops;
        ++stats.failed_ops;
        break;
      }
      stats.max_retry_depth = std::max(stats.max_retry_depth, attempts);
    }
  }
  return stats;
}

void DiskArray::set_observer(obs::Observer* observer) {
  observer_ = observer;
  for (auto& d : disks_) d.set_observer(observer);
}

void DiskArray::reset_timelines() {
  for (auto& d : disks_) d.reset_timeline();
}

void DiskArray::reset_counters() {
  for (auto& d : disks_) d.reset_counters();
}

}  // namespace sma::array
