#include "layout/properties.hpp"

#include <vector>

namespace sma::layout {

Status check_property1(const MirrorArrangement& arr) {
  const int n = arr.n();
  for (int data_disk = 0; data_disk < n; ++data_disk) {
    std::vector<bool> hit(static_cast<std::size_t>(n), false);
    for (int row = 0; row < n; ++row) {
      const Pos p = arr.mirror_of(data_disk, row);
      if (hit[static_cast<std::size_t>(p.disk)])
        return failed_precondition(
            "P1 violated: data disk " + std::to_string(data_disk) +
            " has two replicas on mirror disk " + std::to_string(p.disk));
      hit[static_cast<std::size_t>(p.disk)] = true;
    }
  }
  return Status::ok();
}

Status check_property2(const MirrorArrangement& arr) {
  const int n = arr.n();
  for (int mirror_disk = 0; mirror_disk < n; ++mirror_disk) {
    std::vector<bool> hit(static_cast<std::size_t>(n), false);
    for (int row = 0; row < n; ++row) {
      const Pos src = arr.data_of(mirror_disk, row);
      if (hit[static_cast<std::size_t>(src.disk)])
        return failed_precondition(
            "P2 violated: mirror disk " + std::to_string(mirror_disk) +
            " holds two elements of data disk " + std::to_string(src.disk));
      hit[static_cast<std::size_t>(src.disk)] = true;
    }
  }
  return Status::ok();
}

Status check_property3(const MirrorArrangement& arr) {
  const int n = arr.n();
  for (int row = 0; row < n; ++row) {
    std::vector<bool> hit(static_cast<std::size_t>(n), false);
    for (int data_disk = 0; data_disk < n; ++data_disk) {
      const Pos p = arr.mirror_of(data_disk, row);
      if (hit[static_cast<std::size_t>(p.disk)])
        return failed_precondition(
            "P3 violated: data row " + std::to_string(row) +
            " has two replicas on mirror disk " + std::to_string(p.disk));
      hit[static_cast<std::size_t>(p.disk)] = true;
    }
  }
  return Status::ok();
}

PropertyReport evaluate_properties(const MirrorArrangement& arr) {
  PropertyReport report;
  report.bijective = arr.is_bijection();
  report.p1 = check_property1(arr).is_ok();
  report.p2 = check_property2(arr).is_ok();
  report.p3 = check_property3(arr).is_ok();
  return report;
}

std::string PropertyReport::to_string() const {
  std::string s;
  s += bijective ? "bijective " : "NOT-bijective ";
  s += p1 ? "P1 " : "!P1 ";
  s += p2 ? "P2 " : "!P2 ";
  s += p3 ? "P3" : "!P3";
  return s;
}

}  // namespace sma::layout
