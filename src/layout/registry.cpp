#include "layout/registry.hpp"

#include <algorithm>
#include <utility>

namespace sma::layout {

namespace {

int mod(int x, int m) {
  const int r = x % m;
  return r < 0 ? r + m : r;
}

/// (F(k-1), F(k), F(k+1)) mod n, iteratively; F(-1) = 1 covers k = 0.
struct FibTriple {
  int prev, cur, next;
};
FibTriple fibonacci_triple_mod(int k, int n) {
  int prev = 1 % n;  // F(-1)
  int cur = 0;       // F(0)
  for (int step = 0; step < k; ++step) {
    const int next = (prev + cur) % n;
    prev = cur;
    cur = next;
  }
  return {prev, cur, (prev + cur) % n};
}

/// Zigzag shift for row j: 0, +1, -1, +2, -2, ... — the minimal-
/// magnitude enumeration of distinct shifts (all distinct mod n).
int zigzag_shift(int j) { return j % 2 == 1 ? (j + 1) / 2 : -(j / 2); }

Status parse_positive_int(const std::string& key, const std::string& value,
                          int* out) {
  if (value.empty()) return invalid_argument("empty value for " + key);
  int parsed = 0;
  for (const char c : value) {
    if (c < '0' || c > '9')
      return invalid_argument(key + " must be a non-negative integer, got '" +
                              value + "'");
    if (parsed > 214748363) return invalid_argument(key + " out of range");
    parsed = parsed * 10 + (c - '0');
  }
  *out = parsed;
  return Status::ok();
}

/// Reject unknown parameter keys so a typo ("group=2") cannot silently
/// run the default layout.
Status check_known_params(const LayoutParams& params,
                          std::initializer_list<const char*> known) {
  for (const auto& [key, value] : params) {
    (void)value;
    if (std::find_if(known.begin(), known.end(), [&](const char* k) {
          return key == k;
        }) == known.end())
      return invalid_argument("unknown layout parameter: " + key);
  }
  return Status::ok();
}

}  // namespace

Result<LayoutSpec> parse_layout_spec(std::string_view spec) {
  LayoutSpec out;
  const std::size_t colon = spec.find(':');
  out.name = std::string(spec.substr(0, colon));
  if (out.name.empty()) return invalid_argument("empty layout name");
  if (colon == std::string_view::npos) return out;

  std::string_view rest = spec.substr(colon + 1);
  if (rest.empty())
    return invalid_argument("layout spec '" + std::string(spec) +
                            "' has an empty parameter list");
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view()
                                          : rest.substr(comma + 1);
    if (item.empty())
      return invalid_argument("empty parameter in layout spec '" +
                              std::string(spec) + "'");
    const std::size_t eq = item.find('=');
    // A bare value binds to the descriptor's default parameter; the
    // registry resolves the key at make() time (empty key marker).
    const std::string key =
        eq == std::string_view::npos ? "" : std::string(item.substr(0, eq));
    const std::string value = std::string(
        eq == std::string_view::npos ? item : item.substr(eq + 1));
    if (eq != std::string_view::npos && key.empty())
      return invalid_argument("parameter with empty key in layout spec '" +
                              std::string(spec) + "'");
    if (!out.params.emplace(key, value).second)
      return invalid_argument("duplicate parameter '" + key +
                              "' in layout spec '" + std::string(spec) + "'");
  }
  return out;
}

RegistryArrangement::RegistryArrangement(const LayoutDescriptor* desc,
                                         LayoutConfig cfg, std::string display)
    : desc_(desc), cfg_(cfg), display_(std::move(display)) {}

Pos RegistryArrangement::mirror_of(int data_disk, int data_row) const {
  return desc_->map(cfg_, {data_disk, data_row});
}

Pos RegistryArrangement::data_of(int mirror_disk, int mirror_row) const {
  if (desc_->inverse) return desc_->inverse(cfg_, {mirror_disk, mirror_row});
  return MirrorArrangement::data_of(mirror_disk, mirror_row);
}

AlgorithmRegistry& AlgorithmRegistry::global() {
  static AlgorithmRegistry* registry = [] {
    auto* r = new AlgorithmRegistry();

    // --- traditional: RAID-1 identity, b(i, j) = a(i, j) --------------
    {
      LayoutDescriptor d;
      d.name = "traditional";
      d.summary = "RAID-1 identity: each data disk has one partner mirror";
      d.map = [](const LayoutConfig&, Pos p) { return p; };
      d.inverse = [](const LayoutConfig&, Pos p) { return p; };
      d.rebuild_read_set = [](const LayoutConfig& cfg, int i) {
        std::vector<Pos> reads;
        reads.reserve(static_cast<std::size_t>(cfg.n));
        for (int j = 0; j < cfg.n; ++j) reads.push_back({i, j});
        return reads;
      };
      (void)r->add(std::move(d));
    }

    // --- shifted: the paper's arrangement, b(<i+j>_n, i) = a(i, j) ----
    {
      LayoutDescriptor d;
      d.name = "shifted";
      d.summary = "paper's shifted arrangement: P1-P3, one-read rebuild";
      d.map = [](const LayoutConfig& cfg, Pos p) {
        return Pos{mod(p.disk + p.row, cfg.n), p.disk};
      };
      d.inverse = [](const LayoutConfig& cfg, Pos p) {
        return Pos{p.row, mod(p.disk - p.row, cfg.n)};
      };
      d.rebuild_read_set = [](const LayoutConfig& cfg, int i) {
        std::vector<Pos> reads;
        reads.reserve(static_cast<std::size_t>(cfg.n));
        for (int j = 0; j < cfg.n; ++j)
          reads.push_back({mod(i + j, cfg.n), i});
        return reads;
      };
      (void)r->add(std::move(d));
    }

    // --- iterated: k applications of the Fig. 8 transform -------------
    // Closed form (see arrangement.hpp): the transform is the linear
    // map [[1,1],[1,0]], whose k-th power is Fibonacci, so
    //   a(i, j) -> ( F(k+1) i + F(k) j , F(k) i + F(k-1) j ) mod n.
    // Bit-identical to iterating apply_shift_transform on a table
    // (held by test); k = 1 is the shifted arrangement.
    {
      LayoutDescriptor d;
      d.name = "iterated";
      d.summary = "k-fold Fig. 8 transform family (iterated:<k>)";
      d.default_param = "iterations";
      d.configure = [](const LayoutParams& params, LayoutConfig& cfg) {
        if (Status st = check_known_params(params, {"iterations"});
            !st.is_ok())
          return st;
        if (auto it = params.find("iterations"); it != params.end())
          return parse_positive_int("iterations", it->second,
                                    &cfg.iterations);
        return Status::ok();
      };
      d.display_name = [](const LayoutConfig& cfg) {
        return "iterated(" + std::to_string(cfg.iterations) + ")";
      };
      d.map = [](const LayoutConfig& cfg, Pos p) {
        const auto f = fibonacci_triple_mod(cfg.iterations, cfg.n);
        return Pos{mod(f.next * p.disk + f.cur * p.row, cfg.n),
                   mod(f.cur * p.disk + f.prev * p.row, cfg.n)};
      };
      // Cassini: det [[F(k+1),F(k)],[F(k),F(k-1)]] = (-1)^k, so the
      // inverse is +/-[[F(k-1),-F(k)],[-F(k),F(k+1)]] mod n.
      d.inverse = [](const LayoutConfig& cfg, Pos p) {
        const auto f = fibonacci_triple_mod(cfg.iterations, cfg.n);
        const int sign = cfg.iterations % 2 == 0 ? 1 : -1;
        return Pos{mod(sign * (f.prev * p.disk - f.cur * p.row), cfg.n),
                   mod(sign * (-f.cur * p.disk + f.next * p.row), cfg.n)};
      };
      (void)r->add(std::move(d));
    }

    // --- lrc: Local Reconstruction Code style local groups ------------
    // The n data disks split into `groups` local groups of L = n/groups
    // disks; within a group the columns loop-shift row by row:
    //   a(i, j) -> ( group(i)*L + <i_local + j>_L , j ).
    // Rebuild of any disk touches ONLY its local group (L disks,
    // n/L reads each) — bounded repair fan-out at the price of the
    // paper's all-disk spread. P3 still holds; P1/P2 shrink to the group.
    {
      LayoutDescriptor d;
      d.name = "lrc";
      d.summary = "local-group layout: rebuild stays inside one group";
      d.min_n = 2;
      d.default_param = "groups";
      d.configure = [](const LayoutParams& params, LayoutConfig& cfg) {
        if (Status st = check_known_params(params, {"groups"}); !st.is_ok())
          return st;
        cfg.groups = 2;
        if (auto it = params.find("groups"); it != params.end())
          if (Status st =
                  parse_positive_int("groups", it->second, &cfg.groups);
              !st.is_ok())
            return st;
        if (cfg.groups < 1) return invalid_argument("lrc needs groups >= 1");
        if (cfg.n % cfg.groups != 0)
          return invalid_argument("lrc needs groups (" +
                                  std::to_string(cfg.groups) +
                                  ") to divide n (" + std::to_string(cfg.n) +
                                  ")");
        return Status::ok();
      };
      d.display_name = [](const LayoutConfig& cfg) {
        return "lrc(groups=" + std::to_string(cfg.groups) + ")";
      };
      d.map = [](const LayoutConfig& cfg, Pos p) {
        const int group_size = cfg.n / cfg.groups;
        const int base = (p.disk / group_size) * group_size;
        return Pos{base + mod(p.disk - base + p.row, group_size), p.row};
      };
      d.inverse = [](const LayoutConfig& cfg, Pos p) {
        const int group_size = cfg.n / cfg.groups;
        const int base = (p.disk / group_size) * group_size;
        return Pos{base + mod(p.disk - base - p.row, group_size), p.row};
      };
      d.rebuild_read_set = [](const LayoutConfig& cfg, int i) {
        const int group_size = cfg.n / cfg.groups;
        const int base = (i / group_size) * group_size;
        std::vector<Pos> reads;
        reads.reserve(static_cast<std::size_t>(cfg.n));
        for (int j = 0; j < cfg.n; ++j)
          reads.push_back({base + mod(i - base + j, group_size), j});
        return reads;
      };
      (void)r->add(std::move(d));
    }

    // --- pyramid: two-level (RAID-7-style hierarchical) rotation ------
    // Groups rotate globally AND columns rotate within the group:
    //   a(i, j) -> ( <group(i)+j>_G * L + <i_local + j>_L , j ).
    // With gcd(G, L) == 1 the two rotations compose to a full-spread
    // placement (one read per disk, like shifted) while keeping the
    // group structure LRC exposes; otherwise the spread is lcm(G, L)
    // disks — the hierarchy's middle ground.
    {
      LayoutDescriptor d;
      d.name = "pyramid";
      d.summary = "two-level rotation: groups rotate and columns shift";
      d.min_n = 2;
      d.default_param = "groups";
      d.configure = [](const LayoutParams& params, LayoutConfig& cfg) {
        if (Status st = check_known_params(params, {"groups"}); !st.is_ok())
          return st;
        cfg.groups = 2;
        if (auto it = params.find("groups"); it != params.end())
          if (Status st =
                  parse_positive_int("groups", it->second, &cfg.groups);
              !st.is_ok())
            return st;
        if (cfg.groups < 1)
          return invalid_argument("pyramid needs groups >= 1");
        if (cfg.n % cfg.groups != 0)
          return invalid_argument("pyramid needs groups (" +
                                  std::to_string(cfg.groups) +
                                  ") to divide n (" + std::to_string(cfg.n) +
                                  ")");
        return Status::ok();
      };
      d.display_name = [](const LayoutConfig& cfg) {
        return "pyramid(groups=" + std::to_string(cfg.groups) + ")";
      };
      d.map = [](const LayoutConfig& cfg, Pos p) {
        const int group_size = cfg.n / cfg.groups;
        const int group = p.disk / group_size;
        const int local = p.disk % group_size;
        return Pos{mod(group + p.row, cfg.groups) * group_size +
                       mod(local + p.row, group_size),
                   p.row};
      };
      d.inverse = [](const LayoutConfig& cfg, Pos p) {
        const int group_size = cfg.n / cfg.groups;
        const int group = mod(p.disk / group_size - p.row, cfg.groups);
        const int local = mod(p.disk % group_size - p.row, group_size);
        return Pos{group * group_size + local, p.row};
      };
      (void)r->add(std::move(d));
    }

    // --- zigzag: rebuild-optimal minimal-shift arrangement ------------
    // Row j's columns shift by the zigzag sequence 0, +1, -1, +2, -2...
    // (distinct mod n), after "On Codes for Optimal Rebuilding Access":
    // every rebuild read lands on a different disk (the paper's P1/P2
    // one-access property) while shift magnitudes stay <= ceil(n/2),
    // keeping replicas in nearby columns.
    {
      LayoutDescriptor d;
      d.name = "zigzag";
      d.summary = "zigzag shifts: one-access rebuild, minimal displacement";
      d.map = [](const LayoutConfig& cfg, Pos p) {
        return Pos{mod(p.disk + zigzag_shift(p.row), cfg.n), p.row};
      };
      d.inverse = [](const LayoutConfig& cfg, Pos p) {
        return Pos{mod(p.disk - zigzag_shift(p.row), cfg.n), p.row};
      };
      d.rebuild_read_set = [](const LayoutConfig& cfg, int i) {
        std::vector<Pos> reads;
        reads.reserve(static_cast<std::size_t>(cfg.n));
        for (int j = 0; j < cfg.n; ++j)
          reads.push_back({mod(i + zigzag_shift(j), cfg.n), j});
        return reads;
      };
      (void)r->add(std::move(d));
    }

    // Pre-registry spellings, kept one release (ArchKind-derived names
    // and the identity's common alias).
    (void)r->add_alias("mirror-traditional", "traditional");
    (void)r->add_alias("mirror-shifted", "shifted");
    (void)r->add_alias("identity", "traditional");
    return r;
  }();
  return *registry;
}

Status AlgorithmRegistry::add(LayoutDescriptor desc) {
  if (desc.name.empty())
    return invalid_argument("layout descriptor needs a name");
  if (!desc.map)
    return invalid_argument("layout descriptor '" + desc.name +
                            "' needs a map function");
  if (desc.name.find(':') != std::string::npos ||
      desc.name.find(',') != std::string::npos)
    return invalid_argument("layout name '" + desc.name +
                            "' must not contain ':' or ','");
  if (descriptors_.count(desc.name) || aliases_.count(desc.name))
    return already_exists("layout '" + desc.name + "' is already registered");
  order_.push_back(desc.name);
  descriptors_.emplace(desc.name, std::move(desc));
  return Status::ok();
}

Status AlgorithmRegistry::add_alias(const std::string& alias,
                                    const std::string& target) {
  if (descriptors_.count(alias) || aliases_.count(alias))
    return already_exists("layout '" + alias + "' is already registered");
  if (!descriptors_.count(target))
    return not_found("alias target '" + target + "' is not registered");
  aliases_.emplace(alias, target);
  return Status::ok();
}

Result<const LayoutDescriptor*> AlgorithmRegistry::find(
    std::string_view name) const {
  std::string key(name);
  if (auto alias = aliases_.find(key); alias != aliases_.end())
    key = alias->second;
  if (auto it = descriptors_.find(key); it != descriptors_.end())
    return &it->second;
  std::string known;
  for (const auto& n : order_) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  return not_found("unknown layout '" + std::string(name) + "' (registered: " +
                   known + ")");
}

Result<std::string> AlgorithmRegistry::canonical(std::string_view name) const {
  auto found = find(name);
  if (!found.is_ok()) return found.status();
  return found.value()->name;
}

std::vector<std::string> AlgorithmRegistry::names() const { return order_; }

Result<ArrangementPtr> AlgorithmRegistry::make(std::string_view spec,
                                               int n) const {
  auto parsed = parse_layout_spec(spec);
  if (!parsed.is_ok()) return parsed.status();
  return make(parsed.value(), n);
}

Result<ArrangementPtr> AlgorithmRegistry::make(const LayoutSpec& spec,
                                               int n) const {
  auto found = find(spec.name);
  if (!found.is_ok()) return found.status();
  const LayoutDescriptor* desc = found.value();
  if (n < desc->min_n)
    return invalid_argument("layout '" + desc->name + "' needs n >= " +
                            std::to_string(desc->min_n));

  // Bind a bare spec value ("iterated:3") to the default parameter.
  LayoutParams params = spec.params;
  if (auto bare = params.find(""); bare != params.end()) {
    if (desc->default_param.empty())
      return invalid_argument("layout '" + desc->name +
                              "' takes no bare parameter value");
    if (params.count(desc->default_param))
      return invalid_argument("layout '" + desc->name + "' got both '" +
                              desc->default_param +
                              "' and a bare parameter value");
    params.emplace(desc->default_param, bare->second);
    params.erase("");
  }

  LayoutConfig cfg;
  cfg.n = n;
  if (desc->configure) {
    if (Status st = desc->configure(params, cfg); !st.is_ok()) return st;
  } else if (!params.empty()) {
    return invalid_argument("layout '" + desc->name +
                            "' takes no parameters");
  }

  auto arr = std::make_unique<RegistryArrangement>(
      desc, cfg, desc->display_name ? desc->display_name(cfg) : desc->name);
  if (!arr->is_bijection())
    return failed_precondition("layout '" + arr->name() +
                               "' is not a bijection at n = " +
                               std::to_string(n));
  return ArrangementPtr(std::move(arr));
}

std::vector<Pos> rebuild_reads(const RegistryArrangement& arr,
                               int failed_data_disk) {
  const auto& desc = arr.descriptor();
  if (desc.rebuild_read_set)
    return desc.rebuild_read_set(arr.config(), failed_data_disk);
  std::vector<Pos> reads;
  reads.reserve(static_cast<std::size_t>(arr.n()));
  for (int j = 0; j < arr.n(); ++j)
    reads.push_back(arr.mirror_of(failed_data_disk, j));
  return reads;
}

int rebuild_read_accesses(const RegistryArrangement& arr,
                          int failed_data_disk) {
  std::vector<int> per_disk(static_cast<std::size_t>(arr.n()), 0);
  int max = 0;
  for (const Pos& read : rebuild_reads(arr, failed_data_disk))
    max = std::max(max, ++per_disk[static_cast<std::size_t>(read.disk)]);
  return max;
}

}  // namespace sma::layout
