// Counting and enumerating "equally powerful" arrangements — making
// the paper's Section VI-E ("The arrangement in this paper is not the
// only approach ... other arrangements that satisfy the three
// properties could also be used") quantitative.
//
// Structure theorem (verified exhaustively by tests for small n): write
// an arrangement as d(i, j) = mirror disk of a(i, j) plus a row
// assignment within each mirror disk. Then
//
//   * P1 says every row of d (fixed i) is a permutation of the disks;
//   * P3 says every column of d (fixed j) is a permutation;
//     so  P1 ∧ P3  ⇔  d is a LATIN SQUARE;
//   * P2 is IMPLIED by P1 whenever the arrangement is a bijection
//     (each data disk sends exactly one element to each mirror disk,
//     so each mirror disk holds one element per data disk);
//   * the row assignment is free: any per-mirror-disk bijection of the
//     n incoming elements onto the n rows works.
//
// Hence the number of arrangements with all three properties is
// exactly  L(n) · (n!)^n,  L(n) = number of n x n Latin squares.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "layout/arrangement.hpp"

namespace sma::layout {

/// Number of n x n Latin squares (entries 0..n-1, no symmetry
/// reduction), by backtracking. Practical for n <= 5 (L(5) = 161280).
std::uint64_t count_latin_squares(int n);

/// Closed-form count of bijective arrangements satisfying P1 ∧ P2 ∧ P3:
/// L(n) · (n!)^n.
std::uint64_t count_valid_arrangements(int n);

/// Visit every disk-assignment Latin square d (as row-major vectors
/// d[i*n+j] = mirror disk of a(i,j)). Stops early if the visitor
/// returns false.
void for_each_latin_square(
    int n, const std::function<bool(const std::vector<int>&)>& visit);

/// Build a concrete valid arrangement from a Latin square plus a row
/// assignment choice: rows are assigned in first-come order per mirror
/// disk (a canonical representative of the (n!)^n family).
ArrangementPtr arrangement_from_latin_square(const std::vector<int>& square,
                                             int n);

/// Brute-force census over ALL bijective arrangements of the n x n
/// grid (n <= 3 — (n*n)! grows fast). Returns counts of bijections
/// satisfying each property combination; used to verify the structure
/// theorem exhaustively.
struct ArrangementCensus {
  std::uint64_t total = 0;          // all bijections
  std::uint64_t p1 = 0;             // satisfying P1
  std::uint64_t p1_and_not_p2 = 0;  // must be 0 (P1 implies P2)
  std::uint64_t p1_p3 = 0;          // satisfying P1 and P3 (== all three)
};
ArrangementCensus census_all_arrangements(int n);

}  // namespace sma::layout
