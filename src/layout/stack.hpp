// Stack rotation: logical-to-physical disk mapping rotated stripe by
// stripe (paper Section II-A).
//
// A "stack" is the smallest group of stripes in which the rotation runs
// through every cyclic logical->physical assignment, so that the loss
// of any one (or two) physical disks covers every combination of one
// (or two) logical disk failures. This is what lets the paper measure
// average-case behaviour by rigorous counting on a single stripe
// (Hafner et al.'s methodology, [14]).
#pragma once

#include <vector>

namespace sma::layout {

class StackMapper {
 public:
  explicit StackMapper(int total_disks);

  int total_disks() const { return total_disks_; }
  /// Number of stripes in one full stack (== total_disks for cyclic
  /// rotation).
  int stripes_per_stack() const { return total_disks_; }

  /// Physical disk hosting logical disk `logical` in stripe `stripe`.
  int physical_of(int logical, int stripe) const;
  /// Logical disk that physical disk `physical` plays in stripe `stripe`.
  int logical_of(int physical, int stripe) const;

  /// For a set of failed *physical* disks, the failed *logical* disks in
  /// each stripe of one stack (outer index: stripe).
  std::vector<std::vector<int>> failed_logical_per_stripe(
      const std::vector<int>& failed_physical) const;

 private:
  int total_disks_;
};

}  // namespace sma::layout
