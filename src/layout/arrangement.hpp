// Mirror-array element arrangements — the paper's core contribution.
//
// A MirrorArrangement is a bijection telling where the replica of data
// element a(i, j) (data disk i, row j) lives inside the mirror disk
// array. The paper's shifted arrangement is
//
//     mirror_of(i, j) = ( <i + j> mod n , i )
//
// i.e. data-disk columns become mirror rows, each loop-shifted by its
// data-disk index (paper Section IV-A). The traditional mirror is the
// identity map. Iterating the paper's transformation function (Section
// VI-E, Fig. 8) yields a family of further arrangements.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace sma::layout {

/// A (disk, row) coordinate inside one stripe of a disk array.
struct Pos {
  int disk = 0;
  int row = 0;
  bool operator==(const Pos&) const = default;
};

class MirrorArrangement {
 public:
  virtual ~MirrorArrangement() = default;

  virtual std::string name() const = 0;
  virtual int n() const = 0;

  /// Mirror-array position of the replica of data element a(i, j).
  virtual Pos mirror_of(int data_disk, int data_row) const = 0;

  /// Inverse: which data element the mirror cell (disk, row) replicates.
  /// Default implementation searches via partner_of; subclasses override
  /// with closed forms where available. Only valid on bijective
  /// arrangements — for unvalidated maps use partner_of, which reports
  /// the malformed case instead of handing back a sentinel.
  virtual Pos data_of(int mirror_disk, int mirror_row) const;

  /// Inverse by exhaustive search, safe on malformed (non-bijective)
  /// maps: nullopt when no data element maps to the mirror cell.
  std::optional<Pos> partner_of(int mirror_disk, int mirror_row) const;

  /// True when mirror_of is a bijection on the n x n grid (sanity check
  /// used by tests and by IteratedArrangement construction).
  bool is_bijection() const;
};

using ArrangementPtr = std::unique_ptr<MirrorArrangement>;

/// RAID-1 identity arrangement: b(i, j) = a(i, j).
class TraditionalArrangement final : public MirrorArrangement {
 public:
  explicit TraditionalArrangement(int n);
  std::string name() const override { return "traditional"; }
  int n() const override { return n_; }
  Pos mirror_of(int data_disk, int data_row) const override;
  Pos data_of(int mirror_disk, int mirror_row) const override;

 private:
  int n_;
};

/// The paper's shifted arrangement: b(<i+j>_n, i) = a(i, j).
class ShiftedArrangement final : public MirrorArrangement {
 public:
  explicit ShiftedArrangement(int n);
  std::string name() const override { return "shifted"; }
  int n() const override { return n_; }
  Pos mirror_of(int data_disk, int data_row) const override;
  Pos data_of(int mirror_disk, int mirror_row) const override;

 private:
  int n_;
};

/// Arrangement given by an explicit n x n table (mirror position per
/// data element); used for the iterated transformation family and for
/// experimenting with custom layouts.
class TableArrangement final : public MirrorArrangement {
 public:
  /// table[i][j] = mirror position of a(i, j); must be a bijection.
  TableArrangement(std::string name, std::vector<std::vector<Pos>> table);

  std::string name() const override { return name_; }
  int n() const override { return static_cast<int>(table_.size()); }
  Pos mirror_of(int data_disk, int data_row) const override;
  Pos data_of(int mirror_disk, int mirror_row) const override;

 private:
  std::string name_;
  std::vector<std::vector<Pos>> table_;      // [disk][row] -> mirror pos
  std::vector<std::vector<Pos>> inverse_;    // [m.disk][m.row] -> data pos
};

/// Apply the paper's transformation function once: the arrangement that
/// maps each *column* of the previous arrangement onto a loop-shifted
/// *row* (Fig. 8's step). Formally, if the input arrangement places the
/// replica of a(i, j) at position q, the output places it at
/// shift(q) = (<q.disk + q.row>_n, q.disk).
ArrangementPtr apply_shift_transform(const MirrorArrangement& prev);

/// The arrangement after `iterations` applications of the transform to
/// the identity. iterations == 1 gives the shifted arrangement.
ArrangementPtr make_iterated(int n, int iterations);

/// Factory by registry spec ("traditional", "shifted", "lrc:groups=2",
/// "iterated:3", ...) — resolves through AlgorithmRegistry::global()
/// (see layout/registry.hpp for the descriptor API).
Result<ArrangementPtr> make_arrangement(const std::string& kind, int n);

/// Closed form of the iterated transform. The transform acts linearly
/// on coordinates: T(i, j) = (i + j, i) mod n, i.e. the matrix
/// [[1,1],[1,0]], whose k-th power is [[F(k+1), F(k)], [F(k), F(k-1)]]
/// with F the Fibonacci sequence. Hence the k-th iterate maps a(i, j)
/// to mirror position (F(k+1) i + F(k) j, F(k) i + F(k-1) j) mod n.
///
/// This refines the paper's Section VI-E: "odd iterates satisfy P1 and
/// P2" is exact only when gcd(F(k), n) == 1 (e.g. k = 3 has F(3) = 2,
/// so even n breaks P1/P2); P3 holds iff gcd(F(k+1), n) == 1. For the
/// paper's n = 3 example both statements agree with its Fig. 8.
bool iterate_satisfies_p1p2(int n, int iterations);
bool iterate_satisfies_p3(int n, int iterations);

/// Render the data array and mirror array element labels side by side in
/// the style of the paper's Figs. 1 and 3 (labels 1..n*n, row-major in
/// the data array).
std::string render_arrays(const MirrorArrangement& arr);

}  // namespace sma::layout
