#include "layout/enumeration.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "layout/properties.hpp"

namespace sma::layout {

namespace {

/// Backtracking Latin-square filler: cell-by-cell, row-major.
void fill_latin(int n, std::vector<int>& square, std::size_t cell,
                std::vector<std::uint32_t>& row_used,
                std::vector<std::uint32_t>& col_used,
                const std::function<bool(const std::vector<int>&)>& visit,
                bool& keep_going) {
  if (!keep_going) return;
  if (cell == square.size()) {
    keep_going = visit(square);
    return;
  }
  const int r = static_cast<int>(cell) / n;
  const int c = static_cast<int>(cell) % n;
  for (int v = 0; v < n && keep_going; ++v) {
    const std::uint32_t bit = 1u << v;
    if ((row_used[static_cast<std::size_t>(r)] & bit) ||
        (col_used[static_cast<std::size_t>(c)] & bit))
      continue;
    square[cell] = v;
    row_used[static_cast<std::size_t>(r)] |= bit;
    col_used[static_cast<std::size_t>(c)] |= bit;
    fill_latin(n, square, cell + 1, row_used, col_used, visit, keep_going);
    row_used[static_cast<std::size_t>(r)] &= ~bit;
    col_used[static_cast<std::size_t>(c)] &= ~bit;
  }
}

std::uint64_t factorial(int n) {
  std::uint64_t f = 1;
  for (int i = 2; i <= n; ++i) f *= static_cast<std::uint64_t>(i);
  return f;
}

std::uint64_t ipow(std::uint64_t base, int exp) {
  std::uint64_t out = 1;
  for (int i = 0; i < exp; ++i) out *= base;
  return out;
}

}  // namespace

void for_each_latin_square(
    int n, const std::function<bool(const std::vector<int>&)>& visit) {
  assert(n >= 1);
  std::vector<int> square(static_cast<std::size_t>(n) * n, -1);
  std::vector<std::uint32_t> row_used(static_cast<std::size_t>(n), 0);
  std::vector<std::uint32_t> col_used(static_cast<std::size_t>(n), 0);
  bool keep_going = true;
  fill_latin(n, square, 0, row_used, col_used, visit, keep_going);
}

std::uint64_t count_latin_squares(int n) {
  std::uint64_t count = 0;
  for_each_latin_square(n, [&](const std::vector<int>&) {
    ++count;
    return true;
  });
  return count;
}

std::uint64_t count_valid_arrangements(int n) {
  return count_latin_squares(n) * ipow(factorial(n), n);
}

ArrangementPtr arrangement_from_latin_square(const std::vector<int>& square,
                                             int n) {
  assert(static_cast<int>(square.size()) == n * n);
  std::vector<std::vector<Pos>> table(
      static_cast<std::size_t>(n), std::vector<Pos>(static_cast<std::size_t>(n)));
  std::vector<int> next_row(static_cast<std::size_t>(n), 0);
  // Scan data elements column-major (disk i, then row j) and give each
  // element the next free row on its target mirror disk.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const int disk = square[static_cast<std::size_t>(i) * n + j];
      assert(disk >= 0 && disk < n);
      table[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          Pos{disk, next_row[static_cast<std::size_t>(disk)]++};
    }
  }
  return std::make_unique<TableArrangement>("latin-derived", std::move(table));
}

ArrangementCensus census_all_arrangements(int n) {
  assert(n >= 1 && n <= 3 && "census is factorial in n*n");
  ArrangementCensus census;

  // A bijective arrangement is a permutation of the n*n cells.
  const int cells = n * n;
  std::vector<int> perm(static_cast<std::size_t>(cells));
  std::iota(perm.begin(), perm.end(), 0);
  do {
    ++census.total;
    std::vector<std::vector<Pos>> table(
        static_cast<std::size_t>(n),
        std::vector<Pos>(static_cast<std::size_t>(n)));
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) {
        const int target = perm[static_cast<std::size_t>(i) * n + j];
        table[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            Pos{target / n, target % n};
      }
    TableArrangement arr("census", std::move(table));
    const bool p1 = check_property1(arr).is_ok();
    if (!p1) continue;
    ++census.p1;
    if (!check_property2(arr).is_ok()) ++census.p1_and_not_p2;
    if (check_property3(arr).is_ok()) ++census.p1_p3;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return census;
}

}  // namespace sma::layout
