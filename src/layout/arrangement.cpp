#include "layout/arrangement.hpp"

#include <cassert>
#include <sstream>
#include <utility>

#include "layout/registry.hpp"

namespace sma::layout {

namespace {
int mod(int x, int m) {
  const int r = x % m;
  return r < 0 ? r + m : r;
}
}  // namespace

Pos MirrorArrangement::data_of(int mirror_disk, int mirror_row) const {
  const auto partner = partner_of(mirror_disk, mirror_row);
  return partner ? *partner : Pos{-1, -1};
}

std::optional<Pos> MirrorArrangement::partner_of(int mirror_disk,
                                                 int mirror_row) const {
  const int size = n();
  for (int i = 0; i < size; ++i) {
    for (int j = 0; j < size; ++j) {
      const Pos p = mirror_of(i, j);
      if (p.disk == mirror_disk && p.row == mirror_row) return Pos{i, j};
    }
  }
  return std::nullopt;
}

bool MirrorArrangement::is_bijection() const {
  const int size = n();
  std::vector<std::vector<bool>> seen(
      static_cast<std::size_t>(size),
      std::vector<bool>(static_cast<std::size_t>(size), false));
  for (int i = 0; i < size; ++i) {
    for (int j = 0; j < size; ++j) {
      const Pos p = mirror_of(i, j);
      if (p.disk < 0 || p.disk >= size || p.row < 0 || p.row >= size)
        return false;
      auto cell = seen[static_cast<std::size_t>(p.disk)]
                      [static_cast<std::size_t>(p.row)];
      if (cell) return false;
      seen[static_cast<std::size_t>(p.disk)][static_cast<std::size_t>(p.row)] =
          true;
    }
  }
  return true;
}

TraditionalArrangement::TraditionalArrangement(int n) : n_(n) {
  assert(n >= 1);
}

Pos TraditionalArrangement::mirror_of(int data_disk, int data_row) const {
  assert(data_disk >= 0 && data_disk < n_ && data_row >= 0 && data_row < n_);
  return {data_disk, data_row};
}

Pos TraditionalArrangement::data_of(int mirror_disk, int mirror_row) const {
  return {mirror_disk, mirror_row};
}

ShiftedArrangement::ShiftedArrangement(int n) : n_(n) { assert(n >= 1); }

Pos ShiftedArrangement::mirror_of(int data_disk, int data_row) const {
  assert(data_disk >= 0 && data_disk < n_ && data_row >= 0 && data_row < n_);
  // a(i, j) -> b(<i+j>_n, i)
  return {mod(data_disk + data_row, n_), data_disk};
}

Pos ShiftedArrangement::data_of(int mirror_disk, int mirror_row) const {
  assert(mirror_disk >= 0 && mirror_disk < n_ && mirror_row >= 0 &&
         mirror_row < n_);
  // b(i, j) = a(j, <i-j>_n)
  return {mirror_row, mod(mirror_disk - mirror_row, n_)};
}

TableArrangement::TableArrangement(std::string name,
                                   std::vector<std::vector<Pos>> table)
    : name_(std::move(name)), table_(std::move(table)) {
  const int size = static_cast<int>(table_.size());
  assert(size >= 1);
  inverse_.assign(static_cast<std::size_t>(size),
                  std::vector<Pos>(static_cast<std::size_t>(size), {-1, -1}));
  for (int i = 0; i < size; ++i) {
    assert(static_cast<int>(table_[static_cast<std::size_t>(i)].size()) ==
           size);
    for (int j = 0; j < size; ++j) {
      const Pos p = table_[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(j)];
      assert(p.disk >= 0 && p.disk < size && p.row >= 0 && p.row < size);
      auto& inv = inverse_[static_cast<std::size_t>(p.disk)]
                          [static_cast<std::size_t>(p.row)];
      assert(inv.disk == -1 && "table arrangement is not a bijection");
      inv = {i, j};
    }
  }
}

Pos TableArrangement::mirror_of(int data_disk, int data_row) const {
  return table_[static_cast<std::size_t>(data_disk)]
               [static_cast<std::size_t>(data_row)];
}

Pos TableArrangement::data_of(int mirror_disk, int mirror_row) const {
  return inverse_[static_cast<std::size_t>(mirror_disk)]
                 [static_cast<std::size_t>(mirror_row)];
}

ArrangementPtr apply_shift_transform(const MirrorArrangement& prev) {
  const int n = prev.n();
  std::vector<std::vector<Pos>> table(
      static_cast<std::size_t>(n),
      std::vector<Pos>(static_cast<std::size_t>(n)));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const Pos q = prev.mirror_of(i, j);
      // One more application of: column index becomes row, row shifts
      // the destination column.
      table[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = {
          mod(q.disk + q.row, n), q.disk};
    }
  }
  return std::make_unique<TableArrangement>(prev.name() + "+shift",
                                            std::move(table));
}

ArrangementPtr make_iterated(int n, int iterations) {
  assert(iterations >= 0);
  ArrangementPtr current = std::make_unique<TraditionalArrangement>(n);
  for (int step = 0; step < iterations; ++step)
    current = apply_shift_transform(*current);
  // Give the composite a concise name.
  std::vector<std::vector<Pos>> table(
      static_cast<std::size_t>(n),
      std::vector<Pos>(static_cast<std::size_t>(n)));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      table[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          current->mirror_of(i, j);
  return std::make_unique<TableArrangement>(
      "iterated(" + std::to_string(iterations) + ")", std::move(table));
}

Result<ArrangementPtr> make_arrangement(const std::string& kind, int n) {
  if (n < 1) return invalid_argument("arrangement needs n >= 1");
  return AlgorithmRegistry::global().make(kind, n);
}

namespace {
/// (F(k) mod n, F(k+1) mod n), computed iteratively to avoid overflow.
std::pair<int, int> fibonacci_mod(int k, int n) {
  assert(k >= 0 && n >= 1);
  int fk = 0;        // F(0)
  int fk1 = 1 % n;   // F(1)
  for (int step = 0; step < k; ++step) {
    const int next = (fk + fk1) % n;
    fk = fk1;
    fk1 = next;
  }
  return {fk, fk1};
}

int gcd(int a, int b) {
  while (b != 0) {
    const int t = a % b;
    a = b;
    b = t;
  }
  return a;
}
}  // namespace

bool iterate_satisfies_p1p2(int n, int iterations) {
  if (n == 1) return true;
  const auto [fk, fk1] = fibonacci_mod(iterations, n);
  (void)fk1;
  // gcd(0, n) == n, so F(k) ≡ 0 (mod n) correctly fails for n > 1.
  return gcd(fk == 0 ? n : fk, n) == 1;
}

bool iterate_satisfies_p3(int n, int iterations) {
  if (n == 1) return true;
  const auto [fk, fk1] = fibonacci_mod(iterations, n);
  (void)fk;
  return gcd(fk1 == 0 ? n : fk1, n) == 1;
}

std::string render_arrays(const MirrorArrangement& arr) {
  const int n = arr.n();
  // Label elements 1..n*n row-major as the paper's figures do.
  auto label = [&](int disk, int row) { return row * n + disk + 1; };
  std::ostringstream out;
  out << "data disk array" << std::string(
             static_cast<std::size_t>(std::max(1, 4 * n - 12)), ' ')
      << " | mirror disk array (" << arr.name() << ")\n";
  for (int row = 0; row < n; ++row) {
    for (int disk = 0; disk < n; ++disk) out << ' ' << label(disk, row) << ' ';
    out << "   |  ";
    for (int disk = 0; disk < n; ++disk) {
      const Pos src = arr.data_of(disk, row);
      out << ' ' << label(src.disk, src.row) << ' ';
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace sma::layout
