#include "layout/architecture.hpp"

#include <cassert>
#include <utility>

#include "ec/prime.hpp"
#include "layout/registry.hpp"

namespace sma::layout {

Architecture Architecture::mirror(int n, bool shifted) {
  assert(n >= 1);
  Architecture a;
  a.kind_ = shifted ? ArchKind::kMirrorShifted : ArchKind::kMirrorTraditional;
  a.n_ = n;
  a.rows_ = n;
  a.total_disks_ = 2 * n;
  a.layout_spec_ = shifted ? "shifted" : "traditional";
  if (shifted)
    a.arrangement_ = std::make_shared<ShiftedArrangement>(n);
  else
    a.arrangement_ = std::make_shared<TraditionalArrangement>(n);
  return a;
}

Architecture Architecture::mirror_with_parity(int n, bool shifted) {
  Architecture a = mirror(n, shifted);
  a.kind_ = shifted ? ArchKind::kMirrorParityShifted
                    : ArchKind::kMirrorParityTraditional;
  a.total_disks_ = 2 * n + 1;
  return a;
}

Result<Architecture> Architecture::mirror_named(int n,
                                                const std::string& layout) {
  if (n < 1) return invalid_argument("mirror architecture needs n >= 1");
  const auto& registry = AlgorithmRegistry::global();
  auto spec = parse_layout_spec(layout);
  if (!spec.is_ok()) return spec.status();
  auto canonical = registry.canonical(spec.value().name);
  if (!canonical.is_ok()) return canonical.status();
  // The classic kinds keep their direct-class arrangements so every
  // pre-registry name and result stays bit-identical.
  if (spec.value().params.empty()) {
    if (canonical.value() == "traditional") return mirror(n, false);
    if (canonical.value() == "shifted") return mirror(n, true);
  }
  auto arr = registry.make(spec.value(), n);
  if (!arr.is_ok()) return arr.status();
  Architecture a;
  a.kind_ = ArchKind::kMirrorCustom;
  a.n_ = n;
  a.rows_ = n;
  a.total_disks_ = 2 * n;
  a.layout_spec_ = layout;
  a.arrangement_ = std::shared_ptr<const MirrorArrangement>(
      std::move(arr).take());
  return a;
}

Result<Architecture> Architecture::mirror_with_parity_named(
    int n, const std::string& layout) {
  auto base = mirror_named(n, layout);
  if (!base.is_ok()) return base.status();
  Architecture a = std::move(base).take();
  if (a.kind_ == ArchKind::kMirrorCustom) {
    const auto* reg =
        dynamic_cast<const RegistryArrangement*>(a.arrangement_.get());
    if (reg != nullptr && !reg->descriptor().supports_second_failure)
      return failed_precondition("layout '" + a.arrangement_->name() +
                                 "' does not support the second-failure "
                                 "(mirror + parity) machinery");
    a.kind_ = ArchKind::kMirrorParityCustom;
  } else {
    a.kind_ = a.kind_ == ArchKind::kMirrorShifted
                  ? ArchKind::kMirrorParityShifted
                  : ArchKind::kMirrorParityTraditional;
  }
  a.total_disks_ = 2 * n + 1;
  return a;
}

Architecture Architecture::raid5(int n) {
  assert(n >= 1);
  Architecture a;
  a.kind_ = ArchKind::kRaid5;
  a.n_ = n;
  a.rows_ = n;  // same stripe depth convention as the mirror methods
  a.total_disks_ = n + 1;
  return a;
}

Architecture Architecture::raid6(int n) {
  assert(n >= 1);
  Architecture a;
  a.kind_ = ArchKind::kRaid6;
  a.n_ = n;
  // Shortened prime code (EVENODD/RDP style): stripe depth p-1 with the
  // smallest prime p >= n+1. This is what makes the paper's Fig. 7
  // RAID-6 throughput "a little lower" than the traditional mirror
  // method with parity.
  a.rows_ = ec::next_prime_at_least(std::max(3, n + 1)) - 1;
  a.total_disks_ = n + 2;
  return a;
}

int Architecture::fault_tolerance() const {
  switch (kind_) {
    case ArchKind::kMirrorTraditional:
    case ArchKind::kMirrorShifted:
    case ArchKind::kMirrorCustom:
    case ArchKind::kRaid5:
      return 1;
    case ArchKind::kMirrorParityTraditional:
    case ArchKind::kMirrorParityShifted:
    case ArchKind::kMirrorParityCustom:
    case ArchKind::kRaid6:
      return 2;
  }
  return 0;
}

double Architecture::storage_efficiency() const {
  const double data_disks = n_;
  return data_disks / total_disks_;
}

bool Architecture::is_mirror() const {
  return kind_ != ArchKind::kRaid5 && kind_ != ArchKind::kRaid6;
}

bool Architecture::is_shifted() const {
  return kind_ == ArchKind::kMirrorShifted ||
         kind_ == ArchKind::kMirrorParityShifted;
}

bool Architecture::has_parity() const {
  return kind_ == ArchKind::kMirrorParityTraditional ||
         kind_ == ArchKind::kMirrorParityShifted ||
         kind_ == ArchKind::kMirrorParityCustom ||
         kind_ == ArchKind::kRaid5 || kind_ == ArchKind::kRaid6;
}

int Architecture::parity_disks() const {
  switch (kind_) {
    case ArchKind::kMirrorTraditional:
    case ArchKind::kMirrorShifted:
    case ArchKind::kMirrorCustom:
      return 0;
    case ArchKind::kMirrorParityTraditional:
    case ArchKind::kMirrorParityShifted:
    case ArchKind::kMirrorParityCustom:
    case ArchKind::kRaid5:
      return 1;
    case ArchKind::kRaid6:
      return 2;
  }
  return 0;
}

std::string Architecture::name() const {
  switch (kind_) {
    case ArchKind::kMirrorTraditional: return "mirror-traditional";
    case ArchKind::kMirrorShifted: return "mirror-shifted";
    case ArchKind::kMirrorParityTraditional: return "mirror-parity-traditional";
    case ArchKind::kMirrorParityShifted: return "mirror-parity-shifted";
    case ArchKind::kMirrorCustom: return "mirror-" + arrangement_->name();
    case ArchKind::kMirrorParityCustom:
      return "mirror-parity-" + arrangement_->name();
    case ArchKind::kRaid5: return "raid5";
    case ArchKind::kRaid6: return "raid6-shortened";
  }
  return "unknown";
}

int Architecture::data_disk(int i) const {
  assert(i >= 0 && i < n_);
  return i;
}

int Architecture::mirror_disk(int i) const {
  assert(is_mirror());
  assert(i >= 0 && i < n_);
  return n_ + i;
}

int Architecture::parity_disk(int which) const {
  assert(has_parity());
  assert(which >= 0 && which < parity_disks());
  if (is_mirror()) return 2 * n_ + which;
  return n_ + which;
}

DiskRole Architecture::role_of(int disk) const {
  assert(disk >= 0 && disk < total_disks_);
  if (disk < n_) return DiskRole::kData;
  if (is_mirror()) return disk < 2 * n_ ? DiskRole::kMirror : DiskRole::kParity;
  return DiskRole::kParity;
}

int Architecture::role_index(int disk) const {
  switch (role_of(disk)) {
    case DiskRole::kData: return disk;
    case DiskRole::kMirror: return disk - n_;
    case DiskRole::kParity: return disk - (is_mirror() ? 2 * n_ : n_);
  }
  return -1;
}

Pos Architecture::replica_of(int data_disk_index, int row) const {
  assert(is_mirror());
  const Pos local = arrangement_->mirror_of(data_disk_index, row);
  return {mirror_disk(local.disk), local.row};
}

Pos Architecture::replicated_by(int mirror_disk_index, int row) const {
  assert(is_mirror());
  return arrangement_->data_of(mirror_disk_index, row);
}

}  // namespace sma::layout
