// Layout-algorithm plugin registry — the descriptor API behind every
// mirror element arrangement.
//
// The paper's shifted arrangement is one point in a whole family of
// element placements. Instead of a subclass per family member (the
// pre-registry shape), each layout is a small self-describing
// descriptor in the style of raidixlab/insane_striping's
// `struct insane_algorithm`:
//
//   * a `name` (the registry key — what `--arrangement=` resolves),
//   * element/parity/spare counts describing one stripe,
//   * a pure `map(config, logical) -> Pos` placement function,
//   * an optional `configure(params)` hook validating parameters
//     ("lrc:groups=2" style), and
//   * capability flags: `supports_second_failure` (usable under the
//     parity-protected double-failure machinery) and an optional
//     `rebuild_read_set` (closed-form minimal read set for a failed
//     data disk — layouts with rebuild locality, like LRC, enumerate
//     it without scanning the map).
//
// Built-in descriptors: the four pre-registry arrangements
// (traditional, shifted, table-backed iterated, and the iterated
// transformation family in closed form) plus three exotic layouts from
// the related-work line-up — an LRC-style local-group layout, a
// pyramid/RAID-7-style two-level layout, and a zigzag rebuild-optimal
// layout ("On Codes for Optimal Rebuilding Access"). Adding a layout
// is <50 LoC: write the map (and ideally its inverse), register a
// descriptor — see docs/LAYOUTS.md.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "layout/arrangement.hpp"
#include "util/status.hpp"

namespace sma::layout {

/// Key=value parameters attached to a layout spec ("lrc:groups=2").
using LayoutParams = std::map<std::string, std::string>;

/// A parsed layout spec: "name[:key=value[,key=value]...]". A bare
/// value ("iterated:3") binds to the descriptor's default_param.
struct LayoutSpec {
  std::string name;
  LayoutParams params;
};

Result<LayoutSpec> parse_layout_spec(std::string_view spec);

/// Validated per-instance configuration a descriptor's map runs
/// against. `configure` fills the layout-specific fields from the raw
/// params; `map` must be a pure function of (config, logical position).
struct LayoutConfig {
  int n = 0;           // data disks == rows per stripe
  int groups = 1;      // lrc/pyramid: local groups (n % groups == 0)
  int iterations = 1;  // iterated: applications of the Fig. 8 transform
};

struct LayoutDescriptor {
  /// Registry key and `--arrangement=` spelling.
  std::string name;
  /// One-line description (shown by `smactl layouts`).
  std::string summary;

  // --- element/parity/spare counts (per stripe, in units of n) --------
  /// Replicas stored per data element (mirror organizations: 1).
  int replicas_per_element = 1;
  /// Parity disks the layout itself brings (the mirror-with-parity
  /// wrapper adds its own global parity column on top).
  int parity_disks = 0;
  /// Spare disks the layout reserves (none of the built-ins do; the
  /// repair layer's spare pools are orthogonal).
  int spare_disks = 0;
  /// Smallest n the map is defined for.
  int min_n = 1;

  // --- capability flags -----------------------------------------------
  /// Safe under the fault-tolerance-2 (mirror + parity) double-failure
  /// planner and enumeration. All built-ins support it; a layout that
  /// reserves cells or breaks the bijection contract must say no, and
  /// Architecture::mirror_with_parity_named refuses to build it.
  bool supports_second_failure = true;

  // --- behaviour ------------------------------------------------------
  /// Pure placement function: mirror-array position of the replica of
  /// data element a(pos.disk, pos.row). Must be a bijection of the
  /// n x n grid (enforced by AlgorithmRegistry::make).
  std::function<Pos(const LayoutConfig&, Pos)> map;
  /// Optional closed-form inverse of `map`; when absent lookups fall
  /// back to MirrorArrangement::partner_of's grid search.
  std::function<Pos(const LayoutConfig&, Pos)> inverse;
  /// Optional parameter hook: validate/normalize `params` into `cfg`
  /// (cfg.n is pre-filled). Specs with parameters are rejected when the
  /// descriptor has no configure hook.
  std::function<Status(const LayoutParams& params, LayoutConfig& cfg)>
      configure;
  /// Optional capability: closed-form minimal mirror-array read set for
  /// rebuilding a failed data disk (one Pos per lost element). Layouts
  /// with rebuild locality (LRC groups) enumerate it directly; when
  /// absent, rebuild_reads() derives it from `map`.
  std::function<std::vector<Pos>(const LayoutConfig&, int failed_data_disk)>
      rebuild_read_set;
  /// Display name for an instance ("iterated(3)"); defaults to `name`.
  std::function<std::string(const LayoutConfig&)> display_name;
  /// Key a bare spec value binds to ("iterated:3" == both spellings of
  /// "iterated:iterations=3").
  std::string default_param;
};

/// A MirrorArrangement backed by a registry descriptor.
class RegistryArrangement final : public MirrorArrangement {
 public:
  RegistryArrangement(const LayoutDescriptor* desc, LayoutConfig cfg,
                      std::string display);

  std::string name() const override { return display_; }
  int n() const override { return cfg_.n; }
  Pos mirror_of(int data_disk, int data_row) const override;
  Pos data_of(int mirror_disk, int mirror_row) const override;

  const LayoutDescriptor& descriptor() const { return *desc_; }
  const LayoutConfig& config() const { return cfg_; }

 private:
  const LayoutDescriptor* desc_;  // owned by the registry
  LayoutConfig cfg_;
  std::string display_;
};

class AlgorithmRegistry {
 public:
  /// The process-wide registry, populated with the built-in layouts
  /// (and their pre-registry alias spellings) on first use.
  static AlgorithmRegistry& global();

  /// Empty registry for tests and experiments.
  AlgorithmRegistry() = default;

  /// kAlreadyExists when the name (or an alias) is taken;
  /// kInvalidArgument when the descriptor is malformed (empty name, no
  /// map).
  Status add(LayoutDescriptor desc);
  /// Alternative spelling for an existing layout ("mirror-shifted" ->
  /// "shifted" — the pre-registry enum names, kept one release).
  Status add_alias(const std::string& alias, const std::string& target);

  /// Descriptor by name or alias; kNotFound with the known names when
  /// unknown.
  Result<const LayoutDescriptor*> find(std::string_view name) const;
  /// Canonical name for a name or alias.
  Result<std::string> canonical(std::string_view name) const;
  /// Canonical layout names, registration order.
  std::vector<std::string> names() const;

  /// Resolve a spec ("lrc:groups=2"), run the configure hook, check the
  /// map is a bijection of the n x n grid, and build the arrangement.
  Result<ArrangementPtr> make(std::string_view spec, int n) const;
  /// Same, from an already-parsed spec.
  Result<ArrangementPtr> make(const LayoutSpec& spec, int n) const;

 private:
  std::vector<std::string> order_;                 // canonical names
  std::map<std::string, LayoutDescriptor> descriptors_;
  std::map<std::string, std::string> aliases_;     // alias -> canonical
};

/// The mirror-array element reads needed to rebuild failed data disk
/// `failed_data_disk` of one stripe: the descriptor's closed-form
/// rebuild_read_set when it has one, else derived from the map. The
/// paper's read-access metric is the max per-disk count of this set.
std::vector<Pos> rebuild_reads(const RegistryArrangement& arr,
                               int failed_data_disk);

/// Max per-disk read count of rebuild_reads — the per-stripe rebuild
/// element reads the bench compares layouts by.
int rebuild_read_accesses(const RegistryArrangement& arr,
                          int failed_data_disk);

}  // namespace sma::layout
