#include "layout/stack.hpp"

#include <cassert>

namespace sma::layout {

StackMapper::StackMapper(int total_disks) : total_disks_(total_disks) {
  assert(total_disks >= 1);
}

int StackMapper::physical_of(int logical, int stripe) const {
  assert(logical >= 0 && logical < total_disks_);
  assert(stripe >= 0);
  return (logical + stripe) % total_disks_;
}

int StackMapper::logical_of(int physical, int stripe) const {
  assert(physical >= 0 && physical < total_disks_);
  assert(stripe >= 0);
  const int l = (physical - stripe) % total_disks_;
  return l < 0 ? l + total_disks_ : l;
}

std::vector<std::vector<int>> StackMapper::failed_logical_per_stripe(
    const std::vector<int>& failed_physical) const {
  std::vector<std::vector<int>> out(
      static_cast<std::size_t>(stripes_per_stack()));
  for (int stripe = 0; stripe < stripes_per_stack(); ++stripe) {
    auto& row = out[static_cast<std::size_t>(stripe)];
    row.reserve(failed_physical.size());
    for (const int phys : failed_physical)
      row.push_back(logical_of(phys, stripe));
  }
  return out;
}

}  // namespace sma::layout
