// Checkers for the paper's three structural properties of a mirror
// arrangement (Section IV-B and VI-C):
//
//  P1  the replicas of the elements of one data disk land on all n
//      mirror disks, one per mirror disk;
//  P2  the elements of one mirror disk come from all n data disks, one
//      per data disk;
//  P3  the replicas of the elements of one data *row* land on n
//      distinct mirror disks.
//
// P1+P2 give the one-read-access reconstruction; P3 preserves optimal
// large-write efficiency. The iterated family (Fig. 8) satisfies P1/P2
// on odd iterates but P3 only on some of them, which bench_fig8 maps.
#pragma once

#include <string>

#include "layout/arrangement.hpp"
#include "util/status.hpp"

namespace sma::layout {

/// OK, or kFailedPrecondition naming the first violated disk.
Status check_property1(const MirrorArrangement& arr);
Status check_property2(const MirrorArrangement& arr);
Status check_property3(const MirrorArrangement& arr);

struct PropertyReport {
  bool bijective = false;
  bool p1 = false;
  bool p2 = false;
  bool p3 = false;

  /// All of P1..P3 (the paper's requirements for an arrangement that is
  /// "equally powerful" to the shifted one).
  bool all() const { return bijective && p1 && p2 && p3; }
  std::string to_string() const;
};

PropertyReport evaluate_properties(const MirrorArrangement& arr);

}  // namespace sma::layout
