// Stripe-level RAID architectures assembled from arrangements + codecs.
//
// An Architecture fixes the disk population of one stripe (global disk
// indices), the per-disk row count, and — for mirror organizations —
// the element arrangement in the mirror array. The reconstruction
// planner (src/recon) consumes this description to derive read plans.
//
// Global disk numbering:
//   mirror kinds:          [0, n) data, [n, 2n) mirror, {2n} parity (if any)
//   raid5:                 [0, n) data, {n} parity
//   raid6 (shortened):     [0, n) data, {n, n+1} parity (P, Q)
#pragma once

#include <memory>
#include <string>

#include "layout/arrangement.hpp"

namespace sma::layout {

enum class ArchKind {
  kMirrorTraditional,
  kMirrorShifted,
  kMirrorParityTraditional,
  kMirrorParityShifted,
  // Mirror organization whose arrangement came from the layout registry
  // and is neither traditional nor shifted (lrc, pyramid, zigzag,
  // iterated:k, ...). Same disk population and planner behaviour as the
  // classic mirror kinds; only the element placement differs.
  kMirrorCustom,
  kMirrorParityCustom,
  kRaid5,
  kRaid6,
};

enum class DiskRole { kData, kMirror, kParity };

class Architecture {
 public:
  /// RAID-1 style: n data disks + n mirror disks, n rows per stripe.
  static Architecture mirror(int n, bool shifted);

  /// Fault-tolerance-2 variant: adds one parity disk with
  /// c_j = XOR_i a(i, j) (paper Section V).
  static Architecture mirror_with_parity(int n, bool shifted);

  /// Mirror built from a layout-registry spec ("shifted", "lrc:groups=2",
  /// "iterated:3", ...). Resolves through AlgorithmRegistry::global();
  /// traditional/shifted specs collapse to the classic kinds (so names
  /// and downstream results stay bit-identical), anything else becomes
  /// ArchKind::kMirrorCustom.
  static Result<Architecture> mirror_named(int n, const std::string& layout);

  /// Parity-protected variant of mirror_named. Refuses layouts whose
  /// descriptor clears supports_second_failure.
  static Result<Architecture> mirror_with_parity_named(
      int n, const std::string& layout);

  /// Comparators from the paper's background section.
  static Architecture raid5(int n);
  /// RAID-6 via a shortened prime code (rows = p-1, p = smallest prime
  /// >= n+1), matching the paper's Fig. 7 "shorten"-method comparator.
  static Architecture raid6(int n);

  ArchKind kind() const { return kind_; }
  int n() const { return n_; }
  int rows() const { return rows_; }
  int total_disks() const { return total_disks_; }
  int fault_tolerance() const;
  double storage_efficiency() const;
  std::string name() const;

  bool is_mirror() const;
  bool is_shifted() const;
  bool has_parity() const;
  int parity_disks() const;

  /// Registry spec that (re)builds this architecture's arrangement —
  /// "traditional"/"shifted" for the classic kinds, the originating
  /// spec for custom ones. Empty for RAID-5/6.
  const std::string& layout_spec() const { return layout_spec_; }

  /// Arrangement of the mirror array; nullptr for RAID-5/6.
  const MirrorArrangement* arrangement() const { return arrangement_.get(); }

  // --- global disk index helpers -------------------------------------
  int data_disk(int i) const;
  int mirror_disk(int i) const;
  int parity_disk(int which = 0) const;
  DiskRole role_of(int disk) const;
  /// Index within its role (data i, mirror i, or parity ordinal).
  int role_index(int disk) const;

  /// Global position of the replica of data element a(i, j); mirror
  /// kinds only.
  Pos replica_of(int data_disk_index, int row) const;
  /// Which data element the mirror cell (mirror index, row) replicates;
  /// mirror kinds only. Returned Pos.disk is the *data disk index*.
  Pos replicated_by(int mirror_disk_index, int row) const;

 private:
  Architecture() = default;

  ArchKind kind_ = ArchKind::kMirrorTraditional;
  int n_ = 0;
  int rows_ = 0;
  int total_disks_ = 0;
  std::string layout_spec_;
  std::shared_ptr<const MirrorArrangement> arrangement_;
};

}  // namespace sma::layout
