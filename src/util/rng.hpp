// Deterministic pseudo-random number generation for simulations.
//
// Experiments must be reproducible run-to-run, so everything random in
// the library flows through Rng seeded explicitly by the caller. The
// generator is xoshiro256** (public domain, Blackman & Vigna), seeded
// through SplitMix64 so that nearby seeds give independent streams.
#pragma once

#include <cstdint>
#include <vector>

namespace sma {

/// SplitMix64 step; used for seeding and cheap hash mixing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** deterministic RNG with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias. bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Exponentially distributed value with the given mean (> 0).
  double next_exponential(double mean);

  /// Bernoulli trial.
  bool next_bool(double p_true = 0.5);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream (for per-worker RNGs).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

/// Fill a buffer with a deterministic byte pattern derived from `seed`.
/// Used to synthesize "file" contents whose expected value can be
/// regenerated anywhere for corruption checks.
void fill_pattern(std::uint64_t seed, unsigned char* dst, std::size_t len);

/// 64-bit FNV-1a content fingerprint (for fast corruption checks).
std::uint64_t fingerprint(const unsigned char* data, std::size_t len);

}  // namespace sma
