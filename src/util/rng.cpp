#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace sma {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // xoshiro must not start from the all-zero state; SplitMix64 seeding
  // guarantees that for any input seed.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's rejection method: unbiased and nearly always one multiply.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) return static_cast<std::int64_t>(next_u64());
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_exponential(double mean) {
  assert(mean > 0);
  double u;
  do {
    u = next_double();
  } while (u == 0.0);
  return -mean * std::log(u);
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

Rng Rng::fork() { return Rng(next_u64()); }

void fill_pattern(std::uint64_t seed, unsigned char* dst, std::size_t len) {
  std::uint64_t state = seed;
  std::size_t i = 0;
  while (i + 8 <= len) {
    const std::uint64_t word = splitmix64(state);
    for (int b = 0; b < 8; ++b) dst[i + static_cast<std::size_t>(b)] =
        static_cast<unsigned char>(word >> (8 * b));
    i += 8;
  }
  if (i < len) {
    const std::uint64_t word = splitmix64(state);
    for (int b = 0; i < len; ++i, ++b)
      dst[i] = static_cast<unsigned char>(word >> (8 * b));
  }
}

std::uint64_t fingerprint(const unsigned char* data, std::size_t len) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace sma
