#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

namespace sma {

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void SampleSet::add(double x) {
  samples_.insert(std::upper_bound(samples_.begin(), samples_.end(), x), x);
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  const double s = std::accumulate(samples_.begin(), samples_.end(), 0.0);
  return s / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  assert(!samples_.empty());
  return samples_.front();
}

double SampleSet::max() const {
  assert(!samples_.empty());
  return samples_.back();
}

double SampleSet::percentile(double p) const {
  assert(!samples_.empty());
  assert(p >= 0.0 && p <= 100.0);
  if (samples_.size() == 1) return samples_[0];
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

Histogram::Histogram(double lo, double bucket_width, std::size_t bucket_count)
    : lo_(lo), width_(bucket_width), counts_(bucket_count, 0) {
  assert(bucket_width > 0);
  assert(bucket_count > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const double offset = (x - lo_) / width_;
  if (offset >= static_cast<double>(counts_.size())) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<std::size_t>(offset)];
}

std::string Histogram::render(std::size_t max_bar) const {
  std::size_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double lo = bucket_low(i);
    out << "[" << lo << ", " << lo + width_ << ")\t" << counts_[i] << "\t";
    const std::size_t bar = counts_[i] * max_bar / peak;
    for (std::size_t b = 0; b < bar; ++b) out << '#';
    out << '\n';
  }
  if (underflow_ > 0) out << "underflow\t" << underflow_ << '\n';
  if (overflow_ > 0) out << "overflow\t" << overflow_ << '\n';
  return out.str();
}

}  // namespace sma
