// Minimal work-stealing-free thread pool for parallel experiment sweeps.
//
// Experiments enumerate many independent failure scenarios; parallel_for
// fans them out across hardware threads. The simulator itself is single-
// threaded per scenario (deterministic), so parallelism lives only at
// this outer, embarrassingly-parallel layer.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sma {

class ThreadPool {
 public:
  /// threads == 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; runs at some point on a worker thread.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Run body(i) for i in [0, count) across a transient pool and block
/// until completion. body must be safe to call concurrently for distinct
/// indices. Falls back to serial execution for tiny ranges.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace sma
