// Aligned console tables and CSV emission for experiment harnesses.
//
// Every bench binary prints the paper's table/series rows through this
// formatter and optionally mirrors them to a CSV file so results can be
// re-plotted without re-running the simulation.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace sma {

/// Column-aligned text table with an optional title and CSV export.
class Table {
 public:
  explicit Table(std::string title = "");

  /// Set header cells; resets column count.
  void set_header(std::vector<std::string> cells);

  /// Append a row; must match the header width if a header was set.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);
  static std::string num(int v);

  /// Render with box-drawing-free ASCII alignment.
  std::string render() const;

  /// Write as CSV (header first if present). Returns false on I/O error.
  bool write_csv(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sma
