#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace sma {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (count == 0) return;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, count);
  if (threads <= 1 || count <= 2) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        body(i);
      }
    });
  }
  for (auto& th : pool) th.join();
}

}  // namespace sma
