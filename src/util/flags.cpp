#include "util/flags.hpp"

#include <algorithm>
#include <cstdlib>

namespace sma {

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  parse(args);
}

Flags::Flags(const std::vector<std::string>& args) { parse(args); }

void Flags::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" only when the next token is not itself a flag;
    // otherwise a bare boolean.
    if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      values_[body] = args[i + 1];
      ++i;
    } else {
      values_[body] = "";
    }
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::get(const std::string& name,
                       const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int Flags::get_int(const std::string& name, int fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    errors_.push_back("--" + name + ": not an integer: " + it->second);
    return fallback;
  }
  return static_cast<int>(v);
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    errors_.push_back("--" + name + ": not a number: " + it->second);
    return fallback;
  }
  return v;
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  errors_.push_back("--" + name + ": not a boolean: " + v);
  return fallback;
}

std::vector<int> Flags::get_int_list(const std::string& name) const {
  std::vector<int> out;
  const auto it = values_.find(name);
  if (it == values_.end()) return out;
  std::string token;
  auto flush = [&] {
    if (token.empty()) return;
    char* end = nullptr;
    const long v = std::strtol(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0')
      errors_.push_back("--" + name + ": bad list entry: " + token);
    else
      out.push_back(static_cast<int>(v));
    token.clear();
  };
  for (const char ch : it->second) {
    if (ch == ',') flush();
    else token += ch;
  }
  flush();
  return out;
}

std::vector<std::string> Flags::unknown(
    const std::vector<std::string>& allowed) const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (std::find(allowed.begin(), allowed.end(), name) == allowed.end())
      out.push_back(name);
  }
  return out;
}

}  // namespace sma
