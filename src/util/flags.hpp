// Minimal command-line flag parsing for the tools/ binaries.
//
// Supports --name=value, --name value, bare boolean --name, and
// positional arguments. Unknown-flag detection is the caller's choice
// via known().
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace sma {

class Flags {
 public:
  Flags(int argc, const char* const* argv);
  explicit Flags(const std::vector<std::string>& args);

  /// Program name (argv[0]) when constructed from argc/argv.
  const std::string& program() const { return program_; }
  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& fallback) const;
  /// Parse failures fall back to `fallback` and are recorded in errors().
  int get_int(const std::string& name, int fallback) const;
  double get_double(const std::string& name, double fallback) const;
  /// Bare "--x" means true; "--x=false|0|no" means false.
  bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated integer list ("0,6,12").
  std::vector<int> get_int_list(const std::string& name) const;

  /// Flags present on the command line that are not in `allowed`.
  std::vector<std::string> unknown(const std::vector<std::string>& allowed) const;

  /// Malformed values seen by the typed getters so far.
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  void parse(const std::vector<std::string>& args);

  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::vector<std::string> errors_;
};

}  // namespace sma
