// Byte and time unit helpers shared across the simulator.
//
// All simulated time is carried as double seconds (the simulator spans
// microsecond seeks to hour-long rebuilds; double keeps ~15 significant
// digits which is far beyond the model's fidelity). Byte quantities are
// std::uint64_t.
#pragma once

#include <cstdint>

namespace sma {

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/// Storage vendors quote MB/s as 10^6 bytes per second.
inline constexpr double kMB = 1e6;

inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;

/// Convert a MB/s spec-sheet rate into bytes/second.
constexpr double mbps_to_bytes_per_sec(double mbps) { return mbps * kMB; }

/// Convert bytes and seconds into MB/s for reporting (10^6 convention,
/// matching the paper's throughput plots).
constexpr double throughput_mbps(double bytes, double seconds) {
  return seconds > 0 ? bytes / kMB / seconds : 0.0;
}

}  // namespace sma
