#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <fstream>
#include <sstream>

namespace sma {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void Table::add_row(std::vector<std::string> cells) {
  assert(header_.empty() || cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << v;
  return out.str();
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }
std::string Table::num(int v) { return std::to_string(v); }

std::string Table::render() const {
  // Compute per-column widths over header plus all rows.
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> widths(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream out;
  if (!title_.empty()) out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size())
        out << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < cols; ++c) total += widths[c] + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return out.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      f << csv_escape(row[c]);
      if (c + 1 < row.size()) f << ',';
    }
    f << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return static_cast<bool>(f);
}

}  // namespace sma
