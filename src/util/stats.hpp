// Streaming statistics and sample summaries for experiment reporting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sma {

/// Welford online mean/variance accumulator. O(1) memory; numerically
/// stable for long runs.
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1); 0 if count < 2
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Order statistics over a retained sample set. Samples are kept sorted
/// on insertion, so every accessor is genuinely const — concurrent
/// reads of a no-longer-mutated set are safe. (The previous lazy
/// sort-on-read mutated state under `const`, a data race when two
/// threads called percentile() on a shared set.)
class SampleSet {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const;
  double min() const;
  double max() const;
  /// Linear-interpolated percentile, p in [0, 100]. Requires non-empty.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  /// The retained samples in ascending order (not insertion order).
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;  // ascending
};

/// Fixed-bucket linear histogram for latency distributions.
class Histogram {
 public:
  /// Buckets of width `bucket_width` starting at `lo`; values beyond the
  /// last bucket land in an overflow bin.
  Histogram(double lo, double bucket_width, std::size_t bucket_count);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bucket(std::size_t i) const { return counts_.at(i); }
  std::size_t overflow() const { return overflow_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t bucket_count() const { return counts_.size(); }
  double bucket_low(std::size_t i) const {
    return lo_ + static_cast<double>(i) * width_;
  }

  /// Multi-line ASCII rendering ("[lo, hi) count ####").
  std::string render(std::size_t max_bar = 40) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace sma
