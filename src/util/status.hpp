// Lightweight Status / Result<T> error-propagation types.
//
// Hot simulation paths avoid exceptions; fallible operations return
// Status (void result) or Result<T>. Both carry an error code plus a
// human-readable message. Modeled on the C++ Core Guidelines advice to
// make error paths explicit and cheap when not taken.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace sma {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kUnrecoverable,   // data loss: more failures than the code tolerates
  kCorruption,      // content verification mismatch
  kInternal,
  kIoError,           // disk I/O failed (fail-stop or transient error)
  kUnreadableSector,  // latent media error: this element cannot be read
  kNotFound,          // lookup by name/key matched nothing
  kAlreadyExists,     // registration would shadow an existing entry
};

/// Human-readable name of an ErrorCode ("OK", "InvalidArgument", ...).
constexpr std::string_view to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kOutOfRange: return "OutOfRange";
    case ErrorCode::kFailedPrecondition: return "FailedPrecondition";
    case ErrorCode::kUnrecoverable: return "Unrecoverable";
    case ErrorCode::kCorruption: return "Corruption";
    case ErrorCode::kInternal: return "Internal";
    case ErrorCode::kIoError: return "IoError";
    case ErrorCode::kUnreadableSector: return "UnreadableSector";
    case ErrorCode::kNotFound: return "NotFound";
    case ErrorCode::kAlreadyExists: return "AlreadyExists";
  }
  return "Unknown";
}

/// Success-or-error status for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk && "use Status::ok() for success");
  }

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string to_string() const {
    if (is_ok()) return "OK";
    std::string s(sma::to_string(code_));
    s += ": ";
    s += message_;
    return s;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status invalid_argument(std::string msg) {
  return Status(ErrorCode::kInvalidArgument, std::move(msg));
}
inline Status out_of_range(std::string msg) {
  return Status(ErrorCode::kOutOfRange, std::move(msg));
}
inline Status failed_precondition(std::string msg) {
  return Status(ErrorCode::kFailedPrecondition, std::move(msg));
}
inline Status unrecoverable(std::string msg) {
  return Status(ErrorCode::kUnrecoverable, std::move(msg));
}
inline Status corruption(std::string msg) {
  return Status(ErrorCode::kCorruption, std::move(msg));
}
inline Status internal_error(std::string msg) {
  return Status(ErrorCode::kInternal, std::move(msg));
}
inline Status io_error(std::string msg) {
  return Status(ErrorCode::kIoError, std::move(msg));
}
inline Status unreadable_sector(std::string msg) {
  return Status(ErrorCode::kUnreadableSector, std::move(msg));
}
inline Status not_found(std::string msg) {
  return Status(ErrorCode::kNotFound, std::move(msg));
}
inline Status already_exists(std::string msg) {
  return Status(ErrorCode::kAlreadyExists, std::move(msg));
}

/// Value-or-error. Construct from a T for success or a Status for failure.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : payload_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : payload_(std::move(status)) {    // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(payload_).is_ok() &&
           "Result constructed from OK status carries no value");
  }

  bool is_ok() const { return std::holds_alternative<T>(payload_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& {
    assert(is_ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(is_ok());
    return std::get<T>(payload_);
  }
  T&& take() && {
    assert(is_ok());
    return std::get<T>(std::move(payload_));
  }

  /// Status of the error branch; Status::ok() when holding a value.
  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(payload_);
  }

  const T& value_or(const T& fallback) const& {
    return is_ok() ? std::get<T>(payload_) : fallback;
  }

 private:
  std::variant<T, Status> payload_;
};

/// Propagate a non-OK Status out of the calling function.
#define SMA_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::sma::Status sma_status_ = (expr);        \
    if (!sma_status_.is_ok()) return sma_status_; \
  } while (false)

}  // namespace sma
