#include "multimirror/multi_mirror.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>
#include <set>

#include "layout/registry.hpp"

namespace sma::mm {

namespace {
int mod(int x, int m) {
  const int r = x % m;
  return r < 0 ? r + m : r;
}

int gcd(int a, int b) {
  while (b != 0) {
    const int t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Multiplicative inverse of c mod n (requires gcd(c, n) == 1).
int inverse_mod(int c, int n) {
  // Extended Euclid.
  int t = 0;
  int new_t = 1;
  int r = n;
  int new_r = c;
  while (new_r != 0) {
    const int q = r / new_r;
    t -= q * new_t;
    std::swap(t, new_t);
    r -= q * new_r;
    std::swap(r, new_r);
  }
  assert(r == 1 && "multiplier not coprime to n");
  return mod(t, n);
}
}  // namespace

Result<MultiMirror> MultiMirror::create(const MultiMirrorConfig& cfg) {
  if (cfg.n < 1) return invalid_argument("multi-mirror needs n >= 1");
  if (cfg.replica_arrays < 1)
    return invalid_argument("multi-mirror needs at least one replica array");

  MultiMirrorConfig resolved = cfg;
  std::shared_ptr<const layout::MirrorArrangement> custom;
  if (!cfg.arrangement.empty()) {
    const auto& registry = layout::AlgorithmRegistry::global();
    auto spec = layout::parse_layout_spec(cfg.arrangement);
    if (!spec.is_ok()) return spec.status();
    auto canonical = registry.canonical(spec.value().name);
    if (!canonical.is_ok()) return canonical.status();
    if (spec.value().params.empty() && (canonical.value() == "traditional" ||
                                        canonical.value() == "shifted")) {
      resolved.shifted = canonical.value() == "shifted";
    } else {
      if (cfg.replica_arrays != 1)
        return invalid_argument(
            "layout '" + cfg.arrangement +
            "' has no orthogonal-multiplier generalization; R >= 2 "
            "multi-mirror supports only traditional/shifted");
      auto arr = registry.make(spec.value(), cfg.n);
      if (!arr.is_ok()) return arr.status();
      custom = std::shared_ptr<const layout::MirrorArrangement>(
          std::move(arr).take());
      resolved.shifted = false;  // affine machinery unused
    }
  }

  std::vector<int> multipliers;
  if (custom == nullptr && resolved.shifted) {
    if (cfg.n == 1) {
      multipliers.assign(static_cast<std::size_t>(cfg.replica_arrays), 0);
    } else {
      for (int c = 1; c < cfg.n &&
                      static_cast<int>(multipliers.size()) < cfg.replica_arrays;
           ++c)
        if (gcd(c, cfg.n) == 1) multipliers.push_back(c);
      if (static_cast<int>(multipliers.size()) < cfg.replica_arrays)
        return invalid_argument(
            "n = " + std::to_string(cfg.n) + " has only " +
            std::to_string(multipliers.size()) +
            " units; cannot build " + std::to_string(cfg.replica_arrays) +
            " orthogonal shifted replica arrays");
    }
  }
  return MultiMirror(std::move(resolved), std::move(multipliers),
                     std::move(custom));
}

std::string MultiMirror::name() const {
  const std::string layout =
      custom_ ? custom_->name() : (cfg_.shifted ? "shifted" : "traditional");
  return layout + "-" + std::to_string(cfg_.replica_arrays + 1) +
         "-mirror(n=" + std::to_string(cfg_.n) + ")";
}

int MultiMirror::multiplier(int array_r) const {
  assert(array_r >= 1 && array_r <= cfg_.replica_arrays);
  if (!cfg_.shifted) return 0;
  return multipliers_[static_cast<std::size_t>(array_r) - 1];
}

int MultiMirror::data_disk(int i) const {
  assert(i >= 0 && i < cfg_.n);
  return i;
}

int MultiMirror::replica_disk(int array_r, int local) const {
  assert(array_r >= 1 && array_r <= cfg_.replica_arrays);
  assert(local >= 0 && local < cfg_.n);
  return array_r * cfg_.n + local;
}

int MultiMirror::array_of(int disk) const {
  assert(disk >= 0 && disk < total_disks());
  return disk / cfg_.n;
}

int MultiMirror::local_index(int disk) const {
  assert(disk >= 0 && disk < total_disks());
  return disk % cfg_.n;
}

layout::Pos MultiMirror::replica_of(int array_r, int i, int j) const {
  assert(i >= 0 && i < cfg_.n);
  assert(j >= 0 && j < cfg_.n);
  if (custom_) {
    const layout::Pos p = custom_->mirror_of(i, j);
    return {replica_disk(array_r, p.disk), p.row};
  }
  if (!cfg_.shifted) return {replica_disk(array_r, i), j};
  const int c = multiplier(array_r);
  if (cfg_.n == 1) return {replica_disk(array_r, 0), 0};
  return {replica_disk(array_r, mod(i + c * j, cfg_.n)), i};
}

layout::Pos MultiMirror::source_of(int array_r, int local_disk, int row) const {
  assert(local_disk >= 0 && local_disk < cfg_.n);
  assert(row >= 0 && row < cfg_.n);
  if (custom_) return custom_->data_of(local_disk, row);
  if (!cfg_.shifted) return {local_disk, row};
  if (cfg_.n == 1) return {0, 0};
  // Cell (d, w) of array r holds a(w, c^{-1} (d - w)).
  const int c = multiplier(array_r);
  const int inv = inverse_mod(c, cfg_.n);
  return {row, mod(inv * (local_disk - row), cfg_.n)};
}

std::vector<layout::Pos> MultiMirror::copies_of(int i, int j) const {
  std::vector<layout::Pos> out;
  out.reserve(static_cast<std::size_t>(cfg_.replica_arrays) + 1);
  out.push_back({data_disk(i), j});
  for (int r = 1; r <= cfg_.replica_arrays; ++r)
    out.push_back(replica_of(r, i, j));
  return out;
}

Result<MultiPlan> MultiMirror::plan(const std::vector<int>& failed) const {
  for (std::size_t a = 0; a < failed.size(); ++a) {
    if (failed[a] < 0 || failed[a] >= total_disks())
      return invalid_argument("failed disk out of range");
    for (std::size_t b = a + 1; b < failed.size(); ++b)
      if (failed[a] == failed[b])
        return invalid_argument("duplicate failed disk");
  }
  if (static_cast<int>(failed.size()) > fault_tolerance())
    return unrecoverable(name() + " cannot survive " +
                         std::to_string(failed.size()) + " failures");

  auto is_failed = [&](int disk) {
    return std::find(failed.begin(), failed.end(), disk) != failed.end();
  };

  // Enumerate lost elements (as data coordinates) per failed disk, then
  // pick, for each, the least-loaded surviving copy. Reads of the same
  // surviving cell are shared across the copies they feed.
  MultiPlan out;
  std::vector<int> load(static_cast<std::size_t>(total_disks()), 0);
  std::set<ReadAt> reads;

  for (const int disk : failed) {
    const int arr = array_of(disk);
    for (int row = 0; row < rows(); ++row) {
      // Which data element did this cell hold?
      layout::Pos src;  // (data disk, data row)
      if (arr == 0)
        src = {local_index(disk), row};
      else
        src = source_of(arr, local_index(disk), row);

      // Candidate surviving copies.
      const auto copies = copies_of(src.disk, src.row);
      const layout::Pos* best = nullptr;
      for (const auto& copy : copies) {
        if (copy.disk == disk || is_failed(copy.disk)) continue;
        // Prefer a copy we already read (free), else least-loaded disk.
        const bool already = reads.count({copy.disk, copy.row}) > 0;
        if (already) {
          best = &copy;
          break;
        }
        if (best == nullptr ||
            load[static_cast<std::size_t>(copy.disk)] <
                load[static_cast<std::size_t>(best->disk)])
          best = &copy;
      }
      if (best == nullptr)
        return unrecoverable("element (" + std::to_string(src.disk) + "," +
                             std::to_string(src.row) +
                             ") lost every copy");
      const ReadAt read{best->disk, best->row};
      if (reads.insert(read).second)
        ++load[static_cast<std::size_t>(best->disk)];
      out.recoveries.push_back({disk, row, read});
    }
  }

  out.unique_reads.assign(reads.begin(), reads.end());
  out.read_accesses = *std::max_element(load.begin(), load.end());
  return out;
}

std::vector<MultiMirror::CaseRow> MultiMirror::enumerate_double_failure_cases()
    const {
  std::map<std::string, CaseRow> buckets;
  for (int a = 0; a < total_disks(); ++a) {
    for (int b = a + 1; b < total_disks(); ++b) {
      const int ra = array_of(a);
      const int rb = array_of(b);
      std::string label;
      if (ra == 0 && rb == 0) label = "both data";
      else if (ra == 0) label = "data + replica array";
      else if (ra == rb) label = "same replica array";
      else label = "two replica arrays";

      auto planned = plan({a, b});
      assert(planned.is_ok());
      const int accesses = planned.value().read_accesses;
      auto& row = buckets[label];
      row.label = label;
      if (row.cases == 0) {
        row.min_accesses = accesses;
        row.max_accesses = accesses;
      }
      row.avg_accesses =
          (row.avg_accesses * static_cast<double>(row.cases) + accesses) /
          static_cast<double>(row.cases + 1);
      ++row.cases;
      row.min_accesses = std::min(row.min_accesses, accesses);
      row.max_accesses = std::max(row.max_accesses, accesses);
    }
  }
  std::vector<CaseRow> out;
  out.reserve(buckets.size());
  for (auto& [label, row] : buckets) out.push_back(row);
  return out;
}

}  // namespace sma::mm
