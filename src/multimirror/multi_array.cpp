#include "multimirror/multi_array.hpp"

#include <algorithm>
#include <cassert>
#include <map>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace sma::mm {

double MultiReconReport::read_throughput_mbps() const {
  return throughput_mbps(static_cast<double>(logical_bytes_read),
                         read_makespan_s);
}

MultiMirrorArray::MultiMirrorArray(MultiMirror layout,
                                   const MultiArrayConfig& cfg)
    : layout_(std::move(layout)),
      cfg_(cfg),
      stripes_(cfg.stripes > 0 ? cfg.stripes : layout_.total_disks()),
      mapper_(layout_.total_disks()) {
  const std::int64_t slots =
      static_cast<std::int64_t>(stripes_) * layout_.rows();
  disks_.reserve(static_cast<std::size_t>(total_disks()));
  for (int d = 0; d < total_disks(); ++d)
    disks_.emplace_back(d, cfg_.spec, slots, cfg_.content_bytes,
                        cfg_.logical_element_bytes);
}

Result<MultiMirrorArray> MultiMirrorArray::create(const MultiArrayConfig& cfg) {
  auto layout = MultiMirror::create(cfg.layout);
  if (!layout.is_ok()) return layout.status();
  if (cfg.content_bytes == 0 || cfg.logical_element_bytes == 0)
    return invalid_argument("element sizes must be positive");
  return MultiMirrorArray(std::move(layout).take(), cfg);
}

int MultiMirrorArray::physical_disk(int logical, int stripe) const {
  return cfg_.rotate ? mapper_.physical_of(logical, stripe) : logical;
}

int MultiMirrorArray::logical_disk(int physical, int stripe) const {
  return cfg_.rotate ? mapper_.logical_of(physical, stripe) : physical;
}

std::int64_t MultiMirrorArray::slot(int stripe, int row) const {
  assert(stripe >= 0 && stripe < stripes_);
  assert(row >= 0 && row < layout_.rows());
  return static_cast<std::int64_t>(stripe) * layout_.rows() + row;
}

disk::SimDisk& MultiMirrorArray::physical(int disk) {
  assert(disk >= 0 && disk < total_disks());
  return disks_[static_cast<std::size_t>(disk)];
}

const disk::SimDisk& MultiMirrorArray::physical(int disk) const {
  assert(disk >= 0 && disk < total_disks());
  return disks_[static_cast<std::size_t>(disk)];
}

std::span<std::uint8_t> MultiMirrorArray::content(int logical, int stripe,
                                                  int row) {
  return physical(physical_disk(logical, stripe)).content(slot(stripe, row));
}

std::span<const std::uint8_t> MultiMirrorArray::content(int logical,
                                                        int stripe,
                                                        int row) const {
  return physical(physical_disk(logical, stripe)).content(slot(stripe, row));
}

void MultiMirrorArray::expected_data(int data_disk, int stripe, int row,
                                     std::span<std::uint8_t> out) const {
  std::uint64_t s = cfg_.seed;
  s ^= 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(data_disk) + 1);
  s = splitmix64(s);
  s ^= 0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(stripe) + 1);
  s = splitmix64(s);
  s ^= 0x94d049bb133111ebULL * (static_cast<std::uint64_t>(row) + 1);
  s = splitmix64(s);
  fill_pattern(s, out.data(), out.size());
}

void MultiMirrorArray::initialize() {
  for (int stripe = 0; stripe < stripes_; ++stripe) {
    for (int i = 0; i < layout_.n(); ++i) {
      for (int j = 0; j < layout_.rows(); ++j) {
        auto data = content(layout_.data_disk(i), stripe, j);
        expected_data(i, stripe, j, data);
        for (int r = 1; r <= layout_.replica_arrays(); ++r) {
          const layout::Pos p = layout_.replica_of(r, i, j);
          auto replica = content(p.disk, stripe, p.row);
          std::copy(data.begin(), data.end(), replica.begin());
        }
      }
    }
  }
}

Status MultiMirrorArray::verify_all() const {
  std::vector<std::uint8_t> expect(cfg_.content_bytes);
  for (int stripe = 0; stripe < stripes_; ++stripe) {
    auto live = [&](int logical) {
      return !physical(physical_disk(logical, stripe)).failed();
    };
    for (int i = 0; i < layout_.n(); ++i) {
      for (int j = 0; j < layout_.rows(); ++j) {
        expected_data(i, stripe, j, expect);
        for (const auto& copy : layout_.copies_of(i, j)) {
          if (!live(copy.disk)) continue;
          auto got = content(copy.disk, stripe, copy.row);
          if (!std::equal(got.begin(), got.end(), expect.begin()))
            return corruption("multi-mirror mismatch at disk " +
                              std::to_string(copy.disk) + ", stripe " +
                              std::to_string(stripe) + ", row " +
                              std::to_string(copy.row));
        }
      }
    }
  }
  return Status::ok();
}

void MultiMirrorArray::fail_physical(int disk) { physical(disk).fail(); }

std::vector<int> MultiMirrorArray::failed_physical() const {
  std::vector<int> out;
  for (int d = 0; d < total_disks(); ++d)
    if (physical(d).failed()) out.push_back(d);
  return out;
}

Result<MultiReconReport> MultiMirrorArray::reconstruct() {
  const auto failed = failed_physical();
  MultiReconReport report;
  if (failed.empty()) return report;

  // Phase 1: plan per stripe and stage recovered contents.
  struct StagedWrite {
    int physical_disk;
    std::int64_t slot;
    std::vector<std::uint8_t> bytes;
  };
  std::vector<StagedWrite> staged;
  struct TimedRead {
    int physical_disk;
    std::int64_t slot;
  };
  std::vector<TimedRead> reads;

  for (int stripe = 0; stripe < stripes_; ++stripe) {
    std::vector<int> failed_logical;
    for (const int p : failed) failed_logical.push_back(logical_disk(p, stripe));
    std::sort(failed_logical.begin(), failed_logical.end());

    auto plan = layout_.plan(failed_logical);
    if (!plan.is_ok()) return plan.status();
    report.read_accesses_per_stripe =
        std::max(report.read_accesses_per_stripe, plan.value().read_accesses);

    for (const auto& read : plan.value().unique_reads)
      reads.push_back({physical_disk(read.disk, stripe), slot(stripe, read.row)});

    for (const auto& rec : plan.value().recoveries) {
      auto src = content(rec.from.disk, stripe, rec.from.row);
      staged.push_back({physical_disk(rec.lost_disk, stripe),
                        slot(stripe, rec.lost_row),
                        std::vector<std::uint8_t>(src.begin(), src.end())});
    }
  }

  // Phase 2: timed read phase on fresh timelines.
  for (auto& d : disks_) d.reset_timeline();
  double read_end = 0.0;
  for (const auto& r : reads) {
    read_end = std::max(
        read_end, physical(r.physical_disk).submit_ok(disk::IoKind::kRead,
                                                      r.slot, 0.0));
    report.logical_bytes_read += cfg_.logical_element_bytes;
  }
  report.read_makespan_s = read_end;

  // Phase 3: install recovered contents, heal (heal() refuses a
  // partially restored disk), and time replacement writes.
  for (const auto& w : staged)
    physical(w.physical_disk).restore_content(w.slot, w.bytes);
  for (const int p : failed) SMA_RETURN_IF_ERROR(physical(p).heal());
  double total_end = read_end;
  for (const auto& w : staged) {
    total_end = std::max(
        total_end, physical(w.physical_disk)
                       .submit_ok(disk::IoKind::kWrite, w.slot, read_end));
    report.logical_bytes_recovered += cfg_.logical_element_bytes;
  }
  report.total_makespan_s = total_end;

  SMA_RETURN_IF_ERROR(verify_all());
  return report;
}

double MultiMirrorArray::DegradedReadReport::throughput_mbps() const {
  return ::sma::throughput_mbps(static_cast<double>(logical_bytes_read),
                                makespan_s);
}

Result<MultiMirrorArray::DegradedReadReport>
MultiMirrorArray::run_degraded_reads(int read_count, std::uint64_t seed) {
  if (read_count < 0) return invalid_argument("negative read count");
  if (static_cast<int>(failed_physical().size()) > layout_.fault_tolerance())
    return unrecoverable("more failures than the layout tolerates");

  Rng rng(seed);
  DegradedReadReport report;
  std::vector<int> assigned(static_cast<std::size_t>(total_disks()), 0);
  for (auto& d : disks_) d.reset_timeline();

  double makespan = 0.0;
  for (int k = 0; k < read_count; ++k) {
    const int i = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(layout_.n())));
    const int stripe = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(stripes_)));
    const int row = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(layout_.rows())));

    // Least-loaded surviving copy; prefer the data copy when healthy.
    const auto copies = layout_.copies_of(i, row);
    int best_phys = -1;
    int best_row = 0;
    bool primary = false;
    for (std::size_t c = 0; c < copies.size(); ++c) {
      const int phys = physical_disk(copies[c].disk, stripe);
      if (physical(phys).failed()) continue;
      if (c == 0) {
        best_phys = phys;
        best_row = copies[c].row;
        primary = true;
        break;
      }
      if (best_phys < 0 || assigned[static_cast<std::size_t>(phys)] <
                               assigned[static_cast<std::size_t>(best_phys)]) {
        best_phys = phys;
        best_row = copies[c].row;
      }
    }
    if (best_phys < 0)
      return unrecoverable("element lost every copy");
    if (!primary) ++report.degraded_reads;
    ++assigned[static_cast<std::size_t>(best_phys)];
    makespan = std::max(
        makespan, physical(best_phys).submit_ok(disk::IoKind::kRead,
                                                slot(stripe, best_row), 0.0));
    report.logical_bytes_read += cfg_.logical_element_bytes;
  }
  report.makespan_s = makespan;

  int total_ops = 0;
  int survivors = 0;
  for (int d = 0; d < total_disks(); ++d) {
    if (physical(d).failed()) continue;
    ++survivors;
    total_ops += assigned[static_cast<std::size_t>(d)];
    report.hottest_disk_ops =
        std::max(report.hottest_disk_ops, assigned[static_cast<std::size_t>(d)]);
  }
  const double mean =
      survivors > 0 ? static_cast<double>(total_ops) / survivors : 0.0;
  report.load_imbalance = mean > 0 ? report.hottest_disk_ops / mean : 0.0;
  return report;
}

}  // namespace sma::mm
