#include "multimirror/multi_online.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <vector>

#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace sma::mm {

namespace {

struct Job {
  std::int64_t slot = 0;
  double arrival = 0.0;
  bool is_user = false;
  bool is_degraded = false;
};

struct DiskQueue {
  std::deque<Job> user;
  std::deque<Job> rebuild;
  bool busy = false;
};

}  // namespace

Result<MmOnlineReport> run_online_reconstruction(MultiMirrorArray& arr,
                                                 const MmOnlineConfig& cfg) {
  const auto& layout = arr.layout();
  const auto failed = arr.failed_physical();
  if (failed.empty())
    return invalid_argument("no failed disks to rebuild on-line");
  if (static_cast<int>(failed.size()) > layout.fault_tolerance())
    return unrecoverable("failures exceed the layout's tolerance");
  if (cfg.user_read_rate_hz <= 0 || cfg.max_user_reads < 0)
    return invalid_argument("invalid online workload parameters");

  std::vector<DiskQueue> queues(static_cast<std::size_t>(arr.total_disks()));
  std::size_t rebuild_jobs = 0;
  for (int s = 0; s < arr.stripes(); ++s) {
    std::vector<int> failed_logical;
    for (const int p : failed) failed_logical.push_back(arr.logical_disk(p, s));
    std::sort(failed_logical.begin(), failed_logical.end());
    auto plan = layout.plan(failed_logical);
    if (!plan.is_ok()) return plan.status();
    for (const auto& read : plan.value().unique_reads) {
      const int phys = arr.physical_disk(read.disk, s);
      queues[static_cast<std::size_t>(phys)].rebuild.push_back(
          {arr.slot(s, read.row), 0.0, false, false});
      ++rebuild_jobs;
    }
  }

  for (int d = 0; d < arr.total_disks(); ++d)
    if (!arr.physical(d).failed()) arr.physical(d).reset_timeline();
  sim::Simulation sim;
  Rng rng(cfg.seed);

  MmOnlineReport report;
  SampleSet latencies;
  std::size_t rebuild_remaining = rebuild_jobs;
  std::vector<int> user_load(static_cast<std::size_t>(arr.total_disks()), 0);

  std::function<void(int)> dispatch = [&](int disk) {
    auto& q = queues[static_cast<std::size_t>(disk)];
    if (q.busy) return;
    Job job;
    if (!q.user.empty()) {
      job = q.user.front();
      q.user.pop_front();
    } else if (!q.rebuild.empty()) {
      job = q.rebuild.front();
      q.rebuild.pop_front();
    } else {
      return;
    }
    q.busy = true;
    const double done =
        arr.physical(disk).submit_ok(disk::IoKind::kRead, job.slot, sim.now());
    sim.schedule_at(done, [&, disk, job] {
      queues[static_cast<std::size_t>(disk)].busy = false;
      if (job.is_user) {
        latencies.add(sim.now() - job.arrival);
      } else {
        --rebuild_remaining;
        if (rebuild_remaining == 0) report.rebuild_done_s = sim.now();
      }
      dispatch(disk);
    });
  };

  int injected = 0;
  std::function<void()> arrive = [&] {
    if (injected >= cfg.max_user_reads) return;
    ++injected;
    ++report.user_reads;
    const int i = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(layout.n())));
    const int stripe = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(arr.stripes())));
    const int row = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(layout.rows())));

    // Data copy if live, else the least-user-loaded surviving replica.
    const auto copies = layout.copies_of(i, row);
    int best_phys = -1;
    int best_row = 0;
    bool degraded = false;
    for (std::size_t c = 0; c < copies.size(); ++c) {
      const int phys = arr.physical_disk(copies[c].disk, stripe);
      if (arr.physical(phys).failed()) continue;
      if (c == 0) {
        best_phys = phys;
        best_row = copies[c].row;
        break;
      }
      degraded = true;
      if (best_phys < 0 || user_load[static_cast<std::size_t>(phys)] <
                               user_load[static_cast<std::size_t>(best_phys)]) {
        best_phys = phys;
        best_row = copies[c].row;
      }
    }
    if (best_phys >= 0) {
      if (degraded) ++report.degraded_reads;
      ++user_load[static_cast<std::size_t>(best_phys)];
      queues[static_cast<std::size_t>(best_phys)].user.push_back(
          {arr.slot(stripe, best_row), sim.now(), true, degraded});
      dispatch(best_phys);
    }
    sim.schedule_in(rng.next_exponential(1.0 / cfg.user_read_rate_hz), arrive);
  };

  sim.schedule_at(0.0, arrive);
  for (int d = 0; d < arr.total_disks(); ++d)
    if (!arr.physical(d).failed()) sim.schedule_at(0.0, [&, d] { dispatch(d); });
  sim.run();

  if (rebuild_remaining != 0)
    return internal_error("rebuild jobs left undispatched");
  if (!latencies.empty()) {
    report.mean_latency_s = latencies.mean();
    report.p50_latency_s = latencies.percentile(50);
    report.p99_latency_s = latencies.percentile(99);
  }
  return report;
}

}  // namespace sma::mm
