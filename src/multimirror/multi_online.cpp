#include "multimirror/multi_online.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace sma::mm {

namespace {

struct Job {
  std::int64_t slot = 0;
  double arrival = 0.0;
  bool is_user = false;
  bool is_degraded = false;
};

struct DiskQueue {
  std::deque<Job> user;
  std::deque<Job> rebuild;
  bool busy = false;
};

/// Detach the per-disk observers on every exit path.
struct ObsGuard {
  MultiMirrorArray* arr = nullptr;
  ~ObsGuard() {
    if (arr == nullptr) return;
    for (int d = 0; d < arr->total_disks(); ++d)
      arr->physical(d).set_observer(nullptr);
  }
};

}  // namespace

Result<MmOnlineReport> run_online_reconstruction(MultiMirrorArray& arr,
                                                 const MmOnlineConfig& cfg) {
  const auto& layout = arr.layout();
  const auto failed = arr.failed_physical();
  if (failed.empty())
    return invalid_argument("no failed disks to rebuild on-line");
  if (static_cast<int>(failed.size()) > layout.fault_tolerance())
    return unrecoverable("failures exceed the layout's tolerance");
  const workload::ArrivalConfig& acfg = cfg.arrival;
  if (cfg.qos.rebuild_budget < 0 || cfg.qos.min_budget < 0)
    return invalid_argument("rebuild budgets must be non-negative");
  if (cfg.qos.policy == workload::RebuildPolicy::kAdaptive &&
      (cfg.qos.p99_target_s <= 0 || cfg.qos.control_interval_s <= 0 ||
       cfg.qos.raise_headroom <= 0 || cfg.qos.raise_headroom > 1))
    return invalid_argument(
        "adaptive throttle needs p99_target_s > 0, control_interval_s > 0 "
        "and raise_headroom in (0, 1]");
  auto proc_r = workload::make_arrival_process(acfg);
  if (!proc_r.is_ok()) return proc_r.status();
  const std::unique_ptr<workload::ArrivalProcess> proc =
      std::move(proc_r).take();

  obs::Observer* const ob = cfg.observer.get();
  ObsGuard obs_guard;
  if (ob != nullptr) {
    obs_guard.arr = &arr;
    for (int d = 0; d < arr.total_disks(); ++d)
      arr.physical(d).set_observer(ob);
    for (const int p : failed) {
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kFailure;
      ev.t_s = 0.0;
      ev.disk = p;
      ob->emit(ev);
    }
  }

  std::vector<DiskQueue> queues(static_cast<std::size_t>(arr.total_disks()));
  std::size_t rebuild_jobs = 0;
  for (int s = 0; s < arr.stripes(); ++s) {
    std::vector<int> failed_logical;
    for (const int p : failed) {
      const int l = arr.logical_disk(p, s);
      failed_logical.insert(
          std::upper_bound(failed_logical.begin(), failed_logical.end(), l),
          l);
    }
    auto plan = layout.plan(failed_logical);
    if (!plan.is_ok()) return plan.status();
    for (const auto& read : plan.value().unique_reads) {
      const int phys = arr.physical_disk(read.disk, s);
      queues[static_cast<std::size_t>(phys)].rebuild.push_back(
          {arr.slot(s, read.row), 0.0, false, false});
      ++rebuild_jobs;
      if (ob != nullptr) {
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::kRebuildIssue;
        ev.t_s = 0.0;
        ev.disk = phys;
        ev.stripe = s;
        ev.slot = arr.slot(s, read.row);
        ev.rebuild = true;
        ob->emit(ev);
      }
    }
  }

  for (int d = 0; d < arr.total_disks(); ++d)
    if (!arr.physical(d).failed()) arr.physical(d).reset_timeline();
  sim::Simulation sim;
  Rng rng(acfg.seed);
  workload::RebuildThrottle throttle(cfg.qos, arr.total_disks());
  const double slo_target = cfg.qos.p99_target_s;
  std::vector<double> window;  // adaptive: latencies since the last tick

  MmOnlineReport report;
  SampleSet latencies;
  std::size_t rebuild_remaining = rebuild_jobs;
  std::vector<int> user_load(static_cast<std::size_t>(arr.total_disks()), 0);

  std::function<void()> arrive;       // defined below
  std::function<void(int)> dispatch;  // defined below

  auto kick_waiting = [&] {
    if (!throttle.enabled()) return;
    for (int d = 0; d < arr.total_disks(); ++d) {
      if (!throttle.allow()) return;
      const DiskQueue& q = queues[static_cast<std::size_t>(d)];
      if (!q.busy && !q.rebuild.empty()) dispatch(d);
    }
  };

  dispatch = [&](int disk) {
    auto& q = queues[static_cast<std::size_t>(disk)];
    if (q.busy) return;
    Job job;
    if (!q.user.empty()) {
      job = q.user.front();
      q.user.pop_front();
    } else if (!q.rebuild.empty() && throttle.allow()) {
      job = q.rebuild.front();
      q.rebuild.pop_front();
      throttle.on_issue();
    } else {
      return;
    }
    q.busy = true;
    const double done =
        arr.physical(disk).submit_ok(disk::IoKind::kRead, job.slot, sim.now());
    sim.schedule_at(done, [&, disk, job] {
      queues[static_cast<std::size_t>(disk)].busy = false;
      if (job.is_user) {
        const double latency = sim.now() - job.arrival;
        latencies.add(latency);
        ++report.requests_completed;
        if (slo_target > 0.0 && latency > slo_target) ++report.slo_violations;
        if (throttle.adaptive()) window.push_back(latency);
        if (proc->closed_loop())
          sim.schedule_in(proc->think_delay(rng), [&arrive] { arrive(); });
      } else {
        --rebuild_remaining;
        throttle.on_complete();
        if (ob != nullptr) {
          obs::TraceEvent ev;
          ev.kind = obs::EventKind::kRebuildComplete;
          ev.t_s = sim.now();
          ev.disk = disk;
          ev.slot = job.slot;
          ev.rebuild = true;
          ob->emit(ev);
        }
        if (rebuild_remaining == 0) report.rebuild_done_s = sim.now();
        kick_waiting();
      }
      dispatch(disk);
    });
  };

  int injected = 0;
  arrive = [&] {
    if (injected >= acfg.max_requests) return;
    ++injected;
    ++report.user_reads;
    ++report.requests_issued;
    const int i = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(layout.n())));
    const int stripe = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(arr.stripes())));
    const int row = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(layout.rows())));
    if (ob != nullptr) {
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kRequestArrive;
      ev.t_s = sim.now();
      ev.request_id = injected - 1;
      ob->emit(ev);
      ob->count("mm_online.user_reads");
    }

    // Data copy if live, else the least-user-loaded surviving replica.
    const auto copies = layout.copies_of(i, row);
    int best_phys = -1;
    int best_row = 0;
    bool degraded = false;
    for (std::size_t c = 0; c < copies.size(); ++c) {
      const int phys = arr.physical_disk(copies[c].disk, stripe);
      if (arr.physical(phys).failed()) continue;
      if (c == 0) {
        best_phys = phys;
        best_row = copies[c].row;
        break;
      }
      degraded = true;
      if (best_phys < 0 || user_load[static_cast<std::size_t>(phys)] <
                               user_load[static_cast<std::size_t>(best_phys)]) {
        best_phys = phys;
        best_row = copies[c].row;
      }
    }
    if (best_phys >= 0) {
      if (degraded) ++report.degraded_reads;
      ++user_load[static_cast<std::size_t>(best_phys)];
      queues[static_cast<std::size_t>(best_phys)].user.push_back(
          {arr.slot(stripe, best_row), sim.now(), true, degraded});
      dispatch(best_phys);
    }
    if (!proc->closed_loop()) {
      const double delay = proc->next_delay(rng);
      if (delay >= 0.0) sim.schedule_in(delay, [&arrive] { arrive(); });
    }
  };

  // Adaptive control loop (see recon::online — same controller).
  std::function<void()> control_tick = [&] {
    if (rebuild_remaining == 0) return;
    double window_p99 = -1.0;
    if (!window.empty()) {
      SampleSet s;
      for (const double v : window) s.add(v);
      window_p99 = s.percentile(99);
      window.clear();
    }
    const int delta = throttle.control(window_p99);
    if (delta != 0) ++report.throttle_adjustments;
    if (ob != nullptr) {
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kThrottle;
      ev.t_s = sim.now();
      ev.slot = throttle.budget();
      ev.dur_s = window_p99 >= 0.0 ? window_p99 : 0.0;
      ev.rebuild = true;
      ob->emit(ev);
    }
    if (delta > 0) kick_waiting();
    sim.schedule_in(cfg.qos.control_interval_s,
                    [&control_tick] { control_tick(); });
  };
  if (throttle.adaptive())
    sim.schedule_in(cfg.qos.control_interval_s,
                    [&control_tick] { control_tick(); });

  if (proc->closed_loop()) {
    for (int c = 0; c < proc->clients(); ++c)
      sim.schedule_at(0.0, [&arrive] { arrive(); });
  } else {
    sim.schedule_at(proc->first_arrival_s(), [&arrive] { arrive(); });
  }
  for (int d = 0; d < arr.total_disks(); ++d)
    if (!arr.physical(d).failed()) sim.schedule_at(0.0, [&, d] { dispatch(d); });
  sim.run();

  if (rebuild_remaining != 0)
    return internal_error("rebuild jobs left undispatched");
  if (!latencies.empty()) {
    report.mean_latency_s = latencies.mean();
    report.p50_latency_s = latencies.percentile(50);
    report.p95_latency_s = latencies.percentile(95);
    report.p99_latency_s = latencies.percentile(99);
    report.p999_latency_s = latencies.percentile(99.9);
  }
  if (slo_target > 0.0 && !latencies.empty())
    report.slo_violation_pct = 100.0 *
                               static_cast<double>(report.slo_violations) /
                               static_cast<double>(latencies.count());
  if (throttle.enabled()) report.final_rebuild_budget = throttle.budget();
  return report;
}

}  // namespace sma::mm
