// MultiMirrorArray — a populated simulated disk array instance of a
// MultiMirror layout: contents + timing + stack rotation + verified
// rebuild. The R-replica counterpart of array::DiskArray + the
// reconstruction executor.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "disk/sim_disk.hpp"
#include "layout/stack.hpp"
#include "multimirror/multi_mirror.hpp"
#include "util/status.hpp"

namespace sma::mm {

struct MultiArrayConfig {
  MultiMirrorConfig layout;
  int stripes = 0;  // 0 = one full stack (total_disks stripes)
  bool rotate = true;
  disk::DiskSpec spec = disk::DiskSpec::savvio_10k3();
  std::size_t content_bytes = 256;
  std::uint64_t logical_element_bytes = 4ull * 1000 * 1000;
  std::uint64_t seed = 3;
};

struct MultiReconReport {
  double read_makespan_s = 0.0;
  double total_makespan_s = 0.0;
  std::uint64_t logical_bytes_read = 0;
  std::uint64_t logical_bytes_recovered = 0;
  int read_accesses_per_stripe = 0;

  double read_throughput_mbps() const;
};

class MultiMirrorArray {
 public:
  static Result<MultiMirrorArray> create(const MultiArrayConfig& cfg);

  const MultiMirror& layout() const { return layout_; }
  int stripes() const { return stripes_; }
  int total_disks() const { return layout_.total_disks(); }

  int physical_disk(int logical, int stripe) const;
  int logical_disk(int physical, int stripe) const;
  std::int64_t slot(int stripe, int row) const;

  disk::SimDisk& physical(int disk);
  const disk::SimDisk& physical(int disk) const;

  std::span<std::uint8_t> content(int logical, int stripe, int row);
  std::span<const std::uint8_t> content(int logical, int stripe, int row) const;

  /// Deterministic data patterns + replica copies everywhere.
  void initialize();
  Status verify_all() const;

  void fail_physical(int disk);
  std::vector<int> failed_physical() const;

  /// Plan per stripe, read surviving copies, rebuild failed disks in
  /// place, time read + write phases, verify.
  Result<MultiReconReport> reconstruct();

  struct DegradedReadReport {
    double makespan_s = 0.0;
    std::uint64_t logical_bytes_read = 0;
    std::size_t degraded_reads = 0;
    int hottest_disk_ops = 0;
    double load_imbalance = 0.0;
    double throughput_mbps() const;
  };

  /// Uniform random data-element reads with any number of failed disks
  /// up to the fault tolerance; a degraded read picks the least-loaded
  /// surviving copy (with R >= 2 even the traditional layout can split
  /// redirected load across its copies). Timing only.
  Result<DegradedReadReport> run_degraded_reads(int read_count,
                                                std::uint64_t seed);

 private:
  MultiMirrorArray(MultiMirror layout, const MultiArrayConfig& cfg);

  void expected_data(int data_disk, int stripe, int row,
                     std::span<std::uint8_t> out) const;

  MultiMirror layout_;
  MultiArrayConfig cfg_;
  int stripes_;
  layout::StackMapper mapper_;
  std::vector<disk::SimDisk> disks_;
};

}  // namespace sma::mm
