// On-line reconstruction for the multi-mirror (R-replica) extension:
// rebuild I/O drains in the background while prioritized user reads
// arrive; degraded reads pick the least-loaded surviving copy. The
// R >= 2 counterpart of recon::run_online_reconstruction, supporting
// up to R simultaneous failures.
//
// The serving side shares the QoS engine surface: arrivals come from a
// workload::ArrivalConfig (read-only stream — this simulator models no
// writes, so MixConfig does not apply and trace write flags replay as
// reads) and rebuild dispatch is gated by a workload::QosConfig policy,
// exactly as in the single-mirror engine. See docs/SERVING.md.
#pragma once

#include <cstdint>

#include "multimirror/multi_array.hpp"
#include "obs/observer.hpp"
#include "util/status.hpp"
#include "workload/arrival.hpp"
#include "workload/qos.hpp"

namespace sma::mm {

struct MmOnlineConfig {
  /// Shared arrival surface (defaults: Poisson 40 req/s, 500 requests,
  /// seed 7 — the historical values).
  workload::ArrivalConfig arrival;
  /// Rebuild scheduling policy and foreground SLO target; the default
  /// strict priority reproduces the pre-QoS engine bit-identically.
  workload::QosConfig qos;
  /// Optional observability hooks (borrowed, caller-owned; see
  /// obs::Attach for the uniform semantics): failure markers, request
  /// arrivals, rebuild issue/complete, throttle decisions, and per-disk
  /// service spans.
  obs::Attach observer;
};

struct MmOnlineReport {
  double rebuild_done_s = 0.0;
  /// Reads issued before the arrival cutoff; user_reads == issued.
  /// A read completes unless every copy of its element is failed (it
  /// is then dropped at issue), so requests_completed can lag issued.
  /// Latency/SLO statistics cover completed reads only.
  std::size_t user_reads = 0;
  std::size_t requests_issued = 0;
  std::size_t requests_completed = 0;
  std::size_t degraded_reads = 0;
  double mean_latency_s = 0.0;
  double p50_latency_s = 0.0;
  double p95_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double p999_latency_s = 0.0;

  // --- QoS accounting (zero unless qos sets a target / policy) ---------
  std::size_t slo_violations = 0;
  double slo_violation_pct = 0.0;
  int final_rebuild_budget = -1;  // -1: no throttling policy ran
  int throttle_adjustments = 0;
};

/// Timing-only: contents untouched; pair with
/// MultiMirrorArray::reconstruct for the byte-level rebuild.
Result<MmOnlineReport> run_online_reconstruction(MultiMirrorArray& arr,
                                                 const MmOnlineConfig& cfg = {});

}  // namespace sma::mm
