// On-line reconstruction for the multi-mirror (R-replica) extension:
// rebuild I/O drains in the background while prioritized user reads
// arrive; degraded reads pick the least-loaded surviving copy. The
// R >= 2 counterpart of recon::run_online_reconstruction, supporting
// up to R simultaneous failures.
#pragma once

#include <cstdint>

#include "multimirror/multi_array.hpp"
#include "util/status.hpp"

namespace sma::mm {

struct MmOnlineConfig {
  double user_read_rate_hz = 40.0;
  int max_user_reads = 500;
  std::uint64_t seed = 7;
};

struct MmOnlineReport {
  double rebuild_done_s = 0.0;
  std::size_t user_reads = 0;
  std::size_t degraded_reads = 0;
  double mean_latency_s = 0.0;
  double p50_latency_s = 0.0;
  double p99_latency_s = 0.0;
};

/// Timing-only: contents untouched; pair with
/// MultiMirrorArray::reconstruct for the byte-level rebuild.
Result<MmOnlineReport> run_online_reconstruction(MultiMirrorArray& arr,
                                                 const MmOnlineConfig& cfg = {});

}  // namespace sma::mm
