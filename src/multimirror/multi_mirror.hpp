// Multi-mirror (R-replica) extension of the shifted element
// arrangement — the paper's stated future work: "extend our current
// shifted element arrangement to cope with ... the three-mirror method
// used in [GFS, Ceph]".
//
// Construction. Replica array r (1-based) stores the copy of data
// element a(i, j) at the *affine* position
//
//     ( <i + c_r * j> mod n , i )
//
// which generalizes the paper's shifted arrangement (c = 1). For any
// multiplier c coprime to n the affine arrangement satisfies all three
// of the paper's properties:
//   P1/P2 need j -> i + c*j injective  (gcd(c, n) == 1),
//   P3    needs i -> i + c*j injective (always).
// Distinct multipliers give "orthogonal" arrays: a failed data disk x
// and a failed replica disk y in array r overlap in exactly ONE element
// per stripe (j = c_r^{-1}(y - x)), and two failed replica disks in
// different arrays overlap in exactly one source element — so R
// replica arrays tolerate any R disk failures while reconstruction
// reads stay spread one-per-disk.
//
// The traditional three-mirror baseline (identity arrangements
// everywhere) is available via shifted = false.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "layout/arrangement.hpp"
#include "util/status.hpp"

namespace sma::mm {

struct MultiMirrorConfig {
  /// Data disks per array; also rows per stripe.
  int n = 3;
  /// Replica arrays R (>= 1). R = 1 is the paper's mirror method;
  /// R = 2 the three-mirror method (3 copies of every element).
  int replica_arrays = 2;
  /// true: affine shifted arrangements with distinct multipliers;
  /// false: traditional identical copies.
  bool shifted = true;
  /// Layout-registry spec ("lrc:groups=2", "zigzag", ...). When
  /// non-empty it overrides `shifted`. "traditional"/"shifted" (and
  /// their aliases) map onto the affine family at any R; other layouts
  /// have no orthogonal-multiplier generalization and are accepted for
  /// R = 1 only.
  std::string arrangement;
};

/// One element read: (global disk, row) within a stripe.
struct ReadAt {
  int disk = 0;
  int row = 0;
  bool operator==(const ReadAt&) const = default;
  auto operator<=>(const ReadAt&) const = default;
};

/// Recovery source chosen for one lost element.
struct RecoverySource {
  int lost_disk = 0;   // global index of the disk that lost the element
  int lost_row = 0;
  ReadAt from;         // where the surviving copy is read
};

struct MultiPlan {
  std::vector<RecoverySource> recoveries;
  /// Paper metric: max per-disk read count (reads are deduplicated —
  /// one physical read can feed several lost copies of the same
  /// element).
  int read_accesses = 0;
  std::vector<ReadAt> unique_reads;
};

class MultiMirror {
 public:
  /// Validates the configuration: shifted mode needs R distinct
  /// multipliers coprime to n (i.e. phi(n) >= R).
  static Result<MultiMirror> create(const MultiMirrorConfig& cfg);

  int n() const { return cfg_.n; }
  int replica_arrays() const { return cfg_.replica_arrays; }
  bool shifted() const { return cfg_.shifted; }
  int rows() const { return cfg_.n; }
  int total_disks() const { return (cfg_.replica_arrays + 1) * cfg_.n; }
  int fault_tolerance() const { return cfg_.replica_arrays; }
  double storage_efficiency() const {
    return 1.0 / (cfg_.replica_arrays + 1);
  }
  std::string name() const;

  /// Multiplier used by replica array r (1-based); 0 for traditional.
  int multiplier(int array_r) const;

  // --- disk numbering: data [0, n), array r occupies [r*n, (r+1)*n) ----
  int data_disk(int i) const;
  int replica_disk(int array_r, int local) const;
  /// 0 for the data array, 1..R for replica arrays.
  int array_of(int disk) const;
  int local_index(int disk) const;

  /// Position of the copy of a(i, j) in replica array r (global disk).
  layout::Pos replica_of(int array_r, int data_disk_index, int row) const;
  /// Which data element the cell (disk in array r, row) stores.
  /// Returned Pos.disk is the data-disk index.
  layout::Pos source_of(int array_r, int local_disk, int row) const;

  /// Every location (data + all replicas) holding data element (i, j),
  /// as global (disk, row) pairs; data copy first.
  std::vector<layout::Pos> copies_of(int data_disk_index, int row) const;

  /// Greedy least-loaded reconstruction plan for a set of failed global
  /// disks. kUnrecoverable if any element loses all R+1 copies (only
  /// possible beyond the fault tolerance).
  Result<MultiPlan> plan(const std::vector<int>& failed) const;

  /// Table-I analogue for the multi-mirror layout: all C(total, 2)
  /// double failures grouped by which arrays the failed disks belong
  /// to, with the read-access statistics of each class.
  struct CaseRow {
    std::string label;
    long cases = 0;
    double avg_accesses = 0.0;
    int min_accesses = 0;
    int max_accesses = 0;
  };
  std::vector<CaseRow> enumerate_double_failure_cases() const;

 private:
  MultiMirror(MultiMirrorConfig cfg, std::vector<int> multipliers,
              std::shared_ptr<const layout::MirrorArrangement> custom)
      : cfg_(std::move(cfg)),
        multipliers_(std::move(multipliers)),
        custom_(std::move(custom)) {}

  MultiMirrorConfig cfg_;
  /// multipliers_[r-1] = c_r for replica array r (shifted mode).
  std::vector<int> multipliers_;
  /// Registry-built arrangement for the single replica array (R = 1
  /// with a non-affine layout); null for the affine family.
  std::shared_ptr<const layout::MirrorArrangement> custom_;
};

}  // namespace sma::mm
