// Volume-to-array placement for fleet-scale experiments.
//
// A fleet serves logical volumes, each split into fixed-size segments,
// out of a pool of independent disk arrays. The placement tier decides
// which array holds each segment — the fleet-level analogue of the
// paper's element arrangement inside one array. Three policies:
//
//  * kRoundRobin  — the naive baseline: volume v lives entirely on
//                   array v mod A. One rebuilding array degrades 100%
//                   of every volume it hosts.
//  * kRandom      — every segment lands on an independently uniform
//                   array. Spread is unbounded: nearly every volume
//                   touches a rebuilding array at fleet scale.
//  * kDeclustered — volume v's segments rotate over the k-array group
//                   {(v + j) mod A : j < k} (segment s -> (v + s mod k)
//                   mod A). The shifted-diagonal structure bounds the
//                   blast radius both ways: one array's rebuild
//                   degrades exactly 1/k of any volume that touches
//                   it, and the volumes it hosts spread their other
//                   segments across >= k-1 distinct peer arrays.
//
// Placements are pure functions of the config (kRandom draws from the
// seeded Rng only), so equal configs give identical maps — the fleet
// determinism contract starts here.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace sma::fleet {

enum class PlacementPolicy : std::uint8_t {
  kRoundRobin,
  kRandom,
  kDeclustered,
};

/// Stable lowercase name ("round_robin", "random", "declustered").
const char* to_string(PlacementPolicy policy);
/// Inverse of to_string; kInvalidArgument on unknown names.
Result<PlacementPolicy> placement_policy_from(std::string_view name);

struct PlacementConfig {
  PlacementPolicy policy = PlacementPolicy::kDeclustered;
  /// Arrays in the pool.
  int arrays = 16;
  /// Logical volumes placed over the pool.
  int volumes = 64;
  /// Segments per volume (the placement granularity).
  int segments_per_volume = 8;
  /// kDeclustered: arrays each volume spreads over (clamped to the
  /// pool size; 1 reproduces round-robin's whole-volume placement).
  int spread = 4;
  /// kRandom only; the other policies are deterministic by shape.
  std::uint64_t seed = 2012;
};

/// An immutable volume/segment -> array map plus its inverse views.
class Placement {
 public:
  const PlacementConfig& config() const { return cfg_; }

  /// Array holding segment `segment` of volume `volume`.
  int array_of(int volume, int segment) const {
    return map_[static_cast<std::size_t>(volume) *
                    static_cast<std::size_t>(cfg_.segments_per_volume) +
                static_cast<std::size_t>(segment)];
  }
  /// Distinct arrays volume `volume` touches, ascending.
  const std::vector<int>& arrays_of(int volume) const {
    return volume_arrays_[static_cast<std::size_t>(volume)];
  }
  /// Distinct volumes with at least one segment on `array`, ascending.
  const std::vector<int>& volumes_on(int array) const {
    return array_volumes_[static_cast<std::size_t>(array)];
  }
  /// Segments placed on `array` (the array's share of the fleet).
  std::int64_t segments_on(int array) const {
    return segment_count_[static_cast<std::size_t>(array)];
  }

 private:
  friend Result<Placement> build_placement(const PlacementConfig& cfg);

  PlacementConfig cfg_;
  std::vector<int> map_;  // volume-major [volume][segment]
  std::vector<std::vector<int>> volume_arrays_;
  std::vector<std::vector<int>> array_volumes_;
  std::vector<std::int64_t> segment_count_;
};

/// Build the map for `cfg`; kInvalidArgument on non-positive shapes or
/// a declustered spread larger than the pool allows.
Result<Placement> build_placement(const PlacementConfig& cfg);

}  // namespace sma::fleet
