// FNV-1a digest mixing for fleet determinism contracts.
//
// Fleet runs prove serial-vs-parallel bit-identity by folding every
// deterministic report field into one 64-bit digest; benches and tests
// compare digests instead of diffing whole report trees. Doubles are
// mixed by bit pattern, so "identical" means identical to the last ulp.
#pragma once

#include <bit>
#include <cstdint>

namespace sma::fleet {

inline constexpr std::uint64_t kDigestSeed = 1469598103934665603ULL;

inline std::uint64_t mix(std::uint64_t digest, std::uint64_t v) {
  return (digest ^ v) * 1099511628211ULL;
}

inline std::uint64_t mix(std::uint64_t digest, double v) {
  return mix(digest, std::bit_cast<std::uint64_t>(v));
}

}  // namespace sma::fleet
