// Fleet failure/repair timeline — concurrent-rebuild exposure over a
// long horizon.
//
// The serving simulation (fleet.hpp) measures what a rebuild does to
// request latency; this module measures how often rebuilds happen at
// all, and how often they overlap. Every array runs the PR 5 lifetime
// machinery in miniature: failures arrive as a memoryless per-disk
// process, each failure drives a repair::Lifecycle (so transitions are
// policed and flow to obs as typed kStateChange events), and a failure
// landing mid-rebuild is fatal with the exact enumerated probability
// from recon::count_fatal_sets — the paper's trade-off (the shifted
// arrangement has n times more fatal second disks but an n-times
// shorter window) carried to fleet scale.
//
// Determinism: each array forks its RNG from (seed, array index), so
// the timeline is a pure function of the config regardless of event
// interleaving.
#pragma once

#include <cstdint>

#include "layout/architecture.hpp"
#include "obs/observer.hpp"
#include "util/status.hpp"

namespace sma::fleet {

struct TimelineConfig {
  /// Arrays in the fleet, all sharing one architecture.
  int arrays = 64;
  /// Simulated horizon, hours.
  double horizon_hours = 24.0 * 365.0;
  /// Per-disk exponential MTTF, hours.
  double disk_mttf_hours = 5.0e4;
  /// Rebuild duration after a failure (and restore duration after a
  /// data loss), hours. Measure it with the serving simulation and
  /// scale to production capacity.
  double repair_hours = 8.0;
  std::uint64_t seed = 2012;
  /// Correlated failure domains (enclosures / racks). Arrays
  /// k*domain_size .. (k+1)*domain_size-1 share a domain, and a
  /// member's per-disk failure hazard is multiplied by
  /// domain_hazard_factor while any *other* member of its domain holds
  /// an in-flight repair or restore — the
  /// recon::MonteCarloParams::enclosure_hazard_factor correlation
  /// carried from the MC estimator to the actual fleet timeline.
  /// Pending failure draws are redrawn (memorylessness makes that
  /// distribution-exact) whenever the domain's stress changes.
  /// domain_size 0 (or factor 1) = independent arrays, bit-identical
  /// to the pre-domain timeline.
  int domain_size = 0;
  double domain_hazard_factor = 1.0;
  /// Borrowed observer: per-array lifecycle transitions, fleet
  /// counters, and a "fleet.concurrent_rebuilds" timeline probe.
  obs::Attach observer;
};

struct TimelineReport {
  int arrays = 0;
  double horizon_hours = 0.0;
  /// Disk failures that landed within the horizon.
  int failures = 0;
  /// Repairs that completed within the horizon.
  int repairs_completed = 0;
  /// Failures that hit a fatal surviving disk mid-rebuild (enumerated
  /// fatal fractions); the array restores from backup afterwards.
  int data_loss_events = 0;
  /// Arrays simultaneously holding an in-flight repair/restore,
  /// integrated over the horizon.
  int max_concurrent_rebuilds = 0;
  double mean_concurrent_rebuilds = 0.0;
  /// Fraction of the horizon with >= 1 (resp. >= 2) rebuilds running.
  double frac_time_rebuilding = 0.0;
  double frac_time_ge2 = 0.0;
  /// Sum over arrays of hours spent with at least one disk down.
  double array_hours_degraded = 0.0;
  /// Lifecycle transitions recorded across all arrays.
  std::uint64_t transitions = 0;
  std::uint64_t digest = 0;
};

/// Run the failure/repair process for `cfg.arrays` copies of `arch`.
Result<TimelineReport> run_failure_timeline(const layout::Architecture& arch,
                                            const TimelineConfig& cfg);

}  // namespace sma::fleet
