// Fleet — thousands of independent mirror arrays behind a placement
// tier, serving one aggregate workload.
//
// The paper's P1/P2 properties spread one disk's rebuild load across
// the surviving disks of a single array; the fleet layer is the
// datacenter-scale analogue. Logical volumes are split into segments
// and mapped onto arrays by a PlacementPolicy (placement.hpp); an
// aggregate arrival stream (workload::ArrivalProcess) is routed
// request-by-request through that map into per-array traces; every
// array then replays its trace through the existing online simulator
// (recon::run_online_reconstruction — rebuilding arrays serve degraded,
// healthy arrays just serve), fanned out on sim::MultiKernel with the
// established per-case seeding discipline. Serial and parallel runs are
// digest-identical: the routing pass is serial and each array's
// simulation is a pure function of its trace and seed.
//
// Two exposure questions fall out, and the two layers answer them
// jointly:
//  * What does a rebuild do to the volumes that touch it? Per-volume
//    latency attribution (worst-volume degraded p99) — where the
//    declustered placement's 1/k blast radius and the shifted
//    arrangement's spread rebuild compound.
//  * How often do rebuilds overlap fleet-wide? The failure/repair
//    timeline (timeline.hpp), parameterized by the rebuild durations
//    this serving simulation measures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/placement.hpp"
#include "fleet/timeline.hpp"
#include "obs/observer.hpp"
#include "util/status.hpp"
#include "workload/arrival.hpp"

namespace sma::fleet {

/// Which element arrangement the fleet's arrays use. kAlternating
/// builds a mixed fleet (even arrays shifted, odd traditional).
/// Deprecated spelling kept one release: FleetConfig::layout accepts
/// any registry spec list and supersedes this enum.
enum class ArrangementMix : std::uint8_t {
  kShifted,
  kTraditional,
  kAlternating,
};

const char* to_string(ArrangementMix mix);
Result<ArrangementMix> arrangement_mix_from(std::string_view name);

struct FleetConfig {
  /// Arrays in the pool.
  int arrays = 16;
  /// Data disks per array (the paper's n); rows per stripe.
  int n = 4;
  /// Parity-protected mirrors (fault tolerance 2).
  bool parity = false;
  ArrangementMix arrangement = ArrangementMix::kShifted;
  /// Comma-separated layout-registry specs cycled across arrays (array
  /// a uses entry a % count): "zigzag", "shifted,traditional" (the old
  /// alternating mix), "lrc:groups=2,shifted,zigzag", ... When
  /// non-empty this supersedes `arrangement`.
  std::string layout;
  /// Stripe stacks per array (each stack holds total_disks stripes).
  int stacks = 1;
  /// Volume-to-array map; `placement.arrays` is overwritten with
  /// `arrays` (one source of truth).
  PlacementConfig placement;
  /// The aggregate arrival stream routed across the fleet. Open-loop
  /// kinds only: closed-loop feedback belongs to per-array runs.
  workload::ArrivalConfig arrival;
  workload::MixConfig rw_mix;
  /// Arrays carrying one failed disk (rebuilding while serving); which
  /// arrays — and which disk — derive deterministically from `seed`.
  int failed_arrays = 1;
  std::uint64_t seed = 2012;
  /// MultiKernel worker threads (0 = hardware concurrency, 1 = serial).
  std::size_t threads = 1;
  /// Run the fleet-hours failure/repair timeline after the serving
  /// phase (timeline.hpp).
  bool run_timeline = true;
  /// Timeline parameters; `arrays` and `seed` are overwritten from the
  /// fleet's, and `repair_hours` is derived from the measured mean
  /// rebuild duration when `derive_repair_hours` is set.
  TimelineConfig timeline;
  bool derive_repair_hours = true;
  /// Seconds-to-production scale for the derived repair time: the toy
  /// arrays rebuild in simulated seconds; production-capacity disks
  /// take that many times longer. repair_hours = mean_rebuild_s *
  /// scale / 3600.
  double repair_capacity_scale = 3600.0;
  /// Borrowed observer: fleet counters/gauges plus everything the
  /// timeline emits. Per-array simulations run unobserved (they fan
  /// out across threads).
  obs::Attach observer;
};

/// Per-volume serving outcome (requests across all of its segments'
/// arrays merged back together).
struct VolumeSummary {
  int volume = -1;
  /// At least one of its arrays was rebuilding during the run.
  bool degraded = false;
  std::uint64_t requests = 0;
  double mean_latency_s = 0.0;
  double p99_latency_s = 0.0;
};

struct FleetReport {
  int arrays = 0;
  int volumes = 0;
  int failed_arrays = 0;
  std::uint64_t requests_routed = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t degraded_reads = 0;

  // --- cross-array latency (over every completed request) -------------
  double mean_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double p999_latency_s = 0.0;
  double max_latency_s = 0.0;

  // --- volume-level exposure ------------------------------------------
  /// Fraction of volumes with >= 1 segment on a rebuilding array.
  double degraded_volume_fraction = 0.0;
  double worst_volume_p99_s = 0.0;
  int worst_volume = -1;
  /// Worst p99 among degraded volumes — the number a placement policy
  /// is judged by.
  double worst_degraded_volume_p99_s = 0.0;
  int worst_degraded_volume = -1;
  std::vector<VolumeSummary> volume_summaries;

  // --- rebuild + reliability ------------------------------------------
  double mean_rebuild_s = 0.0;
  double max_rebuild_s = 0.0;
  /// Closed-form aggregate MTTDL: per-array Markov MTTDL (enumerated
  /// fatal counts, the timeline's repair time) divided across the
  /// fleet's independent arrays; 1/MTTDL rates add for mixed fleets.
  double fleet_mttdl_hours = 0.0;
  TimelineReport timeline;

  /// Simulated array-seconds served (for throughput reporting).
  double sim_array_seconds = 0.0;
  /// Folds every deterministic field above plus each per-array report;
  /// the serial-vs-parallel contract compares this.
  std::uint64_t digest = 0;
};

/// Route, serve, aggregate. kInvalidArgument on bad shapes or a
/// closed-loop aggregate arrival.
Result<FleetReport> run_fleet(const FleetConfig& cfg);

}  // namespace sma::fleet
