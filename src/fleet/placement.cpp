#include "fleet/placement.hpp"

#include <algorithm>
#include <string>

#include "util/rng.hpp"

namespace sma::fleet {

const char* to_string(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kRoundRobin:
      return "round_robin";
    case PlacementPolicy::kRandom:
      return "random";
    case PlacementPolicy::kDeclustered:
      return "declustered";
  }
  return "unknown";
}

Result<PlacementPolicy> placement_policy_from(std::string_view name) {
  if (name == "round_robin") return PlacementPolicy::kRoundRobin;
  if (name == "random") return PlacementPolicy::kRandom;
  if (name == "declustered") return PlacementPolicy::kDeclustered;
  return invalid_argument("unknown placement policy: " + std::string(name));
}

Result<Placement> build_placement(const PlacementConfig& cfg) {
  if (cfg.arrays <= 0 || cfg.volumes <= 0 || cfg.segments_per_volume <= 0)
    return invalid_argument(
        "placement needs positive arrays, volumes and segments_per_volume");
  if (cfg.policy == PlacementPolicy::kDeclustered &&
      (cfg.spread <= 0 || cfg.spread > cfg.arrays))
    return invalid_argument("declustered spread must lie in [1, arrays]");

  Placement p;
  p.cfg_ = cfg;
  const std::size_t volumes = static_cast<std::size_t>(cfg.volumes);
  const std::size_t segments = static_cast<std::size_t>(cfg.segments_per_volume);
  p.map_.resize(volumes * segments);
  Rng rng(cfg.seed);
  for (std::size_t v = 0; v < volumes; ++v) {
    for (std::size_t s = 0; s < segments; ++s) {
      int a = 0;
      switch (cfg.policy) {
        case PlacementPolicy::kRoundRobin:
          a = static_cast<int>(v) % cfg.arrays;
          break;
        case PlacementPolicy::kRandom:
          a = static_cast<int>(
              rng.next_below(static_cast<std::uint64_t>(cfg.arrays)));
          break;
        case PlacementPolicy::kDeclustered:
          // Rotated diagonal group: segment s of volume v sits on array
          // (v + s mod k) mod A, so the volume occupies the k
          // consecutive arrays starting at v mod A and its segments
          // round-robin within that group.
          a = static_cast<int>(
              (v + s % static_cast<std::size_t>(cfg.spread)) %
              static_cast<std::size_t>(cfg.arrays));
          break;
      }
      p.map_[v * segments + s] = a;
    }
  }

  p.volume_arrays_.resize(volumes);
  p.array_volumes_.resize(static_cast<std::size_t>(cfg.arrays));
  p.segment_count_.assign(static_cast<std::size_t>(cfg.arrays), 0);
  for (std::size_t v = 0; v < volumes; ++v) {
    std::vector<int>& va = p.volume_arrays_[v];
    for (std::size_t s = 0; s < segments; ++s) {
      const int a = p.map_[v * segments + s];
      ++p.segment_count_[static_cast<std::size_t>(a)];
      if (std::find(va.begin(), va.end(), a) == va.end()) va.push_back(a);
    }
    std::sort(va.begin(), va.end());
    for (const int a : va)
      p.array_volumes_[static_cast<std::size_t>(a)].push_back(
          static_cast<int>(v));
  }
  return p;
}

}  // namespace sma::fleet
