#include "fleet/timeline.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "fleet/digest.hpp"
#include "repair/lifecycle.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace sma::fleet {

namespace {

/// Per-array actor state. The lifecycle is replaced wholesale after a
/// data loss (kDataLoss is terminal by design); `fail_epoch` /
/// `repair_epoch` invalidate events scheduled under a stale hazard —
/// the kernel has no cancellation, so superseded events no-op instead.
struct ArrayActor {
  Rng rng{0};
  std::unique_ptr<repair::Lifecycle> lc;
  std::vector<int> failed;
  bool in_repair = false;
  bool restoring = false;
  int fail_epoch = 0;
  int repair_epoch = 0;
};

}  // namespace

Result<TimelineReport> run_failure_timeline(const layout::Architecture& arch,
                                            const TimelineConfig& cfg) {
  if (cfg.arrays <= 0) return invalid_argument("timeline needs arrays > 0");
  if (cfg.horizon_hours <= 0.0 || cfg.disk_mttf_hours <= 0.0 ||
      cfg.repair_hours <= 0.0)
    return invalid_argument(
        "timeline horizon, disk MTTF and repair time must be positive");
  if (cfg.domain_size < 0)
    return invalid_argument("timeline domain_size must be >= 0");
  if (cfg.domain_size > 0 && cfg.domain_hazard_factor < 1.0)
    return invalid_argument(
        "timeline domain_hazard_factor must be >= 1 with domains enabled");

  const int disks = arch.total_disks();
  obs::Observer* const ob = cfg.observer.get();
  sim::Simulation sim;
  if (ob != nullptr) sim.set_observer(ob);

  std::vector<ArrayActor> actors(static_cast<std::size_t>(cfg.arrays));
  std::uint64_t seed_state = cfg.seed;
  for (auto& actor : actors) {
    actor.rng = Rng(splitmix64(seed_state));
    actor.lc = std::make_unique<repair::Lifecycle>(arch, cfg.observer);
  }

  TimelineReport report;
  report.arrays = cfg.arrays;
  report.horizon_hours = cfg.horizon_hours;

  // Time-weighted concurrency accounting, advanced at every event.
  int active = 0;  // arrays with an in-flight repair or restore
  double last_t = 0.0;
  double active_integral = 0.0;
  double time_ge1 = 0.0;
  double time_ge2 = 0.0;
  auto account_to = [&](double t) {
    const double dt = t - last_t;
    if (dt <= 0.0) return;
    active_integral += static_cast<double>(active) * dt;
    if (active >= 1) time_ge1 += dt;
    if (active >= 2) time_ge2 += dt;
    last_t = t;
  };

  if (ob != nullptr && ob->metrics != nullptr)
    ob->metrics->add_probe("fleet.concurrent_rebuilds",
                           [&active](double, double) {
                             return static_cast<double>(active);
                           });

  // Failure-domain stress: per-domain count of members holding an
  // in-flight repair or restore. A stressed member's hazard is boosted,
  // and every status flip redraws the pending failure draws of the
  // domain's other members (in index order, each from its own RNG, so
  // the timeline stays a pure function of the config).
  const int dsize = cfg.domain_size;
  const bool domains = dsize > 0 && cfg.domain_hazard_factor > 1.0;
  std::vector<int> domain_active(
      domains ? static_cast<std::size_t>((cfg.arrays + dsize - 1) / dsize)
              : 0,
      0);

  std::function<void(int)> schedule_failure;
  auto redraw_domain = [&](int a) {
    if (!domains) return;
    const int lo = (a / dsize) * dsize;
    const int hi = std::min(cfg.arrays, lo + dsize);
    for (int m = lo; m < hi; ++m) {
      if (m == a) continue;
      ArrayActor& other = actors[static_cast<std::size_t>(m)];
      if (other.restoring) continue;  // offline: no pending draw
      ++other.fail_epoch;
      schedule_failure(m);
    }
  };

  schedule_failure = [&](int a) {
    ArrayActor& actor = actors[static_cast<std::size_t>(a)];
    const int live = disks - static_cast<int>(actor.failed.size());
    if (live <= 0) return;
    double mean = cfg.disk_mttf_hours / static_cast<double>(live);
    if (domains) {
      const int self = (actor.in_repair || actor.restoring) ? 1 : 0;
      if (domain_active[static_cast<std::size_t>(a / dsize)] > self)
        mean /= cfg.domain_hazard_factor;
    }
    const double dt = actor.rng.next_exponential(mean);
    const double when = sim.now() + dt;
    if (when > cfg.horizon_hours) return;
    const int epoch = actor.fail_epoch;
    sim.schedule_at(when, [&, a, epoch] {
      ArrayActor& act = actors[static_cast<std::size_t>(a)];
      if (epoch != act.fail_epoch || act.restoring) return;
      account_to(sim.now());
      ++report.failures;
      if (ob != nullptr) ob->count("fleet.failures");
      // Draw the victim uniformly among live disks.
      const int nlive = disks - static_cast<int>(act.failed.size());
      int pick = static_cast<int>(
          act.rng.next_below(static_cast<std::uint64_t>(nlive)));
      int victim = -1;
      for (int d = 0; d < disks; ++d) {
        if (std::find(act.failed.begin(), act.failed.end(), d) !=
            act.failed.end())
          continue;
        if (pick-- == 0) {
          victim = d;
          break;
        }
      }
      act.failed.push_back(victim);
      (void)act.lc->on_failure(sim.now(), victim);
      if (act.lc->state() == repair::ArrayState::kDataLoss) {
        // The exact recoverability oracle says this set lost data. The
        // array restores from backup; it is offline (cannot fail again)
        // until the restore completes.
        ++report.data_loss_events;
        if (ob != nullptr) ob->count("fleet.data_loss_events");
        report.transitions += act.lc->history().size();
        act.lc = std::make_unique<repair::Lifecycle>(arch, cfg.observer);
        act.failed.clear();
        const bool was_active = act.in_repair;
        if (!was_active) ++active;
        act.in_repair = false;
        act.restoring = true;
        if (domains && !was_active) {
          ++domain_active[static_cast<std::size_t>(a / dsize)];
          redraw_domain(a);
        }
        ++act.fail_epoch;
        ++act.repair_epoch;
        const int repoch = act.repair_epoch;
        const double done = sim.now() + cfg.repair_hours;
        if (done <= cfg.horizon_hours) {
          sim.schedule_at(done, [&, a, repoch] {
            ArrayActor& ra = actors[static_cast<std::size_t>(a)];
            if (repoch != ra.repair_epoch || !ra.restoring) return;
            account_to(sim.now());
            ra.restoring = false;
            --active;
            if (domains) {
              --domain_active[static_cast<std::size_t>(a / dsize)];
              redraw_domain(a);
            }
            ++ra.fail_epoch;
            schedule_failure(a);
          });
        }
        report.max_concurrent_rebuilds =
            std::max(report.max_concurrent_rebuilds, active);
        return;
      }
      (void)act.lc->on_repair_start(sim.now(), victim);
      if (!act.in_repair) {
        act.in_repair = true;
        ++active;
        report.max_concurrent_rebuilds =
            std::max(report.max_concurrent_rebuilds, active);
        if (domains) {
          ++domain_active[static_cast<std::size_t>(a / dsize)];
          redraw_domain(a);
        }
      }
      // (Re)arm the rebuild: an additional failure mid-rebuild restarts
      // the clock (the executor replans the whole stripe set).
      ++act.repair_epoch;
      const int repoch = act.repair_epoch;
      const double done = sim.now() + cfg.repair_hours;
      if (done <= cfg.horizon_hours) {
        sim.schedule_at(done, [&, a, repoch] {
          ArrayActor& ra = actors[static_cast<std::size_t>(a)];
          if (repoch != ra.repair_epoch || !ra.in_repair) return;
          account_to(sim.now());
          for (const int d : ra.failed)
            (void)ra.lc->on_repair_complete(sim.now(), d);
          ra.failed.clear();
          ra.in_repair = false;
          --active;
          ++report.repairs_completed;
          if (domains) {
            --domain_active[static_cast<std::size_t>(a / dsize)];
            redraw_domain(a);
          }
          ++ra.fail_epoch;
          schedule_failure(a);
        });
      }
      // The hazard changed (one fewer live disk): redraw the next
      // failure under the new rate. Exponential memorylessness makes
      // the redraw distribution-exact.
      ++act.fail_epoch;
      schedule_failure(a);
    });
  };

  for (int a = 0; a < cfg.arrays; ++a) schedule_failure(a);
  sim.run();
  account_to(cfg.horizon_hours);

  for (const auto& actor : actors)
    report.transitions += actor.lc->history().size();
  report.mean_concurrent_rebuilds = active_integral / cfg.horizon_hours;
  report.frac_time_rebuilding = time_ge1 / cfg.horizon_hours;
  report.frac_time_ge2 = time_ge2 / cfg.horizon_hours;
  report.array_hours_degraded = active_integral;

  std::uint64_t d = kDigestSeed;
  d = mix(d, static_cast<std::uint64_t>(report.failures));
  d = mix(d, static_cast<std::uint64_t>(report.repairs_completed));
  d = mix(d, static_cast<std::uint64_t>(report.data_loss_events));
  d = mix(d, static_cast<std::uint64_t>(report.max_concurrent_rebuilds));
  d = mix(d, report.mean_concurrent_rebuilds);
  d = mix(d, report.frac_time_rebuilding);
  d = mix(d, report.frac_time_ge2);
  d = mix(d, report.transitions);
  report.digest = d;

  if (ob != nullptr && ob->metrics != nullptr) ob->metrics->clear_probes();
  return report;
}

}  // namespace sma::fleet
