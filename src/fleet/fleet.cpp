#include "fleet/fleet.hpp"

#include <algorithm>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "array/disk_array.hpp"
#include "fleet/digest.hpp"
#include "recon/online.hpp"
#include "recon/reliability.hpp"
#include "sim/multi_kernel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace sma::fleet {

const char* to_string(ArrangementMix mix) {
  switch (mix) {
    case ArrangementMix::kShifted:
      return "shifted";
    case ArrangementMix::kTraditional:
      return "traditional";
    case ArrangementMix::kAlternating:
      return "alternating";
  }
  return "unknown";
}

Result<ArrangementMix> arrangement_mix_from(std::string_view name) {
  if (name == "shifted") return ArrangementMix::kShifted;
  if (name == "traditional") return ArrangementMix::kTraditional;
  if (name == "alternating") return ArrangementMix::kAlternating;
  return invalid_argument("unknown arrangement mix: " + std::string(name));
}

namespace {

/// Outcome of one array's serving simulation (one MultiKernel case).
struct ArrayOutcome {
  recon::OnlineReport report;
  Status status = Status::ok();
};

/// The per-array architecture cycle: the explicit `layout` spec list
/// when given, else the enum mix ([shifted], [traditional], or
/// [shifted, traditional] — array a uses entry a % size, so the
/// alternating mix keeps its even-arrays-shifted meaning).
Result<std::vector<layout::Architecture>> resolve_layout_cycle(
    const FleetConfig& cfg) {
  std::vector<layout::Architecture> archs;
  if (cfg.layout.empty()) {
    const bool first_shifted = cfg.arrangement != ArrangementMix::kTraditional;
    archs.push_back(cfg.parity
                        ? layout::Architecture::mirror_with_parity(
                              cfg.n, first_shifted)
                        : layout::Architecture::mirror(cfg.n, first_shifted));
    if (cfg.arrangement == ArrangementMix::kAlternating)
      archs.push_back(cfg.parity ? layout::Architecture::mirror_with_parity(
                                       cfg.n, false)
                                 : layout::Architecture::mirror(cfg.n, false));
    return archs;
  }
  std::string_view rest = cfg.layout;
  while (true) {
    const std::size_t comma = rest.find(',');
    const std::string spec(rest.substr(0, comma));
    if (spec.empty())
      return invalid_argument("fleet layout list has an empty entry: '" +
                              cfg.layout + "'");
    auto arch = cfg.parity
                    ? layout::Architecture::mirror_with_parity_named(cfg.n, spec)
                    : layout::Architecture::mirror_named(cfg.n, spec);
    if (!arch.is_ok()) return arch.status();
    archs.push_back(std::move(arch).take());
    if (comma == std::string_view::npos) break;
    rest = rest.substr(comma + 1);
  }
  return archs;
}

}  // namespace

Result<FleetReport> run_fleet(const FleetConfig& cfg) {
  if (cfg.arrays <= 0) return invalid_argument("fleet needs arrays > 0");
  if (cfg.n < 2) return invalid_argument("fleet arrays need n >= 2");
  if (cfg.stacks <= 0) return invalid_argument("fleet needs stacks > 0");
  if (cfg.failed_arrays < 0 || cfg.failed_arrays > cfg.arrays)
    return invalid_argument("failed_arrays must lie in [0, arrays]");
  if (cfg.arrival.kind == workload::ArrivalKind::kClosedLoop)
    return invalid_argument(
        "fleet aggregate arrival must be open-loop (closed-loop feedback "
        "belongs to per-array runs)");
  if (cfg.repair_capacity_scale <= 0.0)
    return invalid_argument("repair_capacity_scale must be > 0");

  auto cycle = resolve_layout_cycle(cfg);
  if (!cycle.is_ok()) return cycle.status();
  const std::vector<layout::Architecture> archs = std::move(cycle).take();
  auto arch_of = [&](int array) -> const layout::Architecture& {
    return archs[static_cast<std::size_t>(array) % archs.size()];
  };

  PlacementConfig pc = cfg.placement;
  pc.arrays = cfg.arrays;
  auto placed = build_placement(pc);
  if (!placed.is_ok()) return placed.status();
  const Placement placement = std::move(placed).take();

  auto proc_r = workload::make_arrival_process(cfg.arrival);
  if (!proc_r.is_ok()) return proc_r.status();
  const auto proc = std::move(proc_r).take();

  // Derived RNG streams: one splitmix chain off the fleet seed, so the
  // routing draws, the failure draws and every per-array arrival seed
  // are independent yet all pure functions of cfg.seed.
  std::uint64_t seed_state = cfg.seed;
  Rng route_rng(splitmix64(seed_state));
  Rng fail_rng(splitmix64(seed_state));
  const std::size_t arrays = static_cast<std::size_t>(cfg.arrays);
  std::vector<std::uint64_t> case_seeds(arrays);
  for (auto& s : case_seeds) s = splitmix64(seed_state);

  // --- route the aggregate stream (serial, the determinism anchor) ----
  Rng arrival_rng(cfg.arrival.seed);
  std::vector<std::vector<workload::TracePoint>> traces(arrays);
  std::vector<std::vector<int>> trace_volume(arrays);
  FleetReport report;
  report.arrays = cfg.arrays;
  report.volumes = pc.volumes;
  double t = proc->first_arrival_s();
  for (int i = 0; i < cfg.arrival.max_requests; ++i) {
    const int v = static_cast<int>(
        route_rng.next_below(static_cast<std::uint64_t>(pc.volumes)));
    const int s = static_cast<int>(route_rng.next_below(
        static_cast<std::uint64_t>(pc.segments_per_volume)));
    const int forced = proc->write_override();
    const bool write = forced >= 0
                           ? forced == 1
                           : route_rng.next_bool(cfg.rw_mix.write_fraction);
    const std::size_t a = static_cast<std::size_t>(placement.array_of(v, s));
    traces[a].push_back({t, write});
    trace_volume[a].push_back(v);
    ++report.requests_routed;
    const double d = proc->next_delay(arrival_rng);
    if (d < 0.0) break;
    t += d;
  }

  // --- pick the rebuilding arrays (deterministic partial shuffle) -----
  std::vector<int> order(arrays);
  std::iota(order.begin(), order.end(), 0);
  for (int i = 0; i < cfg.failed_arrays; ++i) {
    const std::size_t j =
        static_cast<std::size_t>(i) +
        static_cast<std::size_t>(fail_rng.next_below(
            static_cast<std::uint64_t>(cfg.arrays - i)));
    std::swap(order[static_cast<std::size_t>(i)], order[j]);
  }
  std::vector<int> failed_disk_of(arrays, -1);
  for (int i = 0; i < cfg.failed_arrays; ++i) {
    const std::size_t a = static_cast<std::size_t>(order[static_cast<std::size_t>(i)]);
    const int disks = arch_of(static_cast<int>(a)).total_disks();
    failed_disk_of[a] =
        static_cast<int>(fail_rng.next_below(static_cast<std::uint64_t>(disks)));
  }
  report.failed_arrays = cfg.failed_arrays;

  // --- fan the per-array simulations out on the kernel ----------------
  // Each case is a pure function of (index, its trace, its seed): it
  // builds its own array, serves its own requests, and returns its own
  // report. That is the MultiKernel contract, and it is what makes
  // threads=1 and threads=N digest-identical.
  sim::MultiKernel kernel(sim::MultiKernelOptions{cfg.threads});
  std::vector<ArrayOutcome> outcomes =
      kernel.map(arrays, [&](std::size_t a) -> ArrayOutcome {
        ArrayOutcome out;
        array::ArrayConfig acfg;
        acfg.arch = arch_of(static_cast<int>(a));
        acfg.stripes = cfg.stacks * acfg.arch.total_disks();
        acfg.content_bytes = 64;  // timing-only run; contents never read
        array::DiskArray arr(acfg);
        if (failed_disk_of[a] >= 0) arr.fail_physical(failed_disk_of[a]);

        recon::OnlineConfig ocfg;
        if (traces[a].empty()) {
          // No routed requests: an empty trace is rejected by the
          // arrival layer, so inject nothing through the Poisson kind.
          ocfg.arrival.kind = workload::ArrivalKind::kPoisson;
          ocfg.arrival.max_requests = 0;
        } else {
          ocfg.arrival.kind = workload::ArrivalKind::kTrace;
          ocfg.arrival.trace = traces[a];
          ocfg.arrival.max_requests = static_cast<int>(traces[a].size());
        }
        ocfg.arrival.seed = case_seeds[a];
        ocfg.record_latencies = true;
        auto r = recon::run_online_reconstruction(arr, ocfg);
        if (!r.is_ok()) {
          out.status = r.status();
          return out;
        }
        out.report = std::move(r).take();
        return out;
      });

  for (std::size_t a = 0; a < arrays; ++a)
    if (!outcomes[a].status.is_ok()) return outcomes[a].status;

  // --- aggregate (serial, array order — deterministic) ----------------
  SampleSet all_latencies;
  all_latencies.reserve(static_cast<std::size_t>(report.requests_routed));
  std::vector<SampleSet> volume_latencies(
      static_cast<std::size_t>(pc.volumes));
  RunningStat rebuilds;
  std::uint64_t digest = kDigestSeed;
  for (std::size_t a = 0; a < arrays; ++a) {
    const recon::OnlineReport& rep = outcomes[a].report;
    if (rep.latencies.size() != traces[a].size())
      return internal_error(
          "fleet: per-array latency record does not match its trace (" +
          std::to_string(rep.latencies.size()) + " vs " +
          std::to_string(traces[a].size()) + ")");
    for (std::size_t i = 0; i < rep.latencies.size(); ++i) {
      const double lat = rep.latencies[i];
      if (lat < 0.0) continue;  // the request died without completing
      all_latencies.add(lat);
      volume_latencies[static_cast<std::size_t>(trace_volume[a][i])].add(lat);
    }
    report.requests_completed += rep.requests_completed;
    report.degraded_reads += rep.degraded_reads;
    if (failed_disk_of[a] >= 0) rebuilds.add(rep.rebuild_done_s);
    double sim_end = traces[a].empty() ? 0.0 : traces[a].back().t_s;
    if (rep.rebuild_done_s > sim_end) sim_end = rep.rebuild_done_s;
    if (rep.max_latency_s > 0.0 && !traces[a].empty())
      sim_end = std::max(sim_end, traces[a].back().t_s + rep.max_latency_s);
    report.sim_array_seconds += sim_end;
    digest = mix(digest, rep.rebuild_done_s);
    digest = mix(digest, static_cast<std::uint64_t>(rep.requests_completed));
    digest = mix(digest, static_cast<std::uint64_t>(rep.degraded_reads));
    digest = mix(digest, rep.mean_latency_s);
    digest = mix(digest, rep.p99_latency_s);
  }

  if (!all_latencies.empty()) {
    report.mean_latency_s = all_latencies.mean();
    report.p99_latency_s = all_latencies.percentile(99.0);
    report.p999_latency_s = all_latencies.percentile(99.9);
    report.max_latency_s = all_latencies.max();
  }
  report.mean_rebuild_s = rebuilds.mean();
  report.max_rebuild_s = rebuilds.max();

  // --- volume-level exposure ------------------------------------------
  int degraded_volumes = 0;
  report.volume_summaries.reserve(static_cast<std::size_t>(pc.volumes));
  for (int v = 0; v < pc.volumes; ++v) {
    VolumeSummary vs;
    vs.volume = v;
    for (const int a : placement.arrays_of(v)) {
      if (failed_disk_of[static_cast<std::size_t>(a)] >= 0) {
        vs.degraded = true;
        break;
      }
    }
    const SampleSet& lat = volume_latencies[static_cast<std::size_t>(v)];
    vs.requests = lat.count();
    if (!lat.empty()) {
      vs.mean_latency_s = lat.mean();
      vs.p99_latency_s = lat.percentile(99.0);
    }
    if (vs.degraded) ++degraded_volumes;
    if (!lat.empty() && vs.p99_latency_s > report.worst_volume_p99_s) {
      report.worst_volume_p99_s = vs.p99_latency_s;
      report.worst_volume = v;
    }
    if (vs.degraded && !lat.empty() &&
        vs.p99_latency_s > report.worst_degraded_volume_p99_s) {
      report.worst_degraded_volume_p99_s = vs.p99_latency_s;
      report.worst_degraded_volume = v;
    }
    report.volume_summaries.push_back(vs);
  }
  report.degraded_volume_fraction =
      static_cast<double>(degraded_volumes) / static_cast<double>(pc.volumes);

  // --- reliability: timeline + closed-form fleet MTTDL ----------------
  TimelineConfig tc = cfg.timeline;
  tc.arrays = cfg.arrays;
  tc.seed = splitmix64(seed_state);
  tc.observer = cfg.observer;
  if (cfg.derive_repair_hours && report.mean_rebuild_s > 0.0)
    tc.repair_hours =
        report.mean_rebuild_s * cfg.repair_capacity_scale / 3600.0;
  recon::MttdlParams mp;
  mp.disk_mttf_hours = tc.disk_mttf_hours;
  mp.mttr_hours = tc.repair_hours;
  // Mixed fleets: independent arrays' data-loss rates add, so the fleet
  // MTTDL is the harmonic composition of the per-layout MTTDLs
  // (estimated once per cycle entry, not once per array).
  double loss_rate = 0.0;
  for (std::size_t l = 0; l < archs.size(); ++l) {
    const int count = cfg.arrays / static_cast<int>(archs.size()) +
                      (static_cast<int>(l) <
                               cfg.arrays % static_cast<int>(archs.size())
                           ? 1
                           : 0);
    if (count == 0) continue;
    const double mttdl = recon::estimate_mttdl(archs[l], mp).mttdl_hours;
    if (mttdl > 0.0) loss_rate += static_cast<double>(count) / mttdl;
  }
  report.fleet_mttdl_hours = loss_rate > 0.0 ? 1.0 / loss_rate : 0.0;

  if (cfg.run_timeline) {
    // The timeline models one shared architecture; a mixed fleet uses
    // the first cycle entry (its repair_hours already reflect the mixed
    // mean). The pre-registry enum path keeps its historical choice of
    // a plain shifted mirror for non-traditional mixes.
    auto tl = run_failure_timeline(
        !cfg.layout.empty() ? archs[0]
        : cfg.arrangement == ArrangementMix::kTraditional
            ? arch_of(1)
            : layout::Architecture::mirror(cfg.n, true),
        tc);
    if (!tl.is_ok()) return tl.status();
    report.timeline = std::move(tl).take();
  }

  obs::Observer* const ob = cfg.observer.get();
  if (ob != nullptr) {
    ob->count("fleet.requests_routed", report.requests_routed);
    ob->count("fleet.requests_completed", report.requests_completed);
    ob->count("fleet.degraded_volumes",
              static_cast<std::uint64_t>(degraded_volumes));
  }

  digest = mix(digest, static_cast<std::uint64_t>(report.requests_routed));
  digest = mix(digest, static_cast<std::uint64_t>(report.requests_completed));
  digest = mix(digest, static_cast<std::uint64_t>(report.degraded_reads));
  digest = mix(digest, report.mean_latency_s);
  digest = mix(digest, report.p99_latency_s);
  digest = mix(digest, report.p999_latency_s);
  digest = mix(digest, report.worst_volume_p99_s);
  digest = mix(digest, report.worst_degraded_volume_p99_s);
  digest = mix(digest, report.degraded_volume_fraction);
  digest = mix(digest, report.mean_rebuild_s);
  digest = mix(digest, report.max_rebuild_s);
  digest = mix(digest, report.fleet_mttdl_hours);
  digest = mix(digest, report.timeline.digest);
  report.digest = digest;
  return report;
}

}  // namespace sma::fleet
