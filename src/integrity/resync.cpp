#include "integrity/resync.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "gf/region.hpp"

namespace sma::integrity {

namespace {

bool equal_spans(std::span<const std::uint8_t> a,
                 std::span<const std::uint8_t> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

}  // namespace

Result<ResyncReport> resync(array::DiskArray& arr, const ResyncOptions& opts) {
  const auto& arch = arr.arch();
  if (!arch.is_mirror())
    return invalid_argument("resync supports the mirror architectures");
  if (arr.crashed())
    return failed_precondition("resync on a powered-off array; power_cycle() first");

  auto& drl = arr.dirty_log();
  ResyncReport report;

  // The stripe set to reconcile: dirty regions per the log, or every
  // stripe when the log is absent/distrusted (full resync). Without a
  // DRL the whole array is one implicit region.
  std::vector<std::pair<int, std::pair<int, int>>> regions;  // (id, [b,e))
  if (drl.enabled()) {
    report.regions_total = drl.regions();
    for (int r = 0; r < drl.regions(); ++r)
      if (opts.full || drl.dirty(r))
        regions.push_back({r, {drl.region_begin(r), drl.region_end(r)}});
  } else {
    report.regions_total = 1;
    regions.push_back({0, {0, arr.stripes()}});
  }
  report.regions_scanned = static_cast<int>(regions.size());

  obs::Observer* ob = opts.observer.get();
  const int n = arch.n();
  auto disk_live = [&](int logical, int s) {
    return !arr.physical(arr.physical_disk(logical, s)).failed();
  };

  // Phase 1 (timed): stream both copies of every pair — and the parity
  // element — of every suspect stripe.
  std::vector<array::Op> reads;
  for (const auto& [r, range] : regions) {
    (void)r;
    for (int s = range.first; s < range.second; ++s) {
      for (int i = 0; i < n; ++i) {
        const int dd = arch.data_disk(i);
        for (int j = 0; j < arch.rows(); ++j) {
          const layout::Pos rp = arch.replica_of(i, j);
          if (!disk_live(dd, s) || !disk_live(rp.disk, s)) continue;
          reads.push_back({dd, s, j, disk::IoKind::kRead});
          reads.push_back({rp.disk, s, rp.row, disk::IoKind::kRead});
        }
      }
      if (arch.has_parity() && disk_live(arch.parity_disk(), s))
        for (int j = 0; j < arch.rows(); ++j)
          reads.push_back({arch.parity_disk(), s, j, disk::IoKind::kRead});
    }
  }
  arr.reset_timelines();
  const auto read_stats = arr.execute(reads, 0.0);
  report.elements_read = reads.size();
  report.logical_bytes_read = read_stats.logical_bytes_read;
  report.makespan_s = read_stats.elapsed_s();

  // Phase 2: reconcile contents, collecting the repair writes to time.
  std::vector<array::Op> writes;
  const std::size_t eb = arr.config().content_bytes;
  std::vector<std::uint8_t> expect(eb);
  for (const auto& [r, range] : regions) {
    for (int s = range.first; s < range.second; ++s) {
      ++report.stripes_scanned;
      bool all_pairs_live = true;
      for (int i = 0; i < n; ++i) {
        const int dd = arch.data_disk(i);
        for (int j = 0; j < arch.rows(); ++j) {
          const layout::Pos rp = arch.replica_of(i, j);
          if (!disk_live(dd, s) || !disk_live(rp.disk, s)) {
            ++report.pairs_skipped;
            all_pairs_live = false;
            continue;
          }
          ++report.pairs_compared;
          auto data = arr.content(dd, s, j);
          auto mirror = arr.content(rp.disk, s, rp.row);
          if (equal_spans(data, mirror)) continue;
          ++report.diverged;
          if (ob != nullptr) {
            obs::TraceEvent ev;
            ev.kind = obs::EventKind::kCorruption;
            ev.t_s = read_stats.end_s;
            ev.disk = arr.physical_disk(dd, s);
            ev.stripe = s;
            ev.slot = arr.slot(s, j);
            ob->emit(ev);
          }
          // Arbitrate: checksum-consistent copy wins; data copy wins
          // the un-attributable cases (md's primary-copy rule).
          bool data_wins = true;
          if (arr.checksums_enabled()) {
            const bool d_ok = arr.element_checksum_ok(dd, s, j);
            const bool m_ok = arr.element_checksum_ok(rp.disk, s, rp.row);
            if (!d_ok && m_ok) data_wins = false;
          }
          if (data_wins) {
            std::copy(data.begin(), data.end(), mirror.begin());
            writes.push_back({rp.disk, s, rp.row, disk::IoKind::kWrite});
          } else {
            std::copy(mirror.begin(), mirror.end(), data.begin());
            writes.push_back({dd, s, j, disk::IoKind::kWrite});
          }
          ++report.copies_rewritten;
          if (arr.checksums_enabled()) {
            // Commit the survivor as the authoritative version: a
            // checksum recording an intent that never reached media
            // would otherwise fail verification forever.
            arr.update_element_checksum(dd, s, j);
            arr.update_element_checksum(rp.disk, s, rp.row);
          }
        }
      }
      // Parity of a suspect stripe is recomputed, never trusted: the
      // crash may have interrupted the parity write of the same
      // request that tore a copy.
      if (arch.has_parity() && disk_live(arch.parity_disk(), s) &&
          all_pairs_live) {
        bool data_live = true;
        for (int i = 0; i < n && data_live; ++i)
          data_live = disk_live(arch.data_disk(i), s);
        if (data_live) {
          for (int j = 0; j < arch.rows(); ++j) {
            gf::region_zero(expect);
            for (int i = 0; i < n; ++i)
              gf::region_xor(arr.content(arch.data_disk(i), s, j), expect);
            auto parity = arr.content(arch.parity_disk(), s, j);
            if (equal_spans(expect, parity)) continue;
            std::copy(expect.begin(), expect.end(), parity.begin());
            writes.push_back(
                {arch.parity_disk(), s, j, disk::IoKind::kWrite});
            ++report.parity_rewritten;
            if (arr.checksums_enabled())
              arr.update_element_checksum(arch.parity_disk(), s, j);
          }
        }
      }
    }
  }

  // Phase 3 (timed): the repair writes queue behind the scan reads.
  if (!writes.empty()) {
    const auto write_stats = arr.execute(writes, read_stats.end_s);
    report.logical_bytes_written = write_stats.logical_bytes_written;
    report.makespan_s = write_stats.end_s;
  }

  // Only now clear the intent bits: the repair writes above go through
  // execute(), which logs intent for them like any other write — a
  // region is clean only once nothing is in flight against it.
  for (const auto& [r, range] : regions) {
    (void)range;
    if (drl.enabled()) drl.clear(r);
    if (ob != nullptr) {
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kResync;
      ev.t_s = report.makespan_s;
      ev.slot = r;
      ob->emit(ev);
      ob->count("integrity.regions_resynced");
    }
  }
  return report;
}

}  // namespace sma::integrity
