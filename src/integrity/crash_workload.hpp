// Content-ful mirrored write workload + silent-corruption injectors.
//
// The timing-only workload executors (workload/) never touch stored
// bytes, but crash experiments need content honesty: the crash victim's
// torn/lost/misdirected bytes must be *observable* afterward. Each
// request here applies the new bytes to the data copy, its replica, and
// the parity delta (checksums maintained when enabled) and then issues
// the three timed writes through DiskArray::execute — so an armed crash
// point garbles exactly the slots whose writes were in flight, and the
// dirty-region log records exactly the regions with outstanding intent.
//
// The injectors model the three classic silent-corruption modes on an
// otherwise healthy array; recon::scrub with checksums is expected to
// detect and repair all of them.
#pragma once

#include <cstdint>
#include <vector>

#include "array/disk_array.hpp"
#include "obs/observer.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace sma::integrity {

struct CrashWorkloadConfig {
  /// Element-write requests to issue (each touches data + mirror +
  /// parity when present).
  int requests = 100;
  std::uint64_t seed = 1;
  /// Clear the dirty-region log every k requests, modeling a quiesce
  /// point where all in-flight writes drained (md clears intent bits
  /// lazily). 0 = never. This is what makes the post-crash log
  /// *partially* dirty instead of accumulating every region ever
  /// touched.
  int quiesce_every = 0;
};

struct CrashWorkloadReport {
  int requests_issued = 0;
  std::uint64_t element_writes = 0;
  /// Writes whose bytes never fully reached media (crash victim +
  /// powered-off tail of its batch).
  std::uint64_t lost_writes = 0;
  bool crashed = false;
  double crash_t_s = 0.0;
  /// Dirty regions left in the log when the workload stopped.
  int dirty_regions = 0;
  double makespan_s = 0.0;
};

/// Run the workload until `requests` are issued or the array crashes.
/// Mirror architectures only. The array is left exactly as the crash
/// (if any) left it: powered off, divergent copies in dirty regions.
Result<CrashWorkloadReport> run_crash_workload(array::DiskArray& arr,
                                               const CrashWorkloadConfig& cfg);

/// The three silent-corruption modes a checksum scrub exists to catch.
enum class SilentCorruption {
  kBitRot,            // media rot: content changed under a valid checksum
  kLostWrite,         // write acked (checksum updated) but never hit media
  kMisdirectedWrite,  // write landed on the adjacent slot, clobbering it
};

struct InjectedCorruption {
  SilentCorruption kind = SilentCorruption::kBitRot;
  /// The element whose content no longer matches its checksum. A
  /// misdirected write reports two entries: the starved target and the
  /// clobbered neighbor.
  int logical_disk = 0;
  int stripe = 0;
  int row = 0;
};

/// Inject `count` corruptions of `kind`, one per distinct stripe (so
/// redundancy partners stay intact and every injection is repairable).
/// kLostWrite / kMisdirectedWrite require checksums enabled — they
/// *are* checksum-vs-content divergences by definition. count must not
/// exceed the stripe count.
Result<std::vector<InjectedCorruption>> inject_silent_corruption(
    array::DiskArray& arr, Rng& rng, int count, SilentCorruption kind);

}  // namespace sma::integrity
