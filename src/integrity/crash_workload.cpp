#include "integrity/crash_workload.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "gf/region.hpp"

namespace sma::integrity {

namespace {

std::uint64_t request_seed(std::uint64_t base, int request) {
  std::uint64_t s =
      base ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(request) + 1));
  return splitmix64(s);
}

}  // namespace

Result<CrashWorkloadReport> run_crash_workload(array::DiskArray& arr,
                                               const CrashWorkloadConfig& cfg) {
  const auto& arch = arr.arch();
  if (!arch.is_mirror())
    return invalid_argument("crash workload supports the mirror architectures");
  if (cfg.requests <= 0) return invalid_argument("requests must be positive");
  if (arr.crashed())
    return failed_precondition("crash workload on a powered-off array");

  CrashWorkloadReport report;
  std::uint64_t seed_state = cfg.seed;
  Rng rng(splitmix64(seed_state));
  const std::size_t eb = arr.config().content_bytes;
  std::vector<std::uint8_t> fresh(eb);
  std::vector<std::uint8_t> delta(eb);

  for (int req = 0; req < cfg.requests; ++req) {
    const int i = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(arch.n())));
    const int s = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(arr.stripes())));
    const int j = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(arch.rows())));
    const int dd = arch.data_disk(i);
    const layout::Pos rp = arch.replica_of(i, j);

    fill_pattern(request_seed(cfg.seed, req), fresh.data(), fresh.size());

    // Apply the request's bytes to contents first, then time the writes:
    // if the crash fires inside this batch, execute() garbles exactly
    // the slots whose writes never completed.
    auto data = arr.content(dd, s, j);
    if (arch.has_parity()) {
      // Parity delta: parity ^= old ^ new.
      std::copy(data.begin(), data.end(), delta.begin());
      gf::region_xor(fresh, delta);
      gf::region_xor(delta, arr.content(arch.parity_disk(), s, j));
    }
    std::copy(fresh.begin(), fresh.end(), data.begin());
    auto mirror = arr.content(rp.disk, s, rp.row);
    std::copy(fresh.begin(), fresh.end(), mirror.begin());
    if (arr.checksums_enabled()) {
      arr.update_element_checksum(dd, s, j);
      arr.update_element_checksum(rp.disk, s, rp.row);
      if (arch.has_parity())
        arr.update_element_checksum(arch.parity_disk(), s, j);
    }

    std::vector<array::Op> ops;
    ops.push_back({dd, s, j, disk::IoKind::kWrite});
    ops.push_back({rp.disk, s, rp.row, disk::IoKind::kWrite});
    if (arch.has_parity())
      ops.push_back({arch.parity_disk(), s, j, disk::IoKind::kWrite});

    const auto stats = arr.execute(ops, 0.0);
    ++report.requests_issued;
    report.element_writes += ops.size();
    report.lost_writes += stats.lost_writes;
    report.makespan_s = std::max(report.makespan_s, stats.end_s);
    if (stats.crashed) {
      report.crashed = true;
      report.crash_t_s = arr.crash_time_s();
      break;
    }
    if (cfg.quiesce_every > 0 && (req + 1) % cfg.quiesce_every == 0)
      arr.dirty_log().clear_all();
  }
  report.dirty_regions = arr.dirty_log().dirty_count();
  return report;
}

Result<std::vector<InjectedCorruption>> inject_silent_corruption(
    array::DiskArray& arr, Rng& rng, int count, SilentCorruption kind) {
  const auto& arch = arr.arch();
  if (count < 0 || count > arr.stripes())
    return invalid_argument(
        "corruption count must be in [0, stripes]: one distinct stripe per "
        "injection keeps every corruption repairable");
  if (!arr.failed_physical().empty())
    return failed_precondition("inject_silent_corruption on a degraded array");
  if (kind != SilentCorruption::kBitRot) {
    if (!arch.is_mirror())
      return invalid_argument("lost/misdirected writes need a mirror replica");
    if (!arr.checksums_enabled())
      return failed_precondition(
          "lost/misdirected writes are checksum-vs-content divergences; "
          "enable ArrayConfig::checksums");
  }

  std::vector<InjectedCorruption> injected;
  std::set<int> used_stripes;
  const std::size_t eb = arr.config().content_bytes;
  std::vector<std::uint8_t> fresh(eb);
  std::vector<std::uint8_t> old(eb);
  std::vector<std::uint8_t> delta(eb);
  int guard = 0;
  while (static_cast<int>(injected.size()) <
             (kind == SilentCorruption::kMisdirectedWrite ? 2 * count : count) &&
         ++guard < 100000) {
    const int s = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(arr.stripes())));
    if (used_stripes.count(s) > 0) continue;
    const int j = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(arch.rows())));

    if (kind == SilentCorruption::kBitRot) {
      const int logical = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(arch.total_disks())));
      auto elem = arr.content(logical, s, j);
      const std::size_t at = static_cast<std::size_t>(rng.next_below(eb));
      elem[at] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
      used_stripes.insert(s);
      injected.push_back({kind, logical, s, j});
      continue;
    }

    const int i = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(arch.n())));
    const int dd = arch.data_disk(i);
    const layout::Pos rp = arch.replica_of(i, j);
    auto data = arr.content(dd, s, j);
    std::copy(data.begin(), data.end(), old.begin());
    fill_pattern(rng.next_u64(), fresh.data(), fresh.size());

    if (kind == SilentCorruption::kLostWrite) {
      // The request reached the replica and the parity, and was acked —
      // but the data-copy write never hit media. Stored checksum says
      // `fresh`, media still holds `old`.
      auto mirror = arr.content(rp.disk, s, rp.row);
      std::copy(fresh.begin(), fresh.end(), mirror.begin());
      arr.update_element_checksum(rp.disk, s, rp.row);
      if (arch.has_parity()) {
        std::copy(old.begin(), old.end(), delta.begin());
        gf::region_xor(fresh, delta);
        gf::region_xor(delta, arr.content(arch.parity_disk(), s, j));
        arr.update_element_checksum(arch.parity_disk(), s, j);
      }
      std::copy(fresh.begin(), fresh.end(), data.begin());
      arr.update_element_checksum(dd, s, j);  // the ack covers the intent
      std::copy(old.begin(), old.end(), data.begin());  // ...media disagrees
      used_stripes.insert(s);
      injected.push_back({kind, dd, s, j});
      continue;
    }

    // Misdirected: the data-copy write landed one slot over on the same
    // physical disk, clobbering whatever lived there. Two divergences:
    // the starved target (checksum=fresh, content=old) and the
    // clobbered neighbor (content=fresh under its own checksum).
    const int phys = arr.physical_disk(dd, s);
    const std::int64_t sl = arr.slot(s, j);
    const std::int64_t nsl =
        sl + 1 < arr.physical(phys).slot_count() ? sl + 1 : sl - 1;
    const int ns = static_cast<int>(nsl / arch.rows());
    const int nj = static_cast<int>(nsl % arch.rows());
    if (ns != s && used_stripes.count(ns) > 0) continue;
    const int nlogical = arr.logical_disk(phys, ns);
    // Keep each injection independently repairable: the neighbor must
    // not be the victim's own replica or parity input row mate.
    if (ns == s && (nlogical == rp.disk || nlogical == dd)) continue;

    auto mirror = arr.content(rp.disk, s, rp.row);
    std::copy(fresh.begin(), fresh.end(), mirror.begin());
    arr.update_element_checksum(rp.disk, s, rp.row);
    if (arch.has_parity()) {
      std::copy(old.begin(), old.end(), delta.begin());
      gf::region_xor(fresh, delta);
      gf::region_xor(delta, arr.content(arch.parity_disk(), s, j));
      arr.update_element_checksum(arch.parity_disk(), s, j);
    }
    std::copy(fresh.begin(), fresh.end(), data.begin());
    arr.update_element_checksum(dd, s, j);
    std::copy(old.begin(), old.end(), data.begin());
    auto neighbor = arr.physical(phys).content(nsl);
    std::copy(fresh.begin(), fresh.end(), neighbor.begin());
    used_stripes.insert(s);
    used_stripes.insert(ns);
    injected.push_back({kind, dd, s, j});
    injected.push_back({kind, nlogical, ns, nj});
  }
  if (static_cast<int>(injected.size()) <
      (kind == SilentCorruption::kMisdirectedWrite ? 2 * count : count))
    return internal_error("could not place the requested corruption count");
  return injected;
}

}  // namespace sma::integrity
