// DirtyRegionLog — an md-bitmap-style write-intent log over stripe
// regions.
//
// Before a mirror write is issued, its region's bit is set; after a
// crash, only regions whose bit is still set can hold a write hole
// (copies diverged by an interrupted write), so resync re-reads just
// those regions instead of the whole array. A region covers
// `region_stripes` consecutive stripes: coarser regions mean fewer
// bitmap updates in the write path but more data re-read after a crash
// — exactly the trade-off bench_crash_resync sweeps.
//
// Header-only so array::DiskArray can maintain the log without a link
// dependency on sma_integrity (the library DAG stays acyclic, the same
// arrangement repair/checkpoint.hpp uses toward recon).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace sma::integrity {

class DirtyRegionLog {
 public:
  /// Disabled log: enabled() is false, every query reports clean.
  DirtyRegionLog() = default;

  /// Log over `stripes` stripes, `region_stripes` stripes per region
  /// (the last region may be shorter). region_stripes <= 0 disables.
  DirtyRegionLog(int stripes, int region_stripes)
      : stripes_(stripes), region_stripes_(region_stripes) {
    if (region_stripes_ > 0 && stripes_ > 0)
      dirty_.assign(static_cast<std::size_t>(regions()), false);
  }

  bool enabled() const { return region_stripes_ > 0 && stripes_ > 0; }
  int stripes() const { return stripes_; }
  int region_stripes() const { return region_stripes_; }
  int regions() const {
    return enabled() ? (stripes_ + region_stripes_ - 1) / region_stripes_ : 0;
  }

  int region_of(int stripe) const {
    assert(enabled() && stripe >= 0 && stripe < stripes_);
    return stripe / region_stripes_;
  }
  /// Stripe range [begin, end) covered by `region`.
  int region_begin(int region) const { return region * region_stripes_; }
  int region_end(int region) const {
    const int end = (region + 1) * region_stripes_;
    return end < stripes_ ? end : stripes_;
  }

  /// Log write intent for a stripe (idempotent). Counts every call so
  /// experiments can report bitmap write traffic.
  void mark(int stripe) {
    if (!enabled()) return;
    ++marks_;
    dirty_[static_cast<std::size_t>(region_of(stripe))] = true;
  }

  bool dirty(int region) const {
    return enabled() && dirty_[static_cast<std::size_t>(region)];
  }
  bool stripe_dirty(int stripe) const {
    return enabled() && dirty(region_of(stripe));
  }

  /// Resync finished a region: clear its intent bit.
  void clear(int region) {
    if (enabled()) dirty_[static_cast<std::size_t>(region)] = false;
  }
  /// Quiesce point: all in-flight writes have drained, nothing can hold
  /// a write hole.
  void clear_all() {
    if (enabled()) dirty_.assign(dirty_.size(), false);
  }
  /// Pre-resync without a trusted log (or a full-resync policy): every
  /// region is suspect.
  void mark_all() {
    if (enabled()) dirty_.assign(dirty_.size(), true);
  }

  int dirty_count() const {
    int n = 0;
    for (const bool b : dirty_)
      if (b) ++n;
    return n;
  }
  std::vector<int> dirty_regions() const {
    std::vector<int> out;
    for (int r = 0; r < regions(); ++r)
      if (dirty(r)) out.push_back(r);
    return out;
  }

  /// Total mark() calls — a proxy for bitmap write traffic.
  std::uint64_t marks() const { return marks_; }

 private:
  int stripes_ = 0;
  int region_stripes_ = 0;
  std::vector<bool> dirty_;
  std::uint64_t marks_ = 0;
};

}  // namespace sma::integrity
