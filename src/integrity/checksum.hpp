// ChecksumStore — per-element content fingerprints kept out-of-band.
//
// Models the checksum block a real array stores alongside (not inside)
// each element: silent media corruption changes the content but not the
// stored checksum, a lost write updates the checksum (the write was
// acked) but not the content, and a misdirected write leaves some other
// element's content under this element's checksum. The verifying scrub
// compares fingerprint(content) against the store to detect all three.
//
// The store is addressed by (physical disk, slot) — checksums describe
// media locations, so they survive logical remapping and disk failure
// (the metadata lives off the failed platters).
//
// Header-only for the same layering reason as dirty_region_log.hpp.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace sma::integrity {

/// Content fingerprint used for element checksums (64-bit FNV-1a).
inline std::uint64_t element_checksum(std::span<const std::uint8_t> bytes) {
  return fingerprint(bytes.data(), bytes.size());
}

class ChecksumStore {
 public:
  /// Disabled store: enabled() false, no memory.
  ChecksumStore() = default;

  ChecksumStore(int disks, std::int64_t slots_per_disk)
      : disks_(disks),
        slots_(slots_per_disk),
        sums_(static_cast<std::size_t>(disks) *
              static_cast<std::size_t>(slots_per_disk)) {}

  bool enabled() const { return !sums_.empty(); }
  int disks() const { return disks_; }
  std::int64_t slots_per_disk() const { return slots_; }

  std::uint64_t get(int disk, std::int64_t slot) const {
    return sums_[index(disk, slot)];
  }
  void set(int disk, std::int64_t slot, std::uint64_t sum) {
    sums_[index(disk, slot)] = sum;
  }
  /// Record the checksum of the element's current content.
  void update(int disk, std::int64_t slot,
              std::span<const std::uint8_t> bytes) {
    set(disk, slot, element_checksum(bytes));
  }
  /// True when the stored checksum matches the content handed in.
  bool matches(int disk, std::int64_t slot,
               std::span<const std::uint8_t> bytes) const {
    return get(disk, slot) == element_checksum(bytes);
  }

 private:
  std::size_t index(int disk, std::int64_t slot) const {
    assert(enabled());
    assert(disk >= 0 && disk < disks_);
    assert(slot >= 0 && slot < slots_);
    return static_cast<std::size_t>(disk) * static_cast<std::size_t>(slots_) +
           static_cast<std::size_t>(slot);
  }

  int disks_ = 0;
  std::int64_t slots_ = 0;
  std::vector<std::uint64_t> sums_;
};

}  // namespace sma::integrity
