// Post-crash mirror resync driven by the dirty-region log.
//
// A power loss between the two writes of a mirror pair leaves the
// copies silently divergent (the write hole). Resync closes the hole:
// re-read every mirror pair that *might* hold an interrupted write,
// arbitrate which copy survives, rewrite the loser, and recompute the
// parity column of the affected rows. With a DirtyRegionLog only the
// regions whose write-intent bit survived the crash are suspect, so a
// partial-dirty workload resyncs a strict subset of what a full resync
// (or a whole-disk rebuild) would re-read — the cost bench_crash_resync
// quantifies for the shifted vs traditional arrangements.
//
// Arbitration order: the copy whose out-of-band checksum matches its
// content wins; when both (or neither) match — the un-attributable
// write-hole case — the data copy wins, md's primary-copy rule. Parity
// is never used to arbitrate here: the crash may have interrupted the
// parity write of the same request, so post-crash parity is itself
// suspect and is recomputed from the reconciled data instead.
#pragma once

#include <cstdint>

#include "array/disk_array.hpp"
#include "obs/observer.hpp"
#include "util/status.hpp"

namespace sma::integrity {

struct ResyncOptions {
  /// Ignore the dirty-region log and resync every region — the cost a
  /// crash without a (trusted) write-intent log pays.
  bool full = false;
  /// Emits one kResync event per processed region and a kCorruption
  /// event per divergent pair.
  obs::Attach observer;
};

struct ResyncReport {
  int regions_total = 0;
  /// Regions actually re-read (== regions_total for a full resync).
  int regions_scanned = 0;
  int stripes_scanned = 0;
  /// Timed element reads issued (both mirror copies + parity).
  std::uint64_t elements_read = 0;
  std::uint64_t pairs_compared = 0;
  /// Mirror pairs whose copies disagreed (write holes found).
  std::uint64_t diverged = 0;
  /// Loser copies rewritten from the arbitration winner.
  std::uint64_t copies_rewritten = 0;
  /// Parity elements recomputed from reconciled data rows.
  std::uint64_t parity_rewritten = 0;
  /// Pairs skipped because one side sits on a failed disk (the rebuild,
  /// not the resync, owns those elements).
  std::uint64_t pairs_skipped = 0;
  double makespan_s = 0.0;
  std::uint64_t logical_bytes_read = 0;
  std::uint64_t logical_bytes_written = 0;
};

/// Resync a mirror-architecture array after power_cycle(). Processes
/// dirty regions (all regions when `full` or when the array has no
/// DRL), clears each region's intent bit once reconciled, and commits
/// the surviving copy as authoritative — checksums included, when the
/// array keeps them. Pairs touching failed disks are skipped; rerun the
/// rebuild for those. kFailedPrecondition while the array is still
/// powered off; kInvalidArgument for non-mirror architectures.
Result<ResyncReport> resync(array::DiskArray& arr,
                            const ResyncOptions& opts = {});

}  // namespace sma::integrity
