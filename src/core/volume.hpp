// MirroredVolume — the user-facing facade over the whole library: a
// mirror (optionally parity-protected) volume with the traditional or
// the paper's shifted element arrangement, supporting degraded reads,
// consistent writes, disk failure injection, and verified rebuild.
//
// Quickstart:
//   sma::core::VolumeConfig cfg;
//   cfg.n = 5; cfg.shifted = true; cfg.with_parity = true;
//   auto vol = sma::core::MirroredVolume::create(cfg).take();
//   vol.fail_disk(2);
//   auto report = vol.rebuild();            // verified rebuild
//   report.value().read_throughput_mbps();  // paper's Fig. 9 metric
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "array/disk_array.hpp"
#include "recon/executor.hpp"
#include "util/status.hpp"

namespace sma::core {

struct VolumeConfig {
  /// Data disks per array (the paper's n); also rows per stripe.
  int n = 3;
  /// Add the parity disk (fault tolerance 2, paper Section V).
  bool with_parity = false;
  /// Use the paper's shifted arrangement (false = traditional RAID-1).
  bool shifted = true;
  /// Layout-registry spec ("lrc:groups=2", "zigzag", ...). When
  /// non-empty it overrides `shifted` and resolves through
  /// layout::AlgorithmRegistry::global().
  std::string arrangement;
  /// Stacks of stripes; each stack holds total_disks stripes so the
  /// rotation covers every logical-to-physical assignment.
  int stacks = 1;
  bool rotate = true;
  disk::DiskSpec spec = disk::DiskSpec::savvio_10k3();
  std::size_t content_bytes = 4096;
  std::uint64_t logical_element_bytes = 4ull * 1024 * 1024;
  std::uint64_t seed = 1;
};

class MirroredVolume {
 public:
  /// Validates the config, builds and populates the array.
  static Result<MirroredVolume> create(const VolumeConfig& cfg);

  const layout::Architecture& arch() const { return array_.arch(); }
  array::DiskArray& array() { return array_; }
  const array::DiskArray& array() const { return array_; }
  int stripes() const { return array_.stripes(); }

  /// Read a data element; transparently degrades to the replica or the
  /// parity path when disks are failed. kUnrecoverable when no path
  /// survives.
  Status read_element(int data_disk, int stripe, int row,
                      std::span<std::uint8_t> out) const;

  /// Write a data element, updating every live copy and the parity
  /// element (delta update). kUnrecoverable when the old value cannot
  /// be obtained for the parity delta.
  Status write_element(int data_disk, int stripe, int row,
                       std::span<const std::uint8_t> bytes);

  /// Volume capacity in bytes: data elements only, at content size.
  /// The linear address space is row-major across the data array:
  /// offset 0 is (disk 0, stripe 0, row 0), then disk 1, ... — the
  /// same order the paper's "large write" strategy fills rows.
  std::uint64_t capacity_bytes() const;

  /// Read an arbitrary byte range [offset, offset + out.size()) of the
  /// linear address space; degrades like read_element. kOutOfRange if
  /// the range exceeds capacity.
  Status read_range(std::uint64_t offset, std::span<std::uint8_t> out) const;

  /// Write an arbitrary byte range; partial-element writes perform
  /// read-modify-write of the touched elements.
  Status write_range(std::uint64_t offset,
                     std::span<const std::uint8_t> bytes);

  void fail_disk(int physical) { array_.fail_physical(physical); }
  std::vector<int> failed_disks() const { return array_.failed_physical(); }

  /// Rebuild all failed disks (verified by default).
  Result<recon::ReconReport> rebuild(const recon::ReconOptions& opts = {}) {
    return recon::reconstruct(array_, opts);
  }

  /// Mirror/parity internal consistency of current contents.
  Status verify() const { return array_.verify_consistency(); }

 private:
  explicit MirroredVolume(array::ArrayConfig cfg) : array_(std::move(cfg)) {}

  bool live(int logical, int stripe) const;

  array::DiskArray array_;
};

}  // namespace sma::core
