#include "core/trace.hpp"

#include <sstream>

#include "util/rng.hpp"

namespace sma::core {

Result<std::vector<TraceOp>> parse_trace(std::istream& in) {
  std::vector<TraceOp> ops;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string kind;
    if (!(fields >> kind)) continue;  // blank

    TraceOp op;
    if (kind == "R" || kind == "r") op.is_write = false;
    else if (kind == "W" || kind == "w") op.is_write = true;
    else
      return invalid_argument("trace line " + std::to_string(line_no) +
                              ": unknown op '" + kind + "'");
    long long offset = 0;
    long long length = 0;
    if (!(fields >> offset >> length) || offset < 0 || length <= 0)
      return invalid_argument("trace line " + std::to_string(line_no) +
                              ": expected non-negative offset and positive "
                              "length");
    std::string extra;
    if (fields >> extra)
      return invalid_argument("trace line " + std::to_string(line_no) +
                              ": trailing tokens");
    op.offset = static_cast<std::uint64_t>(offset);
    op.length = static_cast<std::uint64_t>(length);
    ops.push_back(op);
  }
  return ops;
}

Result<TraceReplayReport> replay_trace(core::MirroredVolume& volume,
                                       const std::vector<TraceOp>& ops,
                                       std::uint64_t seed) {
  TraceReplayReport report;
  std::vector<std::uint8_t> buffer;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const TraceOp& op = ops[i];
    buffer.resize(op.length);
    if (op.is_write) {
      fill_pattern(seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)), buffer.data(),
                   buffer.size());
      Status st = volume.write_range(op.offset, buffer);
      if (!st.is_ok())
        return Status(st.code(), "trace op " + std::to_string(i + 1) + ": " +
                                     st.message());
      ++report.writes;
      report.bytes_written += op.length;
    } else {
      Status st = volume.read_range(op.offset, buffer);
      if (!st.is_ok())
        return Status(st.code(), "trace op " + std::to_string(i + 1) + ": " +
                                     st.message());
      ++report.reads;
      report.bytes_read += op.length;
    }
  }
  return report;
}

}  // namespace sma::core
