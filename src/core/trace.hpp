// Trace-driven workload replay against a MirroredVolume.
//
// Trace format: one operation per line,
//     R <offset> <length>
//     W <offset> <length>
// with byte offsets/lengths against the volume's linear data address
// space. '#'-prefixed lines and blank lines are ignored. This is the
// adoption path for replaying real application traces against the
// shifted and traditional arrangements.
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "core/volume.hpp"
#include "util/status.hpp"

namespace sma::core {

struct TraceOp {
  bool is_write = false;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

/// Parse a trace; fails with kInvalidArgument naming the first bad
/// line (1-based).
Result<std::vector<TraceOp>> parse_trace(std::istream& in);

struct TraceReplayReport {
  std::size_t reads = 0;
  std::size_t writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

/// Replay a parsed trace against the volume (content-level; write data
/// is a deterministic pattern keyed by op index so replays are
/// reproducible and self-verifying: a read that follows a write of the
/// same range must return the written bytes). Fails on the first op
/// the volume rejects.
Result<TraceReplayReport> replay_trace(core::MirroredVolume& volume,
                                       const std::vector<TraceOp>& ops,
                                       std::uint64_t seed = 1);

}  // namespace sma::core
