#include "core/volume.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "gf/region.hpp"

namespace sma::core {

Result<MirroredVolume> MirroredVolume::create(const VolumeConfig& cfg) {
  if (cfg.n < 1) return invalid_argument("n must be >= 1");
  if (cfg.stacks < 1) return invalid_argument("stacks must be >= 1");
  if (cfg.content_bytes == 0 || cfg.logical_element_bytes == 0)
    return invalid_argument("element sizes must be positive");

  array::ArrayConfig ac;
  if (cfg.arrangement.empty()) {
    ac.arch = cfg.with_parity
                  ? layout::Architecture::mirror_with_parity(cfg.n, cfg.shifted)
                  : layout::Architecture::mirror(cfg.n, cfg.shifted);
  } else {
    auto arch =
        cfg.with_parity
            ? layout::Architecture::mirror_with_parity_named(cfg.n,
                                                             cfg.arrangement)
            : layout::Architecture::mirror_named(cfg.n, cfg.arrangement);
    if (!arch.is_ok()) return arch.status();
    ac.arch = std::move(arch).take();
  }
  ac.stripes = cfg.stacks * ac.arch.total_disks();
  ac.rotate = cfg.rotate;
  ac.spec = cfg.spec;
  ac.content_bytes = cfg.content_bytes;
  ac.logical_element_bytes = cfg.logical_element_bytes;
  ac.seed = cfg.seed;

  MirroredVolume vol(std::move(ac));
  vol.array_.initialize();
  return vol;
}

bool MirroredVolume::live(int logical, int stripe) const {
  return !array_.physical(array_.physical_disk(logical, stripe)).failed();
}

Status MirroredVolume::read_element(int data_disk, int stripe, int row,
                                    std::span<std::uint8_t> out) const {
  const auto& arch = array_.arch();
  if (data_disk < 0 || data_disk >= arch.n() || stripe < 0 ||
      stripe >= array_.stripes() || row < 0 || row >= arch.rows())
    return out_of_range("read_element coordinates out of range");
  if (out.size() != array_.config().content_bytes)
    return invalid_argument("read buffer size mismatch");

  if (live(arch.data_disk(data_disk), stripe)) {
    auto src = array_.content(arch.data_disk(data_disk), stripe, row);
    std::copy(src.begin(), src.end(), out.begin());
    return Status::ok();
  }
  const layout::Pos replica = arch.replica_of(data_disk, row);
  if (live(replica.disk, stripe)) {
    auto src = array_.content(replica.disk, stripe, replica.row);
    std::copy(src.begin(), src.end(), out.begin());
    return Status::ok();
  }
  // Parity path: XOR the rest of the row with the parity element.
  if (arch.has_parity() && live(arch.parity_disk(), stripe)) {
    std::fill(out.begin(), out.end(), 0);
    for (int i = 0; i < arch.n(); ++i) {
      if (i == data_disk) continue;
      if (!live(arch.data_disk(i), stripe))
        return unrecoverable("row peer also failed; element unreadable");
      gf::region_xor(array_.content(arch.data_disk(i), stripe, row), out);
    }
    gf::region_xor(array_.content(arch.parity_disk(), stripe, row), out);
    return Status::ok();
  }
  return unrecoverable("element " + std::to_string(data_disk) + "/" +
                       std::to_string(stripe) + "/" + std::to_string(row) +
                       " has no surviving copy or parity path");
}

Status MirroredVolume::write_element(int data_disk, int stripe, int row,
                                     std::span<const std::uint8_t> bytes) {
  const auto& arch = array_.arch();
  if (data_disk < 0 || data_disk >= arch.n() || stripe < 0 ||
      stripe >= array_.stripes() || row < 0 || row >= arch.rows())
    return out_of_range("write_element coordinates out of range");
  if (bytes.size() != array_.config().content_bytes)
    return invalid_argument("write buffer size mismatch");

  const layout::Pos replica = arch.replica_of(data_disk, row);
  const bool data_live = live(arch.data_disk(data_disk), stripe);
  const bool mirror_live = live(replica.disk, stripe);
  const bool parity_live =
      arch.has_parity() && live(arch.parity_disk(), stripe);
  // With both copies gone the write can still be absorbed into the
  // parity delta (the element stays reconstructible via its row), the
  // same way a degraded RAID-5 write works.
  if (!data_live && !mirror_live && !parity_live)
    return unrecoverable("both copies failed; write would be lost");

  // Parity delta needs the old value before we overwrite anything.
  std::vector<std::uint8_t> old_value;
  if (parity_live) {
    old_value.resize(bytes.size());
    SMA_RETURN_IF_ERROR(read_element(data_disk, stripe, row, old_value));
  }

  if (data_live) {
    auto dst = array_.content(arch.data_disk(data_disk), stripe, row);
    std::copy(bytes.begin(), bytes.end(), dst.begin());
  }
  if (mirror_live) {
    auto dst = array_.content(replica.disk, stripe, replica.row);
    std::copy(bytes.begin(), bytes.end(), dst.begin());
  }
  if (parity_live) {
    auto parity = array_.content(arch.parity_disk(), stripe, row);
    gf::region_xor(old_value, parity);
    gf::region_xor(bytes, parity);
  }
  return Status::ok();
}

std::uint64_t MirroredVolume::capacity_bytes() const {
  const auto& arch = array_.arch();
  return static_cast<std::uint64_t>(array_.stripes()) * arch.rows() *
         arch.n() * array_.config().content_bytes;
}

namespace {
/// Decompose a linear element index into (data disk, stripe, row) under
/// the row-major order: index = (stripe * rows + row) * n + disk.
struct ElementCoord {
  int disk;
  int stripe;
  int row;
};
ElementCoord coord_of(std::uint64_t element_index, int n, int rows) {
  const auto per_row = static_cast<std::uint64_t>(n);
  const auto per_stripe = per_row * static_cast<std::uint64_t>(rows);
  ElementCoord c;
  c.stripe = static_cast<int>(element_index / per_stripe);
  const std::uint64_t within = element_index % per_stripe;
  c.row = static_cast<int>(within / per_row);
  c.disk = static_cast<int>(within % per_row);
  return c;
}
}  // namespace

Status MirroredVolume::read_range(std::uint64_t offset,
                                  std::span<std::uint8_t> out) const {
  if (offset + out.size() > capacity_bytes())
    return out_of_range("read_range beyond volume capacity");
  const std::size_t eb = array_.config().content_bytes;
  const auto& arch = array_.arch();
  std::vector<std::uint8_t> element(eb);
  std::size_t produced = 0;
  while (produced < out.size()) {
    const std::uint64_t at = offset + produced;
    const ElementCoord c =
        coord_of(at / eb, arch.n(), arch.rows());
    const std::size_t within = static_cast<std::size_t>(at % eb);
    const std::size_t take =
        std::min(eb - within, out.size() - produced);
    SMA_RETURN_IF_ERROR(read_element(c.disk, c.stripe, c.row, element));
    std::copy_n(element.begin() + static_cast<std::ptrdiff_t>(within), take,
                out.begin() + static_cast<std::ptrdiff_t>(produced));
    produced += take;
  }
  return Status::ok();
}

Status MirroredVolume::write_range(std::uint64_t offset,
                                   std::span<const std::uint8_t> bytes) {
  if (offset + bytes.size() > capacity_bytes())
    return out_of_range("write_range beyond volume capacity");
  const std::size_t eb = array_.config().content_bytes;
  const auto& arch = array_.arch();
  std::vector<std::uint8_t> element(eb);
  std::size_t consumed = 0;
  while (consumed < bytes.size()) {
    const std::uint64_t at = offset + consumed;
    const ElementCoord c = coord_of(at / eb, arch.n(), arch.rows());
    const std::size_t within = static_cast<std::size_t>(at % eb);
    const std::size_t put = std::min(eb - within, bytes.size() - consumed);
    if (put < eb) {
      // Partial element: read-modify-write.
      SMA_RETURN_IF_ERROR(read_element(c.disk, c.stripe, c.row, element));
    }
    std::copy_n(bytes.begin() + static_cast<std::ptrdiff_t>(consumed), put,
                element.begin() + static_cast<std::ptrdiff_t>(within));
    SMA_RETURN_IF_ERROR(write_element(c.disk, c.stripe, c.row, element));
    consumed += put;
  }
  return Status::ok();
}

}  // namespace sma::core
