// Bulk buffer operations over GF(2^8) — the "region" primitives that
// erasure codecs are built from (Jerasure's galois_region_xor /
// galois_w08_region_multiply equivalents).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace sma::gf {

/// dst[i] ^= src[i]. Word-vectorized; buffers may not alias partially
/// (dst == src is allowed and zeroes dst).
void region_xor(std::span<const std::uint8_t> src, std::span<std::uint8_t> dst);

/// dst[i] = c * src[i] over GF(256). c == 0 zeroes dst, c == 1 copies.
void region_mul(std::uint8_t c, std::span<const std::uint8_t> src,
                std::span<std::uint8_t> dst);

/// dst[i] ^= c * src[i] — the multiply-accumulate used by matrix codecs.
void region_mul_xor(std::uint8_t c, std::span<const std::uint8_t> src,
                    std::span<std::uint8_t> dst);

/// Zero a buffer.
void region_zero(std::span<std::uint8_t> dst);

/// true if every byte is zero.
bool region_is_zero(std::span<const std::uint8_t> buf);

}  // namespace sma::gf
