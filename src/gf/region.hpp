// Bulk buffer operations over GF(2^8) — the "region" primitives that
// erasure codecs are built from (Jerasure's galois_region_xor /
// galois_w08_region_multiply equivalents).
//
// The implementation is a runtime-dispatched kernel layer: at first use
// the best instruction set available on the host is selected (GFNI
// affine, AVX2 or SSSE3 split-nibble pshufb kernels on x86-64, NEON
// vtbl on arm64, a portable word-wise scalar fallback everywhere) and
// all region calls
// route through a function-pointer table. Setting the environment
// variable SMA_GF_FORCE_SCALAR=1 before the first region call pins the
// scalar kernels, which is how CI cross-checks the SIMD paths. Every
// tier produces bit-identical results; dispatch changes speed, never
// output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace sma::gf {

/// Kernel tiers in increasing preference order. Which tiers exist is
/// decided at compile time (per-ISA translation units); which is used
/// is decided once at runtime from cpuid/hwcaps.
enum class KernelTier { kScalar, kSsse3, kAvx2, kGfni, kNeon };

/// Human-readable tier name ("scalar", "ssse3", "avx2", "gfni", "neon").
std::string_view to_string(KernelTier tier);

/// The tier region calls dispatch to on this host (after honoring
/// SMA_GF_FORCE_SCALAR). Selected once, at the first region call.
KernelTier active_tier();

/// Every tier that is both compiled in and executable on this host,
/// scalar first. Tests and microbenchmarks sweep this list to compare
/// tiers against each other on the same hardware.
std::vector<KernelTier> available_tiers();

/// dst[i] ^= src[i]. Word-vectorized; buffers may not alias partially
/// (dst == src is allowed and zeroes dst).
void region_xor(std::span<const std::uint8_t> src, std::span<std::uint8_t> dst);

/// dst[i] = c * src[i] over GF(256). c == 0 zeroes dst, c == 1 copies.
void region_mul(std::uint8_t c, std::span<const std::uint8_t> src,
                std::span<std::uint8_t> dst);

/// dst[i] ^= c * src[i] — the multiply-accumulate used by matrix codecs.
void region_mul_xor(std::uint8_t c, std::span<const std::uint8_t> src,
                    std::span<std::uint8_t> dst);

/// Fused multi-source accumulate: dst[i] ^= srcs[0][i] ^ ... ^
/// srcs[last][i]. Each destination block is loaded and stored once no
/// matter how many sources there are, instead of once per source as a
/// region_xor loop would. Sources must all match dst's length and must
/// not overlap dst.
void region_multi_xor(std::span<const std::span<const std::uint8_t>> srcs,
                      std::span<std::uint8_t> dst);

/// Fused row-of-matrix encode: dst[i] = coeffs[0]*srcs[0][i] ^ ... ^
/// coeffs[last]*srcs[last][i] (or ^= with accumulate=true). One pass
/// over dst regardless of source count; zero coefficients are skipped.
/// coeffs.size() must equal srcs.size(); sources must match dst's
/// length and must not overlap dst.
void encode_dot(std::span<const std::uint8_t> coeffs,
                std::span<const std::span<const std::uint8_t>> srcs,
                std::span<std::uint8_t> dst, bool accumulate = false);

/// Zero a buffer.
void region_zero(std::span<std::uint8_t> dst);

/// true if every byte is zero. Scans word-at-a-time with an early out.
bool region_is_zero(std::span<const std::uint8_t> buf);

// Tier-pinned variants: identical semantics, but run on an explicit
// kernel tier instead of the dispatched one. The tier must come from
// available_tiers(). Used by the equivalence fuzz tests and the
// scalar-vs-SIMD microbenchmarks; codecs always use the dispatched
// entry points above.
void region_xor(KernelTier tier, std::span<const std::uint8_t> src,
                std::span<std::uint8_t> dst);
void region_mul(KernelTier tier, std::uint8_t c,
                std::span<const std::uint8_t> src, std::span<std::uint8_t> dst);
void region_mul_xor(KernelTier tier, std::uint8_t c,
                    std::span<const std::uint8_t> src,
                    std::span<std::uint8_t> dst);
void region_multi_xor(KernelTier tier,
                      std::span<const std::span<const std::uint8_t>> srcs,
                      std::span<std::uint8_t> dst);
void encode_dot(KernelTier tier, std::span<const std::uint8_t> coeffs,
                std::span<const std::span<const std::uint8_t>> srcs,
                std::span<std::uint8_t> dst, bool accumulate = false);
bool region_is_zero(KernelTier tier, std::span<const std::uint8_t> buf);

}  // namespace sma::gf
