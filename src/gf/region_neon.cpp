// NEON (AArch64 AdvSIMD) region kernels: split-nibble GF(256) multiply
// via vqtbl1q_u8, the arm64 analogue of pshufb. AdvSIMD is mandatory on
// AArch64, so this tier needs no hwcap probe — it is compiled in (and
// preferred) whenever the target architecture is arm64.
#include "gf/region_kernels.hpp"

#if defined(SMA_GF_HAVE_NEON)

#include <arm_neon.h>

#include <cstring>

namespace sma::gf::internal {
namespace {

inline uint8x16_t lookup16(uint8x16_t lo_tab, uint8x16_t hi_tab,
                           uint8x16_t v) {
  const uint8x16_t lo = vandq_u8(v, vdupq_n_u8(0x0F));
  const uint8x16_t hi = vshrq_n_u8(v, 4);
  return veorq_u8(vqtbl1q_u8(lo_tab, lo), vqtbl1q_u8(hi_tab, hi));
}

inline std::uint8_t tail_lookup(const std::uint8_t* tab, std::uint8_t v) {
  return static_cast<std::uint8_t>(tab[v & 0xF] ^ tab[16 + (v >> 4)]);
}

void neon_mul(const std::uint8_t* tab, const std::uint8_t* src,
              std::uint8_t* dst, std::size_t n) {
  const uint8x16_t lo_tab = vld1q_u8(tab);
  const uint8x16_t hi_tab = vld1q_u8(tab + 16);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16)
    vst1q_u8(dst + i, lookup16(lo_tab, hi_tab, vld1q_u8(src + i)));
  for (; i < n; ++i) dst[i] = tail_lookup(tab, src[i]);
}

void neon_mul_xor(const std::uint8_t* tab, const std::uint8_t* src,
                  std::uint8_t* dst, std::size_t n) {
  const uint8x16_t lo_tab = vld1q_u8(tab);
  const uint8x16_t hi_tab = vld1q_u8(tab + 16);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16)
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i),
                               lookup16(lo_tab, hi_tab, vld1q_u8(src + i))));
  for (; i < n; ++i) dst[i] ^= tail_lookup(tab, src[i]);
}

void neon_xor(const std::uint8_t* src, std::uint8_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16)
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(src + i), vld1q_u8(dst + i)));
  for (; i < n; ++i) dst[i] ^= src[i];
}

void neon_multi_xor(const std::uint8_t* const* srcs, std::size_t nsrc,
                    std::uint8_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    uint8x16_t acc = vld1q_u8(dst + i);
    for (std::size_t j = 0; j < nsrc; ++j)
      acc = veorq_u8(acc, vld1q_u8(srcs[j] + i));
    vst1q_u8(dst + i, acc);
  }
  for (; i < n; ++i) {
    std::uint8_t b = dst[i];
    for (std::size_t j = 0; j < nsrc; ++j) b ^= srcs[j][i];
    dst[i] = b;
  }
}

void neon_dot(const std::uint8_t* tabs, const std::uint8_t* const* srcs,
              std::size_t nsrc, std::uint8_t* dst, std::size_t n,
              bool accumulate) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    uint8x16_t acc = accumulate ? vld1q_u8(dst + i) : vdupq_n_u8(0);
    for (std::size_t j = 0; j < nsrc; ++j) {
      const std::uint8_t* tab = tabs + j * kNibbleTableBytes;
      acc = veorq_u8(acc, lookup16(vld1q_u8(tab), vld1q_u8(tab + 16),
                                   vld1q_u8(srcs[j] + i)));
    }
    vst1q_u8(dst + i, acc);
  }
  for (; i < n; ++i) {
    std::uint8_t b = accumulate ? dst[i] : 0;
    for (std::size_t j = 0; j < nsrc; ++j)
      b ^= tail_lookup(tabs + j * kNibbleTableBytes, srcs[j][i]);
    dst[i] = b;
  }
}

bool neon_is_zero(const std::uint8_t* p, std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    uint8x16_t acc = vld1q_u8(p + i);
    for (std::size_t k = 16; k < 64; k += 16)
      acc = vorrq_u8(acc, vld1q_u8(p + i + k));
    if (vmaxvq_u8(acc) != 0) return false;
  }
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, p + i, 8);
    if (w != 0) return false;
  }
  for (; i < n; ++i)
    if (p[i] != 0) return false;
  return true;
}

}  // namespace

const RegionKernels& neon_kernels() {
  static const RegionKernels k = {
      "neon",        neon_mul, neon_mul_xor, neon_xor,
      neon_multi_xor, neon_dot, neon_is_zero,
  };
  return k;
}

}  // namespace sma::gf::internal

#endif  // SMA_GF_HAVE_NEON
