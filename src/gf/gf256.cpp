#include "gf/gf256.hpp"

#include <cassert>

namespace sma::gf {

const Tables& Tables::instance() {
  static const Tables tables;
  return tables;
}

Tables::Tables() {
  // Generate the cyclic group under the primitive element 2.
  unsigned x = 1;
  for (unsigned i = 0; i < 255; ++i) {
    exp_[i] = static_cast<std::uint8_t>(x);
    exp_[i + 255] = static_cast<std::uint8_t>(x);
    log_[x] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= kPrimitivePoly;
  }
  log_[0] = 0;  // sentinel; callers must not take log(0)
}

std::uint8_t Tables::div(std::uint8_t a, std::uint8_t b) const {
  assert(b != 0 && "division by zero in GF(256)");
  if (a == 0) return 0;
  return exp_[static_cast<unsigned>(log_[a]) + 255 - log_[b]];
}

std::uint8_t Tables::inv(std::uint8_t a) const {
  assert(a != 0 && "zero has no inverse in GF(256)");
  return exp_[255 - log_[a]];
}

std::uint8_t Tables::pow(std::uint8_t a, unsigned k) const {
  if (k == 0) return 1;
  if (a == 0) return 0;
  const unsigned e = (static_cast<unsigned>(log_[a]) * k) % 255;
  return exp_[e];
}

std::uint8_t mul_slow(std::uint8_t a, std::uint8_t b) {
  unsigned acc = 0;
  unsigned aa = a;
  unsigned bb = b;
  while (bb) {
    if (bb & 1) acc ^= aa;
    bb >>= 1;
    aa <<= 1;
    if (aa & 0x100) aa ^= kPrimitivePoly;
  }
  return static_cast<std::uint8_t>(acc);
}

}  // namespace sma::gf
