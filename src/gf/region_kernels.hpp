// Internal kernel-set interface between the dispatch layer (region.cpp)
// and the per-ISA translation units (region_ssse3.cpp, region_avx2.cpp,
// region_neon.cpp). Not part of the public API.
//
// The contract: kernels receive raw pointers plus a 32-byte split-nibble
// table per multiply constant — bytes 0..15 hold c * i for the low
// nibble i, bytes 16..31 hold c * (i << 4) for the high nibble. Because
// GF(256) multiplication is linear over GF(2),
//   c * v == table[v & 0xF] ^ table[16 + (v >> 4)],
// which is exactly the form pshufb/vtbl consume: two 16-entry lookups
// and an XOR per byte, 16/32 bytes per instruction. The dispatch layer
// handles the c == 0 / c == 1 special cases and span validation before
// calling down, so kernels only see the general path.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sma::gf::internal {

inline constexpr std::size_t kNibbleTableBytes = 32;

struct RegionKernels {
  const char* name;
  // dst[i] = tab-lookup of src[i].
  void (*mul)(const std::uint8_t* tab, const std::uint8_t* src,
              std::uint8_t* dst, std::size_t n);
  // dst[i] ^= tab-lookup of src[i].
  void (*mul_xor)(const std::uint8_t* tab, const std::uint8_t* src,
                  std::uint8_t* dst, std::size_t n);
  // dst[i] ^= src[i].
  void (*xor_into)(const std::uint8_t* src, std::uint8_t* dst, std::size_t n);
  // dst[i] ^= srcs[0][i] ^ ... ^ srcs[nsrc-1][i]; nsrc >= 1. One store
  // per destination block regardless of nsrc.
  void (*multi_xor)(const std::uint8_t* const* srcs, std::size_t nsrc,
                    std::uint8_t* dst, std::size_t n);
  // dst[i] (^)= XOR_j tabs[j]-lookup of srcs[j][i], where tabs holds
  // nsrc consecutive 32-byte nibble tables; accumulate=false overwrites
  // dst. nsrc >= 1.
  void (*dot)(const std::uint8_t* tabs, const std::uint8_t* const* srcs,
              std::size_t nsrc, std::uint8_t* dst, std::size_t n,
              bool accumulate);
  // true if all n bytes are zero; early-outs on the first nonzero word.
  bool (*is_zero)(const std::uint8_t* p, std::size_t n);
};

/// Fill tab[0..31] with the split-nibble table for constant c.
void build_nibble_table(std::uint8_t c, std::uint8_t* tab);

const RegionKernels& scalar_kernels();
#if defined(SMA_GF_HAVE_SSSE3)
const RegionKernels& ssse3_kernels();
#endif
#if defined(SMA_GF_HAVE_AVX2)
const RegionKernels& avx2_kernels();
#endif
#if defined(SMA_GF_HAVE_GFNI)
// Requires SMA_GF_HAVE_AVX2 (borrows the pure-XOR kernels from it).
const RegionKernels& gfni_kernels();
#endif
#if defined(SMA_GF_HAVE_NEON)
const RegionKernels& neon_kernels();
#endif

}  // namespace sma::gf::internal
