#include "gf/region.hpp"

#include <cassert>
#include <cstdlib>
#include <cstring>

#include "gf/gf256.hpp"
#include "gf/region_kernels.hpp"

namespace sma::gf {

namespace internal {

void build_nibble_table(std::uint8_t c, std::uint8_t* tab) {
  const auto& t = Tables::instance();
  for (unsigned i = 0; i < 16; ++i) {
    tab[i] = t.mul(c, static_cast<std::uint8_t>(i));
    tab[16 + i] = t.mul(c, static_cast<std::uint8_t>(i << 4));
  }
}

namespace {

// Expand a 32-byte nibble table into the flat 256-entry row table the
// scalar loops consume (one lookup per byte instead of two).
void expand_row(const std::uint8_t* tab, std::uint8_t* row) {
  for (unsigned v = 0; v < 256; ++v)
    row[v] = static_cast<std::uint8_t>(tab[v & 0xF] ^ tab[16 + (v >> 4)]);
}

void scalar_mul(const std::uint8_t* tab, const std::uint8_t* src,
                std::uint8_t* dst, std::size_t n) {
  std::uint8_t row[256];
  expand_row(tab, row);
  for (std::size_t i = 0; i < n; ++i) dst[i] = row[src[i]];
}

void scalar_mul_xor(const std::uint8_t* tab, const std::uint8_t* src,
                    std::uint8_t* dst, std::size_t n) {
  std::uint8_t row[256];
  expand_row(tab, row);
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
}

void scalar_xor(const std::uint8_t* src, std::uint8_t* dst, std::size_t n) {
  std::size_t i = 0;
  // Bulk path on 8-byte words; memcpy keeps this free of alignment UB
  // and compiles to plain loads/stores.
  while (i + 8 <= n) {
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, src + i, 8);
    std::memcpy(&b, dst + i, 8);
    b ^= a;
    std::memcpy(dst + i, &b, 8);
    i += 8;
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void scalar_multi_xor(const std::uint8_t* const* srcs, std::size_t nsrc,
                      std::uint8_t* dst, std::size_t n) {
  std::size_t i = 0;
  while (i + 8 <= n) {
    std::uint64_t acc;
    std::memcpy(&acc, dst + i, 8);
    for (std::size_t j = 0; j < nsrc; ++j) {
      std::uint64_t a;
      std::memcpy(&a, srcs[j] + i, 8);
      acc ^= a;
    }
    std::memcpy(dst + i, &acc, 8);
    i += 8;
  }
  for (; i < n; ++i) {
    std::uint8_t b = dst[i];
    for (std::size_t j = 0; j < nsrc; ++j) b ^= srcs[j][i];
    dst[i] = b;
  }
}

void scalar_dot(const std::uint8_t* tabs, const std::uint8_t* const* srcs,
                std::size_t nsrc, std::uint8_t* dst, std::size_t n,
                bool accumulate) {
  // Scalar is lookup-bound, not store-bound, so one row-table pass per
  // source beats a fused two-lookups-per-source inner loop.
  std::uint8_t row[256];
  for (std::size_t j = 0; j < nsrc; ++j) {
    expand_row(tabs + j * kNibbleTableBytes, row);
    const std::uint8_t* src = srcs[j];
    if (j == 0 && !accumulate) {
      for (std::size_t i = 0; i < n; ++i) dst[i] = row[src[i]];
    } else {
      for (std::size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
    }
  }
}

bool scalar_is_zero(const std::uint8_t* p, std::size_t n) {
  std::size_t i = 0;
  while (i + 8 <= n) {
    std::uint64_t w;
    std::memcpy(&w, p + i, 8);
    if (w != 0) return false;
    i += 8;
  }
  for (; i < n; ++i)
    if (p[i] != 0) return false;
  return true;
}

}  // namespace

const RegionKernels& scalar_kernels() {
  static const RegionKernels k = {
      "scalar",     scalar_mul, scalar_mul_xor, scalar_xor,
      scalar_multi_xor, scalar_dot, scalar_is_zero,
  };
  return k;
}

}  // namespace internal

namespace {

using internal::kNibbleTableBytes;
using internal::RegionKernels;

bool force_scalar_from_env() {
  const char* v = std::getenv("SMA_GF_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

const RegionKernels* kernels_for(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar: return &internal::scalar_kernels();
#if defined(SMA_GF_HAVE_SSSE3)
    case KernelTier::kSsse3: return &internal::ssse3_kernels();
#endif
#if defined(SMA_GF_HAVE_AVX2)
    case KernelTier::kAvx2: return &internal::avx2_kernels();
#endif
#if defined(SMA_GF_HAVE_GFNI)
    case KernelTier::kGfni: return &internal::gfni_kernels();
#endif
#if defined(SMA_GF_HAVE_NEON)
    case KernelTier::kNeon: return &internal::neon_kernels();
#endif
    default: return nullptr;
  }
}

bool host_supports(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar: return true;
#if defined(SMA_GF_HAVE_SSSE3)
    case KernelTier::kSsse3: return __builtin_cpu_supports("ssse3") != 0;
#endif
#if defined(SMA_GF_HAVE_AVX2)
    case KernelTier::kAvx2: return __builtin_cpu_supports("avx2") != 0;
#endif
#if defined(SMA_GF_HAVE_GFNI)
    case KernelTier::kGfni:
      return __builtin_cpu_supports("gfni") != 0 &&
             __builtin_cpu_supports("avx2") != 0;
#endif
#if defined(SMA_GF_HAVE_NEON)
    // NEON (AdvSIMD) is architecturally mandatory on AArch64.
    case KernelTier::kNeon: return true;
#endif
    default: return false;
  }
}

KernelTier select_tier() {
  if (force_scalar_from_env()) return KernelTier::kScalar;
  KernelTier best = KernelTier::kScalar;
  for (const KernelTier t : {KernelTier::kSsse3, KernelTier::kAvx2,
                             KernelTier::kGfni, KernelTier::kNeon}) {
    if (kernels_for(t) != nullptr && host_supports(t)) best = t;
  }
  return best;
}

const RegionKernels& active() {
  // Selected once, thread-safe (C++11 magic static); the env override
  // is therefore honored only if set before the first region call.
  static const RegionKernels* k = kernels_for(select_tier());
  return *k;
}

const RegionKernels& resolve(KernelTier tier) {
  const RegionKernels* k = kernels_for(tier);
  assert(k != nullptr && host_supports(tier) &&
         "tier not available on this host; use available_tiers()");
  return k != nullptr ? *k : internal::scalar_kernels();
}

// Shared implementation bodies, parameterized on the kernel set.

void do_mul(const RegionKernels& k, std::uint8_t c,
            std::span<const std::uint8_t> src, std::span<std::uint8_t> dst) {
  assert(src.size() == dst.size());
  if (c == 0) {
    region_zero(dst);
    return;
  }
  if (c == 1) {
    if (dst.data() != src.data())
      std::memmove(dst.data(), src.data(), dst.size());
    return;
  }
  std::uint8_t tab[kNibbleTableBytes];
  internal::build_nibble_table(c, tab);
  k.mul(tab, src.data(), dst.data(), dst.size());
}

void do_mul_xor(const RegionKernels& k, std::uint8_t c,
                std::span<const std::uint8_t> src,
                std::span<std::uint8_t> dst) {
  assert(src.size() == dst.size());
  if (c == 0) return;
  if (c == 1) {
    k.xor_into(src.data(), dst.data(), dst.size());
    return;
  }
  std::uint8_t tab[kNibbleTableBytes];
  internal::build_nibble_table(c, tab);
  k.mul_xor(tab, src.data(), dst.data(), dst.size());
}

void do_multi_xor(const RegionKernels& k,
                  std::span<const std::span<const std::uint8_t>> srcs,
                  std::span<std::uint8_t> dst) {
  if (srcs.empty() || dst.empty()) return;
  constexpr std::size_t kInline = 64;
  const std::uint8_t* inline_ptrs[kInline];
  // Reusable per-thread fallback: wide arrays hit this on every
  // stripe, so the scratch keeps its capacity instead of paying an
  // allocation per call (thread_local because sweeps run cases on
  // worker threads).
  static thread_local std::vector<const std::uint8_t*> heap_ptrs;
  const std::uint8_t** ptrs = inline_ptrs;
  if (srcs.size() > kInline) {
    heap_ptrs.reserve(srcs.size());
    heap_ptrs.resize(srcs.size());
    ptrs = heap_ptrs.data();
  }
  for (std::size_t j = 0; j < srcs.size(); ++j) {
    assert(srcs[j].size() == dst.size());
    ptrs[j] = srcs[j].data();
  }
  k.multi_xor(ptrs, srcs.size(), dst.data(), dst.size());
}

void do_dot(const RegionKernels& k, std::span<const std::uint8_t> coeffs,
            std::span<const std::span<const std::uint8_t>> srcs,
            std::span<std::uint8_t> dst, bool accumulate) {
  assert(coeffs.size() == srcs.size());
  // Zero coefficients contribute nothing; drop them up front so the
  // kernels never see them (and so an all-zero row still zeroes dst in
  // overwrite mode).
  std::size_t live = 0;
  for (std::size_t j = 0; j < srcs.size(); ++j) {
    assert(srcs[j].size() == dst.size());
    if (coeffs[j] != 0) ++live;
  }
  if (live == 0 || dst.empty()) {
    if (!accumulate) region_zero(dst);
    return;
  }
  constexpr std::size_t kInline = 16;
  const std::uint8_t* inline_ptrs[kInline];
  std::uint8_t inline_tabs[kInline * kNibbleTableBytes];
  // Reusable per-thread fallback, as in do_multi_xor: reserved once,
  // no allocation on subsequent wide-row calls.
  static thread_local std::vector<const std::uint8_t*> heap_ptrs;
  static thread_local std::vector<std::uint8_t> heap_tabs;
  const std::uint8_t** ptrs = inline_ptrs;
  std::uint8_t* tabs = inline_tabs;
  if (live > kInline) {
    heap_ptrs.reserve(live);
    heap_ptrs.resize(live);
    heap_tabs.reserve(live * kNibbleTableBytes);
    heap_tabs.resize(live * kNibbleTableBytes);
    ptrs = heap_ptrs.data();
    tabs = heap_tabs.data();
  }
  std::size_t w = 0;
  for (std::size_t j = 0; j < srcs.size(); ++j) {
    if (coeffs[j] == 0) continue;
    ptrs[w] = srcs[j].data();
    internal::build_nibble_table(coeffs[j], tabs + w * kNibbleTableBytes);
    ++w;
  }
  k.dot(tabs, ptrs, live, dst.data(), dst.size(), accumulate);
}

}  // namespace

std::string_view to_string(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar: return "scalar";
    case KernelTier::kSsse3: return "ssse3";
    case KernelTier::kAvx2: return "avx2";
    case KernelTier::kGfni: return "gfni";
    case KernelTier::kNeon: return "neon";
  }
  return "unknown";
}

KernelTier active_tier() {
  static const KernelTier tier = select_tier();
  (void)active();  // keep the kernel pointer selection in lockstep
  return tier;
}

std::vector<KernelTier> available_tiers() {
  std::vector<KernelTier> tiers{KernelTier::kScalar};
  for (const KernelTier t : {KernelTier::kSsse3, KernelTier::kAvx2,
                             KernelTier::kGfni, KernelTier::kNeon}) {
    if (kernels_for(t) != nullptr && host_supports(t)) tiers.push_back(t);
  }
  return tiers;
}

void region_xor(std::span<const std::uint8_t> src, std::span<std::uint8_t> dst) {
  assert(src.size() == dst.size());
  if (dst.empty()) return;
  active().xor_into(src.data(), dst.data(), dst.size());
}

void region_mul(std::uint8_t c, std::span<const std::uint8_t> src,
                std::span<std::uint8_t> dst) {
  do_mul(active(), c, src, dst);
}

void region_mul_xor(std::uint8_t c, std::span<const std::uint8_t> src,
                    std::span<std::uint8_t> dst) {
  do_mul_xor(active(), c, src, dst);
}

void region_multi_xor(std::span<const std::span<const std::uint8_t>> srcs,
                      std::span<std::uint8_t> dst) {
  do_multi_xor(active(), srcs, dst);
}

void encode_dot(std::span<const std::uint8_t> coeffs,
                std::span<const std::span<const std::uint8_t>> srcs,
                std::span<std::uint8_t> dst, bool accumulate) {
  do_dot(active(), coeffs, srcs, dst, accumulate);
}

void region_zero(std::span<std::uint8_t> dst) {
  std::memset(dst.data(), 0, dst.size());
}

bool region_is_zero(std::span<const std::uint8_t> buf) {
  if (buf.empty()) return true;
  return active().is_zero(buf.data(), buf.size());
}

void region_xor(KernelTier tier, std::span<const std::uint8_t> src,
                std::span<std::uint8_t> dst) {
  assert(src.size() == dst.size());
  if (dst.empty()) return;
  resolve(tier).xor_into(src.data(), dst.data(), dst.size());
}

void region_mul(KernelTier tier, std::uint8_t c,
                std::span<const std::uint8_t> src, std::span<std::uint8_t> dst) {
  do_mul(resolve(tier), c, src, dst);
}

void region_mul_xor(KernelTier tier, std::uint8_t c,
                    std::span<const std::uint8_t> src,
                    std::span<std::uint8_t> dst) {
  do_mul_xor(resolve(tier), c, src, dst);
}

void region_multi_xor(KernelTier tier,
                      std::span<const std::span<const std::uint8_t>> srcs,
                      std::span<std::uint8_t> dst) {
  do_multi_xor(resolve(tier), srcs, dst);
}

void encode_dot(KernelTier tier, std::span<const std::uint8_t> coeffs,
                std::span<const std::span<const std::uint8_t>> srcs,
                std::span<std::uint8_t> dst, bool accumulate) {
  do_dot(resolve(tier), coeffs, srcs, dst, accumulate);
}

bool region_is_zero(KernelTier tier, std::span<const std::uint8_t> buf) {
  if (buf.empty()) return true;
  return resolve(tier).is_zero(buf.data(), buf.size());
}

}  // namespace sma::gf
