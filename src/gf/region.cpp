#include "gf/region.hpp"

#include <cassert>
#include <cstring>

#include "gf/gf256.hpp"

namespace sma::gf {

void region_xor(std::span<const std::uint8_t> src, std::span<std::uint8_t> dst) {
  assert(src.size() == dst.size());
  std::size_t i = 0;
  const std::size_t n = dst.size();
  // Bulk path on 8-byte words; memcpy keeps this free of alignment UB and
  // compiles to plain loads/stores.
  while (i + 8 <= n) {
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, src.data() + i, 8);
    std::memcpy(&b, dst.data() + i, 8);
    b ^= a;
    std::memcpy(dst.data() + i, &b, 8);
    i += 8;
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void region_mul(std::uint8_t c, std::span<const std::uint8_t> src,
                std::span<std::uint8_t> dst) {
  assert(src.size() == dst.size());
  if (c == 0) {
    region_zero(dst);
    return;
  }
  if (c == 1) {
    if (dst.data() != src.data())
      std::memmove(dst.data(), src.data(), dst.size());
    return;
  }
  // Build the 256-entry row table for this constant once per call; for
  // the multi-KiB regions the codecs use, the table cost is negligible.
  const auto& t = Tables::instance();
  std::uint8_t row[256];
  for (unsigned v = 0; v < 256; ++v)
    row[v] = t.mul(c, static_cast<std::uint8_t>(v));
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = row[src[i]];
}

void region_mul_xor(std::uint8_t c, std::span<const std::uint8_t> src,
                    std::span<std::uint8_t> dst) {
  assert(src.size() == dst.size());
  if (c == 0) return;
  if (c == 1) {
    region_xor(src, dst);
    return;
  }
  const auto& t = Tables::instance();
  std::uint8_t row[256];
  for (unsigned v = 0; v < 256; ++v)
    row[v] = t.mul(c, static_cast<std::uint8_t>(v));
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= row[src[i]];
}

void region_zero(std::span<std::uint8_t> dst) {
  std::memset(dst.data(), 0, dst.size());
}

bool region_is_zero(std::span<const std::uint8_t> buf) {
  for (const auto b : buf)
    if (b != 0) return false;
  return true;
}

}  // namespace sma::gf
