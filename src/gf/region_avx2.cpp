// AVX2 region kernels: the SSSE3 split-nibble technique widened to
// 32-byte lanes. vpshufb shuffles within each 128-bit lane, so the two
// 16-byte nibble tables are broadcast to both lanes and the lookup is
// lane-local — exactly what we need. Compiled with -mavx2 in its own
// translation unit; region.cpp gates on cpuid before dispatching here.
#include "gf/region_kernels.hpp"

#if defined(SMA_GF_HAVE_AVX2)

#include <immintrin.h>

#include <cstring>

namespace sma::gf::internal {
namespace {

inline __m256i broadcast16(const std::uint8_t* p) {
  return _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

inline __m256i lookup32(__m256i lo_tab, __m256i hi_tab, __m256i mask,
                        __m256i v) {
  const __m256i lo = _mm256_and_si256(v, mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
  return _mm256_xor_si256(_mm256_shuffle_epi8(lo_tab, lo),
                          _mm256_shuffle_epi8(hi_tab, hi));
}

inline std::uint8_t tail_lookup(const std::uint8_t* tab, std::uint8_t v) {
  return static_cast<std::uint8_t>(tab[v & 0xF] ^ tab[16 + (v >> 4)]);
}

void avx2_mul(const std::uint8_t* tab, const std::uint8_t* src,
              std::uint8_t* dst, std::size_t n) {
  const __m256i lo_tab = broadcast16(tab);
  const __m256i hi_tab = broadcast16(tab + 16);
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        lookup32(lo_tab, hi_tab, mask, v0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        lookup32(lo_tab, hi_tab, mask, v1));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        lookup32(lo_tab, hi_tab, mask, v));
  }
  for (; i < n; ++i) dst[i] = tail_lookup(tab, src[i]);
}

void avx2_mul_xor(const std::uint8_t* tab, const std::uint8_t* src,
                  std::uint8_t* dst, std::size_t n) {
  const __m256i lo_tab = broadcast16(tab);
  const __m256i hi_tab = broadcast16(tab + 16);
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  // 2x unroll: two independent lookup chains per iteration keep the
  // shuffle port busy across the load latency.
  for (; i + 64 <= n; i += 64) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    const __m256i d0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_xor_si256(d0, lookup32(lo_tab, hi_tab, mask, v0)));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i + 32),
        _mm256_xor_si256(d1, lookup32(lo_tab, hi_tab, mask, v1)));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_xor_si256(d, lookup32(lo_tab, hi_tab, mask, v)));
  }
  for (; i < n; ++i) dst[i] ^= tail_lookup(tab, src[i]);
}

void avx2_xor(const std::uint8_t* src, std::uint8_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i a0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        _mm256_xor_si256(a1, b1));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a, b));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void avx2_multi_xor(const std::uint8_t* const* srcs, std::size_t nsrc,
                    std::uint8_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i acc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    for (std::size_t j = 0; j < nsrc; ++j)
      acc = _mm256_xor_si256(
          acc,
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), acc);
  }
  for (; i < n; ++i) {
    std::uint8_t b = dst[i];
    for (std::size_t j = 0; j < nsrc; ++j) b ^= srcs[j][i];
    dst[i] = b;
  }
}

void avx2_dot(const std::uint8_t* tabs, const std::uint8_t* const* srcs,
              std::size_t nsrc, std::uint8_t* dst, std::size_t n,
              bool accumulate) {
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i acc =
        accumulate
            ? _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i))
            : _mm256_setzero_si256();
    // Tables reload from L1 each block; with nsrc sources that is 2
    // cache-hot loads per 32 bytes per source, well under the shuffle
    // throughput this loop is bound by.
    for (std::size_t j = 0; j < nsrc; ++j) {
      const std::uint8_t* tab = tabs + j * kNibbleTableBytes;
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + i));
      acc = _mm256_xor_si256(
          acc, lookup32(broadcast16(tab), broadcast16(tab + 16), mask, v));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), acc);
  }
  for (; i < n; ++i) {
    std::uint8_t b = accumulate ? dst[i] : 0;
    for (std::size_t j = 0; j < nsrc; ++j)
      b ^= tail_lookup(tabs + j * kNibbleTableBytes, srcs[j][i]);
    dst[i] = b;
  }
}

bool avx2_is_zero(const std::uint8_t* p, std::size_t n) {
  std::size_t i = 0;
  for (; i + 128 <= n; i += 128) {
    __m256i acc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    for (std::size_t k = 32; k < 128; k += 32)
      acc = _mm256_or_si256(
          acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i + k)));
    if (!_mm256_testz_si256(acc, acc)) return false;
  }
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, p + i, 8);
    if (w != 0) return false;
  }
  for (; i < n; ++i)
    if (p[i] != 0) return false;
  return true;
}

}  // namespace

const RegionKernels& avx2_kernels() {
  static const RegionKernels k = {
      "avx2",        avx2_mul, avx2_mul_xor, avx2_xor,
      avx2_multi_xor, avx2_dot, avx2_is_zero,
  };
  return k;
}

}  // namespace sma::gf::internal

#endif  // SMA_GF_HAVE_AVX2
