// GF(2^8) arithmetic — the finite-field substrate the paper's reference
// implementation obtained from Jerasure-1.2.
//
// The shifted mirror methods themselves only need XOR, but the RAID-6
// comparators (and Reed-Solomon-style extensions) need full field
// arithmetic. We use the standard polynomial x^8+x^4+x^3+x^2+1 (0x11d),
// the same primitive polynomial Jerasure defaults to for w=8, with
// log/antilog tables for multiply/divide and per-constant row tables for
// fast region multiplication.
#pragma once

#include <array>
#include <cstdint>

namespace sma::gf {

inline constexpr unsigned kFieldSize = 256;
inline constexpr unsigned kPrimitivePoly = 0x11d;

/// Singleton table set, built once at first use (thread-safe since C++11
/// static initialization).
class Tables {
 public:
  static const Tables& instance();

  std::uint8_t mul(std::uint8_t a, std::uint8_t b) const {
    if (a == 0 || b == 0) return 0;
    return exp_[log_[a] + log_[b]];
  }

  std::uint8_t div(std::uint8_t a, std::uint8_t b) const;

  std::uint8_t inv(std::uint8_t a) const;

  /// a^k for k >= 0.
  std::uint8_t pow(std::uint8_t a, unsigned k) const;

  std::uint8_t log(std::uint8_t a) const { return log_[a]; }   // undefined for a==0
  std::uint8_t exp(unsigned e) const { return exp_[e % 255]; }

 private:
  Tables();
  // exp_ is doubled (510 entries) so mul never needs "% 255".
  std::array<std::uint8_t, 510> exp_{};
  std::array<std::uint8_t, 256> log_{};
};

inline std::uint8_t add(std::uint8_t a, std::uint8_t b) {
  return static_cast<std::uint8_t>(a ^ b);
}
inline std::uint8_t sub(std::uint8_t a, std::uint8_t b) {
  return static_cast<std::uint8_t>(a ^ b);  // characteristic 2
}
inline std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  return Tables::instance().mul(a, b);
}
inline std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  return Tables::instance().div(a, b);
}
inline std::uint8_t inv(std::uint8_t a) { return Tables::instance().inv(a); }
inline std::uint8_t pow(std::uint8_t a, unsigned k) {
  return Tables::instance().pow(a, k);
}

/// Slow bit-by-bit ("Russian peasant") multiply used to cross-check the
/// tables in tests.
std::uint8_t mul_slow(std::uint8_t a, std::uint8_t b);

}  // namespace sma::gf
