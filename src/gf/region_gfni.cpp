// GFNI region kernels. vgf2p8affineqb applies an arbitrary 8x8 GF(2)
// bit-matrix to every byte of a vector, and multiplication by a
// constant in GF(256) is exactly such a matrix — one instruction per 32
// bytes replaces the two shuffles, two masks, shift and XOR of the
// split-nibble technique, in any polynomial basis (the instruction's
// own reduction polynomial only matters for vgf2p8mulb, which we don't
// use). The matrix is derived from the same 32-byte nibble table the
// other tiers consume, so the dispatch contract is unchanged.
//
// Compiled with -mgfni -mavx2 in its own translation unit; region.cpp
// gates on cpuid before dispatching here. XOR/is_zero carry no
// multiplies, so this tier borrows them from the AVX2 kernel set.
#include "gf/region_kernels.hpp"

#if defined(SMA_GF_HAVE_GFNI)

#include <immintrin.h>

namespace sma::gf::internal {
namespace {

// Build the affine matrix for multiply-by-c from c's nibble table.
// Qword byte k holds the matrix row that produces output bit (7 - k);
// row bit j multiplies input bit j, i.e. selects bit (7 - k) of c*2^j.
inline __m256i matrix_from_tab(const std::uint8_t* tab) {
  std::uint8_t p[8];  // p[j] = c * (1 << j), straight out of the table
  for (unsigned j = 0; j < 4; ++j) p[j] = tab[1u << j];
  for (unsigned j = 4; j < 8; ++j) p[j] = tab[16 + (1u << (j - 4))];
  std::uint64_t m = 0;
  for (unsigned k = 0; k < 8; ++k) {
    std::uint8_t row = 0;
    for (unsigned j = 0; j < 8; ++j)
      row |= static_cast<std::uint8_t>(((p[j] >> (7 - k)) & 1) << j);
    m |= static_cast<std::uint64_t>(row) << (8 * k);
  }
  return _mm256_set1_epi64x(static_cast<long long>(m));
}

inline std::uint8_t tail_lookup(const std::uint8_t* tab, std::uint8_t v) {
  return static_cast<std::uint8_t>(tab[v & 0xF] ^ tab[16 + (v >> 4)]);
}

void gfni_mul(const std::uint8_t* tab, const std::uint8_t* src,
              std::uint8_t* dst, std::size_t n) {
  const __m256i A = matrix_from_tab(tab);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_gf2p8affine_epi64_epi8(v0, A, 0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        _mm256_gf2p8affine_epi64_epi8(v1, A, 0));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_gf2p8affine_epi64_epi8(v, A, 0));
  }
  for (; i < n; ++i) dst[i] = tail_lookup(tab, src[i]);
}

void gfni_mul_xor(const std::uint8_t* tab, const std::uint8_t* src,
                  std::uint8_t* dst, std::size_t n) {
  const __m256i A = matrix_from_tab(tab);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    const __m256i d0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_xor_si256(d0, _mm256_gf2p8affine_epi64_epi8(v0, A, 0)));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i + 32),
        _mm256_xor_si256(d1, _mm256_gf2p8affine_epi64_epi8(v1, A, 0)));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_xor_si256(d, _mm256_gf2p8affine_epi64_epi8(v, A, 0)));
  }
  for (; i < n; ++i) dst[i] ^= tail_lookup(tab, src[i]);
}

void gfni_dot(const std::uint8_t* tabs, const std::uint8_t* const* srcs,
              std::size_t nsrc, std::uint8_t* dst, std::size_t n,
              bool accumulate) {
  constexpr std::size_t kInline = 16;
  __m256i inline_mats[kInline];
  // nsrc > kInline is rare (matrix rows wider than 16 live terms);
  // fall back to rebuilding matrices per block rather than allocating.
  const bool cached = nsrc <= kInline;
  if (cached)
    for (std::size_t j = 0; j < nsrc; ++j)
      inline_mats[j] = matrix_from_tab(tabs + j * kNibbleTableBytes);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i acc =
        accumulate
            ? _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i))
            : _mm256_setzero_si256();
    for (std::size_t j = 0; j < nsrc; ++j) {
      const __m256i A =
          cached ? inline_mats[j]
                 : matrix_from_tab(tabs + j * kNibbleTableBytes);
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + i));
      acc = _mm256_xor_si256(acc, _mm256_gf2p8affine_epi64_epi8(v, A, 0));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), acc);
  }
  for (; i < n; ++i) {
    std::uint8_t b = accumulate ? dst[i] : 0;
    for (std::size_t j = 0; j < nsrc; ++j)
      b ^= tail_lookup(tabs + j * kNibbleTableBytes, srcs[j][i]);
    dst[i] = b;
  }
}

}  // namespace

const RegionKernels& gfni_kernels() {
  const RegionKernels& avx2 = avx2_kernels();
  static const RegionKernels k = {
      "gfni",         gfni_mul, gfni_mul_xor, avx2.xor_into,
      avx2.multi_xor, gfni_dot, avx2.is_zero,
  };
  return k;
}

}  // namespace sma::gf::internal

#endif  // SMA_GF_HAVE_GFNI
