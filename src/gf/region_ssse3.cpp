// SSSE3 region kernels: split-nibble GF(256) multiply via pshufb
// (_mm_shuffle_epi8), 16 bytes per step — the technique GF-Complete /
// ISA-L use for w=8. Compiled with -mssse3 in its own translation unit;
// region.cpp only calls in after verifying cpuid support at runtime.
#include "gf/region_kernels.hpp"

#if defined(SMA_GF_HAVE_SSSE3)

#include <tmmintrin.h>

#include <cstring>

namespace sma::gf::internal {
namespace {

// dst[i] (^)= tab-lookup of src[i] for one 16-byte lane.
inline __m128i lookup16(__m128i lo_tab, __m128i hi_tab, __m128i mask,
                        __m128i v) {
  const __m128i lo = _mm_and_si128(v, mask);
  const __m128i hi = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
  return _mm_xor_si128(_mm_shuffle_epi8(lo_tab, lo),
                       _mm_shuffle_epi8(hi_tab, hi));
}

// Scalar tail straight off the nibble table (tails are < 16 bytes, so
// expanding a 256-entry row table would cost more than it saves).
inline std::uint8_t tail_lookup(const std::uint8_t* tab, std::uint8_t v) {
  return static_cast<std::uint8_t>(tab[v & 0xF] ^ tab[16 + (v >> 4)]);
}

void ssse3_mul(const std::uint8_t* tab, const std::uint8_t* src,
               std::uint8_t* dst, std::size_t n) {
  const __m128i lo_tab =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tab));
  const __m128i hi_tab =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tab + 16));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     lookup16(lo_tab, hi_tab, mask, v));
  }
  for (; i < n; ++i) dst[i] = tail_lookup(tab, src[i]);
}

void ssse3_mul_xor(const std::uint8_t* tab, const std::uint8_t* src,
                   std::uint8_t* dst, std::size_t n) {
  const __m128i lo_tab =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tab));
  const __m128i hi_tab =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tab + 16));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(dst + i),
        _mm_xor_si128(d, lookup16(lo_tab, hi_tab, mask, v)));
  }
  for (; i < n; ++i) dst[i] ^= tail_lookup(tab, src[i]);
}

void ssse3_xor(const std::uint8_t* src, std::uint8_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(a, b));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void ssse3_multi_xor(const std::uint8_t* const* srcs, std::size_t nsrc,
                     std::uint8_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i acc = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    for (std::size_t j = 0; j < nsrc; ++j)
      acc = _mm_xor_si128(
          acc, _mm_loadu_si128(reinterpret_cast<const __m128i*>(srcs[j] + i)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), acc);
  }
  for (; i < n; ++i) {
    std::uint8_t b = dst[i];
    for (std::size_t j = 0; j < nsrc; ++j) b ^= srcs[j][i];
    dst[i] = b;
  }
}

void ssse3_dot(const std::uint8_t* tabs, const std::uint8_t* const* srcs,
               std::size_t nsrc, std::uint8_t* dst, std::size_t n,
               bool accumulate) {
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i acc =
        accumulate ? _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i))
                   : _mm_setzero_si128();
    for (std::size_t j = 0; j < nsrc; ++j) {
      const std::uint8_t* tab = tabs + j * kNibbleTableBytes;
      const __m128i lo_tab =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(tab));
      const __m128i hi_tab =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(tab + 16));
      const __m128i v =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(srcs[j] + i));
      acc = _mm_xor_si128(acc, lookup16(lo_tab, hi_tab, mask, v));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), acc);
  }
  for (; i < n; ++i) {
    std::uint8_t b = accumulate ? dst[i] : 0;
    for (std::size_t j = 0; j < nsrc; ++j)
      b ^= tail_lookup(tabs + j * kNibbleTableBytes, srcs[j][i]);
    dst[i] = b;
  }
}

bool ssse3_is_zero(const std::uint8_t* p, std::size_t n) {
  std::size_t i = 0;
  // Early-out every 64 bytes: zero-scrub scans mostly-zero buffers, so
  // the common case is streaming, the payoff case is the first hit.
  for (; i + 64 <= n; i += 64) {
    __m128i acc = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    for (std::size_t k = 16; k < 64; k += 16)
      acc = _mm_or_si128(
          acc, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i + k)));
    if (_mm_movemask_epi8(_mm_cmpeq_epi8(acc, _mm_setzero_si128())) != 0xFFFF)
      return false;
  }
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, p + i, 8);
    if (w != 0) return false;
  }
  for (; i < n; ++i)
    if (p[i] != 0) return false;
  return true;
}

}  // namespace

const RegionKernels& ssse3_kernels() {
  static const RegionKernels k = {
      "ssse3",        ssse3_mul, ssse3_mul_xor, ssse3_xor,
      ssse3_multi_xor, ssse3_dot, ssse3_is_zero,
  };
  return k;
}

}  // namespace sma::gf::internal

#endif  // SMA_GF_HAVE_SSSE3
