#include "workload/arrival.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/trace_sink.hpp"

namespace sma::workload {

namespace {

constexpr struct {
  ArrivalKind kind;
  const char* name;
} kKindNames[] = {
    {ArrivalKind::kPoisson, "poisson"},
    {ArrivalKind::kClosedLoop, "closed_loop"},
    {ArrivalKind::kBursty, "bursty"},
    {ArrivalKind::kTrace, "trace"},
};

class PoissonProcess final : public ArrivalProcess {
 public:
  explicit PoissonProcess(double rate_hz) : rate_hz_(rate_hz) {}
  // Exactly the pre-QoS draw (1.0 / rate passed to next_exponential),
  // so default configs replay the historical stream bit-identically.
  double next_delay(Rng& rng) override {
    return rng.next_exponential(1.0 / rate_hz_);
  }

 private:
  double rate_hz_;
};

class ClosedLoopProcess final : public ArrivalProcess {
 public:
  ClosedLoopProcess(int clients, double think_time_s)
      : clients_(clients), think_time_s_(think_time_s) {}
  double next_delay(Rng&) override { return -1.0; }
  bool closed_loop() const override { return true; }
  int clients() const override { return clients_; }
  double think_delay(Rng& rng) override {
    return think_time_s_ > 0.0 ? rng.next_exponential(think_time_s_) : 0.0;
  }

 private:
  int clients_;
  double think_time_s_;
};

/// 2-state MMPP: exponential holding time per state, Poisson arrivals
/// at the state's rate. The process keeps an absolute-time cursor —
/// valid because an open-loop process is only ever advanced by its own
/// returned delays.
class BurstyProcess final : public ArrivalProcess {
 public:
  BurstyProcess(double quiet_hz, double burst_hz, double mean_burst_s,
                double mean_idle_s)
      : quiet_hz_(quiet_hz),
        burst_hz_(burst_hz),
        mean_burst_s_(mean_burst_s),
        mean_idle_s_(mean_idle_s) {}

  double next_delay(Rng& rng) override {
    const double start = t_;
    for (;;) {
      if (!armed_) {
        state_end_ = t_ + rng.next_exponential(in_burst_ ? mean_burst_s_
                                                         : mean_idle_s_);
        armed_ = true;
      }
      const double dt =
          rng.next_exponential(1.0 / (in_burst_ ? burst_hz_ : quiet_hz_));
      if (t_ + dt <= state_end_) {
        t_ += dt;
        return t_ - start;
      }
      t_ = state_end_;  // no arrival before the state flips; keep going
      in_burst_ = !in_burst_;
      armed_ = false;
    }
  }

 private:
  double quiet_hz_;
  double burst_hz_;
  double mean_burst_s_;
  double mean_idle_s_;
  double t_ = 0.0;
  double state_end_ = 0.0;
  bool in_burst_ = false;
  bool armed_ = false;
};

class TraceProcess final : public ArrivalProcess {
 public:
  explicit TraceProcess(std::vector<TracePoint> trace)
      : trace_(std::move(trace)) {}
  double first_arrival_s() const override { return trace_.front().t_s; }
  double next_delay(Rng&) override {
    ++index_;
    if (index_ >= trace_.size()) return -1.0;
    return trace_[index_].t_s - trace_[index_ - 1].t_s;
  }
  int write_override() const override {
    return trace_[index_ < trace_.size() ? index_ : trace_.size() - 1].write
               ? 1
               : 0;
  }

 private:
  std::vector<TracePoint> trace_;
  std::size_t index_ = 0;
};

std::string exact(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

const char* to_string(ArrivalKind kind) {
  for (const auto& e : kKindNames)
    if (e.kind == kind) return e.name;
  return "unknown";
}

Result<ArrivalKind> arrival_kind_from(std::string_view name) {
  for (const auto& e : kKindNames)
    if (name == e.name) return e.kind;
  return invalid_argument("unknown arrival kind: " + std::string(name));
}

Result<std::unique_ptr<ArrivalProcess>> make_arrival_process(
    const ArrivalConfig& cfg) {
  if (cfg.max_requests < 0)
    return invalid_argument("arrival: max_requests must be >= 0");
  switch (cfg.kind) {
    case ArrivalKind::kPoisson:
      if (cfg.rate_hz <= 0)
        return invalid_argument("arrival: poisson rate_hz must be > 0");
      return std::unique_ptr<ArrivalProcess>(new PoissonProcess(cfg.rate_hz));
    case ArrivalKind::kClosedLoop:
      if (cfg.clients <= 0 || cfg.think_time_s < 0)
        return invalid_argument(
            "arrival: closed loop needs clients > 0 and think_time_s >= 0");
      return std::unique_ptr<ArrivalProcess>(
          new ClosedLoopProcess(cfg.clients, cfg.think_time_s));
    case ArrivalKind::kBursty:
      if (cfg.rate_hz <= 0 || cfg.burst_rate_hz <= 0 ||
          cfg.mean_burst_s <= 0 || cfg.mean_idle_s <= 0)
        return invalid_argument(
            "arrival: bursty needs positive rates and holding times");
      return std::unique_ptr<ArrivalProcess>(new BurstyProcess(
          cfg.rate_hz, cfg.burst_rate_hz, cfg.mean_burst_s, cfg.mean_idle_s));
    case ArrivalKind::kTrace: {
      if (cfg.trace.empty())
        return invalid_argument("arrival: trace replay needs a trace");
      for (std::size_t i = 0; i < cfg.trace.size(); ++i) {
        if (cfg.trace[i].t_s < 0 ||
            (i > 0 && cfg.trace[i].t_s < cfg.trace[i - 1].t_s))
          return invalid_argument(
              "arrival: trace instants must be non-negative and "
              "non-decreasing");
      }
      return std::unique_ptr<ArrivalProcess>(new TraceProcess(cfg.trace));
    }
  }
  return invalid_argument("arrival: unknown kind");
}

Status write_arrival_trace_csv(const std::string& path,
                               const std::vector<TracePoint>& points) {
  std::ofstream out(path);
  if (!out) return io_error("cannot open " + path);
  out << "t_s,write\n";
  for (const TracePoint& p : points)
    out << exact(p.t_s) << "," << (p.write ? 1 : 0) << "\n";
  if (!out) return io_error("arrival trace write failed: " + path);
  return Status::ok();
}

Result<std::vector<TracePoint>> load_arrival_trace_csv(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return io_error("cannot open " + path);
  std::vector<TracePoint> out;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (lineno == 1 && line.rfind("t_s", 0) == 0) continue;  // header
    const auto comma = line.find(',');
    if (comma == std::string::npos)
      return invalid_argument("arrival trace line " + std::to_string(lineno) +
                              ": expected \"t_s,write\"");
    TracePoint p;
    p.t_s = std::strtod(line.substr(0, comma).c_str(), nullptr);
    p.write = std::atoi(line.c_str() + comma + 1) != 0;
    out.push_back(p);
  }
  if (out.empty())
    return invalid_argument("arrival trace " + path + " holds no points");
  return out;
}

std::vector<TracePoint> arrival_trace_from_events(
    const std::vector<obs::TraceEvent>& events) {
  std::vector<TracePoint> out;
  for (const obs::TraceEvent& e : events)
    if (e.kind == obs::EventKind::kRequestArrive)
      out.push_back({e.t_s, e.write});
  return out;
}

}  // namespace sma::workload
