// Arrival processes for the QoS-aware serving engine.
//
// Every online experiment drives user requests from a
// workload::ArrivalProcess built out of a workload::ArrivalConfig — the
// one shared description of "how requests arrive" that OnlineConfig,
// MmOnlineConfig, DegradedReadConfig and WriteWorkloadConfig all
// compose by value. Four kinds:
//
//  * kPoisson     — open-loop memoryless arrivals at rate_hz. The
//                   default, bit-identical to the pre-QoS hardwired
//                   Poisson stream (same RNG draws in the same order).
//  * kClosedLoop  — `clients` concurrent users, each issuing one
//                   request, waiting for its completion, thinking an
//                   exponential think_time_s, then issuing the next.
//                   Arrival rate self-regulates with latency.
//  * kBursty      — 2-state Markov-modulated Poisson process: quiet
//                   periods at rate_hz alternate with bursts at
//                   burst_rate_hz; exponential state holding times.
//  * kTrace       — replay recorded arrival instants (and read/write
//                   flags) from a TracePoint vector, typically loaded
//                   from CSV or lifted from a TraceSink event stream.
//
// Determinism: processes draw only from the caller-seeded Rng, so equal
// seeds give bit-identical request streams (covered by tests).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace sma::obs {
struct TraceEvent;
}  // namespace sma::obs

namespace sma::workload {

enum class ArrivalKind : std::uint8_t {
  kPoisson,
  kClosedLoop,
  kBursty,
  kTrace,
};

/// Stable lowercase name ("poisson", "closed_loop", "bursty", "trace").
const char* to_string(ArrivalKind kind);
/// Inverse of to_string; kInvalidArgument on unknown names.
Result<ArrivalKind> arrival_kind_from(std::string_view name);

/// One recorded arrival: absolute simulated instant plus the request's
/// read/write class. The replay currency of TraceSink exports and the
/// arrival-trace CSV schema (see docs/SERVING.md).
struct TracePoint {
  double t_s = 0.0;
  bool write = false;
};

/// The shared arrival surface composed by every workload config.
/// Batch workloads (degraded reads, write generation) use only
/// max_requests and seed; the online simulators honor all fields.
struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Open-loop mean arrival rate (kPoisson; kBursty quiet-state rate).
  double rate_hz = 40.0;
  /// Stop injecting requests after this many (in-flight work drains).
  /// Injection cutoff only: see the requests_issued / requests_completed
  /// pair in the online reports for the accounting semantics.
  int max_requests = 500;
  std::uint64_t seed = 7;

  // --- kClosedLoop ----------------------------------------------------
  int clients = 4;
  double think_time_s = 0.05;  // exponential mean between completion/issue

  // --- kBursty (MMPP-2) -----------------------------------------------
  double burst_rate_hz = 200.0;
  double mean_burst_s = 0.5;
  double mean_idle_s = 2.0;

  // --- kTrace ---------------------------------------------------------
  /// Arrival instants, non-decreasing. max_requests still caps replay.
  std::vector<TracePoint> trace;

  /// Convenience maker for configs whose historical defaults differ
  /// from the shared ones (count + seed, everything else default).
  static ArrivalConfig with(int max_requests, std::uint64_t seed) {
    ArrivalConfig cfg;
    cfg.max_requests = max_requests;
    cfg.seed = seed;
    return cfg;
  }
};

/// Read/write composition of the injected stream. Trace replay points
/// carry their own flag and bypass the mix.
struct MixConfig {
  /// Fraction of requests that are writes, in [0, 1].
  double write_fraction = 0.0;
};

/// A stateful injection schedule, driven by the simulator:
///
///   sim.schedule_at(proc->first_arrival_s(), arrive)   // open loop
///   // ... inject, then:
///   double d = proc->next_delay(rng);                  // < 0: done
///
/// Closed-loop processes return closed_loop() == true; the simulator
/// schedules clients() initial arrivals at t = 0 and re-arms one
/// arrival per request completion after think_delay().
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Absolute simulated time of the first injection.
  virtual double first_arrival_s() const { return 0.0; }
  /// Open-loop: delay from the current injection to the next, or < 0
  /// when the process injects no further requests (exhausted trace,
  /// closed-loop processes always).
  virtual double next_delay(Rng& rng) = 0;

  virtual bool closed_loop() const { return false; }
  virtual int clients() const { return 0; }
  /// Closed-loop think time before the completing client re-issues.
  virtual double think_delay(Rng& /*rng*/) { return 0.0; }

  /// Tri-state read/write override for the request being injected:
  /// -1 = draw from MixConfig (default), 0 = forced read, 1 = forced
  /// write (trace replay knows what each request was).
  virtual int write_override() const { return -1; }
};

/// Build the process described by `cfg`; kInvalidArgument on bad
/// parameters (non-positive rates, empty or decreasing trace, ...).
Result<std::unique_ptr<ArrivalProcess>> make_arrival_process(
    const ArrivalConfig& cfg);

// --- arrival-trace exchange -------------------------------------------

/// CSV schema "t_s,write" with %.17g instants (lossless round-trip).
Status write_arrival_trace_csv(const std::string& path,
                               const std::vector<TracePoint>& points);
Result<std::vector<TracePoint>> load_arrival_trace_csv(
    const std::string& path);

/// Lift the arrival trace out of a recorded event stream: one
/// TracePoint per kRequestArrive event, in record order.
std::vector<TracePoint> arrival_trace_from_events(
    const std::vector<obs::TraceEvent>& events);

}  // namespace sma::workload
