// Fail-slow detection + hedged-read failover for the serving engine.
//
// A fail-slow disk — one that still completes every I/O, just at a
// multiple of its peers' latency — is invisible to the fail-stop
// machinery but poisons the tail of every request that touches it. The
// mirrored-arrays survey's copy-aware scheduling is exactly the lever a
// mirror pair has against one: every element has a partner copy on
// another disk, so reads can simply go elsewhere.
//
// FailSlowDetector is the sensing half: a per-disk EWMA of observed
// service durations (the same signal the obs metrics cadence samples as
// "d<k>.util"), compared against the median EWMA of the disk's peers.
// A disk whose EWMA exceeds `flag_factor` x the peer median is flagged
// fail-slow; it recovers (hysteresis) once it drops back under
// `clear_factor` x the median. Purely deterministic: no randomness, no
// wall clock — two runs over the same durations flag identically.
//
// The serving engine (recon::run_online_reconstruction) consumes the
// flags two ways, both gated on HedgeConfig::enabled (default off —
// inert, bit-identical reports):
//
//  * copy-affinity routing — a read whose primary copy sits on a
//    flagged disk is issued to the partner copy instead;
//  * hedged reads — a read already queued to a flagged disk arms a
//    deadline (hedge_deadline_factor x the peer-median EWMA); if the
//    piece has not completed by then a duplicate is issued to the
//    partner copy and the first completion wins.
//
// Typed kFailSlow / kHedge trace events mark flag flips and hedge
// issues when an observer is attached. See docs/CHAOS.md.
#pragma once

#include <vector>

#include "util/status.hpp"

namespace sma::workload {

struct HedgeConfig {
  /// Master switch. Off (the default) is inert: the engine consults no
  /// flags, arms no deadlines, and reports stay bit-identical.
  bool enabled = false;

  // --- fail-slow detection -----------------------------------------------
  /// Observed service durations a disk must accumulate before it can be
  /// judged (and before it counts as a peer).
  int warmup_samples = 12;
  /// EWMA smoothing factor in (0, 1]: weight of the newest sample.
  double ewma_alpha = 0.2;
  /// Flag a disk when its EWMA exceeds flag_factor x the peer median.
  double flag_factor = 2.5;
  /// Clear the flag once the EWMA drops under clear_factor x the peer
  /// median (hysteresis; must be <= flag_factor).
  double clear_factor = 1.5;

  // --- hedging -------------------------------------------------------------
  /// Route reads away from flagged disks onto the partner copy.
  bool affinity_routing = true;
  /// Arm deadline-budgeted duplicate reads for pieces already queued to
  /// a flagged disk.
  bool hedge_reads = true;
  /// Hedge deadline as a multiple of the peer-median EWMA: the duplicate
  /// is issued only if the piece is still incomplete that long after it
  /// was queued.
  double hedge_deadline_factor = 4.0;
  /// Bound on concurrently armed hedges (budget against hedge storms).
  int max_outstanding_hedges = 4;
};

/// Field sanity for an enabled config; Ok for the inert default.
Status validate_hedge(const HedgeConfig& cfg);

/// Per-disk latency outlier tracker (see file comment). Deterministic.
class FailSlowDetector {
 public:
  FailSlowDetector(const HedgeConfig& cfg, int disks);

  /// Fold one observed service duration into `disk`'s EWMA and
  /// re-judge it. Returns +1 when the disk became flagged, -1 when it
  /// recovered, 0 otherwise.
  int observe(int disk, double service_s);

  bool slow(int disk) const {
    return flagged_[static_cast<std::size_t>(disk)] != 0;
  }
  double ewma(int disk) const {
    return ewma_[static_cast<std::size_t>(disk)];
  }
  /// Median EWMA over `disk`'s warmed-up peers; < 0 until at least two
  /// peers have warmed up (no judgement possible).
  double peer_median(int disk) const;
  /// Flag transitions to "slow" seen so far.
  int flag_events() const { return flag_events_; }

 private:
  HedgeConfig cfg_;
  std::vector<double> ewma_;
  std::vector<int> samples_;
  std::vector<char> flagged_;
  int flag_events_ = 0;
};

}  // namespace sma::workload
