#include "workload/raid_write.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <tuple>

namespace sma::workload {

Result<RaidUpdateMap> RaidUpdateMap::build(const ec::Codec& codec) {
  const std::size_t eb = 8;  // structure is content-independent
  ec::ColumnSet base = codec.make_stripe(eb);
  base.fill_pattern(101);
  SMA_RETURN_IF_ERROR(codec.encode(base));

  RaidUpdateMap map(codec.data_columns(), codec.rows());
  map.cells_.assign(
      static_cast<std::size_t>(codec.data_columns()),
      std::vector<std::vector<layout::Pos>>(
          static_cast<std::size_t>(codec.rows())));

  for (int i = 0; i < codec.data_columns(); ++i) {
    for (int j = 0; j < codec.rows(); ++j) {
      ec::ColumnSet modified = base;
      auto elem = modified.element(i, j);
      for (auto& b : elem) b ^= 0x3C;
      SMA_RETURN_IF_ERROR(codec.encode(modified));
      auto& out = map.cells_[static_cast<std::size_t>(i)]
                            [static_cast<std::size_t>(j)];
      for (int p = codec.data_columns(); p < codec.total_columns(); ++p)
        for (int r = 0; r < codec.rows(); ++r) {
          auto a = base.element(p, r);
          auto b = modified.element(p, r);
          if (!std::equal(a.begin(), a.end(), b.begin()))
            out.push_back({p, r});
        }
    }
  }
  return map;
}

const std::vector<layout::Pos>& RaidUpdateMap::parity_cells(int data_column,
                                                            int row) const {
  assert(data_column >= 0 && data_column < data_columns_);
  assert(row >= 0 && row < rows_);
  return cells_[static_cast<std::size_t>(data_column)]
               [static_cast<std::size_t>(row)];
}

Result<WriteRunReport> run_raid_write_workload(
    array::DiskArray& arr, const std::vector<WriteRequest>& requests) {
  const auto& arch = arr.arch();
  if (arch.is_mirror())
    return invalid_argument(
        "run_raid_write_workload is for RAID kinds; use "
        "run_write_workload for the mirror methods");
  const auto* codec = arr.raid_codec();
  assert(codec != nullptr);
  auto map = RaidUpdateMap::build(*codec);
  if (!map.is_ok()) return map.status();

  const int n = arch.n();
  const int rows = arch.rows();
  const std::uint64_t eb = arr.config().logical_element_bytes;

  arr.reset_timelines();
  WriteRunReport report;
  double clock = 0.0;

  std::vector<array::Op> reads;
  std::vector<array::Op> writes;
  for (const WriteRequest& req : requests) {
    reads.clear();
    writes.clear();
    std::int64_t idx = req.start;
    int remaining = req.length;
    assert(idx >= 0 && idx + remaining <= data_element_count(arr));

    // Per (stripe) dedup of parity cells touched by this request.
    std::set<std::tuple<int, int, int>> parity_touched;  // (stripe, col, row)

    while (remaining > 0) {
      const int per_stripe = rows * n;
      const int stripe = static_cast<int>(idx / per_stripe);
      const int within = static_cast<int>(idx % per_stripe);
      const int row = within / n;
      const int first_disk = within % n;
      const int len = std::min(n - first_disk, remaining);

      for (int i = first_disk; i < first_disk + len; ++i) {
        // RMW: read the old data element, write the new one.
        reads.push_back({i, stripe, row, disk::IoKind::kRead});
        writes.push_back({i, stripe, row, disk::IoKind::kWrite});
        for (const auto& cell : map.value().parity_cells(i, row))
          parity_touched.insert({stripe, cell.disk, cell.row});
      }
      report.user_bytes += static_cast<std::uint64_t>(len) * eb;
      ++report.rows_written;
      idx += len;
      remaining -= len;
    }

    for (const auto& [stripe, col, prow] : parity_touched) {
      reads.push_back({col, stripe, prow, disk::IoKind::kRead});
      writes.push_back({col, stripe, prow, disk::IoKind::kWrite});
    }

    const auto read_stats = arr.execute(reads, clock);
    const auto write_stats = arr.execute(writes, read_stats.end_s);
    clock = write_stats.end_s;
    report.bytes_read += read_stats.logical_bytes_read;
    report.bytes_written += write_stats.logical_bytes_written;
    report.write_accesses +=
        static_cast<std::uint64_t>(write_stats.max_ops_per_disk);
  }
  report.makespan_s = clock;
  return report;
}

}  // namespace sma::workload
