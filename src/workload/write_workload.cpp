#include "workload/write_workload.hpp"

#include <algorithm>
#include <cassert>

#include "util/rng.hpp"

namespace sma::workload {

std::int64_t data_element_count(const array::DiskArray& arr) {
  return static_cast<std::int64_t>(arr.stripes()) * arr.arch().rows() *
         arr.arch().n();
}

std::vector<WriteRequest> generate_large_writes(
    const array::DiskArray& arr, const WriteWorkloadConfig& cfg) {
  const ArrivalConfig& acfg = cfg.arrival;
  assert(acfg.max_requests >= 0);
  const std::int64_t total = data_element_count(arr);
  const int stripe_elements = arr.arch().rows() * arr.arch().n();
  Rng rng(acfg.seed);

  std::vector<WriteRequest> out;
  out.reserve(static_cast<std::size_t>(acfg.max_requests));
  for (int r = 0; r < acfg.max_requests; ++r) {
    WriteRequest req;
    req.length = static_cast<int>(
        rng.next_int(1, std::min<std::int64_t>(stripe_elements, total)));
    req.start = rng.next_int(0, total - req.length);
    out.push_back(req);
  }
  return out;
}

}  // namespace sma::workload
